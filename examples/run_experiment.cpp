// run_experiment — parameterized experiment runner over the public API.
//
//   ./examples/run_experiment --flows 3 --duration 40
//       --bottleneck-mbps 250 --cc cubic --join-at 20 --csv out.csv
//   ./examples/run_experiment --config experiment.json --flows 2
//
// Builds the Figure-8 topology (optionally from a JSON config file), runs
// N staggered DTN transfers, records the per-flow series, prints the
// summary the control plane produced, and optionally writes CSV/SVG.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/config_loader.hpp"
#include "core/experiment.hpp"
#include "core/monitoring_system.hpp"
#include "core/svg_chart.hpp"
#include "util/cli.hpp"

using namespace p4s;
using units::seconds_f;

int main(int argc, char** argv) {
  const util::CliArgs args(
      argc, argv,
      {"config", "flows", "duration", "bottleneck-mbps", "cc", "join-at",
       "buffer-bdp-ms", "seed", "csv", "svg", "report-sps"},
      {"help", "quic"});
  if (!args.errors().empty() || args.has("help")) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "%s\n",
                                                     e.c_str());
    std::fprintf(
        stderr,
        "usage: run_experiment [--config file.json] [--flows N<=3] "
        "[--duration S] [--bottleneck-mbps M] [--cc reno|cubic|bbr] "
        "[--join-at S] [--buffer-bdp-ms MS] [--seed N] [--report-sps R] "
        "[--quic] [--csv out.csv] [--svg out.svg]\n");
    return args.has("help") ? 0 : 2;
  }

  core::MonitoringSystemConfig config;
  if (const auto path = args.get("config")) {
    std::ifstream in(*path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path->c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      config = core::config_from_text(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (args.has("bottleneck-mbps")) {
    config.topology.bottleneck_bps = static_cast<std::uint64_t>(
        args.number_or("bottleneck-mbps", 250) * 1e6);
  }
  if (args.has("buffer-bdp-ms")) {
    config.topology.core_buffer_bytes = units::bdp_bytes(
        config.topology.bottleneck_bps,
        seconds_f(args.number_or("buffer-bdp-ms", 100) / 1e3));
  }
  if (args.has("seed")) config.seed = args.uint_or("seed", 1);

  const auto flows = std::min<std::uint64_t>(args.uint_or("flows", 3), 3);
  const double duration = args.number_or("duration", 40);
  const double join_at = args.number_or("join-at", 0);
  const std::string cc = args.get_or("cc", "cubic");

  core::MonitoringSystem system(config);
  char cmd[128];
  std::snprintf(cmd, sizeof cmd,
                "psconfig config-P4 --samples_per_second %g",
                args.number_or("report-sps", 1));
  system.psonar().psconfig().execute(cmd);
  system.start();

  // --quic routes the transfers over the QUIC-like encrypted transport
  // (spin-bit observable; enable "telemetry": {"spin_rtt": {}} in the
  // config to measure RTT passively — DESIGN.md §5i).
  const bool quic = args.has("quic");
  for (std::uint64_t i = 0; i < flows; ++i) {
    // Last flow joins late when --join-at is given; others start at 1 s.
    const double start =
        (join_at > 0 && i == flows - 1) ? join_at : 1.0;
    if (quic) {
      auto& flow = system.add_quic_transfer(static_cast<int>(i));
      flow.start_at(seconds_f(start));
      flow.stop_at(seconds_f(duration));
    } else {
      tcp::TcpFlow::Config fc;
      fc.sender.congestion_control = cc;
      auto& flow = system.add_transfer(static_cast<int>(i), fc);
      flow.start_at(seconds_f(start));
      flow.stop_at(seconds_f(duration));
    }
  }

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds_f(2), seconds_f(1), seconds_f(duration + 5));
  system.run_until(seconds_f(duration + 8));

  const std::string join_note =
      join_at > 0 ? " (last joins at " +
                        std::to_string(static_cast<int>(join_at)) + " s)"
                  : "";
  std::printf("experiment: %llu %s flow(s), %.0f Mbps bottleneck, %.0f s"
              "%s\n",
              static_cast<unsigned long long>(flows),
              quic ? "quic" : cc.c_str(),
              static_cast<double>(config.topology.bottleneck_bps) / 1e6,
              duration, join_note.c_str());
  recorder.print_table(std::cout, "throughput",
                       &core::FlowSample::throughput_mbps, "Mbps");

  std::printf("\nterminated-flow reports:\n");
  for (const auto& r : system.control_plane().final_reports()) {
    std::printf("  -> %s: %.1f MB, avg %.1f Mbps, retx %.3f%%, RTT "
                "p50/p95/p99 = %.1f/%.1f/%.1f ms\n",
                net::to_string(r.flow.tuple.dst_ip).c_str(),
                static_cast<double>(r.bytes) / 1e6,
                r.avg_throughput_bps / 1e6, r.retransmission_pct,
                r.rtt_p50_ms, r.rtt_p95_ms, r.rtt_p99_ms);
  }

  if (system.resilient_transport()) {
    // Configs with "transport": {"resilient": true, "faults": [...]} run
    // the report path over the fault-injectable channel; show what the
    // wire went through and that no report was lost.
    const auto& h = system.report_sink().health();
    std::printf(
        "\nreport transport: emitted=%llu sent=%llu retried=%llu "
        "acked=%llu dropped=%llu reconnects=%llu (resets=%llu "
        "stalls=%llu injected)\n",
        static_cast<unsigned long long>(h.emitted),
        static_cast<unsigned long long>(h.sent),
        static_cast<unsigned long long>(h.retried),
        static_cast<unsigned long long>(h.acked),
        static_cast<unsigned long long>(h.dropped_overflow),
        static_cast<unsigned long long>(system.report_sink().reconnects()),
        static_cast<unsigned long long>(
            system.fault_injector().resets_injected()),
        static_cast<unsigned long long>(
            system.fault_injector().stalls_injected()));
  }

  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    recorder.write_csv(out);
    std::printf("csv written to %s\n", path->c_str());
  }
  if (const auto path = args.get("svg")) {
    std::ofstream out(*path);
    core::write_fig9_panels(recorder, out);
    std::printf("svg written to %s\n", path->c_str());
  }
  return 0;
}
