// Multi-site monitoring fabric: three monitored switches — the paper's
// core-bottleneck site plus two WAN-side sites — share one simulation
// and one report transport. Inter-site transfers between external DTNs
// never cross the core bottleneck, so the core site alone would miss
// them; the WAN sites pick them up and tag their reports with their
// site id, which MaDDash renders as one grid row per site.
//
//   ./examples/multisite_fabric
#include <cstdio>
#include <iostream>

#include "core/monitoring_system.hpp"
#include "psonar/maddash.hpp"
#include "util/units.hpp"

using namespace p4s;
using units::seconds;

int main() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(200);
  config.topology.access_bps = units::mbps(400);
  config.switches = {
      {"core", core::TapPoint::kCoreBottleneck},
      {"site-b", core::TapPoint::kWanExt0},
      {"site-c", core::TapPoint::kWanExt1},
  };
  core::MonitoringSystem system(config);

  auto& psconfig = system.psonar().psconfig();
  // Fleet-wide sampling rate, then a per-site override: site-b watches
  // its access link at a higher rate.
  psconfig.execute("psconfig config-P4 --samples_per_second 1");
  psconfig.execute(
      "psconfig config-P4 --switch site-b --metric throughput "
      "--samples_per_second 10");

  system.start();

  // One transfer through the core bottleneck (all sites see it) and one
  // between the external DTNs of site-b and site-c (only they see it).
  auto& through_core = system.add_transfer(0);
  through_core.start_at(seconds(1));
  through_core.stop_at(seconds(9));
  auto& inter_site = system.add_flow(*system.topology().dtn_ext[2],
                                     *system.topology().dtn_ext[1]);
  inter_site.start_at(seconds(2));
  inter_site.stop_at(seconds(9));

  // Stop at the horizon while the transfers are still running so the
  // grid's "latest value" cells show steady-state throughput.
  system.run_until(seconds(9));

  std::printf("-- fabric --\n");
  for (const auto& sw : system.monitored_switches()) {
    std::printf("%-8s tap=%-9s mirror copies=%llu reports=%llu\n",
                sw->id().c_str(), core::to_string(sw->tap_point()),
                static_cast<unsigned long long>(
                    sw->p4_switch().processed_pkts()),
                static_cast<unsigned long long>(
                    sw->control_plane().reports_emitted()));
  }

  std::printf("\n");
  ps::MadDash maddash(system.psonar().archiver());
  ps::MadDash::render(maddash.site_grid(units::mbps(50), units::mbps(5)),
                      std::cout);
  return 0;
}
