// Durable archive walkthrough: run a monitored transfer with the
// archiver persisting through the segmented store (`src/store`), "crash"
// the process by dropping the system, then reopen the store directory in
// a fresh archiver and query yesterday's measurements — the perfSONAR
// workflow where dashboards read archives that outlive the collector.
//
//   ./examples/durable_archive [store-dir]
//
// Inspect the directory afterwards with the operator CLI:
//   ./tools/p4s-store info  <store-dir>
//   ./tools/p4s-store verify <store-dir>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/config_loader.hpp"
#include "core/monitoring_system.hpp"
#include "psonar/store_backend.hpp"
#include "store/store.hpp"
#include "util/units.hpp"

using namespace p4s;
using units::seconds;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path().string() +
                     "/p4s_durable_archive";
  std::filesystem::remove_all(dir);  // fresh demo run

  // ---- collection process ---------------------------------------------
  // The "archive" config section selects the store backend; everything
  // else about the system is unchanged (the seam is invisible to
  // consumers). Aggressive seal/compact thresholds so a short demo run
  // still produces sealed segments.
  {
    const std::string config_text = R"({
      "topology": {"bottleneck_mbps": 100},
      "archive": {
        "backend": "store",
        "dir": ")" + dir + R"(",
        "seal_min_docs": 16,
        "compact_fanin": 4,
        "rollup_bucket_s": 1,
        "rollup_fields": ["throughput_bps"],
        "maintenance_interval_s": 0.5
      }
    })";
    core::MonitoringSystem system(
        core::config_from_text(config_text));
    system.psonar().psconfig().execute(
        "psconfig config-P4 --metric throughput --samples_per_second 2");
    system.start();
    system.add_transfer(0).start_at(seconds(1));
    system.add_transfer(1).start_at(seconds(3));
    system.run_until(seconds(12));

    // End of run: push the memtable tail through the WAL and seal it so
    // the whole archive is segment-backed before "process exit".
    auto& store = system.archive_store();
    store.flush();
    store.seal_all();

    std::printf("-- collection run --\n");
    std::printf("archived %llu docs across %zu indices into %s\n",
                static_cast<unsigned long long>(
                    system.psonar().archiver().total_docs()),
                system.psonar().archiver().indices().size(), dir.c_str());
    const auto& stats = store.stats();
    std::printf("store: %llu seals, %llu compactions\n",
                static_cast<unsigned long long>(stats.seals),
                static_cast<unsigned long long>(stats.compactions));
  }  // system destroyed: the collector "process" is gone

  // ---- analysis process -----------------------------------------------
  // A fresh store + archiver over the same directory: recovery replays
  // the manifest and any WAL tail, and the same query API works.
  const auto verify = store::Store::verify(dir);
  std::printf("\n-- reopen --\np4s-store verify: %s (%llu segments, "
              "%llu sealed docs)\n",
              verify.ok ? "OK" : "CORRUPT",
              static_cast<unsigned long long>(verify.segments),
              static_cast<unsigned long long>(verify.sealed_docs));
  if (!verify.ok) return 1;

  store::Store reopened(dir);
  ps::Archiver archiver(std::make_unique<ps::StoreBackend>(reopened));

  std::printf("indices:");
  for (const auto& index : archiver.indices()) {
    std::printf(" %s(%llu)", index.c_str(),
                static_cast<unsigned long long>(archiver.doc_count(index)));
  }
  std::printf("\n");

  // A dashboard-style query: the latest 3 throughput samples. The range
  // filter lets the backend prune segments whose time span is disjoint.
  ps::Archiver::Query query;
  query.range_field = "ts_ns";
  query.range_min = static_cast<double>(seconds(6));
  query.limit = 3;
  query.newest_first = true;
  std::printf("\nnewest throughput samples after t=6s:\n");
  for (const auto& doc : archiver.search("p4sonar-throughput", query)) {
    std::printf("  t=%.1fs  %8.2f Mbps  flow -> %s\n",
                doc.at("ts_ns").as_double() / 1e9,
                doc.at("throughput_bps").as_double() / 1e6,
                doc.at("flow").at("dst_ip").as_string().c_str());
  }

  // Aggregations ride the columnar fast path (per-segment summaries).
  const auto agg = archiver.aggregate("p4sonar-throughput",
                                      "throughput_bps");
  std::printf("\nthroughput over the whole archive: n=%llu "
              "avg=%.2f Mbps max=%.2f Mbps\n",
              static_cast<unsigned long long>(agg.count), agg.avg / 1e6,
              agg.max / 1e6);

  // Pre-computed downsampled rollups (1 s buckets, sealed at compaction
  // time) — the long-horizon dashboard series.
  if (const auto* series =
          reopened.rollup("p4sonar-throughput", "throughput_bps")) {
    std::printf("\n1s throughput rollups:\n");
    for (const auto& [start, bucket] : *series) {
      std::printf("  [%2llds] n=%-3llu mean=%8.2f Mbps\n",
                  static_cast<long long>(start / 1'000'000'000),
                  static_cast<unsigned long long>(bucket.count),
                  bucket.mean() / 1e6);
    }
  }
  return 0;
}
