// mmWave LOS-blockage detection and fast failover (§5.4.3, Figs. 13-14):
// a ToR-to-host 60 GHz hop suffers a 2 s human blockage; the P4 data
// plane spots the inter-arrival-time signature within milliseconds and
// the control plane steers traffic onto a wired backup path before TCP
// throughput collapses.
//
//   ./examples/mmwave_blockage
#include <cstdio>

#include "controlplane/control_plane.hpp"
#include "net/impairment.hpp"
#include "net/topology.hpp"
#include "p4/p4_switch.hpp"
#include "tcp/flow.hpp"
#include "telemetry/dataplane_program.hpp"

using namespace p4s;
using units::milliseconds;
using units::seconds;

int main() {
  sim::Simulation sim(7);
  net::Network network(sim);
  auto& sender = network.add_host("gpu-node", net::ipv4(10, 9, 0, 1));
  auto& receiver = network.add_host("storage", net::ipv4(10, 9, 0, 2));
  auto& tor = network.add_switch("tor");

  network.connect(sender, tor, {units::gbps(1), units::microseconds(5),
                                units::mebibytes(8), units::mebibytes(8)});
  auto primary = network.connect(
      receiver, tor, {units::mbps(200), units::microseconds(50),
                      units::mebibytes(8), units::mebibytes(8)});
  net::MmWaveLink mmwave(sim, *primary.reverse_link);
  mmwave.schedule_blockage(seconds(7), seconds(2));

  // Wired backup path ToR -> storage.
  net::Link backup_link(sim, units::mbps(200), units::microseconds(100));
  backup_link.set_sink(receiver);
  net::OutputPort backup_port(sim, units::mebibytes(8), backup_link);
  const std::size_t backup_idx = tor.add_port(backup_port);

  // Passive P4 monitor on the ToR.
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "monitor");
  p4sw.load_program(program);
  net::OpticalTapPair taps(sim, p4sw);
  taps.attach(tor, *primary.reverse);
  cp::ControlPlaneConfig cp_config;
  cp_config.digest_poll_interval = milliseconds(5);
  cp::ControlPlane control(sim, program, cp_config);
  control.start();

  bool rerouted = false;
  control.set_on_blockage([&](const telemetry::BlockageDigest& d) {
    if (rerouted) return;
    rerouted = true;
    std::printf("t=%.3fs  BLOCKAGE digest (IAT %.2f ms vs baseline "
                "%.3f ms) -> rerouting to the wired backup\n",
                units::to_seconds(d.at), units::to_milliseconds(d.iat_ns),
                units::to_milliseconds(d.baseline_iat_ns));
    tor.route(receiver.ip(), backup_idx);
  });

  tcp::TcpFlow::Config fc;
  fc.sender.rate_limit_bps = units::mbps(100);
  tcp::TcpFlow flow(sim, sender, receiver, fc);
  flow.start_at(milliseconds(100));

  std::uint64_t last_bytes = 0;
  sim.every(milliseconds(500), milliseconds(500), [&]() {
    const std::uint64_t bytes = flow.receiver().stats().goodput_bytes;
    std::printf("t=%5.1fs  goodput %6.1f Mbps  %s%s\n",
                units::to_seconds(sim.now()),
                static_cast<double>(bytes - last_bytes) * 8.0 / 0.5 / 1e6,
                mmwave.blocked() ? "[LOS BLOCKED] " : "",
                rerouted ? "[on backup path]" : "[on mmWave path]");
    last_bytes = bytes;
    return sim.now() < seconds(12);
  });

  sim.run_until(seconds(12));
  std::printf("\nresult: %s\n",
              rerouted ? "blockage detected in the data plane; traffic "
                         "survived on the backup path"
                       : "no blockage detected (unexpected)");
  return 0;
}
