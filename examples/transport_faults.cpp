// transport_faults — the report path surviving a hostile wire.
//
//   ./examples/transport_faults
//
// Runs the Figure-9 scenario (two staggered DTN transfers over the
// 100 Mbps bottleneck) with the resilient report transport enabled and a
// scripted fault schedule hitting the ControlPlane -> Logstash connection
// mid-run: a reset at 3 s, an 800 ms stall at 5 s, another reset at 7 s.
// Despite the wire dying twice and freezing once, the archive must end up
// with every report exactly once — the health counters printed at the end
// show the retransmissions and reconnects that made that true.
#include <cstdio>

#include "core/monitoring_system.hpp"

using namespace p4s;

int main() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  config.transport.resilient = true;
  config.transport.sink.ack_timeout = units::milliseconds(100);
  config.transport.sink.backoff.base = units::milliseconds(20);
  config.transport.faults = {
      {units::seconds(3), net::FaultInjector::FaultKind::kReset, 0},
      {units::seconds(5), net::FaultInjector::FaultKind::kStall,
       units::milliseconds(800)},
      {units::seconds(7), net::FaultInjector::FaultKind::kReset, 0},
  };

  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();

  auto& flow0 = system.add_transfer(0);
  flow0.start_at(units::seconds(1));
  flow0.stop_at(units::seconds(8));
  auto& flow1 = system.add_transfer(1);
  flow1.start_at(units::seconds(4));  // joins while the wire is down
  flow1.stop_at(units::seconds(8));
  system.run_until(units::seconds(14));

  const auto& health = system.report_sink().health();
  const auto& channel = system.report_channel().stats();
  const auto& injector = system.fault_injector();
  const auto& logstash = system.psonar().logstash();

  std::printf("fault schedule : %llu resets, %llu stalls injected\n",
              static_cast<unsigned long long>(injector.resets_injected()),
              static_cast<unsigned long long>(injector.stalls_injected()));
  std::printf("wire           : %llu B accepted, %llu B delivered, "
              "%llu B lost to resets, %llu chunks\n",
              static_cast<unsigned long long>(channel.bytes_accepted),
              static_cast<unsigned long long>(channel.bytes_delivered),
              static_cast<unsigned long long>(channel.bytes_lost),
              static_cast<unsigned long long>(channel.chunks_delivered));
  std::printf("sink           : emitted=%llu sent=%llu retried=%llu "
              "acked=%llu dropped=%llu reconnects=%llu\n",
              static_cast<unsigned long long>(health.emitted),
              static_cast<unsigned long long>(health.sent),
              static_cast<unsigned long long>(health.retried),
              static_cast<unsigned long long>(health.acked),
              static_cast<unsigned long long>(health.dropped_overflow),
              static_cast<unsigned long long>(
                  system.report_sink().reconnects()));
  std::printf("logstash       : %llu lines, %llu duplicates dropped, "
              "%llu partial-line resets\n",
              static_cast<unsigned long long>(logstash.lines_in()),
              static_cast<unsigned long long>(logstash.duplicates_dropped()),
              static_cast<unsigned long long>(logstash.tcp_resets()));
  std::printf("archive        : %llu documents across %zu indices\n",
              static_cast<unsigned long long>(
                  system.psonar().archiver().total_docs()),
              system.psonar().archiver().indices().size());

  const bool lossless =
      health.dropped_overflow == 0 && health.queued <= 1;
  std::printf("\n%s: the wire died twice and stalled once; %s\n",
              lossless ? "OK" : "LOSS",
              lossless
                  ? "every report still reached the archive exactly once"
                  : "reports were lost — see counters above");
  return lossless ? 0 : 1;
}
