// Endpoint diagnosis (§3.3.4, §4.4, §5.4.2): three simultaneous transfers
// with different true bottlenecks — network loss, a small receiver
// buffer, an application rate cap — and the switch's verdict for each,
// together with the paper's operational guidance: run active tests only
// when the network is implicated.
//
//   ./examples/endpoint_diagnosis
#include <cstdio>
#include <map>

#include "core/monitoring_system.hpp"

using namespace p4s;
using units::seconds;

int main() {
  const std::uint64_t bps = units::mbps(250);
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bps;
  core::MonitoringSystem system(config);

  // Ground truth:
  //  DTN1 path: 0.01% random loss (network-limited),
  //  DTN2: receive buffer for ~bps/40 (receiver-limited),
  //  DTN3: sender paced to bps/20 (sender-limited).
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.0001);

  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");
  system.start();

  auto& flow1 = system.add_transfer(0);
  tcp::TcpFlow::Config recv_limited;
  recv_limited.receiver.buffer_bytes =
      units::bdp_bytes(bps / 40, units::milliseconds(75));
  auto& flow2 = system.add_transfer(1, recv_limited);
  tcp::TcpFlow::Config send_limited;
  send_limited.sender.rate_limit_bps = bps / 20;
  auto& flow3 = system.add_transfer(2, send_limited);
  flow1.start_at(seconds(1));
  flow2.start_at(seconds(1));
  flow3.start_at(seconds(1));

  std::map<std::string, std::map<std::string, int>> verdict_tally;
  system.simulation().every(seconds(5), seconds(5), [&]() {
    std::printf("t=%4.0fs |",
                units::to_seconds(system.simulation().now()));
    for (const auto& [slot, st] : system.control_plane().flows()) {
      (void)slot;
      const std::string dst = net::to_string(st.flow.tuple.dst_ip);
      const char* verdict = telemetry::to_string(st.verdict);
      verdict_tally[dst][verdict]++;
      std::printf(" %s: %6.1f Mbps flight=%5.0f kB verdict=%-8s |",
                  dst.c_str(), st.throughput_bps / 1e6,
                  static_cast<double>(st.flight_bytes) / 1e3, verdict);
    }
    std::printf("\n");
    return system.simulation().now() < seconds(40);
  });

  system.run_until(seconds(41));

  std::printf("\n== diagnosis ==\n");
  for (const auto& [dst, counts] : verdict_tally) {
    std::string dominant = "unknown";
    int best = 0;
    for (const auto& [verdict, n] : counts) {
      if (n > best) {
        best = n;
        dominant = verdict;
      }
    }
    std::printf("flow to %-12s -> %s-limited. %s\n", dst.c_str(),
                dominant.c_str(),
                dominant == "network"
                    ? "Guidance: schedule pScheduler active tests to "
                      "localise the network problem."
                    : "Guidance: do NOT run active tests (they would add "
                      "load and cannot see an endpoint bottleneck); "
                      "inspect the DTN's tuning instead.");
  }
  return 0;
}
