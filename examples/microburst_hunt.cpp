// Microburst hunting (§3.3.3, §5.4.1): configure a deliberately small
// core-switch buffer (BDP/4), let a joining transfer's slow-start burst
// bloat it, and read back the nanosecond-resolution microburst records
// the data plane produced — measurements no perfSONAR tool can take.
//
//   ./examples/microburst_hunt
#include <cstdio>

#include "core/monitoring_system.hpp"

using namespace p4s;
using units::seconds;

int main() {
  const std::uint64_t bps = units::mbps(250);
  const std::uint64_t bdp = units::bdp_bytes(bps, units::milliseconds(100));

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bps;
  config.topology.rtt = {units::milliseconds(100), units::milliseconds(100),
                         units::milliseconds(100)};
  config.topology.core_buffer_bytes = bdp / 4;  // the paper's small buffer
  const double drain_ns =
      static_cast<double>(bdp / 4) * 8e9 / static_cast<double>(bps);
  config.program.queue.burst_threshold_ns =
      static_cast<SimTime>(drain_ns * 0.5);
  config.program.queue.burst_exit_ns =
      static_cast<SimTime>(drain_ns * 0.25);

  std::printf("bottleneck %.0f Mbps, BDP %.2f MB, buffer BDP/4 = %.2f MB, "
              "burst threshold %.2f ms of queuing delay\n\n",
              static_cast<double>(bps) / 1e6,
              static_cast<double>(bdp) / 1e6,
              static_cast<double>(bdp / 4) / 1e6, drain_ns * 0.5 / 1e6);

  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();

  // Print each microburst the moment the control plane learns of it.
  system.control_plane().set_on_microburst(
      [](const telemetry::MicroburstDigest& d) {
        std::printf("MICROBURST start=%llu ns  duration=%.3f ms  "
                    "peak queue delay=%.3f ms  packets=%llu\n",
                    static_cast<unsigned long long>(d.start_ns),
                    units::to_milliseconds(d.duration_ns),
                    units::to_milliseconds(d.peak_queue_delay_ns),
                    static_cast<unsigned long long>(d.packets_in_burst));
      });

  auto& f1 = system.add_transfer(0);
  auto& f2 = system.add_transfer(1);
  auto& f3 = system.add_transfer(2);
  f1.start_at(seconds(1));
  f2.start_at(seconds(1));
  f3.start_at(seconds(15));  // the burst source

  system.run_until(seconds(35));

  const auto& bursts = system.control_plane().microbursts();
  std::printf("\n%zu microbursts recorded; archived copies: %llu\n",
              bursts.size(),
              static_cast<unsigned long long>(
                  system.psonar().archiver().doc_count(
                      "p4sonar-microburst")));
  std::printf("guidance (§5.4.1): if bursts repeatedly bloat the queue "
              "and cause losses, the buffer should be resized toward one "
              "BDP (%.2f MB here).\n",
              static_cast<double>(bdp) / 1e6);
  return 0;
}
