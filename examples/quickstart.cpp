// Quickstart: bring up the full P4-perfSONAR system, configure it through
// pSConfig's config-P4 command, run two DTN transfers, and read results
// back from both the control plane and the perfSONAR archiver.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/monitoring_system.hpp"
#include "util/units.hpp"

using namespace p4s;
using units::seconds;

int main() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(500);
  core::MonitoringSystem system(config);

  // Configure reporting through the perfSONAR configuration layer,
  // exactly as Figure 6 of the paper shows.
  auto& psconfig = system.psonar().psconfig();
  for (const char* cmd : {
           "psconfig config-P4 --metric throughput --samples_per_second 1",
           "psconfig config-P4 --metric RTT --samples_per_second 2",
           "psconfig config-P4 --metric queue_occupancy --alert "
           "--threshold 30 --samples_per_second 10",
       }) {
    const auto result = psconfig.execute(cmd);
    std::printf("%-100s -> %s\n", cmd,
                result.ok ? result.message.c_str() : result.message.c_str());
  }

  system.start();

  // Two bulk transfers from the internal DTN: to DTN-ext1 (50 ms RTT)
  // and DTN-ext2 (75 ms RTT).
  auto& flow1 = system.add_transfer(0);
  auto& flow2 = system.add_transfer(1);
  flow1.start_at(seconds(1));
  flow2.start_at(seconds(3));
  flow1.stop_at(seconds(18));
  flow2.stop_at(seconds(18));

  system.run_until(seconds(25));

  std::printf("\n-- control-plane flow table --\n");
  for (const auto& report : system.control_plane().final_reports()) {
    std::printf(
        "flow %s -> %s: %.2f s, %llu packets, %.1f MB, avg %.1f Mbps, "
        "%llu retransmissions (%.4f%%)\n",
        net::to_string(report.flow.tuple.src_ip).c_str(),
        net::to_string(report.flow.tuple.dst_ip).c_str(),
        units::to_seconds(report.end - report.start),
        static_cast<unsigned long long>(report.packets),
        static_cast<double>(report.bytes) / 1e6,
        report.avg_throughput_bps / 1e6,
        static_cast<unsigned long long>(report.retransmissions),
        report.retransmission_pct);
  }

  std::printf("\n-- perfSONAR archiver --\n");
  auto& archiver = system.psonar().archiver();
  for (const auto& index : archiver.indices()) {
    std::printf("%-28s %llu docs\n", index.c_str(),
                static_cast<unsigned long long>(archiver.doc_count(index)));
  }

  const auto agg = archiver.aggregate("p4sonar-throughput",
                                      "throughput_bps");
  std::printf("\nper-flow throughput samples: n=%llu avg=%.1f Mbps "
              "max=%.1f Mbps\n",
              static_cast<unsigned long long>(agg.count), agg.avg / 1e6,
              agg.max / 1e6);
  return 0;
}
