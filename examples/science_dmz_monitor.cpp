// Science DMZ monitoring walk-through — the paper's headline scenario.
//
// Builds the Figure-8 topology, runs a realistic mix of DTN transfers
// (staggered bulk flows to all three external sites) alongside the
// regular perfSONAR active mesh (iperf3 + ping from the internal node),
// and prints a live per-flow dashboard like the Grafana panels of
// Figure 9 plus the §5.3 aggregates. The full time series is written to
// science_dmz_monitor.csv for plotting.
//
//   ./examples/science_dmz_monitor
#include <cstdio>
#include <fstream>
#include <algorithm>
#include <iostream>
#include <map>

#include "core/experiment.hpp"
#include "core/svg_chart.hpp"
#include "core/monitoring_system.hpp"
#include "psonar/analytics.hpp"
#include "psonar/maddash.hpp"
#include "psonar/pscheduler.hpp"

using namespace p4s;
using units::seconds;

int main() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(250);
  config.topology.core_buffer_bytes = units::bdp_bytes(
      config.topology.bottleneck_bps, units::milliseconds(50));
  core::MonitoringSystem system(config);

  // Reporting: 1 sample/s for everything; alert if queue occupancy
  // crosses 50%, boosting its extraction to 10/s.
  auto& psconfig = system.psonar().psconfig();
  psconfig.execute("psconfig config-P4 --samples_per_second 1");
  psconfig.execute(
      "psconfig config-P4 --metric queue_occupancy --alert --threshold 50 "
      "--samples_per_second 10");
  system.start();

  // The regular perfSONAR mesh keeps running its periodic active tests,
  // configured through a pSConfig mesh template.
  const char* mesh_template = R"({
    "tasks": [
      {"type": "latency", "src": "psonar-internal", "dst": "psonar-ext1",
       "start_s": 2, "count": 5, "repeat_s": 20},
      {"type": "latency", "src": "psonar-internal", "dst": "psonar-ext2",
       "start_s": 2, "count": 5, "repeat_s": 20},
      {"type": "latency", "src": "psonar-internal", "dst": "psonar-ext3",
       "start_s": 2, "count": 5, "repeat_s": 20},
      {"type": "udp_stream", "src": "psonar-internal",
       "dst": "psonar-ext1", "start_s": 5, "duration_s": 3,
       "rate_mbps": 2, "repeat_s": 25},
      {"type": "trace", "src": "psonar-internal", "dst": "psonar-ext3",
       "start_s": 3}
    ]
  })";
  std::map<std::string, net::Host*> hosts = {
      {"psonar-internal", system.topology().psonar_internal},
      {"psonar-ext1", system.topology().psonar_ext[0]},
      {"psonar-ext2", system.topology().psonar_ext[1]},
      {"psonar-ext3", system.topology().psonar_ext[2]},
  };
  const auto mesh_result = psconfig.apply_mesh_text(
      mesh_template, system.psonar().scheduler(), hosts);
  std::printf("pSConfig mesh: %s\n", mesh_result.message.c_str());

  // DTN workload: staggered transfers to the three external sites.
  auto& f1 = system.add_transfer(0);
  auto& f2 = system.add_transfer(1);
  auto& f3 = system.add_transfer(2);
  f1.start_at(seconds(1));
  f2.start_at(seconds(10));
  f3.start_at(seconds(20));
  f1.stop_at(seconds(50));
  f2.stop_at(seconds(55));
  f3.stop_at(seconds(55));

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(60));

  // Live dashboard every 5 s.
  system.simulation().every(seconds(5), seconds(5), [&]() {
    const auto& cp = system.control_plane();
    std::printf("t=%4.0fs | util %4.0f%% fair %.2f | %zu flows |",
                units::to_seconds(system.simulation().now()),
                cp.aggregates().link_utilization * 100.0,
                cp.aggregates().fairness, cp.flows().size());
    for (const auto& [slot, st] : cp.flows()) {
      (void)slot;
      std::printf(" %s %.0fMbps/%.0fms/%s",
                  net::to_string(st.flow.tuple.dst_ip).c_str(),
                  st.throughput_bps / 1e6,
                  units::to_milliseconds(st.rtt_ns),
                  telemetry::to_string(st.verdict));
    }
    std::printf("\n");
    return system.simulation().now() < seconds(60);
  });

  system.run_until(seconds(62));

  std::printf("\n== terminated-flow reports (§3.3.2) ==\n");
  for (const auto& r : system.control_plane().final_reports()) {
    std::printf("%s -> %s: %.1fs, %llu pkts, %.1f MB, avg %.1f Mbps, "
                "retx %llu (%.3f%%)\n",
                net::to_string(r.flow.tuple.src_ip).c_str(),
                net::to_string(r.flow.tuple.dst_ip).c_str(),
                units::to_seconds(r.end - r.start),
                static_cast<unsigned long long>(r.packets),
                static_cast<double>(r.bytes) / 1e6,
                r.avg_throughput_bps / 1e6,
                static_cast<unsigned long long>(r.retransmissions),
                r.retransmission_pct);
  }

  std::printf("\n== regular perfSONAR active-test results ==\n");
  for (const auto& r : system.psonar().scheduler().latency_results()) {
    std::printf("ping %s -> %s: %.1f/%.1f/%.1f ms (%d/%d)\n",
                r.src.c_str(), r.dst.c_str(), r.min_rtt_ms, r.mean_rtt_ms,
                r.max_rtt_ms, r.received, r.sent);
  }
  for (const auto& r : system.psonar().scheduler().traceroute_results()) {
    std::printf("traceroute %s -> %s:", r.src.c_str(), r.dst.c_str());
    for (const auto& hop : r.hops) {
      std::printf("  %s (%.1f ms)",
                  hop.replied ? net::to_string(hop.addr).c_str() : "*",
                  hop.rtt_ms);
    }
    std::printf("%s\n", r.reached ? "" : "  [unreached]");
  }

  std::printf("\n");
  ps::MadDash maddash(system.psonar().archiver());
  ps::MadDash::render(maddash.loss_grid(1.0, 5.0), std::cout);
  ps::MadDash::render(maddash.owd_grid(60.0, 120.0), std::cout);

  // Trace analytics over the archive (NetSage / OnTimeDetect style, §6).
  ps::Analytics analytics(system.psonar().archiver());
  std::printf("\n== top talkers (from terminated-flow reports) ==\n");
  for (const auto& talker : analytics.top_talkers(5)) {
    std::printf("%-14s %8.1f MB in %llu flow(s), retx %.3f%%\n",
                talker.dst_ip.c_str(),
                static_cast<double>(talker.bytes) / 1e6,
                static_cast<unsigned long long>(talker.flows),
                talker.retransmission_pct);
  }
  for (const auto& talker : analytics.top_talkers(3)) {
    ps::Archiver::Query query;
    query.terms["flow.dst_ip"] = util::Json(talker.dst_ip);
    const auto anomalies = analytics.detect_anomalies(
        "p4sonar-throughput", "throughput_bps", query);
    std::printf("throughput anomalies toward %s: %zu",
                talker.dst_ip.c_str(), anomalies.size());
    for (std::size_t i = 0;
         i < std::min<std::size_t>(3, anomalies.size()); ++i) {
      std::printf("  [t=%.0fs %.0f->%.0f Mbps]",
                  units::to_seconds(anomalies[i].at),
                  anomalies[i].expected / 1e6, anomalies[i].value / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\n== archiver summary ==\n");
  auto& archiver = system.psonar().archiver();
  for (const auto& index : archiver.indices()) {
    std::printf("%-28s %llu docs\n", index.c_str(),
                static_cast<unsigned long long>(archiver.doc_count(index)));
  }
  std::printf("alerts fired: %zu\n", system.control_plane().alerts().size());

  std::ofstream csv("science_dmz_monitor.csv");
  recorder.write_csv(csv);
  std::ofstream svg("science_dmz_monitor.svg");
  core::write_fig9_panels(recorder, svg);
  std::printf("\ntime series written to science_dmz_monitor.csv and "
              "rendered to science_dmz_monitor.svg (%zu samples)\n",
              recorder.samples().size());
  return 0;
}
