// Integration tests of the composed data-plane program: synthetic mirror
// streams through the P4 switch target exercising the full ingress
// pipeline (flow promotion, byte/packet counters, Algorithm 1 on the ACK
// path, queue-delay attribution, FIN digests, slot release).
#include <gtest/gtest.h>

#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s::telemetry {
namespace {

struct ProgramFixture : ::testing::Test {
  sim::Simulation sim;
  DataPlaneProgram::Config config;
  std::unique_ptr<DataPlaneProgram> program;
  std::unique_ptr<p4::P4Switch> sw;

  const net::Ipv4Address src = net::ipv4(10, 0, 0, 10);
  const net::Ipv4Address dst = net::ipv4(10, 1, 0, 10);
  std::uint32_t seq = 1'000'000;
  std::uint16_t ip_id = 0;

  void SetUp() override {
    config.tracker.promotion_bytes = 10'000;
    program = std::make_unique<DataPlaneProgram>(config);
    sw = std::make_unique<p4::P4Switch>(sim, "dut");
    sw->load_program(*program);
  }

  net::FiveTuple flow_tuple() const {
    return net::FiveTuple{src, dst, 40000, 5201, 6};
  }
  std::uint16_t expected_slot() const {
    return static_cast<std::uint16_t>(p4::flow_hash(flow_tuple()) &
                                      kFlowSlotMask);
  }

  net::Packet data_pkt(std::uint32_t payload = 1460,
                       std::uint8_t extra_flags = 0) {
    net::Packet p = net::make_tcp_packet(
        src, dst, 40000, 5201, seq, 0,
        static_cast<std::uint8_t>(net::tcpflags::kAck | extra_flags),
        payload, 1 << 16);
    p.ip.id = ip_id++;
    seq += payload;
    return p;
  }

  net::Packet ack_pkt(std::uint32_t ackno) {
    return net::make_tcp_packet(dst, src, 5201, 40000, 777, ackno,
                                net::tcpflags::kAck, 0, 1 << 16);
  }

  /// Push enough data (ingress copies) to promote the flow. Advances the
  /// clock past 0 first (timestamp 0 is the empty-register sentinel).
  void promote() {
    sim.run_until(units::milliseconds(1));
    for (int i = 0; i < 10; ++i) {
      sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
    }
  }
};

TEST_F(ProgramFixture, PromotesAndCounts) {
  promote();
  const auto digests = program->tracker().new_flow_digests().drain();
  ASSERT_EQ(digests.size(), 1u);
  const std::uint16_t slot = digests[0].slot;
  EXPECT_EQ(slot, expected_slot());
  // Counters start at promotion (packet 7 of 10 crossed 10 kB).
  EXPECT_EQ(program->packets(slot), 4u);
  EXPECT_EQ(program->bytes(slot), 4u * (40 + 1460));
  EXPECT_GT(program->last_seen(slot), 0u);
  EXPECT_EQ(program->first_seen(slot), program->last_seen(slot));
}

TEST_F(ProgramFixture, IgnoresNonIpv4AndCountsCopies) {
  promote();
  const std::uint64_t before = program->ingress_copies();
  sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
  sw->on_mirrored(data_pkt(), net::MirrorPoint::kEgress);
  EXPECT_EQ(program->ingress_copies(), before + 1);
  EXPECT_EQ(program->egress_copies(), 1u);
}

TEST_F(ProgramFixture, AckPathMeasuresRtt) {
  promote();
  const std::uint16_t slot = expected_slot();
  sim.run_until(units::milliseconds(10));
  const std::uint32_t data_seq = seq;
  sim.at(units::milliseconds(10), [&]() {
    sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
  });
  sim.at(units::milliseconds(60), [&]() {
    sw->on_mirrored(ack_pkt(data_seq + 1460), net::MirrorPoint::kIngress);
  });
  sim.run();
  EXPECT_EQ(program->rtt_loss().last_rtt(slot), units::milliseconds(50));
}

TEST_F(ProgramFixture, RetransmissionCountsLossAndFeedsClassifier) {
  promote();
  const std::uint16_t slot = expected_slot();
  net::Packet first = data_pkt();
  sw->on_mirrored(first, net::MirrorPoint::kIngress);
  sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
  // Replay the older packet (sequence regression).
  sw->on_mirrored(first, net::MirrorPoint::kIngress);
  EXPECT_EQ(program->rtt_loss().losses(slot), 1u);
}

TEST_F(ProgramFixture, QueueDelayAttributedViaTapPair) {
  promote();
  const std::uint16_t slot = expected_slot();
  const net::Packet pkt = data_pkt();
  sim.at(units::milliseconds(2), [&]() {
    sw->on_mirrored(pkt, net::MirrorPoint::kIngress);
  });
  sim.at(units::milliseconds(2) + units::microseconds(250), [&]() {
    sw->on_mirrored(pkt, net::MirrorPoint::kEgress);
  });
  sim.run();
  EXPECT_EQ(program->queue_monitor().last_queue_delay(slot),
            units::microseconds(250));
}

TEST_F(ProgramFixture, FinEmitsDigest) {
  promote();
  sw->on_mirrored(data_pkt(1460, net::tcpflags::kFin),
                  net::MirrorPoint::kIngress);
  const auto fins = program->fin_digests().drain();
  ASSERT_EQ(fins.size(), 1u);
  EXPECT_EQ(fins[0].slot, expected_slot());
}

TEST_F(ProgramFixture, PureAcksNotTrackedAsFlows) {
  promote();
  program->tracker().new_flow_digests().drain();
  for (int i = 0; i < 200; ++i) {
    sw->on_mirrored(ack_pkt(1'000'000 + i), net::MirrorPoint::kIngress);
  }
  // The ACK stream (reverse tuple, zero payload) must not claim a slot.
  EXPECT_TRUE(program->tracker().new_flow_digests().drain().empty());
  EXPECT_EQ(program->tracker().active_flows(), 1u);
}

TEST_F(ProgramFixture, SynPacketsCarryNoMeasurement) {
  net::Packet syn = net::make_tcp_packet(src, dst, 40000, 5201, 1, 0,
                                         net::tcpflags::kSyn, 0, 1 << 16);
  sw->on_mirrored(syn, net::MirrorPoint::kIngress);
  EXPECT_EQ(program->tracker().active_flows(), 0u);
}

TEST_F(ProgramFixture, UdpFlowsTracked) {
  for (int i = 0; i < 10; ++i) {
    net::Packet p = net::make_udp_packet(src, dst, 9000, 9001, 1400);
    p.ip.id = ip_id++;
    sw->on_mirrored(p, net::MirrorPoint::kIngress);
  }
  EXPECT_EQ(program->tracker().active_flows(), 1u);
}

TEST_F(ProgramFixture, ReleaseSlotClearsEverything) {
  promote();
  const std::uint16_t slot = expected_slot();
  sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
  program->release_slot(slot);
  EXPECT_EQ(program->bytes(slot), 0u);
  EXPECT_EQ(program->packets(slot), 0u);
  EXPECT_EQ(program->first_seen(slot), 0u);
  EXPECT_EQ(program->rtt_loss().losses(slot), 0u);
  EXPECT_FALSE(program->tracker().occupied(slot));
}

TEST_F(ProgramFixture, IatMeasuredOnEgressCopies) {
  promote();
  const std::uint16_t slot = expected_slot();
  const net::Packet a = data_pkt();
  const net::Packet b = data_pkt();
  sim.at(units::milliseconds(1), [&]() {
    sw->on_mirrored(a, net::MirrorPoint::kEgress);
  });
  sim.at(units::milliseconds(3), [&]() {
    sw->on_mirrored(b, net::MirrorPoint::kEgress);
  });
  sim.run();
  EXPECT_EQ(program->iat_monitor().last_iat(slot), units::milliseconds(2));
}

}  // namespace
}  // namespace p4s::telemetry
