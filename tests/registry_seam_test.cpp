// The extension seams an out-of-tree measurement stage plugs into,
// exercised from outside the telemetry/controlplane libraries exactly
// the way the program VM uses them:
//
//   * DataPlaneProgram::register_packet_engine() — a custom engine sees
//     every parsed copy and every tracked data packet, and the
//     slot-release registry dispatches clear_slot / slot_cleared /
//     pending_digests to it like any built-in stage.
//   * ControlPlane::register_extractor() — an extension metric gets its
//     own timer, per-metric configuration through the name-based APIs,
//     and a clean unregister (timer dies, name freed, closures dropped).
//   * ControlPlane::register_digest_source() — extension digests drain
//     through the poll loop into emitted reports.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "telemetry/packet_engine.hpp"

namespace p4s {
namespace {

using core::MonitoringSystem;
using core::MonitoringSystemConfig;
using units::seconds;

// An out-of-tree packet engine: per-slot packet counter plus a digest
// queue, implemented without touching any telemetry-internal header.
class SpyEngine : public telemetry::PacketEngine {
 public:
  std::string_view name() const override { return "spy"; }

  void on_packet(const telemetry::FieldView& view) override {
    ++packets_;
    if (view.egress_copy()) ++egress_copies_;
  }

  void on_tracked_data(std::uint16_t slot,
                       const telemetry::FieldView& view) override {
    ++tracked_;
    counts_[slot] += 1;
    bytes_[slot] += view.ipv4_total_len();
    ++pending_digests_;
  }

  void clear_slot(std::uint16_t slot) override {
    counts_[slot] = 0;
    bytes_[slot] = 0;
    cleared_.push_back(slot);
  }

  bool slot_cleared(std::uint16_t slot) const override {
    return counts_[slot] == 0 && bytes_[slot] == 0;
  }

  std::size_t pending_digests() const override { return pending_digests_; }
  void drain() { pending_digests_ = 0; }

  std::uint64_t packets_ = 0;
  std::uint64_t egress_copies_ = 0;
  std::uint64_t tracked_ = 0;
  std::array<std::uint64_t, telemetry::kFlowSlots> counts_{};
  std::array<std::uint64_t, telemetry::kFlowSlots> bytes_{};
  std::vector<std::uint16_t> cleared_;
  std::size_t pending_digests_ = 0;
};

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  cp::ReportSink* next = nullptr;
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
    if (next != nullptr) next->on_report(report);
  }
  std::size_t count_of(const std::string& metric) const {
    std::size_t n = 0;
    for (const std::string& line : lines) {
      if (line.find("\"report\":\"" + metric + "\"") != std::string::npos) {
        ++n;
      }
    }
    return n;
  }
};

TEST(RegistrySeam, PacketEngineSeesTheStreamAndSlotRelease) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  MonitoringSystem system(config);
  auto& monitored = system.monitored_switch(0);
  SpyEngine spy;
  monitored.program().register_packet_engine(spy);

  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(seconds(1));
  flow.stop_at(seconds(4));
  // Run well past the idle timeout so the finished flow is finalized
  // and its slot released through the registry.
  system.run_until(seconds(12));

  // The spy saw both TAP copies of the parsed stream...
  EXPECT_GT(spy.packets_, 0u);
  EXPECT_GT(spy.egress_copies_, 0u);
  // ...and the measurement path's tracked packets — the exact stream
  // the built-in byte counter consumed.
  EXPECT_GT(spy.tracked_, 0u);
  std::uint64_t spy_bytes = 0;
  for (const std::uint64_t b : spy.bytes_) spy_bytes += b;
  EXPECT_EQ(spy_bytes, 0u)
      << "finalization should have cleared every tracked slot";
  // Slot release dispatched clear_slot to the out-of-tree engine, and
  // the registry's invariant holds for it.
  ASSERT_FALSE(spy.cleared_.empty());
  for (const std::uint16_t slot : spy.cleared_) {
    EXPECT_TRUE(monitored.program().slot_cleared(slot));
  }
}

TEST(RegistrySeam, PendingDigestsAggregatesRegisteredEngines) {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  SpyEngine spy;
  program.register_packet_engine(spy);
  const std::size_t baseline = program.pending_digests();
  spy.pending_digests_ = 3;
  EXPECT_EQ(program.pending_digests(), baseline + 3);
  spy.drain();
  EXPECT_EQ(program.pending_digests(), baseline);
}

struct ExtractorFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  cp::ControlPlaneConfig cp_config;
  cp::ControlPlane control{sim, program, cp_config};
  Collector collector;

  void SetUp() override { control.set_sink(&collector); }

  void register_counter_metric(double sps) {
    cp::ControlPlane::MetricExtractor ex;
    ex.name = "spy_metric";
    ex.value_key = "spy_value";
    ex.read_switch = [this](SimTime) {
      return static_cast<double>(++reads_);
    };
    cp::MetricConfig mc;
    mc.interval = units::seconds_f(1.0 / sps);
    control.register_extractor(std::move(ex), mc);
  }

  std::uint64_t reads_ = 0;
};

TEST_F(ExtractorFixture, ExtensionTimerRunsAtItsOwnRate) {
  register_counter_metric(4);  // 250 ms cadence
  control.start();
  sim.run_until(seconds(1));
  EXPECT_EQ(collector.count_of("spy_metric"), 4u);
  // Per-metric reconfiguration through the name-based API: the builtin
  // metrics keep their own timers. The new cadence starts after the
  // already-scheduled tick (1.25 s), so (1 s, 2 s] holds 8 ticks.
  control.set_samples_per_second("spy_metric", 10);
  const std::size_t before = collector.count_of("spy_metric");
  sim.run_until(seconds(2));
  EXPECT_GE(collector.count_of("spy_metric") - before, 8u);
  EXPECT_THROW(control.set_samples_per_second("spy_nope", 1),
               std::invalid_argument);
}

TEST_F(ExtractorFixture, UnregisterKillsTheTimerAndFreesTheName) {
  register_counter_metric(4);
  const std::size_t live = control.extractor_count();
  control.start();
  sim.run_until(seconds(1));
  const std::size_t emitted = collector.count_of("spy_metric");
  EXPECT_GT(emitted, 0u);

  control.unregister_extractor("spy_metric");
  EXPECT_EQ(control.extractor_count(), live - 1);
  EXPECT_FALSE(control.has_extractor("spy_metric"));
  sim.run_until(seconds(3));
  EXPECT_EQ(collector.count_of("spy_metric"), emitted)
      << "the extension timer kept firing after unregister";

  // The name is reusable; duplicate registration of a live name throws.
  register_counter_metric(2);
  EXPECT_TRUE(control.has_extractor("spy_metric"));
  EXPECT_THROW(register_counter_metric(2), std::invalid_argument);
  // Builtins are not removable; unknown names are reported.
  EXPECT_THROW(control.unregister_extractor("throughput"),
               std::invalid_argument);
  EXPECT_THROW(control.unregister_extractor("never_was"),
               std::invalid_argument);
}

TEST_F(ExtractorFixture, ExtensionAlertsBoostLikeBuiltins) {
  register_counter_metric(2);
  control.set_alert("spy_metric", 3.0, 20.0);  // boost to 20/s on breach
  control.start();
  sim.run_until(seconds(3));
  ASSERT_FALSE(control.alerts().empty());
  EXPECT_EQ(control.alerts()[0].metric_name, "spy_metric");
  EXPECT_FALSE(control.alerts()[0].metric.has_value())
      << "extension alerts carry no builtin kind";
  // The boosted cadence kicked in: far more than 2/s after the breach.
  EXPECT_GT(collector.count_of("spy_metric"), 10u);
}

TEST_F(ExtractorFixture, DigestSourceDrainsThroughThePollLoop) {
  std::uint64_t drains = 0;
  control.register_digest_source([&drains](SimTime now) {
    std::vector<util::Json> docs;
    if (++drains <= 2) {
      util::Json j = util::Json::object();
      j["report"] = "spy_digest";
      j["ts_ns"] = static_cast<std::int64_t>(now);
      j["n"] = static_cast<std::int64_t>(drains);
      docs.push_back(std::move(j));
    }
    return docs;
  });
  control.start();
  sim.run_until(seconds(1));
  EXPECT_GT(drains, 2u) << "the poll loop never drained the source";
  EXPECT_EQ(collector.count_of("spy_digest"), 2u);
}

}  // namespace
}  // namespace p4s
