// Unit tests: packet model and wire codec (byte-level header
// serialization, IPv4 checksum, parsing robustness).
#include <gtest/gtest.h>

#include <array>

#include "net/packet.hpp"
#include "net/wire.hpp"

namespace p4s::net {
namespace {

TEST(Address, DottedQuadFormatting) {
  EXPECT_EQ(to_string(ipv4(10, 0, 0, 10)), "10.0.0.10");
  EXPECT_EQ(to_string(ipv4(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(to_string(0), "0.0.0.0");
}

TEST(Address, OctetPacking) {
  EXPECT_EQ(ipv4(1, 2, 3, 4), 0x01020304u);
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t{ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 100, 200, 6};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_ip, t.src_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.protocol, t.protocol);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, EqualityAndToString) {
  FiveTuple a{ipv4(1, 0, 0, 1), ipv4(1, 0, 0, 2), 5, 6, 6};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.src_port = 7;
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "1.0.0.1:5->1.0.0.2:6/6");
}

TEST(Packet, TcpBuilderComputesLengths) {
  const Packet p = make_tcp_packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 10,
                                   20, 1000, 2000, tcpflags::kAck, 1460,
                                   65535);
  EXPECT_TRUE(p.is_tcp());
  EXPECT_EQ(p.ip.total_len, 20 + 20 + 1460);
  EXPECT_EQ(p.payload_bytes(), 1460u);
  EXPECT_EQ(p.wire_bytes(), p.ip.total_len + Packet::kL2Overhead);
  EXPECT_EQ(p.tcp().seq, 1000u);
  EXPECT_TRUE(p.tcp().has(tcpflags::kAck));
  EXPECT_FALSE(p.tcp().has(tcpflags::kSyn));
}

TEST(Packet, UdpBuilderComputesLengths) {
  const Packet p =
      make_udp_packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 53, 5353, 512);
  EXPECT_TRUE(p.is_udp());
  EXPECT_EQ(p.ip.total_len, 20 + 8 + 512);
  EXPECT_EQ(p.payload_bytes(), 512u);
  EXPECT_EQ(p.udp().length, 8 + 512);
}

TEST(Packet, IcmpBuilderComputesLengths) {
  const Packet p =
      make_icmp_packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 8, 77, 3, 56);
  EXPECT_TRUE(p.is_icmp());
  EXPECT_EQ(p.ip.total_len, 20 + 8 + 56);
  EXPECT_EQ(p.icmp().ident, 77);
  EXPECT_EQ(p.icmp().seq, 3);
}

TEST(Packet, FiveTupleFromHeaders) {
  const Packet p = make_tcp_packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 10,
                                   20, 0, 0, 0, 100, 0);
  const FiveTuple t = p.five_tuple();
  EXPECT_EQ(t.src_port, 10);
  EXPECT_EQ(t.dst_port, 20);
  EXPECT_EQ(t.protocol, 6);
}

TEST(Packet, IcmpFiveTupleUsesIdent) {
  const Packet p =
      make_icmp_packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 8, 42, 0, 0);
  EXPECT_EQ(p.five_tuple().src_port, 42);
  EXPECT_EQ(p.five_tuple().dst_port, 42);
}

TEST(Packet, UniqueUids) {
  const Packet a = make_udp_packet(1, 2, 3, 4, 0);
  const Packet b = make_udp_packet(1, 2, 3, 4, 0);
  EXPECT_NE(a.uid, b.uid);
}

// ---------- Wire codec ----------

std::array<std::uint8_t, kMaxHeaderBytes> serialize(const Packet& p,
                                                    std::size_t& len) {
  std::array<std::uint8_t, kMaxHeaderBytes> buf{};
  len = serialize_headers(p, buf);
  return buf;
}

TEST(Wire, TcpRoundTrip) {
  Packet p = make_tcp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 40000,
                             5201, 0xDEADBEEF, 0x12345678,
                             tcpflags::kAck | tcpflags::kPsh, 1460,
                             2u << 20);
  p.ip.id = 7777;
  p.ip.ttl = 17;
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  EXPECT_EQ(len, 54u);  // 14 Ethernet + 20 IP + 20 TCP
  const auto parsed = parse_headers({buf.data(), len});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, p.ip.src);
  EXPECT_EQ(parsed->ip.dst, p.ip.dst);
  EXPECT_EQ(parsed->ip.id, 7777);
  EXPECT_EQ(parsed->ip.ttl, 17);
  EXPECT_EQ(parsed->ip.total_len, p.ip.total_len);
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_EQ(parsed->tcp().seq, 0xDEADBEEF);
  EXPECT_EQ(parsed->tcp().ack, 0x12345678);
  EXPECT_EQ(parsed->tcp().flags, p.tcp().flags);
  EXPECT_EQ(parsed->tcp().src_port, 40000);
  EXPECT_EQ(parsed->tcp().dst_port, 5201);
}

TEST(Wire, PatchTtlMatchesFreshSerialization) {
  // The TAP reuses one serialization across the ingress/egress mirror
  // copies by patching the TTL in place; the result must be bit-identical
  // to serializing the decremented packet from scratch (including the
  // incrementally-updated IPv4 checksum, across carry boundaries).
  Packet p = make_tcp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 40000,
                             5201, 1000, 0, tcpflags::kAck, 1460, 1 << 16);
  p.ip.id = 4242;
  for (std::uint8_t ttl : {std::uint8_t{64}, std::uint8_t{255},
                           std::uint8_t{1}, std::uint8_t{0x80}}) {
    p.ip.ttl = ttl;
    std::size_t len = 0;
    auto patched = serialize(p, len);
    for (std::uint8_t new_ttl :
         {std::uint8_t(ttl - 1), std::uint8_t{0}, std::uint8_t{255}}) {
      patch_ttl({patched.data(), len}, new_ttl);
      Packet q = p;
      q.ip.ttl = new_ttl;
      std::size_t qlen = 0;
      const auto fresh = serialize(q, qlen);
      ASSERT_EQ(len, qlen);
      EXPECT_EQ(patched, fresh) << "ttl " << int(ttl) << " -> "
                                << int(new_ttl);
      // And the patched checksum still validates end-to-end.
      const auto parsed = parse_headers({patched.data(), len});
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->ip.ttl, new_ttl);
    }
  }
}

TEST(Wire, PatchTtlSameValueIsNoOp) {
  Packet p = make_udp_packet(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 9, 10, 64);
  p.ip.ttl = 33;
  std::size_t len = 0;
  auto buf = serialize(p, len);
  const auto before = buf;
  patch_ttl({buf.data(), len}, 33);
  EXPECT_EQ(buf, before);
}

TEST(Wire, WindowScalingQuantization) {
  // The codec carries window >> kWindowShift in 16 bits; values round
  // down to the scale granule.
  Packet p = make_tcp_packet(1, 2, 3, 4, 0, 0, tcpflags::kAck, 0,
                             (3u << kWindowShift) + 5);
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  const auto parsed = parse_headers({buf.data(), len});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tcp().window, 3u << kWindowShift);
}

TEST(Wire, UdpRoundTrip) {
  const Packet p =
      make_udp_packet(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 111, 222, 99);
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  EXPECT_EQ(len, 42u);  // 14 Ethernet + 20 IP + 8 UDP
  const auto parsed = parse_headers({buf.data(), len});
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_udp());
  EXPECT_EQ(parsed->udp().src_port, 111);
  EXPECT_EQ(parsed->udp().length, 8 + 99);
}

TEST(Wire, IcmpRoundTrip) {
  const Packet p =
      make_icmp_packet(ipv4(9, 9, 9, 9), ipv4(8, 8, 8, 8), 0, 321, 12, 56);
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  const auto parsed = parse_headers({buf.data(), len});
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_icmp());
  EXPECT_EQ(parsed->icmp().type, 0);
  EXPECT_EQ(parsed->icmp().ident, 321);
  EXPECT_EQ(parsed->icmp().seq, 12);
}

TEST(Wire, ChecksumValidatesAndRejectsCorruption) {
  const Packet p = make_tcp_packet(1, 2, 3, 4, 0, 0, 0, 10, 0);
  std::size_t len = 0;
  auto buf = serialize(p, len);
  // RFC 1071: the ones'-complement sum over a header including its
  // checksum field is zero.
  EXPECT_EQ(internet_checksum({buf.data() + kEthernetHeaderBytes, 20}), 0);
  buf[kEthernetHeaderBytes + 16] ^= 0xFF;  // flip a source-address byte
  EXPECT_FALSE(parse_headers({buf.data(), len}).has_value());
}

TEST(Wire, RejectsTruncation) {
  const Packet p = make_tcp_packet(1, 2, 3, 4, 0, 0, 0, 10, 0);
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  for (std::size_t cut : {std::size_t{0}, std::size_t{10}, std::size_t{20},
                          std::size_t{33}, std::size_t{39},
                          std::size_t{53}}) {
    EXPECT_FALSE(parse_headers({buf.data(), cut}).has_value())
        << "cut=" << cut;
  }
  EXPECT_TRUE(parse_headers({buf.data(), 54}).has_value());
}

TEST(Wire, RejectsNonIpv4) {
  const Packet p = make_udp_packet(1, 2, 3, 4, 0);
  std::size_t len = 0;
  auto buf = serialize(p, len);
  buf[kEthernetHeaderBytes] = 0x65;  // version 6
  EXPECT_FALSE(parse_headers({buf.data(), len}).has_value());
}

TEST(Wire, RejectsNonIpv4EtherType) {
  const Packet p = make_udp_packet(1, 2, 3, 4, 0);
  std::size_t len = 0;
  auto buf = serialize(p, len);
  buf[12] = 0x86;  // EtherType 0x86DD (IPv6)
  buf[13] = 0xDD;
  EXPECT_FALSE(parse_headers({buf.data(), len}).has_value());
}

TEST(Wire, EthernetMacsDeriveFromAddresses) {
  const Packet p = make_udp_packet(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 9,
                                   10, 0);
  std::size_t len = 0;
  const auto buf = serialize(p, len);
  // dst MAC = 02:00:05:06:07:08, src MAC = 02:00:01:02:03:04.
  EXPECT_EQ(buf[0], 0x02);
  EXPECT_EQ(buf[2], 5);
  EXPECT_EQ(buf[5], 8);
  EXPECT_EQ(buf[6], 0x02);
  EXPECT_EQ(buf[8], 1);
  EXPECT_EQ(buf[11], 4);
}

TEST(Wire, RejectsUnknownProtocol) {
  const Packet p = make_udp_packet(1, 2, 3, 4, 0);
  std::size_t len = 0;
  auto buf = serialize(p, len);
  buf[kEthernetHeaderBytes + 9] = 47;  // GRE: not modelled
  // Fix up the checksum for the modified protocol byte so the parse
  // reaches the protocol dispatch.
  buf[kEthernetHeaderBytes + 10] = buf[kEthernetHeaderBytes + 11] = 0;
  const std::uint16_t csum =
      internet_checksum({buf.data() + kEthernetHeaderBytes, 20});
  buf[kEthernetHeaderBytes + 10] = static_cast<std::uint8_t>(csum >> 8);
  buf[kEthernetHeaderBytes + 11] = static_cast<std::uint8_t>(csum & 0xFF);
  EXPECT_FALSE(parse_headers({buf.data(), len}).has_value());
}

TEST(Wire, ChecksumKnownProperties) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(internet_checksum(zeros), 0xFFFF);
  const std::uint8_t ones[2] = {0xFF, 0xFF};
  EXPECT_EQ(internet_checksum(ones), 0x0000);
  const std::uint8_t odd[3] = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834 -> ~ = 0x97CB.
  EXPECT_EQ(internet_checksum(odd), 0x97CB);
}

}  // namespace
}  // namespace p4s::net
