// The sketch subsystem at fabric level: a multi-switch deployment
// configured (end to end through the JSON loader) with the cuckoo flow
// table and switch-wide histogram engines.
//
//   * The histogram extractors emit per-site Report_v1 documents.
//   * Flow conservation per site: every detected long flow is either
//     still active or finalized — eviction digests behave like FINs.
//   * Parallel sharded execution stays byte-identical to the serial
//     run with the new subsystem enabled (parallel = 1 vs 4).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/config_loader.hpp"
#include "core/monitoring_system.hpp"

namespace p4s {
namespace {

using core::MonitoringSystem;
using core::MonitoringSystemConfig;
using units::seconds;

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  cp::ReportSink* next = nullptr;  // tee: keep the transport path live
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
    if (next != nullptr) next->on_report(report);
  }
};

// Three monitored switches, cuckoo flow table, RTT + queue-delay
// histograms — declared the way an experiment would declare it.
MonitoringSystemConfig cuckoo_scenario(std::size_t parallel) {
  MonitoringSystemConfig config = core::config_from_text(R"({
    "seed": 42,
    "topology": {"bottleneck_mbps": 2},
    "program": {"promotion_kb": 10},
    "telemetry": {
      "flow_table": "cuckoo",
      "cuckoo": {"ways": 4, "max_kicks": 16, "idle_age_s": 2},
      "histograms": [
        {"metric": "rtt"},
        {"metric": "queue_delay", "min_us": 1, "max_ms": 2000}
      ]
    },
    "switches": [
      {"id": "core", "tap": "core"},
      {"id": "ext0", "tap": "wan_ext0"},
      {"id": "ext1", "tap": "wan_ext1"}
    ]
  })");
  config.parallel = parallel;
  return config;
}

struct RunOutput {
  std::vector<std::vector<std::string>> site_reports;
  // Per-site conservation counters at end of run.
  std::vector<std::size_t> detected;
  std::vector<std::size_t> active;
  std::vector<std::size_t> finalized;
};

RunOutput run_cuckoo_fabric(std::size_t parallel) {
  MonitoringSystem system(cuckoo_scenario(parallel));
  std::vector<Collector> sites(system.switch_count());
  for (std::size_t i = 0; i < system.switch_count(); ++i) {
    auto& plane = system.monitored_switch(i).control_plane();
    sites[i].next = plane.sink();
    plane.set_sink(&sites[i]);
  }
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.add_transfer(2).start_at(seconds(4));
  system.run_until(seconds(8));

  RunOutput out;
  for (std::size_t i = 0; i < system.switch_count(); ++i) {
    auto& sw = system.monitored_switch(i);
    out.site_reports.push_back(std::move(sites[i].lines));
    std::size_t detected = 0;
    for (const auto& line : out.site_reports.back()) {
      if (line.find("\"report\":\"flow_detected\"") != std::string::npos) {
        ++detected;
      }
    }
    out.detected.push_back(detected);
    out.active.push_back(sw.control_plane().flows().size());
    out.finalized.push_back(sw.control_plane().final_reports().size());
    // The cuckoo table really is in play at every site.
    EXPECT_EQ(sw.program().tracker().flow_table(),
              telemetry::FlowTableKind::kCuckoo);
    EXPECT_NE(sw.program().tracker().cuckoo_table(), nullptr);
  }
  return out;
}

TEST(SketchFabric, HistogramReportsEmittedPerSite) {
  const RunOutput out = run_cuckoo_fabric(1);
  ASSERT_EQ(out.site_reports.size(), 3u);
  for (std::size_t s = 0; s < out.site_reports.size(); ++s) {
    std::size_t rtt_docs = 0;
    std::size_t queue_docs = 0;
    for (const auto& line : out.site_reports[s]) {
      if (line.find("\"report\":\"rtt_histogram\"") != std::string::npos) {
        ++rtt_docs;
        EXPECT_NE(line.find("\"p99_ms\":"), std::string::npos);
        EXPECT_NE(line.find("\"histogram\":{"), std::string::npos);
      }
      if (line.find("\"report\":\"queue_delay_histogram\"") !=
          std::string::npos) {
        ++queue_docs;
      }
    }
    EXPECT_GT(rtt_docs, 0u) << "site " << s;
    EXPECT_GT(queue_docs, 0u) << "site " << s;
  }
  // The monitored bottleneck actually measured RTTs: at least one core
  // report carries samples.
  bool core_sampled = false;
  for (const auto& line : out.site_reports[0]) {
    if (line.find("\"report\":\"rtt_histogram\"") != std::string::npos &&
        line.find("\"samples\":0") == std::string::npos) {
      core_sampled = true;
    }
  }
  EXPECT_TRUE(core_sampled);
}

TEST(SketchFabric, FlowConservationPerSiteWithCuckooTable) {
  const RunOutput out = run_cuckoo_fabric(1);
  for (std::size_t s = 0; s < out.site_reports.size(); ++s) {
    // Every promoted flow is accounted for exactly once: still active or
    // finalized (FIN, idle timeout, or cuckoo eviction digest).
    EXPECT_EQ(out.detected[s], out.active[s] + out.finalized[s])
        << "site " << s;
  }
  // The scenario's transfers were long enough to promote on the core.
  EXPECT_GT(out.detected[0], 0u);
}

TEST(SketchFabric, ParallelExecutionByteIdenticalWithSketchSubsystem) {
  const RunOutput serial = run_cuckoo_fabric(1);
  for (const auto& site : serial.site_reports) ASSERT_FALSE(site.empty());
  const RunOutput parallel = run_cuckoo_fabric(4);
  ASSERT_EQ(serial.site_reports.size(), parallel.site_reports.size());
  for (std::size_t s = 0; s < serial.site_reports.size(); ++s) {
    ASSERT_EQ(serial.site_reports[s].size(), parallel.site_reports[s].size())
        << "site " << s << " report count diverged";
    for (std::size_t i = 0; i < serial.site_reports[s].size(); ++i) {
      ASSERT_EQ(serial.site_reports[s][i], parallel.site_reports[s][i])
          << "site " << s << " report " << i;
    }
  }
  EXPECT_EQ(serial.detected, parallel.detected);
}

}  // namespace
}  // namespace p4s
