// Tests: the archiver's storage-backend seam. Every ArchiverQuery edge
// case runs against BOTH backends (in-memory and durable store) and must
// produce byte-identical results; a grep-enforced test pins all archiver
// consumers to the seam (no direct index-map access anywhere in psonar).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "psonar/archiver.hpp"
#include "psonar/store_backend.hpp"
#include "store/store.hpp"

namespace p4s::ps {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "p4s_backend_" + name;
  fs::remove_all(dir);
  return dir;
}

util::Json doc_at(std::int64_t ts, std::int64_t value,
                  const std::string& site) {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = ts;
  doc["throughput_bps"] = value;
  doc["switch_id"] = site;
  return doc;
}

/// A pair of archivers fed identical documents: one on MemoryBackend, one
/// on a StoreBackend whose store is part-sealed, part-memtable (so every
/// query crosses the segment/memtable boundary).
class BothBackendsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<store::Store>(dir_);
    durable_.set_backend(std::make_unique<StoreBackend>(*store_));
  }

  void add(const std::string& index, util::Json doc) {
    durable_.index(index, doc);
    memory_.index(index, std::move(doc));
  }

  void seal() { store_->seal_all(); }

  /// search() on both backends must dump byte-identically.
  void expect_same(const std::string& index,
                   const Archiver::Query& query) const {
    const auto mem = memory_.search(index, query);
    const auto dur = durable_.search(index, query);
    ASSERT_EQ(mem.size(), dur.size());
    for (std::size_t i = 0; i < mem.size(); ++i) {
      EXPECT_EQ(mem[i].dump(), dur[i].dump()) << "doc " << i;
    }
  }

  std::string dir_;
  std::unique_ptr<store::Store> store_;
  Archiver memory_;
  Archiver durable_;
};

TEST_F(BothBackendsTest, PopulatedQueriesAgree) {
  const char* sites[] = {"lbl", "anl"};
  for (int i = 0; i < 12; ++i) {
    add("tput", doc_at(100 * i, i, sites[i % 2]));
  }
  seal();  // first dozen in a segment...
  for (int i = 12; i < 18; ++i) {
    add("tput", doc_at(100 * i, i, sites[i % 2]));  // ...rest in memtable
  }

  expect_same("tput", {});
  Archiver::Query by_site;
  by_site.terms["switch_id"] = util::Json("anl");
  expect_same("tput", by_site);
  Archiver::Query range;
  range.range_field = "ts_ns";
  range.range_min = 450;
  range.range_max = 1350;
  expect_same("tput", range);

  // The kitchen sink: limit + newest_first + range combined.
  Archiver::Query combined;
  combined.range_field = "ts_ns";
  combined.range_min = 200;
  combined.range_max = 1500;
  combined.limit = 4;
  combined.newest_first = true;
  expect_same("tput", combined);
  const auto hits = durable_.search("tput", combined);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].at("ts_ns").as_int(), 1500);
  EXPECT_EQ(hits[3].at("ts_ns").as_int(), 1200);

  // limit=0 means unlimited, not zero results.
  Archiver::Query unlimited;
  unlimited.limit = 0;
  expect_same("tput", unlimited);
  EXPECT_EQ(durable_.search("tput", unlimited).size(), 18u);

  // Aggregations agree too (exactly-representable integer values, so the
  // columnar fast path and the generic fold sum identically).
  for (const auto& query :
       {Archiver::Query{}, range, by_site, combined}) {
    const auto mem_agg = memory_.aggregate("tput", "throughput_bps", query);
    const auto dur_agg =
        durable_.aggregate("tput", "throughput_bps", query);
    EXPECT_EQ(mem_agg.count, dur_agg.count);
    EXPECT_EQ(mem_agg.min, dur_agg.min);
    EXPECT_EQ(mem_agg.max, dur_agg.max);
    EXPECT_EQ(mem_agg.sum, dur_agg.sum);
    EXPECT_EQ(mem_agg.avg, dur_agg.avg);
  }
}

TEST_F(BothBackendsTest, EmptyAndUnknownIndices) {
  expect_same("never-written", {});
  EXPECT_TRUE(durable_.search("never-written", {}).empty());
  EXPECT_EQ(durable_.doc_count("never-written"), 0u);
  EXPECT_EQ(memory_.aggregate("never-written", "x", {}).count, 0u);
  EXPECT_EQ(durable_.aggregate("never-written", "x", {}).count, 0u);
  EXPECT_TRUE(durable_.indices().empty());
  EXPECT_EQ(durable_.total_docs(), 0u);

  Archiver::Query query;
  query.range_field = "ts_ns";
  query.range_min = 0;
  query.limit = 3;
  query.newest_first = true;
  expect_same("never-written", query);
}

TEST_F(BothBackendsTest, RangeFieldMissingFromSomeDocs) {
  for (int i = 0; i < 6; ++i) {
    add("mixed", doc_at(100 * i, i, "lbl"));
    util::Json bare = util::Json::object();  // no ts_ns at all
    bare["note"] = "no-timestamp";
    bare["throughput_bps"] = 1000 + i;
    add("mixed", std::move(bare));
  }
  seal();
  Archiver::Query range;
  range.range_field = "ts_ns";
  range.range_min = 100;
  range.range_max = 400;
  expect_same("mixed", range);
  // Docs without the range field never match a range query.
  EXPECT_EQ(durable_.search("mixed", range).size(), 4u);
  // Without a range, the bare docs are back.
  expect_same("mixed", {});
  EXPECT_EQ(durable_.search("mixed", {}).size(), 12u);
  // Aggregating a field only some docs carry: both paths skip absentees.
  const auto mem_agg = memory_.aggregate("mixed", "ts_ns", {});
  const auto dur_agg = durable_.aggregate("mixed", "ts_ns", {});
  EXPECT_EQ(mem_agg.count, 6u);
  EXPECT_EQ(dur_agg.count, 6u);
  EXPECT_EQ(mem_agg.sum, dur_agg.sum);
}

TEST_F(BothBackendsTest, TermOnNestedPathAndNonScalarValue) {
  for (int i = 0; i < 4; ++i) {
    util::Json doc = doc_at(i, i, "lbl");
    util::Json flow = util::Json::object();
    flow["dst_ip"] = (i % 2 == 0) ? "10.1.0.10" : "10.1.0.11";
    doc["flow"] = std::move(flow);
    add("nested", std::move(doc));
  }
  seal();
  Archiver::Query nested;
  nested.terms["flow.dst_ip"] = util::Json("10.1.0.10");
  expect_same("nested", nested);
  EXPECT_EQ(durable_.search("nested", nested).size(), 2u);
  // A non-scalar term value gets no bloom key; it must still filter
  // correctly (just without pruning).
  Archiver::Query object_term;
  util::Json want = util::Json::object();
  want["dst_ip"] = "10.1.0.10";
  object_term.terms["flow"] = std::move(want);
  expect_same("nested", object_term);
  EXPECT_EQ(durable_.search("nested", object_term).size(), 2u);
}

TEST(ArchiverSeam, SetBackendOnlyWhileEmpty) {
  Archiver archiver;
  archiver.set_backend(std::make_unique<MemoryBackend>());  // empty: fine
  archiver.index("idx", util::Json::object());
  EXPECT_THROW(archiver.set_backend(std::make_unique<MemoryBackend>()),
               std::logic_error);
  EXPECT_THROW(archiver.set_backend(nullptr), std::logic_error);
}

// Satellite 4, grep-enforced: archiver consumers (and the Archiver
// facade itself) must route through the backend seam. None of them may
// hold or touch a direct index map — the old `indices_` member is gone
// and must stay gone everywhere except the backend implementations.
TEST(ArchiverSeam, NoDirectIndexMapAccessOutsideBackends) {
  const std::string source_dir = P4S_SOURCE_DIR;
  const char* files[] = {
      "psonar/archiver.hpp",    "psonar/archiver.cpp",
      "psonar/analytics.cpp",   "psonar/maddash.cpp",
      "psonar/logstash.cpp",    "psonar/node.hpp",
      "psonar/store_backend.cpp",
  };
  for (const char* file : files) {
    const std::string path = source_dir + "/" + file;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_EQ(text.find("indices_"), std::string::npos)
        << file << " touches a direct index map instead of the "
        << "ArchiverBackend seam";
    EXPECT_EQ(text.find("docs_by_index_"), std::string::npos)
        << file << " reaches into MemoryBackend storage";
  }
}

// Property-based equivalence (satellite of the serving PR): a seeded
// random document corpus and a seeded random query mix must produce
// byte-identical results from the MemoryBackend, from a cold
// StoreBackend (freshly reopened, tiny cache so every segment load hits
// disk), and from the same StoreBackend warm (second pass, cache
// populated). Any divergence between the serving read path (snapshots,
// posting lists, block cache, tiered segments) and the reference
// in-memory scan fails with the query number for replay.
namespace property {

struct RandomCorpus {
  std::mt19937 rng{20260808};
  const std::vector<std::string> sites{"s0", "s1", "s2", "s3"};

  util::Json make_doc(int i) {
    util::Json doc = util::Json::object();
    // ~1 in 8 docs has no timestamp at all (range queries must skip it).
    if (rng() % 8 != 0) {
      doc["ts_ns"] = static_cast<std::int64_t>(rng() % 5000) * 100;
    }
    doc["throughput_bps"] = static_cast<std::int64_t>(rng() % 4096);
    doc["switch_id"] = sites[rng() % sites.size()];
    if (rng() % 4 == 0) {
      util::Json flow = util::Json::object();
      flow["dst_ip"] = (rng() % 2 == 0) ? "10.1.0.10" : "10.1.0.11";
      doc["flow"] = std::move(flow);
    }
    doc["seq"] = static_cast<std::int64_t>(i);  // ties every doc to its slot
    return doc;
  }

  ArchiverQuery make_query() {
    ArchiverQuery query;
    if (rng() % 2 == 0) {
      query.range_field = "ts_ns";
      const auto lo = static_cast<double>(rng() % 500'000);
      switch (rng() % 3) {
        case 0: query.range_min = lo; break;
        case 1: query.range_max = lo; break;
        default:
          query.range_min = lo;
          query.range_max = lo + static_cast<double>(rng() % 200'000);
      }
    }
    switch (rng() % 4) {
      case 0:
        query.terms["switch_id"] = util::Json(sites[rng() % sites.size()]);
        break;
      case 1:
        query.terms["flow.dst_ip"] = util::Json("10.1.0.10");
        break;
      default: break;  // half the queries have no term
    }
    const std::size_t limits[] = {0, 0, 1, 3, 10};
    query.limit = limits[rng() % 5];
    query.newest_first = (rng() % 2) == 0;
    return query;
  }
};

std::vector<std::string> collect(const Archiver& archiver,
                                 const std::string& index,
                                 const ArchiverQuery& query) {
  std::vector<std::string> dumps;
  archiver.for_each(index, query, [&](const util::Json& doc) {
    dumps.push_back(doc.dump());
    return true;
  });
  return dumps;
}

TEST(BackendEquivalenceProperty, SeededRandomQueriesAgreeColdAndWarm) {
  const std::string dir = fresh_dir("property");
  RandomCorpus corpus;

  Archiver memory;
  const char* indices[] = {"tput", "loss"};
  {
    // Small segments + aggressive tiering: the corpus ends up spread
    // over several merged segments plus an unsealed memtable tail.
    store::StoreConfig config;
    config.wal_batch_docs = 8;
    config.seal_min_docs = 16;
    config.compact_fanin = 2;
    store::Store store(dir, config);
    Archiver durable;
    durable.set_backend(std::make_unique<StoreBackend>(store));
    for (int i = 0; i < 400; ++i) {
      const std::string index = indices[corpus.rng() % 2];
      util::Json doc = corpus.make_doc(i);
      durable.index(index, doc);
      memory.index(index, std::move(doc));
      if (i % 32 == 31) store.maintain();
    }
    store.flush();  // commit the tail; do NOT seal it — keep a memtable
  }

  // Cold: reopen from disk with a one-byte cache, so every segment read
  // is a genuine load (and evictions churn constantly).
  store::StoreConfig cold_config;
  cold_config.cache_bytes = 1;
  cold_config.cache_shards = 1;
  store::Store reopened(dir, cold_config, store::OpenMode::read_only);
  Archiver cold;
  cold.set_backend(std::make_unique<StoreBackend>(reopened));

  corpus.rng.seed(977);  // query stream is independently replayable
  for (int q = 0; q < 200; ++q) {
    const ArchiverQuery query = corpus.make_query();
    for (const char* index : indices) {
      SCOPED_TRACE("query " + std::to_string(q) + " on " + index);
      const auto want = collect(memory, index, query);
      const auto got_cold = collect(cold, index, query);
      ASSERT_EQ(want, got_cold);
      // Warm: same archiver again — now served from the block cache.
      const auto got_warm = collect(cold, index, query);
      ASSERT_EQ(want, got_warm);

      if (query.limit == 0) {
        const auto mem_agg = memory.aggregate(index, "throughput_bps", query);
        const auto dur_agg = cold.aggregate(index, "throughput_bps", query);
        ASSERT_EQ(mem_agg.count, dur_agg.count);
        ASSERT_EQ(mem_agg.min, dur_agg.min);
        ASSERT_EQ(mem_agg.max, dur_agg.max);
        ASSERT_EQ(mem_agg.sum, dur_agg.sum);  // integral values: exact
      }
    }
  }

  // The cold pass really did run the serving machinery, not a fallback.
  const auto stats = reopened.stats();
  EXPECT_GT(stats.snapshots, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_evictions, 0u);
}

}  // namespace property

}  // namespace
}  // namespace p4s::ps
