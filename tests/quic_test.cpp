// QUIC-like transport tests: handshake + bulk transfer over the real
// simulated path, loss recovery (packet-threshold + RTO), spin-bit
// emission per RFC 9000 §17.4, deterministic connection-ID derivation,
// and wire-format round trips through the frame codec.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "net/wire.hpp"
#include "quic/flow.hpp"
#include "sim/simulation.hpp"

namespace p4s::quic {
namespace {

TEST(QuicWire, ShortHeaderRoundTrips) {
  net::QuicHeader hdr;
  hdr.long_form = false;
  hdr.spin = true;
  hdr.dcid = 0xDEADBEEFCAFEF00DULL;
  hdr.packet_number = 77;
  net::Packet pkt = net::make_quic_packet(net::ipv4(10, 0, 0, 10),
                                          net::ipv4(10, 1, 0, 10), 40000,
                                          4433, hdr, 1200);
  std::vector<std::uint8_t> wire(net::kMaxHeaderBytes);
  const std::size_t n = net::serialize_headers(pkt, wire);
  const auto parsed = net::parse_headers({wire.data(), n});
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_quic());
  EXPECT_FALSE(parsed->quic.long_form);
  EXPECT_TRUE(parsed->quic.spin);
  EXPECT_EQ(parsed->quic.dcid, hdr.dcid);
  EXPECT_EQ(parsed->quic.packet_number, 77u);
}

TEST(QuicWire, LongHeaderRoundTrips) {
  net::QuicHeader hdr;
  hdr.long_form = true;
  hdr.type = 0;  // Initial
  hdr.dcid = 0x1111222233334444ULL;
  hdr.scid = 0x5555666677778888ULL;
  hdr.packet_number = 0;
  net::Packet pkt = net::make_quic_packet(net::ipv4(10, 0, 0, 10),
                                          net::ipv4(10, 1, 0, 10), 40000,
                                          4433, hdr, 1200);
  std::vector<std::uint8_t> wire(net::kMaxHeaderBytes);
  const std::size_t n = net::serialize_headers(pkt, wire);
  const auto parsed = net::parse_headers({wire.data(), n});
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_quic());
  EXPECT_TRUE(parsed->quic.long_form);
  EXPECT_EQ(parsed->quic.dcid, hdr.dcid);
  EXPECT_EQ(parsed->quic.scid, hdr.scid);
}

struct QuicFlowFixture : ::testing::Test {
  sim::Simulation sim{42};
  net::Network network{sim};
  net::PaperTopology topo;

  void SetUp() override {
    net::PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(200);
    topo = net::make_paper_topology(network, config);
  }
};

TEST_F(QuicFlowFixture, HandshakeAndFixedTransferCompletes) {
  QuicFlow::Config config;
  config.sender.bytes_to_send = 2'000'000;
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  bool completed = false;
  flow.set_on_complete([&]() { completed = true; });
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(20));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 2'000'000u);
  EXPECT_TRUE(flow.receiver().stats().fin_received);
  EXPECT_EQ(flow.sender().stats().stream_bytes_sent, 2'000'000u);
  EXPECT_EQ(flow.sender().stats().bytes_acked, 2'000'000u);
  EXPECT_GT(flow.sender().stats().established_time, 0u);
}

TEST_F(QuicFlowFixture, UnboundedTransferStopsOnRequest) {
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0]);
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(5));
  sim.run_until(units::seconds(12));
  EXPECT_TRUE(flow.complete());
  EXPECT_GT(flow.receiver().stats().goodput_bytes, 1'000'000u);
  EXPECT_EQ(flow.receiver().stats().goodput_bytes,
            flow.sender().stats().stream_bytes_sent);
}

TEST_F(QuicFlowFixture, DataIntactUnderRandomLoss) {
  // 1% loss toward the receiver: packet-threshold detection plus the
  // RTO backstop must still deliver every stream byte exactly once.
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.01);
  QuicFlow::Config config;
  config.sender.bytes_to_send = 1'000'000;
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(60));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 1'000'000u);
  EXPECT_GT(flow.sender().stats().retransmitted_packets, 0u);
}

TEST_F(QuicFlowFixture, SurvivesAckPathLoss) {
  topo.ext_dtn_links[0].forward_link->set_loss_rate(0.01);
  QuicFlow::Config config;
  config.sender.bytes_to_send = 1'000'000;
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(60));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 1'000'000u);
}

TEST_F(QuicFlowFixture, SpinBitTogglesOncePerRtt) {
  // ~3 s established at ~20 ms RTT: the client must have emitted on the
  // order of 150 spin edges — one per RTT, not per packet.
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0]);
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(3));
  sim.run_until(units::seconds(8));
  const auto& s = flow.sender().stats();
  EXPECT_GT(s.spin_flips, 20u);
  EXPECT_LT(s.spin_flips, s.packets_sent / 2);
}

TEST_F(QuicFlowFixture, ConnectionIdsAreDeterministicAndDistinct) {
  QuicFlow a(sim, *topo.dtn_internal, *topo.dtn_ext[0]);
  QuicFlow b(sim, *topo.dtn_internal, *topo.dtn_ext[1]);
  EXPECT_NE(a.server_cid(), 0u);
  EXPECT_NE(a.client_cid(), 0u);
  EXPECT_NE(a.server_cid(), a.client_cid());
  EXPECT_NE(a.server_cid(), b.server_cid());
  // Same endpoints + ports -> same derivation in a fresh simulation.
  sim::Simulation sim2{42};
  net::Network network2{sim2};
  net::PaperTopologyConfig config;
  config.bottleneck_bps = units::mbps(200);
  net::PaperTopology topo2 = net::make_paper_topology(network2, config);
  QuicFlow a2(sim2, *topo2.dtn_internal, *topo2.dtn_ext[0]);
  EXPECT_EQ(a.server_cid(), a2.server_cid());
  EXPECT_EQ(a.client_cid(), a2.client_cid());
}

TEST_F(QuicFlowFixture, HandshakeSurvivesInitialLoss) {
  // Heavy early loss: the Initial (or its reply) may be dropped; the
  // client's RTO must re-drive the handshake until it establishes.
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.3);
  QuicFlow::Config config;
  config.sender.bytes_to_send = 50'000;
  QuicFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(2));
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.0);
  sim.run_until(units::seconds(30));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 50'000u);
}

}  // namespace
}  // namespace p4s::quic
