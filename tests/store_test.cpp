// Tests: the durable time-series store (src/store) — WAL framing and the
// crash-recovery invariant (every-byte truncation matrix), sealed-segment
// round-trips, range/term segment pruning, compaction, rollups, the
// columnar aggregation fast path, offline verification, and the
// p4s-store CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "store/codec.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"
#include "store/store_cli.hpp"
#include "store/wal.hpp"

namespace p4s::store {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "p4s_store_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

util::Json doc_at(std::int64_t ts, std::int64_t value,
                  const std::string& site = "lbl") {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = ts;
  doc["throughput_bps"] = value;
  doc["switch_id"] = site;
  util::Json flow = util::Json::object();
  flow["dst_ip"] = "10.1.0.10";
  doc["flow"] = std::move(flow);
  return doc;
}

// ---------- codec ----------

TEST(Codec, VarintAndZigzagRoundTrip) {
  std::string buf;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 32,
                                  ~0ULL};
  for (auto v : values) put_varint(buf, v);
  const std::int64_t signed_values[] = {0, -1, 1, -64, 64, INT64_MIN,
                                        INT64_MAX};
  for (auto v : signed_values) put_svarint(buf, v);
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  for (auto v : signed_values) EXPECT_EQ(r.svarint(), v);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, TruncatedVarintIsNullopt) {
  std::string buf;
  put_varint(buf, 1ULL << 40);
  const std::string cut = buf.substr(0, 2);
  ByteReader r(cut);
  EXPECT_FALSE(r.varint().has_value());
}

// ---------- WAL ----------

TEST(Wal, CommittedBatchesReplayUncommittedDoNot) {
  const std::string dir = fresh_dir("wal_basic");
  fs::create_directories(dir);
  const std::string path = dir + "/wal.log";
  {
    WalWriter writer(path);
    writer.append({"idx", 0, "{\"a\":1}"});
    writer.append({"idx", 1, "{\"a\":2}"});
    writer.commit();
    writer.append({"other", 0, "{\"b\":1}"});
    // no commit: this record must not survive
  }
  const auto replay = replay_wal(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.batches, 1u);
  EXPECT_EQ(replay.tail_bytes_dropped, 0u);
  EXPECT_EQ(replay.records[0].index, "idx");
  EXPECT_EQ(replay.records[1].seq, 1u);
  EXPECT_EQ(replay.records[1].doc, "{\"a\":2}");
}

TEST(Wal, MissingFileReplaysEmpty) {
  const auto replay = replay_wal(fresh_dir("wal_missing") + "/nope.log");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.tail_bytes_dropped, 0u);
}

TEST(Wal, CorruptPayloadByteDropsTheTail) {
  const std::string dir = fresh_dir("wal_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/wal.log";
  {
    WalWriter writer(path);
    writer.append({"idx", 0, "{\"a\":1}"});
    writer.commit();
    writer.append({"idx", 1, "{\"a\":2}"});
    writer.commit();
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit inside the last payload
  const auto replay = replay_wal_bytes(bytes);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].doc, "{\"a\":1}");
  EXPECT_GT(replay.tail_bytes_dropped, 0u);
}

// The crash-recovery matrix (the subsystem's core invariant): truncating
// the WAL at EVERY byte offset recovers exactly the longest
// committed-batch prefix — never a partial batch, never a partial
// document, never an exception.
TEST(Wal, TruncationAtEveryByteRecoversLongestCommittedPrefix) {
  const std::string dir = fresh_dir("wal_matrix");
  fs::create_directories(dir);
  const std::string path = dir + "/wal.log";
  // 5 batches of varying size; remember the file size and cumulative doc
  // count after each commit.
  std::vector<std::size_t> batch_end_offset;
  std::vector<std::size_t> docs_at_batch;
  std::vector<WalRecord> all;
  {
    WalWriter writer(path);
    std::uint64_t seq = 0;
    for (int b = 0; b < 5; ++b) {
      for (int d = 0; d <= b; ++d) {
        WalRecord record{"idx" + std::to_string(b % 2), seq++,
                         doc_at(1000 * seq, seq).dump()};
        writer.append(record);
        all.push_back(record);
      }
      writer.commit();
      batch_end_offset.push_back(
          static_cast<std::size_t>(fs::file_size(path)));
      docs_at_batch.push_back(all.size());
    }
  }
  const std::string bytes = read_file(path);
  ASSERT_EQ(bytes.size(), batch_end_offset.back());

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    // Longest committed prefix that fits in `cut` bytes.
    std::size_t expect_docs = 0;
    std::uint64_t expect_batches = 0;
    for (std::size_t b = 0; b < batch_end_offset.size(); ++b) {
      if (batch_end_offset[b] <= cut) {
        expect_docs = docs_at_batch[b];
        expect_batches = b + 1;
      }
    }
    const auto replay = replay_wal_bytes(
        std::string_view(bytes).substr(0, cut));
    ASSERT_EQ(replay.records.size(), expect_docs) << "cut at " << cut;
    ASSERT_EQ(replay.batches, expect_batches) << "cut at " << cut;
    for (std::size_t i = 0; i < expect_docs; ++i) {
      ASSERT_EQ(replay.records[i].index, all[i].index);
      ASSERT_EQ(replay.records[i].seq, all[i].seq);
      ASSERT_EQ(replay.records[i].doc, all[i].doc);
    }
    const bool clean_boundary =
        cut == 0 || (expect_batches > 0 &&
                     batch_end_offset[expect_batches - 1] == cut);
    EXPECT_EQ(replay.tail_bytes_dropped == 0, clean_boundary)
        << "cut at " << cut;
  }
}

// ---------- segments ----------

TEST(Segments, RoundTripPreservesDocsOrderAndStats) {
  const std::string dir = fresh_dir("seg_roundtrip");
  fs::create_directories(dir);
  std::vector<util::Json> docs = {doc_at(100, 7), doc_at(300, 9, "anl"),
                                  doc_at(200, 5)};
  const std::string path = dir + "/a.seg";
  const auto built = write_segment(path, "idx", 40, docs, "ts_ns",
                                   {"throughput_bps"});
  EXPECT_EQ(built.info.docs, 3u);
  EXPECT_EQ(built.info.base_seq, 40u);
  EXPECT_TRUE(built.info.has_time);
  EXPECT_EQ(built.info.min_ts, 100);
  EXPECT_EQ(built.info.max_ts, 300);
  const auto& tput = built.summaries.at("throughput_bps");
  EXPECT_EQ(tput.count, 3u);
  EXPECT_EQ(tput.min, 5.0);
  EXPECT_EQ(tput.max, 9.0);
  EXPECT_EQ(tput.sum, 21.0);

  const Segment seg = Segment::load(path);
  EXPECT_EQ(seg.info().index, "idx");
  std::vector<std::string> texts;
  std::vector<std::uint64_t> seqs;
  seg.for_each_doc(false, [&](std::uint64_t seq, std::string_view text) {
    seqs.push_back(seq);
    texts.emplace_back(text);
    return true;
  });
  ASSERT_EQ(texts.size(), 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{40, 41, 42}));
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(texts[i], docs[i].dump());
  }
  // Columns decode back to the raw values (time column delta-encoded).
  const auto ts = seg.decode_column("ts_ns");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0], 100.0);
  EXPECT_EQ(ts[1], 300.0);
  EXPECT_EQ(ts[2], 200.0);
  // Bloom: present terms may match, absent terms must not.
  EXPECT_TRUE(seg.maybe_contains_term(term_key("switch_id", "anl")));
  EXPECT_TRUE(
      seg.maybe_contains_term(term_key("flow.dst_ip", "10.1.0.10")));
  EXPECT_FALSE(
      seg.maybe_contains_term(term_key("switch_id", "definitely-not")));
}

TEST(Segments, MissingAndDoubleColumnValues) {
  const std::string dir = fresh_dir("seg_missing");
  fs::create_directories(dir);
  util::Json plain = util::Json::object();
  plain["ts_ns"] = 5;
  std::vector<util::Json> docs = {doc_at(1, 2), plain};
  docs[0]["weight"] = 2.5;
  const std::string path = dir + "/a.seg";
  write_segment(path, "idx", 0, docs, "ts_ns",
                {"throughput_bps", "weight"});
  const Segment seg = Segment::load(path);
  const auto tput = seg.decode_column("throughput_bps");
  ASSERT_EQ(tput.size(), 2u);
  EXPECT_EQ(tput[0], 2.0);
  EXPECT_FALSE(tput[1].has_value());
  const auto weight = seg.decode_column("weight");
  EXPECT_EQ(weight[0], 2.5);
  EXPECT_FALSE(weight[1].has_value());
  EXPECT_TRUE(seg.decode_column("not_a_column").empty());
}

TEST(Segments, CorruptionRaisesStoreError) {
  const std::string dir = fresh_dir("seg_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/a.seg";
  write_segment(path, "idx", 0, {doc_at(1, 2)}, "ts_ns", {});
  std::string bytes = read_file(path);
  {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x01;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << flipped;
    EXPECT_THROW(Segment::load(path), StoreError);
  }
  {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, bytes.size() / 2);
    EXPECT_THROW(Segment::load(path), StoreError);
  }
  {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << "junk";
    EXPECT_THROW(Segment::load(path), StoreError);
  }
}

// ---------- the store ----------

TEST(StoreLifecycle, AppendSealReopenPreservesEverything) {
  const std::string dir = fresh_dir("lifecycle");
  StoreConfig config;
  config.rollup_fields = {"throughput_bps"};
  config.rollup_bucket_ns = 1000;
  std::vector<std::string> dumps;
  {
    Store store(dir, config);
    for (int i = 0; i < 10; ++i) {
      const auto seq = store.append("idx", doc_at(100 * i, i));
      EXPECT_EQ(seq, static_cast<std::uint64_t>(i));
      dumps.push_back(doc_at(100 * i, i).dump());
    }
    store.seal("idx");                      // first 10 sealed
    store.append("idx", doc_at(5000, 99));  // unsealed tail, via WAL
    dumps.push_back(doc_at(5000, 99).dump());
    store.flush();
    EXPECT_EQ(store.doc_count("idx"), 11u);
    EXPECT_EQ(store.segment_count("idx"), 1u);
    EXPECT_EQ(store.memtable_docs("idx"), 1u);
  }
  // Fresh instance: manifest + segment + WAL tail reconstruct the store.
  Store store(dir, config);
  EXPECT_EQ(store.doc_count("idx"), 11u);
  EXPECT_EQ(store.total_docs(), 11u);
  EXPECT_EQ(store.memtable_docs("idx"), 1u);
  EXPECT_EQ(store.indices(), std::vector<std::string>{"idx"});
  std::vector<std::string> scanned;
  store.scan("idx", {}, [&](const util::Json& doc) {
    scanned.push_back(doc.dump());
    return true;
  });
  EXPECT_EQ(scanned, dumps);
  // Rollups persisted through the manifest: buckets of 1000 ns over the
  // sealed docs only (values 0..9 at 100 ns spacing).
  const RollupSeries* series = store.rollup("idx", "throughput_bps");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  const auto& bucket = series->at(0);
  EXPECT_EQ(bucket.count, 10u);
  EXPECT_EQ(bucket.min, 0.0);
  EXPECT_EQ(bucket.max, 9.0);
  EXPECT_EQ(bucket.mean(), 4.5);
}

TEST(StoreLifecycle, NewestFirstScanReversesSegmentsAndMemtable) {
  const std::string dir = fresh_dir("newest");
  Store store(dir);
  for (int i = 0; i < 4; ++i) store.append("idx", doc_at(i, i));
  store.seal("idx");
  for (int i = 4; i < 6; ++i) store.append("idx", doc_at(i, i));
  std::vector<std::int64_t> order;
  Store::ScanOptions newest;
  newest.newest_first = true;
  store.scan("idx", newest, [&](const util::Json& doc) {
    order.push_back(doc.at("ts_ns").as_int());
    return true;
  });
  EXPECT_EQ(order, (std::vector<std::int64_t>{5, 4, 3, 2, 1, 0}));
}

TEST(StorePruning, TimeRangePrunesDisjointSegments) {
  const std::string dir = fresh_dir("prune_time");
  Store store(dir);
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 5; ++i) {
      store.append("idx", doc_at(seg * 1000 + i, i));
    }
    store.seal("idx");
  }
  ASSERT_EQ(store.segment_count("idx"), 3u);
  Store::ScanOptions options;
  options.range_field = "ts_ns";
  options.range_min = 1000;
  options.range_max = 1004;
  std::size_t visited = 0;
  store.scan("idx", options, [&](const util::Json&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 5u);  // only the middle segment's docs get parsed
  EXPECT_EQ(store.stats().segments_pruned_range, 2u);
  EXPECT_EQ(store.stats().segments_scanned, 1u);
}

TEST(StorePruning, TermBloomPrunesForeignSites) {
  const std::string dir = fresh_dir("prune_term");
  Store store(dir);
  const char* sites[] = {"lbl", "anl", "cern"};
  for (const char* site : sites) {
    for (int i = 0; i < 5; ++i) store.append("idx", doc_at(i, i, site));
    store.seal("idx");
  }
  // switch_id is low-cardinality (one distinct value over five docs), so
  // v2 segments posting-index it: the foreign segments prune via exact
  // empty posting lists and the matching one seeks straight to its rows.
  Store::ScanOptions options;
  options.term_keys = {term_key("switch_id", "cern")};
  std::size_t visited = 0;
  store.scan("idx", options, [&](const util::Json&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 5u);
  EXPECT_EQ(store.stats().segments_pruned_postings, 2u);
  EXPECT_EQ(store.stats().segments_pruned_terms, 0u);
  EXPECT_EQ(store.stats().postings_rows_seeked, 5u);

  // throughput_bps is distinct per doc — never posting-indexed — so a
  // term on an absent value still prunes through the bloom filter.
  Store::ScanOptions bloom;
  bloom.term_keys = {term_key("throughput_bps", util::Json(999))};
  std::size_t bloom_visited = 0;
  store.scan("idx", bloom, [&](const util::Json&) {
    ++bloom_visited;
    return true;
  });
  EXPECT_EQ(bloom_visited, 0u);
  EXPECT_EQ(store.stats().segments_pruned_terms, 3u);
}

TEST(StorePruning, RangeOnFieldNoDocumentCarriesPrunesEverySegment) {
  const std::string dir = fresh_dir("prune_absent");
  Store store(dir);
  for (int i = 0; i < 5; ++i) {
    util::Json doc = util::Json::object();
    doc["ts_ns"] = i;  // no throughput_bps at all
    store.append("idx", doc);
  }
  store.seal("idx");
  Store::ScanOptions options;
  options.range_field = "throughput_bps";
  options.range_min = 0;
  std::size_t visited = 0;
  store.scan("idx", options, [&](const util::Json&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(store.stats().segments_pruned_range, 1u);
}

TEST(StoreCompaction, MergePreservesOrderAndContent) {
  const std::string dir = fresh_dir("compact");
  Store store(dir);
  std::vector<std::string> expected;
  for (int seg = 0; seg < 4; ++seg) {
    for (int i = 0; i < 3; ++i) {
      const auto doc = doc_at(seg * 10 + i, i);
      store.append("idx", doc);
      expected.push_back(doc.dump());
    }
    store.seal("idx");
  }
  ASSERT_EQ(store.segment_count("idx"), 4u);
  store.compact("idx");
  EXPECT_EQ(store.segment_count("idx"), 1u);
  EXPECT_EQ(store.doc_count("idx"), 12u);
  std::vector<std::string> scanned;
  store.scan("idx", {}, [&](const util::Json& doc) {
    scanned.push_back(doc.dump());
    return true;
  });
  EXPECT_EQ(scanned, expected);
  // Old segment files are gone; the directory verifies clean.
  const auto verify = Store::verify(dir);
  EXPECT_TRUE(verify.ok) << (verify.errors.empty() ? "" : verify.errors[0]);
  // Reopen still sees everything.
  Store reopened(dir);
  EXPECT_EQ(reopened.doc_count("idx"), 12u);
  EXPECT_EQ(reopened.segment_count("idx"), 1u);
}

TEST(StoreMaintenance, SealsAndCompactsOnThresholds) {
  const std::string dir = fresh_dir("maintain");
  StoreConfig config;
  config.seal_min_docs = 4;
  config.compact_fanin = 3;
  Store store(dir, config);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      store.append("idx", doc_at(round * 10 + i, i));
    }
    store.maintain();
  }
  // Three seals happened; the third maintain() then compacted 3 -> 1.
  EXPECT_EQ(store.stats().seals, 3u);
  EXPECT_EQ(store.stats().compactions, 1u);
  EXPECT_EQ(store.segment_count("idx"), 1u);
  EXPECT_EQ(store.doc_count("idx"), 12u);
  // Small memtables are left alone.
  store.append("idx", doc_at(999, 1));
  store.maintain();
  EXPECT_EQ(store.memtable_docs("idx"), 1u);
}

TEST(StoreAggregate, ColumnFastPathMatchesGenericScan) {
  const std::string dir = fresh_dir("aggregate");
  Store store(dir);
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 8; ++i) {
      store.append("idx", doc_at(seg * 100 + i, seg * 8 + i));
    }
    store.seal("idx");
  }
  for (int i = 0; i < 4; ++i) {
    store.append("idx", doc_at(300 + i, 24 + i));  // memtable tail
  }
  const auto check = [&](std::optional<double> lo,
                         std::optional<double> hi) {
    const auto fast =
        store.aggregate_column("idx", "throughput_bps", "ts_ns", lo, hi);
    ASSERT_TRUE(fast.has_value());
    // Generic reference: scan everything, filter by range.
    std::uint64_t count = 0;
    double min = 0, max = 0, sum = 0;
    store.scan("idx", {}, [&](const util::Json& doc) {
      const double t = doc.at("ts_ns").as_double();
      if (lo.has_value() && t < *lo) return true;
      if (hi.has_value() && t > *hi) return true;
      const double v = doc.at("throughput_bps").as_double();
      if (count == 0) {
        min = max = v;
      } else {
        min = std::min(min, v);
        max = std::max(max, v);
      }
      sum += v;
      ++count;
      return true;
    });
    EXPECT_EQ(fast->count, count);
    EXPECT_EQ(fast->min, min);
    EXPECT_EQ(fast->max, max);
    EXPECT_EQ(fast->sum, sum);
  };
  check(std::nullopt, std::nullopt);  // summaries only
  check(50.0, 250.0);                 // partial overlap: decode columns
  check(0.0, 7.0);                    // single segment
  check(1000.0, 2000.0);              // nothing
  // Non-columnar fields refuse the fast path.
  EXPECT_FALSE(store
                   .aggregate_column("idx", "switch_id", "", std::nullopt,
                                     std::nullopt)
                   .has_value());
}

TEST(StoreVerify, DetectsSegmentCorruption) {
  const std::string dir = fresh_dir("verify");
  {
    Store store(dir);
    for (int i = 0; i < 5; ++i) store.append("idx", doc_at(i, i));
    store.seal("idx");
    store.append("idx", doc_at(99, 99));
    store.flush();
  }
  ASSERT_TRUE(Store::verify(dir).ok);
  // Flip one byte inside the segment file.
  std::string seg_file;
  for (const auto& entry : fs::directory_iterator(dir + "/seg")) {
    seg_file = entry.path().string();
  }
  ASSERT_FALSE(seg_file.empty());
  std::string bytes = read_file(seg_file);
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream(seg_file, std::ios::binary | std::ios::trunc) << bytes;
  const auto result = Store::verify(dir);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.errors.empty());
  // WAL truncation, by contrast, is tolerated (crash tail).
  EXPECT_EQ(result.wal_docs, 1u);
}

TEST(StoreRecovery, ReopenAfterWalTailTruncationKeepsCommittedPrefix) {
  const std::string dir = fresh_dir("reopen_truncated");
  {
    Store store(dir);
    for (int i = 0; i < 3; ++i) store.append("idx", doc_at(i, i));
    store.flush();
    store.append("idx", doc_at(3, 3));
    store.flush();
  }
  // Cut into the last committed batch: only the first batch survives.
  const std::string wal = dir + "/wal.log";
  const std::string bytes = read_file(wal);
  std::ofstream(wal, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 2);
  Store store(dir);
  EXPECT_EQ(store.doc_count("idx"), 3u);
  EXPECT_GT(store.stats().wal_tail_bytes_dropped, 0u);
  // The store stays fully usable: append/seal/verify after recovery.
  store.append("idx", doc_at(3, 3));
  store.seal("idx");
  EXPECT_EQ(store.doc_count("idx"), 4u);
  EXPECT_TRUE(Store::verify(dir).ok);
}

// ---------- CLI ----------

TEST(StoreCli, InfoVerifyCompactDump) {
  const std::string dir = fresh_dir("cli");
  {
    Store store(dir);
    for (int seg = 0; seg < 2; ++seg) {
      for (int i = 0; i < 3; ++i) {
        store.append("p4sonar-throughput", doc_at(seg * 10 + i, i));
      }
      store.seal("p4sonar-throughput");
    }
  }
  const auto run = [&](std::vector<const char*> args, std::string* text) {
    args.insert(args.begin(), "p4s-store");
    std::ostringstream out;
    std::ostringstream err;
    const int code = store_cli(static_cast<int>(args.size()), args.data(),
                               out, err);
    if (text != nullptr) *text = out.str() + err.str();
    return code;
  };
  std::string text;
  EXPECT_EQ(run({"info", dir.c_str()}, &text), 0);
  EXPECT_NE(text.find("p4sonar-throughput: 6 docs"), std::string::npos);
  EXPECT_EQ(run({"verify", dir.c_str()}, &text), 0);
  EXPECT_NE(text.find("result:       OK"), std::string::npos);
  EXPECT_EQ(run({"compact", dir.c_str()}, &text), 0);
  EXPECT_NE(text.find("2 -> 1 segment(s)"), std::string::npos);
  EXPECT_EQ(run({"dump", dir.c_str(), "p4sonar-throughput", "--limit", "2",
                 "--newest"},
                &text),
            0);
  // Newest-first dump: the last-indexed doc comes out first.
  EXPECT_EQ(text.find("\"ts_ns\":12"), text.find("\"ts_ns\""));
  EXPECT_EQ(run({}, nullptr), 2);
  EXPECT_EQ(run({"info", (dir + "/does-not-exist").c_str()}, &text), 0)
      << "an empty/missing store reads as empty, not an error";
  EXPECT_EQ(run({"frobnicate", dir.c_str()}, nullptr), 2);
}

// Regression (serving PR): `dump`, `serve-stats`, and direct queries on
// an empty store — no manifest, no WAL, even no directory — must return
// cleanly (zero results, exit 0) and must not create the store as a
// side effect of reading it.
TEST(StoreCli, DumpAndServeStatsOnEmptyStoreSucceedWithoutCreatingIt) {
  const std::string dir = fresh_dir("cli_empty");  // never created
  const auto run = [&](std::vector<const char*> args, std::string* text) {
    args.insert(args.begin(), "p4s-store");
    std::ostringstream out;
    std::ostringstream err;
    const int code = store_cli(static_cast<int>(args.size()), args.data(),
                               out, err);
    if (text != nullptr) *text = out.str() + err.str();
    return code;
  };
  std::string text;
  EXPECT_EQ(run({"dump", dir.c_str(), "p4sonar-throughput"}, &text), 0);
  EXPECT_EQ(text, "");
  EXPECT_EQ(run({"serve-stats", dir.c_str()}, &text), 0);
  EXPECT_NE(text.find("snapshots:"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir))
      << "a read-only command materialized the store directory";

  // Direct API on a read-only empty store behaves the same way.
  Store store(dir, {}, OpenMode::read_only);
  std::size_t visited = 0;
  store.scan("anything", Store::ScanOptions{}, [&](const util::Json&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(store.total_docs(), 0u);
  EXPECT_TRUE(store.indices().empty());
  EXPECT_FALSE(store.aggregate_column("anything", "x", "ts_ns", 0, 1)
                   .has_value());
  EXPECT_FALSE(fs::exists(dir));
}

TEST(StoreCli, ServeStatsReportsCacheAndPruningCounters) {
  const std::string dir = fresh_dir("cli_serve");
  {
    Store store(dir);
    for (int i = 0; i < 6; ++i) store.append("tput", doc_at(i, i));
    store.seal("tput");
  }
  const char* argv[] = {"p4s-store", "serve-stats", dir.c_str()};
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(store_cli(3, argv, out, err), 0) << err.str();
  const std::string text = out.str();
  // Two warm-up rounds over one segment: one miss, then one hit.
  EXPECT_NE(text.find("cache:            1 hit(s), 1 miss(es)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("snapshots:        2"), std::string::npos) << text;
  EXPECT_NE(text.find("gc:               0 retired"), std::string::npos)
      << text;
}

// ---------- tiered compaction ----------

// With fanin F, maintenance merges runs of F adjacent same-tier
// segments, so after N seals the live segment count stays logarithmic
// instead of linear — and doc order/continuity survives every merge.
TEST(StoreTiering, MaintainBoundsSegmentCountLogarithmically) {
  const std::string dir = fresh_dir("tiered");
  StoreConfig config;
  config.seal_min_docs = 4;
  config.compact_fanin = 2;
  Store store(dir, config);
  std::uint64_t max_segments = 0;
  for (int i = 0; i < 256; ++i) {
    store.append("idx", doc_at(i, i));
    store.maintain();
    max_segments = std::max(max_segments, store.segment_count("idx"));
  }
  // 256 docs / 4-doc seals = 64 seals; untiered that is 64 segments.
  // fanin-2 tiering keeps ~log2(64) + slack live.
  EXPECT_LE(max_segments, 10u);
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_EQ(store.doc_count("idx"), 256u);

  // Order and content survived all the merging.
  std::int64_t expect_ts = 0;
  store.scan("idx", Store::ScanOptions{}, [&](const util::Json& doc) {
    EXPECT_EQ(doc.at("ts_ns").as_int(), expect_ts);
    ++expect_ts;
    return true;
  });
  EXPECT_EQ(expect_ts, 256);
  store.flush();
  EXPECT_TRUE(Store::verify(dir).ok);

  // fanin = 0 disables tiering entirely: seals accumulate.
  const std::string flat_dir = fresh_dir("untiered");
  StoreConfig flat_config;
  flat_config.seal_min_docs = 4;
  flat_config.compact_fanin = 0;
  Store flat(flat_dir, flat_config);
  for (int i = 0; i < 64; ++i) {
    flat.append("idx", doc_at(i, i));
    flat.maintain();
  }
  EXPECT_EQ(flat.segment_count("idx"), 16u);
  EXPECT_EQ(flat.stats().compactions, 0u);
}

}  // namespace
}  // namespace p4s::store
