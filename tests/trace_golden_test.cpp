// Golden-trace regression (the trace subsystem's reason to exist):
//
//   1. A fixed-seed Fig. 9-style scenario, captured at the TAP mirror
//      points, must reproduce the committed pcap files byte for byte —
//      pinning the wire codec, TAP model, and pcap writer.
//   2. Replaying the committed pcaps through a fresh P4 switch + control
//      plane (no TCP simulator) must reproduce the committed Report_v1
//      series byte for byte — pinning the parser, the telemetry engines,
//      and the control plane against the traffic that produced them.
//
// Regenerate the committed artifacts after an intentional behavior change:
//   P4S_UPDATE_GOLDEN=1 ./build/tests/trace_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "trace/trace_replayer.hpp"

using namespace p4s;
using units::seconds;

namespace {

const std::string kDataDir = P4S_TRACE_DATA_DIR;
const std::string kGoldenBase = kDataDir + "/fig9";
const std::string kGoldenReports = kDataDir + "/fig9.reports.txt";

bool update_golden() { return std::getenv("P4S_UPDATE_GOLDEN") != nullptr; }

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
  }
};

// Scaled-down Figure 9: three TCP transfers over a shared bottleneck,
// the third joining mid-run. 2 Mbps keeps the committed pcaps small
// while preserving the contention/backoff shape.
core::MonitoringSystemConfig scenario_config() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  return config;
}

constexpr const char* kPsconfigCmd =
    "psconfig config-P4 --samples_per_second 2";
constexpr SimTime kHorizon = seconds(9);

struct LiveRun {
  std::vector<std::string> reports;
  cp::ControlPlaneConfig control;  // as filled by the live system
};

LiveRun run_live_captured(const std::string& path_base) {
  auto config = scenario_config();
  config.trace.capture = true;
  config.trace.path_base = path_base;
  core::MonitoringSystem system(config);
  Collector collector;
  system.control_plane().set_sink(&collector);
  system.psonar().psconfig().execute(kPsconfigCmd);
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.add_transfer(2).start_at(seconds(5));
  system.run_until(kHorizon);
  system.trace_capture().flush();
  return {std::move(collector.lines), system.control_plane().config()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path
                         << " (regenerate with P4S_UPDATE_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::istringstream in(read_file(path));
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string port_file(const std::string& base, net::MirrorPoint point) {
  return trace::TraceCapture::port_path(base, point);
}

void compare_lines(const std::vector<std::string>& expected,
                   const std::vector<std::string>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "report " << i << " diverged";
  }
}

TEST(TraceGolden, CaptureReproducesCommittedPcapsByteForByte) {
  const std::string base = ::testing::TempDir() + "trace_golden_live";
  const LiveRun live = run_live_captured(base);
  ASSERT_FALSE(live.reports.empty());

  const std::string in_bytes =
      read_file(port_file(base, net::MirrorPoint::kIngress));
  const std::string eg_bytes =
      read_file(port_file(base, net::MirrorPoint::kEgress));
  std::string report_text;
  for (const auto& line : live.reports) report_text += line + "\n";

  if (update_golden()) {
    write_file(port_file(kGoldenBase, net::MirrorPoint::kIngress), in_bytes);
    write_file(port_file(kGoldenBase, net::MirrorPoint::kEgress), eg_bytes);
    write_file(kGoldenReports, report_text);
    GTEST_SKIP() << "golden artifacts regenerated under " << kDataDir;
  }

  const std::string golden_in =
      read_file(port_file(kGoldenBase, net::MirrorPoint::kIngress));
  const std::string golden_eg =
      read_file(port_file(kGoldenBase, net::MirrorPoint::kEgress));
  ASSERT_EQ(golden_in.size(), in_bytes.size())
      << "ingress capture size diverged from the committed golden";
  ASSERT_EQ(golden_eg.size(), eg_bytes.size())
      << "egress capture size diverged from the committed golden";
  EXPECT_TRUE(golden_in == in_bytes)
      << "ingress capture bytes diverged from the committed golden";
  EXPECT_TRUE(golden_eg == eg_bytes)
      << "egress capture bytes diverged from the committed golden";
  compare_lines(read_lines(kGoldenReports), live.reports);
}

TEST(TraceGolden, ReplayOfCommittedTraceReproducesReportSeries) {
  if (update_golden()) {
    GTEST_SKIP() << "golden regeneration run";
  }
  // The replay control plane gets the same configuration the live system
  // derives from its topology (buffer size, bottleneck rate, extraction
  // intervals) — taken from a live system instance, not hand-copied.
  cp::ControlPlaneConfig control;
  {
    core::MonitoringSystem reference(scenario_config());
    reference.psonar().psconfig().execute(kPsconfigCmd);
    control = reference.control_plane().config();
  }

  auto trace = trace::TraceReplayer::from_files(
      port_file(kGoldenBase, net::MirrorPoint::kIngress),
      port_file(kGoldenBase, net::MirrorPoint::kEgress));
  const auto stats = trace.analyze();
  ASSERT_GT(stats.frames, 0u);
  EXPECT_EQ(stats.non_ipv4, 0u);     // we only produce IPv4
  EXPECT_EQ(stats.undecodable, 0u);  // and every frame decodes

  trace::ReplayPipeline::Config config;
  config.control = control;
  config.seed = 1;
  trace::ReplayPipeline pipeline(config);
  pipeline.run(trace, kHorizon);

  EXPECT_EQ(pipeline.p4_switch().processed_pkts(), stats.frames);
  EXPECT_EQ(pipeline.p4_switch().parse_errors(), 0u);
  compare_lines(read_lines(kGoldenReports), pipeline.report_lines());
}

}  // namespace
