// Parallel sharded fabric execution: determinism battery + runtime
// unit tests.
//
//   * Byte-identity: the same seeded scenario produces byte-identical
//     Report_v1 series, archive contents and pcap captures at
//     parallel = 1 / 2 / 4 / 8 — the serial path IS the specification.
//   * The committed single-switch golden (fig9.reports.txt) holds
//     unchanged under parallel execution.
//   * Outputs are invariant under randomized worker scheduling (the
//     ShardPool jitter knob), run under TSan in CI.
//   * BoundaryQueue SPSC ordering/wraparound and ShardPool
//     grant/watermark/failure protocol in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/monitoring_system.hpp"
#include "sim/boundary_queue.hpp"
#include "sim/shard_pool.hpp"

namespace p4s {
namespace {

using core::MonitoredSwitchConfig;
using core::MonitoringSystem;
using core::MonitoringSystemConfig;
using core::TapPoint;
using units::seconds;

const std::string kGoldenReports =
    std::string(P4S_TRACE_DATA_DIR) + "/fig9.reports.txt";

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  cp::ReportSink* next = nullptr;  // tee: keep the transport path live
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
    if (next != nullptr) next->on_report(report);
  }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The 4-switch determinism scenario: every tap point monitored, three
// concurrent transfers crossing them, 2 samples/s.
MonitoringSystemConfig four_switch_scenario(std::size_t parallel,
                                            std::uint64_t jitter_seed = 0) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 42;
  config.parallel = parallel;
  config.scheduling_jitter_seed = jitter_seed;
  config.switches = {
      MonitoredSwitchConfig{"core", TapPoint::kCoreBottleneck},
      MonitoredSwitchConfig{"ext0", TapPoint::kWanExt0},
      MonitoredSwitchConfig{"ext1", TapPoint::kWanExt1},
      MonitoredSwitchConfig{"ext2", TapPoint::kWanExt2},
  };
  return config;
}

struct RunOutput {
  // Per-site Report_v1 series, in emission order.
  std::vector<std::vector<std::string>> site_reports;
  // Every archived document across all indices, in archive order.
  std::vector<std::string> archived;
  std::uint64_t total_mirrored = 0;
  std::uint64_t total_processed = 0;
};

RunOutput run_four_switch(std::size_t parallel,
                          std::uint64_t jitter_seed = 0) {
  MonitoringSystem system(four_switch_scenario(parallel, jitter_seed));
  std::vector<Collector> sites(system.switch_count());
  // Tee each site's series out for isolated comparison while the
  // shared transport -> archiver path keeps running underneath.
  for (std::size_t i = 0; i < system.switch_count(); ++i) {
    auto& plane = system.monitored_switch(i).control_plane();
    sites[i].next = plane.sink();
    plane.set_sink(&sites[i]);
  }
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.add_transfer(2).start_at(seconds(4));
  system.run_until(seconds(8));

  RunOutput out;
  for (auto& site : sites) out.site_reports.push_back(std::move(site.lines));
  auto& archiver = system.psonar().archiver();
  for (const auto& index : archiver.indices()) {
    for (const auto& doc : archiver.search(index)) {
      out.archived.push_back(doc.dump());
    }
  }
  const auto stats = system.fabric_stats();
  out.total_mirrored = stats.mirrored;
  out.total_processed = stats.processed;
  return out;
}

void expect_same_output(const RunOutput& expected, const RunOutput& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.site_reports.size(), actual.site_reports.size());
  for (std::size_t s = 0; s < expected.site_reports.size(); ++s) {
    ASSERT_EQ(expected.site_reports[s].size(), actual.site_reports[s].size())
        << label << ": site " << s << " report count diverged";
    for (std::size_t i = 0; i < expected.site_reports[s].size(); ++i) {
      ASSERT_EQ(expected.site_reports[s][i], actual.site_reports[s][i])
          << label << ": site " << s << " report " << i;
    }
  }
  ASSERT_EQ(expected.archived, actual.archived) << label << ": archive";
  EXPECT_EQ(expected.total_mirrored, actual.total_mirrored) << label;
  EXPECT_EQ(expected.total_processed, actual.total_processed) << label;
}

// The tentpole acceptance: one seed, four switches, worker counts
// 1/2/4/8 — byte-identical Report_v1 series and archive contents.
TEST(ParallelFabric, ByteIdenticalOutputsAcrossWorkerCounts) {
  const RunOutput serial = run_four_switch(1);
  ASSERT_FALSE(serial.archived.empty());
  for (const auto& site : serial.site_reports) ASSERT_FALSE(site.empty());
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const RunOutput parallel = run_four_switch(workers);
    expect_same_output(serial, parallel,
                       "parallel=" + std::to_string(workers));
  }
}

// Same battery under randomized worker scheduling: shard interleavings
// vary wildly, outputs must not. Runs under TSan in CI.
TEST(ParallelFabric, DeterministicUnderSchedulingJitter) {
  const RunOutput serial = run_four_switch(1);
  for (const std::uint64_t jitter : {0x5EEDull, 0xBADC0FFEEull}) {
    const RunOutput chaotic = run_four_switch(4, jitter);
    expect_same_output(serial, chaotic,
                       "jitter=" + std::to_string(jitter));
  }
}

// The committed single-switch golden series survives parallel execution
// untouched: the legacy deployment (one untagged switch) at parallel=2
// reproduces fig9.reports.txt byte for byte.
TEST(ParallelFabric, GoldenSeriesUnchangedUnderParallel) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  config.parallel = 2;
  MonitoringSystem system(config);
  ASSERT_TRUE(system.parallel_fabric());
  Collector collector;
  system.control_plane().set_sink(&collector);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.add_transfer(2).start_at(seconds(5));
  system.run_until(seconds(9));

  const auto golden = read_lines(kGoldenReports);
  ASSERT_FALSE(golden.empty());
  ASSERT_EQ(golden.size(), collector.lines.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i], collector.lines[i]) << "report " << i;
  }
}

// Pcap captures are produced on the shard clock in parallel mode; the
// files must still be byte-identical to the serial run's.
TEST(ParallelFabric, PcapCapturesByteIdenticalUnderParallel) {
  auto run_captured = [](std::size_t parallel, const std::string& base) {
    MonitoringSystemConfig config;
    config.topology.bottleneck_bps = units::mbps(2);
    config.seed = 1;
    config.parallel = parallel;
    config.trace.capture = true;
    config.trace.path_base = base;
    MonitoringSystem system(config);
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 2");
    system.start();
    system.add_transfer(0).start_at(seconds(1));
    system.add_transfer(1).start_at(seconds(2));
    system.run_until(seconds(6));
    system.trace_capture().flush();
  };
  const std::string serial_base = ::testing::TempDir() + "pfab-serial";
  const std::string parallel_base = ::testing::TempDir() + "pfab-par";
  run_captured(1, serial_base);
  run_captured(4, parallel_base);
  for (const auto point :
       {net::MirrorPoint::kIngress, net::MirrorPoint::kEgress}) {
    const std::string serial_pcap =
        read_file(trace::TraceCapture::port_path(serial_base, point));
    const std::string parallel_pcap =
        read_file(trace::TraceCapture::port_path(parallel_base, point));
    ASSERT_FALSE(serial_pcap.empty());
    EXPECT_EQ(serial_pcap, parallel_pcap)
        << "capture diverged at point "
        << static_cast<int>(point);
  }
}

// fabric_stats() is the merge-barrier snapshot: totals taken mid-run
// must be internally consistent (never torn) at any worker count.
TEST(ParallelFabric, FabricStatsSnapshotsAreConsistentMidRun) {
  MonitoringSystem system(four_switch_scenario(4));
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  for (int step = 1; step <= 6; ++step) {
    system.run_until(seconds(step));
    const auto stats = system.fabric_stats();
    ASSERT_EQ(stats.sites.size(), 4u);
    std::uint64_t mirrored = 0, processed = 0, errors = 0, reports = 0;
    for (const auto& site : stats.sites) {
      // Conservation per site: every frame the parser saw was mirrored
      // first; copies still crossing the TAP (within tap_latency of the
      // barrier) are the only allowed difference.
      EXPECT_LE(site.processed + site.parse_errors, site.mirrored)
          << site.id;
      mirrored += site.mirrored;
      processed += site.processed;
      errors += site.parse_errors;
      reports += site.reports_emitted;
    }
    EXPECT_EQ(stats.mirrored, mirrored);
    EXPECT_EQ(stats.processed, processed);
    EXPECT_EQ(stats.parse_errors, errors);
    EXPECT_EQ(stats.reports_emitted, reports);
    EXPECT_EQ(stats.workers, system.fabric_executor().worker_count());
  }
  const auto end = system.fabric_stats();
  EXPECT_GT(end.processed, 0u);
}

// ---------- Runtime units: BoundaryQueue ----------

TEST(BoundaryQueue, OrderedPushPopAcrossWraparound) {
  sim::BoundaryQueue<std::uint64_t> q(8);
  ASSERT_EQ(q.capacity(), 8u);
  std::uint64_t next = 0;
  std::uint64_t expected = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.try_push(next)) ++next;        // fill
    EXPECT_EQ(q.size_approx(), q.capacity());
    for (int i = 0; i < 5; ++i) {           // partially drain, in order
      std::uint64_t* front = q.front();
      ASSERT_NE(front, nullptr);
      EXPECT_EQ(*front, expected++);
      q.pop();
    }
  }
}

TEST(BoundaryQueue, SpscStressPreservesSequence) {
  sim::BoundaryQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&q]() {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t* front = q.front();
    if (front == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*front, expected);
    ++expected;
    q.pop();
  }
  producer.join();
  EXPECT_EQ(q.front(), nullptr);
}

// ---------- Runtime units: ShardPool ----------

struct CountingShard : sim::ShardPool::Shard {
  std::atomic<std::uint64_t> executed_to{0};
  std::uint64_t calls = 0;  // worker-owned
  void advance_to(SimTime grant) override {
    ++calls;
    // Grants must be monotonic from the shard's point of view.
    ASSERT_GE(grant, executed_to.load(std::memory_order_relaxed));
    executed_to.store(grant, std::memory_order_relaxed);
  }
  bool has_boundary_backlog() const override { return false; }
};

TEST(ShardPool, BarrierWaitsForWatermark) {
  sim::ShardPool pool(sim::ShardPool::Config{2, 0});
  CountingShard shards[3];
  for (auto& s : shards) pool.add_shard(s);
  pool.start();
  EXPECT_LE(pool.worker_count(), 2u);
  for (SimTime t : {1000u, 5000u, 5000u, 90000u}) {
    pool.barrier_all(t);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(pool.watermark(i), t);
      EXPECT_GE(shards[i].executed_to.load(), t);
    }
  }
  // Smaller grants are ignored: the watermark never regresses.
  pool.barrier_all(10);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GE(pool.watermark(i), 90000u);
  pool.stop();
}

struct ThrowingShard : sim::ShardPool::Shard {
  void advance_to(SimTime grant) override {
    if (grant >= 500) throw std::runtime_error("shard exploded");
  }
  bool has_boundary_backlog() const override { return false; }
};

TEST(ShardPool, WorkerFailureSurfacesAtBarrier) {
  sim::ShardPool pool(sim::ShardPool::Config{1, 0});
  ThrowingShard shard;
  pool.add_shard(shard);
  pool.start();
  pool.barrier_all(100);  // healthy
  EXPECT_FALSE(pool.failed());
  EXPECT_THROW(pool.barrier_all(1000), std::runtime_error);
  EXPECT_TRUE(pool.failed());
  pool.stop();
}

}  // namespace
}  // namespace p4s
