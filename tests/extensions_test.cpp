// Tests: extension features drawn from the paper's related work —
// BBR congestion control (Gomez et al.), INT postcard export (Bezerra
// et al.), and P4CCI-style CCA identification (Kfoury et al.).
#include <gtest/gtest.h>

#include "controlplane/cca_identifier.hpp"
#include "core/monitoring_system.hpp"
#include "telemetry/int_export.hpp"

namespace p4s {
namespace {

// ---------- BBR ----------

struct BbrFixture : ::testing::Test {
  sim::Simulation sim{42};
  net::Network network{sim};
  net::PaperTopology topo;

  void SetUp() override {
    net::PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(200);
    topo = net::make_paper_topology(network, config);
  }
};

TEST_F(BbrFixture, AchievesNearBottleneckThroughput) {
  tcp::TcpFlow::Config fc;
  fc.sender.congestion_control = "bbr";
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(12));
  sim.run_until(units::seconds(16));
  EXPECT_TRUE(flow.complete());
  EXPECT_GT(flow.average_goodput_bps(sim.now()), 0.8 * 200e6);
}

TEST_F(BbrFixture, KeepsQueueShortUnlikeCubic) {
  // The defining BBR property: a single backlogged flow fills the link
  // while keeping the buffer near-empty. (BBR's 2.89x STARTUP may cost a
  // loss burst before DRAIN, as real BBRv1 does; the assertion is about
  // steady state, after t=3 s.)
  tcp::TcpFlow::Config fc;
  fc.sender.congestion_control = "bbr";
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
  flow.start_at(units::milliseconds(1));
  double peak_fill = 0.0;
  std::uint64_t drops_at_3s = 0;
  std::uint64_t retx_at_3s = 0;
  sim.at(units::seconds(3), [&]() {
    drops_at_3s = topo.bottleneck_port->queue().stats().dropped_pkts;
    retx_at_3s = flow.sender().stats().retransmitted_segments;
  });
  sim.every(units::seconds(3), units::milliseconds(100), [&]() {
    peak_fill = std::max(peak_fill,
                         topo.bottleneck_port->queue().fill_fraction());
    return sim.now() < units::seconds(12);
  });
  sim.run_until(units::seconds(12));
  EXPECT_LT(peak_fill, 0.35);  // CUBIC drives this to ~1.0
  EXPECT_EQ(flow.sender().stats().retransmitted_segments, retx_at_3s);
  EXPECT_EQ(topo.bottleneck_port->queue().stats().dropped_pkts,
            drops_at_3s);
}

TEST_F(BbrFixture, SurvivesRandomLoss) {
  // Loss-blindness: BBR holds its rate through noise that would halve a
  // loss-based window, and still delivers every byte.
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.005);
  tcp::TcpFlow::Config fc;
  fc.sender.congestion_control = "bbr";
  fc.sender.bytes_to_send = 20'000'000;
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(60));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 20'000'000u);
  // Rate stays high despite 0.5% loss: the Mathis ceiling for a
  // loss-based flow at this RTT/loss is ~4 Mbps; BBR holds an order of
  // magnitude more.
  const auto& s = flow.sender().stats();
  const double secs = units::to_seconds(s.end_time - s.established_time);
  EXPECT_GT(20'000'000.0 * 8.0 / secs, 0.5 * 200e6);
}

TEST(Bbr, PacingRateFollowsEstimate) {
  auto cc = tcp::make_congestion_control("bbr");
  cc->init(1460, 14600);
  EXPECT_EQ(cc->pacing_rate_bps(), 0u);  // no estimate yet
  // Feed ACKs implying ~100 Mbps delivery (1460 B per 116.8 us) for
  // several full-RTT measurement windows.
  SimTime now = units::milliseconds(1);
  for (int i = 0; i < 400; ++i) {
    now += 116'800;
    cc->on_ack(1460, now, units::milliseconds(10),
               units::milliseconds(10));
  }
  const double rate = static_cast<double>(cc->pacing_rate_bps());
  EXPECT_GT(rate, 50e6);
  EXPECT_LT(rate, 500e6);
  EXPECT_STREQ(cc->name(), "bbr");
}

// ---------- INT postcards ----------

struct IntFixture : ::testing::Test {
  core::MonitoringSystemConfig config;
  void init() {
    config.topology.bottleneck_bps = units::mbps(100);
    system = std::make_unique<core::MonitoringSystem>(config);
  }
  std::unique_ptr<core::MonitoringSystem> system;
};

TEST_F(IntFixture, DisabledByDefault) {
  init();
  system->start();
  auto& flow = system->add_transfer(0);
  flow.start_at(units::milliseconds(100));
  system->run_until(units::seconds(3));
  EXPECT_EQ(system->program().int_exporter().postcards_emitted(), 0u);
  EXPECT_EQ(system->psonar().archiver().doc_count("p4sonar-int_postcard"),
            0u);
}

TEST_F(IntFixture, SamplesOneInN) {
  config.program.int_export.enabled = true;
  config.program.int_export.sample_every = 64;
  init();
  system->start();
  auto& flow = system->add_transfer(0);
  flow.start_at(units::milliseconds(100));
  system->run_until(units::seconds(5));
  const auto& exporter = system->program().int_exporter();
  EXPECT_GT(exporter.packets_seen(), 1000u);
  EXPECT_NEAR(static_cast<double>(exporter.postcards_emitted()),
              static_cast<double>(exporter.packets_seen()) / 64.0, 3.0);
  // Postcards reach the archiver as Report_v2 documents.
  const auto docs =
      system->psonar().archiver().search("p4sonar-int_postcard");
  ASSERT_FALSE(docs.empty());
  EXPECT_TRUE(docs[0].contains("queue_delay_ns"));
  EXPECT_TRUE(docs[0].contains("flow_id"));
  EXPECT_TRUE(docs[0].contains("seq"));
}

TEST_F(IntFixture, PostcardsCarryQueueDelay) {
  config.program.int_export.enabled = true;
  config.program.int_export.sample_every = 16;
  init();
  system->start();
  auto& flow = system->add_transfer(0);
  flow.start_at(units::milliseconds(100));
  system->run_until(units::seconds(6));
  // A CUBIC flow fills the 1-BDP buffer: sampled queue delays must show
  // real queuing (well above zero) on some postcards.
  const auto agg = system->psonar().archiver().aggregate(
      "p4sonar-int_postcard", "queue_delay_ns");
  ASSERT_GT(agg.count, 10u);
  EXPECT_GT(agg.max, static_cast<double>(units::milliseconds(5)));
}

// ---------- CCA identification ----------

class CcaIdent : public ::testing::TestWithParam<const char*> {};

TEST_P(CcaIdent, ClassifiesTheRunningCca) {
  const std::string cc = GetParam();
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(200);
  config.topology.core_buffer_bytes =
      units::bdp_bytes(units::mbps(200), units::milliseconds(50));
  core::MonitoringSystem system(config);
  system.start();
  cp::CcaIdentifier ident(system.simulation(), system.program());
  ident.start();

  tcp::TcpFlow::Config fc;
  fc.sender.congestion_control = cc;
  auto& flow = system.add_transfer(0, fc);
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(45));

  const auto verdicts = ident.classify_all();
  ASSERT_EQ(verdicts.size(), 1u);
  const cp::CcaClass got = verdicts.begin()->second;
  if (cc == "reno") {
    EXPECT_EQ(got, cp::CcaClass::kRenoLike);
  }
  if (cc == "cubic") {
    EXPECT_EQ(got, cp::CcaClass::kCubicLike);
  }
  if (cc == "bbr") {
    EXPECT_EQ(got, cp::CcaClass::kBbrLike);
  }
}

INSTANTIATE_TEST_SUITE_P(Ccas, CcaIdent,
                         ::testing::Values("reno", "cubic", "bbr"));

TEST(CcaIdentifier, UnknownBeforeEnoughSamples) {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  core::MonitoringSystem system(config);
  system.start();
  cp::CcaIdentifier ident(system.simulation(), system.program());
  ident.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  // 0.9 s of 25 ms sampling = ~32 samples, below min_samples (40).
  system.run_until(units::milliseconds(900));
  for (const auto& [slot, verdict] : ident.classify_all()) {
    (void)slot;
    EXPECT_EQ(verdict, cp::CcaClass::kUnknown);
  }
}

TEST(CcaIdentifier, Names) {
  EXPECT_STREQ(cp::to_string(cp::CcaClass::kUnknown), "unknown");
  EXPECT_STREQ(cp::to_string(cp::CcaClass::kRenoLike), "reno-like");
  EXPECT_STREQ(cp::to_string(cp::CcaClass::kCubicLike), "cubic-like");
  EXPECT_STREQ(cp::to_string(cp::CcaClass::kBbrLike), "bbr-like");
}

}  // namespace
}  // namespace p4s
