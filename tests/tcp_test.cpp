// Unit and behaviour tests: TCP substrate — sequence arithmetic, RTT
// estimator, congestion-control algorithms, and sender/receiver dynamics
// over a real simulated path (handshake, completion, loss recovery with
// SACK and NewReno, receiver- and sender-limiting, FIN teardown).
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion.hpp"
#include "tcp/flow.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/seq.hpp"

namespace p4s::tcp {
namespace {

// ---------- seq helpers ----------

TEST(Seq, OrderingNearWrap) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x00000010u));  // wrapped forward
  EXPECT_TRUE(seq_gt(0x00000010u, 0xFFFFFFF0u));
  EXPECT_FALSE(seq_lt(5, 5));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_ge(5, 5));
  EXPECT_TRUE(seq_lt(100, 200));
  EXPECT_FALSE(seq_lt(200, 100));
}

TEST(Seq, UnwrapNearReference) {
  EXPECT_EQ(seq_unwrap(1000, 1500), 1500u);
  EXPECT_EQ(seq_unwrap(0x1'00000000ULL, 5),
            0x1'00000005ULL);
  // Reference just past a wrap: a high 32-bit value means "just before".
  EXPECT_EQ(seq_unwrap(0x1'00000010ULL, 0xFFFFFFF0u), 0xFFFFFFF0ULL);
  // Reference just before a wrap: a low value means "just after".
  EXPECT_EQ(seq_unwrap(0xFFFFFFF0ULL, 0x10u), 0x1'00000010ULL);
}

// ---------- RTT estimator ----------

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  est.add_sample(units::milliseconds(100));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), units::milliseconds(100));
  EXPECT_EQ(est.rttvar(), units::milliseconds(50));
  EXPECT_EQ(est.min_rtt(), units::milliseconds(100));
}

TEST(RttEstimator, SmoothsPerRfc6298) {
  RttEstimator est;
  est.add_sample(units::milliseconds(100));
  est.add_sample(units::milliseconds(200));
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(est.srtt(), units::microseconds(112500));
  EXPECT_EQ(est.min_rtt(), units::milliseconds(100));
}

TEST(RttEstimator, RtoRespectsBounds) {
  RttEstimator::Config config;
  config.min_rto = units::milliseconds(200);
  RttEstimator est(config);
  EXPECT_EQ(est.rto(), config.initial_rto);  // no samples yet
  est.add_sample(units::milliseconds(1));
  EXPECT_EQ(est.rto(), units::milliseconds(200));  // clamped up
  est.add_sample(units::seconds(90));
  EXPECT_LE(est.rto(), config.max_rto);
}

TEST(RttEstimator, BackoffDoublesAndSampleResets) {
  RttEstimator est;
  est.add_sample(units::milliseconds(300));
  const SimTime base = est.rto();  // 300 + 4*150 = 900 ms
  EXPECT_EQ(base, units::milliseconds(900));
  est.backoff();
  EXPECT_EQ(est.rto(), 2 * base);
  est.backoff();
  EXPECT_EQ(est.rto(), 4 * base);
  // A fresh sample cancels the backoff; rttvar has decayed toward the
  // stable measurement: srtt=300, rttvar=(3*150+0)/4=112.5 -> 750 ms.
  est.add_sample(units::milliseconds(300));
  EXPECT_EQ(est.rto(), units::microseconds(750'000));
}

// ---------- congestion control ----------

TEST(Congestion, FactoryRejectsUnknown) {
  EXPECT_THROW(make_congestion_control("vegas"), std::invalid_argument);
  EXPECT_THROW(make_congestion_control(""), std::invalid_argument);
  EXPECT_EQ(std::string(make_congestion_control("reno")->name()), "reno");
  EXPECT_EQ(std::string(make_congestion_control("cubic")->name()), "cubic");
  EXPECT_EQ(std::string(make_congestion_control("bbr")->name()), "bbr");
}

TEST(Congestion, RenoSlowStartDoublesPerRtt) {
  auto cc = make_congestion_control("reno");
  cc->init(1000, 10'000);
  EXPECT_TRUE(cc->in_slow_start());
  // ACK a full window: cwnd doubles.
  cc->on_ack(10'000, 0, 0, 0);
  EXPECT_EQ(cc->cwnd_bytes(), 20'000u);
}

TEST(Congestion, RenoCongestionAvoidanceLinear) {
  auto cc = make_congestion_control("reno");
  cc->init(1000, 10'000);
  cc->on_enter_recovery(20'000, 0);  // ssthresh = 10k, cwnd = 10k
  cc->on_exit_recovery(0);
  EXPECT_FALSE(cc->in_slow_start());
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_ack(before, 0, 0, 0);  // one full window of ACKs
  EXPECT_NEAR(static_cast<double>(cc->cwnd_bytes()),
              static_cast<double>(before + 1000), 16.0);
}

TEST(Congestion, RenoHalvesOnRecovery) {
  auto cc = make_congestion_control("reno");
  cc->init(1000, 64'000);
  cc->on_enter_recovery(64'000, 0);
  EXPECT_EQ(cc->ssthresh_bytes(), 32'000u);
  EXPECT_EQ(cc->cwnd_bytes(), 32'000u);
}

TEST(Congestion, RenoRtoCollapsesToOneSegment) {
  auto cc = make_congestion_control("reno");
  cc->init(1000, 64'000);
  cc->on_rto(0);
  EXPECT_EQ(cc->cwnd_bytes(), 1000u);
  EXPECT_EQ(cc->ssthresh_bytes(), 32'000u);
  EXPECT_TRUE(cc->in_slow_start());
}

TEST(Congestion, RenoFloorsAtTwoSegments) {
  auto cc = make_congestion_control("reno");
  cc->init(1000, 1000);
  cc->on_enter_recovery(1000, 0);
  EXPECT_EQ(cc->ssthresh_bytes(), 2000u);
}

TEST(Congestion, CubicMultiplicativeDecreaseIsBeta) {
  auto cc = make_congestion_control("cubic");
  cc->init(1000, 100'000);
  cc->on_enter_recovery(100'000, units::seconds(1));
  EXPECT_NEAR(static_cast<double>(cc->cwnd_bytes()), 70'000.0, 1500.0);
}

TEST(Congestion, CubicRegrowsTowardWmax) {
  auto cc = make_congestion_control("cubic");
  cc->init(1000, 100'000);
  cc->on_enter_recovery(100'000, units::seconds(1));
  cc->on_exit_recovery(units::seconds(1));
  const std::uint64_t reduced = cc->cwnd_bytes();
  // Feed ACKs over simulated seconds; the window must grow back toward
  // w_max (concave region) without exceeding it wildly.
  SimTime now = units::seconds(1);
  for (int i = 0; i < 2000; ++i) {
    now += units::milliseconds(5);
    cc->on_ack(1000, now, units::milliseconds(50), units::milliseconds(50));
  }
  EXPECT_GT(cc->cwnd_bytes(), reduced);
  EXPECT_GT(cc->cwnd_bytes(), 85'000u);  // approached w_max
}

TEST(Congestion, CubicHystartExitsOnDelayRise) {
  auto cc = make_congestion_control("cubic");
  cc->init(1000, 10'000);
  EXPECT_TRUE(cc->in_slow_start());
  // RTT grossly above the minimum: slow start should end.
  cc->on_ack(10'000, units::milliseconds(100), units::milliseconds(80),
             units::milliseconds(50));
  EXPECT_FALSE(cc->in_slow_start());
}

TEST(Congestion, CubicStaysInSlowStartWithFlatRtt) {
  auto cc = make_congestion_control("cubic");
  cc->init(1000, 10'000);
  cc->on_ack(10'000, units::milliseconds(100), units::milliseconds(50),
             units::milliseconds(50));
  EXPECT_TRUE(cc->in_slow_start());
  EXPECT_EQ(cc->cwnd_bytes(), 20'000u);
}

// ---------- end-to-end flows over the paper topology ----------

struct FlowFixture : ::testing::Test {
  sim::Simulation sim{42};
  net::Network network{sim};
  net::PaperTopology topo;

  void SetUp() override {
    net::PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(200);
    topo = net::make_paper_topology(network, config);
  }
};

TEST_F(FlowFixture, HandshakeAndFixedTransferCompletes) {
  TcpFlow::Config config;
  config.sender.bytes_to_send = 2'000'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  bool completed = false;
  flow.set_on_complete([&]() { completed = true; });
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(20));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 2'000'000u);
  EXPECT_TRUE(flow.receiver().stats().fin_received);
  EXPECT_EQ(flow.sender().stats().new_data_bytes, 2'000'000u);
}

TEST_F(FlowFixture, UnboundedTransferStopsOnRequest) {
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], {});
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(5));
  sim.run_until(units::seconds(12));
  EXPECT_TRUE(flow.complete());
  EXPECT_GT(flow.receiver().stats().goodput_bytes, 10'000'000u);
  EXPECT_EQ(flow.receiver().stats().goodput_bytes,
            flow.sender().stats().new_data_bytes);
}

TEST_F(FlowFixture, AchievesNearBottleneckThroughput) {
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], {});
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(15));
  sim.run_until(units::seconds(20));
  const double goodput = flow.average_goodput_bps(sim.now());
  EXPECT_GT(goodput, 0.70 * 200e6);  // most of a 200 Mbps bottleneck
}

TEST_F(FlowFixture, DataIntactUnderRandomLoss) {
  // 0.2% loss toward the receiver: SACK recovery must deliver every byte
  // exactly once (goodput == sent bytes, no gaps).
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.002);
  TcpFlow::Config config;
  config.sender.bytes_to_send = 3'000'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(60));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 3'000'000u);
  EXPECT_GT(flow.sender().stats().retransmitted_segments, 0u);
}

TEST_F(FlowFixture, NewRenoModeAlsoSurvivesLoss) {
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.002);
  TcpFlow::Config config;
  config.sender.sack = false;
  config.sender.bytes_to_send = 1'000'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(120));
  EXPECT_TRUE(flow.complete());
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 1'000'000u);
}

TEST_F(FlowFixture, RenoCongestionControlWorksEndToEnd) {
  TcpFlow::Config config;
  config.sender.congestion_control = "reno";
  config.sender.bytes_to_send = 2'000'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(30));
  EXPECT_TRUE(flow.complete());
}

TEST_F(FlowFixture, ReceiverWindowCapsThroughput) {
  // rwnd sized for ~10 Mbps at 50 ms RTT.
  TcpFlow::Config config;
  config.receiver.buffer_bytes =
      units::bdp_bytes(units::mbps(10), units::milliseconds(50));
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(10));
  sim.run_until(units::seconds(15));
  const double goodput = flow.average_goodput_bps(sim.now());
  EXPECT_GT(goodput, 6e6);
  EXPECT_LT(goodput, 13e6);
  // Flight must be pinned at the advertised window, not cwnd.
  EXPECT_EQ(flow.sender().stats().retransmitted_segments, 0u);
}

TEST_F(FlowFixture, SenderRateLimitHolds) {
  TcpFlow::Config config;
  config.sender.rate_limit_bps = units::mbps(20);
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  flow.stop_at(units::seconds(10));
  sim.run_until(units::seconds(15));
  const double goodput = flow.average_goodput_bps(sim.now());
  EXPECT_NEAR(goodput, 20e6, 2e6);
  EXPECT_EQ(flow.sender().stats().retransmitted_segments, 0u);
}

TEST_F(FlowFixture, SynLossRecoveredByRetransmission) {
  // 30% loss makes the first SYN likely to die at least in some seeds;
  // the connection must still establish via SYN retransmission.
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.30);
  TcpFlow::Config config;
  config.sender.bytes_to_send = 50'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(120));
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 50'000u);
}

TEST_F(FlowFixture, TwoFlowsShareBottleneck) {
  TcpFlow f1(sim, *topo.dtn_internal, *topo.dtn_ext[0], {});
  TcpFlow f2(sim, *topo.dtn_internal, *topo.dtn_ext[1], {});
  f1.start_at(units::milliseconds(1));
  f2.start_at(units::milliseconds(1));
  f1.stop_at(units::seconds(20));
  f2.stop_at(units::seconds(20));
  sim.run_until(units::seconds(28));
  const double g1 = f1.average_goodput_bps(sim.now());
  const double g2 = f2.average_goodput_bps(sim.now());
  EXPECT_GT(g1 + g2, 0.7 * 200e6);   // jointly use the link
  EXPECT_LT(g1 + g2, 1.05 * 200e6);  // cannot exceed it
  EXPECT_GT(g2, 0.05 * g1);          // neither flow starves
}

TEST_F(FlowFixture, StatsConsistency) {
  TcpFlow::Config config;
  config.sender.bytes_to_send = 500'000;
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[1], config);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(20));
  const auto& s = flow.sender().stats();
  EXPECT_EQ(s.bytes_sent, s.new_data_bytes + s.retransmitted_bytes);
  EXPECT_EQ(s.bytes_acked, s.new_data_bytes);
  EXPECT_GE(s.end_time, s.established_time);
  EXPECT_GE(s.established_time, s.start_time);
  EXPECT_GT(flow.sender().rtt().min_rtt(), units::milliseconds(74));
}

TEST_F(FlowFixture, FiveTupleMatchesEndpoints) {
  TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[2], {});
  const net::FiveTuple t = flow.five_tuple();
  EXPECT_EQ(t.src_ip, topo.dtn_internal->ip());
  EXPECT_EQ(t.dst_ip, topo.dtn_ext[2]->ip());
  EXPECT_EQ(t.protocol, 6);
}

// ---------- receiver unit behaviour with crafted packets ----------

struct ReceiverFixture : ::testing::Test {
  sim::Simulation sim;
  net::Host host{sim, "rx", net::ipv4(10, 0, 0, 2)};
  net::Host peer_proxy{sim, "txproxy", net::ipv4(10, 0, 0, 1)};
  std::vector<net::Packet> acks;
  TcpReceiver receiver{sim, host, 5201};

  // The receiver sends ACKs through the host's uplink: loop them into a
  // collector instead of a real network.
  struct AckTap : net::PacketSink {
    std::vector<net::Packet>* out;
    void on_packet(const net::Packet& pkt) override { out->push_back(pkt); }
  } tap;
  net::Link loop{sim, units::gbps(100), 0};
  net::OutputPort loop_port{sim, 1 << 20, loop};

  void SetUp() override {
    tap.out = &acks;
    loop.set_sink(tap);
    host.attach_uplink(loop_port);
  }

  void deliver(net::Packet pkt) {
    host.on_packet(pkt);
    sim.run();  // flush the ACK through the loop link
  }

  net::Packet segment(std::uint32_t seq, std::uint32_t payload,
                      std::uint8_t flags = net::tcpflags::kAck) {
    return net::make_tcp_packet(peer_proxy.ip(), host.ip(), 40000, 5201,
                                seq, 0, flags, payload, 1 << 16);
  }
};

TEST_F(ReceiverFixture, SynGetsSynAck) {
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  ASSERT_GE(acks.size(), 1u);
  const net::TcpHeader& t = acks.back().tcp();
  EXPECT_TRUE(t.has(net::tcpflags::kSyn));
  EXPECT_TRUE(t.has(net::tcpflags::kAck));
  EXPECT_EQ(t.ack, 1001u);
}

TEST_F(ReceiverFixture, InOrderDataAdvancesCumAck) {
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  deliver(segment(1001, 100));
  EXPECT_EQ(acks.back().tcp().ack, 1101u);
  deliver(segment(1101, 100));
  EXPECT_EQ(acks.back().tcp().ack, 1201u);
  EXPECT_EQ(receiver.stats().goodput_bytes, 200u);
}

TEST_F(ReceiverFixture, OutOfOrderHoldsAckAndSacks) {
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  deliver(segment(1101, 100));  // hole at 1001
  const net::TcpHeader& t = acks.back().tcp();
  EXPECT_EQ(t.ack, 1001u);  // duplicate ACK
  ASSERT_EQ(t.sack_count, 1);
  EXPECT_EQ(t.sack[0].start, 1101u);
  EXPECT_EQ(t.sack[0].end, 1201u);
  // Fill the hole: cumulative ACK jumps over the sacked block.
  deliver(segment(1001, 100));
  EXPECT_EQ(acks.back().tcp().ack, 1201u);
  EXPECT_EQ(acks.back().tcp().sack_count, 0);
  EXPECT_EQ(receiver.stats().out_of_order_segments, 1u);
}

TEST_F(ReceiverFixture, DuplicateDataCounted) {
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  deliver(segment(1001, 100));
  deliver(segment(1001, 100));  // exact duplicate
  EXPECT_EQ(receiver.stats().duplicate_segments, 1u);
  EXPECT_EQ(receiver.stats().goodput_bytes, 100u);
}

TEST_F(ReceiverFixture, AdvertisedWindowShrinksWithOooBytes) {
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  const std::uint64_t before = receiver.advertised_window();
  deliver(segment(2001, 500));  // held out of order
  EXPECT_EQ(receiver.advertised_window(), before - 500);
}

TEST_F(ReceiverFixture, SequenceWrapHandled) {
  // ISN near the top of sequence space: data crosses the 2^32 boundary.
  deliver(segment(0xFFFFFF00u, 0, net::tcpflags::kSyn));
  std::uint32_t seq = 0xFFFFFF01u;
  for (int i = 0; i < 10; ++i) {
    deliver(segment(seq, 100));
    seq += 100;  // wraps through 0
  }
  EXPECT_EQ(receiver.stats().goodput_bytes, 1000u);
  EXPECT_EQ(acks.back().tcp().ack, 0xFFFFFF01u + 1000u);  // wrapped value
}

TEST_F(ReceiverFixture, FinAcknowledgedAndSignalled) {
  bool fin_seen = false;
  receiver.set_on_fin([&]() { fin_seen = true; });
  deliver(segment(1000, 0, net::tcpflags::kSyn));
  deliver(segment(1001, 100));
  deliver(segment(1101, 0, net::tcpflags::kFin | net::tcpflags::kAck));
  EXPECT_TRUE(fin_seen);
  EXPECT_TRUE(receiver.stats().fin_received);
  EXPECT_EQ(acks.back().tcp().ack, 1102u);  // FIN consumes one
}

}  // namespace
}  // namespace p4s::tcp
