// Unit tests: data-plane telemetry engines — long-flow tracker (CMS
// promotion, slot collisions, release), Algorithm 1 (RTT + packet loss),
// queue monitor (TAP-pair matching, microburst state machine), limitation
// classifier and IAT monitor.
#include <gtest/gtest.h>

#include "p4/hash.hpp"
#include "telemetry/flow_tracker.hpp"
#include "telemetry/iat_monitor.hpp"
#include "telemetry/limit_classifier.hpp"
#include "telemetry/queue_monitor.hpp"
#include "telemetry/rtt_loss.hpp"

namespace p4s::telemetry {
namespace {

net::FiveTuple tuple(std::uint8_t host = 1) {
  return net::FiveTuple{net::ipv4(10, 0, 0, 1), net::ipv4(10, 1, 0, host),
                        40000, 5201, 6};
}

// ---------- FlowTracker ----------

TEST(FlowTracker, PromotesAfterThreshold) {
  FlowTracker::Config config;
  config.promotion_bytes = 10'000;
  FlowTracker tracker(config);
  const net::FiveTuple t = tuple();
  // 6 packets of 1460: still below 10 kB.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(tracker.on_data_packet(t, 1460, 1000).has_value());
  }
  // The 7th crosses 10 kB -> promotion.
  const auto slot = tracker.on_data_packet(t, 1460, 2000);
  ASSERT_TRUE(slot.has_value());
  EXPECT_TRUE(tracker.occupied(*slot));
  EXPECT_EQ(tracker.active_flows(), 1u);

  const auto digests = tracker.new_flow_digests().drain();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].slot, *slot);
  EXPECT_EQ(digests[0].detected_at, 2000u);
  EXPECT_EQ(digests[0].flow.flow_id, p4::flow_hash(t));
  EXPECT_EQ(digests[0].flow.rev_flow_id, p4::flow_hash(t.reversed()));
  EXPECT_EQ(digests[0].flow.tuple, t);
}

TEST(FlowTracker, SlotIsFlowHashModuloSlots) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;
  FlowTracker tracker(config);
  const net::FiveTuple t = tuple();
  const auto slot = tracker.on_data_packet(t, 1460, 1);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, p4::flow_hash(t) & kFlowSlotMask);
}

TEST(FlowTracker, SamePacketKeepsSameSlot) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;
  FlowTracker tracker(config);
  const auto a = tracker.on_data_packet(tuple(), 1460, 1);
  const auto b = tracker.on_data_packet(tuple(), 1460, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(tracker.new_flow_digests().drain().size(), 1u);  // one digest
}

TEST(FlowTracker, SlotLookupVerifiesFlowId) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;
  FlowTracker tracker(config);
  tracker.on_data_packet(tuple(), 1460, 1);
  EXPECT_TRUE(tracker.slot_of(p4::flow_hash(tuple())).has_value());
  EXPECT_FALSE(tracker.slot_of(p4::flow_hash(tuple(9))).has_value());
  EXPECT_TRUE(tracker.dp_slot_of(p4::flow_hash(tuple())).has_value());
}

TEST(FlowTracker, ReleaseRecyclesSlot) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;
  FlowTracker tracker(config);
  const auto slot = tracker.on_data_packet(tuple(), 1460, 1);
  ASSERT_TRUE(slot.has_value());
  tracker.release(*slot);
  EXPECT_FALSE(tracker.occupied(*slot));
  EXPECT_EQ(tracker.active_flows(), 0u);
  // A different flow can now take the slot (if it hashes there); at the
  // least, the same flow can re-promote.
  const auto again = tracker.on_data_packet(tuple(), 1460, 2);
  EXPECT_EQ(again, slot);
}

TEST(FlowTracker, CollisionCountedAndIncumbentKept) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;
  FlowTracker tracker(config);
  const net::FiveTuple a = tuple();
  const auto slot_a = tracker.on_data_packet(a, 1460, 1);
  ASSERT_TRUE(slot_a.has_value());

  // Find another tuple hashing to the same slot.
  net::FiveTuple b = a;
  for (std::uint16_t port = 1; port < 65535; ++port) {
    b.src_port = port;
    if ((p4::flow_hash(b) & kFlowSlotMask) == *slot_a &&
        p4::flow_hash(b) != p4::flow_hash(a)) {
      break;
    }
  }
  ASSERT_EQ(p4::flow_hash(b) & kFlowSlotMask, *slot_a);
  EXPECT_FALSE(tracker.on_data_packet(b, 1460, 2).has_value());
  EXPECT_EQ(tracker.slot_collisions(), 1u);
  EXPECT_EQ(tracker.identity(*slot_a).tuple, a);  // incumbent unchanged
}

// ---------- RttLossEngine (Algorithm 1) ----------

struct Alg1Fixture : ::testing::Test {
  RttLossEngine engine;
  const net::FiveTuple data_tuple = tuple();
  const std::uint32_t flow_id = p4::flow_hash(data_tuple);
  const std::uint32_t rev_id = p4::flow_hash(data_tuple.reversed());
  const std::uint16_t slot =
      static_cast<std::uint16_t>(flow_id & kFlowSlotMask);

  bool data(std::uint32_t seq, std::uint32_t payload, SimTime t) {
    return engine.on_data_packet({slot, rev_id, seq, payload, false}, t);
  }
  std::optional<SimTime> ack(std::uint32_t ackno, SimTime t) {
    // The ACK packet's own flow id is the hash of the reverse tuple.
    return engine.on_ack_packet({rev_id, slot, ackno}, t);
  }
};

TEST_F(Alg1Fixture, InOrderDataNoLoss) {
  EXPECT_FALSE(data(1000, 1460, 10));
  EXPECT_FALSE(data(2460, 1460, 20));
  EXPECT_FALSE(data(3920, 1460, 30));
  EXPECT_EQ(engine.losses(slot), 0u);
}

TEST_F(Alg1Fixture, SequenceRegressionCountsLoss) {
  data(1000, 1460, 10);
  data(2460, 1460, 20);
  EXPECT_TRUE(data(1000, 1460, 30));  // retransmission
  EXPECT_EQ(engine.losses(slot), 1u);
}

TEST_F(Alg1Fixture, EackMatchYieldsExactRtt) {
  // Data packet seq 1000 len 1460 -> eACK 2460, parked at t=100.
  data(1000, 1460, 100);
  const auto rtt = ack(2460, 100 + 52'000'000);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_EQ(*rtt, 52'000'000u);
  EXPECT_EQ(engine.last_rtt(slot), 52'000'000u);
  EXPECT_EQ(engine.eack_matches(), 1u);
}

TEST_F(Alg1Fixture, SampleConsumedOnce) {
  data(1000, 1460, 100);
  ASSERT_TRUE(ack(2460, 200).has_value());
  EXPECT_FALSE(ack(2460, 300).has_value());  // already consumed
  EXPECT_EQ(engine.eack_misses(), 1u);
}

TEST_F(Alg1Fixture, UnmatchedAckMisses) {
  EXPECT_FALSE(ack(999, 100).has_value());
  EXPECT_EQ(engine.eack_misses(), 1u);
  EXPECT_EQ(engine.last_rtt(slot), 0u);
}

TEST_F(Alg1Fixture, ZeroPayloadDataNotParked) {
  data(1000, 0, 100);
  EXPECT_FALSE(ack(1000, 200).has_value());
}

TEST_F(Alg1Fixture, WrapSafeNoFalseLossAcrossWrap) {
  // Sequence numbers crossing 2^32 must not count as regression.
  data(0xFFFFFC00u, 1460, 10);
  EXPECT_FALSE(data(0xFFFFFC00u + 1460, 1460, 20));   // wraps to 0x1B4
  EXPECT_FALSE(data(0xFFFFFC00u + 2920, 1460, 30));   // 0x768, forward
  EXPECT_EQ(engine.losses(slot), 0u);
}

TEST_F(Alg1Fixture, ClearSlotResets) {
  data(1000, 1460, 10);
  data(900, 100, 20);
  engine.clear_slot(slot);
  EXPECT_EQ(engine.losses(slot), 0u);
  EXPECT_EQ(engine.last_rtt(slot), 0u);
  // prev_seq invalidated: old smaller seq is no longer a regression.
  EXPECT_FALSE(data(500, 100, 30));
}

TEST(RttLossEngine, SmallTableEvicts) {
  RttLossEngine engine(16);  // tiny eACK register
  const net::FiveTuple t = tuple();
  const std::uint32_t rev = p4::flow_hash(t.reversed());
  const std::uint16_t slot =
      static_cast<std::uint16_t>(p4::flow_hash(t) & kFlowSlotMask);
  for (std::uint32_t i = 0; i < 64; ++i) {
    engine.on_data_packet({slot, rev, 1000 + i * 1460, 1460, false}, i);
  }
  EXPECT_GT(engine.eack_evictions(), 0u);
}

// ---------- QueueMonitor ----------

TEST(QueueMonitor, PairMatchingYieldsDelay) {
  QueueMonitor monitor;
  monitor.on_ingress_copy(0xABC, 1'000);
  const auto delay = monitor.on_egress_copy(0xABC, std::uint16_t{5}, 4'000);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 3'000u);
  EXPECT_EQ(monitor.last_queue_delay(5), 3'000u);
  EXPECT_EQ(monitor.last_delay_any(), 3'000u);
  EXPECT_EQ(monitor.matched_pairs(), 1u);
}

TEST(QueueMonitor, UnmatchedEgressCounted) {
  QueueMonitor monitor;
  EXPECT_FALSE(monitor.on_egress_copy(0x123, std::nullopt, 10).has_value());
  EXPECT_EQ(monitor.unmatched_egress(), 1u);
}

TEST(QueueMonitor, SignatureMismatchNotMatched) {
  QueueMonitor monitor;
  monitor.on_ingress_copy(0xAAAA0001, 100);
  // Same register index (same low bits) but different signature word.
  const std::uint32_t aliased = 0xBBBB0001 & ~kPacketSigMask;
  EXPECT_FALSE(monitor
                   .on_egress_copy((0xAAAA0001 & kPacketSigMask) | aliased,
                                   std::nullopt, 200)
                   .has_value());
}

TEST(QueueMonitor, UntrackedFlowStillFeedsBurstDetector) {
  QueueMonitor::Config config;
  config.burst_threshold_ns = 1'000;
  config.burst_exit_ns = 500;
  QueueMonitor monitor(config);
  // Timestamp 0 is the empty-cell sentinel; real traffic starts later.
  monitor.on_ingress_copy(1, 100);
  monitor.on_egress_copy(1, std::nullopt, 5'100);  // delay 5000 >= 1000
  EXPECT_TRUE(monitor.burst_active());
}

TEST(QueueMonitor, MicroburstStateMachineWithHysteresis) {
  QueueMonitor::Config config;
  config.burst_threshold_ns = 1'000;
  config.burst_exit_ns = 400;
  QueueMonitor monitor(config);

  auto pkt = [&](std::uint32_t sig, SimTime in, SimTime out) {
    monitor.on_ingress_copy(sig, in);
    monitor.on_egress_copy(sig, std::uint16_t{0}, out);
  };

  pkt(1, 0, 100);        // delay 100: idle
  EXPECT_FALSE(monitor.burst_active());
  pkt(2, 200, 1700);     // delay 1500: burst opens
  EXPECT_TRUE(monitor.burst_active());
  pkt(3, 300, 2100);     // delay 1800: still in burst (peak)
  pkt(4, 2500, 3200);    // delay 700: above exit threshold, stays open
  EXPECT_TRUE(monitor.burst_active());
  pkt(5, 4000, 4300);    // delay 300 <= 400: burst closes
  EXPECT_FALSE(monitor.burst_active());

  const auto digests = monitor.microburst_digests().drain();
  ASSERT_EQ(digests.size(), 1u);
  // Burst began when packet 2 entered the queue: 1700-1500 = 200.
  EXPECT_EQ(digests[0].start_ns, 200u);
  EXPECT_EQ(digests[0].duration_ns, 4300u - 200u);
  EXPECT_EQ(digests[0].peak_queue_delay_ns, 1800u);
  EXPECT_EQ(digests[0].packets_in_burst, 4u);
}

TEST(QueueMonitor, MultipleBurstsReportedSeparately) {
  QueueMonitor::Config config;
  config.burst_threshold_ns = 1'000;
  config.burst_exit_ns = 400;
  QueueMonitor monitor(config);
  auto pkt = [&](std::uint32_t sig, SimTime in, SimTime out) {
    monitor.on_ingress_copy(sig, in);
    monitor.on_egress_copy(sig, std::uint16_t{0}, out);
  };
  pkt(1, 10, 2010);    // open (delay 2000)
  pkt(2, 2100, 2200);  // close (delay 100)
  pkt(3, 3000, 5000);  // open
  pkt(4, 5100, 5200);  // close
  EXPECT_EQ(monitor.microburst_digests().drain().size(), 2u);
}

// ---------- LimitClassifier ----------

struct ClassifierFixture : ::testing::Test {
  LimitClassifier::Config config;
  void init() { classifier = std::make_unique<LimitClassifier>(config); }
  std::unique_ptr<LimitClassifier> classifier;

  ClassifierFixture() {
    config.window_ns = units::milliseconds(100);
    config.network_memory_windows = 2;
  }

  SimTime t = 1;           // advances monotonically across calls
  std::uint32_t seq = 1000;

  /// Simulate a flow with constant flight over several windows.
  void run_stable_flow(std::uint16_t slot, int windows) {
    const std::uint32_t flight = 100'000;
    for (int w = 0; w < windows; ++w) {
      for (int p = 0; p < 20; ++p) {
        classifier->on_data(slot, seq, 1460, t);
        classifier->on_ack(slot, seq + 1460 - flight, t);
        seq += 1460;
        t += units::milliseconds(100) / 20;
      }
    }
  }
};

TEST_F(ClassifierFixture, StableFlightNoLossIsEndpointLimited) {
  init();
  run_stable_flow(1, 4);
  EXPECT_EQ(classifier->verdict(1), LimitVerdict::kEndpointLimited);
  EXPECT_NEAR(static_cast<double>(classifier->flight_bytes(1)), 100'000.0,
              2000.0);
}

TEST_F(ClassifierFixture, LossMakesNetworkLimited) {
  init();
  run_stable_flow(2, 2);
  classifier->on_loss(2);
  run_stable_flow(2, 1);
  EXPECT_EQ(classifier->verdict(2), LimitVerdict::kNetworkLimited);
}

TEST_F(ClassifierFixture, QueueingMakesNetworkLimited) {
  init();
  classifier->on_queue_delay(3, units::milliseconds(5));
  run_stable_flow(3, 2);
  EXPECT_EQ(classifier->verdict(3), LimitVerdict::kNetworkLimited);
}

TEST_F(ClassifierFixture, NetworkVerdictSticksForMemoryWindows) {
  init();
  run_stable_flow(4, 2);
  classifier->on_loss(4);
  run_stable_flow(4, 1);  // window with the loss evaluates -> network
  EXPECT_EQ(classifier->verdict(4), LimitVerdict::kNetworkLimited);
  run_stable_flow(4, 2);  // loss-free, but within memory
  EXPECT_EQ(classifier->verdict(4), LimitVerdict::kNetworkLimited);
  run_stable_flow(4, 3);  // memory (2 windows) exhausted
  EXPECT_EQ(classifier->verdict(4), LimitVerdict::kEndpointLimited);
}

TEST_F(ClassifierFixture, GrowingFlightWithoutLossIsUnknown) {
  init();
  SimTime t = 1;
  std::uint32_t seq = 1000;
  std::uint32_t acked = 500;
  // Flight doubles within each window (slow-start-like probing).
  for (int w = 0; w < 3; ++w) {
    for (int p = 0; p < 30; ++p) {
      classifier->on_data(5, seq, 1460, t);
      classifier->on_ack(5, acked, t);
      seq += 1460;
      acked += 400;  // acks lag: flight grows
      t += units::milliseconds(100) / 30;
    }
  }
  EXPECT_EQ(classifier->verdict(5), LimitVerdict::kUnknown);
}

TEST_F(ClassifierFixture, ClearSlotResets) {
  init();
  run_stable_flow(6, 4);
  classifier->clear_slot(6);
  EXPECT_EQ(classifier->verdict(6), LimitVerdict::kUnknown);
  EXPECT_EQ(classifier->flight_bytes(6), 0u);
}

TEST(LimitVerdict, Names) {
  EXPECT_STREQ(to_string(LimitVerdict::kUnknown), "unknown");
  EXPECT_STREQ(to_string(LimitVerdict::kNetworkLimited), "network");
  EXPECT_STREQ(to_string(LimitVerdict::kEndpointLimited), "endpoint");
}

// ---------- IatMonitor ----------

TEST(IatMonitor, FirstPacketHasNoIat) {
  IatMonitor monitor;
  EXPECT_FALSE(monitor.on_data(0, 1000).has_value());
  EXPECT_TRUE(monitor.on_data(0, 2000).has_value());
}

TEST(IatMonitor, TracksEwma) {
  IatMonitor monitor;
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    monitor.on_data(0, t);
    t += 1'000;
  }
  EXPECT_EQ(monitor.ewma_iat(0), 1'000u);
  EXPECT_EQ(monitor.last_iat(0), 1'000u);
}

TEST(IatMonitor, DetectsBlockageAfterWarmup) {
  IatMonitor::Config config;
  config.warmup_samples = 8;
  config.blockage_factor = 8.0;
  config.min_gap_ns = units::milliseconds(1);
  config.consecutive_gaps = 2;
  IatMonitor monitor(config);
  SimTime t = 0;
  for (int i = 0; i < 20; ++i) {
    monitor.on_data(0, t);
    t += units::microseconds(200);
  }
  EXPECT_FALSE(monitor.blocked(0));
  t += units::milliseconds(50);  // 250x the baseline
  monitor.on_data(0, t);
  // One gap is a congestion stall, not a blockage.
  EXPECT_FALSE(monitor.blocked(0));
  t += units::milliseconds(50);  // the second consecutive gap flags
  monitor.on_data(0, t);
  EXPECT_TRUE(monitor.blocked(0));
  const auto digests = monitor.blockage_digests().drain();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].iat_ns, units::milliseconds(50));
  EXPECT_EQ(digests[0].baseline_iat_ns, units::microseconds(200));
}

TEST(IatMonitor, MinGapFloorSuppressesSmallSpikes) {
  IatMonitor::Config config;
  config.warmup_samples = 4;
  config.min_gap_ns = units::milliseconds(10);
  config.consecutive_gaps = 1;
  IatMonitor monitor(config);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.on_data(0, t);
    t += units::microseconds(100);
  }
  t += units::milliseconds(2);  // 20x baseline but under the floor
  monitor.on_data(0, t);
  EXPECT_FALSE(monitor.blocked(0));
}

TEST(IatMonitor, SingleStallDoesNotFlagWithConsecutiveRequirement) {
  IatMonitor::Config config;
  config.warmup_samples = 4;
  config.min_gap_ns = units::milliseconds(1);
  config.consecutive_gaps = 2;
  IatMonitor monitor(config);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.on_data(0, t);
    t += units::microseconds(100);
  }
  // TCP recovery stall: one long gap, then the burst resumes.
  t += units::milliseconds(80);
  monitor.on_data(0, t);
  for (int i = 0; i < 5; ++i) {
    t += units::microseconds(100);
    monitor.on_data(0, t);
  }
  EXPECT_FALSE(monitor.blocked(0));
  EXPECT_EQ(monitor.blockage_digests().drain().size(), 0u);
}

TEST(IatMonitor, NoDetectionDuringWarmup) {
  IatMonitor::Config config;
  config.warmup_samples = 100;
  config.min_gap_ns = 1;
  IatMonitor monitor(config);
  monitor.on_data(0, 0);
  monitor.on_data(0, 100);
  monitor.on_data(0, units::seconds(1));  // massive gap, but cold
  EXPECT_FALSE(monitor.blocked(0));
}

TEST(IatMonitor, RecoveryClearsFlagAndOneDigestPerEpisode) {
  IatMonitor::Config config;
  config.warmup_samples = 4;
  config.min_gap_ns = units::milliseconds(1);
  IatMonitor monitor(config);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.on_data(0, t);
    t += units::microseconds(100);
  }
  // Blockage: three huge gaps -> one digest.
  for (int i = 0; i < 3; ++i) {
    t += units::milliseconds(20);
    monitor.on_data(0, t);
  }
  EXPECT_TRUE(monitor.blocked(0));
  EXPECT_EQ(monitor.blockage_digests().drain().size(), 1u);
  // Normal traffic resumes: flag clears; EWMA survived (frozen).
  t += units::microseconds(100);
  monitor.on_data(0, t);
  EXPECT_FALSE(monitor.blocked(0));
  EXPECT_NEAR(static_cast<double>(monitor.ewma_iat(0)),
              static_cast<double>(units::microseconds(100)), 5000.0);
}

TEST(IatMonitor, ClearSlotResets) {
  IatMonitor monitor;
  monitor.on_data(3, 1000);
  monitor.on_data(3, 2000);
  monitor.clear_slot(3);
  EXPECT_EQ(monitor.last_iat(3), 0u);
  EXPECT_EQ(monitor.ewma_iat(3), 0u);
  EXPECT_FALSE(monitor.on_data(3, 5000).has_value());  // first again
}

}  // namespace
}  // namespace p4s::telemetry
