// Byte-identity of the shipped byte-counter measurement program: the
// interpreted port (examples/programs/byte_counter.mpl.json) must
// reproduce the hand-written throughput pipeline's Report_v1 series
// bit for bit — same timestamps, same double values — on the fixed-seed
// fig9-style scenario, serially and under the sharded fabric.
//
// Why this holds: counters_.on_data and the VM's on_tracked_data see
// the same packets in the same order (the packet-engine hook runs right
// after the hand-written counter update), the add op accumulates the
// same uint64, and the VM's export reader replicates the builtin rate
// arithmetic verbatim (prev/prev_at seeded from detected_at, value =
// (v - prev) * 8.0 / dt). Equal integer inputs + identical double
// expressions = bitwise-equal doubles.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "mpl/compiler.hpp"

namespace p4s {
namespace {

using core::MonitoredSwitchConfig;
using core::MonitoringSystem;
using core::MonitoringSystemConfig;
using core::TapPoint;
using units::seconds;

const std::string kByteCounterFile =
    std::string(P4S_EXAMPLES_DIR) + "/programs/byte_counter.mpl.json";

mpl::Program load_byte_counter() {
  std::ifstream in(kByteCounterFile);
  EXPECT_TRUE(in.good()) << "cannot open " << kByteCounterFile;
  std::ostringstream text;
  text << in.rdbuf();
  return mpl::compile_program_text(text.str(), kByteCounterFile);
}

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  cp::ReportSink* next = nullptr;
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
    if (next != nullptr) next->on_report(report);
  }
};

/// Per-flow series of one metric: (ts_ns, value) in emission order.
using Series = std::map<std::int64_t, std::vector<std::pair<std::int64_t,
                                                            double>>>;

Series series_of(const std::vector<std::string>& lines,
                 const std::string& metric, const std::string& value_key) {
  Series series;
  for (const std::string& line : lines) {
    const util::Json doc = util::Json::parse(line);
    if (doc.at("report").as_string() != metric) continue;
    const std::int64_t flow_id = doc.at("flow").at("id").as_int();
    series[flow_id].push_back(
        {doc.at("ts_ns").as_int(), doc.at(value_key).as_double()});
  }
  return series;
}

// The fig9-style scenario: 2 Mbit/s bottleneck, fixed seed, two seeded
// transfers, 2 samples/s on the builtins AND on the program's export.
MonitoringSystemConfig scenario() {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  config.programs.push_back(load_byte_counter());
  return config;
}

std::vector<std::string> run_scenario(MonitoringSystemConfig config) {
  MonitoringSystem system(std::move(config));
  Collector collector;
  auto& plane = system.monitored_switch(0).control_plane();
  collector.next = plane.sink();
  plane.set_sink(&collector);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.run_until(seconds(8));
  return collector.lines;
}

TEST(ProgramVmIdentity, ByteCounterMatchesHandWrittenThroughput) {
  const std::vector<std::string> lines = run_scenario(scenario());

  const Series handwritten = series_of(lines, "throughput",
                                       "throughput_bps");
  const Series interpreted = series_of(lines, "vm_throughput",
                                       "throughput_bps");
  ASSERT_FALSE(handwritten.empty());
  ASSERT_EQ(handwritten.size(), 2u) << "expected two tracked flows";
  ASSERT_EQ(interpreted.size(), handwritten.size());

  std::size_t samples = 0;
  for (const auto& [flow_id, expected] : handwritten) {
    ASSERT_TRUE(interpreted.count(flow_id))
        << "no vm_throughput series for flow " << flow_id;
    const auto& actual = interpreted.at(flow_id);
    ASSERT_EQ(actual.size(), expected.size()) << "flow " << flow_id;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].first, expected[i].first)
          << "flow " << flow_id << " sample " << i << ": timestamp";
      // EXPECT_EQ on doubles is exact — the byte-identity contract.
      EXPECT_EQ(actual[i].second, expected[i].second)
          << "flow " << flow_id << " sample " << i << ": value";
    }
    samples += expected.size();
  }
  EXPECT_GE(samples, 12u) << "scenario produced too few samples to be "
                             "a meaningful comparison";
}

// The program rides the sharded fabric unchanged: a 4-switch run with
// the byte counter installed fabric-wide produces the identical full
// report stream at parallel=1 and parallel=4.
TEST(ProgramVmIdentity, FabricWideInstallIsParallelInvariant) {
  auto run = [](std::size_t parallel) {
    MonitoringSystemConfig config;
    config.topology.bottleneck_bps = units::mbps(2);
    config.seed = 42;
    config.parallel = parallel;
    config.programs.push_back(load_byte_counter());
    config.switches = {
        MonitoredSwitchConfig{"core", TapPoint::kCoreBottleneck, {}},
        MonitoredSwitchConfig{"ext0", TapPoint::kWanExt0, {}},
        MonitoredSwitchConfig{"ext1", TapPoint::kWanExt1, {}},
        MonitoredSwitchConfig{"ext2", TapPoint::kWanExt2, {}},
    };
    MonitoringSystem system(std::move(config));
    std::vector<Collector> sites(system.switch_count());
    for (std::size_t i = 0; i < system.switch_count(); ++i) {
      auto& plane = system.monitored_switch(i).control_plane();
      sites[i].next = plane.sink();
      plane.set_sink(&sites[i]);
    }
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 2");
    system.start();
    system.add_transfer(0).start_at(seconds(1));
    system.add_transfer(1).start_at(seconds(2));
    system.add_transfer(2).start_at(seconds(4));
    system.run_until(seconds(8));
    std::vector<std::vector<std::string>> out;
    for (auto& site : sites) out.push_back(std::move(site.lines));
    return out;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  bool saw_vm_metric = false;
  for (std::size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].size(), parallel[s].size()) << "site " << s;
    for (std::size_t i = 0; i < serial[s].size(); ++i) {
      ASSERT_EQ(serial[s][i], parallel[s][i])
          << "site " << s << " report " << i;
      if (serial[s][i].find("\"vm_throughput\"") != std::string::npos) {
        saw_vm_metric = true;
      }
    }
  }
  EXPECT_TRUE(saw_vm_metric)
      << "the interpreted metric never appeared in the stream";
}

// Site-level installs replace fabric-wide ones by name: a per-site
// variant with a different export rate wins on that site only.
TEST(ProgramVmIdentity, SiteProgramReplacesFabricWideInstall) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  config.programs.push_back(load_byte_counter());
  mpl::Program site_variant = load_byte_counter();
  site_variant.export_spec->samples_per_second = 4.0;
  config.switches = {
      MonitoredSwitchConfig{"core", TapPoint::kCoreBottleneck, {}},
      MonitoredSwitchConfig{"ext0", TapPoint::kWanExt0, {site_variant}},
  };
  MonitoringSystem system(std::move(config));
  auto& core_vm = system.monitored_switch(0).program_vm();
  auto& ext_vm = system.monitored_switch(1).program_vm();
  ASSERT_NE(core_vm.find("byte_counter"), nullptr);
  ASSERT_NE(ext_vm.find("byte_counter"), nullptr);
  EXPECT_DOUBLE_EQ(
      core_vm.find("byte_counter")->export_spec->samples_per_second, 2.0);
  EXPECT_DOUBLE_EQ(
      ext_vm.find("byte_counter")->export_spec->samples_per_second, 4.0);
  EXPECT_EQ(core_vm.program_count(), 1u);
  EXPECT_EQ(ext_vm.program_count(), 1u);
}

}  // namespace
}  // namespace p4s
