// Property-based tests (parameterized gtest over randomized inputs):
// invariants that must hold for arbitrary packets, sequences and loads.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <string>

#include "controlplane/resilient_sink.hpp"
#include "net/fault_injector.hpp"
#include "net/queue.hpp"
#include "net/report_channel.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "net/topology.hpp"
#include "net/wire.hpp"
#include "p4/cms.hpp"
#include "p4/hash.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tcp/flow.hpp"
#include "tcp/seq.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace p4s {
namespace {

// ---------- wire round-trip over randomized packets ----------

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

net::Packet random_packet(sim::Rng& rng) {
  const int kind = static_cast<int>(rng.next_below(3));
  const auto src = static_cast<net::Ipv4Address>(rng.next_u64());
  const auto dst = static_cast<net::Ipv4Address>(rng.next_u64());
  const auto sport = static_cast<std::uint16_t>(rng.next_below(65536));
  const auto dport = static_cast<std::uint16_t>(rng.next_below(65536));
  const auto payload = static_cast<std::uint32_t>(rng.next_below(9000));
  switch (kind) {
    case 0: {
      const auto seq = static_cast<std::uint32_t>(rng.next_u64());
      const auto ack = static_cast<std::uint32_t>(rng.next_u64());
      const auto flags = static_cast<std::uint8_t>(rng.next_below(32));
      const auto window = static_cast<std::uint32_t>(
          rng.next_below(1u << 30) & ~((1u << net::kWindowShift) - 1));
      return net::make_tcp_packet(src, dst, sport, dport, seq, ack, flags,
                                  payload, window);
    }
    case 1:
      return net::make_udp_packet(src, dst, sport, dport,
                                  payload % 60000);
    default:
      return net::make_icmp_packet(
          src, dst, rng.chance(0.5) ? 8 : 0,
          static_cast<std::uint16_t>(rng.next_below(65536)),
          static_cast<std::uint16_t>(rng.next_below(65536)), payload % 500);
  }
}

TEST_P(WireRoundTrip, SerializeParseIdentity) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    net::Packet p = random_packet(rng);
    p.ip.id = static_cast<std::uint16_t>(rng.next_below(65536));
    p.ip.ttl = static_cast<std::uint8_t>(rng.next_below(256));
    std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
    const std::size_t len = net::serialize_headers(p, buf);
    const auto parsed = net::parse_headers({buf.data(), len});
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ip.src, p.ip.src);
    EXPECT_EQ(parsed->ip.dst, p.ip.dst);
    EXPECT_EQ(parsed->ip.id, p.ip.id);
    EXPECT_EQ(parsed->ip.ttl, p.ip.ttl);
    EXPECT_EQ(parsed->ip.total_len, p.ip.total_len);
    EXPECT_EQ(parsed->ip.protocol, p.ip.protocol);
    EXPECT_EQ(parsed->five_tuple(), p.five_tuple());
    if (p.is_tcp()) {
      EXPECT_EQ(parsed->tcp().seq, p.tcp().seq);
      EXPECT_EQ(parsed->tcp().ack, p.tcp().ack);
      EXPECT_EQ(parsed->tcp().flags, p.tcp().flags);
      EXPECT_EQ(parsed->tcp().window, p.tcp().window);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- CMS overestimation property ----------

class CmsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CmsProperty, EstimateNeverBelowTruth) {
  sim::Rng rng(GetParam());
  p4::CountMinSketch cms(3, 512);
  std::map<std::uint32_t, std::uint64_t> truth;
  std::vector<net::FiveTuple> tuples;
  for (int f = 0; f < 40; ++f) {
    tuples.push_back(net::FiveTuple{
        static_cast<net::Ipv4Address>(rng.next_u64()),
        static_cast<net::Ipv4Address>(rng.next_u64()),
        static_cast<std::uint16_t>(rng.next_below(65536)),
        static_cast<std::uint16_t>(rng.next_below(65536)), 6});
  }
  for (int i = 0; i < 5000; ++i) {
    const auto& t = tuples[rng.next_below(tuples.size())];
    const auto amount = rng.next_in(1, 1500);
    truth[p4::flow_hash(t)] += amount;
    cms.update(p4::five_tuple_key(t), amount);
  }
  for (const auto& t : tuples) {
    const auto it = truth.find(p4::flow_hash(t));
    if (it == truth.end()) continue;
    EXPECT_GE(cms.estimate(p4::five_tuple_key(t)), it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmsProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------- Jain fairness bounds ----------

class JainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JainProperty, AlwaysWithinBounds) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.next_below(16);
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.next_double() * 1e9;
    const auto f = util::jain_fairness(xs);
    if (!f.has_value()) {
      // Only an all-zero draw leaves the index undefined.
      for (double x : xs) EXPECT_EQ(x, 0.0);
      continue;
    }
    EXPECT_GE(*f, 1.0 / static_cast<double>(n) - 1e-9);
    EXPECT_LE(*f, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JainProperty, ::testing::Values(7, 77, 777));

// ---------- sequence unwrap round-trip ----------

class SeqUnwrapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqUnwrapProperty, UnwrapInvertsTruncationNearReference) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ref = rng.next_u64() >> rng.next_below(20);
    // offset within +/- 2^31 of the reference
    const std::int64_t delta =
        static_cast<std::int64_t>(rng.next_u64() % (1ULL << 31)) -
        (1LL << 30);
    const std::int64_t target =
        static_cast<std::int64_t>(ref) + delta;
    if (target < 0) continue;
    const auto truncated = static_cast<std::uint32_t>(target);
    EXPECT_EQ(tcp::seq_unwrap(ref, truncated),
              static_cast<std::uint64_t>(target))
        << "ref=" << ref << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqUnwrapProperty,
                         ::testing::Values(100, 200, 300, 400));

// ---------- drop-tail queue invariants under random load ----------

class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, OccupancyNeverExceedsCapacityAndConserves) {
  sim::Rng rng(GetParam());
  const std::uint64_t capacity = 20'000 + rng.next_below(50'000);
  net::DropTailQueue queue(capacity);
  std::uint64_t enq = 0, deq = 0, drop = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.6)) {
      const auto payload = static_cast<std::uint32_t>(rng.next_below(9000));
      const net::Packet p = net::make_udp_packet(1, 2, 3, 4, payload);
      if (queue.try_enqueue(p, i)) {
        ++enq;
      } else {
        ++drop;
      }
    } else if (queue.dequeue().has_value()) {
      ++deq;
    }
    EXPECT_LE(queue.occupancy_bytes(), capacity);
  }
  EXPECT_EQ(queue.stats().enqueued_pkts, enq);
  EXPECT_EQ(queue.stats().dropped_pkts, drop);
  EXPECT_EQ(queue.stats().dequeued_pkts, deq);
  EXPECT_EQ(enq - deq, queue.depth_pkts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty,
                         ::testing::Values(21, 42, 63, 84));

// ---------- event queue ordering under random schedules ----------

class EventOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderProperty, FiresInNonDecreasingTimeOrder) {
  sim::Rng rng(GetParam());
  sim::EventQueue q;
  std::vector<SimTime> fired;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = rng.next_below(100'000);
    handles.push_back(q.schedule_at(t, [&fired, &q]() {
      fired.push_back(q.now());
    }));
  }
  // Cancel a random third.
  for (auto& h : handles) {
    if (rng.chance(0.33)) h.cancel();
  }
  q.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), q.executed_events());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty,
                         ::testing::Values(5, 15, 25));

// ---------- JSON round-trip over random documents ----------

class JsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

util::Json random_json(sim::Rng& rng, int depth) {
  const std::uint64_t kind = rng.next_below(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return util::Json(nullptr);
    case 1: return util::Json(rng.chance(0.5));
    case 2: return util::Json(static_cast<std::int64_t>(rng.next_u64() >>
                                                        rng.next_below(40)));
    case 3: {
      std::string s;
      const auto len = rng.next_below(20);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(32 + rng.next_below(95)));
      }
      return util::Json(s);
    }
    case 4: {
      util::JsonArray arr;
      const auto n = rng.next_below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.push_back(random_json(rng, depth - 1));
      }
      return util::Json(std::move(arr));
    }
    default: {
      util::JsonObject obj;
      const auto n = rng.next_below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(i)] = random_json(rng, depth - 1);
      }
      return util::Json(std::move(obj));
    }
  }
}

TEST_P(JsonProperty, DumpParseIdentity) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const util::Json doc = random_json(rng, 4);
    const util::Json reparsed = util::Json::parse(doc.dump());
    EXPECT_TRUE(doc == reparsed);
    // Pretty-printing parses back identically too.
    EXPECT_TRUE(doc == util::Json::parse(doc.dump(2)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonProperty,
                         ::testing::Values(31, 62, 93, 124));

// ---------- TCP delivers every byte exactly once under random loss ----

// The central correctness property of the TCP substrate: for arbitrary
// loss rates on either direction, a fixed-size transfer completes with
// goodput == bytes offered, no matter which packets die.
struct LossCase {
  std::uint64_t seed;
  double fwd_loss;
  double rev_loss;  // loss on the ACK path
  bool sack;
};

class TcpIntegrity : public ::testing::TestWithParam<LossCase> {};

TEST_P(TcpIntegrity, AllBytesDeliveredExactlyOnce) {
  const LossCase c = GetParam();
  sim::Simulation sim(c.seed);
  net::Network network(sim);
  net::PaperTopologyConfig tconfig;
  tconfig.bottleneck_bps = units::mbps(100);
  auto topo = net::make_paper_topology(network, tconfig);
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(c.fwd_loss);
  topo.ext_dtn_links[0].forward_link->set_loss_rate(c.rev_loss);

  tcp::TcpFlow::Config fc;
  fc.sender.sack = c.sack;
  fc.sender.bytes_to_send = 1'000'000;
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(180));

  EXPECT_TRUE(flow.complete())
      << "seed=" << c.seed << " fwd=" << c.fwd_loss << " rev=" << c.rev_loss;
  EXPECT_EQ(flow.receiver().stats().goodput_bytes, 1'000'000u);
  EXPECT_EQ(flow.sender().stats().bytes_acked, 1'000'000u);
}

INSTANTIATE_TEST_SUITE_P(
    LossMatrix, TcpIntegrity,
    ::testing::Values(LossCase{1, 0.0, 0.0, true},
                      LossCase{2, 0.001, 0.0, true},
                      LossCase{3, 0.01, 0.0, true},
                      LossCase{4, 0.0, 0.01, true},
                      LossCase{5, 0.005, 0.005, true},
                      LossCase{6, 0.03, 0.01, true},
                      LossCase{7, 0.01, 0.0, false},
                      LossCase{8, 0.005, 0.005, false}));

// ---------- report transport delivery invariants ----------

// For random seeded fault schedules crossed with random report streams,
// the resilient transport must uphold:
//   1. no sequence number is archived twice (dedup works);
//   2. dropped + archived == emitted (exact conservation);
//   3. under a fault-free schedule, reports archive in emission order.
class TransportProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportProperty, ConservationAndUniquenessUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  sim::Simulation sim(seed);
  sim::Rng rng(seed * 7919 + 1);
  ps::Archiver archiver;
  ps::Logstash logstash(archiver);

  net::ReportChannel::Config cc;
  cc.latency = units::microseconds(100 + rng.next_below(2000));
  cc.max_chunk_bytes = 1 + rng.next_below(500);
  cc.send_buffer_bytes = 4096 + rng.next_below(64 * 1024);
  cc.seed = seed;
  net::ReportChannel channel(sim, cc);
  channel.set_receiver(
      [&logstash](std::string_view chunk) { logstash.tcp_input(chunk); });
  channel.on_disconnect([&logstash]() { logstash.tcp_reset(); });

  cp::ResilientReportSink::Config sc;
  sc.health_interval = 0;  // the archive holds only this test's stream
  sc.ack_timeout = units::milliseconds(20 + rng.next_below(100));
  sc.backoff.base = units::milliseconds(5);
  sc.backoff.max = units::milliseconds(250);
  sc.queue_capacity = 16 + rng.next_below(200);
  sc.seed = seed;
  cp::ResilientReportSink sink(sim, channel, sc);
  logstash.set_transport_ack(
      [&sink](std::uint64_t seq) { sink.on_ack(seq); });

  net::FaultInjector injector(sim, channel);
  net::FaultInjector::RandomProfile profile;
  profile.resets_per_second = rng.next_double() * 2.0;
  profile.stalls_per_second = rng.next_double() * 2.0;
  profile.until = units::seconds(8);  // leave time to drain
  profile.seed = seed;
  injector.enable_random(profile);
  injector.arm();

  // Random report stream: bursty arrivals with varying payload sizes.
  const int n_reports = 100 + static_cast<int>(rng.next_below(300));
  SimTime at = 0;
  for (int i = 0; i < n_reports; ++i) {
    at += rng.next_below(units::milliseconds(60));
    sim.at(at, [&sink, &rng, i]() {
      util::Json j = util::Json::object();
      j["report"] = "prop";
      j["ts_ns"] = i;
      j["pad"] = std::string(rng.next_below(200), 'p');
      sink.on_report(j);
    });
  }
  // Run far past the fault horizon and last emission so retries drain.
  sim.run_until(units::seconds(60));

  const auto docs = archiver.search("p4sonar-prop");
  std::set<std::int64_t> seqs;
  for (const auto& d : docs) {
    ASSERT_TRUE(d.contains("@xmit_seq"));
    EXPECT_TRUE(seqs.insert(d.at("@xmit_seq").as_int()).second)
        << "duplicate @xmit_seq " << d.at("@xmit_seq").as_int();
  }
  const auto& h = sink.health();
  EXPECT_EQ(h.emitted, static_cast<std::uint64_t>(n_reports));
  EXPECT_EQ(h.queued, 0u) << "transport failed to drain";
  EXPECT_EQ(h.dropped_overflow + docs.size(), h.emitted)
      << "conservation violated: dropped + archived != emitted";
  EXPECT_EQ(h.acked, docs.size());
}

TEST_P(TransportProperty, FaultFreeArchivesInEmissionOrder) {
  const std::uint64_t seed = GetParam();
  sim::Simulation sim(seed);
  sim::Rng rng(seed * 104729 + 3);
  ps::Archiver archiver;
  ps::Logstash logstash(archiver);
  net::ReportChannel::Config cc;
  cc.max_chunk_bytes = 1 + rng.next_below(64);  // brutal chunking, no faults
  cc.seed = seed;
  net::ReportChannel channel(sim, cc);
  channel.set_receiver(
      [&logstash](std::string_view chunk) { logstash.tcp_input(chunk); });
  cp::ResilientReportSink::Config sc;
  sc.health_interval = 0;
  cp::ResilientReportSink sink(sim, channel, sc);
  logstash.set_transport_ack(
      [&sink](std::uint64_t seq) { sink.on_ack(seq); });

  const int n_reports = 50 + static_cast<int>(rng.next_below(100));
  SimTime at = 0;
  for (int i = 0; i < n_reports; ++i) {
    at += rng.next_below(units::milliseconds(10));
    sim.at(at, [&sink, i]() {
      util::Json j = util::Json::object();
      j["report"] = "ordered";
      j["ts_ns"] = i;
      sink.on_report(j);
    });
  }
  sim.run_until(units::seconds(30));

  const auto docs = archiver.search("p4sonar-ordered");
  ASSERT_EQ(docs.size(), static_cast<std::size_t>(n_reports));
  std::int64_t prev = -1;
  for (const auto& d : docs) {
    const std::int64_t s = d.at("@xmit_seq").as_int();
    EXPECT_GT(s, prev) << "out of order on a fault-free wire";
    prev = s;
  }
  EXPECT_EQ(sink.health().retried, 0u);
  EXPECT_EQ(sink.health().dropped_overflow, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------- flow hash slot distribution ----------

TEST(HashDistribution, SlotsSpreadAcrossRegisterFile) {
  sim::Rng rng(1);
  std::array<int, 64> buckets{};
  for (int i = 0; i < 20000; ++i) {
    const net::FiveTuple t{
        static_cast<net::Ipv4Address>(rng.next_u64()),
        static_cast<net::Ipv4Address>(rng.next_u64()),
        static_cast<std::uint16_t>(rng.next_below(65536)),
        static_cast<std::uint16_t>(rng.next_below(65536)), 6};
    buckets[(p4::flow_hash(t) & 2047) % 64] += 1;
  }
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), 20000.0 / 64, 20000.0 / 64 * 0.3);
  }
}

}  // namespace
}  // namespace p4s
