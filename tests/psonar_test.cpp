// Unit and behaviour tests: perfSONAR emulation — archiver (OpenSearch-
// like queries/aggregations), Logstash pipeline (TCP input plugin,
// filters, Report_v2 metadata), pSConfig's config-P4 command (all of
// Figure 6), and pScheduler's active tests over the simulated topology.
#include <gtest/gtest.h>

#include "controlplane/control_plane.hpp"
#include "net/topology.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "psonar/node.hpp"
#include "psonar/psconfig.hpp"
#include "psonar/pscheduler.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s::ps {
namespace {

util::Json doc(const char* report, std::int64_t ts, double value) {
  util::Json j = util::Json::object();
  j["report"] = report;
  j["ts_ns"] = ts;
  j["value"] = value;
  return j;
}

// ---------- Archiver ----------

TEST(Archiver, IndexAndCount) {
  Archiver archiver;
  EXPECT_EQ(archiver.index("idx", doc("a", 1, 1.0)), 0u);
  EXPECT_EQ(archiver.index("idx", doc("a", 2, 2.0)), 1u);
  EXPECT_EQ(archiver.doc_count("idx"), 2u);
  EXPECT_EQ(archiver.doc_count("missing"), 0u);
  EXPECT_EQ(archiver.total_docs(), 2u);
  EXPECT_EQ(archiver.indices(), std::vector<std::string>{"idx"});
}

TEST(Archiver, TermQuery) {
  Archiver archiver;
  archiver.index("idx", doc("x", 1, 1.0));
  archiver.index("idx", doc("y", 2, 2.0));
  Archiver::Query q;
  q.terms["report"] = util::Json("x");
  const auto hits = archiver.search("idx", q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].at("ts_ns").as_int(), 1);
}

TEST(Archiver, DottedPathQuery) {
  Archiver archiver;
  util::Json nested = util::Json::object();
  nested["flow"] = util::JsonObject{{"dst_ip", util::Json("10.1.0.10")}};
  archiver.index("idx", nested);
  Archiver::Query q;
  q.terms["flow.dst_ip"] = util::Json("10.1.0.10");
  EXPECT_EQ(archiver.search("idx", q).size(), 1u);
  q.terms["flow.dst_ip"] = util::Json("10.2.0.10");
  EXPECT_TRUE(archiver.search("idx", q).empty());
}

TEST(Archiver, RangeQuery) {
  Archiver archiver;
  for (int i = 0; i < 10; ++i) archiver.index("idx", doc("a", i, i));
  Archiver::Query q;
  q.range_field = "ts_ns";
  q.range_min = 3;
  q.range_max = 6;
  EXPECT_EQ(archiver.search("idx", q).size(), 4u);
  // Range on a missing field matches nothing.
  q.range_field = "nope";
  EXPECT_TRUE(archiver.search("idx", q).empty());
}

TEST(Archiver, Aggregation) {
  Archiver archiver;
  for (double v : {1.0, 2.0, 3.0, 10.0}) {
    archiver.index("idx", doc("a", 0, v));
  }
  const auto agg = archiver.aggregate("idx", "value");
  EXPECT_EQ(agg.count, 4u);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 10.0);
  EXPECT_DOUBLE_EQ(agg.sum, 16.0);
  EXPECT_DOUBLE_EQ(agg.avg, 4.0);
}

TEST(Archiver, AggregationRespectsQuery) {
  Archiver archiver;
  archiver.index("idx", doc("x", 0, 5.0));
  archiver.index("idx", doc("y", 0, 100.0));
  Archiver::Query q;
  q.terms["report"] = util::Json("x");
  EXPECT_DOUBLE_EQ(archiver.aggregate("idx", "value", q).avg, 5.0);
}

TEST(Archiver, LimitAndNewestFirst) {
  Archiver archiver;
  for (int i = 0; i < 5; ++i) archiver.index("idx", doc("a", i, i));
  Archiver::Query q;
  q.limit = 2;
  auto hits = archiver.search("idx", q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].at("ts_ns").as_int(), 0);
  EXPECT_EQ(hits[1].at("ts_ns").as_int(), 1);
  // The latest-value idiom: size N sorted descending.
  q.newest_first = true;
  hits = archiver.search("idx", q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].at("ts_ns").as_int(), 4);
  EXPECT_EQ(hits[1].at("ts_ns").as_int(), 3);
}

TEST(Archiver, LimitCountsMatchesNotVisits) {
  Archiver archiver;
  archiver.index("idx", doc("x", 0, 0.0));
  archiver.index("idx", doc("y", 1, 1.0));
  archiver.index("idx", doc("x", 2, 2.0));
  archiver.index("idx", doc("x", 3, 3.0));
  Archiver::Query q;
  q.terms["report"] = util::Json("x");
  q.limit = 2;
  q.newest_first = true;
  const auto hits = archiver.search("idx", q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].at("ts_ns").as_int(), 3);
  EXPECT_EQ(hits[1].at("ts_ns").as_int(), 2);
}

TEST(Archiver, ForEachStopsWhenVisitorReturnsFalse) {
  Archiver archiver;
  for (int i = 0; i < 100; ++i) archiver.index("idx", doc("a", i, i));
  int visited = 0;
  archiver.for_each("idx", {},
                    [&](const util::Json&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(Archiver, AggregateOverLatestValueOnly) {
  Archiver archiver;
  for (double v : {1.0, 2.0, 9.0}) archiver.index("idx", doc("a", 0, v));
  Archiver::Query q;
  q.limit = 1;
  q.newest_first = true;
  const auto agg = archiver.aggregate("idx", "value", q);
  EXPECT_EQ(agg.count, 1u);
  EXPECT_DOUBLE_EQ(agg.avg, 9.0);
}

TEST(Archiver, FieldAtResolvesPaths) {
  util::Json nested = util::Json::object();
  nested["a"] = util::JsonObject{{"b", util::Json(7)}};
  EXPECT_EQ(Archiver::field_at(nested, "a.b")->as_int(), 7);
  EXPECT_FALSE(Archiver::field_at(nested, "a.c").has_value());
  EXPECT_FALSE(Archiver::field_at(nested, "a.b.c").has_value());
}

// ---------- Logstash ----------

TEST(Logstash, EventFlowsToIndexedArchive) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.event(doc("throughput", 42, 1e9));
  EXPECT_EQ(archiver.doc_count("p4sonar-throughput"), 1u);
  EXPECT_EQ(logstash.events_in(), 1u);
  EXPECT_EQ(logstash.events_out(), 1u);
}

TEST(Logstash, Report_v2MetadataAdded) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.event(doc("rtt", 123456, 1.0));
  const auto docs = archiver.search("p4sonar-rtt");
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].at("@timestamp").as_int(), 123456);
  EXPECT_EQ(docs[0].at("@seq").as_int(), 0);
  EXPECT_EQ(docs[0].at("@pipeline").as_string(), "p4sonar");
}

TEST(Logstash, ToolEventsUsePschedulerPrefix) {
  Archiver archiver;
  Logstash logstash(archiver);
  util::Json d = doc("throughput", 1, 1.0);
  d["tool"] = "iperf3";
  logstash.event(std::move(d));
  EXPECT_EQ(archiver.doc_count("pscheduler-throughput"), 1u);
}

TEST(Logstash, FiltersTransformInOrder) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.add_filter("tag", [](util::Json d) -> std::optional<util::Json> {
    d["tag"] = "first";
    return d;
  });
  logstash.add_filter("retag",
                      [](util::Json d) -> std::optional<util::Json> {
                        d["tag"] = d.at("tag").as_string() + "+second";
                        return d;
                      });
  logstash.event(doc("x", 1, 1.0));
  EXPECT_EQ(archiver.search("p4sonar-x")[0].at("tag").as_string(),
            "first+second");
}

TEST(Logstash, DropFilterDiscards) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.add_filter("drop",
                      [](util::Json d) -> std::optional<util::Json> {
                        if (d.at("report").as_string() == "noise") {
                          return std::nullopt;
                        }
                        return d;
                      });
  logstash.event(doc("noise", 1, 1.0));
  logstash.event(doc("signal", 2, 2.0));
  EXPECT_EQ(logstash.events_dropped(), 1u);
  EXPECT_EQ(archiver.total_docs(), 1u);
}

TEST(Logstash, TcpInputParsesJsonLines) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.tcp_input(
      "{\"report\":\"a\",\"ts_ns\":1}\n{\"report\":\"b\",\"ts_ns\":2}\n");
  EXPECT_EQ(archiver.doc_count("p4sonar-a"), 1u);
  EXPECT_EQ(archiver.doc_count("p4sonar-b"), 1u);
}

TEST(Logstash, TcpInputCountsParseFailures) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.tcp_input("this is not json\n{\"report\":\"ok\",\"ts_ns\":1}\n");
  EXPECT_EQ(logstash.parse_failures(), 1u);
  EXPECT_EQ(archiver.doc_count("p4sonar-ok"), 1u);
}

TEST(Logstash, TcpInputBuffersPartialLineAtEveryByteOffset) {
  // Regression: the seed parsed a trailing fragment immediately and
  // mis-counted it as a _jsonparsefailure. A Report_v1 line split at ANY
  // byte offset must still produce exactly one document.
  const util::Json report = doc("throughput", 123456789, 94.2);
  const std::string line = report.dump() + "\n";
  for (std::size_t i = 0; i <= line.size(); ++i) {
    Archiver archiver;
    Logstash logstash(archiver);
    logstash.tcp_input(std::string_view(line).substr(0, i));
    logstash.tcp_input(std::string_view(line).substr(i));
    EXPECT_EQ(archiver.doc_count("p4sonar-throughput"), 1u)
        << "split at byte " << i;
    EXPECT_EQ(logstash.parse_failures(), 0u) << "split at byte " << i;
    EXPECT_EQ(logstash.lines_in(), 1u) << "split at byte " << i;
    EXPECT_EQ(logstash.pending_partial_bytes(), 0u)
        << "split at byte " << i;
  }
}

TEST(Logstash, TcpInputReassemblesByteAtATime) {
  Archiver archiver;
  Logstash logstash(archiver);
  const std::string payload = doc("a", 1, 1.0).dump() + "\n" +
                              doc("b", 2, 2.0).dump() + "\n";
  for (char c : payload) logstash.tcp_input(std::string_view(&c, 1));
  EXPECT_EQ(archiver.doc_count("p4sonar-a"), 1u);
  EXPECT_EQ(archiver.doc_count("p4sonar-b"), 1u);
  EXPECT_EQ(logstash.parse_failures(), 0u);
  EXPECT_EQ(logstash.bytes_in(), payload.size());
  EXPECT_EQ(logstash.lines_in(), 2u);
  EXPECT_EQ(logstash.pending_partial_bytes(), 0u);
}

TEST(Logstash, TcpResetDiscardsPartialLine) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.tcp_input("{\"report\":\"half");  // fragment, then reset
  EXPECT_GT(logstash.pending_partial_bytes(), 0u);
  logstash.tcp_reset();
  EXPECT_EQ(logstash.pending_partial_bytes(), 0u);
  EXPECT_EQ(logstash.tcp_resets(), 1u);
  // The new connection retransmits the whole line; no corruption.
  logstash.tcp_input("{\"report\":\"half\",\"ts_ns\":1}\n");
  EXPECT_EQ(archiver.doc_count("p4sonar-half"), 1u);
  EXPECT_EQ(logstash.parse_failures(), 0u);
}

TEST(Logstash, DedupsByXmitSeqAndAcksEveryOccurrence) {
  Archiver archiver;
  Logstash logstash(archiver);
  std::vector<std::uint64_t> acks;
  logstash.set_transport_ack([&](std::uint64_t seq) { acks.push_back(seq); });
  util::Json framed = doc("throughput", 1, 5.0);
  framed["@xmit_seq"] = 7;
  const std::string line = framed.dump() + "\n";
  logstash.tcp_input(line);
  logstash.tcp_input(line);  // at-least-once duplicate
  logstash.tcp_input(line);
  EXPECT_EQ(archiver.doc_count("p4sonar-throughput"), 1u);
  EXPECT_EQ(logstash.duplicates_dropped(), 2u);
  // Every occurrence is acked, duplicates included, so the sender can
  // retire the frame even when the first ack's ship was the duplicate.
  EXPECT_EQ(acks, (std::vector<std::uint64_t>{7, 7, 7}));
}

TEST(Logstash, CountersConserveEndToEnd) {
  Archiver archiver;
  Logstash logstash(archiver);
  logstash.add_filter("drop-rtt", [](util::Json d) -> std::optional<util::Json> {
    if (d.at("report").as_string() == "rtt") return std::nullopt;
    return d;
  });
  util::Json dup = doc("throughput", 1, 1.0);
  dup["@xmit_seq"] = 0;
  const std::string dup_line = dup.dump() + "\n";
  std::string payload;
  payload += doc("throughput", 2, 2.0).dump() + "\n";  // archived
  payload += "garbage line\n";                          // parse failure
  payload += dup_line;                                  // archived
  payload += dup_line;                                  // duplicate
  payload += doc("rtt", 3, 3.0).dump() + "\n";          // filter-dropped
  logstash.tcp_input(payload);
  logstash.event(doc("loss", 4, 4.0));  // direct Tools-layer entry

  EXPECT_EQ(logstash.bytes_in(), payload.size());
  EXPECT_EQ(logstash.lines_in(), 5u);
  EXPECT_EQ(logstash.parse_failures(), 1u);
  // lines_in == parse_failures + tcp events; +1 direct event.
  EXPECT_EQ(logstash.events_in(), logstash.lines_in() -
                                      logstash.parse_failures() + 1);
  // events_in == duplicates + filter-dropped + archived.
  EXPECT_EQ(logstash.events_in(), logstash.duplicates_dropped() +
                                      logstash.events_dropped() +
                                      logstash.events_out());
  EXPECT_EQ(logstash.duplicates_dropped(), 1u);
  EXPECT_EQ(logstash.events_dropped(), 1u);
  EXPECT_EQ(logstash.events_out(), archiver.total_docs());
  EXPECT_EQ(archiver.total_docs(), 3u);
}

TEST(LogstashTcpSink, BridgesReportSink) {
  Archiver archiver;
  Logstash logstash(archiver);
  LogstashTcpSink sink(logstash);
  sink.on_report(doc("throughput", 9, 5.0));
  EXPECT_EQ(archiver.doc_count("p4sonar-throughput"), 1u);
}

// ---------- PsConfig / config-P4 ----------

struct PsConfigFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  cp::ControlPlaneConfig cp_config;
  cp::ControlPlane control{sim, program, cp_config};
  PsConfig psconfig{control};
};

TEST_F(PsConfigFixture, Figure6Line1SetsThroughputRate) {
  const auto result = psconfig.execute(
      "psconfig config-P4 --metric throughput --samples_per_second 1");
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_EQ(control.metric_config(cp::MetricKind::kThroughput).interval,
            units::seconds(1));
}

TEST_F(PsConfigFixture, Figure6Line2SetsRttRate) {
  const auto result = psconfig.execute(
      "psconfig config-P4 --metric RTT --samples_per_second 2");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(control.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(500));
}

TEST_F(PsConfigFixture, Figure6Line3ConfiguresAlertAndBoost) {
  const auto result = psconfig.execute(
      "psconfig config-P4 --metric queue_occupancy --alert --threshold 30 "
      "--samples_per_second 10");
  EXPECT_TRUE(result.ok);
  const auto& mc = control.metric_config(cp::MetricKind::kQueueOccupancy);
  EXPECT_TRUE(mc.alert_enabled);
  EXPECT_DOUBLE_EQ(mc.alert_threshold, 30.0);
  EXPECT_EQ(mc.boosted_interval, units::milliseconds(100));
}

TEST_F(PsConfigFixture, NoMetricAppliesToAll) {
  ASSERT_TRUE(
      psconfig.execute("psconfig config-P4 --samples_per_second 4").ok);
  for (std::size_t i = 0; i < cp::kMetricCount; ++i) {
    EXPECT_EQ(
        control.metric_config(static_cast<cp::MetricKind>(i)).interval,
        units::milliseconds(250));
  }
}

TEST_F(PsConfigFixture, RejectsMalformedCommands) {
  EXPECT_FALSE(psconfig.execute("").ok);
  EXPECT_FALSE(psconfig.execute("psconfig").ok);
  EXPECT_FALSE(psconfig.execute("notpsconfig config-P4").ok);
  EXPECT_FALSE(psconfig.execute("psconfig unknown-command").ok);
  EXPECT_FALSE(psconfig.execute("psconfig config-P4").ok);  // nothing to do
  EXPECT_FALSE(psconfig.execute("psconfig config-P4 --metric bogus "
                                "--samples_per_second 1")
                   .ok);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --samples_per_second").ok);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --samples_per_second zero").ok);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --samples_per_second -3").ok);
  // std::from_chars accepts "nan"/"inf", so they need explicit rejection.
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --samples_per_second nan").ok);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --samples_per_second inf").ok);
  EXPECT_FALSE(psconfig
                   .execute("psconfig config-P4 --alert --threshold nan "
                            "--samples_per_second 1")
                   .ok);
  EXPECT_FALSE(psconfig
                   .execute("psconfig config-P4 --alert --threshold -1 "
                            "--samples_per_second 1")
                   .ok);
  EXPECT_FALSE(psconfig.execute("psconfig config-P4 --alert").ok);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --metric rtt --frobnicate 1").ok);
}

// ---------- config-P4 over a multi-switch fabric ----------

struct PsConfigFabricFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program_a;
  telemetry::DataPlaneProgram program_b;
  cp::ControlPlaneConfig cp_config;
  cp::ControlPlane site_a{sim, program_a, cp_config};
  cp::ControlPlane site_b{sim, program_b, cp_config};
  PsConfig psconfig;

  void SetUp() override {
    psconfig.add_control_plane(site_a, "site-a");
    psconfig.add_control_plane(site_b, "site-b");
  }
};

TEST_F(PsConfigFabricFixture, DefaultTargetsEverySwitch) {
  ASSERT_TRUE(psconfig
                  .execute("psconfig config-P4 --metric rtt "
                           "--samples_per_second 4")
                  .ok);
  EXPECT_EQ(site_a.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(250));
  EXPECT_EQ(site_b.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(250));
}

TEST_F(PsConfigFabricFixture, SwitchFlagTargetsOneSiteById) {
  ASSERT_TRUE(psconfig
                  .execute("psconfig config-P4 --switch site-b --metric rtt "
                           "--samples_per_second 8")
                  .ok);
  EXPECT_NE(site_a.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(125));
  EXPECT_EQ(site_b.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(125));
}

TEST_F(PsConfigFabricFixture, SwitchFlagAcceptsZeroBasedIndex) {
  ASSERT_TRUE(psconfig
                  .execute("psconfig config-P4 --switch 0 --metric rtt "
                           "--samples_per_second 8")
                  .ok);
  EXPECT_EQ(site_a.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(125));
  EXPECT_NE(site_b.metric_config(cp::MetricKind::kRtt).interval,
            units::milliseconds(125));
}

TEST_F(PsConfigFabricFixture, UnknownSwitchFails) {
  const auto result = psconfig.execute(
      "psconfig config-P4 --switch nowhere --samples_per_second 1");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("unknown switch"), std::string::npos);
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --switch --samples_per_second 1")
          .ok);
}

TEST_F(PsConfigFixture, HistoryRecordsSuccessesOnly) {
  psconfig.execute("psconfig config-P4 --samples_per_second 1");
  psconfig.execute("psconfig config-P4 --bogus");
  ASSERT_EQ(psconfig.history().size(), 1u);
  EXPECT_NE(psconfig.history()[0].find("--samples_per_second"),
            std::string::npos);
}

TEST(PsConfig, UnattachedFailsGracefully) {
  PsConfig psconfig;
  const auto result =
      psconfig.execute("psconfig config-P4 --samples_per_second 1");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("control plane"), std::string::npos);
}

// ---------- PScheduler over the topology ----------

struct SchedulerFixture : ::testing::Test {
  sim::Simulation sim{11};
  net::Network network{sim};
  net::PaperTopology topo;
  Archiver archiver;
  Logstash logstash{archiver};
  PScheduler scheduler{sim, logstash};

  void SetUp() override {
    net::PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(200);
    topo = net::make_paper_topology(network, config);
  }
};

TEST_F(SchedulerFixture, ThroughputTestReportsAverageOnly) {
  PScheduler::ThroughputTask task;
  task.start = units::seconds(1);
  task.duration = units::seconds(5);
  scheduler.schedule_throughput(*topo.psonar_internal, *topo.psonar_ext[0],
                                task);
  sim.run_until(units::seconds(12));
  ASSERT_EQ(scheduler.throughput_results().size(), 1u);
  const auto& r = scheduler.throughput_results()[0];
  EXPECT_GT(r.avg_throughput_bps, 20e6);  // used a 200 Mbps path
  EXPECT_EQ(r.src, "psonar-internal");
  EXPECT_EQ(r.dst, "psonar-ext1");
  // Archived as a single aggregated value (the §2.3 limitation).
  const auto docs = archiver.search("pscheduler-throughput");
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_TRUE(docs[0].contains("throughput_bps"));
  EXPECT_FALSE(docs[0].contains("samples"));
}

TEST_F(SchedulerFixture, LatencyTestReportsMinMeanMax) {
  PScheduler::LatencyTask task;
  task.start = units::seconds(1);
  task.count = 5;
  scheduler.schedule_latency(*topo.psonar_internal, *topo.psonar_ext[2],
                             task);
  sim.run_until(units::seconds(10));
  ASSERT_EQ(scheduler.latency_results().size(), 1u);
  const auto& r = scheduler.latency_results()[0];
  EXPECT_EQ(r.sent, 5);
  EXPECT_EQ(r.received, 5);
  // Base RTT to ext3 is 100 ms.
  EXPECT_NEAR(r.min_rtt_ms, 100.0, 1.0);
  EXPECT_NEAR(r.mean_rtt_ms, 100.0, 1.0);
  EXPECT_GE(r.max_rtt_ms, r.min_rtt_ms);
  EXPECT_EQ(archiver.doc_count("pscheduler-latency"), 1u);
}

TEST_F(SchedulerFixture, RepeatingTestRunsMultipleTimes) {
  PScheduler::LatencyTask task;
  task.start = units::seconds(1);
  task.count = 2;
  task.spacing = units::milliseconds(50);
  task.timeout = units::milliseconds(500);
  task.repeat_interval = units::seconds(3);
  scheduler.schedule_latency(*topo.psonar_internal, *topo.psonar_ext[0],
                             task);
  sim.run_until(units::seconds(10));
  EXPECT_GE(scheduler.latency_results().size(), 3u);
}

TEST(PerfSonarNode, BundlesComponents) {
  sim::Simulation sim;
  net::Host host(sim, "ps", net::ipv4(10, 0, 0, 20));
  PerfSonarNode node(sim, host);
  EXPECT_EQ(&node.host(), &host);
  // The TCP sink feeds the node's own Logstash -> archiver.
  util::Json j = util::Json::object();
  j["report"] = "throughput";
  j["ts_ns"] = 1;
  node.report_sink().on_report(j);
  EXPECT_EQ(node.archiver().doc_count("p4sonar-throughput"), 1u);
}

}  // namespace
}  // namespace p4s::ps
