// Encrypted-traffic telemetry: the spin-bit RTT engine's edge detection
// and rejection heuristics on synthetic QUIC streams (reordering across
// an edge, loss of the toggling packet, DCID collisions), the NIDS
// feature engine's per-flow features and threshold classifier, and the
// end-to-end acceptance runs — spin RTT vs ground truth under 1% loss,
// SYN-flood/port-scan alerts in the archive, a quiet elephant/mice
// baseline, and a parallel=4 byte-identity pin with both engines on.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "mpl/compiler.hpp"
#include "p4/p4_switch.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s {
namespace {

using units::milliseconds;
using units::seconds;

// ---------------------------------------------------------------------
// Synthetic-stream engine tests: QUIC short headers straight through the
// P4 switch into the composed program.
// ---------------------------------------------------------------------

struct SpinFixture : ::testing::Test {
  sim::Simulation sim{7};
  telemetry::DataPlaneProgram::Config config;
  std::unique_ptr<telemetry::DataPlaneProgram> program;
  std::unique_ptr<p4::P4Switch> sw;

  const net::Ipv4Address client = net::ipv4(10, 0, 0, 10);
  const net::Ipv4Address server = net::ipv4(10, 1, 0, 10);

  void SetUp() override {
    config.spin_rtt.emplace();
    program = std::make_unique<telemetry::DataPlaneProgram>(config);
    sw = std::make_unique<p4::P4Switch>(sim, "dut");
    sw->load_program(*program);
  }

  telemetry::SpinRttEngine& engine() { return *program->spin_rtt_engine(); }

  void feed_short(SimTime at, std::uint64_t dcid, std::uint32_t pn,
                  bool spin,
                  net::MirrorPoint point = net::MirrorPoint::kIngress) {
    sim.run_until(at);
    net::QuicHeader hdr;
    hdr.long_form = false;
    hdr.spin = spin;
    hdr.dcid = dcid;
    hdr.packet_number = pn;
    sw->on_mirrored(
        net::make_quic_packet(client, server, 40000, 4433, hdr, 1200),
        point);
  }
};

TEST_F(SpinFixture, MeasuresRttFromEdgeToEdgeGaps) {
  // One toggle per 20 ms "RTT", pn strictly advancing.
  const std::uint64_t dcid = 0xABCDEF0011223344ULL;
  bool spin = false;
  std::uint32_t pn = 1;
  for (int edge = 0; edge < 12; ++edge) {
    feed_short(milliseconds(10 + 20 * edge), dcid, pn++, spin);
    spin = !spin;
  }
  // First packet seeds the entry; 11 spin changes follow; the first edge
  // has no predecessor, so 10 gaps are sampled.
  EXPECT_EQ(engine().edges(), 11u);
  EXPECT_EQ(engine().samples(), 10u);
  const double p50 = engine().quantile_ns(0.5);
  EXPECT_NEAR(p50, static_cast<double>(milliseconds(20)),
              0.05 * static_cast<double>(milliseconds(20)));
  EXPECT_EQ(engine().rejected_reordered(), 0u);
  EXPECT_EQ(engine().rejected_outlier(), 0u);
}

TEST_F(SpinFixture, RejectsReorderedPacketAcrossAnEdge) {
  const std::uint64_t dcid = 0xABCDEF0011223344ULL;
  feed_short(milliseconds(10), dcid, 1, false);
  feed_short(milliseconds(30), dcid, 2, true);   // edge 1
  feed_short(milliseconds(50), dcid, 4, false);  // edge 2 -> sample 20 ms
  ASSERT_EQ(engine().samples(), 1u);
  // pn 3 straggles in from before edge 2, still carrying the old spin:
  // accepting it would fake a sub-millisecond extra edge.
  feed_short(milliseconds(51), dcid, 3, true);
  EXPECT_EQ(engine().rejected_reordered(), 1u);
  EXPECT_EQ(engine().edges(), 2u);
  EXPECT_EQ(engine().samples(), 1u);
  // The genuine next edge still measures cleanly.
  feed_short(milliseconds(70), dcid, 5, true);
  EXPECT_EQ(engine().samples(), 2u);
}

TEST_F(SpinFixture, RejectsDoubledGapWhenTogglingPacketIsLost) {
  const std::uint64_t dcid = 0x1122334455667788ULL;
  bool spin = false;
  std::uint32_t pn = 1;
  // Six clean 20 ms edges to settle the EWMA near 20 ms.
  for (int edge = 0; edge < 7; ++edge) {
    feed_short(milliseconds(10 + 20 * edge), dcid, pn++, spin);
    spin = !spin;
  }
  const std::uint64_t before = engine().samples();
  // The toggling packet is lost: the next observed edge lands a full
  // extra round trip late (70 ms gap > 3 x 20 ms EWMA).
  feed_short(milliseconds(10 + 20 * 6 + 70), dcid, pn++, spin);
  EXPECT_EQ(engine().rejected_outlier(), 1u);
  EXPECT_EQ(engine().samples(), before);
  // Recovery: subsequent 20 ms edges sample again (EWMA was untouched).
  spin = !spin;
  feed_short(milliseconds(10 + 20 * 6 + 90), dcid, pn++, spin);
  EXPECT_EQ(engine().samples(), before + 1);
}

TEST_F(SpinFixture, SubFloorGapIsRejected) {
  const std::uint64_t dcid = 0x99AA;
  feed_short(milliseconds(10), dcid, 1, false);
  feed_short(milliseconds(30), dcid, 2, true);
  // An "edge" 10 us later (below the 50 us floor) is reordering noise
  // the pn gate could not catch (pn advanced).
  feed_short(milliseconds(30) + units::microseconds(10), dcid, 3, false);
  EXPECT_EQ(engine().rejected_floor(), 1u);
  EXPECT_EQ(engine().samples(), 0u);
}

TEST_F(SpinFixture, IgnoresEgressCopiesAndLongHeaders) {
  const std::uint64_t dcid = 0xF00D;
  feed_short(milliseconds(10), dcid, 1, false);
  feed_short(milliseconds(30), dcid, 2, true);
  feed_short(milliseconds(30), dcid, 2, true, net::MirrorPoint::kEgress);
  EXPECT_EQ(engine().edges(), 1u);
  // A long header carries no spin bit.
  sim.run_until(milliseconds(40));
  net::QuicHeader hdr;
  hdr.long_form = true;
  hdr.dcid = dcid;
  hdr.scid = 0xBEEF;
  hdr.packet_number = 3;
  sw->on_mirrored(
      net::make_quic_packet(client, server, 40000, 4433, hdr, 1200),
      net::MirrorPoint::kIngress);
  EXPECT_EQ(engine().edges(), 1u);
}

TEST_F(SpinFixture, DcidCollisionEvictsAndIsCounted) {
  // A one-slot table makes every distinct DCID collide.
  config.spin_rtt->slots = 1;
  program = std::make_unique<telemetry::DataPlaneProgram>(config);
  sw = std::make_unique<p4::P4Switch>(sim, "dut2");
  sw->load_program(*program);

  const std::uint64_t a = 0xAAAA, b = 0xBBBB;
  feed_short(milliseconds(10), a, 1, false);
  feed_short(milliseconds(20), b, 1, true);  // evicts a
  EXPECT_EQ(engine().collisions(), 1u);
  feed_short(milliseconds(30), a, 2, true);  // evicts b
  EXPECT_EQ(engine().collisions(), 2u);
  // No cross-flow edge was ever credited: each arrival reset the slot.
  EXPECT_EQ(engine().edges(), 0u);
  EXPECT_EQ(engine().samples(), 0u);
}

// ---------------------------------------------------------------------
// NIDS feature engine on synthetic TCP streams.
// ---------------------------------------------------------------------

struct NidsFixture : ::testing::Test {
  sim::Simulation sim{7};
  telemetry::DataPlaneProgram::Config config;
  std::unique_ptr<telemetry::DataPlaneProgram> program;
  std::unique_ptr<p4::P4Switch> sw;

  void SetUp() override {
    config.nids.emplace();
    config.nids->syn_flood_syns = 50;
    config.nids->port_scan_ports = 10;
    config.nids->window = 0;  // every drain closes a window
    program = std::make_unique<telemetry::DataPlaneProgram>(config);
    sw = std::make_unique<p4::P4Switch>(sim, "dut");
    sw->load_program(*program);
    sim.run_until(milliseconds(1));
  }

  telemetry::NidsFeatureEngine& engine() { return *program->nids_engine(); }

  void feed_tcp(net::Ipv4Address src, net::Ipv4Address dst,
                std::uint16_t sport, std::uint16_t dport,
                std::uint8_t flags, std::uint32_t payload = 0) {
    sw->on_mirrored(net::make_tcp_packet(src, dst, sport, dport, 1, 0,
                                         flags, payload, 1 << 16),
                    net::MirrorPoint::kIngress);
  }

  static const util::Json* find_alert(const std::vector<util::Json>& docs,
                                      const std::string& kind) {
    for (const auto& d : docs) {
      if (d.at("report").as_string() == "nids_alert" &&
          d.at("alert").as_string() == kind) {
        return &d;
      }
    }
    return nullptr;
  }
};

TEST_F(NidsFixture, SynFloodRaisesTaggedAlert) {
  const net::Ipv4Address victim = net::ipv4(10, 0, 0, 10);
  for (std::uint32_t i = 0; i < 60; ++i) {
    // Spoofed flood: rotating sources, no SYN-ACKs ever come back.
    feed_tcp(net::ipv4(172, 16, 0, 1) + i, victim,
             static_cast<std::uint16_t>(1024 + i), 443,
             net::tcpflags::kSyn);
  }
  const auto docs = engine().drain_digests(sim.now());
  const util::Json* alert = find_alert(docs, "syn_flood");
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->at("victim").as_string(), net::to_string(victim));
  EXPECT_EQ(alert->at("syns").as_int(), 60);
  EXPECT_EQ(engine().alerts_emitted(), 1u);
  // The window resets: a quiet next window raises nothing.
  const auto next = engine().drain_digests(sim.now());
  EXPECT_EQ(find_alert(next, "syn_flood"), nullptr);
}

TEST_F(NidsFixture, PortScanRaisesTaggedAlert) {
  const net::Ipv4Address attacker = net::ipv4(10, 2, 0, 10);
  const net::Ipv4Address victim = net::ipv4(10, 0, 0, 10);
  for (std::uint16_t p = 0; p < 15; ++p) {
    feed_tcp(attacker, victim, 40000, static_cast<std::uint16_t>(80 + p),
             net::tcpflags::kSyn);
  }
  const auto docs = engine().drain_digests(sim.now());
  const util::Json* alert = find_alert(docs, "port_scan");
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->at("attacker").as_string(), net::to_string(attacker));
  EXPECT_EQ(alert->at("victim").as_string(), net::to_string(victim));
  EXPECT_GE(alert->at("distinct_ports").as_int(), 10);
}

TEST_F(NidsFixture, BenignHandshakeProducesFeaturesButNoAlert) {
  const net::Ipv4Address a = net::ipv4(10, 0, 0, 10);
  const net::Ipv4Address b = net::ipv4(10, 1, 0, 10);
  feed_tcp(a, b, 40000, 5201, net::tcpflags::kSyn);
  sim.run_until(sim.now() + milliseconds(10));
  feed_tcp(b, a, 5201, 40000,
           net::tcpflags::kSyn | net::tcpflags::kAck);
  sim.run_until(sim.now() + milliseconds(10));
  for (int i = 0; i < 5; ++i) {
    feed_tcp(a, b, 40000, 5201, net::tcpflags::kAck, 1460);
    sim.run_until(sim.now() + milliseconds(10));
  }
  const auto docs = engine().drain_digests(sim.now());
  ASSERT_EQ(docs.size(), 1u);  // one flow document, zero alerts
  const util::Json& d = docs[0];
  EXPECT_EQ(d.at("report").as_string(), "nids_features");
  EXPECT_EQ(d.at("syn").as_int(), 1);
  EXPECT_EQ(d.at("synack").as_int(), 1);
  EXPECT_EQ(d.at("fwd_pkts").as_int() + d.at("rev_pkts").as_int(), 7);
  EXPECT_NEAR(d.at("iat_mean_us").as_double(), 10'000.0, 500.0);
  EXPECT_GT(d.at("duration_ns").as_int(), 0);
  EXPECT_EQ(engine().alerts_emitted(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end acceptance runs on the full monitoring system.
// ---------------------------------------------------------------------

TEST(SpinRttSystem, TracksGroundTruthWithinTenPercentUnderLoss) {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(200);
  config.program.spin_rtt.emplace();
  config.seed = 42;
  core::MonitoringSystem system(config);
  // 1% loss downstream of the observation point: lost toggles show up
  // as doubled gaps the outlier heuristic must reject.
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.01);
  system.start();
  auto& flow = system.add_quic_transfer(0);
  flow.start_at(seconds(1));
  flow.stop_at(seconds(10));
  system.run_until(seconds(12));

  const telemetry::SpinRttEngine* engine =
      system.program().spin_rtt_engine();
  ASSERT_NE(engine, nullptr);
  ASSERT_GT(engine->samples(), 20u);
  const double median = engine->quantile_ns(0.5);
  const double truth =
      static_cast<double>(flow.sender().rtt().srtt());
  ASSERT_GT(truth, 0.0);
  EXPECT_LE(std::abs(median - truth), 0.10 * truth)
      << "spin median " << median / 1e6 << " ms vs ground truth "
      << truth / 1e6 << " ms";
}

TEST(NidsSystem, SynFloodWorkloadLandsTaggedAlertInArchive) {
  core::MonitoringSystemConfig config;
  config.seed = 42;
  config.program.nids.emplace();
  config.program.nids->syn_flood_syns = 100;
  workload::WorkloadSpec flood;
  flood.kind = workload::WorkloadSpec::Kind::kSynFlood;
  flood.src = "ext0";
  flood.dst = "dtn_int";
  flood.start = seconds(1);
  flood.duration = seconds(3);
  flood.pps = 2000.0;
  config.workloads.push_back(flood);
  core::MonitoringSystem system(config);
  system.start();
  system.run_until(seconds(5));

  EXPECT_GT(system.workloads().at(0)->packets_sent(), 1000u);
  const auto alerts =
      system.psonar().archiver().search("p4sonar-nids_alert");
  ASSERT_FALSE(alerts.empty());
  bool tagged = false;
  for (const auto& a : alerts) {
    if (a.at("alert").as_string() == "syn_flood") tagged = true;
  }
  EXPECT_TRUE(tagged);
}

TEST(NidsSystem, PortScanWorkloadLandsTaggedAlertInArchive) {
  core::MonitoringSystemConfig config;
  config.seed = 42;
  config.program.nids.emplace();
  workload::WorkloadSpec scan;
  scan.kind = workload::WorkloadSpec::Kind::kPortScan;
  scan.src = "ext1";
  scan.dst = "dtn_int";
  scan.start = seconds(1);
  scan.pps = 500.0;
  scan.port = 1;
  scan.port_count = 200;
  config.workloads.push_back(scan);
  core::MonitoringSystem system(config);
  system.start();
  system.run_until(seconds(4));

  const auto alerts =
      system.psonar().archiver().search("p4sonar-nids_alert");
  ASSERT_FALSE(alerts.empty());
  bool tagged = false;
  for (const auto& a : alerts) {
    if (a.at("alert").as_string() == "port_scan") tagged = true;
  }
  EXPECT_TRUE(tagged);
}

TEST(NidsSystem, ElephantMiceBaselineRaisesNoAlerts) {
  core::MonitoringSystemConfig config;
  config.seed = 42;
  config.program.nids.emplace();
  workload::WorkloadSpec mix;
  mix.kind = workload::WorkloadSpec::Kind::kElephantMice;
  mix.src = "ext0";
  mix.dst = "dtn_int";
  mix.start = seconds(1);
  mix.duration = seconds(5);
  config.workloads.push_back(mix);
  core::MonitoringSystem system(config);
  system.start();
  system.run_until(seconds(8));

  // Benign bulk + short flows: features flow into the archive, alerts
  // do not.
  EXPECT_GT(
      system.psonar().archiver().doc_count("p4sonar-nids_features"), 0u);
  EXPECT_EQ(system.psonar().archiver().doc_count("p4sonar-nids_alert"),
            0u);
  ASSERT_NE(system.program().nids_engine(), nullptr);
  EXPECT_EQ(system.program().nids_engine()->alerts_emitted(), 0u);
}

// ---------------------------------------------------------------------
// Parallel byte-identity pin: the new engines' report series must be
// byte-identical between serial and parallel=4 sharded execution.
// ---------------------------------------------------------------------

std::vector<std::string> run_quic_scenario(std::size_t parallel) {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(50);
  config.seed = 42;
  config.parallel = parallel;
  config.program.spin_rtt.emplace();
  config.program.nids.emplace();
  config.program.nids->syn_flood_syns = 100;
  config.switches.clear();
  core::MonitoredSwitchConfig core_sw;
  core_sw.id = "core";
  core_sw.tap = core::TapPoint::kCoreBottleneck;
  config.switches.push_back(core_sw);
  core::MonitoredSwitchConfig ext_sw;
  ext_sw.id = "ext0";
  ext_sw.tap = core::TapPoint::kWanExt0;
  config.switches.push_back(ext_sw);
  workload::WorkloadSpec flood;
  flood.kind = workload::WorkloadSpec::Kind::kSynFlood;
  flood.src = "ext1";
  flood.dst = "dtn_int";
  flood.start = seconds(2);
  flood.duration = seconds(2);
  flood.pps = 1000.0;
  config.workloads.push_back(flood);

  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  auto& q = system.add_quic_transfer(0);
  q.start_at(seconds(1));
  q.stop_at(seconds(5));
  system.add_transfer(1).start_at(seconds(1));
  system.run_until(seconds(6));

  std::vector<std::string> lines;
  auto& archiver = system.psonar().archiver();
  for (const auto& index : archiver.indices()) {
    for (const auto& doc : archiver.search(index)) {
      lines.push_back(doc.dump());
    }
  }
  return lines;
}

// The shipped example program: QUIC fields reach interpreted programs
// through the same FieldView table the built-in engines read.
TEST(MplQuic, ShippedSpinRttProgramCountsShortHeaders) {
  const std::string file =
      std::string(P4S_EXAMPLES_DIR) + "/programs/spin_rtt.mpl.json";
  std::ifstream in(file);
  ASSERT_TRUE(in.good()) << "cannot open " << file;
  std::ostringstream text;
  text << in.rdbuf();

  core::MonitoringSystemConfig config;
  config.seed = 42;
  config.topology.bottleneck_bps = units::mbps(200);
  config.programs.push_back(mpl::compile_program_text(text.str(), file));
  core::MonitoringSystem system(config);
  system.start();
  auto& flow = system.add_quic_transfer(0);
  flow.start_at(seconds(1));
  flow.stop_at(seconds(3));
  system.run_until(seconds(5));

  ASSERT_NE(system.monitored_switch(0).program_vm().find("spin_rtt"),
            nullptr);
  EXPECT_TRUE(system.monitored_switch(0).control_plane().has_extractor(
      "vm_quic_short_packets"));
  // The match predicate (is_quic && !long_header) saw the transfer's
  // short-header packets and counted them into register 0.
  const auto docs = system.psonar().archiver().search(
      "p4sonar-vm_quic_short_packets");
  ASSERT_FALSE(docs.empty());
  double last = 0.0;
  for (const auto& d : docs) {
    last = std::max(last, d.at("quic_short_pkts").as_double());
  }
  EXPECT_GT(last, 1000.0);
}

TEST(ParallelIdentity, QuicAndNidsEnginesAreByteIdenticalAtParallel4) {
  const auto serial = run_quic_scenario(1);
  ASSERT_FALSE(serial.empty());
  const auto parallel = run_quic_scenario(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "archived doc " << i;
  }
}

}  // namespace
}  // namespace p4s
