// Tests: Figure-8 topology construction — addressing, routing, RTT
// calibration (verified with real ICMP echoes through the built network)
// and buffer defaults.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {
namespace {

struct TopologyFixture : ::testing::Test {
  sim::Simulation sim;
  Network network{sim};
  PaperTopology topo;

  void SetUp() override {
    PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(500);
    topo = make_paper_topology(network, config);
  }

  /// Measure ping RTT between two hosts using the kernel echo responder.
  SimTime ping(Host& from, Host& to) {
    SimTime rtt = 0;
    SimTime sent = 0;
    from.bind(Protocol::kIcmp, 99, [&](const Packet&) {
      rtt = sim.now() - sent;
    });
    sim.after(0, [&]() {
      sent = sim.now();
      from.send(make_icmp_packet(from.ip(), to.ip(), 8, 99, 0, 56));
    });
    sim.run();
    from.unbind(Protocol::kIcmp, 99);
    return rtt;
  }
};

TEST_F(TopologyFixture, AllHostsPresent) {
  EXPECT_EQ(topo.dtn_internal->ip(), addrs::kDtnInternal);
  EXPECT_EQ(topo.psonar_internal->ip(), addrs::kPsonarInternal);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(topo.dtn_ext[static_cast<std::size_t>(i)]->ip(),
              addrs::kDtnExt[static_cast<std::size_t>(i)]);
    EXPECT_EQ(topo.psonar_ext[static_cast<std::size_t>(i)]->ip(),
              addrs::kPsonarExt[static_cast<std::size_t>(i)]);
  }
}

TEST_F(TopologyFixture, RttMatchesConfiguredValues) {
  // Paper §5.1: RTTs 50 / 75 / 100 ms between the internal DTN and the
  // three external DTNs. Echo payload serialization adds microseconds.
  const SimTime targets[3] = {units::milliseconds(50),
                              units::milliseconds(75),
                              units::milliseconds(100)};
  for (int i = 0; i < 3; ++i) {
    const SimTime rtt =
        ping(*topo.dtn_internal, *topo.dtn_ext[static_cast<std::size_t>(i)]);
    EXPECT_GT(rtt, 0u);
    EXPECT_NEAR(static_cast<double>(rtt),
                static_cast<double>(targets[i]),
                static_cast<double>(units::microseconds(100)))
        << "external network " << i;
  }
}

TEST_F(TopologyFixture, PsonarNodesReachable) {
  const SimTime rtt = ping(*topo.psonar_internal, *topo.psonar_ext[0]);
  EXPECT_NEAR(static_cast<double>(rtt),
              static_cast<double>(units::milliseconds(50)),
              static_cast<double>(units::microseconds(100)));
}

TEST_F(TopologyFixture, ReverseDirectionWorks) {
  const SimTime rtt = ping(*topo.dtn_ext[2], *topo.dtn_internal);
  EXPECT_NEAR(static_cast<double>(rtt),
              static_cast<double>(units::milliseconds(100)),
              static_cast<double>(units::microseconds(100)));
}

TEST_F(TopologyFixture, BottleneckBufferDefaultsToBdpAtMaxRtt) {
  EXPECT_EQ(topo.bottleneck_port->queue().capacity_bytes(),
            units::bdp_bytes(units::mbps(500), units::milliseconds(100)));
}

TEST_F(TopologyFixture, ExtLinksExposedForImpairment) {
  for (const auto& duplex : topo.ext_dtn_links) {
    EXPECT_NE(duplex.forward_link, nullptr);
    EXPECT_NE(duplex.reverse_link, nullptr);
  }
}

TEST(Topology, ExplicitBufferOverrideHonoured) {
  sim::Simulation sim;
  Network network(sim);
  PaperTopologyConfig config;
  config.core_buffer_bytes = 12345678;
  const PaperTopology topo = make_paper_topology(network, config);
  EXPECT_EQ(topo.bottleneck_port->queue().capacity_bytes(), 12345678u);
}

TEST(Topology, RejectsImpossiblySmallRtt) {
  sim::Simulation sim;
  Network network(sim);
  PaperTopologyConfig config;
  config.rtt[0] = units::microseconds(100);  // below the fixed hop delays
  EXPECT_THROW(make_paper_topology(network, config), std::invalid_argument);
}

}  // namespace
}  // namespace p4s::net
