// Tests: command-line flag parsing and JSON experiment configuration.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/config_loader.hpp"
#include "util/cli.hpp"

namespace p4s {
namespace {

util::CliArgs parse(std::initializer_list<const char*> argv,
                    const std::vector<std::string>& known,
                    const std::vector<std::string>& switches = {}) {
  std::vector<const char*> full = {"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return util::CliArgs(static_cast<int>(full.size()), full.data(), known,
                       switches);
}

TEST(CliArgs, FlagWithSeparateValue) {
  const auto args = parse({"--rate", "100"}, {"rate"});
  EXPECT_TRUE(args.has("rate"));
  EXPECT_EQ(args.get("rate").value(), "100");
  EXPECT_DOUBLE_EQ(args.number_or("rate", 0), 100.0);
  EXPECT_EQ(args.uint_or("rate", 0), 100u);
  EXPECT_TRUE(args.errors().empty());
}

TEST(CliArgs, InlineEqualsValue) {
  const auto args = parse({"--rate=42.5"}, {"rate"});
  EXPECT_DOUBLE_EQ(args.number_or("rate", 0), 42.5);
}

TEST(CliArgs, BareSwitch) {
  const auto args = parse({"--verbose", "--rate", "7"},
                          {"verbose", "rate"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose").value(), "");
  EXPECT_EQ(args.uint_or("rate", 0), 7u);
}

TEST(CliArgs, DeclaredSwitchNeverConsumesThePositionalAfterIt) {
  // `p4s-trace replay --max-speed in.pcap` regression: a declared
  // switch must leave the following token positional.
  const auto args =
      parse({"replay", "--max-speed", "in.pcap", "eg.pcap"}, {"rate"},
            {"max-speed"});
  EXPECT_TRUE(args.has("max-speed"));
  EXPECT_EQ(args.get("max-speed").value(), "");
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"replay", "in.pcap", "eg.pcap"}));
  EXPECT_TRUE(args.errors().empty());
}

TEST(CliArgs, UnknownFlagIsError) {
  const auto args = parse({"--tyop", "1"}, {"typo"});
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("--tyop"), std::string::npos);
}

TEST(CliArgs, PositionalCollected) {
  const auto args = parse({"file1", "--rate", "1", "file2"}, {"rate"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(CliArgs, MissingAndMalformedNumbersFallBack) {
  const auto args = parse({"--rate", "abc"}, {"rate", "other"});
  EXPECT_DOUBLE_EQ(args.number_or("rate", 9.5), 9.5);
  EXPECT_EQ(args.uint_or("other", 3), 3u);
  EXPECT_EQ(args.get_or("other", "dflt"), "dflt");
}

TEST(CliArgs, SwitchFollowedByFlagDoesNotConsumeIt) {
  const auto args = parse({"--verbose", "--rate", "5"},
                          {"verbose", "rate"});
  EXPECT_EQ(args.get("verbose").value(), "");
  EXPECT_EQ(args.uint_or("rate", 0), 5u);
}

// ---------- config loader ----------

TEST(ConfigLoader, FullDocument) {
  const auto config = core::config_from_text(R"({
    "seed": 7,
    "tap_latency_us": 2,
    "topology": {"bottleneck_mbps": 500, "access_mbps": 2000,
                 "rtt_ms": [10, 20, 30],
                 "core_buffer_bdp_of_rtt_ms": 10},
    "program": {"promotion_kb": 50, "burst_threshold_us": 800,
                "int_sample_every": 64, "iat_min_gap_ms": 5},
    "control": {"flow_idle_timeout_s": 4, "digest_poll_ms": 20}
  })");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.tap_latency, units::microseconds(2));
  EXPECT_EQ(config.topology.bottleneck_bps, units::mbps(500));
  EXPECT_EQ(config.topology.access_bps, units::mbps(2000));
  EXPECT_EQ(config.topology.rtt[0], units::milliseconds(10));
  EXPECT_EQ(config.topology.rtt[2], units::milliseconds(30));
  EXPECT_EQ(config.topology.core_buffer_bytes,
            units::bdp_bytes(units::mbps(500), units::milliseconds(10)));
  EXPECT_EQ(config.program.tracker.promotion_bytes, 50u * 1024);
  EXPECT_EQ(config.program.queue.burst_threshold_ns,
            units::microseconds(800));
  EXPECT_EQ(config.program.queue.burst_exit_ns, units::microseconds(400));
  EXPECT_TRUE(config.program.int_export.enabled);
  EXPECT_EQ(config.program.int_export.sample_every, 64u);
  EXPECT_EQ(config.program.iat.min_gap_ns, units::milliseconds(5));
  EXPECT_EQ(config.control.flow_idle_timeout, units::seconds(4));
  EXPECT_EQ(config.control.digest_poll_interval, units::milliseconds(20));
}

TEST(ConfigLoader, EmptyDocumentKeepsDefaults) {
  const auto config = core::config_from_text("{}");
  core::MonitoringSystemConfig defaults;
  EXPECT_EQ(config.seed, defaults.seed);
  EXPECT_EQ(config.topology.bottleneck_bps,
            defaults.topology.bottleneck_bps);
}

TEST(ConfigLoader, IntSampleEveryZeroDisables) {
  const auto config = core::config_from_text(
      R"({"program": {"int_sample_every": 0}})");
  EXPECT_FALSE(config.program.int_export.enabled);
}

TEST(ConfigLoader, RejectsUnknownKeys) {
  EXPECT_THROW(core::config_from_text(R"({"sede": 1})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"topology": {"bottleneck_gbps": 1}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"program": {"bogus": 1}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"control": {"bogus": 1}})"),
               std::invalid_argument);
}

TEST(ConfigLoader, RejectsIllTypedValues) {
  EXPECT_THROW(core::config_from_text(R"({"seed": "seven"})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"topology": {"rtt_ms": [1, 2]}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"topology": 5})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text("[]"), std::invalid_argument);
}

TEST(ConfigLoader, MalformedJsonThrowsJsonError) {
  EXPECT_THROW(core::config_from_text("{nope"), util::JsonError);
}

TEST(ConfigLoader, TransportSection) {
  const auto config = core::config_from_text(R"({
    "transport": {
      "resilient": true,
      "latency_us": 250,
      "send_buffer_kb": 64,
      "drain_kbps": 800,
      "max_chunk_bytes": 512,
      "random_chunking": false,
      "queue_capacity": 100,
      "ack_timeout_ms": 150,
      "retry_base_ms": 5,
      "retry_max_ms": 2000,
      "health_interval_s": 2,
      "faults": [
        {"at_s": 3, "kind": "reset"},
        {"at_s": 5, "kind": "stall", "duration_s": 0.8}
      ]
    }
  })");
  EXPECT_TRUE(config.transport.resilient);
  EXPECT_EQ(config.transport.channel.latency, units::microseconds(250));
  EXPECT_EQ(config.transport.channel.send_buffer_bytes, 64u * 1024);
  EXPECT_EQ(config.transport.channel.drain_bps, 800'000u);
  EXPECT_EQ(config.transport.channel.max_chunk_bytes, 512u);
  EXPECT_FALSE(config.transport.channel.random_chunking);
  EXPECT_EQ(config.transport.sink.queue_capacity, 100u);
  EXPECT_EQ(config.transport.sink.ack_timeout, units::milliseconds(150));
  EXPECT_EQ(config.transport.sink.backoff.base, units::milliseconds(5));
  EXPECT_EQ(config.transport.sink.backoff.max, units::seconds(2));
  EXPECT_EQ(config.transport.sink.health_interval, units::seconds(2));
  ASSERT_EQ(config.transport.faults.size(), 2u);
  EXPECT_EQ(config.transport.faults[0].at, units::seconds(3));
  EXPECT_EQ(config.transport.faults[0].kind,
            net::FaultInjector::FaultKind::kReset);
  EXPECT_EQ(config.transport.faults[1].kind,
            net::FaultInjector::FaultKind::kStall);
  EXPECT_EQ(config.transport.faults[1].duration,
            units::milliseconds(800));
}

TEST(ConfigLoader, TraceSection) {
  const auto config = core::config_from_text(R"({
    "trace": {
      "capture": true,
      "path_base": "/tmp/run1",
      "snaplen": 256
    }
  })");
  EXPECT_TRUE(config.trace.capture);
  EXPECT_EQ(config.trace.path_base, "/tmp/run1");
  EXPECT_EQ(config.trace.snaplen, 256u);
  // Defaults: capture off, full snaplen.
  const auto defaults = core::config_from_text("{}");
  EXPECT_FALSE(defaults.trace.capture);
  EXPECT_EQ(defaults.trace.snaplen, trace::kDefaultSnaplen);
}

TEST(ConfigLoader, TraceRejectsBadValues) {
  EXPECT_THROW(core::config_from_text(R"({"trace": {"capture": 1}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"trace": {"path_base": 3}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"trace": {"snaplen": "big"}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"trace": {"nope": true}})"),
               std::invalid_argument);
}

TEST(ConfigLoader, TransportRejectsBadFaults) {
  // Faults without the resilient wire have nothing to act on.
  EXPECT_THROW(core::config_from_text(
                   R"({"transport": {"faults": [{"at_s": 1}]}})"),
               std::invalid_argument);
  // A stall needs a positive duration.
  EXPECT_THROW(core::config_from_text(
                   R"({"transport": {"resilient": true, "faults":
                       [{"at_s": 1, "kind": "stall"}]}})"),
               std::invalid_argument);
  // Unknown fault kind / key / missing at_s all fail.
  EXPECT_THROW(core::config_from_text(
                   R"({"transport": {"resilient": true, "faults":
                       [{"at_s": 1, "kind": "flood"}]}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"transport": {"resilient": true, "faults":
                       [{"kind": "reset"}]}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"transport": {"resilient": "yes"}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"transport": {"bogus": 1}})"),
               std::invalid_argument);
}

TEST(ConfigLoader, TransportConfigBuildsResilientSystem) {
  const auto config = core::config_from_text(R"({
    "topology": {"bottleneck_mbps": 100},
    "control": {"flow_idle_timeout_s": 1},
    "transport": {"resilient": true,
                  "faults": [{"at_s": 2, "kind": "reset"}]}
  })");
  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(3));
  system.run_until(units::seconds(6));
  EXPECT_TRUE(system.resilient_transport());
  EXPECT_EQ(system.fault_injector().resets_injected(), 1u);
  EXPECT_EQ(system.report_sink().reconnects(), 1u);
  EXPECT_GT(system.psonar().archiver().total_docs(), 0u);
}

TEST(ConfigLoader, SwitchesSection) {
  const auto config = core::config_from_text(R"({
    "switches": [
      {"id": "site-a"},
      {"id": "site-b", "tap": "wan_ext1"}
    ]
  })");
  ASSERT_EQ(config.switches.size(), 2u);
  EXPECT_EQ(config.switches[0].id, "site-a");
  EXPECT_EQ(config.switches[0].tap, core::TapPoint::kCoreBottleneck);
  EXPECT_EQ(config.switches[1].id, "site-b");
  EXPECT_EQ(config.switches[1].tap, core::TapPoint::kWanExt1);
  // Default: no explicit switches (MonitoringSystem builds one untagged).
  EXPECT_TRUE(core::config_from_text("{}").switches.empty());
  EXPECT_EQ(core::config_from_text("{}").parallel, 1u);
}

// The object form of "switches" carries the parallel-execution knob next
// to the site list: {"parallel": N, "sites": [...]}. parallel=1 is the
// serial path; the bare-array legacy shape stays accepted above.
TEST(ConfigLoader, SwitchesObjectFormWithParallelKnob) {
  const auto config = core::config_from_text(R"({
    "switches": {
      "parallel": 4,
      "sites": [
        {"id": "site-a"},
        {"id": "site-b", "tap": "wan_ext2"}
      ]
    }
  })");
  EXPECT_EQ(config.parallel, 4u);
  ASSERT_EQ(config.switches.size(), 2u);
  EXPECT_EQ(config.switches[0].id, "site-a");
  EXPECT_EQ(config.switches[1].tap, core::TapPoint::kWanExt2);

  // parallel alone (default sites) and sites alone (default serial).
  EXPECT_EQ(core::config_from_text(R"({"switches": {"parallel": 8}})")
                .parallel,
            8u);
  const auto sites_only =
      core::config_from_text(R"({"switches": {"sites": [{"id": "x"}]}})");
  EXPECT_EQ(sites_only.parallel, 1u);
  ASSERT_EQ(sites_only.switches.size(), 1u);
}

TEST(ConfigLoader, SwitchesRejectsBadValues) {
  EXPECT_THROW(core::config_from_text(R"({"switches": 7})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"switches": [{"id": 7}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      core::config_from_text(R"({"switches": [{"tap": "nowhere"}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      core::config_from_text(R"({"switches": [{"bogus": true}]})"),
      std::invalid_argument);
  // Object-form validation: parallel must be a positive integer, and
  // unknown keys stay fatal.
  EXPECT_THROW(
      core::config_from_text(R"({"switches": {"parallel": 0}})"),
      std::invalid_argument);
  EXPECT_THROW(
      core::config_from_text(R"({"switches": {"parallel": 2.5}})"),
      std::invalid_argument);
  EXPECT_THROW(
      core::config_from_text(R"({"switches": {"bogus": true}})"),
      std::invalid_argument);
  EXPECT_THROW(
      core::config_from_text(R"({"switches": {"sites": [{"id": 7}]}})"),
      std::invalid_argument);
}

TEST(ConfigLoader, LoadedConfigBuildsWorkingSystem) {
  const auto config = core::config_from_text(R"({
    "topology": {"bottleneck_mbps": 100},
    "control": {"flow_idle_timeout_s": 1}
  })");
  core::MonitoringSystem system(config);
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(3));
  system.run_until(units::seconds(6));
  EXPECT_EQ(system.control_plane().final_reports().size(), 1u);
}

TEST(ConfigLoader, ServingSection) {
  const std::string dir =
      ::testing::TempDir() + "p4s_config_serving_section";
  const auto config = core::config_from_text(R"({
    "archive": {"backend": "store", "dir": ")" + dir + R"("},
    "serving": {"enabled": true, "cache_bytes": 1048576,
                "cache_shards": 2, "reader_threads": 6}
  })");
  EXPECT_TRUE(config.serving.enabled);
  EXPECT_EQ(config.serving.cache_bytes, 1048576u);
  EXPECT_EQ(config.serving.cache_shards, 2u);
  EXPECT_EQ(config.serving.reader_threads, 6u);
  // Defaults: serving is off, unbounded cache.
  const auto defaults = core::config_from_text("{}");
  EXPECT_FALSE(defaults.serving.enabled);
  EXPECT_EQ(defaults.serving.cache_bytes, 0u);
}

TEST(ConfigLoader, ServingRejectsBadValues) {
  // Serving rides on the durable store; without it the section is a
  // configuration error, not a silent no-op.
  EXPECT_THROW(core::config_from_text(R"({"serving": {"enabled": true}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"serving": {"cache_shards": 0}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"serving": {"enabled": "yes"}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"serving": {"bogus": 1}})"),
               std::invalid_argument);
}

TEST(ConfigLoader, ServingConfigBuildsSystemWithStoreServer) {
  const std::string dir =
      ::testing::TempDir() + "p4s_config_serving_system";
  std::filesystem::remove_all(dir);
  const auto config = core::config_from_text(R"({
    "topology": {"bottleneck_mbps": 100},
    "control": {"flow_idle_timeout_s": 1},
    "archive": {"backend": "store", "dir": ")" + dir + R"(",
                "seal_min_docs": 8},
    "serving": {"enabled": true, "reader_threads": 2,
                "cache_bytes": 4194304}
  })");
  core::MonitoringSystem system(config);
  ASSERT_TRUE(system.durable_archive());
  ASSERT_TRUE(system.serving());
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(3));
  system.run_until(units::seconds(6));

  // The server answers queries over what the run archived.
  auto& server = system.store_server();
  EXPECT_EQ(server.stats().reader_threads, 2u);
  const auto agg =
      server.submit_aggregate("p4sonar-throughput", "throughput_bps").get();
  EXPECT_GT(agg.count, 0u);
  EXPECT_EQ(agg.count,
            system.psonar().archiver().doc_count("p4sonar-throughput"));
  EXPECT_TRUE(server.latest_value("p4sonar-throughput", "throughput_bps")
                  .has_value());
}

TEST(ConfigLoader, ServingDisabledBuildsNoServer) {
  const std::string dir =
      ::testing::TempDir() + "p4s_config_serving_off";
  std::filesystem::remove_all(dir);
  const auto config = core::config_from_text(R"({
    "archive": {"backend": "store", "dir": ")" + dir + R"("}
  })");
  core::MonitoringSystem system(config);
  EXPECT_TRUE(system.durable_archive());
  EXPECT_FALSE(system.serving());
}

// ---------------------------------------------------------- programs

std::string config_error(const std::string& text) {
  try {
    core::config_from_text(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ConfigLoader, ProgramsSection) {
  const auto config = core::config_from_text(R"({
    "programs": [
      {"name": "byte_counter", "scope": "flow",
       "ops": [{"op": "add", "dst": 0, "field": "ipv4_total_len"}],
       "export": {"metric": "vm_throughput", "value": "rate_bps",
                  "register": 0, "samples_per_second": 2}}
    ],
    "switches": [
      {"id": "site-a"},
      {"id": "site-b",
       "programs": [{"name": "pkt_count", "scope": "switch",
                     "ops": [{"op": "count", "dst": 0}]}]}
    ]
  })");
  ASSERT_EQ(config.programs.size(), 1u);
  EXPECT_EQ(config.programs[0].name, "byte_counter");
  EXPECT_EQ(config.programs[0].export_spec->metric, "vm_throughput");
  ASSERT_EQ(config.switches.size(), 2u);
  EXPECT_TRUE(config.switches[0].programs.empty());
  ASSERT_EQ(config.switches[1].programs.size(), 1u);
  EXPECT_EQ(config.switches[1].programs[0].name, "pkt_count");
  EXPECT_EQ(config.switches[1].programs[0].scope, mpl::Scope::kSwitch);
}

TEST(ConfigLoader, ProgramDiagnosticsNameTheFullJsonPath) {
  // A bad field in the third op of the second switch's first program is
  // reported by its exact key path.
  const std::string msg = config_error(R"({
    "switches": [
      {"id": "a"},
      {"id": "b", "programs": [
        {"name": "x", "ops": [
          {"op": "count", "dst": 0},
          {"op": "count", "dst": 1},
          {"op": "add", "dst": 2, "field": "bogus_field"}
        ]}
      ]}
    ]
  })");
  EXPECT_NE(msg.find("switches[1].programs[0].ops[2].field"),
            std::string::npos)
      << msg;
  // Top-level programs report under "programs[i]".
  const std::string top = config_error(
      R"({"programs": [{"name": "x", "ops": []}, {"scope": 5}]})");
  EXPECT_NE(top.find("programs["), std::string::npos) << top;
  // And a non-array section is rejected with its own path.
  EXPECT_NE(config_error(R"({"programs": 7})").find("'programs'"),
            std::string::npos);
}

TEST(ConfigLoader, DiagnosticsAreSectionQualified) {
  // Ill-typed leaves name section.key, not the bare key.
  EXPECT_NE(config_error(R"({"transport": {"latency_us": "fast"}})")
                .find("transport.latency_us"),
            std::string::npos);
  EXPECT_NE(config_error(R"({"control": {"digest_poll_ms": []}})")
                .find("control.digest_poll_ms"),
            std::string::npos);
  EXPECT_NE(config_error(R"({"topology": {"bottleneck_mbps": false}})")
                .find("topology.bottleneck_mbps"),
            std::string::npos);
}

TEST(ConfigLoader, ProgramsSectionBuildsWorkingSystem) {
  const auto config = core::config_from_text(R"({
    "topology": {"bottleneck_mbps": 2},
    "programs": [
      {"name": "byte_counter", "scope": "flow",
       "ops": [{"op": "add", "dst": 0, "field": "ipv4_total_len"}],
       "export": {"metric": "vm_throughput", "value": "rate_bps",
                  "register": 0, "samples_per_second": 2}}
    ]
  })");
  core::MonitoringSystem system(config);
  auto& vm = system.monitored_switch(0).program_vm();
  ASSERT_NE(vm.find("byte_counter"), nullptr);
  EXPECT_TRUE(system.monitored_switch(0).control_plane().has_extractor(
      "vm_throughput"));
}

TEST(ConfigLoader, SpinRttAndNidsSections) {
  const auto config = core::config_from_text(R"({
    "telemetry": {
      "spin_rtt": {"slots": 512, "rtt_floor_us": 100,
                   "outlier_factor": 4, "alpha": 0.02},
      "nids": {"max_flows": 1024, "syn_flood_syns": 150,
               "syn_flood_ratio": 5, "port_scan_ports": 30,
               "min_window_packets": 2, "window_ms": 500}
    }
  })");
  ASSERT_TRUE(config.program.spin_rtt.has_value());
  EXPECT_EQ(config.program.spin_rtt->slots, 512u);
  EXPECT_EQ(config.program.spin_rtt->rtt_floor_ns,
            units::microseconds(100));
  EXPECT_DOUBLE_EQ(config.program.spin_rtt->outlier_factor, 4.0);
  EXPECT_DOUBLE_EQ(config.program.spin_rtt->sketch_alpha, 0.02);
  ASSERT_TRUE(config.program.nids.has_value());
  EXPECT_EQ(config.program.nids->max_flows, 1024u);
  EXPECT_EQ(config.program.nids->syn_flood_syns, 150u);
  EXPECT_DOUBLE_EQ(config.program.nids->syn_flood_ratio, 5.0);
  EXPECT_EQ(config.program.nids->port_scan_ports, 30u);
  EXPECT_EQ(config.program.nids->min_window_packets, 2u);
  EXPECT_EQ(config.program.nids->window, units::milliseconds(500));
  // Enabling with an empty object builds the engines with defaults.
  const auto bare = core::config_from_text(
      R"({"telemetry": {"spin_rtt": {}, "nids": {}}})");
  EXPECT_TRUE(bare.program.spin_rtt.has_value());
  EXPECT_TRUE(bare.program.nids.has_value());
  // Absent sections leave the engines off (the golden-pinned default).
  const auto off = core::config_from_text("{}");
  EXPECT_FALSE(off.program.spin_rtt.has_value());
  EXPECT_FALSE(off.program.nids.has_value());
}

TEST(ConfigLoader, SpinRttAndNidsRejectBadValues) {
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"spin_rtt": {"slots": 0}}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"spin_rtt": {"outlier_factor": 1}}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"spin_rtt": {"alpha": 1.5}}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"nids": {"syn_flood_ratio": 0.5}}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"nids": {"max_flows": -1}}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"nids": {"bogus": 1}}})"),
               std::invalid_argument);
}

TEST(ConfigLoader, WorkloadsSection) {
  const auto config = core::config_from_text(R"({
    "workloads": [
      {"kind": "syn_flood", "src": "ext0", "dst": "dtn_int",
       "start_s": 1, "duration_s": 3, "pps": 2000, "port": 443,
       "spoof_count": 64},
      {"kind": "port_scan", "src": "ext1", "dst": "dtn_int",
       "pps": 500, "port": 1, "port_count": 200},
      {"kind": "elephant_mice", "src": "ext2", "dst": "dtn_int",
       "duration_s": 5, "elephants": 3, "elephant_mb": 40,
       "mice_per_second": 10, "mice_kb": 50}
    ]
  })");
  ASSERT_EQ(config.workloads.size(), 3u);
  EXPECT_EQ(config.workloads[0].kind,
            workload::WorkloadSpec::Kind::kSynFlood);
  EXPECT_EQ(config.workloads[0].src, "ext0");
  EXPECT_EQ(config.workloads[0].start, units::seconds(1));
  EXPECT_EQ(config.workloads[0].duration, units::seconds(3));
  EXPECT_DOUBLE_EQ(config.workloads[0].pps, 2000.0);
  EXPECT_EQ(config.workloads[0].port, 443);
  EXPECT_EQ(config.workloads[0].spoof_count, 64u);
  EXPECT_EQ(config.workloads[1].kind,
            workload::WorkloadSpec::Kind::kPortScan);
  EXPECT_EQ(config.workloads[1].port_count, 200u);
  EXPECT_EQ(config.workloads[2].kind,
            workload::WorkloadSpec::Kind::kElephantMice);
  EXPECT_EQ(config.workloads[2].elephants, 3u);
  EXPECT_EQ(config.workloads[2].elephant_bytes, 40'000'000u);
  EXPECT_DOUBLE_EQ(config.workloads[2].mice_per_second, 10.0);
  EXPECT_EQ(config.workloads[2].mice_bytes, 50u * 1024);
}

TEST(ConfigLoader, WorkloadsRejectBadValues) {
  // kind is mandatory and must name a known generator.
  EXPECT_THROW(core::config_from_text(
                   R"({"workloads": [{"src": "ext0"}]})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"workloads": [{"kind": "ddos"}]})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"workloads": {}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"workloads": [{"kind": "syn_flood", "bogus": 1}]})"),
               std::invalid_argument);
}

TEST(ConfigLoader, WorkloadConfigBuildsWorkingSystem) {
  // The declarative path end-to-end: hosts resolved by name, generator
  // started with the system, SYNs visible at the monitored switch.
  const auto config = core::config_from_text(R"({
    "telemetry": {"nids": {"syn_flood_syns": 100, "window_ms": 1000}},
    "workloads": [
      {"kind": "syn_flood", "src": "ext0", "dst": "dtn_int",
       "start_s": 1, "duration_s": 2, "pps": 1000}
    ]
  })");
  core::MonitoringSystem system(config);
  system.start();
  system.run_until(units::seconds(4));
  EXPECT_GT(system.workloads().at(0)->packets_sent(), 500u);
  EXPECT_FALSE(
      system.psonar().archiver().search("p4sonar-nids_alert").empty());
}

TEST(ConfigLoader, WorkloadUnknownHostNameFailsAtLoadTime) {
  // Host names are a fixed topology set — reject them in the loader
  // (with the path) rather than deep inside MonitoringSystem.
  EXPECT_THROW(core::config_from_text(R"({
    "workloads": [{"kind": "syn_flood", "src": "nowhere",
                   "dst": "dtn_int"}]
  })"),
               std::invalid_argument);
  // The programmatic path still throws for unknown names.
  core::MonitoringSystemConfig config;
  workload::WorkloadSpec spec;
  spec.kind = workload::WorkloadSpec::Kind::kSynFlood;
  spec.src = "nowhere";
  spec.dst = "dtn_int";
  config.workloads.push_back(spec);
  EXPECT_THROW(core::MonitoringSystem{config}, std::invalid_argument);
}

}  // namespace
}  // namespace p4s
