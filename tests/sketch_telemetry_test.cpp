// The sketch subsystem wired into the telemetry stack: cuckoo-mode flow
// tracking (promotion, slot recycling, eviction digests, conservation),
// exact-path survival at 100k offered flows, the switch-wide histogram
// engines in the pipeline, the control-plane histogram extractor, the
// "telemetry" config section, and the trace CLI's --histogram mode.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "controlplane/control_plane.hpp"
#include "controlplane/histogram_extractor.hpp"
#include "core/config_loader.hpp"
#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "telemetry/dataplane_program.hpp"
#include "trace/trace_cli.hpp"

namespace p4s {
namespace {

using telemetry::DataPlaneProgram;
using telemetry::FlowTableKind;
using telemetry::FlowTracker;
using telemetry::HistogramEngineConfig;
using telemetry::kFlowSlots;

const net::Ipv4Address kDst = net::ipv4(10, 1, 0, 10);

net::FiveTuple tuple_of(std::uint32_t i) {
  return net::FiveTuple{
      net::ipv4(10, static_cast<std::uint8_t>(i >> 16),
                static_cast<std::uint8_t>(i >> 8),
                static_cast<std::uint8_t>(i)),
      kDst, static_cast<std::uint16_t>(40000 + (i % 1000)), 5201, 6};
}

FlowTracker::Config cuckoo_config(SimTime idle_age = 0) {
  FlowTracker::Config config;
  config.promotion_bytes = 1;  // first data packet promotes
  config.flow_table = FlowTableKind::kCuckoo;
  config.cuckoo.idle_age = idle_age;
  return config;
}

// ---- FlowTracker in cuckoo mode --------------------------------------

TEST(CuckooTracker, NamesRoundTrip) {
  EXPECT_STREQ(telemetry::to_string(FlowTableKind::kRegisters),
               "registers");
  EXPECT_EQ(telemetry::flow_table_from_name("cuckoo"),
            FlowTableKind::kCuckoo);
  EXPECT_THROW(telemetry::flow_table_from_name("nope"),
               std::invalid_argument);
}

TEST(CuckooTracker, PromotesIntoLowestFreeSlotAndEmitsDigest) {
  FlowTracker tracker(cuckoo_config());
  const auto s0 = tracker.on_data_packet(tuple_of(1), 1000, 100);
  const auto s1 = tracker.on_data_packet(tuple_of(2), 1000, 100);
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s0, 0u);  // slots hand out low-first, not hash-scattered
  EXPECT_EQ(*s1, 1u);
  const auto digests = tracker.new_flow_digests().drain();
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0].slot, 0u);
  EXPECT_EQ(digests[1].flow.tuple, tuple_of(2));
  // Subsequent packets of a tracked flow hit the table, same slot.
  EXPECT_EQ(tracker.on_data_packet(tuple_of(1), 1000, 200), s0);
  EXPECT_EQ(tracker.slot_of(p4::flow_hash(tuple_of(1))), s0);
  EXPECT_EQ(tracker.active_flows(), 2u);
}

TEST(CuckooTracker, ReleaseRecyclesTheSlot) {
  FlowTracker tracker(cuckoo_config());
  const auto s0 = tracker.on_data_packet(tuple_of(1), 1000, 100);
  ASSERT_TRUE(s0.has_value());
  tracker.release(*s0);
  EXPECT_FALSE(tracker.slot_of(p4::flow_hash(tuple_of(1))).has_value());
  EXPECT_TRUE(tracker.slot_cleared(*s0));
  EXPECT_EQ(tracker.active_flows(), 0u);
  // The recycled slot is handed to the next promotion (LIFO free list).
  const auto s1 = tracker.on_data_packet(tuple_of(2), 1000, 200);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s1, *s0);
}

TEST(CuckooTracker, ExhaustsSlotsThenRejectsWithoutAging) {
  FlowTracker tracker(cuckoo_config(/*idle_age=*/0));
  std::size_t promoted = 0;
  for (std::uint32_t i = 0; i < 3 * kFlowSlots; ++i) {
    if (tracker.on_data_packet(tuple_of(i), 1000, 100 + i).has_value()) {
      ++promoted;
    }
  }
  // Every slot is usable: the cuckoo table fills the full register space
  // (a direct-indexed table at 3x offered load strands slots behind
  // low-bit collisions). Without aging, the rest are rejected cleanly.
  EXPECT_EQ(promoted, kFlowSlots);
  EXPECT_EQ(tracker.active_flows(), kFlowSlots);
  EXPECT_GT(tracker.slot_exhausted(), 0u);
  EXPECT_EQ(tracker.evictions(), 0u);
}

TEST(CuckooTracker, RegistersModeStrandsSlotsCuckooDoesNot) {
  FlowTracker::Config reg_config;
  reg_config.promotion_bytes = 1;
  FlowTracker registers(reg_config);
  FlowTracker cuckoo(cuckoo_config());
  // Offer 1.5x the slot space: birthday collisions strand a sizable
  // fraction of the direct-indexed table.
  for (std::uint32_t i = 0; i < kFlowSlots + kFlowSlots / 2; ++i) {
    registers.on_data_packet(tuple_of(i), 1000, 100);
    cuckoo.on_data_packet(tuple_of(i), 1000, 100);
  }
  // Cuckoo fills to within a handful of slots of the full register
  // space (kick bounds leave a few cells unreachable at this offered
  // load); the direct index strands a large fraction.
  EXPECT_GE(cuckoo.active_flows(), kFlowSlots * 99 / 100);
  EXPECT_LT(registers.active_flows(), kFlowSlots * 95 / 100);
  EXPECT_GT(cuckoo.active_flows(), registers.active_flows());
  EXPECT_GT(registers.slot_collisions(), 0u);
}

TEST(CuckooTracker, EvictionEmitsDigestAndConservesAccounting) {
  FlowTracker tracker(cuckoo_config(/*idle_age=*/units::seconds(1)));
  // Promote past saturation with advancing time: once the table is
  // congested, kick-chain failures evict idle victims.
  SimTime now = units::seconds(1);
  std::size_t promotions = 0;
  for (std::uint32_t i = 0; i < 4 * kFlowSlots; ++i) {
    now += units::milliseconds(2);
    if (tracker.on_data_packet(tuple_of(i), 1000, now).has_value()) {
      ++promotions;
    }
  }
  ASSERT_GT(tracker.evictions(), 0u);
  const auto evicted = tracker.evict_digests().drain();
  ASSERT_EQ(evicted.size(), tracker.evictions());
  std::set<std::uint16_t> evicted_slots;
  for (const auto& d : evicted) {
    EXPECT_TRUE(tracker.occupied(d.slot))
        << "evicted slot must stay occupied until finalized";
    EXPECT_GE(d.idle_ns, units::seconds(1));
    evicted_slots.insert(d.slot);
    // Control-plane behavior: finalize like a FIN.
    tracker.release(d.slot);
  }
  EXPECT_EQ(evicted_slots.size(), evicted.size()) << "duplicate slots";
  // Conservation: every promotion is either still active or finalized.
  EXPECT_EQ(promotions, tracker.active_flows() + evicted.size());
  // Released slots recycle.
  const auto again = tracker.on_data_packet(tuple_of(1 << 20), 1000, now);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(evicted_slots.count(*again), 1u);
}

TEST(CuckooTracker, ReleaseOfEvictedThenRepromotedFlowKeepsNewEpisode) {
  FlowTracker tracker(cuckoo_config(units::seconds(1)));
  SimTime now = units::seconds(1);
  std::size_t target = 0;
  // Drive to the first eviction and remember the victim.
  for (std::uint32_t i = 0; tracker.evictions() == 0; ++i) {
    ASSERT_LT(i, 8 * kFlowSlots) << "no eviction triggered";
    now += units::milliseconds(2);
    tracker.on_data_packet(tuple_of(i), 1000, now);
    target = i;
  }
  (void)target;
  const auto evicted = tracker.evict_digests().drain();
  ASSERT_EQ(evicted.size(), 1u);
  const std::uint16_t old_slot = evicted[0].slot;
  const net::FiveTuple victim_tuple = tracker.identity(old_slot).tuple;
  // The victim keeps sending before the control plane finalizes it: a
  // fresh tracked episode with a NEW slot.
  const auto new_slot = tracker.on_data_packet(victim_tuple, 1000, now + 1);
  ASSERT_TRUE(new_slot.has_value());
  EXPECT_NE(*new_slot, old_slot);
  // Finalizing the old episode must not disturb the new one.
  tracker.release(old_slot);
  EXPECT_EQ(tracker.slot_of(p4::flow_hash(victim_tuple)), new_slot);
  EXPECT_EQ(tracker.on_data_packet(victim_tuple, 1000, now + 2), new_slot);
}

// The acceptance check: at 100k offered flows the cuckoo path's exact
// match keeps every per-slot metric attributable to exactly one flow —
// no cross-flow corruption anywhere.
TEST(CuckooTracker, HundredThousandFlowsKeepExactPathMetricsUncorrupted) {
  constexpr std::uint32_t kOffered = 100'000;
  // 32-bit flow IDs over 100k tuples can collide (~1 pair expected);
  // aliasing by flow_id is inherent to the paper's keying, so the test
  // uses id-unique tuples to isolate the table's own behavior.
  std::vector<net::FiveTuple> tuples;
  std::set<std::uint32_t> ids;
  tuples.reserve(kOffered);
  for (std::uint32_t i = 0; tuples.size() < kOffered; ++i) {
    const net::FiveTuple t = tuple_of(i);
    if (ids.insert(p4::flow_hash(t)).second) tuples.push_back(t);
  }

  DataPlaneProgram::Config config;
  config.tracker = cuckoo_config();
  DataPlaneProgram program(config);
  sim::Simulation sim;
  p4::P4Switch sw(sim, "dut");
  sw.load_program(program);
  sim.run_until(units::milliseconds(1));

  std::map<std::uint32_t, std::uint64_t> sent_bytes;  // flow_id -> bytes
  std::uint16_t ip_id = 0;
  for (std::uint32_t i = 0; i < kOffered; ++i) {
    const net::FiveTuple& t = tuples[i];
    // Per-flow payload varies so cross-attribution cannot cancel out.
    const std::uint32_t payload = 100 + (i % 400);
    for (int rep = 0; rep < 2; ++rep) {
      net::Packet p = net::make_tcp_packet(
          t.src_ip, t.dst_ip, t.src_port, t.dst_port,
          1'000'000 + rep * payload, 0, net::tcpflags::kAck, payload,
          1 << 16);
      p.ip.id = ip_id++;
      sw.on_mirrored(p, net::MirrorPoint::kIngress);
      sent_bytes[p4::flow_hash(t)] += p.ip.total_len;
    }
  }

  const FlowTracker& tracker = program.tracker();
  EXPECT_EQ(tracker.active_flows(), kFlowSlots);
  ASSERT_NE(tracker.cuckoo_table(), nullptr);
  EXPECT_DOUBLE_EQ(tracker.cuckoo_table()->load_factor(), 1.0);
  std::size_t checked = 0;
  for (std::uint32_t slot = 0; slot < kFlowSlots; ++slot) {
    const auto s = static_cast<std::uint16_t>(slot);
    if (!tracker.occupied(s)) continue;
    const auto& ident = tracker.identity(s);
    // Both packets of the owning flow — and nothing else — were counted.
    EXPECT_EQ(program.bytes(s), sent_bytes.at(ident.flow_id))
        << "slot " << slot;
    EXPECT_EQ(program.packets(s), 2u) << "slot " << slot;
    ++checked;
  }
  EXPECT_EQ(checked, kFlowSlots);
}

// ---- Histogram engines in the pipeline -------------------------------

struct HistogramPipeline {
  sim::Simulation sim;
  DataPlaneProgram program;
  p4::P4Switch sw{sim, "dut"};

  static DataPlaneProgram::Config with_histograms() {
    DataPlaneProgram::Config config;
    for (const auto metric : {HistogramEngineConfig::Metric::kRtt,
                              HistogramEngineConfig::Metric::kIat,
                              HistogramEngineConfig::Metric::kQueueDelay}) {
      HistogramEngineConfig hc;
      hc.metric = metric;
      config.histograms.push_back(hc);
    }
    return config;
  }

  HistogramPipeline() : program(with_histograms()) {
    sw.load_program(program);
    sim.run_until(units::milliseconds(1));
  }

  const telemetry::HistogramEngine& engine(std::size_t i) const {
    return *program.histogram_engines()[i];
  }
};

TEST(HistogramEngines, RegisteredInTheEngineRegistry) {
  HistogramPipeline p;
  ASSERT_EQ(p.program.histogram_engines().size(), 3u);
  EXPECT_EQ(p.engine(0).name(), "rtt_histogram");
  EXPECT_EQ(p.engine(1).name(), "iat_histogram");
  EXPECT_EQ(p.engine(2).name(), "queue_delay_histogram");
  // 7 builtins + 3 histogram engines.
  EXPECT_EQ(p.program.engines().size(), 10u);
  // Slot-free: releasing any slot leaves them trivially cleared.
  p.program.release_slot(5);
  EXPECT_TRUE(p.program.slot_cleared(5));
}

TEST(HistogramEngines, RttMeasuredForUntrackedFlows) {
  HistogramPipeline p;
  // A short flow, far below promotion: the per-flow design never sees
  // it; the switch-wide histogram does.
  const net::Packet data = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 1), kDst, 40001, 5201, 5000, 0,
      net::tcpflags::kAck, 1460, 1 << 16);
  p.sim.at(units::milliseconds(10), [&]() {
    p.sw.on_mirrored(data, net::MirrorPoint::kIngress);
  });
  const net::Packet ack = net::make_tcp_packet(
      kDst, net::ipv4(10, 0, 0, 1), 5201, 40001, 1, 5000 + 1460,
      net::tcpflags::kAck, 0, 1 << 16);
  p.sim.at(units::milliseconds(52), [&]() {
    p.sw.on_mirrored(ack, net::MirrorPoint::kIngress);
  });
  p.sim.run();
  EXPECT_EQ(p.program.tracker().active_flows(), 0u);
  ASSERT_EQ(p.engine(0).samples(), 1u);
  // DDSketch quantile within 1% of the true 42 ms.
  EXPECT_NEAR(p.engine(0).quantile_ns(0.5),
              static_cast<double>(units::milliseconds(42)),
              0.011 * static_cast<double>(units::milliseconds(42)));
  EXPECT_EQ(p.engine(0).histogram().total(), 1u);
}

TEST(HistogramEngines, IatAndQueueDelayObserveEgressPath) {
  HistogramPipeline p;
  net::Packet pkt = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 2), kDst, 40002, 5201, 1000, 0,
      net::tcpflags::kAck, 500, 1 << 16);
  // Two TAP pairs: queue delays 30us and 50us, egress gap 2ms.
  pkt.ip.id = 1;
  const net::Packet first = pkt;
  p.sim.at(units::milliseconds(10), [&]() {
    p.sw.on_mirrored(first, net::MirrorPoint::kIngress);
  });
  p.sim.at(units::milliseconds(10) + units::microseconds(30), [&]() {
    p.sw.on_mirrored(first, net::MirrorPoint::kEgress);
  });
  net::Packet second = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 2), kDst, 40002, 5201, 1500, 0,
      net::tcpflags::kAck, 500, 1 << 16);
  second.ip.id = 2;
  p.sim.at(units::milliseconds(12), [&]() {
    p.sw.on_mirrored(second, net::MirrorPoint::kIngress);
  });
  p.sim.at(units::milliseconds(12) + units::microseconds(80), [&]() {
    p.sw.on_mirrored(second, net::MirrorPoint::kEgress);
  });
  p.sim.run();
  // Queue delay: both TAP pairs observed (30us, 80us). The sketch rank
  // convention is floor(q * (n - 1)), so with two samples only the max
  // rank reaches the larger delay.
  ASSERT_EQ(p.engine(2).samples(), 2u);
  EXPECT_NEAR(p.engine(2).quantile_ns(0.5),
              static_cast<double>(units::microseconds(30)),
              0.011 * static_cast<double>(units::microseconds(30)));
  EXPECT_NEAR(p.engine(2).quantile_ns(1.0),
              static_cast<double>(units::microseconds(80)),
              0.011 * static_cast<double>(units::microseconds(80)));
  // IAT: one gap between the two egress departures (~2ms).
  ASSERT_EQ(p.engine(1).samples(), 1u);
  EXPECT_NEAR(p.engine(1).quantile_ns(0.5),
              static_cast<double>(units::milliseconds(2)),
              0.05 * static_cast<double>(units::milliseconds(2)));
}

TEST(HistogramEngines, DefaultPipelineHasNone) {
  DataPlaneProgram program;
  EXPECT_TRUE(program.histogram_engines().empty());
  EXPECT_EQ(program.engines().size(), 7u);
}

// ---- Control-plane histogram extractor -------------------------------

struct Collector : cp::ReportSink {
  std::vector<util::Json> docs;
  void on_report(const util::Json& report) override {
    docs.push_back(report);
  }
};

TEST(HistogramExtractor, EmitsSwitchWideReportsWithQuantilesAndBins) {
  sim::Simulation sim;
  DataPlaneProgram program(HistogramPipeline::with_histograms());
  p4::P4Switch sw(sim, "dut");
  sw.load_program(program);
  cp::ControlPlane plane(sim, program, cp::ControlPlaneConfig{});
  cp::register_histogram_extractors(plane, program);
  EXPECT_EQ(plane.extractor_count(), cp::kMetricCount + 3);
  // The name-based configuration seam covers the new extractors.
  plane.set_samples_per_second("rtt_histogram", 2.0);
  EXPECT_THROW(cp::register_histogram_extractors(plane, program),
               std::invalid_argument);  // duplicates rejected

  Collector collector;
  plane.set_sink(&collector);
  plane.start();
  // One measured RTT sample (untracked flow).
  const net::Packet data = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 3), kDst, 40003, 5201, 9000, 0,
      net::tcpflags::kAck, 1000, 1 << 16);
  sim.at(units::milliseconds(100), [&]() {
    sw.on_mirrored(data, net::MirrorPoint::kIngress);
  });
  const net::Packet ack = net::make_tcp_packet(
      kDst, net::ipv4(10, 0, 0, 3), 5201, 40003, 1, 9000 + 1000,
      net::tcpflags::kAck, 0, 1 << 16);
  sim.at(units::milliseconds(125), [&]() {
    sw.on_mirrored(ack, net::MirrorPoint::kIngress);
  });
  sim.run_until(units::seconds(2));

  const util::Json* rtt_doc = nullptr;
  for (const auto& doc : collector.docs) {
    if (doc.at("report").as_string() == "rtt_histogram" &&
        doc.at("samples").as_int() > 0) {
      rtt_doc = &doc;
    }
  }
  ASSERT_NE(rtt_doc, nullptr) << "no rtt_histogram report emitted";
  EXPECT_FALSE(rtt_doc->contains("flow")) << "switch-wide, not per-flow";
  EXPECT_NEAR(rtt_doc->at("p99_ms").as_double(), 25.0, 0.3);
  EXPECT_NEAR(rtt_doc->at("p50_ms").as_double(), 25.0, 0.3);
  EXPECT_TRUE(rtt_doc->at("p95_ms").is_number());
  EXPECT_EQ(rtt_doc->at("samples").as_int(), 1);
  const util::Json& hist = rtt_doc->at("histogram");
  EXPECT_EQ(hist.at("bins").as_int(), 64);
  EXPECT_EQ(hist.at("counts").size(), 64u);
}

TEST(HistogramExtractor, RegisterExtractorValidatesReadModes) {
  sim::Simulation sim;
  DataPlaneProgram program;
  cp::ControlPlane plane(sim, program, cp::ControlPlaneConfig{});
  cp::ControlPlane::MetricExtractor both;
  both.name = "broken";
  both.read = [](std::uint16_t, cp::ControlPlane::FlowState&, SimTime) {
    return 0.0;
  };
  both.read_switch = [](SimTime) { return 0.0; };
  EXPECT_THROW(plane.register_extractor(std::move(both)),
               std::invalid_argument);
  cp::ControlPlane::MetricExtractor neither;
  neither.name = "broken2";
  EXPECT_THROW(plane.register_extractor(std::move(neither)),
               std::invalid_argument);
}

// ---- Config loader ----------------------------------------------------

TEST(TelemetryConfig, ParsesFlowTableCuckooAndHistograms) {
  const auto config = core::config_from_text(R"({
    "telemetry": {
      "flow_table": "cuckoo",
      "cuckoo": {"ways": 2, "max_kicks": 8, "idle_age_s": 1.5},
      "sketch_alpha": 0.02,
      "histograms": [
        {"metric": "rtt", "scale": "log", "min_us": 100, "max_ms": 500,
         "bins": 32},
        {"metric": "queue_delay", "id": "core", "alpha": 0.005}
      ]
    }
  })");
  EXPECT_EQ(config.program.tracker.flow_table, FlowTableKind::kCuckoo);
  EXPECT_EQ(config.program.tracker.cuckoo.ways, 2u);
  EXPECT_EQ(config.program.tracker.cuckoo.max_kicks, 8u);
  EXPECT_EQ(config.program.tracker.cuckoo.idle_age,
            units::milliseconds(1500));
  ASSERT_EQ(config.program.histograms.size(), 2u);
  const auto& rtt = config.program.histograms[0];
  EXPECT_EQ(rtt.metric, HistogramEngineConfig::Metric::kRtt);
  EXPECT_DOUBLE_EQ(rtt.histogram.min, 100e3);
  EXPECT_DOUBLE_EQ(rtt.histogram.max, 500e6);
  EXPECT_EQ(rtt.histogram.bins, 32u);
  EXPECT_DOUBLE_EQ(rtt.sketch_alpha, 0.02);  // section-wide fallback
  const auto& qd = config.program.histograms[1];
  EXPECT_EQ(qd.metric, HistogramEngineConfig::Metric::kQueueDelay);
  EXPECT_EQ(qd.id, "core");
  EXPECT_DOUBLE_EQ(qd.sketch_alpha, 0.005);  // per-entry override wins
}

TEST(TelemetryConfig, DefaultsStayLegacy) {
  const auto config = core::config_from_text("{}");
  EXPECT_EQ(config.program.tracker.flow_table, FlowTableKind::kRegisters);
  EXPECT_TRUE(config.program.histograms.empty());
}

TEST(TelemetryConfig, RejectsMalformedSections) {
  EXPECT_THROW(
      core::config_from_text(R"({"telemetry": {"flow_table": "btree"}})"),
      std::invalid_argument);
  // cuckoo subsection without selecting the cuckoo table.
  EXPECT_THROW(
      core::config_from_text(R"({"telemetry": {"cuckoo": {"ways": 4}}})"),
      std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"sketch_alpha": 1.5}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"telemetry": {"histograms":
      [{"metric": "nope"}]}})"),
               std::invalid_argument);
  EXPECT_THROW(core::config_from_text(R"({"telemetry": {"histograms":
      [{"scale": "log"}]}})"),
               std::invalid_argument);  // metric required
  EXPECT_THROW(core::config_from_text(R"({"telemetry": {"histograms":
      [{"metric": "rtt", "min_us": 1000, "max_ms": 0.5}]}})"),
               std::invalid_argument);  // min >= max
  EXPECT_THROW(
      core::config_from_text(R"({"telemetry": {"unknown_key": 1}})"),
      std::invalid_argument);
  EXPECT_THROW(core::config_from_text(
                   R"({"telemetry": {"cuckoo": {"ways": 16},
                       "flow_table": "cuckoo"}})"),
               std::invalid_argument);
}

// ---- Trace CLI --histogram -------------------------------------------

int run_cli(std::vector<std::string> argv_strings, std::string* out_text,
            std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("p4s-trace");
  for (const auto& s : argv_strings) argv.push_back(s.c_str());
  std::ostringstream out, err;
  const int rc = trace::trace_cli(static_cast<int>(argv.size()),
                                  argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(TraceCliHistogram, RendersQueueDelayBinsFromTheCommittedCapture) {
  const std::string data = P4S_TRACE_DATA_DIR;
  std::string out, err;
  ASSERT_EQ(run_cli({"stats", data + "/fig9.ingress.pcap",
                     data + "/fig9.egress.pcap", "--histogram",
                     "queue_delay", "--bins", "16"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("queue_delay_histogram: "), std::string::npos) << out;
  EXPECT_NE(out.find("p99: "), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos) << "no bars rendered";
}

TEST(TraceCliHistogram, RejectsUnknownMetricAndBadBounds) {
  const std::string data = P4S_TRACE_DATA_DIR;
  std::string out, err;
  EXPECT_EQ(run_cli({"stats", data + "/fig9.ingress.pcap", "--histogram",
                     "bogus"},
                    &out, &err),
            2);
  EXPECT_NE(err.find("unknown histogram metric"), std::string::npos) << err;
  EXPECT_EQ(run_cli({"stats", data + "/fig9.ingress.pcap", "--histogram",
                     "rtt", "--hist-min-us", "0"},
                    &out, &err),
            2);
}

TEST(TraceCliHistogram, BareFlagListsTheAvailableMetrics) {
  const std::string data = P4S_TRACE_DATA_DIR;
  std::string out, err;
  ASSERT_EQ(run_cli({"stats", data + "/fig9.ingress.pcap",
                     data + "/fig9.egress.pcap", "--histogram"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("available histogram metrics"), std::string::npos)
      << out;
  // Every metric the capture can offer is listed with its sample count.
  EXPECT_NE(out.find("rtt_histogram"), std::string::npos) << out;
  EXPECT_NE(out.find("iat_histogram"), std::string::npos) << out;
  EXPECT_NE(out.find("queue_delay_histogram"), std::string::npos) << out;
  EXPECT_NE(out.find("samples"), std::string::npos) << out;
}

TEST(TraceCliHistogram, UnknownMetricErrorCarriesTheListing) {
  const std::string data = P4S_TRACE_DATA_DIR;
  std::string out, err;
  EXPECT_EQ(run_cli({"stats", data + "/fig9.ingress.pcap",
                     data + "/fig9.egress.pcap", "--histogram", "bogus"},
                    &out, &err),
            2);
  EXPECT_NE(err.find("unknown histogram metric"), std::string::npos) << err;
  EXPECT_NE(err.find("available histogram metrics"), std::string::npos)
      << err;
  EXPECT_NE(err.find("queue_delay_histogram"), std::string::npos) << err;
}

}  // namespace
}  // namespace p4s
