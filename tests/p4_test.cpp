// Unit tests: P4 target emulation — stateful registers, CRC hash
// engines, count-min sketch, match-action tables, programmable parser,
// digest queue and the switch target itself.
#include <gtest/gtest.h>

#include <array>

#include "net/wire.hpp"
#include "p4/cms.hpp"
#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "p4/parser.hpp"
#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "p4/table.hpp"

namespace p4s::p4 {
namespace {

// ---------- RegisterArray ----------

TEST(RegisterArray, InitializesAndReadsBack) {
  RegisterArray<std::uint32_t> reg(16, 7);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(reg.read(i), 7u);
  reg.write(3, 99);
  EXPECT_EQ(reg.read(3), 99u);
}

TEST(RegisterArray, ExecuteIsReadModifyWrite) {
  RegisterArray<std::uint64_t> reg(4, 0);
  const auto result =
      reg.execute(1, [](std::uint64_t& v) { return v += 10; });
  EXPECT_EQ(result, 10u);
  EXPECT_EQ(reg.cp_read(1), 10u);
}

TEST(RegisterArray, ControlPlaneBulkReadAndClear) {
  RegisterArray<int> reg(4, 5);
  reg.write(2, 9);
  const auto all = reg.cp_read_all();
  EXPECT_EQ(all, (std::vector<int>{5, 5, 9, 5}));
  reg.cp_clear();
  EXPECT_EQ(reg.cp_read(2), 5);
}

TEST(RegisterArray, AccessCountersSeparateDataAndControl) {
  RegisterArray<int> reg(4, 0);
  reg.read(0);
  reg.write(0, 1);
  reg.execute(0, [](int& v) { return v; });
  reg.cp_read(0);
  reg.cp_write(0, 2);
  EXPECT_EQ(reg.data_plane_reads(), 1u);
  EXPECT_EQ(reg.data_plane_writes(), 1u);
  EXPECT_EQ(reg.data_plane_rmws(), 1u);
  EXPECT_EQ(reg.control_plane_reads(), 1u);
  EXPECT_EQ(reg.control_plane_writes(), 1u);
}

// ---------- CRC hashes ----------

TEST(Crc, Crc32KnownVector) {
  // CRC-32 (reflected, 0xEDB88320) of "123456789" is 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32{}(data), 0xCBF43926u);
}

TEST(Crc, Crc16KnownVector) {
  // CRC-16/ARC of "123456789" is 0xBB3D.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc16{}(data), 0xBB3D);
}

TEST(Crc, SeedsProduceIndependentStreams) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  EXPECT_NE(Crc32{0}(data), Crc32{1}(data));
  EXPECT_NE(Crc32{1}(data), Crc32{2}(data));
}

TEST(Crc, EmptyInput) {
  EXPECT_EQ(Crc32{}(std::span<const std::uint8_t>{}), 0u);
}

TEST(Hash, FlowHashDeterministicAndDirectional) {
  const net::FiveTuple t{net::ipv4(10, 0, 0, 1), net::ipv4(10, 0, 0, 2),
                         100, 200, 6};
  EXPECT_EQ(flow_hash(t), flow_hash(t));
  EXPECT_NE(flow_hash(t), flow_hash(t.reversed()));
}

TEST(Hash, FiveTupleKeyLayout) {
  const net::FiveTuple t{0x01020304, 0x05060708, 0x0A0B, 0x0C0D, 17};
  const auto key = five_tuple_key(t);
  EXPECT_EQ(key[0], 0x01);
  EXPECT_EQ(key[3], 0x04);
  EXPECT_EQ(key[4], 0x05);
  EXPECT_EQ(key[8], 0x0A);
  EXPECT_EQ(key[10], 0x0C);
  EXPECT_EQ(key[12], 17);
}

// ---------- Count-min sketch ----------

TEST(Cms, NeverUnderestimates) {
  CountMinSketch cms(3, 64);
  const net::FiveTuple t{1, 2, 3, 4, 6};
  const auto key = five_tuple_key(t);
  std::uint64_t truth = 0;
  for (int i = 0; i < 50; ++i) {
    truth += 100;
    const std::uint64_t est = cms.update(key, 100);
    EXPECT_GE(est, truth);
  }
  EXPECT_GE(cms.estimate(key), truth);
}

TEST(Cms, ExactWhenAlone) {
  CountMinSketch cms(3, 1024);
  const auto key = five_tuple_key({9, 9, 9, 9, 6});
  cms.update(key, 1460);
  cms.update(key, 1460);
  EXPECT_EQ(cms.estimate(key), 2920u);
}

TEST(Cms, UnknownKeyEstimatesZeroWhenSparse) {
  CountMinSketch cms(3, 4096);
  cms.update(five_tuple_key({1, 2, 3, 4, 6}), 1000);
  EXPECT_EQ(cms.estimate(five_tuple_key({5, 6, 7, 8, 17})), 0u);
}

TEST(Cms, ClearResets) {
  CountMinSketch cms(2, 64);
  const auto key = five_tuple_key({1, 2, 3, 4, 6});
  cms.update(key, 5);
  cms.clear();
  EXPECT_EQ(cms.estimate(key), 0u);
}

TEST(Cms, DimensionsReported) {
  CountMinSketch cms(4, 512);
  EXPECT_EQ(cms.depth(), 4u);
  EXPECT_EQ(cms.width(), 512u);
}

// ---------- Match-action table ----------

TEST(Table, InsertLookupErase) {
  ExactMatchTable<std::uint32_t, int> table;
  EXPECT_FALSE(table.lookup(5).has_value());  // miss, no default
  table.insert(5, 50);
  EXPECT_EQ(table.lookup(5).value(), 50);
  EXPECT_TRUE(table.erase(5));
  EXPECT_FALSE(table.erase(5));
  EXPECT_FALSE(table.lookup(5).has_value());
}

TEST(Table, DefaultActionOnMiss) {
  ExactMatchTable<std::uint32_t, int> table;
  table.set_default(-1);
  EXPECT_EQ(table.lookup(5).value(), -1);
  table.insert(5, 50);
  EXPECT_EQ(table.lookup(5).value(), 50);
}

TEST(Table, CapacityEnforced) {
  ExactMatchTable<std::uint32_t, int> table(2);
  EXPECT_TRUE(table.insert(1, 1));
  EXPECT_TRUE(table.insert(2, 2));
  EXPECT_FALSE(table.insert(3, 3));     // full
  EXPECT_TRUE(table.insert(1, 10));     // update in place still allowed
  EXPECT_EQ(table.lookup(1).value(), 10);
  EXPECT_EQ(table.size(), 2u);
}

TEST(Table, HitCountersTrack) {
  ExactMatchTable<std::uint32_t, int> table;
  table.insert(1, 1);
  table.lookup(1);
  table.lookup(2);
  EXPECT_EQ(table.lookups(), 2u);
  EXPECT_EQ(table.hits(), 1u);
}

// ---------- Parser ----------

PacketContext make_ctx(const net::Packet& pkt,
                       std::array<std::uint8_t, net::kMaxHeaderBytes>& buf) {
  const std::size_t len = net::serialize_headers(pkt, buf);
  PacketContext ctx;
  ctx.data = std::span<const std::uint8_t>(buf.data(), len);
  return ctx;
}

TEST(Parser, ExtractsTcp) {
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const net::Packet pkt = net::make_tcp_packet(
      net::ipv4(1, 1, 1, 1), net::ipv4(2, 2, 2, 2), 10, 20, 777, 888,
      net::tcpflags::kSyn, 0, 1 << 16);
  PacketContext ctx = make_ctx(pkt, buf);
  Parser parser;
  EXPECT_EQ(parser.parse(ctx), Parser::Result::kAccept);
  EXPECT_TRUE(ctx.hdr.ipv4_valid);
  ASSERT_TRUE(ctx.hdr.tcp_valid);
  EXPECT_FALSE(ctx.hdr.udp_valid);
  EXPECT_EQ(ctx.hdr.tcp.seq, 777u);
  EXPECT_EQ(ctx.hdr.tcp.flags, net::tcpflags::kSyn);
  EXPECT_EQ(parser.stats().accepted, 1u);
}

TEST(Parser, ExtractsUdpAndIcmp) {
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  Parser parser;
  PacketContext u = make_ctx(net::make_udp_packet(1, 2, 7, 8, 10), buf);
  EXPECT_EQ(parser.parse(u), Parser::Result::kAccept);
  EXPECT_TRUE(u.hdr.udp_valid);
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf2{};
  PacketContext ic =
      make_ctx(net::make_icmp_packet(1, 2, 8, 44, 2, 56), buf2);
  EXPECT_EQ(parser.parse(ic), Parser::Result::kAccept);
  EXPECT_TRUE(ic.hdr.icmp_valid);
  EXPECT_EQ(ic.hdr.icmp.ident, 44);
}

TEST(Parser, RejectsTruncatedAndGarbage) {
  Parser parser;
  const std::uint8_t garbage[] = {0xDE, 0xAD};
  PacketContext ctx;
  ctx.data = garbage;
  EXPECT_EQ(parser.parse(ctx), Parser::Result::kReject);
  EXPECT_EQ(parser.stats().rejected, 1u);
}

TEST(Parser, RejectsTcpWithTruncatedL4) {
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const net::Packet pkt =
      net::make_tcp_packet(1, 2, 3, 4, 0, 0, 0, 0, 0);
  const std::size_t len = net::serialize_headers(pkt, buf);
  PacketContext ctx;
  ctx.data = std::span<const std::uint8_t>(buf.data(), len - 5);
  Parser parser;
  EXPECT_EQ(parser.parse(ctx), Parser::Result::kReject);
}

TEST(Parser, UnknownL4AcceptedAsIpv4Only) {
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  net::Packet pkt = net::make_udp_packet(1, 2, 3, 4, 0);
  const std::size_t len = net::serialize_headers(pkt, buf);
  buf[net::kEthernetHeaderBytes + 9] = 47;  // GRE (the parser
  // does not verify the IPv4 checksum)
  PacketContext ctx;
  ctx.data = std::span<const std::uint8_t>(buf.data(), len);
  Parser parser;
  EXPECT_EQ(parser.parse(ctx), Parser::Result::kAccept);
  EXPECT_TRUE(ctx.hdr.ipv4_valid);
  EXPECT_FALSE(ctx.hdr.udp_valid);
  EXPECT_FALSE(ctx.hdr.tcp_valid);
}

// ---------- Digest queue ----------

TEST(DigestQueue, EmitAndDrain) {
  DigestQueue<int> q(8);
  q.emit(1);
  q.emit(2);
  EXPECT_EQ(q.pending(), 2u);
  const auto drained = q.drain();
  EXPECT_EQ(drained, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.drain().empty());
}

TEST(DigestQueue, DropsWhenFull) {
  DigestQueue<int> q(2);
  q.emit(1);
  q.emit(2);
  q.emit(3);
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.drain().size(), 2u);
}

// ---------- P4Switch target ----------

struct CountingProgram : P4Program {
  int tcp = 0, ingress_port0 = 0, ingress_port1 = 0;
  SimTime last_ts = 0;
  void ingress(PacketContext& ctx) override {
    if (ctx.hdr.tcp_valid) ++tcp;
    if (ctx.meta.ingress_port == P4Switch::kIngressTapPort) ++ingress_port0;
    if (ctx.meta.ingress_port == P4Switch::kEgressTapPort) ++ingress_port1;
    last_ts = ctx.meta.ingress_ts;
  }
};

TEST(P4Switch, RoutesMirrorPointsToPorts) {
  sim::Simulation sim;
  CountingProgram program;
  P4Switch sw(sim, "t");
  sw.load_program(program);
  const net::Packet pkt =
      net::make_tcp_packet(1, 2, 3, 4, 0, 0, net::tcpflags::kAck, 100, 0);
  sim.at(units::milliseconds(5), [&]() {
    sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
    sw.on_mirrored(pkt, net::MirrorPoint::kEgress);
  });
  sim.run();
  EXPECT_EQ(program.tcp, 2);
  EXPECT_EQ(program.ingress_port0, 1);
  EXPECT_EQ(program.ingress_port1, 1);
  EXPECT_EQ(program.last_ts, units::milliseconds(5));
  EXPECT_EQ(sw.processed_pkts(), 2u);
  EXPECT_EQ(sw.parse_errors(), 0u);
}

TEST(P4Switch, NoProgramLoadedIsSafe) {
  sim::Simulation sim;
  P4Switch sw(sim, "t");
  sw.on_mirrored(net::make_udp_packet(1, 2, 3, 4, 9),
                 net::MirrorPoint::kIngress);
  EXPECT_EQ(sw.processed_pkts(), 1u);
}

}  // namespace
}  // namespace p4s::p4
