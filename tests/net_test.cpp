// Unit tests: queues, links, ports, switches, hosts, TAPs, impairments.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "net/host.hpp"
#include "net/impairment.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "net/switch.hpp"
#include "net/tap.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {
namespace {

Packet data_packet(std::uint32_t payload = 1460) {
  return make_tcp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 1000, 2000,
                         1, 0, tcpflags::kAck, payload, 65535);
}

/// Collects delivered packets with their delivery times.
class Collector : public PacketSink {
 public:
  explicit Collector(sim::Simulation& sim) : sim_(sim) {}
  void on_packet(const Packet& pkt) override {
    packets.push_back(pkt);
    times.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<SimTime> times;

 private:
  sim::Simulation& sim_;
};

// ---------- DropTailQueue ----------

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(1 << 20);
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet p = data_packet(100 + i);
    EXPECT_TRUE(q.try_enqueue(p, i));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto e = q.dequeue();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pkt.payload_bytes(), 100 + i);
    EXPECT_EQ(e->enqueued_at, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  const Packet p = data_packet();
  DropTailQueue q(2ULL * p.wire_bytes());
  EXPECT_TRUE(q.try_enqueue(p, 0));
  EXPECT_TRUE(q.try_enqueue(p, 0));
  EXPECT_FALSE(q.try_enqueue(p, 0));  // over capacity -> drop-tail
  EXPECT_EQ(q.stats().dropped_pkts, 1u);
  EXPECT_EQ(q.stats().enqueued_pkts, 2u);
  EXPECT_EQ(q.stats().dropped_bytes, p.wire_bytes());
}

TEST(DropTailQueue, OccupancyAccountsWireBytes) {
  const Packet p = data_packet();
  DropTailQueue q(1 << 20);
  q.try_enqueue(p, 0);
  EXPECT_EQ(q.occupancy_bytes(), p.wire_bytes());
  EXPECT_DOUBLE_EQ(q.fill_fraction(),
                   static_cast<double>(p.wire_bytes()) / (1 << 20));
  q.dequeue();
  EXPECT_EQ(q.occupancy_bytes(), 0u);
}

TEST(DropTailQueue, PeakTracksHighWater) {
  const Packet p = data_packet();
  DropTailQueue q(10ULL * p.wire_bytes());
  for (int i = 0; i < 3; ++i) q.try_enqueue(p, 0);
  q.dequeue();
  q.dequeue();
  EXPECT_EQ(q.stats().peak_bytes, 3ULL * p.wire_bytes());
}

TEST(DropTailQueue, ZeroCapacityDropsEverything) {
  DropTailQueue q(0);
  EXPECT_FALSE(q.try_enqueue(data_packet(), 0));
  EXPECT_DOUBLE_EQ(q.fill_fraction(), 0.0);
}

// ---------- Link ----------

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::mbps(100), units::milliseconds(5));
  link.set_sink(sink);
  const Packet p = data_packet();
  sim.at(0, [&]() { link.transmit(p); });
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  const SimTime expected =
      units::transmission_time(p.wire_bytes(), units::mbps(100)) +
      units::milliseconds(5);
  EXPECT_EQ(sink.times[0], expected);
}

TEST(Link, TransmitReturnsSerializationEnd) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::mbps(10), 0);
  link.set_sink(sink);
  const Packet p = data_packet();
  SimTime done = 0;
  sim.at(0, [&]() { done = link.transmit(p); });
  sim.run_until(0);
  EXPECT_EQ(done, units::transmission_time(p.wire_bytes(), units::mbps(10)));
}

TEST(Link, LossRateDropsDeterministically) {
  sim::Simulation sim(123);
  Collector sink(sim);
  Link link(sim, units::gbps(10), 0);
  link.set_sink(sink);
  link.set_loss_rate(0.5);
  sim.at(0, [&]() {
    for (int i = 0; i < 1000; ++i) link.transmit(data_packet());
  });
  sim.run();
  EXPECT_EQ(link.delivered_pkts() + link.lost_pkts(), 1000u);
  EXPECT_NEAR(static_cast<double>(link.lost_pkts()), 500.0, 60.0);
  EXPECT_EQ(sink.packets.size(), link.delivered_pkts());
}

TEST(Link, RateChangeAffectsSubsequentTransmissions) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::mbps(100), 0);
  link.set_sink(sink);
  const Packet p = data_packet();
  SimTime t1 = 0, t2 = 0;
  sim.at(0, [&]() { t1 = link.transmit(p); });
  sim.at(units::seconds(1), [&]() {
    link.set_rate(units::mbps(10));
    t2 = link.transmit(p) - units::seconds(1);
  });
  sim.run();
  EXPECT_EQ(t2, 10 * t1);
}

// ---------- OutputPort ----------

TEST(OutputPort, SerializesBackToBack) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::mbps(100), 0);
  link.set_sink(sink);
  OutputPort port(sim, 1 << 20, link);
  const Packet p = data_packet();
  sim.at(0, [&]() {
    port.enqueue(p);
    port.enqueue(p);
    port.enqueue(p);
  });
  sim.run();
  ASSERT_EQ(sink.times.size(), 3u);
  const SimTime tx = units::transmission_time(p.wire_bytes(),
                                              units::mbps(100));
  EXPECT_EQ(sink.times[0], tx);
  EXPECT_EQ(sink.times[1], 2 * tx);
  EXPECT_EQ(sink.times[2], 3 * tx);
}

TEST(OutputPort, EgressHookReportsQueueingDelay) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::mbps(100), 0);
  link.set_sink(sink);
  OutputPort port(sim, 1 << 20, link);
  std::vector<SimTime> delays;
  port.set_egress_hook(
      [&](const Packet&, SimTime d) { delays.push_back(d); });
  const Packet p = data_packet();
  sim.at(0, [&]() {
    port.enqueue(p);
    port.enqueue(p);
  });
  sim.run();
  const SimTime tx = units::transmission_time(p.wire_bytes(),
                                              units::mbps(100));
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], tx);      // store-and-forward time only
  EXPECT_EQ(delays[1], 2 * tx);  // waited one serialization
}

TEST(OutputPort, DropsWhenQueueFull) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::kbps(64), 0);
  link.set_sink(sink);
  const Packet p = data_packet();
  OutputPort port(sim, p.wire_bytes(), link);  // room for exactly one
  sim.at(0, [&]() {
    port.enqueue(p);  // starts transmitting (bypasses queue occupancy)
    port.enqueue(p);  // queued
    port.enqueue(p);  // dropped
  });
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(port.queue().stats().dropped_pkts, 1u);
}

// ---------- LegacySwitch ----------

struct SwitchFixture {
  sim::Simulation sim;
  Collector sink_a{sim};
  Collector sink_b{sim};
  Link link_a{sim, units::gbps(1), 0};
  Link link_b{sim, units::gbps(1), 0};
  OutputPort port_a{sim, 1 << 20, link_a};
  OutputPort port_b{sim, 1 << 20, link_b};
  LegacySwitch sw{"sw"};

  SwitchFixture() {
    link_a.set_sink(sink_a);
    link_b.set_sink(sink_b);
    sw.add_port(port_a);
    sw.add_port(port_b);
  }
};

TEST(LegacySwitch, RoutesByExactMatch) {
  SwitchFixture f;
  f.sw.route(ipv4(10, 0, 0, 2), 0);
  f.sw.route(ipv4(10, 0, 0, 3), 1);
  Packet to_b = data_packet();
  to_b.ip.dst = ipv4(10, 0, 0, 3);
  f.sim.at(0, [&]() {
    f.sw.on_packet(data_packet());  // dst 10.0.0.2 -> port 0
    f.sw.on_packet(to_b);           // -> port 1
  });
  f.sim.run();
  EXPECT_EQ(f.sink_a.packets.size(), 1u);
  EXPECT_EQ(f.sink_b.packets.size(), 1u);
  EXPECT_EQ(f.sw.forwarded_pkts(), 2u);
}

TEST(LegacySwitch, DefaultRouteCatchesUnknown) {
  SwitchFixture f;
  f.sw.set_default_route(1);
  f.sim.at(0, [&]() { f.sw.on_packet(data_packet()); });
  f.sim.run();
  EXPECT_EQ(f.sink_b.packets.size(), 1u);
}

TEST(LegacySwitch, DropsUnroutable) {
  SwitchFixture f;
  f.sim.at(0, [&]() { f.sw.on_packet(data_packet()); });
  f.sim.run();
  EXPECT_EQ(f.sw.unroutable_pkts(), 1u);
  EXPECT_EQ(f.sink_a.packets.size(), 0u);
}

TEST(LegacySwitch, DecrementsTtlAndDropsExpired) {
  SwitchFixture f;
  f.sw.route(ipv4(10, 0, 0, 2), 0);
  Packet p = data_packet();
  p.ip.ttl = 2;  // survives this hop with ttl 1
  Packet dying = data_packet();
  dying.ip.ttl = 1;  // expires in transit (RFC 1812)
  f.sim.at(0, [&]() {
    f.sw.on_packet(p);
    f.sw.on_packet(dying);
  });
  f.sim.run();
  ASSERT_EQ(f.sink_a.packets.size(), 1u);
  EXPECT_EQ(f.sink_a.packets[0].ip.ttl, 1);
  EXPECT_EQ(f.sw.ttl_expired_pkts(), 1u);
  // No router address configured: expired silently, no ICMP generated.
  EXPECT_EQ(f.sink_b.packets.size(), 0u);
}

TEST(LegacySwitch, TtlExpiryGeneratesTimeExceededWhenAddressed) {
  SwitchFixture f;
  f.sw.set_address(ipv4(10, 0, 0, 1));
  // Route back toward the probe's source via port 1.
  f.sw.route(ipv4(10, 0, 0, 1), 1);
  Packet probe = make_icmp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 8,
                                  77, 3, 28);
  probe.ip.ttl = 1;
  f.sim.at(0, [&]() { f.sw.on_packet(probe); });
  f.sim.run();
  ASSERT_EQ(f.sink_b.packets.size(), 1u);
  const Packet& reply = f.sink_b.packets[0];
  ASSERT_TRUE(reply.is_icmp());
  EXPECT_EQ(reply.icmp().type, 11);
  EXPECT_EQ(reply.ip.src, ipv4(10, 0, 0, 1));
  EXPECT_EQ(reply.icmp().ident, 77);  // probe identity preserved
  EXPECT_EQ(reply.icmp().seq, 3);
}

TEST(LegacySwitch, NoIcmpErrorAboutIcmpError) {
  SwitchFixture f;
  f.sw.set_address(ipv4(10, 0, 0, 1));
  f.sw.set_default_route(1);
  Packet error = make_icmp_packet(ipv4(9, 9, 9, 9), ipv4(10, 0, 0, 2), 11,
                                  1, 1, 28);
  error.ip.ttl = 1;
  f.sim.at(0, [&]() { f.sw.on_packet(error); });
  f.sim.run();
  EXPECT_EQ(f.sink_b.packets.size(), 0u);  // dropped silently
  EXPECT_EQ(f.sw.ttl_expired_pkts(), 1u);
}

TEST(LegacySwitch, UnrouteFallsBackToDefault) {
  SwitchFixture f;
  f.sw.route(ipv4(10, 0, 0, 2), 0);
  f.sw.set_default_route(1);
  f.sw.unroute(ipv4(10, 0, 0, 2));
  f.sim.at(0, [&]() { f.sw.on_packet(data_packet()); });
  f.sim.run();
  EXPECT_EQ(f.sink_b.packets.size(), 1u);
}

TEST(LegacySwitch, IngressHookSeesEveryArrival) {
  SwitchFixture f;
  int hook_count = 0;
  f.sw.set_ingress_hook([&](const Packet&) { ++hook_count; });
  f.sim.at(0, [&]() {
    f.sw.on_packet(data_packet());  // unroutable, still hooked
  });
  f.sim.run();
  EXPECT_EQ(hook_count, 1);
}

// ---------- Host ----------

TEST(Host, DemuxesByProtocolAndPort) {
  sim::Simulation sim;
  Host host(sim, "h", ipv4(10, 0, 0, 2));
  int tcp_hits = 0, udp_hits = 0;
  host.bind(Protocol::kTcp, 2000, [&](const Packet&) { ++tcp_hits; });
  host.bind(Protocol::kUdp, 2000, [&](const Packet&) { ++udp_hits; });
  host.on_packet(data_packet());  // tcp dst port 2000
  host.on_packet(make_udp_packet(ipv4(1, 1, 1, 1), host.ip(), 9, 2000, 10));
  host.on_packet(make_udp_packet(ipv4(1, 1, 1, 1), host.ip(), 9, 999, 10));
  EXPECT_EQ(tcp_hits, 1);
  EXPECT_EQ(udp_hits, 1);
  EXPECT_EQ(host.received_pkts(), 3u);
}

TEST(Host, IgnoresPacketsForOtherAddresses) {
  sim::Simulation sim;
  Host host(sim, "h", ipv4(10, 0, 0, 99));
  int hits = 0;
  host.bind(Protocol::kTcp, 2000, [&](const Packet&) { ++hits; });
  host.on_packet(data_packet());  // dst is 10.0.0.2, not ours
  EXPECT_EQ(hits, 0);
}

TEST(Host, UnbindStopsDelivery) {
  sim::Simulation sim;
  Host host(sim, "h", ipv4(10, 0, 0, 2));
  int hits = 0;
  host.bind(Protocol::kTcp, 2000, [&](const Packet&) { ++hits; });
  host.unbind(Protocol::kTcp, 2000);
  host.on_packet(data_packet());
  EXPECT_EQ(hits, 0);
}

TEST(Host, SendStampsIncreasingIpId) {
  sim::Simulation sim;
  Collector sink(sim);
  Link link(sim, units::gbps(1), 0);
  link.set_sink(sink);
  OutputPort port(sim, 1 << 20, link);
  Host host(sim, "h", ipv4(10, 0, 0, 1));
  host.attach_uplink(port);
  sim.at(0, [&]() {
    host.send(data_packet());
    host.send(data_packet());
  });
  sim.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.packets[1].ip.id,
            static_cast<std::uint16_t>(sink.packets[0].ip.id + 1));
}

TEST(Host, IcmpEchoAutoReply) {
  sim::Simulation sim;
  Host alice(sim, "alice", ipv4(10, 0, 0, 1));
  Host bob(sim, "bob", ipv4(10, 0, 0, 2));
  // Wire the two hosts back-to-back.
  Link ab(sim, units::gbps(1), units::microseconds(10));
  Link ba(sim, units::gbps(1), units::microseconds(10));
  ab.set_sink(bob);
  ba.set_sink(alice);
  OutputPort pa(sim, 1 << 20, ab), pb(sim, 1 << 20, ba);
  alice.attach_uplink(pa);
  bob.attach_uplink(pb);

  int replies = 0;
  alice.bind(Protocol::kIcmp, 7, [&](const Packet& pkt) {
    EXPECT_EQ(pkt.icmp().type, 0);
    EXPECT_EQ(pkt.icmp().seq, 5);
    ++replies;
  });
  sim.at(0, [&]() {
    alice.send(make_icmp_packet(alice.ip(), bob.ip(), 8, 7, 5, 56));
  });
  sim.run();
  EXPECT_EQ(replies, 1);
}

TEST(Host, EphemeralPortsDoNotRepeatQuickly) {
  sim::Simulation sim;
  Host host(sim, "h", ipv4(10, 0, 0, 1));
  const std::uint16_t first = host.allocate_port();
  const std::uint16_t second = host.allocate_port();
  EXPECT_NE(first, second);
  EXPECT_GE(first, 49152);
}

// ---------- TAP pair ----------

TEST(OpticalTapPair, MirrorsIngressAndEgressWithEqualLatency) {
  sim::Simulation sim;
  struct Mirror : MirrorSink {
    std::vector<std::pair<MirrorPoint, SimTime>> events;
    sim::Simulation& sim;
    explicit Mirror(sim::Simulation& s) : sim(s) {}
    void on_mirrored(const Packet&, MirrorPoint point) override {
      events.emplace_back(point, sim.now());
    }
  } mirror(sim);

  Collector sink(sim);
  Link link(sim, units::mbps(100), 0);
  link.set_sink(sink);
  OutputPort port(sim, 1 << 20, link);
  LegacySwitch sw("core");
  sw.add_port(port);
  sw.route(ipv4(10, 0, 0, 2), 0);

  OpticalTapPair taps(sim, mirror, units::microseconds(3));
  taps.attach(sw, port);

  const Packet p = data_packet();
  sim.at(0, [&]() { sw.on_packet(p); });
  sim.run();

  ASSERT_EQ(mirror.events.size(), 2u);
  EXPECT_EQ(mirror.events[0].first, MirrorPoint::kIngress);
  EXPECT_EQ(mirror.events[1].first, MirrorPoint::kEgress);
  // Copy-pair time difference == time in switch (tap latency cancels).
  const SimTime tx = units::transmission_time(p.wire_bytes(),
                                              units::mbps(100));
  EXPECT_EQ(mirror.events[1].second - mirror.events[0].second, tx);
  EXPECT_EQ(taps.mirrored_pkts(), 2u);
}

TEST(OpticalTapPair, WireBytesMatchFreshSerializationOfEachCopy) {
  // The TAP serializes each packet once and patches the TTL for the
  // egress copy (the core switch decremented it in between). Every
  // delivered byte buffer must equal a from-scratch serialization of the
  // packet as delivered — i.e. the cache + patch path is invisible.
  sim::Simulation sim;
  struct WireMirror : MirrorSink {
    std::size_t wire_deliveries = 0;
    void on_mirrored(const Packet&, MirrorPoint) override {}
    void on_mirrored_wire(const Packet& pkt,
                          std::span<const std::uint8_t> bytes,
                          MirrorPoint) override {
      ++wire_deliveries;
      std::array<std::uint8_t, kMaxHeaderBytes> fresh{};
      const std::size_t len = serialize_headers(pkt, fresh);
      ASSERT_EQ(bytes.size(), len);
      EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), fresh.begin()));
    }
  } mirror;

  Collector sink(sim);
  Link link(sim, units::mbps(100), 0);
  link.set_sink(sink);
  OutputPort port(sim, 1 << 20, link);
  LegacySwitch sw("core");
  sw.add_port(port);
  sw.route(ipv4(10, 0, 0, 2), 0);

  OpticalTapPair taps(sim, mirror, units::microseconds(3));
  taps.attach(sw, port);

  constexpr int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    sim.at(static_cast<SimTime>(i) * units::microseconds(200),
           [&sw, p = data_packet()]() { sw.on_packet(p); });
  }
  sim.run();

  EXPECT_EQ(mirror.wire_deliveries, 2u * kPackets);
  // Every egress copy reuses the ingress copy's serialization.
  EXPECT_EQ(taps.serialize_cache_hits(), static_cast<std::uint64_t>(kPackets));
}

// ---------- Impairments ----------

TEST(RandomLossGate, PassesAndDropsByProbability) {
  sim::Simulation sim(5);
  Collector sink(sim);
  RandomLossGate gate(sim, sink, 0.25);
  for (int i = 0; i < 4000; ++i) gate.on_packet(data_packet());
  EXPECT_EQ(gate.passed() + gate.dropped(), 4000u);
  EXPECT_NEAR(static_cast<double>(gate.dropped()), 1000.0, 120.0);
}

TEST(RandomLossGate, ZeroRatePassesAll) {
  sim::Simulation sim;
  Collector sink(sim);
  RandomLossGate gate(sim, sink, 0.0);
  for (int i = 0; i < 100; ++i) gate.on_packet(data_packet());
  EXPECT_EQ(gate.dropped(), 0u);
  EXPECT_EQ(sink.packets.size(), 100u);
}

TEST(MmWaveLink, BlockageDegradesAndRestoresRate) {
  sim::Simulation sim;
  Link link(sim, units::mbps(200), 0);
  MmWaveLink::Config config;
  config.degradation_factor = 100.0;
  MmWaveLink mm(sim, link, config);
  mm.schedule_blockage(units::seconds(1), units::seconds(2));
  sim.run_until(units::milliseconds(1500));
  EXPECT_TRUE(mm.blocked());
  EXPECT_EQ(link.rate_bps(), units::mbps(200) / 100);
  EXPECT_GT(link.loss_rate(), 0.0);
  sim.run_until(units::seconds(4));
  EXPECT_FALSE(mm.blocked());
  EXPECT_EQ(link.rate_bps(), units::mbps(200));
  EXPECT_DOUBLE_EQ(link.loss_rate(), 0.0);
}

TEST(MmWaveLink, RssiDistinguishesStates) {
  sim::Simulation sim;
  Link link(sim, units::mbps(200), 0);
  MmWaveLink mm(sim, link);
  mm.schedule_blockage(units::seconds(1), units::seconds(2));
  sim.run_until(units::milliseconds(500));
  const double clear = mm.rssi_dbm();
  sim.run_until(units::milliseconds(2000));  // well past the ramp
  const double blocked = mm.rssi_dbm();
  EXPECT_GT(clear, -50.0);
  EXPECT_LT(blocked, -70.0);
}

}  // namespace
}  // namespace p4s::net
