// Unit tests: util module (JSON, statistics, CSV, units, logging).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace p4s::util {
namespace {

// ---------- Json construction & type queries ----------

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_FALSE(j.is_object());
}

TEST(Json, BoolRoundTrip) {
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_FALSE(Json(false).as_bool());
  EXPECT_EQ(Json(true).dump(), "true");
}

TEST(Json, IntPreserves64Bits) {
  const std::int64_t big = 1234567890123456789LL;
  Json j(big);
  EXPECT_TRUE(j.is_int());
  EXPECT_EQ(j.as_int(), big);
  EXPECT_EQ(Json::parse(j.dump()).as_int(), big);
}

TEST(Json, UnsignedConstruction) {
  Json j(42u);
  EXPECT_TRUE(j.is_int());
  EXPECT_EQ(j.as_int(), 42);
}

TEST(Json, DoubleRoundTrip) {
  Json j(3.25);
  EXPECT_TRUE(j.is_double());
  EXPECT_DOUBLE_EQ(Json::parse(j.dump()).as_double(), 3.25);
}

TEST(Json, IntCoercesToDouble) {
  EXPECT_DOUBLE_EQ(Json(7).as_double(), 7.0);
}

TEST(Json, DoubleCoercesToInt) {
  EXPECT_EQ(Json(7.9).as_int(), 7);
}

TEST(Json, StringEscaping) {
  Json j("line\n\"quoted\"\tback\\slash");
  const std::string dumped = j.dump();
  EXPECT_EQ(Json::parse(dumped).as_string(), j.as_string());
}

TEST(Json, ControlCharactersEscaped) {
  std::string s = "a";
  s.push_back('\x01');
  Json j(s);
  EXPECT_NE(j.dump().find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), s);
}

TEST(Json, ObjectAccess) {
  Json j = Json::object();
  j["alpha"] = 1;
  j["beta"] = "two";
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at("alpha").as_int(), 1);
  EXPECT_TRUE(j.contains("beta"));
  EXPECT_FALSE(j.contains("gamma"));
  EXPECT_THROW(j.at("gamma"), JsonError);
}

TEST(Json, FindReturnsNulloptForMissing) {
  Json j = Json::object();
  j["x"] = 5;
  EXPECT_TRUE(j.find("x").has_value());
  EXPECT_FALSE(j.find("y").has_value());
  EXPECT_FALSE(Json(3).find("x").has_value());
}

TEST(Json, ArrayAccess) {
  Json j = Json::array();
  j.as_array().push_back(Json(1));
  j.as_array().push_back(Json("two"));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.as_array()[1].as_string(), "two");
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_int(), JsonError);
  EXPECT_THROW(Json("x").as_bool(), JsonError);
  EXPECT_THROW(Json(1).size(), JsonError);
}

TEST(Json, DeterministicKeyOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  EXPECT_EQ(j.dump(), R"({"alpha":2,"zebra":1})");
}

TEST(Json, PrettyPrint) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(Json, Equality) {
  Json a = Json::object();
  a["k"] = 1;
  Json b = Json::object();
  b["k"] = 1;
  EXPECT_TRUE(a == b);
  b["k"] = 2;
  EXPECT_FALSE(a == b);
}

// ---------- Json parsing ----------

TEST(JsonParse, NestedDocument) {
  const Json j = Json::parse(
      R"({"flow":{"src_ip":"10.0.0.1","ports":[1,2,3]},"ok":true,)"
      R"("rate":1.5e3,"none":null})");
  EXPECT_EQ(j.at("flow").at("src_ip").as_string(), "10.0.0.1");
  EXPECT_EQ(j.at("flow").at("ports").as_array()[2].as_int(), 3);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(j.at("rate").as_double(), 1500.0);
  EXPECT_TRUE(j.at("none").is_null());
}

TEST(JsonParse, WhitespaceTolerant) {
  const Json j = Json::parse("  {  \"a\" : [ 1 , 2 ]\n}\t");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(Json::parse("{}").size(), 0u);
  EXPECT_EQ(Json::parse("[]").size(), 0u);
}

TEST(JsonParse, NegativeAndExponent) {
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e-3").as_double(), -0.0015);
}

TEST(JsonParse, IntegerOverflowBecomesDouble) {
  const Json j = Json::parse("99999999999999999999999999");
  EXPECT_TRUE(j.is_double());
}

TEST(JsonParse, UnicodeEscape) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");
}

TEST(JsonParse, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "tru", "nul", "{\"a\" 1}",
        "\"unterminated", "[1 2]", "{\"a\":1} trailing", "{'a':1}",
        "+1", "01x"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << "input: " << bad;
  }
}

TEST(JsonParse, DeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  Json j = Json::parse(deep);
  for (int i = 0; i < 100; ++i) {
    Json inner = j.as_array()[0];  // copy out before reassigning
    j = std::move(inner);
  }
  EXPECT_EQ(j.as_int(), 1);
}

// ---------- Stats ----------

TEST(Stats, JainAllEqualIsOne) {
  const double xs[] = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs).value(), 1.0);
}

TEST(Stats, JainSingleFlowIsOne) {
  const double xs[] = {123.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs).value(), 1.0);
}

TEST(Stats, JainWorstCase) {
  // One flow hogging everything among N: F = 1/N.
  const double xs[] = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs).value(), 0.25);
}

TEST(Stats, JainKnownValue) {
  // F = (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  const double xs[] = {1.0, 2.0, 3.0};
  EXPECT_NEAR(jain_fairness(xs).value(), 36.0 / 42.0, 1e-12);
}

TEST(Stats, JainUndefinedWhenIdle) {
  // No allocations, or nothing actually flowing: the index is undefined
  // (an idle link must not report "perfectly fair").
  EXPECT_FALSE(jain_fairness({}).has_value());
  const double zeros[] = {0.0, 0.0};
  EXPECT_FALSE(jain_fairness(zeros).has_value());
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, RunningEmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Stats, RunningReset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Stats, PercentileClampsQ) {
  std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 2.0), 3.0);
}

TEST(Stats, PercentileDuplicatesAndUnsortedInput) {
  // Sorted: {1, 2, 5, 5, 5}.
  std::vector<double> xs = {5, 1, 5, 5, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  // Interpolating between equal ranks stays exact.
  EXPECT_DOUBLE_EQ(percentile({4.0, 4.0}, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 4.0, 8.0}, 0.25), 4.0);
}

// ---------- CSV ----------

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.cell(std::uint64_t{1}).cell("x").end_row();
  csv.cell(2.5).cell(std::int64_t{-3}).end_row();
  EXPECT_EQ(out.str(), "a,b\n1,x\n2.5,-3\n");
}

TEST(Csv, QuotingSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("has,comma").cell("has\"quote").cell("has\nnewline").end_row();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(Csv, PlainStringsUnquoted) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("plain").end_row();
  EXPECT_EQ(out.str(), "plain\n");
}

// ---------- Units ----------

TEST(Units, TimeConversions) {
  EXPECT_EQ(units::seconds(2), 2'000'000'000ULL);
  EXPECT_EQ(units::milliseconds(3), 3'000'000ULL);
  EXPECT_EQ(units::microseconds(5), 5'000ULL);
  EXPECT_DOUBLE_EQ(units::to_seconds(units::seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(units::to_milliseconds(units::milliseconds(7)), 7.0);
  EXPECT_EQ(units::seconds_f(0.5), units::milliseconds(500));
}

TEST(Units, Bandwidth) {
  EXPECT_EQ(units::gbps(10), 10'000'000'000ULL);
  EXPECT_EQ(units::mbps(100), 100'000'000ULL);
}

TEST(Units, TransmissionTime) {
  // 1500 bytes at 1 Gbps = 12 us.
  EXPECT_EQ(units::transmission_time(1500, units::gbps(1)),
            units::microseconds(12));
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(units::transmission_time(1, 8), units::seconds(1));
}

TEST(Units, BdpMatchesPaperExample) {
  // §5.4.1: 10 Gbps x 100 ms = 125 MB.
  EXPECT_EQ(units::bdp_bytes(units::gbps(10), units::milliseconds(100)),
            125'000'000ULL);
}

TEST(Units, TransmissionTimeNoOverflowJumboOnSlowLink) {
  // 9000-byte jumbo on a 1 kbps link: 72 s; must not overflow.
  EXPECT_EQ(units::transmission_time(9000, units::kbps(1)),
            units::seconds(72));
}

// ---------- Logging ----------

TEST(Logging, LevelFiltering) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& m) {
    captured.push_back(m);
  });
  set_log_level(LogLevel::kWarn);
  P4S_DEBUG() << "hidden";
  P4S_WARN() << "shown " << 42;
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "shown 42");
}

TEST(Logging, SinkRestore) {
  set_log_sink(nullptr);
  // Writing to the default sink (stderr) must not crash.
  set_log_level(LogLevel::kError);
  P4S_ERROR() << "stderr path exercised";
  set_log_level(LogLevel::kWarn);
  SUCCEED();
}

}  // namespace
}  // namespace p4s::util
