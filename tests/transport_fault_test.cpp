// Fault-schedule integration tests (Figure 9 scenario, faulty wire):
// the full MonitoringSystem runs a multi-flow transfer while scripted
// resets and stalls hit the report transport mid-run. The archiver must
// end up with exactly the documents a fault-free run produces — every
// report delivered exactly once — and the transport health counters must
// match the schedule that was injected.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/monitoring_system.hpp"

namespace p4s {
namespace {

using core::MonitoringSystem;
using core::MonitoringSystemConfig;

MonitoringSystemConfig fig9_config(bool resilient) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  config.seed = 99;
  config.transport.resilient = resilient;
  // Tight retry policy so the run drains quickly after the last fault.
  config.transport.sink.ack_timeout = units::milliseconds(100);
  config.transport.sink.backoff.base = units::milliseconds(20);
  config.transport.sink.backoff.max = units::milliseconds(500);
  config.transport.sink.health_interval = 0;  // compare measurement docs
  return config;
}

struct RunResult {
  std::uint64_t archived = 0;
  std::uint64_t emitted = 0;
  std::set<std::int64_t> xmit_seqs;
  std::vector<std::string> indices;
  cp::ResilientReportSink::Health health;
  std::uint64_t reconnects = 0;
  std::uint64_t duplicates_dropped = 0;
};

// Run the Figure-9-style scenario (two staggered flows over the 100 Mbps
// bottleneck, second joins mid-run) with an optional fault schedule.
RunResult run_fig9(bool inject_faults) {
  MonitoringSystem system(fig9_config(/*resilient=*/true));
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  if (inject_faults) {
    auto& injector = system.fault_injector();
    injector.reset_at(units::seconds(3));
    injector.stall_at(units::seconds(5), units::milliseconds(800));
    injector.reset_at(units::seconds(7));
  }
  system.start();
  auto& flow0 = system.add_transfer(0);
  flow0.start_at(units::seconds(1));
  flow0.stop_at(units::seconds(8));
  auto& flow1 = system.add_transfer(1);
  flow1.start_at(units::seconds(4));  // joins while faults are active
  flow1.stop_at(units::seconds(8));
  // The aggregate report ticks forever, so at any horizon one report
  // would still be mid-wire. Quiesce the report stream near the end
  // (interval -> 100 s) and run well past the last fault so the wire and
  // retry queues drain completely before we measure.
  system.simulation().at(units::seconds(11), [&system]() {
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 0.01");
  });
  system.run_until(units::seconds(14));

  RunResult r;
  auto& archiver = system.psonar().archiver();
  r.archived = archiver.total_docs();
  r.indices = archiver.indices();
  for (const auto& index : r.indices) {
    for (const auto& doc : archiver.search(index)) {
      if (doc.contains("@xmit_seq")) {
        r.xmit_seqs.insert(doc.at("@xmit_seq").as_int());
      }
    }
  }
  r.health = system.report_sink().health();
  r.emitted = r.health.emitted;
  r.reconnects = system.report_sink().reconnects();
  r.duplicates_dropped = system.psonar().logstash().duplicates_dropped();
  return r;
}

TEST(TransportFault, Fig9ScheduleLosesNothing) {
  const RunResult clean = run_fig9(/*inject_faults=*/false);
  const RunResult faulty = run_fig9(/*inject_faults=*/true);

  // Same seed, same workload: the control plane emits the same reports.
  ASSERT_GT(clean.emitted, 0u);
  EXPECT_EQ(faulty.emitted, clean.emitted);

  // The faulty wire delivered every one of them exactly once.
  EXPECT_EQ(faulty.archived, clean.archived);
  EXPECT_EQ(faulty.xmit_seqs, clean.xmit_seqs);
  EXPECT_EQ(faulty.xmit_seqs.size(),
            static_cast<std::size_t>(faulty.emitted));
  EXPECT_EQ(faulty.indices, clean.indices);

  // Exactly-once end to end: nothing dropped, everything acked.
  EXPECT_EQ(faulty.health.dropped_overflow, 0u);
  EXPECT_EQ(faulty.health.acked, faulty.emitted);
  EXPECT_EQ(faulty.health.queued, 0u);

  // ...and it genuinely went through the faults, not around them.
  EXPECT_EQ(faulty.reconnects, 2u);
  EXPECT_GT(faulty.health.retried, 0u);
  EXPECT_GT(faulty.health.retried + faulty.duplicates_dropped, 0u);

  // The clean run saw a perfect wire.
  EXPECT_EQ(clean.reconnects, 0u);
  EXPECT_EQ(clean.health.retried, 0u);
  EXPECT_EQ(clean.health.dropped_overflow, 0u);
}

TEST(TransportFault, InjectorCountersMatchSchedule) {
  MonitoringSystem system(fig9_config(/*resilient=*/true));
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");
  auto& injector = system.fault_injector();
  injector.reset_at(units::seconds(2));
  injector.reset_at(units::seconds(4));
  injector.stall_at(units::seconds(5), units::milliseconds(200));
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::seconds(1));
  flow.stop_at(units::seconds(6));
  system.simulation().at(units::seconds(8), [&system]() {
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 0.01");
  });
  system.run_until(units::seconds(12));

  EXPECT_EQ(injector.resets_injected(), 2u);
  EXPECT_EQ(injector.stalls_injected(), 1u);
  EXPECT_EQ(system.report_channel().stats().resets, 2u);
  EXPECT_EQ(system.report_channel().stats().stalls, 1u);
  EXPECT_EQ(system.report_sink().reconnects(), 2u);
  // Conservation: every emitted report is archived or still accounted.
  const auto& h = system.report_sink().health();
  EXPECT_EQ(h.acked + h.dropped_overflow + h.queued, h.emitted);
  EXPECT_EQ(h.queued, 0u);
}

TEST(TransportFault, ResilientMatchesLegacyWireWhenFaultFree) {
  // With no faults, the resilient path must archive exactly what the
  // legacy direct wire archives for the same seeded workload.
  auto run = [](bool resilient) {
    MonitoringSystem system(fig9_config(resilient));
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 2");
    system.start();
    auto& flow = system.add_transfer(0);
    flow.start_at(units::seconds(1));
    flow.stop_at(units::seconds(6));
    system.simulation().at(units::seconds(8), [&system]() {
      system.psonar().psconfig().execute(
          "psconfig config-P4 --samples_per_second 0.01");
    });
    system.run_until(units::seconds(12));
    return std::pair(system.psonar().archiver().total_docs(),
                     system.psonar().archiver().indices());
  };
  const auto legacy = run(false);
  const auto resilient = run(true);
  EXPECT_GT(legacy.first, 0u);
  EXPECT_EQ(resilient.first, legacy.first);
  EXPECT_EQ(resilient.second, legacy.second);
}

}  // namespace
}  // namespace p4s
