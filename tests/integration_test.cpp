// Scenario-level integration tests: the paper's use cases verified end to
// end against ground truth the simulator knows (the telemetry must agree
// with what the TCP stacks actually did).
#include <gtest/gtest.h>

#include "core/monitoring_system.hpp"
#include "net/impairment.hpp"

namespace p4s {
namespace {

using core::MonitoringSystem;
using core::MonitoringSystemConfig;

MonitoringSystemConfig base_config() {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  return config;
}

TEST(Integration, PassiveByteCountMatchesGroundTruth) {
  MonitoringSystemConfig config = base_config();
  config.program.tracker.promotion_bytes = 1;  // count from packet one
  MonitoringSystem system(config);
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(5));
  system.run_until(units::seconds(9));
  ASSERT_EQ(system.control_plane().final_reports().size(), 1u);
  const auto& report = system.control_plane().final_reports()[0];
  // Data plane counts IP total_len (payload + 40 B headers) of every
  // data-bearing packet the sender emitted (including retransmissions).
  const auto& sent = flow.sender().stats();
  const std::uint64_t expected =
      sent.bytes_sent + 40ULL * sent.segments_sent;
  EXPECT_NEAR(static_cast<double>(report.bytes),
              static_cast<double>(expected),
              static_cast<double>(expected) * 0.001);
}

TEST(Integration, RetransmissionCountMatchesSender) {
  MonitoringSystemConfig config = base_config();
  MonitoringSystem system(config);
  // Induce loss so retransmissions occur.
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.002);
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(8));
  system.run_until(units::seconds(14));
  ASSERT_EQ(system.control_plane().final_reports().size(), 1u);
  const auto& report = system.control_plane().final_reports()[0];
  const std::uint64_t truth = flow.sender().stats().retransmitted_segments;
  EXPECT_GT(truth, 0u);
  // Algorithm 1 counts sequence regressions: every retransmitted segment
  // that reaches the TAP is one regression. Mirror-side loss can't happen
  // (TAPs are lossless), so the counts match except for retransmissions
  // dropped before the core switch — allow a small slack.
  EXPECT_GE(report.retransmissions, truth * 9 / 10);
  EXPECT_LE(report.retransmissions, truth);
}

TEST(Integration, MeasuredRttTracksQueueDelay) {
  MonitoringSystem system(base_config());
  system.start();
  auto& flow = system.add_transfer(1);  // 75 ms base RTT
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(6));
  const auto& flows = system.control_plane().flows();
  ASSERT_EQ(flows.size(), 1u);
  const auto& state = flows.begin()->second;
  const SimTime sender_srtt = flow.sender().rtt().srtt();
  // Switch-measured RTT only covers switch->receiver->switch; it must be
  // within the sender's smoothed RTT and above the receiver-side base.
  EXPECT_GT(state.rtt_ns, units::milliseconds(70));
  EXPECT_LT(state.rtt_ns, sender_srtt + units::milliseconds(30));
}

TEST(Integration, ReceiverLimitedFlowClassifiedEndpoint) {
  MonitoringSystem system(base_config());
  system.start();
  tcp::TcpFlow::Config fc;
  fc.receiver.buffer_bytes =
      units::bdp_bytes(units::mbps(5), units::milliseconds(75));
  auto& flow = system.add_transfer(1, fc);
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(8));
  const auto& flows = system.control_plane().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.begin()->second.verdict,
            telemetry::LimitVerdict::kEndpointLimited);
}

TEST(Integration, SenderLimitedFlowClassifiedEndpoint) {
  MonitoringSystem system(base_config());
  system.start();
  tcp::TcpFlow::Config fc;
  fc.sender.rate_limit_bps = units::mbps(5);
  auto& flow = system.add_transfer(2, fc);
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(8));
  const auto& flows = system.control_plane().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.begin()->second.verdict,
            telemetry::LimitVerdict::kEndpointLimited);
}

TEST(Integration, LossLimitedFlowClassifiedNetwork) {
  MonitoringSystem system(base_config());
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.001);
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(10));
  const auto& flows = system.control_plane().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.begin()->second.verdict,
            telemetry::LimitVerdict::kNetworkLimited);
}

TEST(Integration, SmallBufferProducesMicroburstReports) {
  MonitoringSystemConfig config = base_config();
  config.topology.core_buffer_bytes =
      units::bdp_bytes(units::mbps(100), units::milliseconds(100)) / 4;
  const double drain_ns = static_cast<double>(
                              config.topology.core_buffer_bytes) *
                          8e9 / 100e6;
  config.program.queue.burst_threshold_ns =
      static_cast<SimTime>(drain_ns * 0.5);
  config.program.queue.burst_exit_ns = static_cast<SimTime>(drain_ns * 0.25);
  MonitoringSystem system(config);
  system.start();
  auto& f1 = system.add_transfer(0);
  auto& f2 = system.add_transfer(1);
  f1.start_at(units::milliseconds(100));
  f2.start_at(units::seconds(5));  // slow-start burst into a small buffer
  system.run_until(units::seconds(12));
  EXPECT_FALSE(system.control_plane().microbursts().empty());
  for (const auto& d : system.control_plane().microbursts()) {
    EXPECT_GT(d.duration_ns, 0u);
    EXPECT_GE(d.peak_queue_delay_ns,
              system.config().program.queue.burst_threshold_ns);
  }
  EXPECT_GT(system.psonar().archiver().doc_count("p4sonar-microburst"), 0u);
}

TEST(Integration, QueueOccupancyReflectsActualQueue) {
  MonitoringSystem system(base_config());
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  double max_reported = 0.0;
  system.simulation().every(
      units::seconds(1), units::milliseconds(200), [&]() {
        for (const auto& [slot, state] :
             system.control_plane().flows()) {
          (void)slot;
          max_reported = std::max(max_reported,
                                  state.queue_occupancy_pct);
        }
        return system.simulation().now() < units::seconds(8);
      });
  system.run_until(units::seconds(8));
  // A single CUBIC flow fills a 1-BDP buffer: occupancy must have been
  // reported well above zero and below ~110% (drain-time formula).
  EXPECT_GT(max_reported, 10.0);
  EXPECT_LT(max_reported, 115.0);
}

TEST(Integration, ActiveAndPassiveMeasurementsAgree) {
  // The regular perfSONAR throughput test and the P4 system observe the
  // same path: their throughput figures must be consistent.
  MonitoringSystem system(base_config());
  system.start();
  auto& node = system.psonar();
  ps::PScheduler::ThroughputTask task;
  task.start = units::seconds(1);
  task.duration = units::seconds(6);
  node.scheduler().schedule_throughput(*system.topology().psonar_internal,
                                       *system.topology().psonar_ext[0],
                                       task);
  system.run_until(units::seconds(12));
  ASSERT_EQ(node.scheduler().throughput_results().size(), 1u);
  const double active = node.scheduler().throughput_results()[0]
                            .avg_throughput_bps;
  // The P4 side saw the test's own flow too (it crosses the TAPs): its
  // terminated-flow report must show a consistent lifetime average.
  const auto finals = node.archiver().search("p4sonar-flow_final");
  ASSERT_EQ(finals.size(), 1u);
  const double passive =
      finals[0].at("avg_throughput_bps").as_double();
  EXPECT_NEAR(passive, active, active * 0.3);
}

TEST(Integration, BlockageDetectedOnMmWaveScenario) {
  // Miniature Fig. 13 as a regression test.
  sim::Simulation sim(3);
  net::Network network(sim);
  auto& a = network.add_host("a", net::ipv4(10, 9, 0, 1));
  auto& b = network.add_host("b", net::ipv4(10, 9, 0, 2));
  auto& sw = network.add_switch("tor");
  network.connect(a, sw, {units::gbps(1), units::microseconds(5),
                          units::mebibytes(8), units::mebibytes(8)});
  auto duplex = network.connect(b, sw,
                                {units::mbps(200), units::microseconds(50),
                                 units::mebibytes(8), units::mebibytes(8)});
  net::MmWaveLink mmwave(sim, *duplex.reverse_link);
  mmwave.schedule_blockage(units::seconds(4), units::seconds(1));

  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "mon");
  p4sw.load_program(program);
  net::OpticalTapPair taps(sim, p4sw);
  taps.attach(sw, *duplex.reverse);
  cp::ControlPlaneConfig cp_config;
  cp_config.digest_poll_interval = units::milliseconds(5);
  cp::ControlPlane control(sim, program, cp_config);
  control.start();
  std::vector<SimTime> detections;
  control.set_on_blockage([&](const telemetry::BlockageDigest& d) {
    detections.push_back(d.at);
  });

  tcp::TcpFlow::Config fc;
  fc.sender.rate_limit_bps = units::mbps(50);
  tcp::TcpFlow flow(sim, a, b, fc);
  flow.start_at(units::milliseconds(100));
  sim.run_until(units::seconds(7));

  ASSERT_FALSE(detections.empty());
  // Detection within ~200 ms of blockage onset.
  EXPECT_GE(detections[0], units::seconds(4));
  EXPECT_LE(detections[0], units::seconds(4) + units::milliseconds(200));
}

}  // namespace
}  // namespace p4s
