// Tests: the MonitoringSystem facade and the experiment recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/monitoring_system.hpp"
#include "core/svg_chart.hpp"

namespace p4s::core {
namespace {

MonitoringSystemConfig small_config() {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  return config;
}

TEST(MonitoringSystem, ConstructsAndWiresControlPlane) {
  MonitoringSystem system(small_config());
  // Control plane learned the monitored switch's parameters from the
  // topology.
  EXPECT_EQ(system.control_plane().config().bottleneck_bps,
            units::mbps(100));
  EXPECT_EQ(system.control_plane().config().core_buffer_bytes,
            system.topology().bottleneck_port->queue().capacity_bytes());
}

TEST(MonitoringSystem, TransferIsObservedEndToEnd) {
  MonitoringSystem system(small_config());
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(6));
  system.run_until(units::seconds(10));

  // The flow completed and was monitored passively.
  EXPECT_TRUE(flow.complete());
  ASSERT_EQ(system.control_plane().final_reports().size(), 1u);
  const auto& report = system.control_plane().final_reports()[0];
  EXPECT_EQ(net::to_string(report.flow.tuple.dst_ip), "10.1.0.10");
  EXPECT_GT(report.bytes, 10'000'000u);

  // Reports reached the perfSONAR archiver through Logstash.
  auto& archiver = system.psonar().archiver();
  EXPECT_GT(archiver.doc_count("p4sonar-throughput"), 3u);
  EXPECT_GT(archiver.doc_count("p4sonar-rtt"), 3u);
  EXPECT_EQ(archiver.doc_count("p4sonar-flow_final"), 1u);
  EXPECT_EQ(archiver.doc_count("p4sonar-flow_detected"), 1u);
}

TEST(MonitoringSystem, PsConfigDrivesControlPlane) {
  MonitoringSystem system(small_config());
  const auto result = system.psonar().psconfig().execute(
      "psconfig config-P4 --metric throughput --samples_per_second 10");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(system.control_plane()
                .metric_config(cp::MetricKind::kThroughput)
                .interval,
            units::milliseconds(100));
}

TEST(MonitoringSystem, AddTransferValidatesIndex) {
  MonitoringSystem system(small_config());
  EXPECT_THROW(system.add_transfer(3), std::out_of_range);
  EXPECT_THROW(system.add_transfer(-1), std::out_of_range);
}

TEST(MonitoringSystem, MeasuredRttMatchesPathRtt) {
  MonitoringSystem system(small_config());
  system.start();
  auto& flow = system.add_transfer(2);  // 100 ms base RTT
  flow.start_at(units::milliseconds(100));
  system.run_until(units::seconds(5));
  bool saw_flow = false;
  for (const auto& [slot, state] : system.control_plane().flows()) {
    (void)slot;
    saw_flow = true;
    // Data-plane RTT = base RTT + queueing; must be at least the base.
    EXPECT_GE(state.rtt_ns, units::milliseconds(99));
    EXPECT_LT(state.rtt_ns, units::milliseconds(400));
  }
  EXPECT_TRUE(saw_flow);
}

TEST(Recorder, SamplesAndSeries) {
  MonitoringSystem system(small_config());
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(units::seconds(1), units::milliseconds(500),
                 units::seconds(5));
  system.run_until(units::seconds(5));
  EXPECT_GE(recorder.samples().size(), 7u);
  const auto labels = recorder.labels();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], "10.1.0.10");
  const auto series = recorder.series(&FlowSample::throughput_mbps);
  EXPECT_FALSE(series.at("10.1.0.10").empty());
}

TEST(Recorder, CsvOutputWellFormed) {
  MonitoringSystem system(small_config());
  system.start();
  auto& flow = system.add_transfer(1);
  flow.start_at(units::milliseconds(100));
  Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(units::seconds(1), units::seconds(1), units::seconds(4));
  system.run_until(units::seconds(4));
  std::ostringstream out;
  recorder.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("t_s,flow,throughput_mbps"), std::string::npos);
  EXPECT_NE(csv.find("10.2.0.10"), std::string::npos);
}

TEST(Recorder, PrintTableIncludesAllLabels) {
  MonitoringSystem system(small_config());
  system.start();
  auto& f0 = system.add_transfer(0);
  auto& f1 = system.add_transfer(1);
  f0.start_at(units::milliseconds(100));
  f1.start_at(units::milliseconds(100));
  Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(units::seconds(1), units::seconds(1), units::seconds(4));
  system.run_until(units::seconds(4));
  std::ostringstream out;
  recorder.print_table(out, "throughput", &FlowSample::throughput_mbps,
                       "Mbps");
  EXPECT_NE(out.str().find("10.1.0.10"), std::string::npos);
  EXPECT_NE(out.str().find("10.2.0.10"), std::string::npos);
}

TEST(Thin, KeepsRequestedRowCount) {
  std::vector<TimeSample> samples(100);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].t_s = static_cast<double>(i);
  }
  const auto thinned = thin(samples, 10);
  EXPECT_EQ(thinned.size(), 10u);
  EXPECT_DOUBLE_EQ(thinned[0].t_s, 0.0);
  const auto untouched = thin(samples, 200);
  EXPECT_EQ(untouched.size(), 100u);
}

TEST(SvgChart, RendersValidDocument) {
  Chart chart;
  chart.title = "test <chart> & more";
  chart.y_label = "Mbps";
  chart.series.push_back(
      ChartSeries{"flow-a", {{0.0, 1.0}, {1.0, 5.0}, {2.0, 3.0}}});
  chart.series.push_back(ChartSeries{"flow-b", {{0.0, 2.0}, {2.0, 4.0}}});
  std::ostringstream out;
  write_svg(chart, out);
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.find("<chart>"), std::string::npos);  // escaped
  EXPECT_NE(svg.find("&lt;chart&gt;"), std::string::npos);
  EXPECT_NE(svg.find("flow-a"), std::string::npos);
  // Two series -> two polylines.
  std::size_t polylines = 0, pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++polylines;
    ++pos;
  }
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgChart, EmptySeriesStillValid) {
  Chart chart;
  chart.title = "empty";
  std::ostringstream out;
  write_svg(chart, out);
  EXPECT_NE(out.str().find("</svg>"), std::string::npos);
}

TEST(SvgChart, Fig9PanelsFromRecorder) {
  MonitoringSystem system(small_config());
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(units::seconds(1), units::seconds(1), units::seconds(4));
  system.run_until(units::seconds(4));
  std::ostringstream out;
  write_fig9_panels(recorder, out);
  const std::string svg = out.str();
  EXPECT_NE(svg.find("per-flow throughput"), std::string::npos);
  EXPECT_NE(svg.find("queue occupancy"), std::string::npos);
  EXPECT_NE(svg.find("10.1.0.10"), std::string::npos);
}

TEST(MonitoringSystem, DeterministicAcrossRuns) {
  auto run_once = [] {
    MonitoringSystem system(small_config());
    system.start();
    auto& flow = system.add_transfer(0);
    flow.start_at(units::milliseconds(100));
    flow.stop_at(units::seconds(4));
    system.run_until(units::seconds(6));
    return flow.sender().stats().segments_sent;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace p4s::core
