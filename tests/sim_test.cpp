// Unit tests: discrete-event engine (event queue, periodic scheduling,
// deterministic PRNG).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

// Global allocation counter backing the steady-state no-allocation
// assertion below. Replacing operator new is per-binary, so only this
// test executable pays for the bookkeeping.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace p4s::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&]() { order.push_back(3); });
  q.schedule_at(10, [&]() { order.push_back(1); });
  q.schedule_at(20, [&]() { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoForSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i]() { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

// The FIFO-within-timestamp contract, pinned: same-deadline events run
// in SCHEDULING order (global seq), not in any order keyed to when
// earlier deadlines interleaved. The parallel fabric's grant semantics
// lean on this — a driver tick armed a full interval before a mirror
// delivery was armed must win their same-timestamp tie — so this is a
// regression fence, not documentation.
TEST(EventQueue, FifoTieBreakIsSchedulingOrderNotDeadlineOrder) {
  EventQueue q;
  std::vector<std::string> order;
  // Armed first, fires at 100: the "tick" (scheduled long in advance).
  q.schedule_at(100, [&]() { order.push_back("tick"); });
  // Armed later (from an earlier event, as a TAP delivery would be),
  // same deadline: must run after the tick despite the fresher arming.
  q.schedule_at(60, [&]() {
    q.schedule_at(100, [&]() { order.push_back("delivery"); });
  });
  // And a third, armed later still at the same deadline.
  q.schedule_at(70, [&]() {
    q.schedule_at(100, [&]() { order.push_back("late-delivery"); });
  });
  q.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "tick");
  EXPECT_EQ(order[1], "delivery");
  EXPECT_EQ(order[2], "late-delivery");
}

// FIFO order survives run_until() windows: splitting one run into
// horizon-sized steps (as MonitoringSystem::run_until and the parallel
// grant pump do) must not reorder same-timestamp events scheduled
// across the window boundaries.
TEST(EventQueue, FifoWithinTimestampAcrossRunUntilWindows) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(50, [&]() { order.push_back(0); });
  q.run_until(10);  // clock advances into the gap, nothing runs
  EXPECT_TRUE(order.empty());
  q.schedule_at(50, [&]() { order.push_back(1); });
  q.run_until(30);
  q.schedule_at(50, [&]() { order.push_back(2); });
  // The horizon is inclusive: events at exactly t run in run_until(t).
  q.run_until(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), 50u);
}

// run_until() advances the clock to the horizon even with nothing to
// execute — the parallel shards replay boundary frames by advancing an
// (empty) queue to each frame's delivery time, so a lagging clock would
// skew every P4 ingress timestamp and pcap record.
TEST(EventQueue, RunUntilAdvancesClockThroughEmptyWindows) {
  EventQueue q;
  q.run_until(1000);
  EXPECT_EQ(q.now(), 1000u);
  q.run_until(1000);  // idempotent at the same horizon
  EXPECT_EQ(q.now(), 1000u);
  bool ran = false;
  q.schedule_at(2000, [&]() { ran = true; });
  q.run_until(1500);
  EXPECT_EQ(q.now(), 1500u);
  EXPECT_FALSE(ran);
  q.run_until(2000);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, SchedulingIntoPastThrows) {
  EventQueue q;
  q.schedule_at(10, []() {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, []() {}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule_at(10, [&]() { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.schedule_at(1, [&]() { ++runs; });
  q.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // after fire: no effect
  h.cancel();
  EventHandle inert;
  inert.cancel();  // default-constructed: no effect
  EXPECT_FALSE(inert.pending());
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_at(10, [&]() { fired.push_back(10); });
  q.schedule_at(20, [&]() { fired.push_back(20); });
  q.schedule_at(30, [&]() { fired.push_back(30); });
  q.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));  // inclusive horizon
  EXPECT_EQ(q.now(), 20u);
  q.run_until(25);
  EXPECT_EQ(q.now(), 25u);  // clock advances even with no events
  q.run();
  EXPECT_EQ(fired.back(), 30u);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&]() {
    order.push_back(1);
    q.schedule_in(5, [&]() { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int runs = 0;
  q.schedule_at(1, [&]() { ++runs; });
  q.schedule_at(2, [&]() { ++runs; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(runs, 2);
}

TEST(EventQueue, CountersTrackLiveAndExecuted) {
  EventQueue q;
  auto h = q.schedule_at(1, []() {});
  q.schedule_at(2, []() {});
  EXPECT_EQ(q.pending_events(), 2u);
  h.cancel();
  // Cancellation is lazy: the slot still occupies the heap until popped.
  EXPECT_EQ(q.pending_events(), 2u);
  q.run();
  EXPECT_EQ(q.executed_events(), 1u);
  EXPECT_EQ(q.pending_events(), 0u);
}

TEST(EventQueue, RunUntilAdvancesToHorizonWhenDrainedEarly) {
  // Regression for the run_until contract: the clock advances to the
  // horizon even when the last event fires well before it (callers treat
  // run_until(t) as "simulate up to t").
  EventQueue q;
  q.schedule_at(3, []() {});
  q.run_until(50);
  EXPECT_EQ(q.now(), 50u);
  q.run_until(50);  // at the horizon already: no-op
  EXPECT_EQ(q.now(), 50u);
  q.run_until(10);  // horizon in the past: clock never goes backwards
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, CancelledEventBeyondHorizonDoesNotAdvanceClock) {
  EventQueue q;
  auto h = q.schedule_at(100, []() {});
  h.cancel();
  q.run_until(50);
  // The cancelled entry may be reclaimed, but its (beyond-horizon) time
  // must not leak into the clock.
  EXPECT_EQ(q.now(), 50u);
  EXPECT_EQ(q.executed_events(), 0u);
}

TEST(EventQueue, HandleOutlivesQueue) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule_at(5, []() {});
    EXPECT_TRUE(h.pending());
  }
  // The queue is gone; the handle must degrade to inert, not dangle.
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(EventQueue, StaleHandleDoesNotTouchRecycledSlot) {
  EventQueue q;
  bool second_ran = false;
  EventHandle stale = q.schedule_at(1, []() {});
  q.run();  // slot reclaimed onto the free list
  // The next event reuses the slot; the stale handle's generation no
  // longer matches, so cancelling it must not kill the new occupant.
  EventHandle fresh = q.schedule_at(2, [&]() { second_ran = true; });
  EXPECT_FALSE(stale.pending());
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  q.run();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueue, RtoStyleCancelRescheduleChurn) {
  // TCP's RTO pattern: every ACK cancels the pending timer and re-arms
  // it further out. Only the final arm may fire, and the slab must
  // recycle slots rather than grow with the churn count.
  EventQueue q;
  int fires = 0;
  EventHandle rto;
  for (int i = 0; i < 10000; ++i) {
    rto.cancel();
    rto = q.schedule_at(static_cast<SimTime>(100 + i),
                        [&fires]() { ++fires; });
  }
  q.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(q.executed_events(), 1u);
  EXPECT_EQ(q.now(), 100u + 9999u);
  EXPECT_EQ(q.pending_events(), 0u);
}

TEST(EventQueue, PeakPendingTracksHighWaterMark) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) q.schedule_at(static_cast<SimTime>(i), []() {});
  EXPECT_EQ(q.peak_pending_events(), 64u);
  q.run();
  q.schedule_at(1000, []() {});
  q.run();
  EXPECT_EQ(q.peak_pending_events(), 64u);  // high-water mark persists
}

TEST(EventQueue, NoPerEventHeapAllocationInSteadyState) {
  // The tentpole guarantee: once the slab/heap vectors have grown to the
  // workload's footprint, scheduling and firing events performs zero heap
  // allocation — no shared_ptr control block per event, and small
  // captures stay in std::function's inline storage.
  EventQueue q;
  std::uint64_t fired = 0;
  // Warm-up: grow the slab/heap past anything the measured phase needs.
  for (int i = 0; i < 1024; ++i) {
    q.schedule_in(1, [&fired]() { ++fired; });
  }
  q.run();
  const std::uint64_t before = g_heap_allocs.load();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 512; ++i) {
      q.schedule_in(1, [&fired]() { ++fired; });
    }
    q.run();
  }
  EXPECT_EQ(g_heap_allocs.load(), before);
  EXPECT_EQ(fired, 1024u + 16u * 512u);
}

TEST(Simulation, EveryRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.every(10, 5, [&]() { return ++ticks < 4; });
  sim.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(sim.now(), 25u);  // 10, 15, 20, 25
}

TEST(Simulation, AfterIsRelative) {
  Simulation sim;
  sim.at(100, [&sim]() {
    sim.after(50, []() {});
  });
  sim.run();
  EXPECT_EQ(sim.now(), 150u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformityChiSquaredCoarse) {
  Rng rng(9);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.next_below(10)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), n / 10.0, n / 10.0 * 0.1);
  }
}

}  // namespace
}  // namespace p4s::sim
