// Measurement program library (src/mpl): compiler diagnostics, the
// interpreter's op semantics, register-window/slot-release integration,
// the control-plane export seam, and pSConfig's --install-program /
// --remove-program surface.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "controlplane/control_plane.hpp"
#include "mpl/compiler.hpp"
#include "mpl/vm.hpp"
#include "p4/hash.hpp"
#include "p4/parser.hpp"
#include "psonar/psconfig.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "telemetry/field_view.hpp"

#define EXPECT_SUBSTR(haystack, needle)                                \
  do {                                                                 \
    const std::string hay = (haystack);                                \
    EXPECT_NE(hay.find(needle), std::string::npos)                     \
        << "expected substring '" << (needle) << "' in: " << hay;      \
  } while (0)

namespace p4s {
namespace {

using mpl::Program;
using mpl::ProgramVm;

// ---------------------------------------------------------- compiler

const char* kByteCounterText = R"({
  "name": "byte_counter",
  "scope": "flow",
  "ops": [
    {"op": "add", "dst": 0, "field": "ipv4_total_len"},
    {"op": "count", "dst": 1}
  ],
  "export": {
    "metric": "vm_throughput",
    "value_key": "throughput_bps",
    "value": "rate_bps",
    "register": 0,
    "samples_per_second": 2
  }
})";

TEST(MplCompiler, CompilesByteCounter) {
  const Program p = mpl::compile_program_text(kByteCounterText, "");
  EXPECT_EQ(p.name, "byte_counter");
  EXPECT_EQ(p.scope, mpl::Scope::kFlow);
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[0].kind, mpl::OpKind::kAdd);
  EXPECT_TRUE(p.ops[0].src.is_field);
  EXPECT_EQ(p.ops[0].src.field, telemetry::FieldId::kIpv4TotalLen);
  EXPECT_EQ(p.ops[1].kind, mpl::OpKind::kCount);
  EXPECT_EQ(p.registers, 2u);
  ASSERT_TRUE(p.export_spec.has_value());
  EXPECT_EQ(p.export_spec->metric, "vm_throughput");
  EXPECT_EQ(p.export_spec->value_key, "throughput_bps");
  EXPECT_EQ(p.export_spec->value.kind, mpl::ExportValue::Kind::kRateBps);
  EXPECT_EQ(p.export_spec->value.reg, 0u);
  EXPECT_DOUBLE_EQ(p.export_spec->samples_per_second, 2.0);
}

TEST(MplCompiler, RoundTripsThroughJson) {
  const Program p = mpl::compile_program_text(kByteCounterText, "");
  const util::Json doc = mpl::program_to_json(p);
  const Program again = mpl::compile_program(doc, "");
  EXPECT_EQ(mpl::program_to_json(again).dump(), doc.dump());
}

std::string compile_error(const std::string& text,
                          const std::string& path = "") {
  try {
    mpl::compile_program_text(text, path);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(MplCompiler, DiagnosticsCarryTheFullJsonPath) {
  // The acceptance example: a bad field inside the third op of the
  // first program of the second switch names the exact key.
  const std::string msg = compile_error(
      R"({"name": "x", "ops": [
            {"op": "count", "dst": 0},
            {"op": "count", "dst": 1},
            {"op": "add", "dst": 2, "field": "bogus_field"}
          ]})",
      "switches[1].programs[0]");
  EXPECT_SUBSTR(msg, "switches[1].programs[0].ops[2].field");

  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "warp"}]})"), "ops[0].op");
  EXPECT_SUBSTR(compile_error( R"({"name": "x", "ops": [{"op": "count", "dst": 0}], "match": [{"field": "flow_id", "cmp": "??", "value": 1}]})"), "match[0].cmp");
  EXPECT_SUBSTR(compile_error( R"({"name": "x", "ops": [{"op": "count", "dst": 0}], "export": {"metric": "m", "value": "sideways"}})"), "export.value");
}

TEST(MplCompiler, ValidationBattery) {
  // Structural requirements.
  EXPECT_SUBSTR(compile_error(R"({"ops": [{"op": "count", "dst": 0}]})"), "needs 'name'");
  EXPECT_SUBSTR(compile_error(R"({"name": "x"})"), "needs at least one op");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "bogus": 1, "ops": [{"op": "count", "dst": 0}]})"), "bogus");
  // Sources and destinations.
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "add", "dst": 0}]})"), "needs a 'field' or 'imm'");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "add", "dst": 99, "imm": 1}]})"), "register index");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "add", "dst": 0, "imm": 1, "field": "flow_id"}]})"), "conflicts");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "add", "dst": 0, "imm": 1, "weight": 4}]})"), "only applies to op 'ewma'");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "ewma", "dst": 0, "imm": 1, "weight": 1}]})"), "2..1024");
  // Histogram coupling.
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "scope": "switch", "ops": [{"op": "histogram_bin", "imm": 1}]})"), "no 'histogram' section");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "histogram": {"min": 1, "max": 10}, "ops": [{"op": "count", "dst": 0}]})"), "no op is 'histogram_bin'");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "scope": "flow", "histogram": {"min": 1, "max": 10}, "ops": [{"op": "histogram_bin", "imm": 1}]})"), "requires scope 'switch'");
  // Export coupling.
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "count", "dst": 0}], "export": {"metric": "m", "value": "quantile"}})"), "no histogram");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "count", "dst": 0}], "export": {"metric": "m", "value": "register", "register": 3}})"), "only writes registers 0..0");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "ops": [{"op": "count", "dst": 0}], "digest": {"every": 4, "register": 5}})"), "digest.register");
  EXPECT_SUBSTR(compile_error(R"({"name": "x", "scope": "diagonal", "ops": [{"op": "count", "dst": 0}]})"), "scope");
}

TEST(MplCompiler, NameMapsRoundTrip) {
  for (const mpl::Cmp cmp :
       {mpl::Cmp::kEq, mpl::Cmp::kNe, mpl::Cmp::kLt, mpl::Cmp::kLe,
        mpl::Cmp::kGt, mpl::Cmp::kGe}) {
    EXPECT_EQ(mpl::cmp_from_name(mpl::to_string(cmp)), cmp);
  }
  for (const mpl::OpKind kind :
       {mpl::OpKind::kCount, mpl::OpKind::kAdd, mpl::OpKind::kMin,
        mpl::OpKind::kMax, mpl::OpKind::kSet, mpl::OpKind::kEwma,
        mpl::OpKind::kHistogramBin}) {
    EXPECT_EQ(mpl::op_from_name(mpl::to_string(kind)), kind);
  }
  for (const mpl::Scope scope : {mpl::Scope::kFlow, mpl::Scope::kSwitch}) {
    EXPECT_EQ(mpl::scope_from_name(mpl::to_string(scope)), scope);
  }
  EXPECT_THROW(mpl::cmp_from_name("=="), std::invalid_argument);
  EXPECT_THROW(mpl::op_from_name("mul"), std::invalid_argument);
  EXPECT_THROW(mpl::scope_from_name("port"), std::invalid_argument);
}

// ---------------------------------------------------------- interpreter

// A hand-built parsed TCP packet: total_len is the knob the op tests
// turn, everything else is a fixed 5-tuple.
struct PacketFixture {
  p4::PacketContext ctx;
  p4::FlowKey fk;

  explicit PacketFixture(std::uint16_t total_len = 1500, SimTime ts = 0) {
    net::FiveTuple t;
    t.src_ip = 0x0A000001;
    t.dst_ip = 0x0A000002;
    t.src_port = 40000;
    t.dst_port = 5201;
    t.protocol = 6;
    fk = p4::FlowKey::from(t);
    ctx.hdr.ipv4_valid = true;
    ctx.hdr.ipv4.total_len = total_len;
    ctx.hdr.ipv4.protocol = 6;
    ctx.hdr.ipv4.src = t.src_ip;
    ctx.hdr.ipv4.dst = t.dst_ip;
    ctx.hdr.tcp_valid = true;
    ctx.hdr.tcp.src_port = t.src_port;
    ctx.hdr.tcp.dst_port = t.dst_port;
    ctx.meta.ingress_ts = ts;
  }

  telemetry::FieldView view(bool egress = false) const {
    return telemetry::FieldView(ctx, fk, egress);
  }
};

Program compile(const std::string& text) {
  return mpl::compile_program_text(text, "");
}

TEST(ProgramVmOps, RegisterOpSemantics) {
  ProgramVm vm;
  vm.install(compile(R"({
    "name": "ops", "scope": "switch",
    "ops": [
      {"op": "count", "dst": 0},
      {"op": "add", "dst": 1, "imm": 10},
      {"op": "min", "dst": 2, "field": "ipv4_total_len"},
      {"op": "max", "dst": 3, "field": "ipv4_total_len"},
      {"op": "set", "dst": 4, "field": "ipv4_total_len"},
      {"op": "ewma", "dst": 5, "field": "ipv4_total_len", "weight": 4}
    ]
  })"));
  for (const std::uint16_t len : {1500, 100, 400}) {
    vm.on_packet(PacketFixture(len).view());
  }
  EXPECT_EQ(vm.matched("ops"), 3u);
  EXPECT_EQ(vm.reg("ops", 0), 3u);        // count
  EXPECT_EQ(vm.reg("ops", 1), 30u);       // add imm
  EXPECT_EQ(vm.reg("ops", 2), 100u);      // min adopts, then takes 100
  EXPECT_EQ(vm.reg("ops", 3), 1500u);     // max
  EXPECT_EQ(vm.reg("ops", 4), 400u);      // set: last value wins
  // ewma w=4: 1500 (empty adopts), (3*1500+100)/4 = 1150,
  // (3*1150+400)/4 = 962 (integer division).
  EXPECT_EQ(vm.reg("ops", 5), 962u);
}

TEST(ProgramVmOps, MinEmptyRegisterAdoptsFirstSample) {
  ProgramVm vm;
  vm.install(compile(R"({"name": "m", "scope": "switch",
    "ops": [{"op": "min", "dst": 0, "field": "ipv4_total_len"}]})"));
  EXPECT_EQ(vm.reg("m", 0), 0u);
  vm.on_packet(PacketFixture(900).view());
  EXPECT_EQ(vm.reg("m", 0), 900u);  // NOT min(0, 900)
  vm.on_packet(PacketFixture(1500).view());
  EXPECT_EQ(vm.reg("m", 0), 900u);
  vm.on_packet(PacketFixture(60).view());
  EXPECT_EQ(vm.reg("m", 0), 60u);
}

TEST(ProgramVmOps, MatchPredicateGatesOps) {
  ProgramVm vm;
  vm.install(compile(R"({
    "name": "big", "scope": "switch",
    "match": [{"field": "ipv4_total_len", "cmp": "ge", "value": 1000},
              {"field": "is_tcp", "cmp": "eq", "value": 1}],
    "ops": [{"op": "count", "dst": 0}]
  })"));
  vm.on_packet(PacketFixture(1500).view());
  vm.on_packet(PacketFixture(500).view());  // fails the ge condition
  vm.on_packet(PacketFixture(1000).view());
  EXPECT_EQ(vm.matched("big"), 2u);
  EXPECT_EQ(vm.reg("big", 0), 2u);
}

TEST(ProgramVmOps, FlowWindowsIndexBySlotAndClearOnRelease) {
  ProgramVm vm;
  vm.install(compile(R"({"name": "bytes", "scope": "flow",
    "ops": [{"op": "add", "dst": 0, "field": "ipv4_total_len"}]})"));
  vm.on_tracked_data(3, PacketFixture(1000).view());
  vm.on_tracked_data(3, PacketFixture(500).view());
  vm.on_tracked_data(5, PacketFixture(700).view());
  EXPECT_EQ(vm.reg("bytes", 0, 3), 1500u);
  EXPECT_EQ(vm.reg("bytes", 0, 5), 700u);
  EXPECT_FALSE(vm.slot_cleared(3));
  vm.clear_slot(3);
  EXPECT_TRUE(vm.slot_cleared(3));
  EXPECT_EQ(vm.reg("bytes", 0, 3), 0u);
  EXPECT_EQ(vm.reg("bytes", 0, 5), 700u);  // other slots untouched
}

TEST(ProgramVmOps, SwitchScopeRunsOnBothTapCopies) {
  ProgramVm vm;
  vm.install(compile(R"({"name": "all", "scope": "switch",
    "ops": [{"op": "count", "dst": 0}]})"));
  const PacketFixture pkt(1500);
  vm.on_packet(pkt.view(false));
  vm.on_packet(pkt.view(true));
  EXPECT_EQ(vm.reg("all", 0), 2u);
}

TEST(ProgramVmOps, HistogramProgramBinsAndQuantiles) {
  ProgramVm vm;
  vm.install(compile(R"({
    "name": "sizes", "scope": "switch",
    "ops": [{"op": "histogram_bin", "field": "ipv4_total_len"}],
    "histogram": {"scale": "linear", "min": 1, "max": 2000, "bins": 20}
  })"));
  for (int i = 0; i < 100; ++i) {
    vm.on_packet(PacketFixture(1500).view());
  }
  const sketch::Histogram* hist = vm.histogram("sizes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 100u);
  EXPECT_NEAR(hist->quantile(0.5), 1500.0, 100.0);
  EXPECT_EQ(vm.histogram("sizes") != nullptr, true);
}

TEST(ProgramVmOps, DigestsEveryNthMatchedPacket) {
  ProgramVm vm;
  vm.install(compile(R"({"name": "d", "scope": "flow",
    "ops": [{"op": "add", "dst": 0, "field": "ipv4_total_len"}],
    "digest": {"every": 2, "register": 0}})"));
  for (int i = 0; i < 5; ++i) {
    vm.on_tracked_data(7, PacketFixture(100, units::seconds(i)).view());
  }
  EXPECT_EQ(vm.pending_digests(), 2u);
  const auto digests = vm.drain_digests();
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0].program, "d");
  EXPECT_EQ(digests[0].slot, 7u);
  EXPECT_EQ(digests[0].value, 200u);  // after the 2nd add
  EXPECT_EQ(digests[1].value, 400u);  // after the 4th
  EXPECT_EQ(digests[1].at, units::seconds(3));
  EXPECT_EQ(vm.pending_digests(), 0u);
}

TEST(ProgramVmOps, RowBudgetIsEnforcedAtomically) {
  ProgramVm vm(ProgramVm::Config{2});
  EXPECT_EQ(vm.row_budget(), 2u);
  EXPECT_THROW(
      vm.install(compile(R"({"name": "fat", "scope": "flow",
        "ops": [{"op": "count", "dst": 2}]})")),  // 3 registers
      std::invalid_argument);
  EXPECT_EQ(vm.program_count(), 0u);
  EXPECT_EQ(vm.rows_in_use(), 0u);

  vm.install(compile(R"({"name": "two", "scope": "flow",
    "ops": [{"op": "count", "dst": 1}]})"));
  EXPECT_EQ(vm.rows_in_use(), 2u);
  // Switch-scope programs don't consume window rows.
  vm.install(compile(R"({"name": "sw", "scope": "switch",
    "ops": [{"op": "count", "dst": 0}]})"));
  EXPECT_EQ(vm.rows_in_use(), 2u);
  // Replacing "two" with a 1-register version frees a row...
  vm.install(compile(R"({"name": "two", "scope": "flow",
    "ops": [{"op": "count", "dst": 0}]})"));
  EXPECT_EQ(vm.rows_in_use(), 1u);
  // ...and removal releases the rest.
  EXPECT_TRUE(vm.remove("two"));
  EXPECT_EQ(vm.rows_in_use(), 0u);
  EXPECT_FALSE(vm.remove("two"));
}

TEST(ProgramVmOps, ReplaceByNameSwapsTheProgram) {
  ProgramVm vm;
  vm.install(compile(R"({"name": "p", "scope": "switch",
    "ops": [{"op": "count", "dst": 0}]})"));
  vm.on_packet(PacketFixture(100).view());
  EXPECT_EQ(vm.reg("p", 0), 1u);
  vm.install(compile(R"({"name": "p", "scope": "switch",
    "ops": [{"op": "add", "dst": 0, "imm": 5}]})"));
  EXPECT_EQ(vm.program_count(), 1u);
  EXPECT_EQ(vm.reg("p", 0), 0u);  // fresh registers
  vm.on_packet(PacketFixture(100).view());
  EXPECT_EQ(vm.reg("p", 0), 5u);
}

TEST(ProgramVmOps, ObservabilityThrowsOnUnknownNames) {
  ProgramVm vm;
  EXPECT_THROW(vm.reg("nope", 0), std::invalid_argument);
  EXPECT_THROW(vm.histogram("nope"), std::invalid_argument);
  EXPECT_THROW(vm.matched("nope"), std::invalid_argument);
  vm.install(compile(R"({"name": "p", "scope": "switch",
    "ops": [{"op": "count", "dst": 0}]})"));
  EXPECT_THROW(vm.reg("p", 9), std::invalid_argument);
  EXPECT_EQ(vm.histogram("p"), nullptr);
  EXPECT_EQ(vm.find("p")->name, "p");
  EXPECT_EQ(vm.find("q"), nullptr);
}

// ------------------------------------------------- control-plane seam

struct VmControlPlaneFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  cp::ControlPlaneConfig cp_config;
  cp::ControlPlane control{sim, program, cp_config};
  ProgramVm vm;
};

TEST_F(VmControlPlaneFixture, InstallRegistersAnExtractorByName) {
  vm.bind(control);
  const std::size_t builtin_count = control.extractor_count();
  vm.install(compile(kByteCounterText));
  EXPECT_EQ(control.extractor_count(), builtin_count + 1);
  EXPECT_TRUE(control.has_extractor("vm_throughput"));
  // Per-program timer configuration through the existing name-based API.
  EXPECT_EQ(control.extractor_config("vm_throughput").interval,
            units::seconds_f(0.5));
  control.set_samples_per_second("vm_throughput", 4);
  EXPECT_EQ(control.extractor_config("vm_throughput").interval,
            units::seconds_f(0.25));
  // Removal unregisters and frees the name.
  EXPECT_TRUE(vm.remove("byte_counter"));
  EXPECT_EQ(control.extractor_count(), builtin_count);
  EXPECT_FALSE(control.has_extractor("vm_throughput"));
}

TEST_F(VmControlPlaneFixture, MetricCollisionsAreRejectedBeforeMutation) {
  vm.bind(control);
  // Colliding with a builtin.
  EXPECT_THROW(vm.install(compile(R"({"name": "evil", "scope": "flow",
    "ops": [{"op": "count", "dst": 0}],
    "export": {"metric": "throughput", "value": "register",
               "register": 0}})")),
               std::invalid_argument);
  EXPECT_EQ(vm.program_count(), 0u);
  // Colliding with another program's export.
  vm.install(compile(kByteCounterText));
  EXPECT_THROW(vm.install(compile(R"({"name": "other", "scope": "flow",
    "ops": [{"op": "count", "dst": 0}],
    "export": {"metric": "vm_throughput", "value": "register",
               "register": 0}})")),
               std::invalid_argument);
  EXPECT_EQ(vm.program_count(), 1u);
  // Replacing a program with its own metric is NOT a collision.
  vm.install(compile(kByteCounterText));
  EXPECT_EQ(vm.program_count(), 1u);
  EXPECT_TRUE(control.has_extractor("vm_throughput"));
}

TEST_F(VmControlPlaneFixture, BindAfterInstallRegistersExports) {
  vm.install(compile(kByteCounterText));
  EXPECT_FALSE(control.has_extractor("vm_throughput"));
  vm.bind(control);
  EXPECT_TRUE(control.has_extractor("vm_throughput"));
  EXPECT_THROW(vm.bind(control), std::logic_error);
}

// ------------------------------------------------------- pSConfig CLI

struct PsConfigVmFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  cp::ControlPlaneConfig cp_config;
  cp::ControlPlane control{sim, program, cp_config};
  ProgramVm vm;
  ps::PsConfig psconfig;

  void SetUp() override {
    vm.bind(control);
    psconfig.add_control_plane(control, "core", &vm);
  }

  std::string write_program(const std::string& text) {
    const std::string path =
        ::testing::TempDir() + "mpl_psconfig_program.json";
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
  }
};

TEST_F(PsConfigVmFixture, InstallConfigureRemoveRoundTrip) {
  const std::string file = write_program(kByteCounterText);
  auto result = psconfig.execute(
      "psconfig config-P4 --install-program " + file + " --switch core");
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_SUBSTR(result.message, "byte_counter");
  ASSERT_NE(vm.find("byte_counter"), nullptr);
  EXPECT_TRUE(control.has_extractor("vm_throughput"));

  // The installed program's metric is configurable like a builtin.
  result = psconfig.execute(
      "psconfig config-P4 --metric vm_throughput --samples_per_second 4");
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_EQ(control.extractor_config("vm_throughput").interval,
            units::seconds_f(0.25));
  result = psconfig.execute(
      "psconfig config-P4 --metric vm_throughput --alert --threshold 1e9");
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(control.extractor_config("vm_throughput").alert_enabled);

  result = psconfig.execute(
      "psconfig config-P4 --remove-program byte_counter");
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_EQ(vm.find("byte_counter"), nullptr);
  EXPECT_FALSE(control.has_extractor("vm_throughput"));
  // Removing again reports the absence.
  EXPECT_FALSE(
      psconfig.execute("psconfig config-P4 --remove-program byte_counter")
          .ok);
}

TEST_F(PsConfigVmFixture, InstallErrorsAreReported) {
  // Unreadable file.
  EXPECT_FALSE(psconfig
                   .execute("psconfig config-P4 --install-program "
                            "/nonexistent/p.mpl.json")
                   .ok);
  // Compile error carries the program diagnostic.
  const std::string bad =
      write_program(R"({"name": "x", "ops": [{"op": "warp"}]})");
  const auto result =
      psconfig.execute("psconfig config-P4 --install-program " + bad);
  EXPECT_FALSE(result.ok);
  EXPECT_SUBSTR(result.message, "ops[0].op");
  // Program actions don't combine with metric configuration.
  const std::string file = write_program(kByteCounterText);
  EXPECT_FALSE(psconfig
                   .execute("psconfig config-P4 --install-program " + file +
                            " --metric throughput --samples_per_second 1")
                   .ok);
  // Unknown metric names still fail cleanly.
  EXPECT_FALSE(psconfig
                   .execute("psconfig config-P4 --metric vm_nope "
                            "--samples_per_second 1")
                   .ok);
}

TEST_F(PsConfigVmFixture, SwitchWithoutVmRejectsProgramActions) {
  cp::ControlPlane bare{sim, program, cp_config};
  ps::PsConfig cfg;
  cfg.add_control_plane(bare, "legacy");  // no VM registered
  const std::string file = write_program(kByteCounterText);
  const auto result =
      cfg.execute("psconfig config-P4 --install-program " + file);
  EXPECT_FALSE(result.ok);
  EXPECT_SUBSTR(result.message, "no measurement-program VM");
}

}  // namespace
}  // namespace p4s
