// Unit and behaviour tests for the fault-injectable report transport:
// net::ReportChannel (byte-stream semantics, bounded buffering, resets,
// stalls, slow-consumer pacing), net::FaultInjector (scripted + random
// schedules), util::ExponentialBackoff, and cp::ResilientReportSink
// (sequencing, retransmission, drop-oldest degradation, reconnects,
// health self-reports).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "controlplane/resilient_sink.hpp"
#include "net/fault_injector.hpp"
#include "net/report_channel.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "sim/simulation.hpp"
#include "util/backoff.hpp"
#include "util/json.hpp"

namespace p4s {
namespace {

util::Json report_doc(const char* kind, std::int64_t ts, double value) {
  util::Json j = util::Json::object();
  j["report"] = kind;
  j["ts_ns"] = ts;
  j["value"] = value;
  return j;
}

// ---------- ReportChannel ----------

TEST(ReportChannel, DeliversBytesInOrderAcrossArbitraryChunking) {
  sim::Simulation sim(1);
  net::ReportChannel::Config config;
  config.max_chunk_bytes = 7;  // force many small, randomly sized chunks
  net::ReportChannel channel(sim, config);
  std::string received;
  std::size_t max_chunk_seen = 0;
  channel.set_receiver([&](std::string_view chunk) {
    received.append(chunk);
    max_chunk_seen = std::max(max_chunk_seen, chunk.size());
  });
  channel.connect();
  std::string sent;
  for (int i = 0; i < 40; ++i) {
    const std::string msg =
        "message-" + std::to_string(i) + std::string(i % 13, 'x') + "\n";
    ASSERT_TRUE(channel.send(msg));
    sent += msg;
  }
  sim.run_until(units::seconds(1));
  EXPECT_EQ(received, sent);
  EXPECT_LE(max_chunk_seen, 7u);
  EXPECT_GT(channel.stats().chunks_delivered, sent.size() / 7);
  EXPECT_EQ(channel.stats().bytes_delivered, sent.size());
  EXPECT_EQ(channel.stats().bytes_accepted, sent.size());
}

TEST(ReportChannel, RejectsWhenDisconnectedOrFull) {
  sim::Simulation sim(1);
  net::ReportChannel::Config config;
  config.send_buffer_bytes = 10;
  net::ReportChannel channel(sim, config);
  EXPECT_FALSE(channel.send("hello"));  // not connected yet
  channel.connect();
  EXPECT_TRUE(channel.send("12345678"));
  EXPECT_FALSE(channel.send("abc"));  // 8 + 3 > 10
  EXPECT_EQ(channel.stats().sends_rejected, 2u);
  EXPECT_EQ(channel.stats().bytes_accepted, 8u);
}

TEST(ReportChannel, ResetLosesBufferedAndInFlightBytes) {
  sim::Simulation sim(1);
  net::ReportChannel::Config config;
  config.latency = units::milliseconds(1);
  config.random_chunking = false;
  net::ReportChannel channel(sim, config);
  std::string received;
  int disconnects = 0;
  channel.set_receiver([&](std::string_view c) { received.append(c); });
  channel.on_disconnect([&]() { ++disconnects; });
  channel.connect();

  sim.at(0, [&]() { ASSERT_TRUE(channel.send(std::string(100, 'a'))); });
  // At 0.5 ms the pump has moved the bytes in flight (delivery due at
  // 1 ms); the reset must kill them there too.
  sim.at(units::microseconds(500), [&]() { channel.reset(); });
  sim.run_until(units::seconds(1));

  EXPECT_TRUE(received.empty());
  EXPECT_EQ(channel.stats().bytes_lost, 100u);
  EXPECT_EQ(channel.stats().resets, 1u);
  EXPECT_EQ(disconnects, 1);
  EXPECT_FALSE(channel.connected());

  // Reconnecting gives a clean stream again.
  channel.connect();
  EXPECT_TRUE(channel.send("fresh"));
  sim.run_until(units::seconds(2));
  EXPECT_EQ(received, "fresh");
  EXPECT_EQ(channel.reconnects(), 1u);
}

TEST(ReportChannel, StallFreezesDeliveryButKeepsBytes) {
  sim::Simulation sim(1);
  net::ReportChannel::Config config;
  config.latency = units::microseconds(10);
  net::ReportChannel channel(sim, config);
  std::string received;
  std::vector<SimTime> delivery_times;
  channel.set_receiver([&](std::string_view c) {
    received.append(c);
    delivery_times.push_back(sim.now());
  });
  channel.connect();
  channel.stall(units::milliseconds(50));
  sim.at(0, [&]() { ASSERT_TRUE(channel.send("delayed payload")); });
  sim.run_until(units::seconds(1));
  EXPECT_EQ(received, "delayed payload");
  ASSERT_FALSE(delivery_times.empty());
  EXPECT_GE(delivery_times.front(), units::milliseconds(50));
  EXPECT_EQ(channel.stats().stalls, 1u);
  EXPECT_EQ(channel.stats().bytes_lost, 0u);
}

TEST(ReportChannel, DrainRatePacesSlowConsumer) {
  sim::Simulation sim(1);
  net::ReportChannel::Config config;
  config.drain_bps = 80'000;  // 10 KB/s
  config.latency = 0;
  config.random_chunking = false;
  config.max_chunk_bytes = 1000;
  net::ReportChannel channel(sim, config);
  SimTime last_delivery = 0;
  std::uint64_t received_bytes = 0;
  channel.set_receiver([&](std::string_view c) {
    received_bytes += c.size();
    last_delivery = sim.now();
  });
  channel.connect();
  sim.at(0, [&]() { ASSERT_TRUE(channel.send(std::string(10'000, 'z'))); });
  sim.run_until(units::seconds(5));
  EXPECT_EQ(received_bytes, 10'000u);
  // 10 KB at 10 KB/s: the tail must land around t = 1 s, not instantly.
  EXPECT_GE(last_delivery, units::milliseconds(900));
  EXPECT_LE(last_delivery, units::milliseconds(1100));
}

// ---------- FaultInjector ----------

TEST(FaultInjector, ScriptedFaultsFireAndAreCounted) {
  sim::Simulation sim(1);
  net::ReportChannel channel(sim, {});
  channel.connect();
  net::FaultInjector injector(sim, channel);
  injector.reset_at(units::seconds(1));
  injector.stall_at(units::seconds(2), units::milliseconds(100));
  injector.reset_at(units::seconds(3));
  injector.arm();
  sim.at(units::milliseconds(1500), [&]() { channel.connect(); });
  sim.run_until(units::seconds(5));
  EXPECT_EQ(injector.resets_injected(), 2u);
  EXPECT_EQ(injector.stalls_injected(), 1u);
  EXPECT_EQ(channel.stats().resets, 2u);
  EXPECT_EQ(channel.stats().stalls, 1u);
}

TEST(FaultInjector, RandomScheduleIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim(1);
    net::ReportChannel channel(sim, {});
    channel.connect();
    net::FaultInjector injector(sim, channel);
    net::FaultInjector::RandomProfile profile;
    profile.resets_per_second = 5.0;
    profile.stalls_per_second = 3.0;
    profile.until = units::seconds(10);
    profile.seed = seed;
    injector.enable_random(profile);
    injector.arm();
    sim.run_until(units::seconds(20));
    return std::pair(injector.resets_injected(), injector.stalls_injected());
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));
  EXPECT_NE(a, run(43));
  EXPECT_GT(a.first, 0u);
  EXPECT_GT(a.second, 0u);
}

TEST(FaultInjector, RandomFaultsRespectHorizon) {
  sim::Simulation sim(1);
  net::ReportChannel channel(sim, {});
  channel.connect();
  net::FaultInjector injector(sim, channel);
  net::FaultInjector::RandomProfile profile;
  profile.resets_per_second = 50.0;
  profile.until = units::seconds(1);
  profile.seed = 7;
  injector.enable_random(profile);
  injector.arm();
  sim.run_until(units::seconds(1));
  const auto at_horizon = injector.resets_injected();
  EXPECT_GT(at_horizon, 0u);
  sim.run_until(units::seconds(30));
  EXPECT_EQ(injector.resets_injected(), at_horizon);
}

// ---------- ExponentialBackoff ----------

TEST(ExponentialBackoff, GrowsGeometricallyAndCaps) {
  util::ExponentialBackoff::Config config;
  config.base = units::milliseconds(10);
  config.max = units::milliseconds(100);
  config.factor = 2.0;
  config.jitter = 0.0;
  util::ExponentialBackoff backoff(config);
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(10));
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(20));
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(40));
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(80));
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(100));  // capped
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(100));
  backoff.reset();
  EXPECT_EQ(backoff.next(0.0), units::milliseconds(10));
}

TEST(ExponentialBackoff, SaturatesInConstantTimeAndResetsAttempts) {
  util::ExponentialBackoff::Config config;
  config.base = units::milliseconds(10);
  config.max = units::seconds(5);
  config.factor = 2.0;
  config.jitter = 0.0;
  util::ExponentialBackoff backoff(config);
  // A long outage: thousands of consecutive failures. With the O(n)
  // rebuild this loop was quadratic; it must stay flat at `max` (and the
  // carried delay must not overflow into inf/garbage).
  SimTime last = 0;
  for (int i = 0; i < 100'000; ++i) last = backoff.next(0.0);
  EXPECT_EQ(last, config.max);
  EXPECT_EQ(backoff.attempts(), 100'000u);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_EQ(backoff.next(0.0), config.base);
  EXPECT_EQ(backoff.attempts(), 1u);
}

TEST(ExponentialBackoff, JitterShortensWithinBound) {
  util::ExponentialBackoff::Config config;
  config.base = units::milliseconds(100);
  config.jitter = 0.5;
  util::ExponentialBackoff backoff(config);
  const SimTime d = backoff.next(0.999);  // maximal jitter draw
  EXPECT_GE(d, units::milliseconds(50));
  EXPECT_LT(d, units::milliseconds(100));
}

// ---------- ResilientReportSink ----------

struct SinkHarness {
  sim::Simulation sim;
  ps::Archiver archiver;
  ps::Logstash logstash{archiver};
  net::ReportChannel channel;
  cp::ResilientReportSink sink;

  SinkHarness(std::uint64_t seed, net::ReportChannel::Config cc,
              cp::ResilientReportSink::Config sc)
      : sim(seed), channel(sim, cc), sink(sim, channel, sc) {
    channel.set_receiver(
        [this](std::string_view chunk) { logstash.tcp_input(chunk); });
    channel.on_disconnect([this]() { logstash.tcp_reset(); });
    logstash.set_transport_ack(
        [this](std::uint64_t seq) { sink.on_ack(seq); });
  }
};

cp::ResilientReportSink::Config quiet_sink_config() {
  cp::ResilientReportSink::Config sc;
  sc.health_interval = 0;  // keep the archive to just the test's reports
  sc.ack_timeout = units::milliseconds(50);
  sc.backoff.base = units::milliseconds(5);
  sc.backoff.max = units::milliseconds(200);
  return sc;
}

TEST(ResilientReportSink, ExactlyOnceThroughResetsAndStalls) {
  net::ReportChannel::Config cc;
  cc.latency = units::microseconds(200);
  SinkHarness h(7, cc, quiet_sink_config());

  constexpr int kReports = 200;
  for (int i = 0; i < kReports; ++i) {
    h.sim.at(units::milliseconds(static_cast<std::uint64_t>(i)),
             [&h, i]() {
               h.sink.on_report(report_doc("metric", i, i * 0.5));
             });
  }
  net::FaultInjector injector(h.sim, h.channel);
  injector.reset_at(units::milliseconds(50));
  injector.stall_at(units::milliseconds(80), units::milliseconds(30));
  injector.reset_at(units::milliseconds(120));
  injector.arm();
  h.sim.run_until(units::seconds(5));

  // Every report archived exactly once despite the faults.
  const auto docs = h.archiver.search("p4sonar-metric");
  ASSERT_EQ(docs.size(), static_cast<std::size_t>(kReports));
  std::set<std::int64_t> seqs;
  for (const auto& d : docs) {
    seqs.insert(d.at("@xmit_seq").as_int());
  }
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kReports));

  const auto& health = h.sink.health();
  EXPECT_EQ(health.emitted, static_cast<std::uint64_t>(kReports));
  EXPECT_EQ(health.acked, static_cast<std::uint64_t>(kReports));
  EXPECT_EQ(health.queued, 0u);
  EXPECT_EQ(health.dropped_overflow, 0u);
  EXPECT_GT(health.retried, 0u);  // the faults really cost retransmissions
  EXPECT_EQ(h.sink.reconnects(), 2u);
  EXPECT_GT(h.logstash.duplicates_dropped() + health.retried, 0u);
}

TEST(ResilientReportSink, DropsOldestWhenQueueOverflows) {
  net::ReportChannel::Config cc;
  cc.send_buffer_bytes = 0;  // wire never accepts a byte
  auto sc = quiet_sink_config();
  sc.queue_capacity = 4;
  SinkHarness h(1, cc, sc);

  for (int i = 0; i < 10; ++i) {
    h.sink.on_report(report_doc("metric", i, 1.0));
  }
  const auto& health = h.sink.health();
  EXPECT_EQ(health.emitted, 10u);
  EXPECT_EQ(health.dropped_overflow, 6u);
  EXPECT_EQ(health.queued, 4u);
  EXPECT_GT(health.send_failures, 0u);
  EXPECT_EQ(h.archiver.total_docs(), 0u);
  // Conservation even in degradation: everything is accounted for.
  EXPECT_EQ(health.emitted,
            health.dropped_overflow + health.queued + health.acked);
}

TEST(ResilientReportSink, RetransmitsUntilAcked) {
  net::ReportChannel::Config cc;
  cc.latency = units::microseconds(100);
  auto sc = quiet_sink_config();
  sc.ack_timeout = units::milliseconds(10);
  // Receiver that swallows bytes without ever acking.
  sim::Simulation sim(1);
  net::ReportChannel channel(sim, cc);
  channel.set_receiver([](std::string_view) {});
  cp::ResilientReportSink sink(sim, channel, sc);
  sink.on_report(report_doc("metric", 1, 1.0));
  sim.run_until(units::milliseconds(200));
  const auto& health = sink.health();
  EXPECT_EQ(health.sent, 1u);
  EXPECT_GT(health.retried, 5u);  // kept trying every ack_timeout
  EXPECT_EQ(health.acked, 0u);
  EXPECT_EQ(health.queued, 1u);
}

TEST(ResilientReportSink, EmitsHealthReportsThroughOwnChannel) {
  net::ReportChannel::Config cc;
  auto sc = quiet_sink_config();
  sc.health_interval = units::milliseconds(100);
  SinkHarness h(1, cc, sc);
  h.sim.run_until(units::seconds(1));
  const auto docs = h.archiver.search("p4sonar-transport_health");
  ASSERT_GE(docs.size(), 9u);
  for (const char* field :
       {"emitted", "sent", "retried", "acked", "dropped", "reconnects",
        "queued", "send_failures"}) {
    EXPECT_TRUE(docs.back().contains(field)) << field;
  }
  // The health stream observes itself being delivered.
  EXPECT_GT(docs.back().at("acked").as_int(), 0);
}

TEST(ResilientReportSink, HealthCountsLateDeliveredDropAsAcked) {
  // A frame dropped from the queue after its bytes entered the wire can
  // still arrive; the ack must reclassify it from dropped to delivered so
  // dropped + archived == emitted stays exact.
  net::ReportChannel::Config cc;
  cc.latency = units::milliseconds(10);  // slow enough to race the drop
  cc.random_chunking = false;
  auto sc = quiet_sink_config();
  sc.queue_capacity = 1;
  SinkHarness h(1, cc, sc);
  h.sim.at(0, [&]() { h.sink.on_report(report_doc("metric", 0, 0.0)); });
  // Before the first frame's delivery at ~10 ms, overflow the queue.
  h.sim.at(units::milliseconds(1),
           [&]() { h.sink.on_report(report_doc("metric", 1, 1.0)); });
  h.sim.run_until(units::seconds(2));
  const auto& health = h.sink.health();
  const std::uint64_t archived = h.archiver.total_docs();
  EXPECT_EQ(health.emitted, 2u);
  EXPECT_EQ(archived + health.dropped_overflow, health.emitted);
  EXPECT_EQ(health.acked, archived);
}

}  // namespace
}  // namespace p4s
