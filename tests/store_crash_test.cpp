// Crash-injection matrix for the store's multi-file write paths.
//
// The failpoint hook fires at every fsync/rename boundary inside seal,
// tiered compaction, manifest publication, and WAL rotation. At each
// named boundary we photograph the store directory (a recursive copy —
// exactly what a power cut would leave on a journalled filesystem),
// then at the end reopen every photograph and require that (a)
// `Store::verify` passes and (b) no document that had been committed
// when the photograph was taken is missing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "store/store.hpp"

namespace p4s::store {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "p4s_store_crash_" + name;
  fs::remove_all(dir);
  return dir;
}

util::Json doc_at(std::int64_t ts, std::int64_t value) {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = ts;
  doc["throughput_bps"] = value;
  doc["switch_id"] = (ts % 2 == 0) ? "s0" : "s1";
  return doc;
}

struct CrashImage {
  std::string boundary;
  std::string dir;
  std::uint64_t committed_docs = 0;  // committed when the image was taken
  std::uint64_t appended_docs = 0;   // appended (maybe uncommitted) then
};

// All boundaries the write paths announce. The test asserts every one
// of these actually fired, so a renamed/removed failpoint cannot
// silently shrink the matrix.
const char* const kBoundaries[] = {
    "seal.begin",          "seal.segment_written",
    "seal.manifest_written", "seal.wal_rotated",
    "compact.begin",       "compact.segment_written",
    "compact.manifest_written", "compact.retired",
    "manifest.tmp_written", "wal_rotate.tmp_written",
    "wal_rotate.renamed",
};

TEST(StoreCrash, EveryWriteBoundaryRecoversWithoutLosingCommittedDocs) {
  const std::string live_dir = fresh_dir("live");
  const std::string image_root = fresh_dir("images");
  fs::create_directories(image_root);

  // Every append is committed before append() returns, so the committed
  // count at any boundary is simply the number of completed appends.
  std::uint64_t appended = 0;
  std::uint64_t committed = 0;

  std::vector<CrashImage> images;
  std::map<std::string, int> fired;
  set_store_failpoint_hook([&](std::string_view name) {
    const int shot = fired[std::string(name)]++;
    if (shot >= 2) return;  // two photographs per boundary are plenty
    CrashImage image;
    image.boundary = std::string(name);
    image.dir = image_root + "/" + image.boundary + "." +
                std::to_string(shot);
    image.committed_docs = committed;
    image.appended_docs = appended;
    fs::create_directories(image.dir);
    fs::copy(live_dir, image.dir,
             fs::copy_options::recursive | fs::copy_options::overwrite_existing);
    images.push_back(std::move(image));
  });

  {
    StoreConfig config;
    config.wal_batch_docs = 1;  // every append commits immediately
    config.seal_min_docs = 4;
    config.compact_fanin = 2;
    Store store(live_dir, config);
    for (int i = 0; i < 64; ++i) {
      store.append("tput", doc_at(i, 100 + i));
      ++appended;
      ++committed;
      store.maintain();  // seals every 4 docs, tier-merges pairs
    }
    // One explicit full compaction to drive the compact.* boundaries on
    // a larger merge as well.
    store.compact("tput");
    store.flush();
  }
  set_store_failpoint_hook(nullptr);

  // The whole matrix must have fired; a boundary that never fires means
  // the hook site was dropped and this test is no longer covering it.
  for (const char* boundary : kBoundaries) {
    EXPECT_GE(fired[boundary], 1) << "failpoint never fired: " << boundary;
  }
  ASSERT_FALSE(images.empty());

  for (const auto& image : images) {
    SCOPED_TRACE("crash image at " + image.boundary);

    // A power cut here leaves exactly these files. Offline verify first.
    const auto verify = Store::verify(image.dir);
    EXPECT_TRUE(verify.ok)
        << (verify.errors.empty() ? "no detail" : verify.errors[0]);

    // Then a real recovery: reopen and count.
    Store recovered(image.dir);
    const std::uint64_t docs = recovered.doc_count("tput");
    EXPECT_GE(docs, image.committed_docs)
        << "lost committed docs (had " << image.committed_docs << ")";
    EXPECT_LE(docs, image.appended_docs)
        << "resurrected docs that were never appended";

    // Recovered data is coherent: every doc is scannable and carries
    // its fields.
    std::uint64_t visited = 0;
    recovered.scan("tput", Store::ScanOptions{}, [&](const util::Json& doc) {
      EXPECT_TRUE(doc.contains("ts_ns"));
      EXPECT_TRUE(doc.contains("throughput_bps"));
      ++visited;
      return true;
    });
    EXPECT_EQ(visited, docs);

    // And the recovered store can keep working: append + seal + verify.
    recovered.append("tput", doc_at(10'000, 1));
    recovered.flush();
    recovered.seal("tput");
    EXPECT_EQ(recovered.doc_count("tput"), docs + 1);
  }

  // Each reopened image rewrote its manifest / WAL; re-verify the
  // post-recovery state too (recovery must not corrupt what it healed).
  for (const auto& image : images) {
    SCOPED_TRACE("post-recovery verify at " + image.boundary);
    EXPECT_TRUE(Store::verify(image.dir).ok);
  }
}

// The classic torn-manifest shape deserves its own spelled-out case:
// MANIFEST.tmp fully written, crash before the rename. The orphaned
// .tmp must be ignored on reopen and the previous manifest must win.
TEST(StoreCrash, OrphanManifestTmpIsIgnoredOnReopen) {
  const std::string dir = fresh_dir("tmp_orphan");
  {
    Store store(dir, StoreConfig{});
    store.append("idx", doc_at(1, 10));
    store.flush();
    store.seal("idx");  // manifest generation 1 on disk
  }
  // Fabricate the torn state: a stale .tmp beside the good manifest.
  {
    std::ofstream tmp(dir + "/MANIFEST.tmp");
    tmp << "{\"garbage\": true}";
  }
  Store reopened(dir);
  EXPECT_EQ(reopened.doc_count("idx"), 1u);
  EXPECT_EQ(reopened.segment_count("idx"), 1u);
  EXPECT_TRUE(Store::verify(dir).ok);
}

}  // namespace
}  // namespace p4s::store
