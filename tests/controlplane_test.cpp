// Tests: switch control plane — extraction timers at configured rates,
// metric derivation from register deltas, alert thresholds with rate
// boost, digest consumption, terminated-flow reports and aggregates.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "controlplane/control_plane.hpp"
#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s::cp {
namespace {

/// Sink collecting Report_v1 documents by kind.
struct CollectingSink : ReportSink {
  std::vector<util::Json> all;
  void on_report(const util::Json& report) override {
    all.push_back(report);
  }
  std::size_t count(const std::string& kind) const {
    std::size_t n = 0;
    for (const auto& doc : all) {
      if (doc.at("report").as_string() == kind) ++n;
    }
    return n;
  }
  std::vector<util::Json> of(const std::string& kind) const {
    std::vector<util::Json> out;
    for (const auto& doc : all) {
      if (doc.at("report").as_string() == kind) out.push_back(doc);
    }
    return out;
  }
};

struct ControlPlaneFixture : ::testing::Test {
  sim::Simulation sim;
  telemetry::DataPlaneProgram::Config dp_config;
  std::unique_ptr<telemetry::DataPlaneProgram> program;
  std::unique_ptr<p4::P4Switch> sw;
  ControlPlaneConfig cp_config;
  std::unique_ptr<ControlPlane> cp;
  CollectingSink sink;

  const net::Ipv4Address src = net::ipv4(10, 0, 0, 10);
  const net::Ipv4Address dst = net::ipv4(10, 1, 0, 10);
  std::uint32_t seq = 1000;
  std::uint16_t ip_id = 0;

  void SetUp() override {
    dp_config.tracker.promotion_bytes = 1;  // promote on first packet
    program = std::make_unique<telemetry::DataPlaneProgram>(dp_config);
    sw = std::make_unique<p4::P4Switch>(sim, "dut");
    sw->load_program(*program);
    cp_config.core_buffer_bytes = 1'000'000;
    cp_config.bottleneck_bps = units::mbps(100);
    cp_config.flow_idle_timeout = units::seconds(2);
  }

  void make_cp() {
    cp = std::make_unique<ControlPlane>(sim, *program, cp_config);
    cp->set_sink(&sink);
  }

  net::Packet data_pkt(std::uint32_t payload = 1460) {
    net::Packet p =
        net::make_tcp_packet(src, dst, 40000, 5201, seq, 0,
                             net::tcpflags::kAck, payload, 1 << 16);
    p.ip.id = ip_id++;
    seq += payload;
    return p;
  }

  /// Drive a steady packet stream (ingress+egress copies) at `pps` for
  /// `duration`, starting now.
  void stream(double pps, SimTime duration) {
    const auto gap = static_cast<SimTime>(1e9 / pps);
    sim.every(sim.now() + gap, gap, [this, until = sim.now() + duration]() {
      net::Packet p = data_pkt();
      sw->on_mirrored(p, net::MirrorPoint::kIngress);
      sw->on_mirrored(p, net::MirrorPoint::kEgress);
      return sim.now() < until;
    });
  }
};

TEST_F(ControlPlaneFixture, ThroughputExtractedAtConfiguredRate) {
  cp_config.metrics[0].interval = units::milliseconds(500);  // t_N
  make_cp();
  cp->start();
  stream(1000.0, units::seconds(5));
  sim.run_until(units::seconds(5));
  // ~10 throughput ticks in 5 s.
  const auto reports = sink.of("throughput");
  EXPECT_GE(reports.size(), 8u);
  EXPECT_LE(reports.size(), 11u);
  // 1000 pps x 1500 B = 12 Mbps; extraction uses IP total_len.
  const double bps = reports.back().at("throughput_bps").as_double();
  EXPECT_NEAR(bps, 1000.0 * 1500 * 8, 0.1 * 1000 * 1500 * 8);
}

TEST_F(ControlPlaneFixture, FlowDetectedReportEmitted) {
  make_cp();
  cp->start();
  stream(500.0, units::seconds(1));
  sim.run_until(units::seconds(1));
  const auto detected = sink.of("flow_detected");
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0].at("flow").at("src_ip").as_string(), "10.0.0.10");
  EXPECT_EQ(detected[0].at("flow").at("dst_ip").as_string(), "10.1.0.10");
  EXPECT_EQ(cp->flows().size(), 1u);
}

TEST_F(ControlPlaneFixture, RttReportConvertsToMilliseconds) {
  make_cp();
  cp->start();
  // Park a data packet; ACK arrives 40 ms later.
  sim.at(units::milliseconds(10), [&]() {
    sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
  });
  sim.at(units::milliseconds(50), [&]() {
    net::Packet ack = net::make_tcp_packet(dst, src, 5201, 40000, 1, seq,
                                           net::tcpflags::kAck, 0, 1 << 16);
    sw->on_mirrored(ack, net::MirrorPoint::kIngress);
  });
  sim.run_until(units::seconds(3));
  const auto reports = sink.of("rtt");
  ASSERT_FALSE(reports.empty());
  EXPECT_NEAR(reports.back().at("rtt_ms").as_double(), 40.0, 0.5);
}

TEST_F(ControlPlaneFixture, QueueOccupancyFromDelayAndDrainTime) {
  make_cp();
  cp->start();
  // Queue delay 40 ms; drain time = 1 MB * 8 / 100 Mbps = 80 ms -> 50%.
  const net::Packet p = data_pkt();
  sim.at(units::milliseconds(10), [&]() {
    sw->on_mirrored(p, net::MirrorPoint::kIngress);
  });
  sim.at(units::milliseconds(50), [&]() {
    sw->on_mirrored(p, net::MirrorPoint::kEgress);
  });
  sim.run_until(units::seconds(2));
  const auto reports = sink.of("queue_occupancy");
  ASSERT_FALSE(reports.empty());
  EXPECT_NEAR(reports.back().at("occupancy_pct").as_double(), 50.0, 1.0);
}

TEST_F(ControlPlaneFixture, AlertFiresAndBoostsRate) {
  cp_config.metrics[static_cast<int>(MetricKind::kQueueOccupancy)] = {
      units::seconds(1), /*threshold=*/30.0, /*enabled=*/true,
      /*boosted=*/units::milliseconds(100)};
  make_cp();
  cp->start();
  int alerts_seen = 0;
  cp->set_on_alert([&](const ControlPlane::Alert& alert) {
    EXPECT_EQ(alert.metric, MetricKind::kQueueOccupancy);
    EXPECT_GE(alert.value, 30.0);
    ++alerts_seen;
  });
  // Persistent 40 ms queue delay = 50% occupancy > 30% threshold.
  sim.every(units::milliseconds(50), units::milliseconds(50), [this]() {
    net::Packet p = data_pkt();
    sw->on_mirrored(p, net::MirrorPoint::kIngress);
    sim.after(units::milliseconds(40), [this, p]() {
      sw->on_mirrored(p, net::MirrorPoint::kEgress);
    });
    return sim.now() < units::seconds(5);
  });
  sim.run_until(units::seconds(5));
  EXPECT_GT(alerts_seen, 0);
  EXPECT_FALSE(cp->alerts().empty());
  // Boost: after the first alert (~1 s) the interval drops to 100 ms, so
  // far more than 5 extractions happen in 5 s.
  EXPECT_GT(sink.count("queue_occupancy"), 20u);
  EXPECT_GT(sink.count("alert"), 0u);
}

TEST_F(ControlPlaneFixture, NoAlertWhenDisabled) {
  make_cp();
  cp->start();
  stream(2000.0, units::seconds(2));
  sim.run_until(units::seconds(2));
  EXPECT_TRUE(cp->alerts().empty());
}

TEST_F(ControlPlaneFixture, IdleFlowFinalized) {
  make_cp();
  cp->start();
  stream(1000.0, units::seconds(1));
  sim.run_until(units::seconds(5));  // idle > 2 s after the stream ends
  ASSERT_EQ(cp->final_reports().size(), 1u);
  const auto& report = cp->final_reports()[0];
  EXPECT_GT(report.packets, 900u);
  EXPECT_EQ(report.bytes, report.packets * 1500);
  EXPECT_GT(report.avg_throughput_bps, 0.0);
  EXPECT_EQ(report.retransmissions, 0u);
  EXPECT_EQ(cp->flows().size(), 0u);  // slot released
  EXPECT_EQ(sink.count("flow_final"), 1u);
}

TEST_F(ControlPlaneFixture, FinFinalizesImmediately) {
  make_cp();
  cp->start();
  sim.at(units::milliseconds(100), [&]() {
    sw->on_mirrored(data_pkt(), net::MirrorPoint::kIngress);
    net::Packet fin = net::make_tcp_packet(
        src, dst, 40000, 5201, seq, 0,
        net::tcpflags::kFin | net::tcpflags::kAck, 0, 1 << 16);
    sw->on_mirrored(fin, net::MirrorPoint::kIngress);
  });
  sim.run_until(units::milliseconds(300));  // well before idle timeout
  EXPECT_EQ(cp->final_reports().size(), 1u);
}

TEST_F(ControlPlaneFixture, AggregatesIncludeFairnessAndUtilization) {
  make_cp();
  cp->start();
  // Two flows with a 3:1 packet-rate ratio.
  std::uint32_t seq2 = 5000;
  std::uint16_t id2 = 0;
  stream(3000.0, units::seconds(3));
  sim.every(units::milliseconds(1), units::milliseconds(1), [&]() {
    net::Packet p = net::make_tcp_packet(src, net::ipv4(10, 2, 0, 10),
                                         40001, 5201, seq2, 0,
                                         net::tcpflags::kAck, 1460, 1 << 16);
    p.ip.id = id2++;
    seq2 += 1460;
    sw->on_mirrored(p, net::MirrorPoint::kIngress);
    return sim.now() < units::seconds(3);
  });
  sim.run_until(units::seconds(3));
  const auto& agg = cp->aggregates();
  EXPECT_EQ(agg.active_flows, 2u);
  // Jain for rates {3,1}: 16/(2*10) = 0.8.
  ASSERT_TRUE(agg.fairness.has_value());
  EXPECT_NEAR(*agg.fairness, 0.8, 0.05);
  // 3000 pps * 1500 B * 8 = 36 Mbps + 12 Mbps = 48 of 100 Mbps.
  EXPECT_NEAR(agg.link_utilization, 0.48, 0.06);
  EXPECT_GT(sink.count("aggregate"), 0u);
}

TEST_F(ControlPlaneFixture, IdleLinkFairnessIsUndefined) {
  make_cp();
  cp->start();
  // No traffic at all: extraction ticks happen, but there is nothing to
  // share, so the fairness index must be undefined — not 1.0.
  sim.run_until(units::seconds(3));
  EXPECT_FALSE(cp->aggregates().fairness.has_value());
  const auto reports = sink.of("aggregate");
  ASSERT_FALSE(reports.empty());
  EXPECT_TRUE(reports.back().at("fairness").is_null());
}

TEST_F(ControlPlaneFixture, SamplesPerSecondConfiguration) {
  make_cp();
  cp->set_samples_per_second(MetricKind::kRtt, 4.0);
  EXPECT_EQ(cp->metric_config(MetricKind::kRtt).interval,
            units::milliseconds(250));
  // The name-based variant reaches the same builtin entry.
  cp->set_samples_per_second("rtt", 8.0);
  EXPECT_EQ(cp->metric_config(MetricKind::kRtt).interval,
            units::milliseconds(125));
}

TEST_F(ControlPlaneFixture, RejectsInvalidSampleRates) {
  make_cp();
  cp->set_samples_per_second(MetricKind::kRtt, 4.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(cp->set_samples_per_second(MetricKind::kRtt, -1.0),
               std::invalid_argument);
  EXPECT_THROW(cp->set_samples_per_second(MetricKind::kRtt, 0.0),
               std::invalid_argument);
  EXPECT_THROW(cp->set_samples_per_second(MetricKind::kRtt, nan),
               std::invalid_argument);
  EXPECT_THROW(cp->set_samples_per_second(MetricKind::kRtt, inf),
               std::invalid_argument);
  EXPECT_THROW(cp->set_samples_per_second("no_such_metric", 1.0),
               std::invalid_argument);
  // A rejected rate must not have disturbed the armed timer.
  EXPECT_EQ(cp->metric_config(MetricKind::kRtt).interval,
            units::milliseconds(250));
}

TEST_F(ControlPlaneFixture, RejectsInvalidAlertThresholds) {
  make_cp();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cp->set_alert(MetricKind::kRtt, -5.0), std::invalid_argument);
  EXPECT_THROW(cp->set_alert(MetricKind::kRtt, nan), std::invalid_argument);
  EXPECT_THROW(cp->set_alert(MetricKind::kRtt, 10.0, /*boosted_sps=*/-2.0),
               std::invalid_argument);
  EXPECT_THROW(cp->set_alert(MetricKind::kRtt, 10.0, /*boosted_sps=*/nan),
               std::invalid_argument);
  EXPECT_FALSE(cp->metric_config(MetricKind::kRtt).alert_enabled);
  cp->set_alert(MetricKind::kRtt, 10.0, 20.0);
  EXPECT_TRUE(cp->metric_config(MetricKind::kRtt).alert_enabled);
}

TEST_F(ControlPlaneFixture, SetAlertConfiguresThresholdAndBoost) {
  make_cp();
  cp->set_alert(MetricKind::kQueueOccupancy, 30.0, 10.0);
  const auto& mc = cp->metric_config(MetricKind::kQueueOccupancy);
  EXPECT_TRUE(mc.alert_enabled);
  EXPECT_DOUBLE_EQ(mc.alert_threshold, 30.0);
  EXPECT_EQ(mc.boosted_interval, units::milliseconds(100));
  cp->clear_alert(MetricKind::kQueueOccupancy);
  EXPECT_FALSE(cp->metric_config(MetricKind::kQueueOccupancy).alert_enabled);
}

// The tentpole claim: a fifth metric is one register_extractor() call —
// it gets its own timer, reports, name-based configuration and alerts
// without touching the shared extraction logic.
TEST_F(ControlPlaneFixture, FifthMetricIsOneRegistration) {
  make_cp();
  ControlPlane::MetricExtractor volume;
  volume.name = "volume";
  volume.value_key = "volume_bytes";
  volume.read = [this](std::uint16_t slot, ControlPlane::FlowState&,
                       SimTime) {
    return static_cast<double>(program->bytes(slot));
  };
  MetricConfig config;
  config.interval = units::milliseconds(200);
  cp->register_extractor(std::move(volume), config);
  EXPECT_EQ(cp->extractor_count(), kMetricCount + 1);
  cp->set_alert("volume", /*threshold=*/1.0);

  cp->start();
  stream(1000.0, units::seconds(2));
  sim.run_until(units::seconds(2));

  const auto reports = sink.of("volume");
  EXPECT_GT(reports.size(), 5u);
  EXPECT_TRUE(reports.back().contains("volume_bytes"));
  ASSERT_FALSE(cp->alerts().empty());
  bool extension_alert = false;
  for (const auto& alert : cp->alerts()) {
    if (alert.metric_name == "volume") {
      extension_alert = true;
      EXPECT_FALSE(alert.metric.has_value());  // not a builtin kind
    }
  }
  EXPECT_TRUE(extension_alert);

  // Name-based configuration reaches the extension entry.
  cp->set_samples_per_second("volume", 100.0);
  EXPECT_EQ(cp->extractor_config("volume").interval,
            units::milliseconds(10));

  ControlPlane::MetricExtractor dup;
  dup.name = "volume";
  dup.read = [](std::uint16_t, ControlPlane::FlowState&, SimTime) {
    return 0.0;
  };
  EXPECT_THROW(cp->register_extractor(std::move(dup)),
               std::invalid_argument);
}

TEST_F(ControlPlaneFixture, LimitationReportsPiggybackOnThroughput) {
  make_cp();
  cp->start();
  stream(1000.0, units::seconds(2));
  sim.run_until(units::seconds(2));
  EXPECT_GT(sink.count("limitation"), 0u);
}

TEST(MetricKindNames, RoundTrip) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const auto kind = static_cast<MetricKind>(i);
    EXPECT_EQ(metric_from_name(metric_name(kind)), kind);
  }
  EXPECT_EQ(metric_from_name("RTT"), MetricKind::kRtt);
  EXPECT_THROW(metric_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace p4s::cp
