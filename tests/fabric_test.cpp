// Monitoring-fabric tests: N MonitoredSwitch instances over one
// simulation and one report transport.
//
//   * Adding passive monitor sites must not perturb the measurement:
//     in a 3-switch fabric, switch 0's Report_v1 series stays byte
//     identical to the committed single-switch golden (fig9.reports.txt).
//   * Per-site conservation: with a faulty shared transport, every
//     site's report stream arrives complete and correctly tagged.
//   * The engine registry really is the definition of "every engine":
//     release_slot() reaches each registered engine, including ones
//     registered by an extension, and establishes slot_cleared().
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "psonar/maddash.hpp"

namespace p4s {
namespace {

using core::MonitoredSwitchConfig;
using core::MonitoringSystem;
using core::MonitoringSystemConfig;
using core::TapPoint;
using units::seconds;

const std::string kGoldenReports =
    std::string(P4S_TRACE_DATA_DIR) + "/fig9.reports.txt";

struct Collector : cp::ReportSink {
  std::vector<std::string> lines;
  void on_report(const util::Json& report) override {
    lines.push_back(report.dump());
  }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// The golden-trace scenario (trace_golden_test.cpp), verbatim: scaled
// Figure 9, 2 Mbps bottleneck, seed 1, 2 samples/s, three transfers.
MonitoringSystemConfig golden_scenario() {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  return config;
}

void run_golden_workload(MonitoringSystem& system) {
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  system.start();
  system.add_transfer(0).start_at(seconds(1));
  system.add_transfer(1).start_at(seconds(2));
  system.add_transfer(2).start_at(seconds(5));
  system.run_until(seconds(9));
}

// Growing the fabric from one switch to three must leave the original
// site's measurement untouched: the extra monitors are passive taps on
// other ports, so switch 0's report series stays byte-identical to the
// committed single-switch golden.
TEST(Fabric, ThreeSwitchRunKeepsSiteZeroSeriesByteIdentical) {
  auto config = golden_scenario();
  config.switches = {
      MonitoredSwitchConfig{"", TapPoint::kCoreBottleneck},
      MonitoredSwitchConfig{"site-b", TapPoint::kWanExt0},
      MonitoredSwitchConfig{"site-c", TapPoint::kWanExt1},
  };
  MonitoringSystem system(config);
  ASSERT_EQ(system.switch_count(), 3u);

  Collector sites[3];
  for (std::size_t i = 0; i < 3; ++i) {
    system.monitored_switch(i).control_plane().set_sink(&sites[i]);
  }
  run_golden_workload(system);

  const auto golden = read_lines(kGoldenReports);
  ASSERT_FALSE(golden.empty());
  ASSERT_EQ(golden.size(), sites[0].lines.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i], sites[0].lines[i])
        << "switch-0 report " << i << " diverged from the golden";
  }

  // The extra sites measured their own taps and tagged their reports.
  for (std::size_t i = 1; i < 3; ++i) {
    ASSERT_FALSE(sites[i].lines.empty());
    const std::string& id = system.monitored_switch(i).id();
    for (const auto& line : sites[i].lines) {
      EXPECT_NE(line.find("\"switch_id\":\"" + id + "\""),
                std::string::npos)
          << line;
    }
  }
  // Switch 0 is untagged: the legacy report format, byte for byte.
  for (const auto& line : sites[0].lines) {
    EXPECT_EQ(line.find("switch_id"), std::string::npos) << line;
  }
}

// Per-site conservation over a faulty shared transport: every control
// plane's emitted stream must land in the archive exactly once, each
// document carrying its site's tag. Counters are read through
// fabric_stats() — the merge-barrier snapshot — so the same check is
// valid under the sharded parallel runtime, where per-site P4 counters
// are worker-owned and a direct read mid-flush could be torn.
void run_conservation_check(std::size_t parallel) {
  MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  config.seed = 7;
  config.parallel = parallel;
  config.switches = {
      MonitoredSwitchConfig{"site-a", TapPoint::kCoreBottleneck},
      MonitoredSwitchConfig{"site-b", TapPoint::kWanExt0},
      MonitoredSwitchConfig{"site-c", TapPoint::kWanExt1},
  };
  config.transport.resilient = true;
  config.transport.sink.ack_timeout = units::milliseconds(100);
  config.transport.sink.backoff.base = units::milliseconds(20);
  config.transport.sink.backoff.max = units::milliseconds(500);
  config.transport.sink.health_interval = 0;
  MonitoringSystem system(config);

  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  auto& injector = system.fault_injector();
  injector.reset_at(seconds(3));
  injector.stall_at(seconds(5), units::milliseconds(800));
  injector.reset_at(seconds(7));
  system.start();
  auto& flow0 = system.add_transfer(0);
  flow0.start_at(seconds(1));
  flow0.stop_at(seconds(8));
  auto& flow1 = system.add_transfer(1);
  flow1.start_at(seconds(4));
  flow1.stop_at(seconds(8));
  // Quiesce the periodic reports, then run long enough for the wire and
  // retry queues to drain completely.
  system.simulation().at(seconds(11), [&system]() {
    system.psonar().psconfig().execute(
        "psconfig config-P4 --samples_per_second 0.01");
  });
  system.run_until(seconds(14));

  ASSERT_EQ(system.report_sink().health().queued, 0u);
  EXPECT_EQ(system.report_sink().reconnects(), 2u);

  // Count archived documents per site tag across all indices.
  std::map<std::string, std::uint64_t> archived_by_site;
  auto& archiver = system.psonar().archiver();
  std::uint64_t total_archived = 0;
  for (const auto& index : archiver.indices()) {
    for (const auto& doc : archiver.search(index)) {
      auto site = ps::Archiver::field_at(doc, "switch_id");
      ASSERT_TRUE(site.has_value()) << doc.dump();
      ++archived_by_site[site->as_string()];
      ++total_archived;
    }
  }

  const auto stats = system.fabric_stats();
  ASSERT_EQ(stats.sites.size(), system.switch_count());
  std::uint64_t total_emitted = 0;
  for (const auto& site : stats.sites) {
    ASSERT_GT(site.reports_emitted, 0u) << site.id;
    EXPECT_EQ(archived_by_site[site.id], site.reports_emitted)
        << "site " << site.id << " lost or duplicated reports";
    // Mirror-pipeline conservation at the barrier: every parsed frame
    // was mirrored first (copies in flight across the TAP are the only
    // allowed difference).
    EXPECT_LE(site.processed + site.parse_errors, site.mirrored) << site.id;
    total_emitted += site.reports_emitted;
  }
  EXPECT_EQ(total_archived, total_emitted);
  EXPECT_EQ(stats.reports_emitted, total_emitted);

  // MaDDash renders the fabric as one grid row per site: every site's
  // tap observed at least one tracked flow.
  ps::MadDash maddash(archiver);
  const auto grid = maddash.site_grid(units::mbps(1), units::mbps(0));
  EXPECT_EQ(grid.rows.size(), 3u);
}

TEST(Fabric, PerSiteReportStreamsSurviveTransportFaults) {
  run_conservation_check(1);
}

// The identical scenario under the sharded runtime: the resilient
// transport's timing (reconnects, retries, ack seqs) and every per-site
// count must come out exactly as in the serial run.
TEST(Fabric, PerSiteConservationHoldsUnderParallelExecution) {
  run_conservation_check(4);
}

// ---------- Engine registry invariant (release_slot coverage) ----------

/// An extension engine with one dirty bit per slot.
struct MarkerEngine : telemetry::MetricEngine {
  std::array<bool, telemetry::kFlowSlots> dirty{};
  std::string_view name() const override { return "marker"; }
  void clear_slot(std::uint16_t slot) override { dirty[slot] = false; }
  bool slot_cleared(std::uint16_t slot) const override {
    return !dirty[slot];
  }
};

TEST(Fabric, ReleaseSlotClearsEveryRegisteredEngine) {
  sim::Simulation sim;
  telemetry::DataPlaneProgram::Config dp_config;
  dp_config.tracker.promotion_bytes = 1;
  telemetry::DataPlaneProgram program(dp_config);
  p4::P4Switch sw(sim, "dut");
  sw.load_program(program);

  MarkerEngine marker;
  program.register_engine(marker);

  // Drive a few distinct flows so several slots accumulate state in
  // every built-in engine.
  const auto src = net::ipv4(10, 0, 0, 10);
  std::uint32_t seq = 1000;
  for (int f = 0; f < 4; ++f) {
    const auto dst = net::ipv4(10, 1, 0, static_cast<std::uint8_t>(f + 1));
    for (int p = 0; p < 50; ++p) {
      net::Packet pkt = net::make_tcp_packet(
          src, dst, static_cast<std::uint16_t>(40000 + f), 5201, seq, 0,
          net::tcpflags::kAck, 1460, 1 << 16);
      pkt.ip.id = static_cast<std::uint16_t>(seq);
      seq += 1460;
      sim.run_until(sim.now() + units::microseconds(100));
      sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
      sw.on_mirrored(pkt, net::MirrorPoint::kEgress);
    }
  }

  // The registry holds the 7 built-in engines plus the extension.
  ASSERT_EQ(program.engines().size(), 8u);

  std::vector<std::uint16_t> occupied;
  for (std::uint16_t s = 0; s < telemetry::kFlowSlots; ++s) {
    if (program.tracker().occupied(s)) occupied.push_back(s);
  }
  ASSERT_GE(occupied.size(), 4u);

  for (const std::uint16_t slot : occupied) {
    marker.dirty[slot] = true;
    EXPECT_FALSE(program.slot_cleared(slot));
    program.release_slot(slot);
    // The program-level invariant...
    EXPECT_TRUE(program.slot_cleared(slot)) << "slot " << slot;
    // ...and each engine individually, by name.
    for (const telemetry::MetricEngine* engine : program.engines()) {
      EXPECT_TRUE(engine->slot_cleared(slot))
          << engine->name() << " left state in slot " << slot;
    }
  }
  // release reached the extension engine through the registry.
  for (const std::uint16_t slot : occupied) {
    EXPECT_FALSE(marker.dirty[slot]);
  }
}

}  // namespace
}  // namespace p4s
