// Tests: the extended perfSONAR tool set — traceroute (switch ICMP
// time-exceeded), one-way UDP streams (delay/jitter/loss), pSConfig mesh
// templates, and the MaDDash grid builder.
#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "psonar/maddash.hpp"
#include "psonar/psconfig.hpp"
#include "psonar/pscheduler.hpp"

namespace p4s::ps {
namespace {

struct ToolsFixture : ::testing::Test {
  sim::Simulation sim{5};
  net::Network network{sim};
  net::PaperTopology topo;
  Archiver archiver;
  Logstash logstash{archiver};
  PScheduler scheduler{sim, logstash};

  void SetUp() override {
    net::PaperTopologyConfig config;
    config.bottleneck_bps = units::mbps(200);
    topo = net::make_paper_topology(network, config);
  }

  std::map<std::string, net::Host*> host_map() {
    return {
        {"psonar-internal", topo.psonar_internal},
        {"psonar-ext1", topo.psonar_ext[0]},
        {"psonar-ext2", topo.psonar_ext[1]},
        {"dtn-internal", topo.dtn_internal},
        {"dtn-ext1", topo.dtn_ext[0]},
    };
  }
};

// ---------- traceroute ----------

TEST_F(ToolsFixture, TracerouteDiscoversBothSwitches) {
  PScheduler::TracerouteTask task;
  task.start = units::seconds(1);
  scheduler.schedule_traceroute(*topo.dtn_internal, *topo.dtn_ext[0], task);
  sim.run_until(units::seconds(10));
  ASSERT_EQ(scheduler.traceroute_results().size(), 1u);
  const auto& r = scheduler.traceroute_results()[0];
  EXPECT_TRUE(r.reached);
  ASSERT_EQ(r.hops.size(), 3u);
  EXPECT_EQ(r.hops[0].addr, net::addrs::kCoreSwitch);
  EXPECT_EQ(r.hops[1].addr, net::addrs::kWanSwitch);
  EXPECT_EQ(r.hops[2].addr, topo.dtn_ext[0]->ip());
  // Hop RTTs must be increasing with path depth.
  EXPECT_LT(r.hops[0].rtt_ms, r.hops[1].rtt_ms);
  EXPECT_LT(r.hops[1].rtt_ms, r.hops[2].rtt_ms);
  // The last hop's RTT is the full 50 ms base path.
  EXPECT_NEAR(r.hops[2].rtt_ms, 50.0, 1.0);
}

TEST_F(ToolsFixture, TracerouteArchivesHops) {
  PScheduler::TracerouteTask task;
  task.start = units::seconds(1);
  scheduler.schedule_traceroute(*topo.psonar_internal, *topo.psonar_ext[1],
                                task);
  sim.run_until(units::seconds(10));
  const auto docs = archiver.search("pscheduler-trace");
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_TRUE(docs[0].at("reached").as_bool());
  EXPECT_EQ(docs[0].at("hops").size(), 3u);
  EXPECT_EQ(docs[0]
                .at("hops")
                .as_array()[0]
                .at("addr")
                .as_string(),
            net::to_string(net::addrs::kCoreSwitch));
}

TEST_F(ToolsFixture, TracerouteMaxHopsWithoutReaching) {
  PScheduler::TracerouteTask task;
  task.start = units::seconds(1);
  task.max_hops = 2;  // stops at the WAN switch
  task.probe_timeout = units::milliseconds(500);
  scheduler.schedule_traceroute(*topo.dtn_internal, *topo.dtn_ext[2], task);
  sim.run_until(units::seconds(10));
  ASSERT_EQ(scheduler.traceroute_results().size(), 1u);
  const auto& r = scheduler.traceroute_results()[0];
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.hops.size(), 2u);
}

// ---------- UDP streams ----------

TEST_F(ToolsFixture, UdpStreamMeasuresOneWayDelay) {
  PScheduler::UdpStreamTask task;
  task.start = units::seconds(1);
  task.duration = units::seconds(2);
  task.rate_bps = units::mbps(5);
  scheduler.schedule_udp_stream(*topo.psonar_internal, *topo.psonar_ext[0],
                                task);
  sim.run_until(units::seconds(6));
  ASSERT_EQ(scheduler.udp_stream_results().size(), 1u);
  const auto& r = scheduler.udp_stream_results()[0];
  EXPECT_GT(r.sent, 1000u);
  EXPECT_EQ(r.received, r.sent);  // clean path: nothing lost
  EXPECT_DOUBLE_EQ(r.loss_pct, 0.0);
  // One-way base delay to ext1 is 25 ms (half the 50 ms RTT).
  EXPECT_NEAR(r.mean_owd_ms, 25.0, 1.0);
  EXPECT_LT(r.jitter_ms, 0.5);  // uncongested: tiny jitter
  EXPECT_EQ(archiver.doc_count("pscheduler-latencybg"), 1u);
}

TEST_F(ToolsFixture, UdpStreamSeesInducedLoss) {
  topo.ext_dtn_links[0].reverse_link->set_loss_rate(0.05);
  PScheduler::UdpStreamTask task;
  task.start = units::seconds(1);
  task.duration = units::seconds(2);
  task.rate_bps = units::mbps(5);
  scheduler.schedule_udp_stream(*topo.psonar_internal, *topo.dtn_ext[0],
                                task);
  sim.run_until(units::seconds(6));
  ASSERT_EQ(scheduler.udp_stream_results().size(), 1u);
  const auto& r = scheduler.udp_stream_results()[0];
  EXPECT_NEAR(r.loss_pct, 5.0, 1.5);
}

TEST_F(ToolsFixture, UdpStreamJitterRisesUnderCrossTraffic) {
  // Congest the bottleneck with a TCP flow while the stream runs.
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[1], {});
  flow.start_at(units::milliseconds(100));
  PScheduler::UdpStreamTask task;
  task.start = units::seconds(2);
  task.duration = units::seconds(3);
  task.rate_bps = units::mbps(2);
  scheduler.schedule_udp_stream(*topo.psonar_internal, *topo.psonar_ext[1],
                                task);
  sim.run_until(units::seconds(8));
  ASSERT_EQ(scheduler.udp_stream_results().size(), 1u);
  const auto& r = scheduler.udp_stream_results()[0];
  // Queueing inflates both the mean OWD (above the 37.5 ms base) and the
  // jitter.
  EXPECT_GT(r.mean_owd_ms, 38.0);
  EXPECT_GT(r.jitter_ms, 0.01);
}

// ---------- pSConfig mesh ----------

TEST_F(ToolsFixture, MeshSchedulesAllTaskTypes) {
  PsConfig psconfig;
  const char* mesh = R"({
    "tasks": [
      {"type": "latency", "src": "psonar-internal", "dst": "psonar-ext1",
       "start_s": 1, "count": 3},
      {"type": "trace", "src": "psonar-internal", "dst": "psonar-ext2",
       "start_s": 1},
      {"type": "udp_stream", "src": "psonar-internal",
       "dst": "psonar-ext1", "start_s": 1, "duration_s": 1,
       "rate_mbps": 2}
    ]
  })";
  const auto result = psconfig.apply_mesh_text(mesh, scheduler, host_map());
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_NE(result.message.find("3 tasks"), std::string::npos);
  sim.run_until(units::seconds(12));
  EXPECT_EQ(scheduler.latency_results().size(), 1u);
  EXPECT_EQ(scheduler.traceroute_results().size(), 1u);
  EXPECT_EQ(scheduler.udp_stream_results().size(), 1u);
}

TEST_F(ToolsFixture, MeshRejectsUnknownHostAtomically) {
  PsConfig psconfig;
  const char* mesh = R"({
    "tasks": [
      {"type": "latency", "src": "psonar-internal", "dst": "psonar-ext1"},
      {"type": "latency", "src": "psonar-internal", "dst": "nonexistent"}
    ]
  })";
  const auto result = psconfig.apply_mesh_text(mesh, scheduler, host_map());
  EXPECT_FALSE(result.ok);
  sim.run_until(units::seconds(10));
  // Atomic: the valid first task must NOT have been scheduled either.
  EXPECT_TRUE(scheduler.latency_results().empty());
}

TEST_F(ToolsFixture, MeshRejectsMalformedInput) {
  PsConfig psconfig;
  EXPECT_FALSE(
      psconfig.apply_mesh_text("not json", scheduler, host_map()).ok);
  EXPECT_FALSE(psconfig.apply_mesh_text("{}", scheduler, host_map()).ok);
  EXPECT_FALSE(psconfig
                   .apply_mesh_text(R"({"tasks":[{"type":"warp"}]})",
                                    scheduler, host_map())
                   .ok);
  EXPECT_FALSE(
      psconfig
          .apply_mesh_text(
              R"({"tasks":[{"type":"latency","src":"psonar-internal"}]})",
              scheduler, host_map())
          .ok);
}

// ---------- MaDDash ----------

TEST_F(ToolsFixture, MadDashGridsFromArchivedResults) {
  // Two latency pairs + one udp stream, then build grids.
  PScheduler::LatencyTask lat;
  lat.start = units::seconds(1);
  lat.count = 4;
  scheduler.schedule_latency(*topo.psonar_internal, *topo.psonar_ext[0],
                             lat);
  scheduler.schedule_latency(*topo.psonar_internal, *topo.psonar_ext[1],
                             lat);
  PScheduler::UdpStreamTask stream;
  stream.start = units::seconds(1);
  stream.duration = units::seconds(1);
  stream.rate_bps = units::mbps(2);
  scheduler.schedule_udp_stream(*topo.psonar_internal, *topo.psonar_ext[0],
                                stream);
  sim.run_until(units::seconds(8));

  MadDash maddash(archiver);
  const auto loss = maddash.loss_grid(1.0, 5.0);
  EXPECT_EQ(loss.rows.size(), 1u);
  EXPECT_EQ(loss.cols.size(), 2u);
  const auto* cell = loss.cell("psonar-internal", "psonar-ext1");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->status, MadDash::Status::kOk);
  EXPECT_DOUBLE_EQ(cell->value, 0.0);

  const auto owd = maddash.owd_grid(30.0, 60.0);
  const auto* owd_cell = owd.cell("psonar-internal", "psonar-ext1");
  ASSERT_NE(owd_cell, nullptr);
  EXPECT_EQ(owd_cell->status, MadDash::Status::kOk);
  EXPECT_NEAR(owd_cell->value, 25.0, 1.0);

  // Critical classification with a strict threshold.
  const auto strict = maddash.owd_grid(1.0, 2.0);
  EXPECT_EQ(strict.cell("psonar-internal", "psonar-ext1")->status,
            MadDash::Status::kCritical);

  std::ostringstream out;
  MadDash::render(owd, out);
  EXPECT_NE(out.str().find("psonar-ext1"), std::string::npos);
  EXPECT_NE(out.str().find("OK"), std::string::npos);
}

TEST(MadDash, EmptyArchiverRendersNoData) {
  Archiver archiver;
  MadDash maddash(archiver);
  const auto grid = maddash.throughput_grid(1e6, 1e5);
  std::ostringstream out;
  MadDash::render(grid, out);
  EXPECT_NE(out.str().find("(no data)"), std::string::npos);
  EXPECT_EQ(grid.cell("a", "b"), nullptr);
}

TEST(MadDash, LatestDocWinsPerPair) {
  // The grid shows each pair's newest archived result; older documents
  // only bump the sample count.
  auto latency_doc = [](int sent, int received) {
    util::Json j = util::Json::object();
    j["source"] = util::Json("a");
    j["destination"] = util::Json("b");
    j["sent"] = util::Json(sent);
    j["received"] = util::Json(received);
    return j;
  };
  Archiver archiver;
  archiver.index("pscheduler-latency", latency_doc(10, 5));   // 50% loss
  archiver.index("pscheduler-latency", latency_doc(10, 10));  // newest: 0%
  MadDash maddash(archiver);
  const auto grid = maddash.loss_grid(1.0, 5.0);
  const auto* cell = grid.cell("a", "b");
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->value, 0.0);
  EXPECT_EQ(cell->status, MadDash::Status::kOk);
  EXPECT_EQ(cell->samples, 2u);
}

TEST(MadDash, StatusNames) {
  EXPECT_STREQ(MadDash::status_name(MadDash::Status::kOk), "OK");
  EXPECT_STREQ(MadDash::status_name(MadDash::Status::kWarn), "WARN");
  EXPECT_STREQ(MadDash::status_name(MadDash::Status::kCritical), "CRIT");
  EXPECT_STREQ(MadDash::status_name(MadDash::Status::kNoData), "-");
}

}  // namespace
}  // namespace p4s::ps
