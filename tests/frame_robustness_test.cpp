// Frame-decoding robustness: every truncated prefix and seeded single-bit
// corruptions of realistic frames go through both decoders — the wire
// codec's parse_headers and the P4 switch's programmable parser — which
// must never crash or read out of bounds (this suite runs under the
// ASan/UBSan CI job) and must keep their validity invariants.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "net/wire.hpp"
#include "p4/parser.hpp"

using namespace p4s;

namespace {

std::uint64_t seed_from_env() {
  const char* env = std::getenv("P4S_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

std::vector<std::uint8_t> serialized(const net::Packet& pkt) {
  std::vector<std::uint8_t> buf(net::kMaxHeaderBytes);
  buf.resize(net::serialize_headers(pkt, buf));
  return buf;
}

// Realistic frame corpus: every L4 protocol, options at both ends of the
// IHL range, and header values exercising field extremes.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(serialized(net::make_tcp_packet(
      net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201,
      0xFFFFFFFF, 0x80000000, net::tcpflags::kAck | net::tcpflags::kPsh,
      1448, 1 << 20)));
  frames.push_back(serialized(net::make_tcp_packet(
      net::ipv4(255, 255, 255, 255), net::ipv4(0, 0, 0, 1), 65535, 1, 0, 0,
      net::tcpflags::kSyn, 0, 0)));
  frames.push_back(serialized(net::make_udp_packet(
      net::ipv4(192, 168, 1, 1), net::ipv4(192, 168, 1, 2), 123, 123, 48)));
  frames.push_back(serialized(net::make_icmp_packet(
      net::ipv4(10, 0, 0, 1), net::ipv4(10, 0, 0, 2), 8, 7, 77, 56)));
  {
    net::Packet opt = net::make_tcp_packet(
        net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201, 100,
        200, net::tcpflags::kAck, 512, 4096);
    opt.ip.ihl = 6;  // smallest options region
    opt.ip.total_len += 4;
    frames.push_back(serialized(opt));
    opt.ip.ihl = 15;  // largest legal IPv4 header
    opt.ip.total_len += 36;
    frames.push_back(serialized(opt));
  }
  return frames;
}

// Validity-bit invariants that must hold after any parse attempt.
void check_invariants(const p4::ParsedHeaders& hdr,
                      p4::Parser::Result result) {
  const int l4_count = int(hdr.tcp_valid) + int(hdr.udp_valid) +
                       int(hdr.icmp_valid);
  EXPECT_LE(l4_count, 1);
  if (hdr.ipv4_valid) {
    EXPECT_TRUE(hdr.ethernet_valid);
    EXPECT_EQ(hdr.ipv4.version, 4);
    EXPECT_GE(hdr.ipv4.ihl, 5);
  }
  if (l4_count > 0) EXPECT_TRUE(hdr.ipv4_valid);
  if (result == p4::Parser::Result::kAccept) {
    EXPECT_TRUE(hdr.ethernet_valid);
    if (hdr.ethernet.ethertype == net::kEtherTypeIpv4) {
      EXPECT_TRUE(hdr.ipv4_valid);
    }
  }
}

void run_both_decoders(std::span<const std::uint8_t> bytes) {
  (void)net::parse_headers(bytes);  // must not crash, nullopt is fine
  p4::Parser parser;
  p4::PacketContext ctx;
  ctx.data = bytes;
  const auto result = parser.parse(ctx);
  check_invariants(ctx.hdr, result);
}

TEST(FrameRobustness, FullFramesDecodeInBothDecoders) {
  for (const auto& frame : corpus()) {
    const auto pkt = net::parse_headers(frame);
    ASSERT_TRUE(pkt.has_value());
    p4::Parser parser;
    p4::PacketContext ctx;
    ctx.data = frame;
    EXPECT_EQ(parser.parse(ctx), p4::Parser::Result::kAccept);
    EXPECT_TRUE(ctx.hdr.ipv4_valid);
  }
}

TEST(FrameRobustness, OptionsFramesKeepChecksumOverFullIhl) {
  // IHL > 5 frames round-trip: accepted, options length preserved, and a
  // re-serialization (End-of-Option-List padding) parses again.
  net::Packet opt = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201, 100,
      200, net::tcpflags::kAck, 512, 4096);
  opt.ip.ihl = 7;
  opt.ip.total_len += 8;
  const auto wire = serialized(opt);
  const auto parsed = net::parse_headers(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.ihl, 7);
  EXPECT_EQ(parsed->ip.header_bytes(), 28u);
  EXPECT_EQ(parsed->tcp().src_port, 5001);
  // Corrupt one option byte: the checksum covers the full IHL, so the
  // frame must now be rejected.
  auto corrupted = wire;
  corrupted[net::kEthernetHeaderBytes + 21] ^= 0x01;
  EXPECT_FALSE(net::parse_headers(corrupted).has_value());
  // Re-serialization of the parsed packet parses again.
  const auto rewire = serialized(*parsed);
  EXPECT_EQ(rewire.size(), wire.size());
  EXPECT_TRUE(net::parse_headers(rewire).has_value());
}

TEST(FrameRobustness, EveryTruncatedPrefixIsHandled) {
  for (const auto& frame : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::span<const std::uint8_t> prefix(frame.data(), len);
      // A strict prefix of a header-only frame can never satisfy the wire
      // codec (it validates all header lengths).
      EXPECT_FALSE(net::parse_headers(prefix).has_value()) << "len " << len;
      run_both_decoders(prefix);
    }
  }
}

TEST(FrameRobustness, SeededBitFlipsNeverCrashEitherDecoder) {
  const auto frames = corpus();
  std::mt19937_64 rng(seed_from_env());
  for (int iter = 0; iter < 4000; ++iter) {
    auto frame = frames[rng() % frames.size()];
    const std::size_t byte = rng() % frame.size();
    frame[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    run_both_decoders(frame);
    // If the wire codec still accepts the flipped frame (the flip landed
    // outside the checksummed region), its re-serialization must parse.
    if (const auto pkt = net::parse_headers(frame)) {
      const auto rewire = serialized(*pkt);
      EXPECT_TRUE(net::parse_headers(rewire).has_value())
          << "iter " << iter << " byte " << byte;
    }
  }
}

TEST(FrameRobustness, MultiByteCorruptionAndGarbage) {
  const auto frames = corpus();
  std::mt19937_64 rng(seed_from_env() + 1);
  for (int iter = 0; iter < 500; ++iter) {
    // Pure garbage of random length.
    std::vector<std::uint8_t> garbage(rng() % 128);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    run_both_decoders(garbage);
    // A real frame with a random window overwritten.
    auto frame = frames[static_cast<std::size_t>(iter) % frames.size()];
    const std::size_t start = rng() % frame.size();
    const std::size_t span_len =
        std::min<std::size_t>(1 + rng() % 8, frame.size() - start);
    for (std::size_t i = 0; i < span_len; ++i) {
      frame[start + i] = static_cast<std::uint8_t>(rng());
    }
    run_both_decoders(frame);
  }
}

}  // namespace
