// Tests: trace analytics (NetSage-style trends / top talkers,
// OnTimeDetect-style anomaly detection) and the control plane's
// terminated-flow percentile summaries.
#include <gtest/gtest.h>

#include "core/monitoring_system.hpp"
#include "psonar/analytics.hpp"

namespace p4s::ps {
namespace {

util::Json throughput_doc(const char* dst, std::int64_t ts, double bps) {
  util::Json j = util::Json::object();
  j["report"] = "throughput";
  j["ts_ns"] = ts;
  j["throughput_bps"] = bps;
  j["flow"] = util::JsonObject{{"dst_ip", util::Json(dst)}};
  return j;
}

util::Json final_doc(const char* dst, std::int64_t bytes, double retx_pct) {
  util::Json j = util::Json::object();
  j["report"] = "flow_final";
  j["ts_ns"] = 1;
  j["bytes"] = bytes;
  j["retransmission_pct"] = retx_pct;
  j["flow"] = util::JsonObject{{"dst_ip", util::Json(dst)}};
  return j;
}

TEST(Analytics, ThroughputTrendBucketsAndAverages) {
  Archiver archiver;
  // Two buckets of 1 s; second bucket has two samples.
  archiver.index("p4sonar-throughput",
                 throughput_doc("10.1.0.10", 100'000'000, 10e6));
  archiver.index("p4sonar-throughput",
                 throughput_doc("10.1.0.10", 1'200'000'000, 20e6));
  archiver.index("p4sonar-throughput",
                 throughput_doc("10.1.0.10", 1'700'000'000, 40e6));
  archiver.index("p4sonar-throughput",
                 throughput_doc("10.9.9.9", 100'000'000, 999e6));  // other
  Analytics analytics(archiver);
  const auto trend =
      analytics.throughput_trend("10.1.0.10", units::seconds(1));
  ASSERT_EQ(trend.size(), 2u);
  EXPECT_EQ(trend[0].start, 0u);
  EXPECT_DOUBLE_EQ(trend[0].mean_throughput_bps, 10e6);
  EXPECT_EQ(trend[1].start, units::seconds(1));
  EXPECT_DOUBLE_EQ(trend[1].mean_throughput_bps, 30e6);
  EXPECT_EQ(trend[1].samples, 2u);
}

TEST(Analytics, TopTalkersRankedByBytes) {
  Archiver archiver;
  archiver.index("p4sonar-flow_final", final_doc("10.1.0.10", 1000, 1.0));
  archiver.index("p4sonar-flow_final", final_doc("10.2.0.10", 5000, 0.5));
  archiver.index("p4sonar-flow_final", final_doc("10.1.0.10", 3000, 2.0));
  Analytics analytics(archiver);
  const auto talkers = analytics.top_talkers();
  ASSERT_EQ(talkers.size(), 2u);
  EXPECT_EQ(talkers[0].dst_ip, "10.2.0.10");
  EXPECT_EQ(talkers[0].bytes, 5000u);
  EXPECT_EQ(talkers[1].dst_ip, "10.1.0.10");
  EXPECT_EQ(talkers[1].bytes, 4000u);
  EXPECT_EQ(talkers[1].flows, 2u);
  // Bytes-weighted retx: (1000*1 + 3000*2)/4000 = 1.75.
  EXPECT_NEAR(talkers[1].retransmission_pct, 1.75, 1e-9);
}

TEST(Analytics, TopTalkersLimit) {
  Archiver archiver;
  for (int i = 0; i < 5; ++i) {
    const std::string dst = "10.0.0." + std::to_string(i);
    archiver.index("p4sonar-flow_final",
                   final_doc(dst.c_str(), 1000 * (i + 1), 0.0));
  }
  Analytics analytics(archiver);
  EXPECT_EQ(analytics.top_talkers(3).size(), 3u);
}

TEST(Analytics, AnomalyDetectionFlagsDipAndSpike) {
  Archiver archiver;
  // 40 steady samples at ~100 Mbps with small jitter, a dip at i=20,
  // a spike at i=30.
  for (int i = 0; i < 40; ++i) {
    double v = 100e6 + (i % 2 ? 2e6 : -2e6);
    if (i == 20) v = 20e6;   // dip
    if (i == 30) v = 260e6;  // spike
    archiver.index("p4sonar-throughput",
                   throughput_doc("10.1.0.10", i, v));
  }
  Analytics analytics(archiver);
  const auto anomalies =
      analytics.detect_anomalies("p4sonar-throughput", "throughput_bps");
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].at, 20u);
  EXPECT_LT(anomalies[0].value, anomalies[0].expected);
  EXPECT_EQ(anomalies[1].at, 30u);
  EXPECT_GT(anomalies[1].value, anomalies[1].expected);
  EXPECT_GT(anomalies[0].deviation, 1.0);
}

TEST(Analytics, AnomalyDetectionQuietOnSteadySeries) {
  Archiver archiver;
  for (int i = 0; i < 50; ++i) {
    archiver.index("p4sonar-throughput",
                   throughput_doc("10.1.0.10", i,
                                  100e6 + (i % 3) * 1e6));
  }
  Analytics analytics(archiver);
  EXPECT_TRUE(analytics
                  .detect_anomalies("p4sonar-throughput", "throughput_bps")
                  .empty());
}

TEST(Analytics, AnomalyWarmupSuppressesEarlyPoints) {
  Archiver archiver;
  archiver.index("p4sonar-throughput", throughput_doc("d", 0, 100e6));
  archiver.index("p4sonar-throughput", throughput_doc("d", 1, 5e6));
  Analytics analytics(archiver);
  EXPECT_TRUE(analytics
                  .detect_anomalies("p4sonar-throughput", "throughput_bps")
                  .empty());
}

TEST(Analytics, EndToEndAnomalyOnInducedDegradation) {
  // Full-system: a transfer runs cleanly, then heavy loss is injected
  // mid-flow; the archived per-flow throughput series must contain a
  // detectable anomaly near the onset.
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  core::MonitoringSystem system(config);
  system.start();
  auto& flow = system.add_transfer(0);
  flow.start_at(units::milliseconds(100));
  system.simulation().at(units::seconds(25), [&]() {
    system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.02);
  });
  system.run_until(units::seconds(40));

  Analytics analytics(system.psonar().archiver());
  Archiver::Query query;
  query.range_field = "ts_ns";
  query.range_min = static_cast<double>(units::seconds(10));
  const auto anomalies = analytics.detect_anomalies(
      "p4sonar-throughput", "throughput_bps", query);
  ASSERT_FALSE(anomalies.empty());
  // TCP's own loss-epoch dips may flag earlier (they are real anomalies
  // too); the induced degradation must appear as a downward anomaly
  // after its onset at t=25 s.
  bool found_post_onset_dip = false;
  for (const auto& a : anomalies) {
    if (a.at > units::seconds(25) && a.value < a.expected) {
      found_post_onset_dip = true;
      break;
    }
  }
  EXPECT_TRUE(found_post_onset_dip);
}

TEST(ControlPlane, FinalReportCarriesPercentiles) {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(100);
  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --metric RTT --samples_per_second 10");
  system.start();
  auto& flow = system.add_transfer(2);  // 100 ms base RTT
  flow.start_at(units::milliseconds(100));
  flow.stop_at(units::seconds(8));
  system.run_until(units::seconds(12));
  ASSERT_EQ(system.control_plane().final_reports().size(), 1u);
  const auto& report = system.control_plane().final_reports()[0];
  EXPECT_GE(report.rtt_p50_ms, 99.0);
  EXPECT_GE(report.rtt_p95_ms, report.rtt_p50_ms);
  EXPECT_GE(report.rtt_p99_ms, report.rtt_p95_ms);
  EXPECT_GE(report.occupancy_p95_pct, 0.0);
  // Archived document carries the same fields.
  const auto docs =
      system.psonar().archiver().search("p4sonar-flow_final");
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_NEAR(docs[0].at("rtt_p95_ms").as_double(), report.rtt_p95_ms,
              1e-9);
}

}  // namespace
}  // namespace p4s::ps
