// Golden durability regression (satellite of the durable store):
//
// The fixed-seed Fig. 9-style scenario runs twice — once on the default
// in-memory archiver, once persisting through the durable store. Then the
// store directory is reopened in a *fresh* Store + Archiver (simulating a
// new process) and every index's search() output must be byte-identical
// to the in-memory run: persistence is invisible to consumers.
//
// This leans on util::Json's round-trip guarantee (dump∘parse∘dump is
// stable) — WAL and segments hold dump()ed text, reload parses it back.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/monitoring_system.hpp"
#include "psonar/store_backend.hpp"
#include "store/store.hpp"

using namespace p4s;
using units::seconds;

namespace {

namespace fs = std::filesystem;

constexpr const char* kPsconfigCmd =
    "psconfig config-P4 --samples_per_second 2";
constexpr SimTime kHorizon = seconds(9);

core::MonitoringSystemConfig scenario_config() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  return config;
}

// Both runs advance the clock in identical chunks; the durable run does
// its store maintenance BETWEEN chunks (from outside the event queue).
// Scheduling maintenance as a simulation event would add events the
// memory run doesn't have, shifting same-timestamp tie-breaking and RNG
// draw order — the runs would diverge for reasons unrelated to storage.
void run_scenario(core::MonitoringSystem& system,
                  const std::function<void()>& between_chunks = {}) {
  system.psonar().psconfig().execute(kPsconfigCmd);
  system.start();
  // Explicit ports: the default allocator is a process-global counter,
  // and this test builds two systems in one process.
  const SimTime starts[] = {seconds(1), seconds(2), seconds(5)};
  for (int i = 0; i < 3; ++i) {
    tcp::TcpFlow::Config flow;
    flow.dst_port = static_cast<std::uint16_t>(5201 + i);
    system.add_transfer(i, std::move(flow)).start_at(starts[i]);
  }
  for (std::int64_t s = 3; s <= 9; s += 3) {
    system.run_until(seconds(s));
    if (between_chunks) between_chunks();
  }
}

std::vector<std::string> archive_dump(const ps::Archiver& archiver,
                                      const std::string& index) {
  std::vector<std::string> lines;
  archiver.for_each(index, {}, [&](const util::Json& doc) {
    lines.push_back(doc.dump());
    return true;
  });
  return lines;
}

TEST(StoreGolden, DurableArchiveReloadsByteIdenticalToMemoryRun) {
  const std::string dir = ::testing::TempDir() + "p4s_store_golden";
  fs::remove_all(dir);

  // Run A: the plain in-memory archive.
  core::MonitoringSystem memory_system(scenario_config());
  run_scenario(memory_system);
  const auto& memory_archiver = memory_system.psonar().archiver();
  const auto indices = memory_archiver.indices();
  ASSERT_FALSE(indices.empty()) << "scenario produced no archived reports";
  ASSERT_GT(memory_archiver.total_docs(), 0u);

  // Run B: identical scenario, archiver persisting through the store.
  // Aggressive seal/compact thresholds so the run exercises segments,
  // WAL-tail recovery, AND compaction — not just the memtable.
  {
    auto config = scenario_config();
    config.archive.durable = true;
    config.archive.dir = dir;
    config.archive.store.seal_min_docs = 8;
    config.archive.store.compact_fanin = 3;
    config.archive.maintenance_interval = 0;  // driven between chunks below
    core::MonitoringSystem durable_system(config);
    run_scenario(durable_system,
                 [&] { durable_system.archive_store().maintain(); });
    ASSERT_TRUE(durable_system.durable_archive());
    // Same documents while live (both runs share seed + scenario).
    for (const auto& index : indices) {
      EXPECT_EQ(archive_dump(durable_system.psonar().archiver(), index),
                archive_dump(memory_archiver, index))
          << "live durable archive diverged on index " << index;
    }
    // End of run: make the memtable tail durable, leave a mix of sealed
    // segments behind. (flush() only — seal is already threshold-driven.)
    durable_system.archive_store().flush();
    EXPECT_GT(durable_system.archive_store().segment_count(indices[0]), 0u)
        << "thresholds never sealed; the reload would only test the WAL";
  }  // "process exit"

  // Offline check before reopening: the directory must verify clean.
  const auto verify = store::Store::verify(dir);
  ASSERT_TRUE(verify.ok) << (verify.errors.empty() ? "" : verify.errors[0]);
  EXPECT_GT(verify.segments, 0u);

  // Fresh "process": reopen the store, mount it behind a new archiver.
  store::Store reopened(dir, scenario_config().archive.store);
  ps::Archiver restored(std::make_unique<ps::StoreBackend>(reopened));
  ASSERT_EQ(restored.indices(), indices);
  EXPECT_EQ(restored.total_docs(), memory_archiver.total_docs());
  for (const auto& index : indices) {
    const auto expected = archive_dump(memory_archiver, index);
    const auto actual = archive_dump(restored, index);
    ASSERT_EQ(expected.size(), actual.size()) << "index " << index;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i])
          << "index " << index << " doc " << i
          << " diverged after persist/reload";
    }
    EXPECT_EQ(restored.doc_count(index), memory_archiver.doc_count(index));
  }

  // And a dashboard-shaped query (newest 5 in a time window) agrees too.
  ps::Archiver::Query query;
  query.range_field = "ts_ns";
  query.range_min = static_cast<double>(seconds(3));
  query.range_max = static_cast<double>(seconds(8));
  query.limit = 5;
  query.newest_first = true;
  for (const auto& index : indices) {
    const auto expected = memory_archiver.search(index, query);
    const auto actual = restored.search(index, query);
    ASSERT_EQ(expected.size(), actual.size()) << "index " << index;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].dump(), actual[i].dump());
    }
  }
}

}  // namespace
