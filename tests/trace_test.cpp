// Trace subsystem: pcap format round trips, capture tee, replay merge /
// stats / pacing, foreign-frame tolerance, and the p4s-trace CLI.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/wire.hpp"
#include "p4/p4_switch.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_capture.hpp"
#include "trace/trace_cli.hpp"
#include "trace/trace_replayer.hpp"

using namespace p4s;

namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::vector<std::uint8_t> serialized(const net::Packet& pkt) {
  std::vector<std::uint8_t> buf(net::kMaxHeaderBytes);
  buf.resize(net::serialize_headers(pkt, buf));
  return buf;
}

// ------------------------------------------------------------- pcap layout

TEST(Pcap, GlobalAndRecordHeaderLayout) {
  std::ostringstream out;
  trace::PcapWriter writer(out, /*snaplen=*/4096);
  const auto frame = bytes_of("abcd");
  writer.write(/*ts=*/3'000'000'007ULL, frame, /*orig_len=*/60);
  const std::string data = out.str();
  ASSERT_EQ(data.size(), trace::kPcapGlobalHeaderBytes +
                             trace::kPcapRecordHeaderBytes + 4);
  const auto* b = reinterpret_cast<const std::uint8_t*>(data.data());
  // Global header, little-endian: nanosecond magic, version 2.4,
  // thiszone 0, sigfigs 0, snaplen, linktype Ethernet.
  const std::uint8_t expected_global[24] = {
      0x4d, 0x3c, 0xb2, 0xa1, 0x02, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x01, 0x00,
      0x00, 0x00};
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(b[i], expected_global[i]) << "global header byte " << i;
  }
  // Record header: ts_sec=3, ts_nsec=7, incl_len=4, orig_len=60.
  const std::uint8_t expected_record[16] = {
      0x03, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00,
      0x00, 0x3c, 0x00, 0x00, 0x00};
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(b[24 + i], expected_record[i]) << "record header byte " << i;
  }
  EXPECT_EQ(data.substr(40), "abcd");
}

TEST(Pcap, RoundTripWithSnaplenTruncation) {
  std::stringstream io;
  trace::PcapWriter writer(io, /*snaplen=*/8);
  writer.write(1, bytes_of("short"));
  writer.write(2'500'000'123ULL, bytes_of("longer than snaplen"));
  writer.write(3, bytes_of("padded"), /*orig_len=*/1500);

  trace::PcapReader reader(io);
  EXPECT_TRUE(reader.info().nanosecond);
  EXPECT_FALSE(reader.info().swapped);
  EXPECT_EQ(reader.info().version_major, trace::kPcapVersionMajor);
  EXPECT_EQ(reader.info().version_minor, trace::kPcapVersionMinor);
  EXPECT_EQ(reader.info().snaplen, 8u);
  EXPECT_EQ(reader.info().linktype, trace::kLinktypeEthernet);

  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->ts, 1u);
  EXPECT_EQ(r1->orig_len, 5u);
  EXPECT_EQ(r1->bytes, bytes_of("short"));

  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->ts, 2'500'000'123ULL);
  EXPECT_EQ(r2->orig_len, 19u);  // full wire length preserved
  EXPECT_EQ(r2->bytes, bytes_of("longer t"));  // truncated to snaplen

  auto r3 = reader.next();
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->orig_len, 1500u);
  EXPECT_EQ(r3->bytes, bytes_of("padded"));

  EXPECT_FALSE(reader.next().has_value());  // clean EOF
  EXPECT_EQ(reader.records_read(), 3u);
}

namespace layout {
// Hand-built foreign files: microsecond resolution and big-endian byte
// order, which our writer never produces but the reader must accept.
std::string micro_le_file() {
  std::string d;
  auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) d.push_back(char((v >> (8 * i)) & 0xFF));
  };
  auto le16 = [&](std::uint16_t v) {
    d.push_back(char(v & 0xFF));
    d.push_back(char(v >> 8));
  };
  le32(trace::kPcapMagicMicro);
  le16(2); le16(4); le32(0); le32(0); le32(65535); le32(1);
  le32(5); le32(250);  // ts = 5 s + 250 us
  le32(3); le32(3);
  d += "xyz";
  return d;
}

std::string nano_be_file() {
  std::string d;
  auto be32 = [&](std::uint32_t v) {
    for (int i = 3; i >= 0; --i) d.push_back(char((v >> (8 * i)) & 0xFF));
  };
  auto be16 = [&](std::uint16_t v) {
    d.push_back(char(v >> 8));
    d.push_back(char(v & 0xFF));
  };
  be32(trace::kPcapMagicNano);
  be16(2); be16(4); be32(0); be32(0); be32(262144); be32(1);
  be32(1); be32(42);  // ts = 1 s + 42 ns
  be32(2); be32(2);
  d += "hi";
  return d;
}
}  // namespace layout

TEST(Pcap, ReadsMicrosecondFiles) {
  std::istringstream in(layout::micro_le_file());
  trace::PcapReader reader(in);
  EXPECT_FALSE(reader.info().nanosecond);
  EXPECT_FALSE(reader.info().swapped);
  auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ts, 5'000'250'000ULL);  // scaled to nanoseconds
  EXPECT_EQ(rec->bytes, bytes_of("xyz"));
}

TEST(Pcap, ReadsSwappedByteOrder) {
  std::istringstream in(layout::nano_be_file());
  trace::PcapReader reader(in);
  EXPECT_TRUE(reader.info().nanosecond);
  EXPECT_TRUE(reader.info().swapped);
  EXPECT_EQ(reader.info().snaplen, 262144u);
  EXPECT_EQ(reader.info().linktype, 1u);
  auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->ts, 1'000'000'042ULL);
  EXPECT_EQ(rec->orig_len, 2u);
  EXPECT_EQ(rec->bytes, bytes_of("hi"));
}

TEST(Pcap, MalformedFilesThrowCleanly) {
  {  // not a pcap at all
    std::istringstream in("this is definitely not a capture file....");
    EXPECT_THROW(trace::PcapReader r(in), trace::PcapError);
  }
  {  // shorter than the global header
    std::istringstream in("\x4d\x3c\xb2\xa1 tiny");
    EXPECT_THROW(trace::PcapReader r(in), trace::PcapError);
  }
  {  // truncated record header
    std::string d = layout::nano_be_file();
    d.resize(trace::kPcapGlobalHeaderBytes + 7);
    std::istringstream in(d);
    trace::PcapReader reader(in);
    EXPECT_THROW(reader.next(), trace::PcapError);
  }
  {  // truncated mid-frame
    std::string d = layout::nano_be_file();
    d.resize(d.size() - 1);
    std::istringstream in(d);
    trace::PcapReader reader(in);
    EXPECT_THROW(reader.next(), trace::PcapError);
  }
  {  // incl_len beyond snaplen (corrupt length field)
    std::ostringstream out;
    trace::PcapWriter writer(out, 65535);
    writer.write(1, bytes_of("ok"));
    std::string d = out.str();
    d[trace::kPcapGlobalHeaderBytes + 8] = '\xff';  // incl_len low byte
    d[trace::kPcapGlobalHeaderBytes + 11] = '\x7f';  // incl_len high byte
    std::istringstream in(d);
    trace::PcapReader reader(in);
    EXPECT_THROW(reader.next(), trace::PcapError);
  }
  {  // nonexistent file
    EXPECT_THROW(trace::PcapReader r(temp_path("no-such-file.pcap")),
                 trace::PcapError);
  }
}

// ------------------------------------------------------------- capture tee

struct RecordingSink : net::MirrorSink {
  std::vector<std::pair<net::MirrorPoint, std::size_t>> calls;
  void on_mirrored(const net::Packet&, net::MirrorPoint point) override {
    calls.emplace_back(point, 0);
  }
  void on_mirrored_wire(const net::Packet&,
                        std::span<const std::uint8_t> bytes,
                        net::MirrorPoint point) override {
    calls.emplace_back(point, bytes.size());
  }
};

TEST(TraceCapture, TeesToPerPortFilesAndForwards) {
  sim::Simulation sim;
  RecordingSink next;
  std::stringstream ingress_io, egress_io;
  trace::TraceCapture capture(sim, next, ingress_io, egress_io);

  const net::Packet data = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201, 1, 0,
      net::tcpflags::kAck, 1000, 65535);
  const auto wire = serialized(data);

  sim.at(100, [&]() {
    capture.on_mirrored_wire(data, wire, net::MirrorPoint::kIngress);
  });
  sim.at(250, [&]() {
    capture.on_mirrored_wire(data, wire, net::MirrorPoint::kEgress);
  });
  sim.at(300, [&]() {
    capture.on_mirrored(data, net::MirrorPoint::kIngress);
  });
  sim.run();
  capture.flush();

  ASSERT_EQ(next.calls.size(), 3u);  // everything forwarded
  EXPECT_EQ(capture.captured(net::MirrorPoint::kIngress), 2u);
  EXPECT_EQ(capture.captured(net::MirrorPoint::kEgress), 1u);
  EXPECT_EQ(capture.captured_total(), 3u);

  trace::PcapReader ingress(ingress_io);
  auto r1 = ingress.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->ts, 100u);  // recorded at simulation delivery time
  EXPECT_EQ(r1->bytes, wire);
  // On the wire the frame was Ethernet + ip.total_len; we captured only
  // the serialized headers.
  EXPECT_EQ(r1->orig_len, net::kEthernetHeaderBytes + data.ip.total_len);
  EXPECT_GT(r1->orig_len, r1->bytes.size());
  auto r2 = ingress.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->ts, 300u);
  EXPECT_EQ(r2->bytes, wire);  // packet-level entry serializes identically

  trace::PcapReader egress(egress_io);
  auto e1 = egress.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->ts, 250u);
  EXPECT_FALSE(egress.next().has_value());
}

TEST(TraceCapture, PortPathNaming) {
  EXPECT_EQ(trace::TraceCapture::port_path("run1",
                                           net::MirrorPoint::kIngress),
            "run1.ingress.pcap");
  EXPECT_EQ(trace::TraceCapture::port_path("run1",
                                           net::MirrorPoint::kEgress),
            "run1.egress.pcap");
}

// ---------------------------------------------------------------- replayer

// Writes a two-port capture: ingress frames at 100/200/300 ns, egress at
// 150/200 ns — the 200 ns tie must replay ingress first.
struct TwoPortFixture {
  std::string ingress_path = temp_path("replay_test.ingress.pcap");
  std::string egress_path = temp_path("replay_test.egress.pcap");
  std::vector<std::uint8_t> wire;

  TwoPortFixture() {
    const net::Packet pkt = net::make_tcp_packet(
        net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201, 1, 0,
        net::tcpflags::kAck, 1000, 65535);
    wire = serialized(pkt);
    trace::PcapWriter ingress(ingress_path);
    ingress.write(100, wire);
    ingress.write(200, wire);
    ingress.write(300, wire);
    trace::PcapWriter egress(egress_path);
    egress.write(150, wire);
    egress.write(200, wire);
  }
};

TEST(TraceReplayer, MergesPortsTimestampOrderedIngressFirstOnTies) {
  TwoPortFixture fx;
  auto trace = trace::TraceReplayer::from_files(fx.ingress_path,
                                                fx.egress_path);
  ASSERT_EQ(trace.frames().size(), 5u);
  const std::vector<std::pair<SimTime, net::MirrorPoint>> expected = {
      {100, net::MirrorPoint::kIngress}, {150, net::MirrorPoint::kEgress},
      {200, net::MirrorPoint::kIngress}, {200, net::MirrorPoint::kEgress},
      {300, net::MirrorPoint::kIngress}};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(trace.frames()[i].ts, expected[i].first) << i;
    EXPECT_EQ(trace.frames()[i].point, expected[i].second) << i;
  }
}

TEST(TraceReplayer, PacedReplayDeliversAtRecordedTimestamps) {
  TwoPortFixture fx;
  auto trace = trace::TraceReplayer::from_files(fx.ingress_path,
                                                fx.egress_path);
  sim::Simulation sim;
  struct TimedSink : net::MirrorSink {
    sim::Simulation& sim;
    std::vector<std::pair<SimTime, net::MirrorPoint>> seen;
    explicit TimedSink(sim::Simulation& s) : sim(s) {}
    void on_mirrored(const net::Packet&, net::MirrorPoint) override {}
    void on_mirrored_wire(const net::Packet&, std::span<const std::uint8_t>,
                          net::MirrorPoint point) override {
      seen.emplace_back(sim.now(), point);
    }
  } sink(sim);
  trace.schedule(sim, sink);
  sim.run();
  ASSERT_EQ(sink.seen.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.seen[i].first, trace.frames()[i].ts) << i;
    EXPECT_EQ(sink.seen[i].second, trace.frames()[i].point) << i;
  }
}

TEST(TraceReplayer, MaxSpeedReplayPreservesOrder) {
  TwoPortFixture fx;
  auto trace = trace::TraceReplayer::from_files(fx.ingress_path,
                                                fx.egress_path);
  sim::Simulation sim;
  RecordingSink sink;
  trace.replay_now(sim, sink, /*advance_clock=*/false);
  ASSERT_EQ(sink.calls.size(), 5u);
  EXPECT_EQ(sim.now(), 0u);  // clock untouched
  trace.replay_now(sim, sink, /*advance_clock=*/true);
  EXPECT_EQ(sim.now(), 300u);  // advanced to the last frame's timestamp
}

TEST(TraceReplayer, AnalyzeCategorizesForeignFrames) {
  std::vector<trace::TraceFrame> frames;
  auto add = [&](SimTime ts, std::vector<std::uint8_t> bytes,
                 std::uint32_t orig_len = 0) {
    trace::TraceFrame f;
    f.ts = ts;
    f.point = net::MirrorPoint::kIngress;
    f.bytes = std::move(bytes);
    f.orig_len = orig_len != 0 ? orig_len
                               : static_cast<std::uint32_t>(f.bytes.size());
    frames.push_back(std::move(f));
  };

  // Plain TCP ACK, header-only.
  const net::Packet tcp_pkt = net::make_tcp_packet(
      net::ipv4(1, 2, 3, 4), net::ipv4(5, 6, 7, 8), 1, 2, 0, 0,
      net::tcpflags::kAck, 0, 1000);
  add(10, serialized(tcp_pkt));
  // TCP data packet (payload bytes beyond the headers on the wire).
  const net::Packet data_pkt = net::make_tcp_packet(
      net::ipv4(1, 2, 3, 4), net::ipv4(5, 6, 7, 8), 1, 2, 0, 0,
      net::tcpflags::kAck, 1200, 1000);
  add(20, serialized(data_pkt));
  // UDP with payload.
  add(30, serialized(net::make_udp_packet(net::ipv4(1, 2, 3, 4),
                                          net::ipv4(5, 6, 7, 8), 1, 2, 64)));
  // IPv4 with options (IHL 6).
  net::Packet opt_pkt = tcp_pkt;
  opt_pkt.ip.ihl = 6;
  opt_pkt.ip.total_len += 4;
  add(40, serialized(opt_pkt));
  // ARP frame (unknown EtherType).
  std::vector<std::uint8_t> arp(42, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  add(50, arp);
  // Truncated runt (shorter than an Ethernet header).
  add(60, std::vector<std::uint8_t>{0xde, 0xad});

  auto trace = trace::TraceReplayer::from_frames(std::move(frames));
  const auto s = trace.analyze();
  EXPECT_EQ(s.frames, 6u);
  EXPECT_EQ(s.ingress_frames, 6u);
  EXPECT_EQ(s.ipv4, 4u);
  EXPECT_EQ(s.tcp, 3u);
  EXPECT_EQ(s.udp, 1u);
  EXPECT_EQ(s.non_ipv4, 1u);
  EXPECT_EQ(s.ipv4_options, 1u);
  EXPECT_EQ(s.with_payload, 2u);
  EXPECT_EQ(s.undecodable, 1u);
  EXPECT_EQ(s.first_ts, 10u);
  EXPECT_EQ(s.last_ts, 60u);
  EXPECT_EQ(s.ethertypes.at(0x0800), 4u);
  EXPECT_EQ(s.ethertypes.at(0x0806), 1u);
}

TEST(TraceReplayer, ForeignFramesFlowThroughP4SwitchWithoutCrashing) {
  // The same foreign mix, pushed through the real parser + program.
  std::vector<trace::TraceFrame> frames;
  auto add = [&](SimTime ts, std::vector<std::uint8_t> bytes) {
    trace::TraceFrame f;
    f.ts = ts;
    f.bytes = std::move(bytes);
    f.orig_len = static_cast<std::uint32_t>(f.bytes.size());
    frames.push_back(std::move(f));
  };
  const net::Packet tcp_pkt = net::make_tcp_packet(
      net::ipv4(1, 2, 3, 4), net::ipv4(5, 6, 7, 8), 1, 2, 100, 0,
      net::tcpflags::kAck, 1200, 1000);
  add(10, serialized(tcp_pkt));
  net::Packet opt_pkt = tcp_pkt;
  opt_pkt.ip.ihl = 7;
  opt_pkt.ip.total_len += 8;
  add(20, serialized(opt_pkt));
  std::vector<std::uint8_t> arp(42, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  add(30, arp);
  add(40, {0x01, 0x02, 0x03});
  // A frame with trailing payload bytes actually present (real captures
  // include them; our parser must skip past the headers).
  auto padded = serialized(tcp_pkt);
  padded.resize(padded.size() + 32, 0xAB);
  add(50, padded);

  sim::Simulation sim;
  telemetry::DataPlaneProgram program;
  p4::P4Switch sw(sim, "test");
  sw.load_program(program);
  auto trace = trace::TraceReplayer::from_frames(std::move(frames));
  trace.schedule(sim, sw);
  sim.run();
  // TCP frames (plain, options, padded) parse fully; the ARP frame
  // accepts with only Ethernet extracted; the runt is rejected.
  EXPECT_EQ(sw.processed_pkts(), 4u);
  EXPECT_EQ(sw.parse_errors(), 1u);
}

// --------------------------------------------------------------------- CLI

int run_cli(std::vector<std::string> argv_strings, std::string* out_text,
            std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("p4s-trace");
  for (const auto& s : argv_strings) argv.push_back(s.c_str());
  std::ostringstream out, err;
  const int rc = trace::trace_cli(static_cast<int>(argv.size()),
                                  argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(TraceCli, InfoPrintsHeaderAndRecordSummary) {
  TwoPortFixture fx;
  std::string out, err;
  ASSERT_EQ(run_cli({"info", fx.ingress_path}, &out, &err), 0) << err;
  EXPECT_NE(out.find("pcap 2.4"), std::string::npos) << out;
  EXPECT_NE(out.find("nanosecond"), std::string::npos);
  EXPECT_NE(out.find("linktype: 1 (Ethernet)"), std::string::npos);
  EXPECT_NE(out.find("records: 3"), std::string::npos);
}

TEST(TraceCli, StatsAnalyzesMergedTrace) {
  TwoPortFixture fx;
  std::string out, err;
  ASSERT_EQ(run_cli({"stats", fx.ingress_path, fx.egress_path}, &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("frames: 5 (ingress 3, egress 2)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("0x0800: 5"), std::string::npos);
}

TEST(TraceCli, StatsTopFlowsAndQuicCounting) {
  // Two TCP flows of different sizes plus a QUIC short-header frame:
  // --flows must rank by bytes and stats must count the QUIC frame.
  const std::string path = temp_path("flows_test.ingress.pcap");
  const net::Packet big = net::make_tcp_packet(
      net::ipv4(10, 0, 0, 10), net::ipv4(10, 1, 0, 10), 5001, 5201, 1, 0,
      net::tcpflags::kAck, 1400, 65535);
  const net::Packet small = net::make_tcp_packet(
      net::ipv4(10, 2, 0, 10), net::ipv4(10, 1, 0, 10), 6001, 80, 1, 0,
      net::tcpflags::kSyn, 0, 65535);
  net::QuicHeader hdr;
  hdr.long_form = false;
  hdr.spin = true;
  hdr.dcid = 0xD1D;
  hdr.packet_number = 9;
  const net::Packet quic = net::make_quic_packet(
      net::ipv4(10, 3, 0, 10), net::ipv4(10, 1, 0, 10), 40000, 4433, hdr,
      1200);
  {
    trace::PcapWriter w(path);
    w.write(100, serialized(big));
    w.write(200, serialized(big));
    w.write(300, serialized(small));
    w.write(400, serialized(quic));
  }
  std::string out, err;
  ASSERT_EQ(run_cli({"stats", "--flows", "2", path}, &out, &err), 0) << err;
  EXPECT_NE(out.find("quic: 1 (long-header 0, short-header 1)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("flows: 3 (top 2 by bytes"), std::string::npos) << out;
  // Ranked by bytes: the two-frame TCP flow first, the QUIC flow second
  // (1200 B payload beats the 54 B SYN), the SYN cut by top 2.
  const auto big_pos =
      out.find("tcp 10.0.0.10:5001 -> 10.1.0.10:5201: 2 frames");
  const auto quic_pos = out.find("quic 10.3.0.10:40000 -> 10.1.0.10:4433");
  ASSERT_NE(big_pos, std::string::npos) << out;
  ASSERT_NE(quic_pos, std::string::npos) << out;
  EXPECT_LT(big_pos, quic_pos);
  EXPECT_EQ(out.find("tcp 10.2.0.10:6001"), std::string::npos) << out;
}

TEST(TraceCli, ReplayRunsThePipeline) {
  TwoPortFixture fx;
  std::string out, err;
  ASSERT_EQ(run_cli({"replay", fx.ingress_path, fx.egress_path,
                     "--runout-seconds", "1"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("replayed 5 frames (paced)"), std::string::npos) << out;
  EXPECT_NE(out.find("processed: 5, parse errors: 0"), std::string::npos);
  std::string out2;
  ASSERT_EQ(run_cli({"replay", fx.ingress_path, "--max-speed",
                     "--runout-seconds", "1"},
                    &out2, &err),
            0)
      << err;
  EXPECT_NE(out2.find("(max-speed)"), std::string::npos) << out2;
  // Switches before the file arguments must not swallow them.
  std::string out3;
  ASSERT_EQ(run_cli({"replay", "--max-speed", fx.ingress_path,
                     fx.egress_path},
                    &out3, &err),
            0)
      << err;
  EXPECT_NE(out3.find("replayed 5 frames (max-speed)"), std::string::npos)
      << out3;
}

TEST(TraceCli, ReplayInstallsAMeasurementProgram) {
  TwoPortFixture fx;
  const std::string good = temp_path("byte_counter.mpl.json");
  write_file(good, R"({
    "name": "byte_counter", "scope": "flow",
    "ops": [{"op": "add", "dst": 0, "field": "ipv4_total_len"}],
    "export": {"metric": "vm_throughput", "value_key": "throughput_bps",
               "value": "rate_bps", "register": 0,
               "samples_per_second": 2}})");
  std::string out, err;
  ASSERT_EQ(run_cli({"replay", fx.ingress_path, fx.egress_path,
                     "--max-speed", "--runout-seconds", "1", "--program",
                     good},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("installed program 'byte_counter'"), std::string::npos)
      << out;

  // A missing file and a program that fails to compile both fail with
  // a diagnostic instead of replaying.
  EXPECT_EQ(run_cli({"replay", fx.ingress_path, "--program",
                     temp_path("never_written.mpl.json")},
                    &out, &err),
            2);
  EXPECT_NE(out.find("cannot read program file"), std::string::npos) << out;
  const std::string bad = temp_path("bad.mpl.json");
  write_file(bad, R"({"name": "x", "scope": "flow", "ops": []})");
  EXPECT_EQ(run_cli({"replay", fx.ingress_path, "--program", bad},
                    &out, &err),
            2);
  EXPECT_NE(out.find("bad.mpl.json: program:"), std::string::npos) << out;
}

TEST(TraceCli, MalformedInputsFailCleanly) {
  const std::string bad = temp_path("not_a_capture.pcap");
  write_file(bad, "garbage bytes, not a pcap file at all......");
  std::string out, err;
  EXPECT_EQ(run_cli({"info", bad}, &out, &err), 2);
  EXPECT_NE(err.find("unrecognized magic"), std::string::npos) << err;

  // Truncated mid-record: valid header, then a cut-off record.
  std::ostringstream cap;
  {
    trace::PcapWriter writer(cap);
    writer.write(1, std::vector<std::uint8_t>(40, 0));
  }
  const std::string trunc = temp_path("truncated.pcap");
  write_file(trunc, cap.str().substr(0, cap.str().size() - 10));
  EXPECT_EQ(run_cli({"stats", trunc}, &out, &err), 2);
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;

  EXPECT_EQ(run_cli({"info", temp_path("missing.pcap")}, &out, &err), 2);
  EXPECT_EQ(run_cli({"frobnicate"}, &out, &err), 2);
  EXPECT_EQ(run_cli({}, &out, &err), 2);
  EXPECT_EQ(run_cli({"replay"}, &out, &err), 2);
  EXPECT_EQ(run_cli({"info", "--bogus-flag", "x.pcap"}, &out, &err), 2);
}

}  // namespace
