// Tests: the concurrent serving path — snapshot isolation under live
// writer churn (the 10k-maintain-cycle stress battery), retired-segment
// GC pinned by snapshots, the block cache under concurrent readers, and
// the StoreServer sync/async query APIs.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "psonar/store_server.hpp"
#include "store/store.hpp"

namespace p4s::store {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "p4s_store_conc_" + name;
  fs::remove_all(dir);
  return dir;
}

util::Json doc_at(std::int64_t ts, std::int64_t value,
                  const std::string& site) {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = ts;
  doc["throughput_bps"] = value;
  doc["switch_id"] = site;
  return doc;
}

// The tentpole stress test: readers pin snapshots and query them while
// the writer appends, seals, and compacts through 10k+ maintenance
// cycles. Each pinned snapshot must stay frozen — same doc count before,
// during, and after its queries — and no segment a snapshot references
// may be deleted underneath it (a deleted file would surface as a
// StoreError when the scan loads it).
TEST(StoreConcurrency, SnapshotsStayFrozenAcross10kMaintainCycles) {
  const std::string dir = fresh_dir("stress");
  StoreConfig config;
  config.wal_batch_docs = 16;
  config.seal_min_docs = 8;
  config.compact_fanin = 3;
  config.cache_bytes = 256 * 1024;  // small: force eviction + reload
  config.cache_shards = 4;
  Store store(dir, config);

  constexpr int kCycles = 10'000;
  constexpr int kReaders = 4;
  const char* sites[] = {"s0", "s1", "s2"};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_iterations{0};
  std::mutex failure_mu;
  std::vector<std::string> failures;
  const auto record_failure = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(failure_mu);
    failures.push_back(what);
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(static_cast<unsigned>(1000 + r));
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const Snapshot snap = store.snapshot();
          const std::uint64_t frozen = snap.doc_count("idx");
          const std::uint64_t frozen_segments = snap.segment_count("idx");

          // Full scan: must visit exactly the frozen doc count even as
          // the writer seals/compacts (and GC retires) underneath.
          std::uint64_t visited = 0;
          snap.scan("idx", ScanOptions{}, [&](const util::Json&) {
            ++visited;
            return true;
          });
          if (visited != frozen) {
            record_failure("full scan visited " + std::to_string(visited) +
                           " of " + std::to_string(frozen));
          }

          // Random term query. Raw scans over-approximate by contract
          // (memtable docs and bloom-only segments come through
          // unfiltered; callers re-check) — the pinned-view invariant
          // is that the same scan on the same snapshot is exactly
          // repeatable, writer churn or not.
          const std::string site = sites[rng() % 3];
          ScanOptions term;
          term.term_keys = {term_key("switch_id", util::Json(site))};
          term.newest_first = (rng() % 2) == 0;
          const auto count_matches = [&] {
            std::uint64_t matches = 0;
            snap.scan("idx", term, [&](const util::Json& doc) {
              if (doc.at("switch_id").as_string() == site) ++matches;
              return true;
            });
            return matches;
          };
          const std::uint64_t first_pass = count_matches();
          if (first_pass > frozen) {
            record_failure("term scan matched more docs than the snapshot");
          }
          if (count_matches() != first_pass) {
            record_failure("term scan not repeatable on a pinned snapshot");
          }

          // Random range aggregate on the pinned view is repeatable.
          const double lo = static_cast<double>(rng() % 4096);
          const auto once = snap.aggregate_column("idx", "throughput_bps",
                                                  "ts_ns", lo, lo + 2048);
          const auto twice = snap.aggregate_column("idx", "throughput_bps",
                                                   "ts_ns", lo, lo + 2048);
          if (once.has_value() != twice.has_value() ||
              (once.has_value() && once->count != twice->count)) {
            record_failure("aggregate changed on a pinned snapshot");
          }

          // The view itself must not have drifted.
          if (snap.doc_count("idx") != frozen ||
              snap.segment_count("idx") != frozen_segments) {
            record_failure("snapshot counts drifted");
          }
        } catch (const StoreError& e) {
          record_failure(std::string("reader hit StoreError: ") + e.what());
        }
        reader_iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::mt19937 writer_rng(7);
  std::int64_t ts = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const int burst = 1 + static_cast<int>(writer_rng() % 3);
    for (int i = 0; i < burst; ++i) {
      store.append("idx", doc_at(ts, ts % 977, sites[ts % 3]));
      ++ts;
    }
    store.maintain();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  for (const auto& failure : failures) ADD_FAILURE() << failure;
  EXPECT_GT(reader_iterations.load(), 0u);

  const auto stats = store.stats();
  EXPECT_GE(stats.seals, kCycles / 16u);  // the writer really churned
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.segments_retired, 0u);
  EXPECT_GT(stats.cache_evictions, 0u);  // 256 KiB cache really evicted
  // With every reader released, GC owes nothing.
  EXPECT_EQ(stats.gc_pending(), 0u);
  EXPECT_EQ(store.doc_count("idx"), static_cast<std::uint64_t>(ts));

  store.flush();
  const auto verify = Store::verify(dir);
  EXPECT_TRUE(verify.ok) << (verify.errors.empty() ? "" : verify.errors[0]);
}

// A snapshot taken before a compaction keeps the replaced segment files
// alive (and readable) until it is released; release triggers the
// deferred unlink.
TEST(StoreConcurrency, SnapshotPinsRetiredSegmentsUntilRelease) {
  const std::string dir = fresh_dir("gc_pin");
  StoreConfig config;
  config.seal_min_docs = 4;
  config.compact_fanin = 0;
  Store store(dir, config);
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 4; ++i) {
      store.append("idx", doc_at(seg * 10 + i, i, "s0"));
    }
    store.seal("idx");
  }
  ASSERT_EQ(store.segment_count("idx"), 3u);
  const auto seg_files = [&] {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir + "/seg")) {
      files.push_back(entry.path().string());
    }
    return files;
  };
  ASSERT_EQ(seg_files().size(), 3u);

  {
    const Snapshot pinned = store.snapshot();
    store.compact("idx");
    EXPECT_EQ(store.segment_count("idx"), 1u);
    // Old files are retired but still on disk: the snapshot pins them.
    EXPECT_EQ(store.stats().segments_retired, 3u);
    EXPECT_EQ(store.stats().gc_pending(), 3u);
    EXPECT_EQ(seg_files().size(), 4u);  // 3 retired + 1 merged
    // And still perfectly readable through the pinned view.
    std::uint64_t visited = 0;
    pinned.scan("idx", ScanOptions{}, [&](const util::Json&) {
      ++visited;
      return true;
    });
    EXPECT_EQ(visited, 12u);
    EXPECT_EQ(pinned.segment_count("idx"), 3u);
  }
  // Snapshot released: the deferred unlink ran.
  EXPECT_EQ(store.stats().gc_pending(), 0u);
  EXPECT_EQ(store.stats().segments_gc_deleted, 3u);
  EXPECT_EQ(seg_files().size(), 1u);
  EXPECT_TRUE(Store::verify(dir).ok);
}

TEST(StoreConcurrency, BlockCacheCountsHitsMissesAndEvictions) {
  const std::string dir = fresh_dir("cache");
  StoreConfig config;
  config.seal_min_docs = 4;
  config.compact_fanin = 0;
  config.cache_bytes = 1;  // absurdly small: at most one resident entry
  config.cache_shards = 1;
  Store store(dir, config);
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 4; ++i) {
      store.append("idx", doc_at(seg * 10 + i, i, "s0"));
    }
    store.seal("idx");
  }
  const auto scan_all = [&] {
    std::uint64_t visited = 0;
    store.scan("idx", Store::ScanOptions{}, [&](const util::Json&) {
      ++visited;
      return true;
    });
    return visited;
  };
  ASSERT_EQ(scan_all(), 12u);
  auto stats = store.stats();
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_GE(stats.cache_evictions, 2u);
  EXPECT_LE(stats.cache_entries, 1u);
  // A second pass reloads evicted segments: more misses, same answers.
  ASSERT_EQ(scan_all(), 12u);
  stats = store.stats();
  EXPECT_GE(stats.cache_misses, 5u);

  // An unbounded cache keeps everything resident: second scan is all hits.
  Store warm(dir, StoreConfig{});
  std::uint64_t visited = 0;
  warm.scan("idx", Store::ScanOptions{}, [&](const util::Json&) {
    ++visited;
    return true;
  });
  ASSERT_EQ(visited, 12u);
  visited = 0;
  warm.scan("idx", Store::ScanOptions{}, [&](const util::Json&) {
    ++visited;
    return true;
  });
  ASSERT_EQ(visited, 12u);
  const auto warm_stats = warm.stats();
  EXPECT_EQ(warm_stats.cache_misses, 3u);
  EXPECT_EQ(warm_stats.cache_hits, 3u);
  EXPECT_EQ(warm_stats.cache_evictions, 0u);
}

TEST(StoreConcurrency, StoreServerServesSyncAndAsyncQueries) {
  const std::string dir = fresh_dir("server");
  StoreConfig config;
  config.seal_min_docs = 8;
  Store store(dir, config);
  for (int i = 0; i < 40; ++i) {
    store.append("tput", doc_at(i, 100 + i, i % 2 == 0 ? "s0" : "s1"));
  }
  store.seal("tput");

  ps::StoreServerConfig server_config;
  server_config.reader_threads = 3;
  ps::StoreServer server(store, server_config);

  // Sync search with a term.
  ps::ArchiverQuery term;
  term.terms["switch_id"] = util::Json(std::string("s0"));
  EXPECT_EQ(server.search("tput", term).size(), 20u);

  // Sync aggregate matches the columnar math.
  const auto agg = server.aggregate("tput", "throughput_bps");
  EXPECT_EQ(agg.count, 40u);
  EXPECT_DOUBLE_EQ(agg.min, 100.0);
  EXPECT_DOUBLE_EQ(agg.max, 139.0);

  // Latest value is the newest document's field.
  const auto latest = server.latest_value("tput", "throughput_bps");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->as_int(), 139);

  // Async: a burst of futures through the reader pool, all consistent,
  // while the writer keeps appending.
  std::vector<std::future<std::vector<util::Json>>> searches;
  std::vector<std::future<ps::ArchiverAggregation>> aggregates;
  for (int i = 0; i < 16; ++i) {
    searches.push_back(server.submit_search("tput", term));
    aggregates.push_back(server.submit_aggregate("tput", "throughput_bps"));
    store.append("tput", doc_at(1000 + i, 1, "s1"));
  }
  for (auto& future : searches) {
    EXPECT_EQ(future.get().size(), 20u);  // every new doc is s1
  }
  std::uint64_t last_count = 0;
  for (auto& future : aggregates) {
    const auto a = future.get();
    EXPECT_GE(a.count, 40u);
    EXPECT_GE(a.count, last_count);  // snapshots only move forward
    last_count = a.count;
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.reader_threads, 3u);
  EXPECT_EQ(stats.async_queries, 32u);
  EXPECT_GE(stats.searches, 17u);
  EXPECT_GE(stats.aggregates, 17u);
  EXPECT_EQ(stats.latest_queries, 1u);
}

TEST(StoreConcurrency, ReadOnlyOpenRejectsWrites) {
  const std::string dir = fresh_dir("read_only");
  {
    Store store(dir);
    store.append("idx", doc_at(1, 1, "s0"));
    store.flush();
  }
  Store reader(dir, {}, OpenMode::read_only);
  EXPECT_EQ(reader.doc_count("idx"), 1u);
  EXPECT_THROW(reader.append("idx", doc_at(2, 2, "s0")), StoreError);
  EXPECT_THROW(reader.flush(), StoreError);
  EXPECT_THROW(reader.seal("idx"), StoreError);
  EXPECT_THROW(reader.compact("idx"), StoreError);
  EXPECT_THROW(reader.maintain(), StoreError);
}

}  // namespace
}  // namespace p4s::store
