// Unit battery for the sketch library: histogram bin edges and
// under/overflow, merge associativity, quantile error bounds on seeded
// distributions, DDSketch relative-error guarantees and collapse
// behavior, and the cuckoo flow table's insert/kick/evict/aging matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "sketch/cuckoo_table.hpp"
#include "sketch/ddsketch.hpp"
#include "sketch/histogram.hpp"

namespace p4s::sketch {
namespace {

// ---- Histogram -------------------------------------------------------

TEST(Histogram, RejectsMalformedConfigs) {
  HistogramConfig c;
  c.bins = 0;
  EXPECT_THROW(Histogram{c}, std::invalid_argument);
  c = {};
  c.min = 100.0;
  c.max = 100.0;
  EXPECT_THROW(Histogram{c}, std::invalid_argument);
  c = {};
  c.scale = HistogramConfig::Scale::kLog;
  c.min = 0.0;
  EXPECT_THROW(Histogram{c}, std::invalid_argument);
  c = {};
  c.max = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram{c}, std::invalid_argument);
}

TEST(Histogram, LinearBinEdgesAndIndexing) {
  HistogramConfig c;
  c.scale = HistogramConfig::Scale::kLinear;
  c.min = 0.0 + 100.0;
  c.max = 200.0;
  c.bins = 10;
  Histogram h(c);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(9), 200.0);
  // Every bin's lower edge indexes into that bin.
  for (std::size_t b = 0; b < c.bins; ++b) {
    EXPECT_EQ(h.bin_index(h.bin_lower(b)), b) << "bin " << b;
  }
  h.add(100.0);   // first bin, inclusive lower edge
  h.add(199.99);  // last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, LogBinEdgesCoverTheRangeGeometrically) {
  HistogramConfig c;
  c.scale = HistogramConfig::Scale::kLog;
  c.min = 1e3;
  c.max = 1e9;
  c.bins = 6;  // one decade per bin
  Histogram h(c);
  for (std::size_t b = 0; b < c.bins; ++b) {
    EXPECT_NEAR(h.bin_upper(b) / h.bin_lower(b), 10.0, 1e-9);
  }
  EXPECT_DOUBLE_EQ(h.bin_upper(5), 1e9);
  h.add(5e5);  // decade [1e5, 1e6) -> bin 2
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, UnderflowOverflowAndNanNeverDropSamples) {
  Histogram h(HistogramConfig{});  // log, [1us, 1s), 64 bins
  h.add(0.5);    // below min
  h.add(-1.0);   // negative
  h.add(std::nan(""));
  h.add(1e9);    // == max: overflow (upper edge exclusive)
  h.add(2e9);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, MergeIsExactAndAssociative) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(std::log(1e6), 0.8);
  Histogram a{{}}, b{{}}, c{{}}, all{{}};
  for (int i = 0; i < 3000; ++i) {
    const double v = dist(rng);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
    all.add(v);
  }
  // (a + b) + c and a + (b + c) both equal the single-stream histogram,
  // byte for byte.
  Histogram left = a;
  left.merge(b);
  left.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);
  EXPECT_EQ(left.to_json().dump(), all.to_json().dump());
  EXPECT_EQ(right.to_json().dump(), all.to_json().dump());
}

TEST(Histogram, MergeRejectsMismatchedConfigs) {
  HistogramConfig other;
  other.bins = 32;
  Histogram a{{}}, b{other};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, QuantileWithinOneBinOfExactOnSeededDistribution) {
  HistogramConfig c;
  c.min = 1e3;
  c.max = 1e9;
  c.bins = 128;
  Histogram h(c);
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(std::log(2e6), 0.5);
  std::vector<double> exact;
  for (int i = 0; i < 50'000; ++i) {
    const double v = dist(rng);
    h.add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  // A binned quantile can be off by at most one bin width; 128 log bins
  // over 6 decades means a bin ratio of 10^(6/128) ~ 1.114.
  const double bin_ratio = std::pow(1e6, 1.0 / 128);
  for (const double q : {0.50, 0.95, 0.99}) {
    const double est = h.quantile(q);
    const double truth =
        exact[static_cast<std::size_t>(q * (exact.size() - 1))];
    EXPECT_LE(est / truth, bin_ratio * 1.01) << "q=" << q;
    EXPECT_GE(est / truth, 1.0 / (bin_ratio * 1.01)) << "q=" << q;
  }
}

TEST(Histogram, SerializationRoundTripsAndIsCanonical) {
  Histogram h{{}};
  h.add(0.5);
  h.add(5e5, 3);
  h.add(2e9);
  const util::Json doc = h.to_json();
  const Histogram back = Histogram::from_json(doc);
  EXPECT_EQ(back.to_json().dump(), doc.dump());
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.underflow(), 1u);
  EXPECT_EQ(back.overflow(), 1u);
}

// ---- DDSketch --------------------------------------------------------

TEST(DdSketch, RejectsMalformedConfigs) {
  DdSketchConfig c;
  c.alpha = 0.0;
  EXPECT_THROW(DdSketch{c}, std::invalid_argument);
  c = {};
  c.alpha = 1.0;
  EXPECT_THROW(DdSketch{c}, std::invalid_argument);
  c = {};
  c.max_bins = 1;
  EXPECT_THROW(DdSketch{c}, std::invalid_argument);
  c = {};
  c.min_value = 0.0;
  EXPECT_THROW(DdSketch{c}, std::invalid_argument);
}

TEST(DdSketch, RelativeErrorBoundHoldsOnSeededDistributions) {
  for (const std::uint64_t seed : {1ull, 99ull}) {
    DdSketchConfig c;
    c.alpha = 0.01;
    DdSketch s(c);
    std::mt19937_64 rng(seed);
    // Heavy-tailed: exactly the shape that breaks mean-based summaries.
    std::lognormal_distribution<double> dist(std::log(5e6), 1.2);
    std::vector<double> exact;
    for (int i = 0; i < 100'000; ++i) {
      const double v = dist(rng);
      s.add(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
      const double est = s.quantile(q);
      const double truth =
          exact[static_cast<std::size_t>(q * (exact.size() - 1))];
      EXPECT_NEAR(est, truth, c.alpha * truth * 1.05)
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(DdSketch, MergeEqualsCombinedStream) {
  DdSketch a, b, all;
  std::mt19937_64 rng(5);
  std::exponential_distribution<double> dist(1e-6);
  for (int i = 0; i < 20'000; ++i) {
    const double v = dist(rng) + 1.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.to_json().dump(), all.to_json().dump());
}

TEST(DdSketch, ZeroBucketCountsSubMinValues) {
  DdSketch s;
  s.add(0.0);
  s.add(0.5);
  s.add(-3.0);
  s.add(100.0);
  EXPECT_EQ(s.zero_count(), 3u);
  EXPECT_EQ(s.total(), 4u);
  // Three of four samples are "zero": p50 sits in the zero bucket. The
  // rank convention is floor(q * (n - 1)) — lower value, no
  // interpolation — so only the max rank reaches the 100.0 sample.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.74), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1.0);
}

TEST(DdSketch, LowEndCollapseKeepsTheTailAccurate) {
  DdSketchConfig c;
  c.alpha = 0.01;
  c.max_bins = 64;  // tiny: force collapse over a wide value span
  DdSketch s(c);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> expo(0.0, 9.0);
  std::vector<double> exact;
  for (int i = 0; i < 50'000; ++i) {
    const double v = std::pow(10.0, expo(rng));  // 9 decades
    s.add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  EXPECT_GT(s.collapsed(), 0u);
  EXPECT_LE(s.bucket_count(), c.max_bins);
  // The tail guarantee survives the collapse.
  const double truth =
      exact[static_cast<std::size_t>(0.99 * (exact.size() - 1))];
  EXPECT_NEAR(s.quantile(0.99), truth, c.alpha * truth * 1.05);
}

TEST(DdSketch, SerializationRoundTripsAndIsCanonical) {
  DdSketch s;
  s.add(0.1);  // zero bucket
  s.add(1e3, 5);
  s.add(1e7);
  const util::Json doc = s.to_json();
  const DdSketch back = DdSketch::from_json(doc);
  EXPECT_EQ(back.to_json().dump(), doc.dump());
  EXPECT_EQ(back.total(), s.total());
  EXPECT_EQ(back.zero_count(), 1u);
  EXPECT_DOUBLE_EQ(back.quantile(0.5), s.quantile(0.5));
}

TEST(DdSketch, MergeRejectsMismatchedConfigs) {
  DdSketchConfig other;
  other.alpha = 0.02;
  DdSketch a, b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---- CuckooFlowTable -------------------------------------------------

CuckooConfig small_table() {
  CuckooConfig c;
  c.capacity = 64;
  c.ways = 4;
  c.max_kicks = 16;
  return c;
}

TEST(CuckooFlowTable, RejectsMalformedConfigs) {
  CuckooConfig c = small_table();
  c.ways = 1;
  EXPECT_THROW(CuckooFlowTable{c}, std::invalid_argument);
  c = small_table();
  c.ways = 9;
  EXPECT_THROW(CuckooFlowTable{c}, std::invalid_argument);
  c = small_table();
  c.capacity = 0;
  EXPECT_THROW(CuckooFlowTable{c}, std::invalid_argument);
  c = small_table();
  c.max_kicks = 0;
  EXPECT_THROW(CuckooFlowTable{c}, std::invalid_argument);
}

TEST(CuckooFlowTable, InsertFindEraseBasics) {
  CuckooFlowTable t(small_table());
  std::optional<CuckooFlowTable::Victim> victim;
  EXPECT_EQ(t.insert(0xAAAA, 7, 100, victim),
            CuckooFlowTable::InsertResult::kInserted);
  EXPECT_FALSE(victim.has_value());
  EXPECT_EQ(t.find(0xAAAA), std::optional<std::uint16_t>(7));
  EXPECT_FALSE(t.find(0xBBBB).has_value());
  // Re-insert of a resident key: kExists, value untouched.
  EXPECT_EQ(t.insert(0xAAAA, 9, 200, victim),
            CuckooFlowTable::InsertResult::kExists);
  EXPECT_EQ(t.find(0xAAAA), std::optional<std::uint16_t>(7));
  EXPECT_TRUE(t.erase(0xAAAA));
  EXPECT_FALSE(t.erase(0xAAAA));
  EXPECT_FALSE(t.find(0xAAAA).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(CuckooFlowTable, FillsWellPastDirectIndexLoadViaKicks) {
  CuckooFlowTable t(small_table());
  std::optional<CuckooFlowTable::Victim> victim;
  std::size_t inserted = 0;
  for (std::uint32_t k = 1; k <= t.capacity(); ++k) {
    if (t.insert(k * 0x9E3779B9u, static_cast<std::uint16_t>(k), 1,
                 victim) == CuckooFlowTable::InsertResult::kInserted) {
      ++inserted;
    }
    EXPECT_FALSE(victim.has_value());  // no aging configured
  }
  // A 4-way cuckoo table sustains > 90% load; direct indexing with the
  // same hash space would have collided long before.
  EXPECT_GT(t.load_factor(), 0.9);
  EXPECT_GT(t.stats().kick_steps, 0u);
  // Every inserted key is still findable with its original value.
  std::size_t found = 0;
  for (std::uint32_t k = 1; k <= t.capacity(); ++k) {
    const auto slot = t.find(k * 0x9E3779B9u);
    if (slot.has_value()) {
      EXPECT_EQ(*slot, static_cast<std::uint16_t>(k));
      ++found;
    }
  }
  EXPECT_EQ(found, inserted);
}

TEST(CuckooFlowTable, BoundedOutInsertLeavesTableUnchanged) {
  CuckooConfig c = small_table();
  c.max_kicks = 2;  // tiny chain bound: force kTableFull quickly
  CuckooFlowTable t(c);
  std::optional<CuckooFlowTable::Victim> victim;
  std::vector<std::uint32_t> resident;
  for (std::uint32_t k = 1; t.stats().failed_inserts == 0 && k < 10'000;
       ++k) {
    const std::uint32_t key = k * 0x45D9F3Bu;
    if (t.insert(key, static_cast<std::uint16_t>(k & 0x7FF), 1, victim) ==
        CuckooFlowTable::InsertResult::kInserted) {
      resident.push_back(key);
    }
  }
  ASSERT_GT(t.stats().failed_inserts, 0u);
  EXPECT_FALSE(victim.has_value());
  // Losslessness: every previously resident key survived the failed
  // insert, mapped to an unchanged value.
  for (std::size_t i = 0; i < resident.size(); ++i) {
    const auto slot = t.find(resident[i]);
    ASSERT_TRUE(slot.has_value()) << "key " << i << " lost";
  }
}

TEST(CuckooFlowTable, AgingEvictsOnlyIdleEntriesAndReportsThem) {
  CuckooConfig c = small_table();
  c.idle_age = 1000;
  CuckooFlowTable t(c);
  std::optional<CuckooFlowTable::Victim> victim;
  // Fill the table completely at t=0.
  std::vector<std::uint32_t> keys;
  for (std::uint32_t k = 1; t.size() < t.capacity() && k < 100'000; ++k) {
    const std::uint32_t key = k * 0x9E3779B9u;
    if (t.insert(key, 1, 0, victim) ==
        CuckooFlowTable::InsertResult::kInserted) {
      keys.push_back(key);
    }
  }
  ASSERT_EQ(t.size(), t.capacity());

  // Not yet idle long enough: insert fails, nothing evicted.
  EXPECT_EQ(t.insert(0xDEAD0001, 2, 999, victim),
            CuckooFlowTable::InsertResult::kTableFull);
  EXPECT_FALSE(victim.has_value());

  // Past the idle age: an aged entry is evicted and reported.
  EXPECT_EQ(t.insert(0xDEAD0002, 3, 2000, victim),
            CuckooFlowTable::InsertResult::kInserted);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->last_seen, 0u);
  EXPECT_EQ(t.stats().aged_evictions, 1u);
  EXPECT_EQ(t.size(), t.capacity());  // evict + insert: size unchanged
  EXPECT_TRUE(t.find(0xDEAD0002).has_value());
  EXPECT_FALSE(t.find(victim->key).has_value());
}

TEST(CuckooFlowTable, TouchRefreshesAgeAndPreventsEviction) {
  CuckooConfig c;
  c.capacity = 8;
  c.ways = 2;
  c.max_kicks = 4;
  c.idle_age = 1000;
  CuckooFlowTable t(c);
  std::optional<CuckooFlowTable::Victim> victim;
  std::vector<std::uint32_t> keys;
  for (std::uint32_t k = 1; t.size() < t.capacity() && k < 100'000; ++k) {
    const std::uint32_t key = k * 0x2545F491u;
    if (t.insert(key, 1, 0, victim) ==
        CuckooFlowTable::InsertResult::kInserted) {
      keys.push_back(key);
    }
  }
  ASSERT_EQ(t.size(), t.capacity());
  // Keep every resident fresh; at t=5000 none is evictable.
  for (const std::uint32_t key : keys) EXPECT_TRUE(t.touch(key, 4500));
  EXPECT_EQ(t.insert(0xFEED0001, 2, 5000, victim),
            CuckooFlowTable::InsertResult::kTableFull);
  EXPECT_FALSE(victim.has_value());
  // last_seen hook agrees.
  EXPECT_EQ(t.last_seen(keys[0]), std::optional<SimTime>(4500));
}

TEST(CuckooFlowTable, StatsCountLookups) {
  CuckooFlowTable t(small_table());
  std::optional<CuckooFlowTable::Victim> victim;
  t.insert(1, 1, 0, victim);
  (void)t.find(1);
  (void)t.find(2);
  (void)t.touch(1, 5);
  EXPECT_EQ(t.stats().lookups, 3u);
  EXPECT_EQ(t.stats().hits, 2u);
  EXPECT_EQ(t.stats().inserts, 1u);
}

}  // namespace
}  // namespace p4s::sketch
