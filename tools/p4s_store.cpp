// p4s-store: inspect, verify, and compact durable archive stores.
// All logic lives in store::store_cli so tests can drive it in-process.
#include <iostream>

#include "store/store_cli.hpp"

int main(int argc, char** argv) {
  return p4s::store::store_cli(argc, argv, std::cout, std::cerr);
}
