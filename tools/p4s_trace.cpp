// p4s-trace: inspect and replay the capture subsystem's pcap traces.
// All logic lives in trace::trace_cli so tests can drive it in-process.
#include <iostream>

#include "trace/trace_cli.hpp"

int main(int argc, char** argv) {
  return p4s::trace::trace_cli(argc, argv, std::cout, std::cerr);
}
