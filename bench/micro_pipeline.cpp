// Micro-benchmarks (google-benchmark) for the P4 pipeline emulation and
// the report path: per-packet costs of parsing, hashing, sketch updates,
// register operations, the full telemetry program, and Logstash/archiver
// document handling. These quantify the emulation's packet-processing
// rate (the hardware target runs at line rate by construction; the
// numbers here bound the *simulation's* throughput).
#include <benchmark/benchmark.h>

#include <array>

#include "bench_json.hpp"
#include "net/wire.hpp"
#include "p4/cms.hpp"
#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "p4/register.hpp"
#include "psonar/archiver.hpp"
#include "telemetry/int_export.hpp"
#include "psonar/logstash.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/dataplane_program.hpp"
#include "util/json.hpp"

using namespace p4s;

namespace {

net::Packet sample_packet(std::uint32_t seq = 1000) {
  return net::make_tcp_packet(net::ipv4(10, 0, 0, 10),
                              net::ipv4(10, 1, 0, 10), 40000, 5201, seq, 0,
                              net::tcpflags::kAck, 1460, 1 << 20);
}

void BM_SerializeHeaders(benchmark::State& state) {
  const net::Packet pkt = sample_packet();
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::serialize_headers(pkt, buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeHeaders);

void BM_ParseHeaders(benchmark::State& state) {
  const net::Packet pkt = sample_packet();
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const std::size_t len = net::serialize_headers(pkt, buf);
  p4::Parser parser;
  for (auto _ : state) {
    p4::PacketContext ctx;
    ctx.data = std::span<const std::uint8_t>(buf.data(), len);
    benchmark::DoNotOptimize(parser.parse(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseHeaders);

void BM_FlowHash(benchmark::State& state) {
  const net::FiveTuple tuple = sample_packet().five_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p4::flow_hash(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowHash);

void BM_CmsUpdate(benchmark::State& state) {
  p4::CountMinSketch cms(static_cast<std::size_t>(state.range(0)), 4096);
  const auto key = p4::five_tuple_key(sample_packet().five_tuple());
  for (auto _ : state) {
    benchmark::DoNotOptimize(cms.update(key, 1460));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmsUpdate)->Arg(2)->Arg(3)->Arg(4);

void BM_RegisterRmw(benchmark::State& state) {
  p4::RegisterArray<std::uint64_t> reg(2048, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reg.execute((i++) & 2047, [](std::uint64_t& v) { return ++v; }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegisterRmw);

// Full telemetry program: alternating ingress/egress TAP copies of a
// promoted flow (the steady-state hot path).
void BM_ProgramIngress(benchmark::State& state) {
  sim::Simulation sim(1);
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "bench");
  p4sw.load_program(program);
  // Warm up: promote the flow past the CMS threshold.
  std::uint32_t seq = 1;
  for (int i = 0; i < 100; ++i) {
    p4sw.on_mirrored(sample_packet(seq), net::MirrorPoint::kIngress);
    seq += 1460;
  }
  for (auto _ : state) {
    net::Packet pkt = sample_packet(seq);
    seq += 1460;
    p4sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
    p4sw.on_mirrored(pkt, net::MirrorPoint::kEgress);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ProgramIngress);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    q.schedule_in(1, []() {});
    q.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

void BM_JsonRoundTrip(benchmark::State& state) {
  util::Json doc = util::Json::object();
  doc["report"] = "throughput";
  doc["ts_ns"] = static_cast<std::int64_t>(123456789);
  doc["flow"] = util::JsonObject{{"src_ip", util::Json("10.0.0.10")},
                                 {"dst_ip", util::Json("10.1.0.10")},
                                 {"src_port", util::Json(40000)}};
  doc["throughput_bps"] = 1.23e9;
  const std::string text = doc.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Json::parse(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonRoundTrip);

void BM_IntExporterSampled(benchmark::State& state) {
  telemetry::IntExporter::Config config;
  config.enabled = true;
  config.sample_every = static_cast<std::uint32_t>(state.range(0));
  telemetry::IntExporter exporter(config);
  SimTime now = 1;
  for (auto _ : state) {
    exporter.on_egress(7, 0xABCDEF, 1000, 5000, now += 100);
    if (exporter.postcards().pending() > 1000) {
      exporter.postcards().drain();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntExporterSampled)->Arg(32)->Arg(512);

void BM_ArchiverSearch(benchmark::State& state) {
  ps::Archiver archiver;
  for (int i = 0; i < 1000; ++i) {
    util::Json doc = util::Json::object();
    doc["report"] = "throughput";
    doc["ts_ns"] = static_cast<std::int64_t>(i);
    doc["throughput_bps"] = 1e8 + i;
    doc["flow"] = util::JsonObject{
        {"dst_ip", util::Json(i % 3 == 0 ? "10.1.0.10" : "10.2.0.10")}};
    archiver.index("p4sonar-throughput", std::move(doc));
  }
  ps::Archiver::Query query;
  query.terms["flow.dst_ip"] = util::Json("10.1.0.10");
  for (auto _ : state) {
    benchmark::DoNotOptimize(archiver.search("p4sonar-throughput", query));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ArchiverSearch);

void BM_LogstashToArchiver(benchmark::State& state) {
  ps::Archiver archiver;
  ps::Logstash logstash(archiver);
  util::Json doc = util::Json::object();
  doc["report"] = "throughput";
  doc["ts_ns"] = static_cast<std::int64_t>(42);
  doc["throughput_bps"] = 1e9;
  const std::string line = doc.dump() + "\n";
  for (auto _ : state) {
    logstash.tcp_input(line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogstashToArchiver);

// ---- Measured hot loops feeding BENCH_micro_pipeline.json -------------
//
// These run outside google-benchmark so the numbers land in the
// machine-readable trajectory (google-benchmark's own timings stay on
// stdout for humans). Loop sizes are fixed so runs are comparable.

// Steady-state scheduling: schedule + fire, the simulator's innermost
// loop. This is the "events_per_sec" figure the perf trajectory ratchets.
double measured_events_per_sec(sim::EventQueue& q) {
  constexpr int kEvents = 4'000'000;
  bench::WallTimer timer;
  for (int i = 0; i < kEvents; ++i) {
    q.schedule_in(1, []() {});
    q.step();
  }
  return kEvents / timer.elapsed_s();
}

// The TCP RTO pattern: every "ACK" cancels the pending timer and arms a
// new one; only occasionally does a timer actually fire. Exercises
// cancel() and the lazy reclamation path.
double measured_rto_churn_per_sec(sim::EventQueue& q) {
  constexpr int kOps = 2'000'000;
  bench::WallTimer timer;
  sim::EventHandle rto;
  for (int i = 0; i < kOps; ++i) {
    rto.cancel();
    rto = q.schedule_in(100, []() {});
    if (i % 64 == 63) q.step();
  }
  q.run();
  return kOps / timer.elapsed_s();
}

// Full per-copy telemetry cost through the P4 switch (serialize + parse +
// program), alternating ingress/egress copies of a promoted flow.
double measured_mirrored_pkts_per_sec(sim::Simulation& sim) {
  constexpr int kPairs = 500'000;
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "bench");
  p4sw.load_program(program);
  std::uint32_t seq = 1;
  for (int i = 0; i < 100; ++i) {  // promote the flow past the CMS gate
    p4sw.on_mirrored(sample_packet(seq), net::MirrorPoint::kIngress);
    seq += 1460;
  }
  bench::WallTimer timer;
  for (int i = 0; i < kPairs; ++i) {
    net::Packet pkt = sample_packet(seq);
    seq += 1460;
    p4sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
    p4sw.on_mirrored(pkt, net::MirrorPoint::kEgress);
  }
  return 2.0 * kPairs / timer.elapsed_s();
}

int write_bench_json() {
  bench::WallTimer wall;
  sim::EventQueue q;
  const double events_per_sec = measured_events_per_sec(q);
  const double churn_per_sec = measured_rto_churn_per_sec(q);
  sim::Simulation sim(1);
  const double pkts_per_sec = measured_mirrored_pkts_per_sec(sim);

  bench::BenchReport report("micro_pipeline");
  report.wall_time_s(wall.elapsed_s());
  report.metric("events_per_sec", events_per_sec);
  report.metric("rto_churn_ops_per_sec", churn_per_sec);
  report.metric("mirrored_pkts_per_sec", pkts_per_sec);
  report.metric("peak_heap_events",
                static_cast<std::uint64_t>(q.peak_pending_events()));
  report.meta("seed", util::Json(1));
  std::printf("measured: %.3gM events/s, %.3gM rto-churn ops/s, "
              "%.3gM mirrored pkts/s\n",
              events_per_sec / 1e6, churn_per_sec / 1e6, pkts_per_sec / 1e6);
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_bench_json();
}
