// Micro-benchmarks (google-benchmark) for the report transport: raw
// ReportChannel byte throughput, the per-report cost of the resilient
// path (frame + queue + send + deliver + parse + dedup + ack) versus the
// legacy direct LogstashTcpSink call, and the overhead of riding out a
// periodic reset schedule. These bound the simulation cost of turning the
// perfect report wire into a faulty one.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>

#include "bench_json.hpp"

#include "controlplane/resilient_sink.hpp"
#include "net/fault_injector.hpp"
#include "net/report_channel.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "sim/simulation.hpp"
#include "util/json.hpp"

using namespace p4s;

namespace {

util::Json sample_report() {
  util::Json j = util::Json::object();
  j["report"] = "throughput";
  j["ts_ns"] = static_cast<std::int64_t>(123456789);
  j["flow"] = util::JsonObject{{"dst_ip", util::Json("10.1.0.10")},
                               {"dst_port", util::Json(5201)}};
  j["value"] = 94.7;
  return j;
}

void BM_ChannelThroughput(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim(1);
    net::ReportChannel::Config cc;
    cc.send_buffer_bytes = 1 << 30;
    net::ReportChannel channel(sim, cc);
    channel.set_receiver(
        [&delivered](std::string_view c) { delivered += c.size(); });
    channel.connect();
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) channel.send(payload);
    sim.run_until(units::seconds(10));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_ChannelThroughput)->Arg(128)->Arg(1400)->Arg(16384);

void BM_DirectSinkPerReport(benchmark::State& state) {
  ps::Archiver archiver;
  ps::Logstash logstash(archiver);
  ps::LogstashTcpSink sink(logstash);
  const util::Json report = sample_report();
  for (auto _ : state) {
    sink.on_report(report);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectSinkPerReport);

void BM_ResilientSinkPerReport(benchmark::State& state) {
  // Full resilient round trip per report: frame with @xmit_seq, queue,
  // chunked wire delivery, line reassembly, dedup, ack, frame retirement.
  std::uint64_t reports = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim(1);
    ps::Archiver archiver;
    ps::Logstash logstash(archiver);
    net::ReportChannel::Config cc;
    cc.send_buffer_bytes = 1 << 30;
    net::ReportChannel channel(sim, cc);
    channel.set_receiver(
        [&logstash](std::string_view c) { logstash.tcp_input(c); });
    cp::ResilientReportSink::Config sc;
    sc.health_interval = 0;
    cp::ResilientReportSink sink(sim, channel, sc);
    logstash.set_transport_ack(
        [&sink](std::uint64_t seq) { sink.on_ack(seq); });
    const util::Json report = sample_report();
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      sink.on_report(report);
      sim.run_until(sim.now() + units::milliseconds(1));
    }
    reports += 100;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(reports));
}
BENCHMARK(BM_ResilientSinkPerReport);

void BM_ResilientSinkUnderResets(benchmark::State& state) {
  // The same round trip while a reset hits the wire every 50 reports —
  // measures the cost of reconnect + retransmit machinery in the loop.
  std::uint64_t reports = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim(1);
    ps::Archiver archiver;
    ps::Logstash logstash(archiver);
    net::ReportChannel::Config cc;
    cc.send_buffer_bytes = 1 << 30;
    net::ReportChannel channel(sim, cc);
    channel.set_receiver(
        [&logstash](std::string_view c) { logstash.tcp_input(c); });
    channel.on_disconnect([&logstash]() { logstash.tcp_reset(); });
    cp::ResilientReportSink::Config sc;
    sc.health_interval = 0;
    sc.ack_timeout = units::milliseconds(5);
    sc.backoff.base = units::milliseconds(1);
    cp::ResilientReportSink sink(sim, channel, sc);
    logstash.set_transport_ack(
        [&sink](std::uint64_t seq) { sink.on_ack(seq); });
    const util::Json report = sample_report();
    state.ResumeTiming();
    for (int i = 0; i < 500; ++i) {
      sink.on_report(report);
      if (i % 50 == 49) channel.reset();
      sim.run_until(sim.now() + units::milliseconds(1));
    }
    sim.run_until(sim.now() + units::seconds(1));
    reports += 500;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(reports));
}
BENCHMARK(BM_ResilientSinkUnderResets);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  p4s::bench::WallTimer wall;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  p4s::bench::BenchReport report("micro_transport");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
