// Ablation (DESIGN.md §5): TCP machinery choices and their effect on the
// paper-shape experiments.
//
//  1. Congestion control: CUBIC (default, what DTNs run) vs Reno on the
//     Fig. 10 scenario — convergence/fairness after a flow joins.
//  2. Loss recovery: SACK scoreboard (default) vs NewReno on a lossy
//     path — completion time of a fixed transfer.
//
// Both justify defaults the reproduction depends on: Reno's 1 MSS/RTT
// growth cannot refill high-BDP windows on the paper's timescales, and
// NewReno's one-hole-per-RTT recovery collapses under the slow-start
// overshoot bursts the experiments rely on.
#include <cstdio>
#include <string>

#include "bench_common.hpp"

using namespace p4s;
using units::seconds;

namespace {

void cc_convergence(const std::string& cc) {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
  config.topology.core_buffer_bytes = units::bdp_bytes(
      config.topology.bottleneck_bps, units::milliseconds(50));
  core::MonitoringSystem system(config);
  system.start();

  tcp::TcpFlow::Config fc;
  fc.sender.congestion_control = cc;
  auto& f1 = system.add_transfer(0, fc);
  auto& f2 = system.add_transfer(1, fc);
  auto& f3 = system.add_transfer(2, fc);
  f1.start_at(seconds(1));
  f2.start_at(seconds(1));
  f3.start_at(seconds(30));

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(60));
  system.run_until(seconds(60));

  double min_fairness = 1.0;
  double mean_util = 0.0;
  double recover_t = -1.0;
  std::size_t n = 0;
  for (const auto& s : recorder.samples()) {
    if (s.t_s < 31.0) continue;
    mean_util += s.link_utilization;
    ++n;
    if (!s.fairness.has_value()) continue;  // idle: index undefined
    min_fairness = std::min(min_fairness, *s.fairness);
    if (recover_t < 0 && *s.fairness >= 0.9 && s.t_s > 34.0) {
      recover_t = s.t_s;
    }
  }
  std::printf("%-8s | min fairness %.3f | mean util %.3f | fairness>=0.9 "
              "%s after the join\n",
              cc.c_str(), min_fairness,
              n ? mean_util / static_cast<double>(n) : 0.0,
              recover_t > 0
                  ? (std::to_string(recover_t - 30.0) + " s").c_str()
                  : "never");
}

void recovery_ablation(bool sack) {
  // Burst-loss scenario: a tiny (BDP/8) buffer at 100 ms RTT makes the
  // slow-start overshoot drop hundreds of segments at once — the episode
  // every experiment's "join" moment produces. SACK repairs the window in
  // a few RTTs; NewReno retransmits one hole per RTT.
  sim::Simulation sim(99);
  net::Network network(sim);
  net::PaperTopologyConfig tconfig;
  tconfig.bottleneck_bps = bench::scaled_bottleneck_bps();
  tconfig.rtt = {units::milliseconds(100), units::milliseconds(100),
                 units::milliseconds(100)};
  tconfig.core_buffer_bytes =
      units::bdp_bytes(tconfig.bottleneck_bps, units::milliseconds(100)) /
      8;
  auto topo = net::make_paper_topology(network, tconfig);

  tcp::TcpFlow::Config fc;
  fc.sender.sack = sack;
  fc.sender.bytes_to_send = 60'000'000;
  tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
  flow.start_at(units::milliseconds(1));
  sim.run_until(units::seconds(600));

  const auto& s = flow.sender().stats();
  if (flow.complete()) {
    std::printf("%-8s | 60 MB through a BDP/8 buffer: %.2f s, retx %llu, "
                "RTOs %llu, fast recoveries %llu\n",
                sack ? "sack" : "newreno",
                units::to_seconds(s.end_time - s.established_time),
                static_cast<unsigned long long>(s.retransmitted_segments),
                static_cast<unsigned long long>(s.rto_count),
                static_cast<unsigned long long>(s.fast_recoveries));
  } else {
    std::printf("%-8s | DID NOT COMPLETE within 600 s (delivered %llu of "
                "60000000 bytes)\n",
                sack ? "sack" : "newreno",
                static_cast<unsigned long long>(
                    flow.receiver().stats().goodput_bytes));
  }
}

}  // namespace

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "TCP ablation — congestion control and loss recovery",
      "DESIGN.md §5 design decisions",
      "CUBIC keeps the link full through convergence (Reno's 1 MSS/RTT "
      "growth leaves it underutilized); SACK repairs burst-loss episodes "
      "in a few RTTs where NewReno crawls one hole per RTT");

  std::printf("\n== congestion control on the Fig. 10 scenario "
              "(3rd flow joins at t=30) ==\n");
  cc_convergence("cubic");
  cc_convergence("reno");

  std::printf("\n== loss recovery under a burst-loss episode ==\n");
  recovery_ablation(true);
  recovery_ablation(false);
  bench::BenchReport report("ablation_tcp");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
