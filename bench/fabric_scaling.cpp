// fabric_scaling — aggregate monitoring throughput as the fabric grows.
//
// Runs the same fixed TCP workload with N = 1, 2, 4 monitored switches
// sharing one simulation and measures aggregate processed mirror copies
// per wall second (sum over switches). The workload is a multi-site mix:
// DTN transfers through the core bottleneck (seen by every site) plus
// inter-site transfers between external DTNs, which the WAN switch
// routes directly — a single core-bottleneck monitor never sees them.
// The shared TCP/topology simulation cost is paid once regardless of N
// and each added site observes traffic the core site misses, so
// aggregate throughput should grow >= 2x from N=1 to N=4 — the
// refactor's scaling claim.
//
// Writes BENCH_fabric_scaling.json; absolute numbers are archived, not
// asserted (machine-dependent).
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/monitoring_system.hpp"

using namespace p4s;
using core::MonitoredSwitchConfig;
using core::TapPoint;

namespace {

struct RunStats {
  double wall_s = 0.0;
  std::uint64_t processed = 0;  // mirror copies across all P4 switches
  double aggregate_per_sec = 0.0;
};

RunStats run_fabric(std::size_t n_switches) {
  static constexpr TapPoint kTaps[] = {
      TapPoint::kCoreBottleneck, TapPoint::kWanExt0, TapPoint::kWanExt1,
      TapPoint::kWanExt2};
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(200);
  config.topology.access_bps = units::mbps(200);
  config.seed = 1;
  for (std::size_t i = 0; i < n_switches; ++i) {
    MonitoredSwitchConfig sw;
    sw.id = "site-" + std::to_string(i);
    sw.tap = kTaps[i % 4];
    config.switches.push_back(sw);
  }

  bench::WallTimer timer;
  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 4");
  system.start();
  // Core-bottleneck transfers: internal DTN -> each external site.
  for (int ext = 0; ext < 3; ++ext) {
    auto& flow = system.add_transfer(ext);
    flow.start_at(units::seconds(1) + units::milliseconds(200 * ext));
    flow.stop_at(units::seconds(7));
  }
  // Inter-site transfers: routed ext <-> ext by the WAN switch, never
  // crossing the core bottleneck.
  auto& topology = system.topology();
  const std::pair<int, int> site_pairs[] = {{0, 1}, {1, 2}, {2, 0}};
  for (const auto& [src, dst] : site_pairs) {
    auto& flow =
        system.add_flow(*topology.dtn_ext[static_cast<std::size_t>(src)],
                        *topology.dtn_ext[static_cast<std::size_t>(dst)]);
    flow.start_at(units::seconds(1) + units::milliseconds(100 * src));
    flow.stop_at(units::seconds(7));
  }
  system.run_until(units::seconds(8));

  RunStats stats;
  stats.wall_s = timer.elapsed_s();
  for (const auto& sw : system.monitored_switches()) {
    stats.processed += sw->p4_switch().processed_pkts();
  }
  stats.aggregate_per_sec = stats.processed / stats.wall_s;
  return stats;
}

}  // namespace

int main() {
  bench::WallTimer wall;
  const std::size_t sizes[] = {1, 2, 4};
  std::vector<RunStats> runs;
  for (const std::size_t n : sizes) {
    runs.push_back(run_fabric(n));
    std::printf("fabric N=%zu: %llu mirror copies in %.3f s "
                "(%.3gM aggregate copies/s)\n",
                n, static_cast<unsigned long long>(runs.back().processed),
                runs.back().wall_s, runs.back().aggregate_per_sec / 1e6);
  }

  const double speedup =
      runs[2].aggregate_per_sec / runs[0].aggregate_per_sec;
  std::printf("aggregate scaling 1 -> 4 switches: %.2fx\n", speedup);

  bench::BenchReport report("fabric_scaling");
  report.wall_time_s(wall.elapsed_s());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::string prefix = "n" + std::to_string(sizes[i]);
    report.metric(prefix + "_processed_copies", runs[i].processed);
    report.metric(prefix + "_wall_s", runs[i].wall_s);
    report.metric(prefix + "_aggregate_copies_per_sec",
                  runs[i].aggregate_per_sec);
  }
  report.metric("speedup_4v1", speedup);
  report.meta("seed", util::Json(1));
  return report.write() ? 0 : 1;
}
