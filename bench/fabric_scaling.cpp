// fabric_scaling — aggregate monitoring throughput as the fabric grows,
// serial vs. sharded parallel execution.
//
// Two curves over the same fixed TCP workload:
//
//   * fabric growth (serial): N = 1, 2, 4, 8, 16 monitored switches
//     sharing one simulation — aggregate processed mirror copies per
//     wall second, and per switch per wall second (the per-site cost of
//     growing the fabric).
//   * parallel execution: the 16-switch fabric re-run with the sharded
//     runtime at parallel = 2, 4, 8 workers — same seed, byte-identical
//     outputs (the determinism battery's guarantee), wall time the only
//     thing allowed to change.
//
// The workload is a multi-site mix: DTN transfers through the core
// bottleneck (seen by every site) plus inter-site transfers between
// external DTNs, which the WAN switch routes directly — a single
// core-bottleneck monitor never sees them.
//
// `--quick` (the CI perf-smoke shape gate) trims to a 4-switch fabric,
// serial + 4 workers, over a shorter horizon.
//
// Writes BENCH_fabric_scaling.json with the schema keys perf_smoke
// --validate asserts: top-level `wall_seconds` and
// `copies_per_switch_per_sec` metrics plus per-run n<N>[_p<W>]_
// breakdowns. Absolute numbers are archived, not asserted
// (machine-dependent; parallel speedup needs physical cores).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/monitoring_system.hpp"

using namespace p4s;
using core::MonitoredSwitchConfig;
using core::TapPoint;

namespace {

struct RunStats {
  std::size_t switches = 0;
  std::size_t parallel = 1;
  double wall_s = 0.0;
  std::uint64_t processed = 0;  // mirror copies across all P4 switches
  double copies_per_sec = 0.0;
  double copies_per_switch_per_sec = 0.0;
};

RunStats run_fabric(std::size_t n_switches, std::size_t parallel,
                    SimTime horizon) {
  static constexpr TapPoint kTaps[] = {
      TapPoint::kCoreBottleneck, TapPoint::kWanExt0, TapPoint::kWanExt1,
      TapPoint::kWanExt2};
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(200);
  config.topology.access_bps = units::mbps(200);
  config.seed = 1;
  config.parallel = parallel;
  for (std::size_t i = 0; i < n_switches; ++i) {
    MonitoredSwitchConfig sw;
    sw.id = "site-" + std::to_string(i);
    sw.tap = kTaps[i % 4];
    config.switches.push_back(sw);
  }

  bench::WallTimer timer;
  core::MonitoringSystem system(config);
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 4");
  system.start();
  // Core-bottleneck transfers: internal DTN -> each external site.
  for (int ext = 0; ext < 3; ++ext) {
    auto& flow = system.add_transfer(ext);
    flow.start_at(units::seconds(1) + units::milliseconds(200 * ext));
    flow.stop_at(horizon - units::seconds(1));
  }
  // Inter-site transfers: routed ext <-> ext by the WAN switch, never
  // crossing the core bottleneck.
  auto& topology = system.topology();
  const std::pair<int, int> site_pairs[] = {{0, 1}, {1, 2}, {2, 0}};
  for (const auto& [src, dst] : site_pairs) {
    auto& flow =
        system.add_flow(*topology.dtn_ext[static_cast<std::size_t>(src)],
                        *topology.dtn_ext[static_cast<std::size_t>(dst)]);
    flow.start_at(units::seconds(1) + units::milliseconds(100 * src));
    flow.stop_at(horizon - units::seconds(1));
  }
  system.run_until(horizon);

  RunStats stats;
  stats.switches = n_switches;
  stats.parallel = parallel;
  // fabric_stats() is the merge-barrier snapshot — the race-free way to
  // total worker-owned counters in parallel mode (and a plain read in
  // serial mode).
  stats.processed = system.fabric_stats().processed;
  stats.wall_s = timer.elapsed_s();
  stats.copies_per_sec = stats.processed / stats.wall_s;
  stats.copies_per_switch_per_sec =
      stats.copies_per_sec / static_cast<double>(n_switches);
  return stats;
}

std::string run_prefix(const RunStats& run) {
  std::string prefix = "n" + std::to_string(run.switches);
  if (run.parallel > 1) prefix += "_p" + std::to_string(run.parallel);
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  bench::WallTimer wall;
  std::vector<RunStats> runs;
  const SimTime horizon =
      quick ? units::seconds(4) : units::seconds(8);
  if (quick) {
    // CI shape gate: one serial and one sharded run of a small fabric.
    runs.push_back(run_fabric(4, 1, horizon));
    runs.push_back(run_fabric(4, 4, horizon));
  } else {
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
      runs.push_back(run_fabric(n, 1, horizon));
    }
    for (const std::size_t workers : {2u, 4u, 8u}) {
      runs.push_back(run_fabric(16, workers, horizon));
    }
  }
  for (const auto& run : runs) {
    std::printf("fabric N=%zu parallel=%zu: %llu mirror copies in %.3f s "
                "(%.3gM copies/s, %.3gM per switch)\n",
                run.switches, run.parallel,
                static_cast<unsigned long long>(run.processed), run.wall_s,
                run.copies_per_sec / 1e6,
                run.copies_per_switch_per_sec / 1e6);
  }

  // Headline ratios: biggest serial fabric vs. its most-parallel rerun,
  // and serial scaling from the smallest fabric.
  const RunStats& base = runs.front();
  const RunStats* big_serial = &base;
  const RunStats* best_parallel = &base;
  for (const auto& run : runs) {
    if (run.parallel == 1 && run.switches >= big_serial->switches) {
      big_serial = &run;
    }
    if (run.parallel > best_parallel->parallel ||
        (run.parallel == best_parallel->parallel &&
         run.switches > best_parallel->switches)) {
      best_parallel = &run;
    }
  }
  const double serial_scaling = big_serial->copies_per_sec /
                                base.copies_per_sec;
  const double parallel_speedup =
      best_parallel->copies_per_sec / big_serial->copies_per_sec;
  std::printf("serial aggregate scaling %zu -> %zu switches: %.2fx\n",
              base.switches, big_serial->switches, serial_scaling);
  std::printf("parallel=%zu speedup over serial at %zu switches: %.2fx\n",
              best_parallel->parallel, best_parallel->switches,
              parallel_speedup);

  bench::BenchReport report("fabric_scaling");
  report.wall_time_s(wall.elapsed_s());
  // Schema keys asserted by perf_smoke --validate: the headline numbers
  // of the largest serial run.
  report.metric("wall_seconds", big_serial->wall_s);
  report.metric("copies_per_switch_per_sec",
                big_serial->copies_per_switch_per_sec);
  for (const auto& run : runs) {
    const std::string prefix = run_prefix(run);
    report.metric(prefix + "_processed_copies", run.processed);
    report.metric(prefix + "_wall_seconds", run.wall_s);
    report.metric(prefix + "_copies_per_sec", run.copies_per_sec);
    report.metric(prefix + "_copies_per_switch_per_sec",
                  run.copies_per_switch_per_sec);
  }
  report.metric("serial_scaling", serial_scaling);
  report.metric("parallel_speedup", parallel_speedup);
  report.meta("seed", util::Json(1));
  report.meta("quick", util::Json(quick));
  report.meta("max_parallel",
              util::Json(static_cast<std::int64_t>(best_parallel->parallel)));
  return report.write() ? 0 : 1;
}
