// Figure 13 / §5.4.3 reproduction: identifying mmWave LOS blockage from
// packet inter-arrival times.
//
// Paper shape: without blockage the IAT stays flat; with a blockage at
// t=7 s the IAT increases by multiple orders of magnitude for the
// blockage duration. The data plane's IAT monitor raises a blockage
// digest within a few packet gaps.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "controlplane/control_plane.hpp"
#include "net/impairment.hpp"
#include "net/topology.hpp"
#include "p4/p4_switch.hpp"
#include "tcp/flow.hpp"
#include "telemetry/dataplane_program.hpp"

using namespace p4s;
using units::milliseconds;
using units::seconds;

namespace {

struct IatRun {
  std::vector<std::pair<double, double>> iat_series;  // (t_s, iat_ms)
  std::vector<double> blockage_digests_at;            // t_s
};

IatRun run(bool with_blockage) {
  sim::Simulation sim(7);
  net::Network network(sim);
  auto& host_a = network.add_host("sender", net::ipv4(10, 9, 0, 1));
  auto& host_b = network.add_host("receiver", net::ipv4(10, 9, 0, 2));
  auto& sw = network.add_switch("tor");

  const std::uint64_t wired_bps = units::gbps(1);
  const std::uint64_t mmwave_bps = units::mbps(200);
  net::Network::LinkSpec uplink{wired_bps, units::microseconds(5),
                                units::mebibytes(8), units::mebibytes(8)};
  network.connect(host_a, sw, uplink);
  net::Network::LinkSpec mmlink{mmwave_bps, units::microseconds(50),
                                units::mebibytes(8), units::mebibytes(8)};
  auto duplex = network.connect(host_b, sw, mmlink);

  // The switch->receiver hop is the 60 GHz point-to-point link.
  net::MmWaveLink mmwave(sim, *duplex.reverse_link);
  if (with_blockage) {
    mmwave.schedule_blockage(seconds(7), seconds(2));
  }

  // Passive monitoring of the ToR switch.
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "monitor");
  p4sw.load_program(program);
  net::OpticalTapPair taps(sim, p4sw);
  taps.attach(sw, *duplex.reverse);

  cp::ControlPlaneConfig cp_config;
  cp_config.digest_poll_interval = milliseconds(5);
  cp::ControlPlane control(sim, program, cp_config);
  control.start();

  IatRun result;
  control.set_on_blockage([&](const telemetry::BlockageDigest& d) {
    result.blockage_digests_at.push_back(units::to_seconds(d.at));
  });

  // A paced 50 Mbps transfer (steady IATs ~0.23 ms at full MTU).
  tcp::TcpFlow::Config flow_config;
  flow_config.sender.rate_limit_bps = units::mbps(50);
  tcp::TcpFlow flow(sim, host_a, host_b, flow_config);
  flow.start_at(seconds(1));

  sim.every(seconds(2), milliseconds(20), [&]() {
    for (const auto& [slot, state] : control.flows()) {
      (void)state;
      const SimTime iat = program.iat_monitor().last_iat(slot);
      result.iat_series.emplace_back(units::to_seconds(sim.now()),
                                     units::to_milliseconds(iat));
    }
    return sim.now() < seconds(12);
  });
  sim.run_until(seconds(12));
  return result;
}

void print_series(const char* title, const IatRun& r) {
  std::printf("\n== %s ==\n%-8s %12s\n", title, "t_s", "iat_ms");
  // Thin to ~50 rows but always keep local maxima (the blockage spikes).
  const std::size_t n = r.iat_series.size();
  const std::size_t step = n > 50 ? n / 50 : 1;
  double window_max = 0.0;
  std::size_t count = 0;
  double t = 0.0;
  for (const auto& [ts, iat] : r.iat_series) {
    window_max = std::max(window_max, iat);
    t = ts;
    if (++count % step == 0) {
      std::printf("%-8.2f %12.4f\n", t, window_max);
      window_max = 0.0;
    }
  }
  std::printf("blockage digests: %zu", r.blockage_digests_at.size());
  for (double at : r.blockage_digests_at) std::printf("  @%.3fs", at);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Figure 13 — packet IAT under mmWave LOS blockage",
      "§5.4.3, Fig. 13 (a) no blockage, (b) blockage at t=7 s",
      "flat IAT without blockage; IAT jumps by orders of magnitude "
      "during the 2 s blockage; data plane raises a blockage digest");

  IatRun clear = run(false);
  IatRun blocked = run(true);

  print_series("(a) no blockage", clear);
  print_series("(b) blockage at t=7 s for 2 s", blocked);

  double clear_max = 0.0, normal_max = 0.0, blocked_max = 0.0;
  for (const auto& [t, iat] : clear.iat_series) {
    clear_max = std::max(clear_max, iat);
  }
  for (const auto& [t, iat] : blocked.iat_series) {
    if (t >= 7.0 && t <= 9.5) {
      blocked_max = std::max(blocked_max, iat);
    } else {
      normal_max = std::max(normal_max, iat);
    }
  }
  std::printf("\nshape summary:\n");
  std::printf("  max IAT, run (a): %.3f ms\n", clear_max);
  std::printf("  max IAT outside blockage, run (b): %.3f ms\n", normal_max);
  std::printf("  max IAT during blockage, run (b): %.3f ms -> %.0fx the "
              "clear baseline (paper: orders of magnitude)\n",
              blocked_max,
              clear_max > 0 ? blocked_max / clear_max : 0.0);
  std::printf("  blockage digests in run (a): %zu (expected 0), run (b): "
              "%zu (expected >= 1)\n",
              clear.blockage_digests_at.size(),
              blocked.blockage_digests_at.size());
  bench::BenchReport report("fig13_iat_blockage");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
