// Figure 12 / §5.4.2 reproduction: determining whether a connection is
// limited by the sender/receiver or by the network.
//
// Paper setup (scaled 40:1 with the bottleneck):
//  * DTN1: the network is the bottleneck — 0.01% random loss is injected
//    on its path; throughput fluctuates; the switch reports
//    network-limited;
//  * DTN2: the receiver is the bottleneck — its TCP buffer is reduced;
//    throughput is steady at ~1/40 of the bottleneck (paper: 250 Mbps of
//    10 Gbps); reported endpoint-limited;
//  * DTN3: the sender is the bottleneck — its rate is capped at ~1/20 of
//    the bottleneck (paper: 500 Mbps); steady; reported endpoint-limited.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace p4s;
using units::seconds;

int main() {
  bench::WallTimer wall;
  const std::uint64_t bps = bench::scaled_bottleneck_bps();
  bench::print_header(
      "Figure 12 — network-limited vs sender/receiver-limited flows",
      "§5.4.2, Fig. 12",
      "DTN1 fluctuates (network verdict); DTN2 steady at ~bottleneck/40 "
      "(endpoint); DTN3 steady at ~bottleneck/20 (endpoint)");

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bps;
  config.seed = bench::experiment_seed();
  core::MonitoringSystem system(config);

  // Test 1: make the network the bottleneck toward DTN1 with 0.01%
  // induced loss on its access link (data direction: WAN switch -> DTN).
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.0001);

  system.start();
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");

  // Test 1: unbounded transfer; loss keeps it network-limited.
  auto& flow1 = system.add_transfer(0);

  // Test 2: receiver-limited via a small TCP receive buffer sized for
  // ~bottleneck/40 at DTN2's 75 ms RTT.
  tcp::TcpFlow::Config recv_limited;
  recv_limited.receiver.buffer_bytes =
      units::bdp_bytes(bps / 40, units::milliseconds(75));
  auto& flow2 = system.add_transfer(1, recv_limited);

  // Test 3: sender-limited via an application rate cap of bottleneck/20.
  tcp::TcpFlow::Config send_limited;
  send_limited.sender.rate_limit_bps = bps / 20;
  auto& flow3 = system.add_transfer(2, send_limited);

  flow1.start_at(seconds(1));
  flow2.start_at(seconds(1));
  flow3.start_at(seconds(1));

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(40));
  system.run_until(seconds(40));

  bench::print_metric(recorder, "per-flow throughput (Fig. 12)",
                      &core::FlowSample::throughput_mbps, "Mbps");

  // Verdict tally per destination over the second half of the run.
  std::map<std::string, std::map<std::string, int>> verdicts;
  std::map<std::string, util::RunningStats> rates;
  for (const auto& s : recorder.samples()) {
    if (s.t_s < 10.0) continue;
    for (const auto& f : s.flows) {
      verdicts[f.label][f.verdict]++;
      rates[f.label].add(f.throughput_mbps);
    }
  }
  std::printf("\n== switch verdicts (t >= 10 s) ==\n");
  std::printf("%-14s %-10s %-10s %-10s %12s %10s\n", "flow to", "network",
              "endpoint", "unknown", "mean_Mbps", "cv");
  for (const auto& [label, counts] : verdicts) {
    auto get = [&](const char* k) {
      auto it = counts.find(k);
      return it == counts.end() ? 0 : it->second;
    };
    std::printf("%-14s %-10d %-10d %-10d %12.1f %10.3f\n", label.c_str(),
                get("network"), get("endpoint"), get("unknown"),
                rates[label].mean(), rates[label].cv());
  }
  std::printf("\nexpected: flow to 10.1.0.10 predominantly 'network' with "
              "high throughput variability;\n"
              "flows to 10.2.0.10 / 10.3.0.10 predominantly 'endpoint' "
              "with steady throughput\n"
              "(paper: 250 Mbps and 500 Mbps steady at 10 Gbps scale -> "
              "here ~%.1f and ~%.1f Mbps)\n",
              static_cast<double>(bps) / 40e6,
              static_cast<double>(bps) / 20e6);
  return bench::write_experiment_json("fig12_limitation", system,
                                      wall.elapsed_s());
}
