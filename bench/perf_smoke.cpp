// perf_smoke — the CI perf gate.
//
// Runs trimmed-down versions of the hot-path measurements (event
// scheduling, RTO cancel churn, TAP->parser->program packet cost) in a
// couple of seconds, writes BENCH_perf_smoke.json, and fails only if the
// JSON cannot be produced or re-parsed — absolute numbers are
// machine-dependent and are archived, not asserted.
//
// It also serves as the schema gate for the other benches' output:
//
//   perf_smoke --validate BENCH_a.json BENCH_b.json ...
//
// exits non-zero if any file is missing, malformed, or off-schema.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "bench_json.hpp"
#include "p4/p4_switch.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"

using namespace p4s;

namespace {

net::Packet sample_packet(std::uint32_t seq) {
  return net::make_tcp_packet(net::ipv4(10, 0, 0, 10),
                              net::ipv4(10, 1, 0, 10), 40000, 5201, seq, 0,
                              net::tcpflags::kAck, 1460, 1 << 20);
}

double events_per_sec(sim::EventQueue& q) {
  constexpr int kEvents = 1'000'000;
  bench::WallTimer timer;
  for (int i = 0; i < kEvents; ++i) {
    q.schedule_in(1, []() {});
    q.step();
  }
  return kEvents / timer.elapsed_s();
}

double rto_churn_per_sec(sim::EventQueue& q) {
  constexpr int kOps = 500'000;
  bench::WallTimer timer;
  sim::EventHandle rto;
  for (int i = 0; i < kOps; ++i) {
    rto.cancel();
    rto = q.schedule_in(100, []() {});
    if (i % 64 == 63) q.step();
  }
  q.run();
  return kOps / timer.elapsed_s();
}

double mirrored_pkts_per_sec(sim::Simulation& sim) {
  constexpr int kPairs = 100'000;
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "smoke");
  p4sw.load_program(program);
  std::uint32_t seq = 1;
  for (int i = 0; i < 100; ++i) {
    p4sw.on_mirrored(sample_packet(seq), net::MirrorPoint::kIngress);
    seq += 1460;
  }
  bench::WallTimer timer;
  for (int i = 0; i < kPairs; ++i) {
    net::Packet pkt = sample_packet(seq);
    seq += 1460;
    p4sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
    p4sw.on_mirrored(pkt, net::MirrorPoint::kEgress);
  }
  return 2.0 * kPairs / timer.elapsed_s();
}

// Bench-specific schema contracts layered over the generic p4s-bench-v1
// shape. fabric_scaling must carry its headline wall/throughput keys —
// downstream tooling plots them by name, so a silent rename is a gate
// failure, not a soft drift.
bool validate_bench_contract(const std::string& file) {
  std::ifstream in(file);
  if (!in) return false;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    const util::Json doc = util::Json::parse(text);
    const std::string& name = doc.at("name").as_string();
    const auto require_positive = [&](const char* key) {
      const auto& metrics = doc.at("metrics").as_object();
      const auto it = metrics.find(key);
      if (it == metrics.end() || !it->second.is_number() ||
          it->second.as_double() <= 0.0) {
        std::fprintf(stderr,
                     "perf_smoke --validate: %s: %s requires positive "
                     "metric '%s'\n",
                     file.c_str(), name.c_str(), key);
        return false;
      }
      return true;
    };
    if (name == "fabric_scaling") {
      for (const char* key :
           {"wall_seconds", "copies_per_switch_per_sec"}) {
        if (!require_positive(key)) return false;
      }
    } else if (name == "sketch_scale") {
      // The headline keys of each part: fidelity sample count, the
      // 100k-flow tier throughputs (present in quick and full runs), and
      // the pipeline match rate. The rel-err *bounds* are enforced by the
      // bench's own exit code; here we gate on the schema.
      for (const char* key :
           {"fidelity_samples", "fidelity_adds_per_sec",
            "registers_100k_events_per_sec", "cuckoo_100k_events_per_sec",
            "cuckoo_100k_tracked", "pipeline_pairs",
            "pipeline_copies_per_sec"}) {
        if (!require_positive(key)) return false;
      }
    } else if (name == "program_vm") {
      // The interpreter-overhead headline: both throughputs and the
      // ratio. The overhead *budget* is enforced by the bench's own
      // exit code; here we gate on the schema.
      for (const char* key :
           {"events", "handwritten_events_per_sec",
            "interpreted_events_per_sec", "overhead_ratio"}) {
        if (!require_positive(key)) return false;
      }
    }
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "perf_smoke --validate: %s: %s\n", file.c_str(),
                 e.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--validate") == 0) {
    bool ok = argc > 2;
    if (!ok) std::fprintf(stderr, "perf_smoke --validate: no files given\n");
    for (int i = 2; i < argc; ++i) {
      if (bench::BenchReport::validate_file(argv[i]) &&
          validate_bench_contract(argv[i])) {
        std::printf("ok: %s\n", argv[i]);
      } else {
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }

  bench::WallTimer wall;
  sim::EventQueue q;
  const double events = events_per_sec(q);
  const double churn = rto_churn_per_sec(q);
  sim::Simulation sim(1);
  const double pkts = mirrored_pkts_per_sec(sim);

  bench::BenchReport report("perf_smoke");
  report.wall_time_s(wall.elapsed_s());
  report.metric("events_per_sec", events);
  report.metric("rto_churn_ops_per_sec", churn);
  report.metric("mirrored_pkts_per_sec", pkts);
  report.metric("peak_heap_events",
                static_cast<std::uint64_t>(q.peak_pending_events()));
  report.meta("seed", util::Json(1));
  std::printf("perf smoke: %.3gM events/s, %.3gM rto-churn ops/s, "
              "%.3gM mirrored pkts/s\n",
              events / 1e6, churn / 1e6, pkts / 1e6);
  return report.write() ? 0 : 1;
}
