// store_ingest — durable-archive throughput and pruning payoff.
//
// Measures, at 100k documents:
//   1. ingest rate through the Store (WAL append + threshold sealing),
//   2. time-window query latency on the segmented StoreBackend (which
//      prunes disjoint segments from the manifest) vs. the in-memory
//      MemoryBackend full scan — the pruned path must win,
//   3. the columnar aggregation fast path vs. the generic per-document
//      fold.
//
// Writes BENCH_store_ingest.json (p4s-bench-v1); absolute numbers are
// machine-dependent and archived, not asserted — but the prune speedup
// ratios are machine-independent enough that CI sanity-checks them > 1.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "bench_json.hpp"
#include "psonar/archiver.hpp"
#include "psonar/store_backend.hpp"
#include "store/store.hpp"

using namespace p4s;

namespace {

constexpr int kDocs = 100'000;
constexpr std::int64_t kSpacingNs = 500'000'000;  // 2 docs per second

util::Json make_doc(int i) {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = static_cast<std::int64_t>(i) * kSpacingNs;
  doc["throughput_bps"] = static_cast<std::int64_t>(900'000 + (i * 37) % 200'000);
  doc["bytes"] = static_cast<std::int64_t>(1460) * ((i % 64) + 1);
  doc["switch_id"] = (i % 3 == 0) ? "s0" : (i % 3 == 1) ? "s1" : "s2";
  doc["report"] = "throughput";
  return doc;
}

/// Last 2% of the time axis — the dashboard's "recent window" query.
/// Wide enough to reach past the memtable into the newest sealed
/// segment, so the pruned path decodes one segment and skips the rest.
ps::Archiver::Query recent_window() {
  ps::Archiver::Query query;
  query.range_field = "ts_ns";
  query.range_min = static_cast<double>(
      static_cast<std::int64_t>(kDocs) * kSpacingNs * 98 / 100);
  return query;
}

double query_docs_per_sec(const ps::Archiver& archiver, int rounds,
                          std::uint64_t* matched_out) {
  const auto query = recent_window();
  std::uint64_t matched = 0;
  bench::WallTimer timer;
  for (int r = 0; r < rounds; ++r) {
    archiver.for_each("tput", query, [&](const util::Json&) {
      ++matched;
      return true;
    });
  }
  const double elapsed = timer.elapsed_s();
  *matched_out = matched / static_cast<std::uint64_t>(rounds);
  return matched / elapsed;
}

double aggregate_per_sec(const ps::Archiver& archiver, int rounds) {
  const auto query = recent_window();
  bench::WallTimer timer;
  double sink = 0;
  for (int r = 0; r < rounds; ++r) {
    sink += archiver.aggregate("tput", "throughput_bps", query).sum;
  }
  (void)sink;
  return rounds / timer.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int docs = quick ? kDocs / 10 : kDocs;
  const int rounds = quick ? 5 : 20;

  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/p4s_bench_store";
  std::filesystem::remove_all(dir);

  // --- ingest through the durable store (WAL + threshold sealing) ------
  store::StoreConfig config;
  config.seal_min_docs = 4096;
  config.compact_fanin = 0;  // keep many segments: that's what pruning eats
  auto store = std::make_unique<store::Store>(dir, config);
  ps::Archiver durable(std::make_unique<ps::StoreBackend>(*store));
  ps::Archiver memory;  // the full-scan reference

  bench::WallTimer total;
  bench::WallTimer timer;
  for (int i = 0; i < docs; ++i) {
    durable.index("tput", make_doc(i));
    if ((i + 1) % static_cast<int>(config.seal_min_docs) == 0) {
      store->maintain();
    }
  }
  store->flush();
  store->maintain();
  const double ingest_docs_per_sec = docs / timer.elapsed_s();

  timer.restart();
  for (int i = 0; i < docs; ++i) memory.index("tput", make_doc(i));
  const double memory_ingest_docs_per_sec = docs / timer.elapsed_s();

  // --- recent-window query: pruned segments vs full scan ---------------
  std::uint64_t matched_pruned = 0;
  std::uint64_t matched_full = 0;
  const auto stats_before = store->stats();
  const double pruned_docs_per_sec =
      query_docs_per_sec(durable, rounds, &matched_pruned);
  const auto stats_after = store->stats();
  const double full_scan_docs_per_sec =
      query_docs_per_sec(memory, rounds, &matched_full);
  if (matched_pruned != matched_full) {
    std::fprintf(stderr, "store_ingest: backends disagree (%llu vs %llu)\n",
                 static_cast<unsigned long long>(matched_pruned),
                 static_cast<unsigned long long>(matched_full));
    return 1;
  }

  // --- aggregation: columnar fast path vs generic fold -----------------
  const double columnar_aggs_per_sec = aggregate_per_sec(durable, rounds);
  const double generic_aggs_per_sec = aggregate_per_sec(memory, rounds);

  const std::uint64_t pruned = stats_after.segments_pruned_range -
                               stats_before.segments_pruned_range;
  const std::uint64_t considered = stats_after.segments_considered -
                                   stats_before.segments_considered;

  bench::BenchReport report("store_ingest");
  report.wall_time_s(total.elapsed_s())
      .metric("ingest_docs_per_sec", ingest_docs_per_sec)
      .metric("memory_ingest_docs_per_sec", memory_ingest_docs_per_sec)
      .metric("pruned_query_docs_per_sec", pruned_docs_per_sec)
      .metric("full_scan_query_docs_per_sec", full_scan_docs_per_sec)
      .metric("query_speedup",
              pruned_docs_per_sec / full_scan_docs_per_sec)
      .metric("columnar_aggs_per_sec", columnar_aggs_per_sec)
      .metric("generic_aggs_per_sec", generic_aggs_per_sec)
      .metric("agg_speedup", columnar_aggs_per_sec / generic_aggs_per_sec)
      .metric("segments_total", store->segment_count("tput"))
      .metric("segments_pruned_per_query",
              static_cast<double>(pruned) / rounds)
      .metric("segments_considered_per_query",
              static_cast<double>(considered) / rounds)
      .metric("window_matches", matched_pruned)
      .meta("docs", util::Json(static_cast<std::int64_t>(docs)))
      .meta("rounds", util::Json(static_cast<std::int64_t>(rounds)))
      .meta("seal_min_docs",
            util::Json(static_cast<std::int64_t>(config.seal_min_docs)))
      .meta("quick", util::Json(quick));

  std::printf("store_ingest: %d docs\n", docs);
  std::printf("  ingest          %12.0f docs/s (memory %12.0f docs/s)\n",
              ingest_docs_per_sec, memory_ingest_docs_per_sec);
  std::printf("  window query    %12.0f docs/s pruned  vs %12.0f docs/s "
              "full scan  (%.1fx)\n",
              pruned_docs_per_sec, full_scan_docs_per_sec,
              pruned_docs_per_sec / full_scan_docs_per_sec);
  std::printf("  aggregation     %12.0f aggs/s columnar vs %12.0f aggs/s "
              "generic   (%.1fx)\n",
              columnar_aggs_per_sec, generic_aggs_per_sec,
              columnar_aggs_per_sec / generic_aggs_per_sec);
  std::printf("  segments: %llu total, %.1f pruned per query\n",
              static_cast<unsigned long long>(store->segment_count("tput")),
              static_cast<double>(pruned) / rounds);

  const bool ok = report.write();
  // The payoff claim itself (pruned beats full scan at 100k docs) is the
  // one machine-independent assertion this bench makes.
  if (ok && !quick && pruned_docs_per_sec <= full_scan_docs_per_sec) {
    std::fprintf(stderr,
                 "store_ingest: pruned query did NOT beat the full scan\n");
    return 1;
  }
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
