// Max-speed replay of the committed golden trace (tests/data/fig9.*):
// how fast the P4 switch + telemetry program + control plane chew
// through real captured wire bytes when the pacing is removed. This is
// the trace subsystem's throughput number — the simulator's ceiling for
// pcap-driven workloads — written to BENCH_trace_replay.json.
//
//   trace_replay [trace_base]
//
// trace_base defaults to the committed golden capture; pass a different
// base (expects <base>.ingress.pcap / <base>.egress.pcap) to measure an
// arbitrary capture.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "core/monitoring_system.hpp"
#include "trace/trace_replayer.hpp"

using namespace p4s;

namespace {

// Same scenario the golden trace was captured under (see
// tests/trace_golden_test.cpp): the replay control plane gets the
// topology-derived configuration from a live system instance.
cp::ControlPlaneConfig golden_control_config() {
  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = units::mbps(2);
  config.seed = 1;
  core::MonitoringSystem reference(config);
  reference.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 2");
  return reference.control_plane().config();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string base =
      argc > 1 ? argv[1] : std::string(P4S_TRACE_DATA_DIR) + "/fig9";

  auto trace = trace::TraceReplayer::from_files(
      trace::TraceCapture::port_path(base, net::MirrorPoint::kIngress),
      trace::TraceCapture::port_path(base, net::MirrorPoint::kEgress));
  const auto stats = trace.analyze();
  if (stats.frames == 0) {
    std::fprintf(stderr, "trace_replay: %s: empty trace\n", base.c_str());
    return 1;
  }

  trace::ReplayPipeline::Config config;
  config.control = golden_control_config();
  config.seed = 1;

  bench::WallTimer wall;
  // Repeat through fresh pipelines until enough wall time accumulates
  // for a stable rate; only the replay loop itself is timed.
  std::uint64_t frames = 0;
  std::uint64_t reports = 0;
  std::uint64_t parse_errors = 0;
  int reps = 0;
  double replay_s = 0.0;
  while (reps < 3 || replay_s < 0.5) {
    trace::ReplayPipeline pipeline(config);
    pipeline.control_plane().start();
    bench::WallTimer timer;
    trace.replay_now(pipeline.simulation(), pipeline.p4_switch());
    replay_s += timer.elapsed_s();
    frames += pipeline.p4_switch().processed_pkts();
    parse_errors += pipeline.p4_switch().parse_errors();
    reports += pipeline.report_lines().size();
    ++reps;
  }
  const double frames_per_sec = static_cast<double>(frames) / replay_s;
  const double bytes_per_sec =
      static_cast<double>(stats.wire_bytes) * reps / replay_s;

  bench::BenchReport report("trace_replay");
  report.wall_time_s(wall.elapsed_s());
  report.metric("frames_per_sec", frames_per_sec);
  report.metric("wire_bytes_per_sec", bytes_per_sec);
  report.metric("trace_frames", stats.frames);
  report.metric("trace_wire_bytes", stats.wire_bytes);
  report.metric("replay_reps", static_cast<std::uint64_t>(reps));
  report.metric("parse_errors_total", parse_errors);
  report.metric("reports_per_rep",
                static_cast<std::uint64_t>(reports / reps));
  report.meta("trace_base", util::Json(base));
  report.meta("seed", util::Json(1));
  std::printf("trace replay: %llu frames x%d reps, %.3gM frames/s, "
              "%.3g MB/s wire\n",
              static_cast<unsigned long long>(stats.frames), reps,
              frames_per_sec / 1e6, bytes_per_sec / 1e6);
  return report.write() ? 0 : 1;
}
