// program_vm — interpreter overhead of the measurement-program VM.
//
// The shipped byte-counter program (examples/programs/byte_counter
// .mpl.json) is the interpreted port of the hand-written FlowCounters
// byte/packet pipeline; this bench drives both consumers over the same
// precomputed packet stream and reports events/s side by side:
//
//   handwritten_events_per_sec   FlowCounters::on_data
//   interpreted_events_per_sec   ProgramVm::on_tracked_data
//   overhead_ratio               handwritten / interpreted
//
// The FieldView for each event is prebuilt — the real pipeline computes
// it once per parsed copy for ALL engines, so its cost is not part of
// the interpreter's overhead. After the timed loops the bench checks
// the identity that the overhead claim rides on: the VM's register 0
// must equal the hand-written byte counter in every slot. A mismatch or
// an overhead above the budget (4x; the committed baseline sits well
// under 2x) is a non-zero exit, so the claim is CI-checked rather than
// a doc sentence.
//
// `--quick` (CI): trims the stream.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mpl/compiler.hpp"
#include "mpl/vm.hpp"
#include "p4/hash.hpp"
#include "p4/parser.hpp"
#include "telemetry/flow_counters.hpp"

using namespace p4s;

namespace {

constexpr double kOverheadBudget = 4.0;
constexpr std::uint16_t kFlows = 64;

mpl::Program load_byte_counter() {
  const std::string file =
      std::string(P4S_EXAMPLES_DIR) + "/programs/byte_counter.mpl.json";
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "program_vm: cannot read %s\n", file.c_str());
    std::exit(1);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return mpl::compile_program_text(text.str(), file);
}

// One tracked flow's parsed copy; contexts live in a stable vector so
// the prebuilt FieldViews can reference them across the timed loops.
struct Event {
  p4::PacketContext ctx;
  p4::FlowKey fk;
  std::uint16_t slot;
};

std::vector<Event> make_events(std::size_t n) {
  std::vector<Event> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event& e = events[i];
    e.slot = static_cast<std::uint16_t>(i % kFlows);
    net::FiveTuple t;
    t.src_ip = net::ipv4(10, 0, 0, static_cast<std::uint8_t>(e.slot));
    t.dst_ip = net::ipv4(10, 1, 0, 10);
    t.src_port = static_cast<std::uint16_t>(40000 + e.slot);
    t.dst_port = 5201;
    t.protocol = 6;
    e.fk = p4::FlowKey::from(t);
    e.ctx.hdr.ipv4_valid = true;
    e.ctx.hdr.ipv4.total_len =
        static_cast<std::uint16_t>(64 + (i * 37) % 1437);
    e.ctx.hdr.ipv4.protocol = 6;
    e.ctx.hdr.ipv4.src = t.src_ip;
    e.ctx.hdr.ipv4.dst = t.dst_ip;
    e.ctx.hdr.tcp_valid = true;
    e.ctx.hdr.tcp.src_port = t.src_port;
    e.ctx.hdr.tcp.dst_port = t.dst_port;
    e.ctx.meta.ingress_ts = static_cast<SimTime>(1000 * i);
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t n = quick ? 200'000 : 2'000'000;
  bench::WallTimer wall;
  bench::BenchReport report("program_vm");

  const std::vector<Event> events = make_events(n);
  std::vector<telemetry::FieldView> views;
  views.reserve(n);
  for (const Event& e : events) {
    views.emplace_back(e.ctx, e.fk, /*egress_copy=*/false);
  }

  // Hand-written pipeline: the byte/packet counters' data-path update.
  telemetry::FlowCounters counters;
  bench::WallTimer timer;
  for (std::size_t i = 0; i < n; ++i) {
    counters.on_data(events[i].slot, events[i].ctx.hdr.ipv4.total_len,
                     events[i].ctx.meta.ingress_ts);
  }
  const double handwritten = static_cast<double>(n) / timer.elapsed_s();

  // Interpreted port: the same stream through the VM's tracked-data hook.
  mpl::ProgramVm vm;
  vm.install(load_byte_counter());
  timer.restart();
  for (std::size_t i = 0; i < n; ++i) {
    vm.on_tracked_data(events[i].slot, views[i]);
  }
  const double interpreted = static_cast<double>(n) / timer.elapsed_s();
  const double overhead = handwritten / interpreted;

  std::printf("events: %zu over %u flows\n", n, kFlows);
  std::printf("handwritten: %.3gM events/s\n", handwritten / 1e6);
  std::printf("interpreted: %.3gM events/s\n", interpreted / 1e6);
  std::printf("overhead: %.2fx\n", overhead);

  // The identity the overhead claim rides on: same bytes in every slot.
  bool ok = true;
  for (std::uint16_t slot = 0; slot < kFlows; ++slot) {
    const std::uint64_t expected = counters.bytes(slot);
    const std::uint64_t actual = vm.reg("byte_counter", 0, slot);
    if (expected != actual) {
      std::fprintf(stderr,
                   "program_vm: slot %u bytes diverge (handwritten %llu, "
                   "interpreted %llu)\n",
                   slot, static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(actual));
      ok = false;
    }
  }
  if (overhead > kOverheadBudget) {
    std::fprintf(stderr, "program_vm: overhead %.2fx exceeds budget %.1fx\n",
                 overhead, kOverheadBudget);
    ok = false;
  }

  report.metric("events", static_cast<std::uint64_t>(n));
  report.metric("handwritten_events_per_sec", handwritten);
  report.metric("interpreted_events_per_sec", interpreted);
  report.metric("overhead_ratio", overhead);
  report.wall_time_s(wall.elapsed_s());
  report.meta("quick", util::Json(quick));
  report.meta("flows", util::Json(static_cast<std::int64_t>(kFlows)));
  report.meta("program", util::Json("byte_counter"));
  if (!report.write()) return 1;
  return ok ? 0 : 1;
}
