// Figure 14 / §5.4.3 reproduction: recovery speed of three blockage
// detectors that steer traffic to a backup path —
//  * P4-based: the data plane's IAT monitor raises a digest; the control
//    plane reroutes immediately;
//  * throughput-based: an SDN-style controller polls flow throughput once
//    per second and reroutes after observing degradation;
//  * RSSI-based: an off-the-shelf radio watches its received signal
//    strength, debounces, and re-associates before traffic moves.
//
// Paper shape: the gray 2 s blockage; the P4-based system reacts before
// throughput visibly degrades and outperforms both baselines.
#include <cstdio>
#include <deque>
#include <vector>

#include "bench_common.hpp"
#include "controlplane/control_plane.hpp"
#include "net/impairment.hpp"
#include "net/topology.hpp"
#include "p4/p4_switch.hpp"
#include "tcp/flow.hpp"
#include "telemetry/dataplane_program.hpp"

using namespace p4s;
using units::milliseconds;
using units::seconds;

namespace {

constexpr double kBlockStart = 5.0;
constexpr double kBlockDur = 2.0;

struct RunResult {
  std::vector<std::pair<double, double>> goodput;  // (t_s, Mbps per 100ms)
  double detect_t = -1.0;   // when the detector fired (s)
  double recover_t = -1.0;  // goodput back >= 80% of baseline (s)
};

enum class Detector { kP4, kThroughput, kRssi };

const char* name(Detector d) {
  switch (d) {
    case Detector::kP4: return "P4-based (IAT in the data plane)";
    case Detector::kThroughput: return "throughput-based (1 s polling)";
    case Detector::kRssi: return "RSSI-based (off-the-shelf radio)";
  }
  return "?";
}

RunResult run(Detector detector) {
  sim::Simulation sim(14);
  net::Network network(sim);
  auto& host_a = network.add_host("sender", net::ipv4(10, 9, 0, 1));
  auto& host_b = network.add_host("receiver", net::ipv4(10, 9, 0, 2));
  auto& sw = network.add_switch("tor");

  const std::uint64_t mmwave_bps = units::mbps(200);
  net::Network::LinkSpec uplink{units::gbps(1), units::microseconds(5),
                                units::mebibytes(8), units::mebibytes(8)};
  network.connect(host_a, sw, uplink);
  net::Network::LinkSpec mmlink{mmwave_bps, units::microseconds(50),
                                units::mebibytes(8), units::mebibytes(8)};
  auto primary = network.connect(host_b, sw, mmlink);
  net::MmWaveLink mmwave(sim, *primary.reverse_link);
  mmwave.schedule_blockage(units::seconds_f(kBlockStart),
                           units::seconds_f(kBlockDur));

  // Backup wired path (switch -> receiver), initially unused.
  net::Link backup_link(sim, mmwave_bps, units::microseconds(100));
  backup_link.set_sink(host_b);
  net::OutputPort backup_port(sim, units::mebibytes(8), backup_link);
  const std::size_t backup_idx = sw.add_port(backup_port);

  bool rerouted = false;
  RunResult result;
  auto reroute = [&]() {
    if (rerouted) return;
    rerouted = true;
    result.detect_t = units::to_seconds(sim.now());
    sw.route(host_b.ip(), backup_idx);
  };

  // Passive P4 monitoring (present in every run; only the P4 detector
  // acts on it).
  telemetry::DataPlaneProgram program;
  p4::P4Switch p4sw(sim, "monitor");
  p4sw.load_program(program);
  net::OpticalTapPair taps(sim, p4sw);
  taps.attach(sw, *primary.reverse);
  cp::ControlPlaneConfig cp_config;
  cp_config.digest_poll_interval = milliseconds(5);
  cp::ControlPlane control(sim, program, cp_config);
  control.start();
  if (detector == Detector::kP4) {
    control.set_on_blockage(
        [&](const telemetry::BlockageDigest&) { reroute(); });
  }

  tcp::TcpFlow::Config flow_config;
  flow_config.sender.rate_limit_bps = units::mbps(100);
  tcp::TcpFlow flow(sim, host_a, host_b, flow_config);
  flow.start_at(milliseconds(100));

  // Goodput sampler (100 ms bins) + detector baselines.
  std::uint64_t last_goodput = 0;
  std::deque<double> recent_rates;
  bool recovered_logged = false;
  int rssi_low_count = 0;

  sim.every(milliseconds(100), milliseconds(100), [&]() {
    const double t = units::to_seconds(sim.now());
    const std::uint64_t bytes = flow.receiver().stats().goodput_bytes;
    const double mbps =
        static_cast<double>(bytes - last_goodput) * 8.0 / 0.1 / 1e6;
    last_goodput = bytes;
    result.goodput.emplace_back(t, mbps);

    // Rolling pre-blockage baseline.
    if (t < kBlockStart) {
      recent_rates.push_back(mbps);
      if (recent_rates.size() > 20) recent_rates.pop_front();
    }
    double baseline = 0.0;
    for (double r : recent_rates) baseline += r;
    if (!recent_rates.empty()) {
      baseline /= static_cast<double>(recent_rates.size());
    }

    // Throughput-based detector: 1 s polling cadence.
    if (detector == Detector::kThroughput &&
        result.goodput.size() % 10 == 0 && t > 2.0 && baseline > 1.0 &&
        mbps < 0.5 * baseline) {
      reroute();
    }

    // RSSI-based detector: 100 ms sampling, 5-sample debounce, then a
    // 1 s re-association before traffic actually moves.
    if (detector == Detector::kRssi && t > 1.0) {
      if (mmwave.rssi_dbm() < -65.0) {
        if (++rssi_low_count == 5) {
          sim.after(seconds(1), reroute);  // beam re-search + re-assoc
        }
      } else {
        rssi_low_count = 0;
      }
    }

    // Recovery detection.
    if (!recovered_logged && t > kBlockStart && baseline > 1.0 &&
        mbps >= 0.8 * baseline) {
      result.recover_t = t;
      recovered_logged = true;
    }
    return t < 12.0;
  });
  sim.run_until(units::seconds_f(12.5));
  return result;
}

}  // namespace

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Figure 14 — blockage reaction: P4 vs throughput vs RSSI",
      "§5.4.3, Fig. 14 (2 s blockage, gray rectangle)",
      "P4 reacts before throughput degrades; throughput-based next; "
      "RSSI-based slowest");

  RunResult results[3] = {run(Detector::kP4), run(Detector::kThroughput),
                          run(Detector::kRssi)};
  const Detector kinds[3] = {Detector::kP4, Detector::kThroughput,
                             Detector::kRssi};

  std::printf("\n== goodput (Mbps per 100 ms bin), blockage %0.1f-%0.1f s "
              "==\n%-7s %16s %18s %14s\n",
              kBlockStart, kBlockStart + kBlockDur, "t_s", "P4-based",
              "throughput-based", "RSSI-based");
  const std::size_t n = results[0].goodput.size();
  for (std::size_t i = 0; i < n; i += 2) {
    std::printf("%-7.1f", results[0].goodput[i].first);
    for (const auto& r : results) {
      std::printf("%16.1f",
                  i < r.goodput.size() ? r.goodput[i].second : 0.0);
    }
    std::printf("\n");
  }

  std::printf("\nshape summary (blockage at %.1f s):\n", kBlockStart);
  for (int i = 0; i < 3; ++i) {
    const auto& r = results[i];
    std::printf("  %-40s detect %+7.1f ms   goodput restored %+7.1f ms "
                "after blockage onset\n",
                name(kinds[i]),
                r.detect_t >= 0 ? (r.detect_t - kBlockStart) * 1e3 : -1.0,
                r.recover_t >= 0 ? (r.recover_t - kBlockStart) * 1e3 : -1.0);
  }
  std::printf("(paper: the P4-based system detects the blockage before "
              "throughput degrades and outperforms both baselines)\n");
  bench::BenchReport report("fig14_blockage_recovery");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
