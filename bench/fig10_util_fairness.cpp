// Figure 10 reproduction: additional traffic statistics computed by the
// control plane — total link utilization and Jain's fairness index over
// the same interval as Figure 9 (§5.3).
//
// Paper shape to reproduce: the link stays fully utilized throughout,
// while the fairness index departs from ~1 for roughly 20 seconds after
// the third flow joins (the TCP convergence window), then returns to ~1.
#include <cstdio>

#include "bench_common.hpp"

using namespace p4s;
using units::seconds;

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Figure 10 — link utilization and Jain's fairness index",
      "§5.3, Fig. 10 + eq. (1)",
      "utilization ~1 throughout; fairness dips at the join for ~20 s");

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
  config.topology.core_buffer_bytes = units::bdp_bytes(
      config.topology.bottleneck_bps, units::milliseconds(50));
  config.seed = bench::experiment_seed();
  core::MonitoringSystem system(config);
  system.start();
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");

  auto& flow1 = system.add_transfer(0);
  auto& flow2 = system.add_transfer(1);
  auto& flow3 = system.add_transfer(2);
  flow1.start_at(seconds(1));
  flow2.start_at(seconds(1));
  flow3.start_at(seconds(45));

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(90));
  system.run_until(seconds(90));

  std::printf("\n%-7s %16s %10s %13s %18s\n", "t_s", "utilization",
              "fairness", "active_flows", "total_Mbps");
  for (const auto& s : core::thin(recorder.samples(), 46)) {
    char fairness[16] = "-";  // undefined while the link is idle
    if (s.fairness.has_value()) {
      std::snprintf(fairness, sizeof fairness, "%.3f", *s.fairness);
    }
    std::printf("%-7.1f %16.3f %10s %13zu %18.1f\n", s.t_s,
                s.link_utilization, fairness, s.active_flows,
                s.total_throughput_mbps);
  }

  // Quantify the unfairness window after the join (paper: ~20 s):
  // recovery = fairness back to 95% of its own pre-join level.
  const double join_t = 45.0;
  double pre_join = 0.0;
  int pre_n = 0;
  double recover_t = -1.0;
  double min_fairness = 1.0;
  for (const auto& s : recorder.samples()) {
    if (s.fairness.has_value() && s.t_s > 35.0 && s.t_s < join_t) {
      pre_join += *s.fairness;
      ++pre_n;
    }
  }
  if (pre_n > 0) pre_join /= pre_n;
  for (const auto& s : recorder.samples()) {
    if (s.t_s <= join_t + 1.0 || !s.fairness.has_value()) continue;
    min_fairness = std::min(min_fairness, *s.fairness);
    if (recover_t < 0 && s.t_s > join_t + 3.0 &&
        *s.fairness >= 0.95 * pre_join) {
      recover_t = s.t_s;
    }
  }
  std::printf("\nshape summary:\n");
  std::printf("  pre-join fairness: %.3f; minimum after join: %.3f "
              "(paper: notable dip)\n", pre_join, min_fairness);
  if (recover_t > 0) {
    std::printf("  unfairness window: %.1f s (join at %.0f s, fairness "
                "back to 95%% of its pre-join level at %.1f s; paper: "
                "~20 s)\n",
                recover_t - join_t, join_t, recover_t);
  } else {
    std::printf("  fairness did not recover within the run\n");
  }
  return bench::write_experiment_json(
      "fig10_util_fairness", system, wall.elapsed_s(),
      {{"min_fairness_after_join", min_fairness}});
}
