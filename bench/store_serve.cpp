// store_serve — concurrent serving QPS and tail latency on the durable
// store.
//
// Preloads a segmented store, then for several reader-thread counts runs
// a mixed query load (recent-window search, term search, columnar
// aggregate, latest-value) through ps::StoreServer while a writer thread
// keeps ingesting and running maintenance (seal + tiered compaction) the
// whole time. Reports per-reader-count QPS and p50/p99 latency.
//
// Writes BENCH_store_serve.json (p4s-bench-v1); absolute numbers are
// machine-dependent and archived, not asserted. The machine-independent
// assertions are the correctness claims: every reader's term-query match
// count is non-decreasing over its run (snapshots move forward, never
// backward, under a single writer), and the store verifies clean after
// the concurrent run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "psonar/store_server.hpp"
#include "store/store.hpp"

using namespace p4s;

namespace {

constexpr int kPreloadDocs = 60'000;
constexpr std::int64_t kSpacingNs = 500'000'000;  // 2 docs per second

util::Json make_doc(int i) {
  util::Json doc = util::Json::object();
  doc["ts_ns"] = static_cast<std::int64_t>(i) * kSpacingNs;
  doc["throughput_bps"] =
      static_cast<std::int64_t>(900'000 + (i * 37) % 200'000);
  doc["bytes"] = static_cast<std::int64_t>(1460) * ((i % 64) + 1);
  doc["switch_id"] = (i % 3 == 0) ? "s0" : (i % 3 == 1) ? "s1" : "s2";
  doc["report"] = "throughput";
  return doc;
}

struct LoadResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t queries = 0;
  bool counts_monotonic = true;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[rank];
}

/// Run `readers` query threads against the server for `queries_per_reader`
/// queries each, while the caller's writer keeps ingesting.
LoadResult run_load(const ps::StoreServer& server, int readers,
                    int queries_per_reader, std::int64_t preload_span_ns) {
  std::mutex merge_mu;
  std::vector<double> latencies_ms;
  std::atomic<bool> monotonic{true};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  bench::WallTimer timer;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> local_ms;
      local_ms.reserve(static_cast<std::size_t>(queries_per_reader));
      std::uint64_t last_term_count = 0;
      for (int q = 0; q < queries_per_reader; ++q) {
        const auto start = std::chrono::steady_clock::now();
        switch ((q + t) % 4) {
          case 0: {  // recent-window search (range pruning)
            ps::ArchiverQuery query;
            query.range_field = "ts_ns";
            query.range_min = static_cast<double>(preload_span_ns) * 0.98;
            query.limit = 64;
            (void)server.search("tput", query);
            break;
          }
          case 1: {  // term search (posting lists); count must not shrink
            ps::ArchiverQuery query;
            query.terms["switch_id"] = util::Json("s0");
            const auto docs = server.search("tput", query);
            if (docs.size() < last_term_count) monotonic.store(false);
            last_term_count = docs.size();
            break;
          }
          case 2: {  // columnar aggregate over the whole series
            (void)server.aggregate("tput", "throughput_bps");
            break;
          }
          default: {  // the dashboards' latest-value probe
            (void)server.latest_value("tput", "throughput_bps");
            break;
          }
        }
        const auto elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        local_ms.push_back(elapsed);
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s = timer.elapsed_s();

  LoadResult result;
  result.queries = latencies_ms.size();
  result.qps = static_cast<double>(result.queries) / elapsed_s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  result.counts_monotonic = monotonic.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int preload = quick ? kPreloadDocs / 10 : kPreloadDocs;
  const int queries_per_reader = quick ? 40 : 150;

  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/p4s_bench_serve";
  std::filesystem::remove_all(dir);

  store::StoreConfig config;
  config.seal_min_docs = 2048;
  config.compact_fanin = 4;
  config.cache_bytes = 64u << 20;
  auto store = std::make_unique<store::Store>(dir, config);

  bench::WallTimer total;
  for (int i = 0; i < preload; ++i) {
    store->append("tput", make_doc(i));
    if ((i + 1) % static_cast<int>(config.seal_min_docs) == 0) {
      store->maintain();
    }
  }
  store->flush();
  store->maintain();
  const std::int64_t preload_span_ns =
      static_cast<std::int64_t>(preload) * kSpacingNs;

  ps::StoreServerConfig server_config;
  server_config.reader_threads = 0;  // load threads query synchronously
  const ps::StoreServer server(*store, server_config);

  // Writer thread: keeps ingesting + sealing/compacting while the load
  // phases run, so each reader count is measured against live churn.
  // Growth is capped at +50% of the preload — an unthrottled writer
  // would balloon the corpus across the multi-phase run and turn the
  // QPS series into a measurement of store size, not reader count.
  std::atomic<bool> stop_writer{false};
  std::atomic<std::uint64_t> written{0};
  const std::uint64_t write_cap = static_cast<std::uint64_t>(preload) / 2;
  std::thread writer([&] {
    int i = preload;
    while (!stop_writer.load()) {
      if (written.load() >= write_cap) {
        store->maintain();  // churn continues: seals + tier merges
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      store->append("tput", make_doc(i));
      written.fetch_add(1);
      if ((i + 1) % 512 == 0) store->maintain();
      ++i;
    }
  });
  bench::WallTimer writer_timer;

  const std::vector<int> reader_counts = {1, 2, 4, 8};
  std::vector<LoadResult> results;
  bool all_monotonic = true;
  for (const int readers : reader_counts) {
    const auto result =
        run_load(server, readers, queries_per_reader, preload_span_ns);
    all_monotonic = all_monotonic && result.counts_monotonic;
    results.push_back(result);
  }

  stop_writer.store(true);
  const double writer_elapsed_s = writer_timer.elapsed_s();
  writer.join();
  store->flush();
  store->seal_all();

  const auto stats = store->stats();
  const auto verify = store::Store::verify(dir);

  bench::BenchReport report("store_serve");
  report.wall_time_s(total.elapsed_s());
  for (std::size_t i = 0; i < reader_counts.size(); ++i) {
    const std::string suffix = std::to_string(reader_counts[i]);
    report.metric("qps_readers_" + suffix, results[i].qps)
        .metric("p50_ms_readers_" + suffix, results[i].p50_ms)
        .metric("p99_ms_readers_" + suffix, results[i].p99_ms);
  }
  report
      .metric("concurrent_ingest_docs_per_sec",
              static_cast<double>(written.load()) / writer_elapsed_s)
      .metric("docs_written_during_load", written.load())
      .metric("snapshots", stats.snapshots)
      .metric("cache_hits", stats.cache_hits)
      .metric("cache_misses", stats.cache_misses)
      .metric("segments_retired", stats.segments_retired)
      .metric("segments_gc_deleted", stats.segments_gc_deleted)
      .metric("postings_rows_seeked", stats.postings_rows_seeked)
      .meta("preload_docs", util::Json(static_cast<std::int64_t>(preload)))
      .meta("queries_per_reader",
            util::Json(static_cast<std::int64_t>(queries_per_reader)))
      .meta("reader_counts",
            util::Json(util::JsonArray{
                util::Json(static_cast<std::int64_t>(1)),
                util::Json(static_cast<std::int64_t>(2)),
                util::Json(static_cast<std::int64_t>(4)),
                util::Json(static_cast<std::int64_t>(8))}))
      .meta("quick", util::Json(quick));

  std::printf("store_serve: %d preloaded docs, %d queries/reader\n", preload,
              queries_per_reader);
  for (std::size_t i = 0; i < reader_counts.size(); ++i) {
    std::printf("  readers=%d  %10.0f qps   p50 %7.3f ms   p99 %7.3f ms\n",
                reader_counts[i], results[i].qps, results[i].p50_ms,
                results[i].p99_ms);
  }
  std::printf("  concurrent ingest: %.0f docs/s (%llu docs during load)\n",
              static_cast<double>(written.load()) / writer_elapsed_s,
              static_cast<unsigned long long>(written.load()));
  std::printf("  gc: %llu retired, %llu deleted; verify %s\n",
              static_cast<unsigned long long>(stats.segments_retired),
              static_cast<unsigned long long>(stats.segments_gc_deleted),
              verify.ok ? "OK" : "CORRUPT");

  const bool ok = report.write();
  if (!all_monotonic) {
    std::fprintf(stderr,
                 "store_serve: a reader saw its term matches shrink\n");
    return 1;
  }
  if (!verify.ok) {
    std::fprintf(stderr,
                 "store_serve: store is corrupt after concurrent load\n");
    return 1;
  }
  store.reset();
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
