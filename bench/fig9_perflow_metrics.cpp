// Figure 9 reproduction: per-flow measurements (throughput, RTT, queue
// occupancy, packet loss %) as a third data transfer joins two existing
// transfers (§5.2).
//
// Paper shape to reproduce:
//  * before the join, the two flows share the bottleneck at approximate
//    parity;
//  * when the third flow joins, its slow-start burst fills the queue
//    (sudden surge in the queue-occupancy graph) and causes a packet-loss
//    spike;
//  * RTTs track queue occupancy; throughputs re-converge afterwards.
#include <cstdio>
#include <map>

#include "util/stats.hpp"

#include <fstream>

#include "bench_common.hpp"
#include "core/svg_chart.hpp"

using namespace p4s;
using units::seconds;

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Figure 9 — per-flow measurements, third flow joining",
      "§5.2, Fig. 9: throughput / RTT / queue occupancy / loss% per flow",
      "join burst -> queue surge + loss spike; convergence toward parity");

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
  config.topology.core_buffer_bytes = units::bdp_bytes(
      config.topology.bottleneck_bps, units::milliseconds(50));
  config.seed = bench::experiment_seed();
  core::MonitoringSystem system(config);
  system.start();

  // 1 s reporting interval (§5.1), all four metrics.
  for (const char* cmd : {
           "psconfig config-P4 --samples_per_second 1",
       }) {
    system.psonar().psconfig().execute(cmd);
  }

  auto& flow1 = system.add_transfer(0);  // 50 ms RTT
  auto& flow2 = system.add_transfer(1);  // 75 ms RTT
  auto& flow3 = system.add_transfer(2);  // 100 ms RTT
  flow1.start_at(seconds(1));
  flow2.start_at(seconds(1));
  flow3.start_at(seconds(45));  // the joining transfer

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(90));
  system.run_until(seconds(90));

  bench::print_metric(recorder, "per-flow throughput (Fig. 9 top-left)",
                      &core::FlowSample::throughput_mbps, "Mbps");
  bench::print_metric(recorder, "per-flow RTT (Fig. 9 bottom-left)",
                      &core::FlowSample::rtt_ms, "ms");
  bench::print_metric(recorder,
                      "queue occupancy (Fig. 9 top-right)",
                      &core::FlowSample::queue_occupancy_pct, "%");
  bench::print_metric(recorder, "per-flow packet losses (Fig. 9 "
                      "bottom-right)",
                      &core::FlowSample::loss_pct, "% of pkts in interval");

  // Shape assertions (reported, not enforced): parity before the join
  // (ratio of per-flow MEAN throughputs over the pre-join window), loss
  // spike at the join.
  std::map<std::string, util::RunningStats> pre_join;
  double join_loss_peak = 0.0;
  for (const auto& s : recorder.samples()) {
    if (s.t_s > 35.0 && s.t_s < 45.0) {
      for (const auto& f : s.flows) {
        pre_join[f.label].add(f.throughput_mbps);
      }
    }
    if (s.t_s > 45.0 && s.t_s < 51.0) {
      for (const auto& f : s.flows) {
        join_loss_peak = std::max(join_loss_peak, f.loss_pct);
      }
    }
  }
  double mean_hi = 0.0, mean_lo = 1e18;
  for (const auto& [label, stats] : pre_join) {
    mean_hi = std::max(mean_hi, stats.mean());
    mean_lo = std::min(mean_lo, stats.mean());
  }
  std::ofstream svg("fig9_panels.svg");
  core::write_fig9_panels(recorder, svg);
  std::printf("\nfour panels rendered to fig9_panels.svg\n");

  std::printf("\nshape summary:\n");
  std::printf("  pre-join mean-throughput ratio between the two flows: "
              "%.2f (paper: ~parity)\n",
              mean_lo > 0 ? mean_hi / mean_lo : 0.0);
  std::printf("  loss%% peak within 6 s of the join: %.3f%% "
              "(paper: visible spike)\n", join_loss_peak);
  return bench::write_experiment_json(
      "fig9_perflow_metrics", system, wall.elapsed_s(),
      {{"join_loss_peak_pct", join_loss_peak}});
}
