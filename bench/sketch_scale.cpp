// sketch_scale — fidelity and throughput of the sketch subsystem.
//
// Part A (fidelity): a seeded lognormal latency stream through the
// fixed-bin Histogram and the DDSketch, p50/p95/p99 against the exact
// (nth_element) quantiles. The sketch's relative error must stay within
// its configured alpha — the bench exits non-zero if the bound is
// violated, making the accuracy claim a CI-checkable fact rather than a
// doc sentence.
//
// Part B (flow-table scale): 10k / 100k / 1M concurrent flows offered
// to the FlowTracker in registers mode vs cuckoo mode — promotion
// events/s, tracked flows, rejections, evictions. This is the
// "100k-1M concurrent flows" headline: the direct-indexed table strands
// slots behind hash collisions, the cuckoo table fills the full
// register space at the same event rate.
//
// Part C (pipeline fidelity): TAP-pair copies with seeded queueing
// delays through the full DataPlaneProgram; the switch-wide queue-delay
// histogram's quantiles against the exact ground truth of the injected
// delays.
//
// `--quick` (CI): trims the streams and omits the 1M-flow tier.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "p4/p4_switch.hpp"
#include "sim/simulation.hpp"
#include "sketch/ddsketch.hpp"
#include "sketch/histogram.hpp"
#include "telemetry/dataplane_program.hpp"
#include "telemetry/flow_tracker.hpp"

using namespace p4s;

namespace {

constexpr double kAlpha = 0.01;  // DDSketch relative-accuracy target

double exact_quantile(std::vector<double>& values, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

double rel_err(double approx, double exact) {
  return exact == 0.0 ? std::abs(approx) : std::abs(approx - exact) / exact;
}

// ---- Part A: sketch fidelity on a seeded latency stream ---------------

bool fidelity(bench::BenchReport& report, std::size_t samples) {
  sketch::HistogramConfig hc;
  hc.scale = sketch::HistogramConfig::Scale::kLog;
  hc.min = 1e3;  // 1 us
  hc.max = 1e9;  // 1 s
  hc.bins = 128;
  sketch::Histogram hist(hc);
  sketch::DdSketch sk(sketch::DdSketchConfig{kAlpha, 2048, 1.0});

  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(std::log(5e6), 1.2);
  std::vector<double> exact;
  exact.reserve(samples);
  bench::WallTimer timer;
  for (std::size_t i = 0; i < samples; ++i) {
    const double v = dist(rng);
    hist.add(v);
    sk.add(v);
    exact.push_back(v);
  }
  const double add_per_sec =
      2.0 * static_cast<double>(samples) / timer.elapsed_s();

  bool ok = true;
  for (const auto& [label, q] :
       {std::pair<const char*, double>{"p50", 0.50},
        std::pair<const char*, double>{"p95", 0.95},
        std::pair<const char*, double>{"p99", 0.99}}) {
    const double truth = exact_quantile(exact, q);
    const double sk_err = rel_err(sk.quantile(q), truth);
    const double hist_err = rel_err(hist.quantile(q), truth);
    report.metric(std::string("fidelity_") + label + "_rel_err", sk_err);
    report.metric(std::string("fidelity_hist_") + label + "_rel_err",
                  hist_err);
    std::printf("fidelity %s: exact %.4g ns, sketch err %.4f%%, "
                "histogram err %.2f%%\n",
                label, truth, sk_err * 100.0, hist_err * 100.0);
    // The DDSketch accuracy contract (alpha plus bucket-rounding slack).
    if (sk_err > kAlpha * 1.10) {
      std::fprintf(stderr,
                   "sketch_scale: %s rel err %.4f exceeds alpha %.4f\n",
                   label, sk_err, kAlpha);
      ok = false;
    }
  }
  report.metric("fidelity_samples", static_cast<std::uint64_t>(samples));
  report.metric("fidelity_adds_per_sec", add_per_sec);
  report.metric("fidelity_sketch_buckets",
                static_cast<std::uint64_t>(sk.bucket_count()));
  return ok;
}

// ---- Part B: flow-table scale -----------------------------------------

net::FiveTuple tuple_of(std::uint32_t i) {
  return net::FiveTuple{
      net::ipv4(10, static_cast<std::uint8_t>(i >> 16),
                static_cast<std::uint8_t>(i >> 8),
                static_cast<std::uint8_t>(i)),
      net::ipv4(10, 1, 0, 10), static_cast<std::uint16_t>(40000 + (i % 1000)),
      5201, 6};
}

void flow_table_tier(bench::BenchReport& report, const std::string& label,
                     const std::vector<net::FiveTuple>& tuples,
                     telemetry::FlowTableKind kind) {
  telemetry::FlowTracker::Config config;
  config.promotion_bytes = 1;  // promotion pressure on every new flow
  config.flow_table = kind;
  telemetry::FlowTracker tracker(config);

  const char* mode = telemetry::to_string(kind);
  SimTime now = units::seconds(1);
  bench::WallTimer timer;
  // Two passes: insert pressure over every flow, then steady-state
  // lookups revisiting each one.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& tuple : tuples) {
      now += 1000;  // 1 us between events
      tracker.on_data_packet(tuple, 1460, now);
    }
  }
  const double elapsed = timer.elapsed_s();
  const double events = 2.0 * static_cast<double>(tuples.size());
  const std::string prefix = std::string(mode) + "_" + label + "_";
  const std::uint64_t rejected = tracker.slot_collisions() +
                                 tracker.slot_exhausted() +
                                 tracker.insert_failures();
  report.metric(prefix + "events_per_sec", events / elapsed);
  report.metric(prefix + "tracked",
                static_cast<std::uint64_t>(tracker.active_flows()));
  report.metric(prefix + "rejected", rejected);
  report.metric(prefix + "evictions", tracker.evictions());
  std::printf("%s @ %s flows: %.3gM events/s, tracked %zu, rejected "
              "%llu, evictions %llu\n",
              mode, label.c_str(), events / elapsed / 1e6,
              tracker.active_flows(),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(tracker.evictions()));
}

// ---- Part C: pipeline queue-delay fidelity ----------------------------

bool pipeline_fidelity(bench::BenchReport& report, std::size_t pairs) {
  telemetry::DataPlaneProgram::Config config;
  telemetry::HistogramEngineConfig hc;
  hc.metric = telemetry::HistogramEngineConfig::Metric::kQueueDelay;
  hc.sketch_alpha = kAlpha;
  config.histograms.push_back(hc);
  telemetry::DataPlaneProgram program(config);
  sim::Simulation sim;
  p4::P4Switch sw(sim, "bench");
  sw.load_program(program);

  std::mt19937_64 rng(13);
  std::lognormal_distribution<double> delay_dist(std::log(50e3), 0.8);
  std::vector<double> exact;
  exact.reserve(pairs);
  bench::WallTimer timer;
  SimTime t = units::milliseconds(1);
  std::uint16_t ip_id = 1;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto delay =
        static_cast<SimTime>(std::max(1.0, delay_dist(rng)));
    exact.push_back(static_cast<double>(delay));
    net::Packet pkt = net::make_tcp_packet(
        net::ipv4(10, 0, static_cast<std::uint8_t>(i >> 8),
                  static_cast<std::uint8_t>(i)),
        net::ipv4(10, 1, 0, 10), 40000, 5201,
        static_cast<std::uint32_t>(1000 + i), 0, net::tcpflags::kAck, 512,
        1 << 16);
    pkt.ip.id = ip_id++;
    sim.at(t, [&sw, pkt]() { sw.on_mirrored(pkt, net::MirrorPoint::kIngress); });
    sim.at(t + delay,
           [&sw, pkt]() { sw.on_mirrored(pkt, net::MirrorPoint::kEgress); });
    t += units::microseconds(10);
  }
  sim.run();
  const double copies_per_sec =
      2.0 * static_cast<double>(pairs) / timer.elapsed_s();

  const auto& engine = *program.histogram_engines().front();
  bool ok = engine.samples() == pairs;
  if (!ok) {
    std::fprintf(stderr, "sketch_scale: pipeline matched %llu of %zu pairs\n",
                 static_cast<unsigned long long>(engine.samples()), pairs);
  }
  for (const auto& [label, q] :
       {std::pair<const char*, double>{"p50", 0.50},
        std::pair<const char*, double>{"p99", 0.99}}) {
    const double truth = exact_quantile(exact, q);
    const double err = rel_err(engine.quantile_ns(q), truth);
    report.metric(std::string("pipeline_queue_") + label + "_rel_err", err);
    std::printf("pipeline queue %s: exact %.4g ns, err %.4f%%\n", label,
                truth, err * 100.0);
    if (err > kAlpha * 1.10) {
      std::fprintf(stderr,
                   "sketch_scale: pipeline %s rel err %.4f exceeds alpha\n",
                   label, err);
      ok = false;
    }
  }
  report.metric("pipeline_pairs", static_cast<std::uint64_t>(pairs));
  report.metric("pipeline_copies_per_sec", copies_per_sec);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::WallTimer wall;
  bench::BenchReport report("sketch_scale");

  bool ok = fidelity(report, quick ? 100'000 : 500'000);

  std::vector<std::pair<std::string, std::size_t>> tiers = {
      {"10k", 10'000}, {"100k", 100'000}};
  if (!quick) tiers.emplace_back("1m", 1'000'000);
  std::vector<net::FiveTuple> tuples;
  for (const auto& [label, flows] : tiers) {
    tuples.clear();
    tuples.reserve(flows);
    for (std::uint32_t i = 0; i < flows; ++i) tuples.push_back(tuple_of(i));
    flow_table_tier(report, label, tuples,
                    telemetry::FlowTableKind::kRegisters);
    flow_table_tier(report, label, tuples, telemetry::FlowTableKind::kCuckoo);
  }

  ok = pipeline_fidelity(report, quick ? 20'000 : 100'000) && ok;

  report.wall_time_s(wall.elapsed_s());
  report.meta("quick", util::Json(quick));
  report.meta("alpha", util::Json(kAlpha));
  report.meta("seed", util::Json(7));
  if (!report.write()) return 1;
  if (!ok) {
    std::fprintf(stderr, "sketch_scale: fidelity bound violated\n");
    return 1;
  }
  return 0;
}
