// Extension bench — capabilities from the paper's related work (§6)
// implemented on top of the same substrate:
//
//  * P4CCI (Kfoury et al.): identify each flow's congestion-control
//    algorithm from the data-plane bytes-in-flight series. The paper's
//    system feeds a DNN; here an interpretable feature heuristic reaches
//    the same verdicts for reno / cubic / bbr.
//  * BBR queue behaviour (Gomez et al. study BBRv2's queueing/loss
//    profile): identical single-flow runs contrasting CUBIC's full
//    buffer + periodic loss with BBR's near-empty queue.
//  * AmLight INT (Bezerra et al.): sampled per-packet postcards and the
//    collector load they generate at different sampling ratios.
#include <cstdio>

#include "bench_common.hpp"
#include "controlplane/cca_identifier.hpp"
#include "util/stats.hpp"

using namespace p4s;
using units::seconds;

namespace {

void cca_identification() {
  std::printf("\n== P4CCI-style CCA identification (one flow per CCA) "
              "==\n%-8s %-12s %10s %10s %10s %12s\n",
              "actual", "identified", "decreases", "losses", "cv",
              "early_share");
  for (const char* cc : {"reno", "cubic", "bbr"}) {
    core::MonitoringSystemConfig config;
    config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
    config.topology.core_buffer_bytes = units::bdp_bytes(
        config.topology.bottleneck_bps, units::milliseconds(50));
    core::MonitoringSystem system(config);
    system.start();
    cp::CcaIdentifier ident(system.simulation(), system.program());
    ident.start();
    tcp::TcpFlow::Config fc;
    fc.sender.congestion_control = cc;
    auto& flow = system.add_transfer(0, fc);
    flow.start_at(units::milliseconds(100));
    system.run_until(seconds(45));
    for (const auto& [slot, verdict] : ident.classify_all()) {
      const auto f = ident.features(slot);
      std::printf("%-8s %-12s %10d %10llu %10.3f %12.3f\n", cc,
                  cp::to_string(verdict), f.decreases,
                  static_cast<unsigned long long>(f.losses), f.cv,
                  f.early_share);
    }
  }
}

void bbr_vs_cubic_queues() {
  // Gomez et al.'s theme is how BBR's model-based operation changes
  // queueing vs loss-based CUBIC. The faithful single-flow contrast:
  // identical runs, one CCA each; compare steady-state queue occupancy
  // and loss. (Multi-flow BBRv1/v2 coexistence needs mechanisms this
  // simplified BBR omits — PROBE_RTT, aggressive re-probing — so that
  // comparison is intentionally NOT claimed here.)
  std::printf("\n== BBR vs CUBIC: queue behaviour at the same bottleneck "
              "==\n%-8s %16s %16s %14s %14s\n", "cca", "goodput_Mbps",
              "steady_q_fill", "drops>3s", "retx>3s");
  for (const char* cc : {"cubic", "bbr"}) {
    sim::Simulation sim(42);
    net::Network network(sim);
    net::PaperTopologyConfig tconfig;
    tconfig.bottleneck_bps = bench::scaled_bottleneck_bps();
    auto topo = net::make_paper_topology(network, tconfig);
    tcp::TcpFlow::Config fc;
    fc.sender.congestion_control = cc;
    tcp::TcpFlow flow(sim, *topo.dtn_internal, *topo.dtn_ext[0], fc);
    flow.start_at(units::milliseconds(1));
    flow.stop_at(seconds(30));
    util::RunningStats fill;
    std::uint64_t drops_at_3s = 0, retx_at_3s = 0;
    sim.at(seconds(3), [&]() {
      drops_at_3s = topo.bottleneck_port->queue().stats().dropped_pkts;
      retx_at_3s = flow.sender().stats().retransmitted_segments;
    });
    sim.every(seconds(3), units::milliseconds(100), [&]() {
      fill.add(topo.bottleneck_port->queue().fill_fraction());
      return sim.now() < seconds(30);
    });
    sim.run_until(seconds(34));
    std::printf("%-8s %16.1f %16.3f %14llu %14llu\n", cc,
                flow.average_goodput_bps(sim.now()) / 1e6, fill.mean(),
                static_cast<unsigned long long>(
                    topo.bottleneck_port->queue().stats().dropped_pkts -
                    drops_at_3s),
                static_cast<unsigned long long>(
                    flow.sender().stats().retransmitted_segments -
                    retx_at_3s));
  }
  std::printf("(both fill the link; CUBIC keeps the buffer mostly full "
              "with periodic loss, BBR keeps it near-empty with none)\n");
}

void int_sampling() {
  std::printf("\n== INT postcard export: collector load vs sampling "
              "ratio ==\n%-14s %16s %16s %14s\n", "sample_every",
              "egress_pkts", "postcards", "archived_docs");
  for (std::uint32_t n : {32u, 128u, 512u}) {
    core::MonitoringSystemConfig config;
    config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
    config.program.int_export.enabled = true;
    config.program.int_export.sample_every = n;
    core::MonitoringSystem system(config);
    system.start();
    auto& flow = system.add_transfer(0);
    flow.start_at(units::milliseconds(100));
    system.run_until(seconds(10));
    const auto& exporter = system.program().int_exporter();
    std::printf("1 in %-9u %16llu %16llu %14llu\n", n,
                static_cast<unsigned long long>(exporter.packets_seen()),
                static_cast<unsigned long long>(
                    exporter.postcards_emitted()),
                static_cast<unsigned long long>(
                    system.psonar().archiver().doc_count(
                        "p4sonar-int_postcard")));
  }
}

}  // namespace

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Related-work extensions — P4CCI, BBR queueing, INT postcards",
      "§6 (Kfoury et al. P4CCI; Gomez et al. BBRv2; Bezerra et al. "
      "AmLight INT)",
      "CCA verdicts match the running algorithm; BBR runs a near-empty "
      "queue where CUBIC fills it; postcard volume scales as 1/N");
  cca_identification();
  bbr_vs_cubic_queues();
  int_sampling();
  bench::BenchReport report("ext_related_work");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
