// Shared helpers for the experiment benches.
//
// SCALE NOTE (see DESIGN.md §2 and EXPERIMENTS.md): the paper's testbed
// runs a 10 Gbps bottleneck. The benches default to a 250 Mbps bottleneck
// with the same RTTs and BDP-proportional buffers. This preserves every
// reported *shape* — who wins, where losses appear, convergence measured
// in seconds (CUBIC's convergence clock runs in wall time, so the smaller
// window count actually matches the paper's ~20 s convergence window) —
// while keeping each bench's runtime in seconds. Set P4S_SCALE_BPS to
// override.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>

#include "bench_json.hpp"
#include "core/experiment.hpp"
#include "core/monitoring_system.hpp"
#include "util/units.hpp"

namespace p4s::bench {

inline std::uint64_t experiment_seed() {
  if (const char* env = std::getenv("P4S_SEED")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 1;
}

inline std::uint64_t scaled_bottleneck_bps() {
  if (const char* env = std::getenv("P4S_SCALE_BPS")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return units::mbps(250);
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("bottleneck: %.0f Mbps (paper: 10 Gbps; see EXPERIMENTS.md "
              "scale note)\n",
              static_cast<double>(scaled_bottleneck_bps()) / 1e6);
  std::printf("==========================================================\n");
}

/// Print a thinned metric table from a recorder.
inline void print_metric(const core::Recorder& recorder,
                         const std::string& title,
                         double core::FlowSample::*metric,
                         const std::string& unit, std::size_t max_rows = 40) {
  const auto thinned = core::thin(recorder.samples(), max_rows);
  const auto labels = [&] {
    return recorder.labels();
  }();
  std::printf("\n== %s (%s) ==\n%-7s", title.c_str(), unit.c_str(), "t_s");
  for (const auto& label : labels) std::printf("%14s", label.c_str());
  std::printf("\n");
  for (const auto& s : thinned) {
    std::printf("%-7.1f", s.t_s);
    for (const auto& label : labels) {
      double value = 0.0;
      bool found = false;
      for (const auto& f : s.flows) {
        if (f.label == label) {
          value = f.*metric;
          found = true;
          break;
        }
      }
      if (found) {
        std::printf("%14.3f", value);
      } else {
        std::printf("%14s", "-");
      }
    }
    std::printf("\n");
  }
}

/// Standard BENCH_<name>.json for a MonitoringSystem experiment: the
/// simulator's events/sec and TAP mirror packets/sec over the measured
/// wall time, plus the event heap's high-water mark. Returns the bench's
/// exit code (non-zero when the JSON failed to write or re-parse).
inline int write_experiment_json(
    const std::string& name, core::MonitoringSystem& system, double wall_s,
    std::initializer_list<std::pair<const char*, double>> extra = {}) {
  auto& events = system.simulation().events();
  BenchReport report(name);
  report.wall_time_s(wall_s);
  report.metric("executed_events", events.executed_events());
  report.metric("events_per_sec",
                wall_s > 0.0
                    ? static_cast<double>(events.executed_events()) / wall_s
                    : 0.0);
  report.metric("mirrored_pkts", system.taps().mirrored_pkts());
  report.metric("mirrored_pkts_per_sec",
                wall_s > 0.0
                    ? static_cast<double>(system.taps().mirrored_pkts()) /
                          wall_s
                    : 0.0);
  report.metric("peak_heap_events",
                static_cast<std::uint64_t>(events.peak_pending_events()));
  report.metric("sim_time_s", units::to_seconds(system.simulation().now()));
  for (const auto& [key, value] : extra) report.metric(key, value);
  report.meta("seed", util::Json(static_cast<std::int64_t>(
                          system.config().seed)));
  report.meta("bottleneck_bps",
              util::Json(static_cast<std::int64_t>(
                  system.config().topology.bottleneck_bps)));
  return report.write() ? 0 : 1;
}

}  // namespace p4s::bench
