// Ablation (DESIGN.md §5): sizing of the eACK signature register and the
// count-min sketch.
//
// The eACK table (Chen et al.) maps (reversed flow ID, expected ACK) ->
// timestamp. Undersizing it causes evictions (a newer packet overwrites a
// parked timestamp before its ACK returns) and therefore lost RTT
// samples. This bench drives the same synthetic flow mix through
// RttLossEngine instances of different sizes and reports match rates —
// justifying the default 2^16.
//
// The CMS ablation varies width and reports how many *short* flows get
// falsely promoted to register slots under heavy flow churn.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "sim/random.hpp"
#include "telemetry/flow_tracker.hpp"
#include "telemetry/rtt_loss.hpp"
#include "p4/hash.hpp"

using namespace p4s;

namespace {

void eack_sizing() {
  std::printf("== eACK register sizing (RTT sample match rate) ==\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "slots", "stores", "matches",
              "evictions", "match_rate");
  for (std::size_t slots : {1u << 10, 1u << 12, 1u << 14, 1u << 16,
                            1u << 18}) {
    telemetry::RttLossEngine engine(slots);
    sim::Rng rng(42);
    // 64 concurrent flows, each with a 100-packet-deep window: packets
    // are sent (eACK stored), then ACKed after the window's worth of
    // other traffic — the in-flight population a 250 Mbps x 100 ms path
    // sustains.
    constexpr int kFlows = 64;
    constexpr int kWindow = 100;
    constexpr int kRounds = 2000;
    struct Pending {
      std::uint32_t ack_flow_id;
      std::uint16_t slot;
      std::uint32_t eack;
    };
    std::vector<std::vector<Pending>> pending(kFlows);
    std::vector<std::uint32_t> seq(kFlows, 1);
    std::uint64_t stores = 0;
    SimTime now = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int f = 0; f < kFlows; ++f) {
        now += 100;
        net::FiveTuple t{net::ipv4(10, 0, 0, 1),
                         net::ipv4(10, 1, 0, static_cast<std::uint8_t>(f)),
                         40000, 5201, 6};
        const std::uint32_t rev_id = p4::flow_hash(t.reversed());
        const auto slot = static_cast<std::uint16_t>(
            p4::flow_hash(t) & telemetry::kFlowSlotMask);
        engine.on_data_packet({slot, rev_id, seq[f], 1460, false}, now);
        ++stores;
        pending[f].push_back({rev_id, slot, seq[f] + 1460});
        seq[f] += 1460;
        if (pending[f].size() >= kWindow) {
          const Pending p = pending[f].front();
          pending[f].erase(pending[f].begin());
          now += 100;
          engine.on_ack_packet({p.ack_flow_id, p.slot, p.eack}, now);
        }
      }
    }
    const double rate =
        static_cast<double>(engine.eack_matches()) /
        static_cast<double>(engine.eack_matches() + engine.eack_misses());
    std::printf("%-12zu %12llu %12llu %12llu %11.1f%%\n", slots,
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(engine.eack_matches()),
                static_cast<unsigned long long>(engine.eack_evictions()),
                rate * 100.0);
  }
}

void cms_sizing() {
  std::printf("\n== CMS width sizing (false long-flow promotions) ==\n");
  std::printf("%-12s %16s %16s\n", "width", "short_promoted",
              "long_promoted");
  for (std::size_t width : {256u, 1024u, 4096u, 16384u}) {
    telemetry::FlowTracker::Config config;
    config.cms_width = width;
    config.promotion_bytes = 100 * 1024;
    telemetry::FlowTracker tracker(config);
    sim::Rng rng(7);
    SimTime now = 0;
    int short_promoted = 0;
    int long_promoted = 0;
    // 4000 short flows (10 pkts = ~14.6 KB each, far below threshold)
    // interleaved with 16 long flows (200 pkts each).
    for (int round = 0; round < 200; ++round) {
      for (int s = 0; s < 20; ++s) {
        net::FiveTuple t{net::ipv4(172, 16, 0, 1),
                         net::ipv4(172, 16, 1, 1),
                         static_cast<std::uint16_t>(
                             1024 + rng.next_below(60000)),
                         443, 6};
        bool promoted = false;
        for (int p = 0; p < 10; ++p) {
          now += 1000;
          if (tracker.on_data_packet(t, 1460, now).has_value()) {
            promoted = true;
          }
        }
        if (promoted) ++short_promoted;
      }
      for (int f = 0; f < 16; ++f) {
        net::FiveTuple t{net::ipv4(10, 0, 0, 1),
                         net::ipv4(10, 1, 0, static_cast<std::uint8_t>(f)),
                         40000, 5201, 6};
        now += 1000;
        if (round == 199 &&
            tracker.on_data_packet(t, 1460, now).has_value()) {
          ++long_promoted;
        } else {
          tracker.on_data_packet(t, 1460, now);
        }
      }
    }
    std::printf("%-12zu %16d %16d (of 16)\n", width, short_promoted,
                long_promoted);
  }
}

}  // namespace

int main() {
  bench::WallTimer wall;
  std::printf("Register-sizing ablation (DESIGN.md design decision *)\n\n");
  eack_sizing();
  cms_sizing();
  bench::BenchReport report("ablation_registers");
  report.wall_time_s(wall.elapsed_s());
  return report.write() ? 0 : 1;
}
