// Table 1 reproduction: regular perfSONAR vs P4-perfSONAR, demonstrated
// with measured evidence from one run rather than asserted qualitatively.
//
// One simulation carries: a real DTN transfer (the "real traffic"), a
// pScheduler iperf3 throughput test and a ping latency test between the
// perfSONAR hosts (the regular deployment's active measurements), and the
// P4 passive pipeline watching everything through the TAPs. Each Table 1
// row is then answered from the perfSONAR archiver's contents.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "psonar/pscheduler.hpp"

using namespace p4s;
using units::seconds;

int main() {
  bench::WallTimer wall;
  bench::print_header(
      "Table 1 — regular perfSONAR vs P4-perfSONAR capability matrix",
      "§3.3, Table 1",
      "each row demonstrated with measured artifacts from one run");

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bench::scaled_bottleneck_bps();
  config.topology.core_buffer_bytes = units::bdp_bytes(
      config.topology.bottleneck_bps, units::milliseconds(50));
  core::MonitoringSystem system(config);
  system.start();
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");

  auto& topo = system.topology();
  auto& node = system.psonar();

  // Regular perfSONAR: periodic active tests from the internal node.
  ps::PScheduler::ThroughputTask tp;
  tp.start = seconds(2);
  tp.duration = seconds(10);
  node.scheduler().schedule_throughput(*topo.psonar_internal,
                                       *topo.psonar_ext[0], tp);
  ps::PScheduler::LatencyTask lat;
  lat.start = seconds(2);
  lat.count = 10;
  node.scheduler().schedule_latency(*topo.psonar_internal,
                                    *topo.psonar_ext[0], lat);

  // The real traffic: a DTN transfer the active tests never see.
  auto& transfer = system.add_transfer(1);
  transfer.start_at(seconds(1));
  transfer.stop_at(seconds(25));

  system.run_until(seconds(30));

  auto& archiver = node.archiver();
  const auto& sched = node.scheduler();
  const std::uint64_t p4_throughput_docs =
      archiver.doc_count("p4sonar-throughput");
  const std::uint64_t p4_rtt_docs = archiver.doc_count("p4sonar-rtt");
  const std::uint64_t active_tp_docs =
      archiver.doc_count("pscheduler-throughput");
  const std::uint64_t active_lat_docs =
      archiver.doc_count("pscheduler-latency");
  const std::uint64_t microburst_docs =
      archiver.doc_count("p4sonar-microburst");
  const std::uint64_t limitation_docs =
      archiver.doc_count("p4sonar-limitation");

  // Did the active tests see the DTN transfer's 5-tuple? (They cannot:
  // their documents carry no flow identity at all.)
  ps::Archiver::Query dtn_query;
  dtn_query.terms["flow.dst_ip"] =
      util::Json(net::to_string(net::addrs::kDtnExt[1]));
  const auto p4_dtn_docs = archiver.search("p4sonar-throughput", dtn_query);

  std::printf("\n%-26s | %-34s | %-42s\n", "Table 1 row",
              "regular perfSONAR (measured)", "P4-perfSONAR (measured)");
  std::printf("%.26s-+-%.36s-+-%.44s\n",
              "--------------------------------------------",
              "--------------------------------------------",
              "--------------------------------------------");

  std::printf("%-26s | %-34s | %-42s\n", "Measurement type",
              ("active only: " + std::to_string(active_tp_docs) +
               " iperf3 + " + std::to_string(active_lat_docs) +
               " ping results")
                  .c_str(),
              ("passive: " + std::to_string(p4_throughput_docs) +
               " throughput + " + std::to_string(p4_rtt_docs) +
               " RTT reports, 0 packets injected")
                  .c_str());

  char buf[128];
  std::snprintf(buf, sizeof buf, "injected test traffic only");
  std::printf("%-26s | %-34s | %-42s\n", "Measurement source", buf,
              (std::to_string(p4_dtn_docs.size()) +
               " reports for the real DTN flow's 5-tuple")
                  .c_str());

  std::snprintf(buf, sizeof buf, "1 avg per %llu s test",
                static_cast<unsigned long long>(10));
  std::printf("%-26s | %-34s | %-42s\n", "Granularity", buf,
              "per-flow samples at 1/s; per-packet registers");

  const double active_coverage =
      sched.throughput_results().empty()
          ? 0.0
          : units::to_seconds(sched.throughput_results()[0].end -
                              sched.throughput_results()[0].start);
  std::snprintf(buf, sizeof buf, "%.0f s of 29 s observed",
                active_coverage);
  std::printf("%-26s | %-34s | %-42s\n", "Visibility", buf,
              "every transfer, whole run (flow_detected -> flow_final)");

  std::printf("%-26s | %-34s | %-42s\n", "Microburst detection",
              "not supported (no such index)",
              (std::to_string(microburst_docs) +
               " microburst reports with ns start+duration")
                  .c_str());

  std::printf("%-26s | %-34s | %-42s\n", "Endpoint-limitation",
              "not supported",
              (std::to_string(limitation_docs) +
               " limitation verdicts archived")
                  .c_str());

  // Row evidence details.
  std::printf("\n-- regular perfSONAR archived results --\n");
  for (const auto& r : sched.throughput_results()) {
    std::printf("iperf3 %s -> %s: avg %.1f Mbps (single aggregated "
                "value)\n",
                r.src.c_str(), r.dst.c_str(), r.avg_throughput_bps / 1e6);
  }
  for (const auto& r : sched.latency_results()) {
    std::printf("ping %s -> %s: min/mean/max = %.2f/%.2f/%.2f ms "
                "(%d/%d replies)\n",
                r.src.c_str(), r.dst.c_str(), r.min_rtt_ms, r.mean_rtt_ms,
                r.max_rtt_ms, r.received, r.sent);
  }

  std::printf("\n-- P4-perfSONAR terminated-flow report (§3.3.2) --\n");
  for (const auto& rep : system.control_plane().final_reports()) {
    std::printf("flow %s:%u -> %s:%u  start=%llu ns end=%llu ns  "
                "packets=%llu bytes=%llu  avg=%.1f Mbps  retx=%llu "
                "(%.4f%%)\n",
                net::to_string(rep.flow.tuple.src_ip).c_str(),
                rep.flow.tuple.src_port,
                net::to_string(rep.flow.tuple.dst_ip).c_str(),
                rep.flow.tuple.dst_port,
                static_cast<unsigned long long>(rep.start),
                static_cast<unsigned long long>(rep.end),
                static_cast<unsigned long long>(rep.packets),
                static_cast<unsigned long long>(rep.bytes),
                rep.avg_throughput_bps / 1e6,
                static_cast<unsigned long long>(rep.retransmissions),
                rep.retransmission_pct);
  }
  return bench::write_experiment_json("table1_capability_matrix", system,
                                      wall.elapsed_s());
}
