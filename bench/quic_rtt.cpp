// quic_rtt — fidelity and throughput of the spin-bit RTT subsystem.
//
// Part A (accuracy): a QUIC transfer over the paper topology with 1%
// loss toward the receiver, spin_rtt enabled on the core switch. The
// engine's median edge-to-edge gap is compared against the sender's own
// smoothed RTT (the transport's ground truth — what an eACK-style
// in-band measurement would see). The bench exits non-zero if the
// median strays more than 10%, making the acceptance bound a
// CI-checkable fact rather than a doc sentence.
//
// Part B (engine throughput): seeded synthetic QUIC short headers
// straight through the P4 switch into the composed program —
// on_mirrored events/s with the spin engine doing per-DCID table
// lookups and edge detection on every packet.
//
// Part C (NIDS under elephant/mice): the per-flow feature engine offered
// a seeded mix of a few bulk flows and a long tail of short flows —
// events/s with flow-row updates, Welford accumulators, and the window
// classifier in the path, plus a drain to price the digest pass.
//
// `--quick` (CI): trims the streams and the simulated transfer.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/monitoring_system.hpp"
#include "p4/p4_switch.hpp"
#include "telemetry/dataplane_program.hpp"

using namespace p4s;

namespace {

// ---- Part A: spin median vs transport ground truth --------------------

bool spin_accuracy(bench::BenchReport& report, bool quick) {
  core::MonitoringSystemConfig config;
  config.seed = 42;
  config.topology.bottleneck_bps = units::mbps(200);
  config.program.spin_rtt.emplace();
  core::MonitoringSystem system(config);
  system.topology().ext_dtn_links[0].reverse_link->set_loss_rate(0.01);
  system.start();

  auto& flow = system.add_quic_transfer(0);
  flow.start_at(units::seconds(1));
  const SimTime stop = units::seconds(quick ? 5 : 10);
  flow.stop_at(stop);
  bench::WallTimer timer;
  system.run_until(stop + units::seconds(2));
  const double sim_wall = timer.elapsed_s();

  const telemetry::SpinRttEngine& engine = *system.program().spin_rtt_engine();
  const double median = engine.quantile_ns(0.5);
  const double truth = static_cast<double>(flow.sender().rtt().srtt());
  const double err = truth == 0.0 ? 1.0 : std::abs(median - truth) / truth;

  report.metric("spin_p50_ms", median / 1e6);
  report.metric("ground_truth_srtt_ms", truth / 1e6);
  report.metric("spin_rel_err", err);
  report.metric("spin_samples", engine.samples());
  report.metric("spin_edges", engine.edges());
  report.metric("spin_rejected_outlier", engine.rejected_outlier());
  report.metric("spin_rejected_reordered", engine.rejected_reordered());
  report.metric("spin_sim_wall_s", sim_wall);
  std::printf("spin accuracy: p50 %.3f ms vs srtt %.3f ms (err %.2f%%), "
              "%llu samples, %llu outliers rejected\n",
              median / 1e6, truth / 1e6, err * 100.0,
              static_cast<unsigned long long>(engine.samples()),
              static_cast<unsigned long long>(engine.rejected_outlier()));
  if (engine.samples() < 20 || err > 0.10) {
    std::fprintf(stderr,
                 "quic_rtt: spin median err %.4f exceeds the 10%% bound "
                 "(%llu samples)\n",
                 err, static_cast<unsigned long long>(engine.samples()));
    return false;
  }
  return true;
}

// ---- Part B: spin-engine event rate -----------------------------------

void spin_throughput(bench::BenchReport& report, std::size_t packets) {
  telemetry::DataPlaneProgram::Config config;
  config.spin_rtt.emplace();
  telemetry::DataPlaneProgram program(config);
  sim::Simulation sim;
  p4::P4Switch sw(sim, "bench");
  sw.load_program(program);
  sim.run_until(units::milliseconds(1));

  // 64 concurrent connections, one spin toggle every 32 packets.
  std::vector<net::Packet> stream;
  stream.reserve(packets);
  std::mt19937_64 rng(7);
  std::vector<std::uint32_t> pns(64, 1);
  std::vector<bool> spins(64, false);
  for (std::size_t i = 0; i < packets; ++i) {
    const std::size_t c = rng() % 64;
    if (pns[c] % 32 == 0) spins[c] = !spins[c];
    net::QuicHeader hdr;
    hdr.long_form = false;
    hdr.spin = spins[c];
    hdr.dcid = 0x1000 + c;
    hdr.packet_number = pns[c]++;
    stream.push_back(net::make_quic_packet(
        net::ipv4(10, 0, 0, static_cast<std::uint8_t>(c)),
        net::ipv4(10, 1, 0, 10), 40000, 4433, hdr, 1200));
  }

  bench::WallTimer timer;
  for (const auto& pkt : stream) {
    sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
  }
  const double rate = static_cast<double>(packets) / timer.elapsed_s();
  report.metric("spin_events_per_sec", rate);
  report.metric("spin_events", static_cast<std::uint64_t>(packets));
  std::printf("spin engine: %.3gM events/s over %zu packets, %llu edges\n",
              rate / 1e6, packets,
              static_cast<unsigned long long>(
                  program.spin_rtt_engine()->edges()));
}

// ---- Part C: NIDS feature engine under an elephant/mice mix -----------

void nids_throughput(bench::BenchReport& report, std::size_t packets) {
  telemetry::DataPlaneProgram::Config config;
  config.nids.emplace();
  config.nids->window = 0;
  telemetry::DataPlaneProgram program(config);
  sim::Simulation sim;
  p4::P4Switch sw(sim, "bench");
  sw.load_program(program);
  sim.run_until(units::milliseconds(1));

  // 8 elephants carry ~80% of packets; the rest is a tail of 4k mice.
  std::vector<net::Packet> stream;
  stream.reserve(packets);
  std::mt19937_64 rng(13);
  for (std::size_t i = 0; i < packets; ++i) {
    const bool elephant = (rng() % 10) < 8;
    const std::uint32_t flow =
        elephant ? static_cast<std::uint32_t>(rng() % 8)
                 : 8 + static_cast<std::uint32_t>(rng() % 4096);
    stream.push_back(net::make_tcp_packet(
        net::ipv4(10, 0, static_cast<std::uint8_t>(flow >> 8),
                  static_cast<std::uint8_t>(flow)),
        net::ipv4(10, 1, 0, 10),
        static_cast<std::uint16_t>(40000 + (flow % 20000)), 5201,
        static_cast<std::uint32_t>(i), 0, net::tcpflags::kAck,
        elephant ? 1460 : 120, 1 << 16));
  }

  bench::WallTimer timer;
  for (const auto& pkt : stream) {
    sw.on_mirrored(pkt, net::MirrorPoint::kIngress);
  }
  const double rate = static_cast<double>(packets) / timer.elapsed_s();

  telemetry::NidsFeatureEngine& engine = *program.nids_engine();
  bench::WallTimer drain_timer;
  const auto docs = engine.drain_digests(sim.now());
  const double drain_s = drain_timer.elapsed_s();

  report.metric("nids_events_per_sec", rate);
  report.metric("nids_events", static_cast<std::uint64_t>(packets));
  report.metric("nids_tracked_flows",
                static_cast<std::uint64_t>(engine.tracked_flows()));
  report.metric("nids_drain_docs", static_cast<std::uint64_t>(docs.size()));
  report.metric("nids_drain_s", drain_s);
  report.metric("nids_alerts", engine.alerts_emitted());
  std::printf("nids engine: %.3gM events/s, %zu tracked flows, drain %zu "
              "docs in %.3f ms, %llu alerts\n",
              rate / 1e6, engine.tracked_flows(), docs.size(),
              drain_s * 1e3,
              static_cast<unsigned long long>(engine.alerts_emitted()));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::WallTimer wall;
  bench::BenchReport report("quic_rtt");

  const bool ok = spin_accuracy(report, quick);
  spin_throughput(report, quick ? 200'000 : 1'000'000);
  nids_throughput(report, quick ? 200'000 : 1'000'000);

  report.wall_time_s(wall.elapsed_s());
  report.meta("quick", util::Json(quick));
  report.meta("seed", util::Json(42));
  if (!report.write()) return 1;
  if (!ok) {
    std::fprintf(stderr, "quic_rtt: accuracy bound violated\n");
    return 1;
  }
  return 0;
}
