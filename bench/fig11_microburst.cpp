// Figure 11 / §5.4.1 reproduction: detecting small-sized buffers via
// microburst impact.
//
// Paper setup: all flows at 100 ms RTT; buffer = BDP/4 (a small buffer);
// a burst bloats the queue. Paper shape: packet-loss percentage escalates
// for two flows — surpassing 0.05% for one and 0.15% for another — and
// throughput takes ~25 s to recover. The data plane reports each
// microburst's start time and duration with nanosecond granularity.
#include <algorithm>
#include <map>
#include <string>
#include <cstdio>

#include "bench_common.hpp"

using namespace p4s;
using units::seconds;

int main() {
  bench::WallTimer wall;
  const std::uint64_t bps = bench::scaled_bottleneck_bps();
  bench::print_header(
      "Figure 11 — microburst detection with a BDP/4 buffer",
      "§5.4.1, Fig. 11",
      "queue bloats; loss% crosses 0.05 / 0.15 on two flows; ~25 s "
      "throughput recovery; bursts reported with ns start+duration");

  core::MonitoringSystemConfig config;
  config.topology.bottleneck_bps = bps;
  // Paper: average RTT 100 ms for the flows; buffer = BDP/4.
  config.topology.rtt = {units::milliseconds(100), units::milliseconds(100),
                         units::milliseconds(100)};
  const std::uint64_t bdp = units::bdp_bytes(bps, units::milliseconds(100));
  config.topology.core_buffer_bytes = bdp / 4;
  // Burst thresholds proportional to the (small) buffer drain time.
  const double drain_ns = static_cast<double>(bdp / 4) * 8e9 /
                          static_cast<double>(bps);
  config.program.queue.burst_threshold_ns =
      static_cast<SimTime>(drain_ns * 0.5);
  config.program.queue.burst_exit_ns = static_cast<SimTime>(drain_ns * 0.25);

  std::printf("BDP at 100 ms: %.2f MB; buffer = BDP/4 = %.2f MB "
              "(paper: 125 MB and 31.25 MB at 10 Gbps)\n",
              static_cast<double>(bdp) / 1e6,
              static_cast<double>(bdp / 4) / 1e6);

  config.seed = bench::experiment_seed();
  core::MonitoringSystem system(config);
  system.start();
  system.psonar().psconfig().execute(
      "psconfig config-P4 --samples_per_second 1");

  auto& flow1 = system.add_transfer(0);
  auto& flow2 = system.add_transfer(1);
  auto& flow3 = system.add_transfer(2);
  flow1.start_at(seconds(1));
  flow2.start_at(seconds(1));
  // The burst: a third transfer slow-starts into the small buffer at
  // t=15 s.
  flow3.start_at(seconds(15));

  core::Recorder recorder(system.simulation(), system.control_plane());
  recorder.start(seconds(2), seconds(1), seconds(75));
  system.run_until(seconds(75));

  bench::print_metric(recorder, "per-flow throughput",
                      &core::FlowSample::throughput_mbps, "Mbps");
  bench::print_metric(recorder, "queue occupancy",
                      &core::FlowSample::queue_occupancy_pct, "%");
  bench::print_metric(recorder, "per-flow packet losses",
                      &core::FlowSample::loss_pct, "% of pkts in interval");

  std::printf("\n== microbursts reported by the data plane "
              "(ns granularity) ==\n");
  std::printf("%-18s %-14s %-18s %-10s\n", "start_ns", "duration_ms",
              "peak_delay_ms", "packets");
  for (const auto& d : system.control_plane().microbursts()) {
    std::printf("%-18llu %-14.3f %-18.3f %-10llu\n",
                static_cast<unsigned long long>(d.start_ns),
                units::to_milliseconds(d.duration_ns),
                units::to_milliseconds(d.peak_queue_delay_ns),
                static_cast<unsigned long long>(d.packets_in_burst));
  }

  // Shape summary: loss peaks of the two PRE-EXISTING flows around the
  // burst (the paper's 0.05% / 0.15% figures are for the affected flows,
  // not the bursting newcomer) and per-flow recovery times.
  const std::string joiner = net::to_string(net::addrs::kDtnExt[2]);
  std::map<std::string, double> loss_peak;
  for (const auto& s : recorder.samples()) {
    if (s.t_s < 15.0 || s.t_s > 27.0) continue;
    for (const auto& f : s.flows) {
      if (f.label == joiner) continue;
      loss_peak[f.label] = std::max(loss_peak[f.label], f.loss_pct);
    }
  }
  // Recovery: first time each affected flow's throughput returns to
  // >= 70% of the post-join fair share (capacity / 3).
  const double fair_mbps = static_cast<double>(bps) / 1e6 / 3.0;
  std::map<std::string, double> recover_t;
  for (const auto& s : recorder.samples()) {
    if (s.t_s < 17.0) continue;
    for (const auto& f : s.flows) {
      if (f.label == joiner || recover_t.count(f.label)) continue;
      if (f.throughput_mbps >= 0.7 * fair_mbps) recover_t[f.label] = s.t_s;
    }
  }
  std::printf("\nshape summary:\n");
  for (const auto& [label, peak] : loss_peak) {
    std::printf("  affected flow %s: loss%% peak %.3f%%", label.c_str(),
                peak);
    if (recover_t.count(label)) {
      std::printf(", throughput back to >=70%% of fair share %.1f s "
                  "after the burst",
                  recover_t[label] - 15.0);
    } else {
      std::printf(", throughput not recovered within the run");
    }
    std::printf("\n");
  }
  std::printf("  (paper: peaks exceed 0.05%% / 0.15%%; ~25 s recovery)\n");
  std::printf("  microbursts reported: %zu (with ns start/duration)\n",
              system.control_plane().microbursts().size());
  return bench::write_experiment_json(
      "fig11_microburst", system, wall.elapsed_s(),
      {{"microbursts_reported",
        static_cast<double>(system.control_plane().microbursts().size())}});
}
