// Machine-readable bench output (the BENCH_*.json trajectory).
//
// Every bench binary writes one BENCH_<name>.json next to its working
// directory (override with P4S_BENCH_JSON_DIR) so CI can archive a
// performance trajectory across commits. The schema is deliberately
// small and flat (see DESIGN.md "Performance"):
//
//   {
//     "schema": "p4s-bench-v1",
//     "name": "<bench name>",
//     "wall_time_s": <float>,
//     "metrics": {              // machine-comparable numbers
//       "events_per_sec": ...,
//       "mirrored_pkts_per_sec": ...,
//       "peak_heap_events": ...,
//       ...bench-specific keys...
//     },
//     "meta": { "seed": ..., ... }  // inputs, for apples-to-apples checks
//   }
//
// The writer re-parses its own output before returning, so a bench exits
// non-zero on malformed JSON — CI gates on well-formedness, never on
// absolute numbers (those are machine-dependent).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace p4s::bench {

/// Monotonic stopwatch for hot loops (wall time, not CPU time: the
/// simulator is single-threaded, and wall time is what a CI budget sees).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates one bench run's numbers and writes BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport& metric(const std::string& key, double value) {
    metrics_[key] = util::Json(value);
    return *this;
  }
  BenchReport& metric(const std::string& key, std::uint64_t value) {
    metrics_[key] = util::Json(static_cast<std::int64_t>(value));
    return *this;
  }
  BenchReport& meta(const std::string& key, util::Json value) {
    meta_[key] = std::move(value);
    return *this;
  }
  BenchReport& wall_time_s(double s) {
    wall_time_s_ = s;
    return *this;
  }

  /// Output directory: $P4S_BENCH_JSON_DIR if set, else the CWD.
  static std::string output_dir() {
    if (const char* env = std::getenv("P4S_BENCH_JSON_DIR")) return env;
    return ".";
  }

  std::string path() const {
    return output_dir() + "/BENCH_" + name_ + ".json";
  }

  /// Write the file and verify it parses back. Returns true on success;
  /// on failure prints the reason and returns false (benches return the
  /// inverse as their exit code).
  bool write() const {
    util::Json doc = util::Json::object();
    doc["schema"] = "p4s-bench-v1";
    doc["name"] = name_;
    doc["wall_time_s"] = wall_time_s_;
    doc["metrics"] = util::Json(metrics_);
    doc["meta"] = util::Json(meta_);
    const std::string file = path();
    {
      std::ofstream out(file);
      if (!out) {
        std::fprintf(stderr, "bench_json: cannot open %s\n", file.c_str());
        return false;
      }
      out << doc.dump(2) << "\n";
    }
    if (!validate_file(file)) return false;
    std::printf("\nbench json: %s\n", file.c_str());
    return true;
  }

  /// Parse `file` and check the p4s-bench-v1 invariants (used by the
  /// perf-smoke CI gate: shape, not numbers).
  static bool validate_file(const std::string& file) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "bench_json: cannot read %s\n", file.c_str());
      return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      const util::Json doc = util::Json::parse(text);
      if (doc.at("schema").as_string() != "p4s-bench-v1") {
        std::fprintf(stderr, "bench_json: %s: bad schema\n", file.c_str());
        return false;
      }
      (void)doc.at("name").as_string();
      (void)doc.at("wall_time_s").as_double();
      if (!doc.at("metrics").is_object()) {
        std::fprintf(stderr, "bench_json: %s: metrics not an object\n",
                     file.c_str());
        return false;
      }
      for (const auto& [key, value] : doc.at("metrics").as_object()) {
        if (!value.is_number()) {
          std::fprintf(stderr, "bench_json: %s: metric %s not a number\n",
                       file.c_str(), key.c_str());
          return false;
        }
      }
    } catch (const util::JsonError& e) {
      std::fprintf(stderr, "bench_json: %s: %s\n", file.c_str(), e.what());
      return false;
    }
    return true;
  }

 private:
  std::string name_;
  double wall_time_s_ = 0.0;
  util::JsonObject metrics_;
  util::JsonObject meta_;
};

}  // namespace p4s::bench
