#include "workload/generators.hpp"

#include <stdexcept>

#include "net/packet.hpp"

namespace p4s::workload {

const char* to_string(WorkloadSpec::Kind kind) {
  switch (kind) {
    case WorkloadSpec::Kind::kSynFlood: return "syn_flood";
    case WorkloadSpec::Kind::kPortScan: return "port_scan";
    case WorkloadSpec::Kind::kElephantMice: return "elephant_mice";
  }
  return "?";
}

WorkloadSpec::Kind workload_kind_from_name(const std::string& name) {
  if (name == "syn_flood") return WorkloadSpec::Kind::kSynFlood;
  if (name == "port_scan") return WorkloadSpec::Kind::kPortScan;
  if (name == "elephant_mice") return WorkloadSpec::Kind::kElephantMice;
  throw std::invalid_argument("unknown workload kind: " + name);
}

namespace {

SimTime period_of(double pps) {
  if (pps <= 0.0) return units::seconds(1);
  return static_cast<SimTime>(1e9 / pps);
}

}  // namespace

// ---- SynFloodGenerator ----------------------------------------------------

SynFloodGenerator::SynFloodGenerator(sim::Simulation& sim,
                                     net::Host& attacker,
                                     net::Ipv4Address victim,
                                     const WorkloadSpec& spec)
    : sim_(sim), attacker_(attacker), victim_(victim), spec_(spec) {}

void SynFloodGenerator::start() {
  const SimTime end = spec_.start + spec_.duration;
  sim_.every(spec_.start, period_of(spec_.pps), [this, end]() {
    if (sim_.now() >= end) return false;
    send_one();
    return true;
  });
}

void SynFloodGenerator::send_one() {
  // Rotating spoofed source out of a 172.16/16-style pool: a knuth-hash
  // of the counter spreads sources without consuming simulation
  // randomness (determinism: same seed, same flood).
  const std::uint32_t i = static_cast<std::uint32_t>(sent_);
  const std::uint32_t scatter = (i * 2654435761u) >> 16;
  const net::Ipv4Address spoofed =
      net::ipv4(172, 16, 0, 0) | (scatter % spec_.spoof_count);
  const std::uint16_t src_port =
      static_cast<std::uint16_t>(1024 + (i % 60000));
  net::Packet syn = net::make_tcp_packet(
      spoofed, victim_, src_port, spec_.port, /*seq=*/i, /*ack=*/0,
      net::tcpflags::kSyn, /*payload=*/0, /*window=*/65535);
  attacker_.send(std::move(syn));
  ++sent_;
}

// ---- PortScanGenerator ----------------------------------------------------

PortScanGenerator::PortScanGenerator(sim::Simulation& sim,
                                     net::Host& attacker,
                                     net::Ipv4Address victim,
                                     const WorkloadSpec& spec)
    : sim_(sim), attacker_(attacker), victim_(victim), spec_(spec) {}

void PortScanGenerator::start() {
  sim_.every(spec_.start, period_of(spec_.pps), [this]() {
    if (sent_ >= spec_.port_count) return false;
    const std::uint16_t port =
        static_cast<std::uint16_t>(spec_.port + sent_);
    const std::uint16_t src_port =
        static_cast<std::uint16_t>(40000 + (sent_ % 20000));
    net::Packet syn = net::make_tcp_packet(
        attacker_.ip(), victim_, src_port, port,
        /*seq=*/static_cast<std::uint32_t>(sent_), /*ack=*/0,
        net::tcpflags::kSyn, /*payload=*/0, /*window=*/65535);
    attacker_.send(std::move(syn));
    ++sent_;
    return true;
  });
}

// ---- ElephantMiceGenerator ------------------------------------------------

ElephantMiceGenerator::ElephantMiceGenerator(sim::Simulation& sim,
                                             net::Host& src, net::Host& dst,
                                             const WorkloadSpec& spec)
    : sim_(sim), src_(src), dst_(dst), spec_(spec) {}

void ElephantMiceGenerator::start() {
  const SimTime end = spec_.start + spec_.duration;
  // Elephants: long-lived bulk flows, starts staggered by 100 ms so
  // their slow starts do not synchronize.
  for (std::size_t i = 0; i < spec_.elephants; ++i) {
    tcp::TcpFlow::Config fc;
    fc.sender.bytes_to_send = spec_.elephant_bytes;
    auto flow = std::make_unique<tcp::TcpFlow>(sim_, src_, dst_, fc);
    flow->start_at(spec_.start + units::milliseconds(100) * i);
    if (spec_.elephant_bytes == 0) flow->stop_at(end);
    flows_.push_back(std::move(flow));
    ++elephants_started_;
  }
  // Mice: fixed-rate arrivals of short transfers until the end time.
  if (spec_.mice_per_second > 0.0) {
    sim_.every(spec_.start, period_of(spec_.mice_per_second),
               [this, end]() {
                 if (sim_.now() >= end) return false;
                 tcp::TcpFlow::Config fc;
                 fc.sender.bytes_to_send = spec_.mice_bytes;
                 auto flow =
                     std::make_unique<tcp::TcpFlow>(sim_, src_, dst_, fc);
                 flow->start_at(sim_.now());
                 flows_.push_back(std::move(flow));
                 ++mice_started_;
                 return true;
               });
  }
}

// ---- Factory --------------------------------------------------------------

std::unique_ptr<TrafficGenerator> make_generator(sim::Simulation& sim,
                                                 net::Host& src,
                                                 net::Host& dst,
                                                 const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kSynFlood:
      return std::make_unique<SynFloodGenerator>(sim, src, dst.ip(), spec);
    case WorkloadSpec::Kind::kPortScan:
      return std::make_unique<PortScanGenerator>(sim, src, dst.ip(), spec);
    case WorkloadSpec::Kind::kElephantMice:
      return std::make_unique<ElephantMiceGenerator>(sim, src, dst, spec);
  }
  throw std::invalid_argument("unknown workload kind");
}

}  // namespace p4s::workload
