// Adversarial and mixed workload generators — the traffic the NIDS
// feature engine (telemetry/nids_features) is meant to tag, plus the
// benign elephant/mice mix it must stay quiet on.
//
//   * SynFloodGenerator — half-open connection flood at a fixed rate
//     with rotating spoofed sources (the host's send path stamps only
//     the IPv4 id, so spoofing works exactly like raw sockets do);
//   * PortScanGenerator — one real source SYNing a sequential port
//     range on one victim;
//   * ElephantMiceGenerator — long-lived bulk TCP flows plus a steady
//     arrival process of short "mice" transfers, the classic heavy-tail
//     baseline.
//
// All generators are deterministic — schedules derive from counters,
// never from the simulation RNG — so adding a workload to a seeded run
// perturbs nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/host.hpp"
#include "sim/simulation.hpp"
#include "tcp/flow.hpp"
#include "util/units.hpp"

namespace p4s::workload {

/// Declarative workload description (the config loader's "workloads"
/// section); resolved against topology hosts by MonitoringSystem.
struct WorkloadSpec {
  enum class Kind : std::uint8_t { kSynFlood, kPortScan, kElephantMice };
  Kind kind = Kind::kElephantMice;
  /// Topology host names: "dtn_int", "psonar_int", "ext0".."ext2",
  /// "psonar_ext0".."psonar_ext2". src = attacker / sender side.
  std::string src = "ext0";
  std::string dst = "dtn_int";
  SimTime start = units::seconds(1);
  SimTime duration = units::seconds(5);
  /// SYN rate (syn_flood, port_scan).
  double pps = 2000.0;
  /// Victim port (syn_flood) / first scanned port (port_scan).
  std::uint16_t port = 443;
  /// Scanned port count (port_scan).
  std::uint32_t port_count = 1024;
  /// Rotating spoofed-source pool size (syn_flood).
  std::uint32_t spoof_count = 1024;
  /// Long-lived bulk flows (elephant_mice).
  std::size_t elephants = 2;
  /// Bytes per elephant; 0 = run until the workload's end.
  std::uint64_t elephant_bytes = 0;
  /// Short-transfer arrival rate and size (elephant_mice).
  double mice_per_second = 5.0;
  std::uint64_t mice_bytes = 64 * 1024;
};

const char* to_string(WorkloadSpec::Kind kind);
/// Inverse of to_string ("syn_flood" / "port_scan" / "elephant_mice");
/// throws std::invalid_argument on unknown names.
WorkloadSpec::Kind workload_kind_from_name(const std::string& name);

class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Schedule the workload's events (idempotent is not required; call
  /// once, before or after the run starts).
  virtual void start() = 0;

  virtual std::string_view kind() const = 0;
  virtual std::uint64_t packets_sent() const = 0;
};

/// SYN flood from rotating spoofed sources against one victim.
class SynFloodGenerator final : public TrafficGenerator {
 public:
  SynFloodGenerator(sim::Simulation& sim, net::Host& attacker,
                    net::Ipv4Address victim, const WorkloadSpec& spec);

  void start() override;
  std::string_view kind() const override { return "syn_flood"; }
  std::uint64_t packets_sent() const override { return sent_; }

 private:
  void send_one();

  sim::Simulation& sim_;
  net::Host& attacker_;
  net::Ipv4Address victim_;
  WorkloadSpec spec_;
  std::uint64_t sent_ = 0;
};

/// Sequential-port SYN scan from the attacker's real address.
class PortScanGenerator final : public TrafficGenerator {
 public:
  PortScanGenerator(sim::Simulation& sim, net::Host& attacker,
                    net::Ipv4Address victim, const WorkloadSpec& spec);

  void start() override;
  std::string_view kind() const override { return "port_scan"; }
  std::uint64_t packets_sent() const override { return sent_; }

 private:
  sim::Simulation& sim_;
  net::Host& attacker_;
  net::Ipv4Address victim_;
  WorkloadSpec spec_;
  std::uint64_t sent_ = 0;
};

/// Long-lived bulk flows plus a steady stream of short transfers.
class ElephantMiceGenerator final : public TrafficGenerator {
 public:
  ElephantMiceGenerator(sim::Simulation& sim, net::Host& src,
                        net::Host& dst, const WorkloadSpec& spec);

  void start() override;
  std::string_view kind() const override { return "elephant_mice"; }
  /// Flows launched (packet totals live on the flows themselves).
  std::uint64_t packets_sent() const override {
    return elephants_started_ + mice_started_;
  }

  std::uint64_t elephants_started() const { return elephants_started_; }
  std::uint64_t mice_started() const { return mice_started_; }
  const std::vector<std::unique_ptr<tcp::TcpFlow>>& flows() const {
    return flows_;
  }

 private:
  sim::Simulation& sim_;
  net::Host& src_;
  net::Host& dst_;
  WorkloadSpec spec_;
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows_;
  std::uint64_t elephants_started_ = 0;
  std::uint64_t mice_started_ = 0;
};

/// Factory keyed on spec.kind. `src` is the attacker/sender host; `dst`
/// the victim/receiver.
std::unique_ptr<TrafficGenerator> make_generator(sim::Simulation& sim,
                                                 net::Host& src,
                                                 net::Host& dst,
                                                 const WorkloadSpec& spec);

}  // namespace p4s::workload
