#include "tcp/flow.hpp"

namespace p4s::tcp {

TcpFlow::TcpFlow(sim::Simulation& sim, net::Host& src, net::Host& dst,
                 Config config)
    : sim_(sim) {
  const std::uint16_t dst_port =
      config.dst_port != 0 ? config.dst_port : sim.allocate_default_port();
  const std::uint16_t src_port =
      config.src_port != 0 ? config.src_port : src.allocate_port();
  receiver_ = std::make_unique<TcpReceiver>(sim, dst, dst_port,
                                            config.receiver);
  sender_ = std::make_unique<TcpSender>(sim, src, dst.ip(), src_port,
                                        dst_port, config.sender);
}

void TcpFlow::start_at(SimTime at) {
  sim_.at(at, [this]() { sender_->start(); });
}

void TcpFlow::stop_at(SimTime at) {
  sim_.at(at, [this]() { sender_->stop(); });
}

void TcpFlow::set_on_complete(std::function<void()> cb) {
  sender_->set_on_complete(std::move(cb));
}

double TcpFlow::average_goodput_bps(SimTime now) const {
  const auto& s = sender_->stats();
  if (s.established_time == 0) return 0.0;
  const SimTime end = s.end_time != 0 ? s.end_time : now;
  if (end <= s.established_time) return 0.0;
  const double secs = units::to_seconds(end - s.established_time);
  return static_cast<double>(receiver_->stats().goodput_bytes) * 8.0 / secs;
}

}  // namespace p4s::tcp
