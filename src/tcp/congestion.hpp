// Congestion-control algorithms. The paper's DTNs run standard loss-based
// TCP; we provide NewReno-style AIMD ("reno") and CUBIC (RFC 8312), the
// Linux default on real DTNs, plus a model-based "bbr" (after BBRv1 —
// the related work the paper cites evaluates BBRv2 coexistence). The
// algorithm owns cwnd/ssthresh; the sender owns dup-ACK accounting and
// recovery sequencing, and honours pacing_rate_bps() when non-zero.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/units.hpp"

namespace p4s::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called once before the first segment. `initial_cwnd` in bytes.
  virtual void init(std::uint32_t mss, std::uint64_t initial_cwnd) = 0;

  /// New cumulative ACK for `acked_bytes` outside loss recovery.
  /// `srtt`/`min_rtt` come from the sender's estimator; CUBIC uses them
  /// for its HyStart-style slow-start exit (leave 0 when unknown).
  virtual void on_ack(std::uint64_t acked_bytes, SimTime now, SimTime srtt,
                      SimTime min_rtt) = 0;

  /// Entering fast recovery (triple dup-ACK). Sets ssthresh and reduces
  /// cwnd per the algorithm's multiplicative decrease.
  virtual void on_enter_recovery(std::uint64_t flight_bytes, SimTime now) = 0;

  /// Recovery completed (full ACK past the recovery point).
  virtual void on_exit_recovery(SimTime now) = 0;

  /// Retransmission timeout: collapse to one segment and re-enter slow
  /// start.
  virtual void on_rto(SimTime now) = 0;

  virtual std::uint64_t cwnd_bytes() const = 0;
  virtual std::uint64_t ssthresh_bytes() const = 0;
  virtual bool in_slow_start() const {
    return cwnd_bytes() < ssthresh_bytes();
  }
  /// Pacing rate in bits/s; 0 means "window-clocked, no pacing" (Reno and
  /// CUBIC here). BBR returns its gain-cycled rate.
  virtual std::uint64_t pacing_rate_bps() const { return 0; }
  /// Model-based CCAs keep learning from ACKs inside loss recovery
  /// (BBR's rate sampler); loss-based ones freeze their window there.
  virtual bool wants_ack_in_recovery() const { return false; }
  virtual const char* name() const = 0;
};

/// "reno", "cubic" or "bbr" (case-sensitive). Throws
/// std::invalid_argument on anything else.
std::unique_ptr<CongestionControl> make_congestion_control(
    const std::string& name);

}  // namespace p4s::tcp
