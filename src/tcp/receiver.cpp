#include "tcp/receiver.hpp"

#include <algorithm>

#include "tcp/seq.hpp"
#include "util/logging.hpp"

namespace p4s::tcp {

using net::tcpflags::kAck;
using net::tcpflags::kFin;
using net::tcpflags::kSyn;

TcpReceiver::TcpReceiver(sim::Simulation& sim, net::Host& host,
                         std::uint16_t port, Config config)
    : sim_(sim), host_(host), port_(port), config_(config) {
  host_.bind(net::Protocol::kTcp, port_,
             [this](const net::Packet& pkt) { on_packet(pkt); });
}

TcpReceiver::~TcpReceiver() { host_.unbind(net::Protocol::kTcp, port_); }

std::uint64_t TcpReceiver::advertised_window() const {
  if (ooo_bytes_ >= config_.buffer_bytes) return 0;
  return config_.buffer_bytes - ooo_bytes_;
}

void TcpReceiver::on_packet(const net::Packet& pkt) {
  if (!pkt.is_tcp()) return;
  const net::TcpHeader& tcp = pkt.tcp();
  if (tcp.has(kSyn)) {
    handle_syn(pkt);
    return;
  }
  if (!established_) return;
  handle_data(pkt);
}

void TcpReceiver::handle_syn(const net::Packet& pkt) {
  const net::TcpHeader& tcp = pkt.tcp();
  if (established_ && pkt.ip.src == peer_ip_ && tcp.src_port == peer_port_) {
    // Retransmitted SYN: re-send the SYN-ACK.
  } else {
    established_ = true;
    peer_ip_ = pkt.ip.src;
    peer_port_ = tcp.src_port;
    peer_isn_ = tcp.seq;
    my_isn_ = (static_cast<std::uint32_t>(port_) << 16) ^ peer_port_ ^
              host_.ip() ^ 0xC3C3C3C3u;
    rcv_next64_ = 0;
  }
  net::Packet synack = net::make_tcp_packet(
      host_.ip(), peer_ip_, port_, peer_port_, my_isn_, peer_isn_ + 1,
      static_cast<std::uint8_t>(kSyn | kAck), 0,
      static_cast<std::uint32_t>(
          std::min<std::uint64_t>(advertised_window(), 0xFFFFFFFFULL)));
  host_.send(std::move(synack));
}

void TcpReceiver::handle_data(const net::Packet& pkt) {
  const net::TcpHeader& tcp = pkt.tcp();
  if (pkt.ip.src != peer_ip_ || tcp.src_port != peer_port_) return;

  const std::uint32_t payload = pkt.payload_bytes();
  const bool fin = tcp.has(kFin);
  if (payload == 0 && !fin) return;  // bare ACK from peer: nothing to do

  ++stats_.received_segments;
  if (stats_.first_data_time == 0) stats_.first_data_time = sim_.now();
  stats_.last_data_time = sim_.now();

  // Map the wire sequence to a 64-bit stream offset near rcv_next64_.
  const std::uint32_t expected_wire =
      peer_isn_ + 1 + static_cast<std::uint32_t>(rcv_next64_);
  const auto rel = static_cast<std::int64_t>(
      static_cast<std::int32_t>(tcp.seq - expected_wire));
  const std::int64_t start_signed =
      static_cast<std::int64_t>(rcv_next64_) + rel;

  if (fin && payload == 0) {
    // Pure FIN: in-order only (we never see OOO FINs in these workloads).
    if (start_signed == static_cast<std::int64_t>(rcv_next64_) &&
        ooo_.empty()) {
      stats_.fin_received = true;
      fin_acked_ = true;
      send_ack();
      if (on_fin_) on_fin_();
    } else {
      send_ack();
    }
    return;
  }

  if (start_signed < 0) {
    ++stats_.duplicate_segments;
    send_ack();
    return;
  }
  std::uint64_t start = static_cast<std::uint64_t>(start_signed);
  std::uint64_t end = start + payload;

  if (end <= rcv_next64_) {
    ++stats_.duplicate_segments;  // entirely old data (retransmission)
    send_ack();
    return;
  }
  start = std::max(start, rcv_next64_);

  if (start == rcv_next64_) {
    rcv_next64_ = end;
    // Pull any contiguous out-of-order intervals.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_next64_) {
      if (it->second > rcv_next64_) rcv_next64_ = it->second;
      ooo_bytes_ -= (it->second - it->first);
      it = ooo_.erase(it);
    }
  } else {
    ++stats_.out_of_order_segments;
    // Insert [start, end), merging overlaps.
    auto it = ooo_.lower_bound(start);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        ooo_bytes_ -= (prev->second - prev->first);
        ooo_.erase(prev);
      }
    }
    it = ooo_.lower_bound(start);
    while (it != ooo_.end() && it->first <= end) {
      end = std::max(end, it->second);
      ooo_bytes_ -= (it->second - it->first);
      it = ooo_.erase(it);
    }
    ooo_[start] = end;
    ooo_bytes_ += end - start;
    newest_interval_start_ = start;
  }
  stats_.goodput_bytes = rcv_next64_;

  if (fin) {
    if (start_signed >= 0 &&
        static_cast<std::uint64_t>(start_signed) + payload == rcv_next64_ &&
        ooo_.empty()) {
      stats_.fin_received = true;
      fin_acked_ = true;
    }
  }
  send_ack();
  if (fin && stats_.fin_received && on_fin_) on_fin_();
}

void TcpReceiver::send_ack() {
  ++stats_.acks_sent;
  const std::uint32_t wire_ack = peer_isn_ + 1 +
                                 static_cast<std::uint32_t>(rcv_next64_) +
                                 (fin_acked_ ? 1u : 0u);
  net::Packet ack = net::make_tcp_packet(
      host_.ip(), peer_ip_, port_, peer_port_, my_isn_ + 1, wire_ack, kAck,
      0,
      static_cast<std::uint32_t>(
          std::min<std::uint64_t>(advertised_window(), 0xFFFFFFFFULL)));
  // SACK option: up to 3 out-of-order intervals. RFC 2018 requires the
  // block containing the most recently received segment first; remaining
  // slots cycle through the other intervals so the sender's scoreboard
  // eventually learns all of them.
  net::TcpHeader& tcp = ack.tcp();
  auto add_block = [&](std::uint64_t start, std::uint64_t end) {
    if (tcp.sack_count >= tcp.sack.size()) return;
    tcp.sack[tcp.sack_count++] = net::SackBlock{
        peer_isn_ + 1 + static_cast<std::uint32_t>(start),
        peer_isn_ + 1 + static_cast<std::uint32_t>(end)};
  };
  std::uint64_t first_start = kNoInterval;
  if (newest_interval_start_ != kNoInterval) {
    auto it = ooo_.find(newest_interval_start_);
    if (it != ooo_.end()) {
      add_block(it->first, it->second);
      first_start = it->first;
    }
  }
  if (!ooo_.empty()) {
    auto it = ooo_.upper_bound(sack_cursor_);
    for (std::size_t scanned = 0;
         scanned < ooo_.size() && tcp.sack_count < tcp.sack.size();
         ++scanned) {
      if (it == ooo_.end()) it = ooo_.begin();
      if (it->first != first_start) {
        add_block(it->first, it->second);
        sack_cursor_ = it->first;
      }
      ++it;
    }
  }
  host_.send(std::move(ack));
}

}  // namespace p4s::tcp
