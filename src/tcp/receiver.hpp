// TCP receiver endpoint: cumulative ACKs, out-of-order reassembly
// bookkeeping (interval set over unwrapped 64-bit offsets), and a
// configurable receive buffer whose size bounds the advertised window —
// the paper's "receiver-limited" case (§5.4.2) is exactly a small value
// here. The application consumes in-order data instantly (DTN writing to
// fast storage), so the advertised window is buffer minus held
// out-of-order bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace p4s::tcp {

class TcpReceiver {
 public:
  struct Config {
    /// Receive buffer in bytes; bounds the advertised window.
    std::uint64_t buffer_bytes = 64ULL << 20;
  };

  struct Stats {
    std::uint64_t goodput_bytes = 0;       // delivered in order
    std::uint64_t received_segments = 0;
    std::uint64_t duplicate_segments = 0;  // fully below rcv_next
    std::uint64_t out_of_order_segments = 0;
    std::uint64_t acks_sent = 0;
    SimTime first_data_time = 0;
    SimTime last_data_time = 0;
    bool fin_received = false;
  };

  TcpReceiver(sim::Simulation& sim, net::Host& host, std::uint16_t port,
              Config config);
  TcpReceiver(sim::Simulation& sim, net::Host& host, std::uint16_t port)
      : TcpReceiver(sim, host, port, Config{}) {}
  ~TcpReceiver();

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void on_packet(const net::Packet& pkt);

  void set_on_fin(std::function<void()> cb) { on_fin_ = std::move(cb); }

  const Stats& stats() const { return stats_; }
  std::uint64_t advertised_window() const;
  bool established() const { return established_; }

 private:
  void handle_syn(const net::Packet& pkt);
  void handle_data(const net::Packet& pkt);
  void send_ack();

  sim::Simulation& sim_;
  net::Host& host_;
  std::uint16_t port_;
  Config config_;
  Stats stats_;

  bool established_ = false;
  net::Ipv4Address peer_ip_ = 0;
  std::uint16_t peer_port_ = 0;
  std::uint32_t my_isn_ = 0;
  std::uint32_t peer_isn_ = 0;
  // rcv_next64_: count of in-order stream bytes consumed (offset 0 = first
  // data byte). Wire ack = peer_isn_ + 1 + low bits, +1 more once FIN is
  // consumed.
  std::uint64_t rcv_next64_ = 0;
  bool fin_acked_ = false;
  // Out-of-order intervals [start, end) in 64-bit offsets, disjoint,
  // all strictly above rcv_next64_.
  std::map<std::uint64_t, std::uint64_t> ooo_;
  std::uint64_t ooo_bytes_ = 0;
  // Start of the interval containing the most recently received segment;
  // RFC 2018 requires it as the first SACK block.
  std::uint64_t newest_interval_start_ = kNoInterval;
  // Rotation cursor so successive ACKs advertise different intervals.
  std::uint64_t sack_cursor_ = 0;
  static constexpr std::uint64_t kNoInterval = ~0ULL;

  std::function<void()> on_fin_;
};

}  // namespace p4s::tcp
