#include "tcp/sender.hpp"

#include <algorithm>
#include <cassert>

#include "tcp/seq.hpp"
#include "util/logging.hpp"

namespace p4s::tcp {

using net::tcpflags::kAck;
using net::tcpflags::kFin;
using net::tcpflags::kPsh;
using net::tcpflags::kSyn;

TcpSender::TcpSender(sim::Simulation& sim, net::Host& host,
                     net::Ipv4Address dst, std::uint16_t src_port,
                     std::uint16_t dst_port, Config config)
    : sim_(sim),
      host_(host),
      dst_ip_(dst),
      src_port_(src_port),
      dst_port_(dst_port),
      config_(std::move(config)),
      cc_(make_congestion_control(config_.congestion_control)),
      rtt_(config_.rtt) {
  cc_->init(config_.mss,
            static_cast<std::uint64_t>(config_.initial_cwnd_segments) *
                config_.mss);
  // Deterministic per-connection ISN derived from the 4-tuple.
  isn_ = (static_cast<std::uint32_t>(src_port_) << 16) ^ dst_port_ ^
         host_.ip() ^ (dst_ip_ << 7) ^ 0x5A5A5A5Au;
  host_.bind(net::Protocol::kTcp, src_port_,
             [this](const net::Packet& pkt) { on_packet(pkt); });
}

TcpSender::~TcpSender() {
  cancel_rto();
  host_.unbind(net::Protocol::kTcp, src_port_);
}

net::FiveTuple TcpSender::five_tuple() const {
  return net::FiveTuple{host_.ip(), dst_ip_, src_port_, dst_port_,
                        static_cast<std::uint8_t>(net::Protocol::kTcp)};
}

void TcpSender::start() {
  if (state_ != State::kIdle) return;
  stats_.start_time = sim_.now();
  tokens_refilled_at_ = sim_.now();
  send_syn();
}

void TcpSender::stop() {
  if (state_ == State::kClosed || stopping_) return;
  stopping_ = true;
  if (state_ == State::kEstablished) maybe_send_fin();
}

void TcpSender::send_syn() {
  state_ = State::kSynSent;
  net::Packet syn = net::make_tcp_packet(
      host_.ip(), dst_ip_, src_port_, dst_port_, isn_, 0, kSyn,
      /*payload=*/0, config_.advertised_window);
  host_.send(std::move(syn));
  arm_rto();
}

void TcpSender::on_packet(const net::Packet& pkt) {
  if (!pkt.is_tcp()) return;
  const net::TcpHeader& tcp = pkt.tcp();
  if (!tcp.has(kAck)) return;

  if (state_ == State::kSynSent) {
    if (tcp.has(kSyn) && tcp.ack == isn_ + 1) handle_syn_ack(pkt);
    return;
  }
  if (state_ == State::kEstablished || state_ == State::kFinSent) {
    handle_ack(pkt);
  }
}

void TcpSender::handle_syn_ack(const net::Packet& pkt) {
  state_ = State::kEstablished;
  stats_.established_time = sim_.now();
  snd_una_ = isn_ + 1;
  snd_nxt_ = isn_ + 1;
  una_off_ = 0;
  rwnd_ = pkt.tcp().window;
  cancel_rto();
  // The handshake RTT seeds the estimator (a retransmitted SYN would
  // inflate this one sample; it washes out).
  rtt_.add_sample(sim_.now() - stats_.start_time);
  try_send();
  if (stopping_ || config_.bytes_to_send != 0) maybe_send_fin();
}

// ---- SACK scoreboard ----------------------------------------------------

std::uint64_t TcpSender::offset_of(std::uint32_t seq) const {
  const auto rel =
      static_cast<std::int64_t>(static_cast<std::int32_t>(seq - snd_una_));
  const std::int64_t off = static_cast<std::int64_t>(una_off_) + rel;
  return off < 0 ? 0 : static_cast<std::uint64_t>(off);
}

std::uint32_t TcpSender::seq_of(std::uint64_t offset) const {
  return snd_una_ + static_cast<std::uint32_t>(offset - una_off_);
}

std::uint64_t TcpSender::merge_sack(const net::TcpHeader& tcp) {
  if (!config_.sack || tcp.sack_count == 0) return 0;
  const std::uint64_t before = sacked_bytes_;
  const std::uint64_t nxt = snd_nxt_off();
  for (std::uint8_t i = 0; i < tcp.sack_count; ++i) {
    std::uint64_t start = offset_of(tcp.sack[i].start);
    std::uint64_t end = offset_of(tcp.sack[i].end);
    start = std::max(start, una_off_);
    end = std::min(end, nxt);
    if (start >= end) continue;

    // Insert [start, end), merging overlaps.
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        sacked_bytes_ -= prev->second - prev->first;
        sacked_.erase(prev);
      }
    }
    it = sacked_.lower_bound(start);
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      sacked_bytes_ -= it->second - it->first;
      it = sacked_.erase(it);
    }
    sacked_[start] = end;
    sacked_bytes_ += end - start;
    highest_sacked_off_ = std::max(highest_sacked_off_, end);
  }
  return sacked_bytes_ - before;
}

std::uint64_t TcpSender::prune_sacked_below_una() {
  const std::uint64_t before = sacked_bytes_;
  auto it = sacked_.begin();
  while (it != sacked_.end() && it->first < una_off_) {
    if (it->second <= una_off_) {
      sacked_bytes_ -= it->second - it->first;
      it = sacked_.erase(it);
    } else {
      sacked_bytes_ -= una_off_ - it->first;
      sacked_[una_off_] = it->second;
      it = sacked_.erase(it);
      break;
    }
  }
  if (highest_sacked_off_ < una_off_) highest_sacked_off_ = una_off_;
  return before - sacked_bytes_;
}

void TcpSender::sack_retransmit() {
  if (!in_recovery_ || !config_.sack) return;
  if (retx_point_ < una_off_) retx_point_ = una_off_;
  // Bound the per-event burst: a real stack is ACK-clocked too.
  int budget = 64;
  while (budget-- > 0) {
    // Skip over SACKed ranges.
    auto it = sacked_.upper_bound(retx_point_);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > retx_point_) {
        retx_point_ = prev->second;
        continue;
      }
    }
    if (retx_point_ >= highest_sacked_off_) {
      // Every known hole was retransmitted once. If the cumulative ACK
      // still has not reached the recovery point, a retransmission was
      // itself lost: re-sweep the scoreboard, at most once per RTT (the
      // practical analogue of RFC 6675's rescue retransmission).
      if (una_off_ < recover_off_ && sim_.now() >= resweep_at_) {
        retx_point_ = una_off_;
        const SimTime rtt = rtt_.has_sample() ? rtt_.srtt()
                                              : units::milliseconds(100);
        resweep_at_ = sim_.now() + rtt;
        continue;
      }
      break;
    }
    if (pipe_bytes() + config_.mss > cc_->cwnd_bytes()) break;
    std::uint64_t hole_end = highest_sacked_off_;
    if (it != sacked_.end()) hole_end = std::min(hole_end, it->first);
    const std::uint64_t len64 =
        std::min<std::uint64_t>(config_.mss, hole_end - retx_point_);
    const auto len = static_cast<std::uint32_t>(len64);
    send_segment(seq_of(retx_point_), len, /*retransmit=*/true);
    retx_point_ += len;
  }
}

// ---- ACK processing ------------------------------------------------------

void TcpSender::handle_ack(const net::Packet& pkt) {
  const net::TcpHeader& tcp = pkt.tcp();
  const std::uint32_t ack = tcp.ack;
  rwnd_ = tcp.window;

  // FIN acknowledgment.
  if (state_ == State::kFinSent && ack == fin_seq_ + 1) {
    cancel_rto();
    finish();
    return;
  }

  if (seq_gt(ack, snd_nxt_)) {
    P4S_DEBUG() << "ack beyond snd_nxt ignored";
    return;
  }

  const std::uint64_t newly_sacked = merge_sack(tcp);

  if (seq_gt(ack, snd_una_)) {
    const std::uint64_t acked = static_cast<std::uint32_t>(ack - snd_una_);
    on_new_ack(ack, acked, newly_sacked);
  } else if (ack == snd_una_ && flight_bytes() > 0) {
    on_dup_ack();
    if (newly_sacked > 0 && cc_->wants_ack_in_recovery()) {
      // Model-based CCAs: SACKed bytes are deliveries even without a
      // cumulative advance.
      cc_->on_ack(newly_sacked, sim_.now(),
                  rtt_.has_sample() ? rtt_.srtt() : 0,
                  rtt_.has_sample() ? rtt_.min_rtt() : 0);
    }
  }

  if (config_.sack) {
    maybe_enter_recovery();
    sack_retransmit();
  }
  try_send();
  if (stopping_ || config_.bytes_to_send != 0) maybe_send_fin();
}

void TcpSender::on_new_ack(std::uint32_t ack, std::uint64_t acked_bytes,
                           std::uint64_t newly_sacked) {
  una_off_ += acked_bytes;
  snd_una_ = ack;
  stats_.bytes_acked += acked_bytes;
  dupacks_ = 0;
  const std::uint64_t previously_sacked = prune_sacked_below_una();
  // Bytes that left the network with THIS ack: the cumulative advance
  // minus what had already been SACKed, plus fresh SACKs above una.
  const std::uint64_t delivered =
      acked_bytes - std::min(acked_bytes, previously_sacked) + newly_sacked;

  // RTT sample (Karn: invalidated on any retransmission).
  if (rtt_sample_pending_ && seq_ge(ack, rtt_sample_end_)) {
    rtt_.add_sample(sim_.now() - rtt_sample_sent_at_);
    rtt_sample_pending_ = false;
  }

  retx_outstanding_ -= std::min(retx_outstanding_, acked_bytes);

  if (in_recovery_) {
    const bool done = config_.sack ? una_off_ >= recover_off_
                                   : seq_ge(ack, recover_);
    if (done) {
      exit_recovery();
    } else {
      if (!config_.sack) {
        // NewReno partial ACK: the next hole is lost too; retransmit it
        // and deflate the inflation by the amount acked.
        retransmit_one(snd_una_);
        recovery_inflation_ -=
            std::min<std::uint64_t>(recovery_inflation_, acked_bytes);
      }
      if (rto_recovery_ || cc_->wants_ack_in_recovery()) {
        // Timeout recovery runs in slow start (window regrows per ACK
        // while the holes refill); model-based CCAs additionally keep
        // their rate estimator fed through fast recovery.
        cc_->on_ack(delivered, sim_.now(),
                    rtt_.has_sample() ? rtt_.srtt() : 0,
                    rtt_.has_sample() ? rtt_.min_rtt() : 0);
      }
    }
  } else {
    cc_->on_ack(delivered, sim_.now(),
                rtt_.has_sample() ? rtt_.srtt() : 0,
                rtt_.has_sample() ? rtt_.min_rtt() : 0);
  }

  if (flight_bytes() > 0 || (fin_sent_ && state_ == State::kFinSent)) {
    arm_rto();
  } else {
    cancel_rto();
  }
}

void TcpSender::on_dup_ack() {
  ++stats_.duplicate_acks;
  if (in_recovery_) {
    if (!config_.sack) recovery_inflation_ += config_.mss;
    return;
  }
  ++dupacks_;
  if (!config_.sack && dupacks_ >= 3) maybe_enter_recovery();
}

void TcpSender::maybe_enter_recovery() {
  if (in_recovery_) return;
  const bool sack_trigger =
      config_.sack && sacked_bytes_ >= 3ULL * config_.mss;
  const bool dupack_trigger = dupacks_ >= 3;
  if (!sack_trigger && !dupack_trigger) return;

  in_recovery_ = true;
  rto_recovery_ = false;
  ++stats_.fast_recoveries;
  recover_ = snd_nxt_;
  recover_off_ = snd_nxt_off();
  retx_point_ = una_off_;
  retx_outstanding_ = 0;
  resweep_at_ = sim_.now() + (rtt_.has_sample() ? rtt_.srtt()
                                                : units::milliseconds(100));
  cc_->on_enter_recovery(flight_bytes(), sim_.now());
  if (config_.sack) {
    sack_retransmit();
  } else {
    recovery_inflation_ = 3ULL * config_.mss;
    retransmit_one(snd_una_);
  }
  arm_rto();
}

void TcpSender::exit_recovery() {
  const bool was_rto = rto_recovery_;
  in_recovery_ = false;
  rto_recovery_ = false;
  recovery_inflation_ = 0;
  retx_outstanding_ = 0;
  // After a timeout recovery the window has already regrown in slow
  // start; only fast recovery snaps back to ssthresh.
  if (!was_rto) cc_->on_exit_recovery(sim_.now());
}

void TcpSender::retransmit_one(std::uint32_t seq) {
  const std::uint32_t len =
      std::min<std::uint32_t>(config_.mss,
                              static_cast<std::uint32_t>(snd_nxt_ - seq));
  if (len == 0) return;
  send_segment(seq, len, /*retransmit=*/true);
}

// ---- Sending new data ----------------------------------------------------

bool TcpSender::window_allows(std::uint32_t seg_bytes) const {
  std::uint64_t cwnd = cc_->cwnd_bytes();
  std::uint64_t in_net;
  if (config_.sack) {
    in_net = pipe_bytes();
  } else {
    cwnd += recovery_inflation_;
    in_net = flight_bytes();
  }
  if (in_net + seg_bytes > cwnd) return false;
  return flight_bytes() + seg_bytes <= rwnd_;
}

std::uint32_t TcpSender::next_segment_size() const {
  if (config_.bytes_to_send == 0) {
    return stopping_ ? 0 : config_.mss;
  }
  if (stats_.new_data_bytes >= config_.bytes_to_send) return 0;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      config_.mss, config_.bytes_to_send - stats_.new_data_bytes));
}

void TcpSender::refill_tokens() {
  if (config_.rate_limit_bps == 0) return;
  const SimTime now = sim_.now();
  const double dt = units::to_seconds(now - tokens_refilled_at_);
  tokens_refilled_at_ = now;
  tokens_ += dt * static_cast<double>(config_.rate_limit_bps) / 8.0;
  // Cap the bucket to a few segments: keeps the sender paced rather than
  // bursting accumulated credit.
  const double cap = 4.0 * config_.mss;
  tokens_ = std::min(tokens_, cap);
}

void TcpSender::schedule_token_wakeup(std::uint32_t needed) {
  if (token_wakeup_armed_) return;
  token_wakeup_armed_ = true;
  const double deficit = static_cast<double>(needed) - tokens_;
  const double sec =
      deficit * 8.0 / static_cast<double>(config_.rate_limit_bps);
  sim_.after(std::max<SimTime>(units::seconds_f(sec), 1), [this]() {
    token_wakeup_armed_ = false;
    try_send();
    if (stopping_ || config_.bytes_to_send != 0) maybe_send_fin();
  });
}

void TcpSender::try_send() {
  if (state_ != State::kEstablished) return;
  while (true) {
    const std::uint32_t seg = next_segment_size();
    if (seg == 0) break;
    if (!window_allows(seg)) break;
    if (config_.rate_limit_bps != 0) {
      refill_tokens();
      if (tokens_ < static_cast<double>(seg)) {
        schedule_token_wakeup(seg);
        break;
      }
    }
    // Congestion-control pacing (BBR): a second bucket at the CC's
    // gain-cycled rate.
    const std::uint64_t pace_bps = cc_->pacing_rate_bps();
    if (pace_bps != 0) {
      const SimTime now = sim_.now();
      const double dt = units::to_seconds(now - cc_tokens_refilled_at_);
      cc_tokens_refilled_at_ = now;
      cc_tokens_ = std::min(cc_tokens_ +
                                dt * static_cast<double>(pace_bps) / 8.0,
                            4.0 * config_.mss);
      if (cc_tokens_ < static_cast<double>(seg)) {
        if (!cc_wakeup_armed_) {
          cc_wakeup_armed_ = true;
          const double deficit = static_cast<double>(seg) - cc_tokens_;
          const double sec =
              deficit * 8.0 / static_cast<double>(pace_bps);
          sim_.after(std::max<SimTime>(units::seconds_f(sec), 1),
                     [this]() {
                       cc_wakeup_armed_ = false;
                       try_send();
                       if (stopping_ || config_.bytes_to_send != 0) {
                         maybe_send_fin();
                       }
                     });
        }
        break;
      }
      cc_tokens_ -= static_cast<double>(seg);
    }
    if (config_.rate_limit_bps != 0) tokens_ -= static_cast<double>(seg);
    send_segment(snd_nxt_, seg, /*retransmit=*/false);
    snd_nxt_ += seg;
    stats_.new_data_bytes += seg;
  }
}

void TcpSender::send_segment(std::uint32_t seq, std::uint32_t len,
                             bool retransmit) {
  net::Packet pkt = net::make_tcp_packet(
      host_.ip(), dst_ip_, src_port_, dst_port_, seq, /*ack=*/0,
      static_cast<std::uint8_t>(kAck | kPsh), len,
      config_.advertised_window);
  ++stats_.segments_sent;
  stats_.bytes_sent += len;
  if (retransmit) {
    ++stats_.retransmitted_segments;
    stats_.retransmitted_bytes += len;
    retx_outstanding_ += len;
    rtt_sample_pending_ = false;  // Karn's rule
  } else if (!rtt_sample_pending_) {
    rtt_sample_pending_ = true;
    rtt_sample_end_ = seq + len;
    rtt_sample_sent_at_ = sim_.now();
  }
  host_.send(std::move(pkt));
  if (!rto_timer_.pending()) arm_rto();
}

void TcpSender::maybe_send_fin() {
  if (fin_sent_ || state_ != State::kEstablished) return;
  if (config_.bytes_to_send != 0 &&
      stats_.new_data_bytes < config_.bytes_to_send) {
    return;  // still data to push
  }
  if (flight_bytes() > 0) return;  // wait until everything is acked
  fin_sent_ = true;
  fin_seq_ = snd_nxt_;
  state_ = State::kFinSent;
  net::Packet fin = net::make_tcp_packet(
      host_.ip(), dst_ip_, src_port_, dst_port_, fin_seq_, 0,
      static_cast<std::uint8_t>(kFin | kAck), 0, config_.advertised_window);
  host_.send(std::move(fin));
  arm_rto();
}

// ---- Timers ----------------------------------------------------------------

void TcpSender::arm_rto() {
  cancel_rto();
  rto_timer_ = sim_.after(rtt_.rto(), [this]() { on_rto_expired(); });
}

void TcpSender::cancel_rto() { rto_timer_.cancel(); }

void TcpSender::on_rto_expired() {
  if (state_ == State::kClosed) return;
  ++stats_.rto_count;
  rtt_.backoff();
  if (state_ == State::kSynSent) {
    net::Packet syn = net::make_tcp_packet(
        host_.ip(), dst_ip_, src_port_, dst_port_, isn_, 0, kSyn, 0,
        config_.advertised_window);
    host_.send(std::move(syn));
    arm_rto();
    return;
  }
  if (state_ == State::kFinSent && flight_bytes() == 0) {
    net::Packet fin = net::make_tcp_packet(
        host_.ip(), dst_ip_, src_port_, dst_port_, fin_seq_, 0,
        static_cast<std::uint8_t>(kFin | kAck), 0,
        config_.advertised_window);
    host_.send(std::move(fin));
    arm_rto();
    return;
  }
  // Data timeout: collapse the window and restart in slow start. All
  // outstanding flight is presumed lost (RFC 6298 semantics): the
  // scoreboard is discarded and the whole window becomes "holes" that
  // timeout recovery refills, paced by the regrowing window.
  in_recovery_ = true;
  rto_recovery_ = true;
  recovery_inflation_ = 0;
  dupacks_ = 0;
  sacked_.clear();
  sacked_bytes_ = 0;
  recover_ = snd_nxt_;
  recover_off_ = snd_nxt_off();
  highest_sacked_off_ = snd_nxt_off();  // everything below is a hole
  retx_point_ = una_off_;
  retx_outstanding_ = 0;
  resweep_at_ = sim_.now() + (rtt_.has_sample() ? rtt_.srtt()
                                                : units::milliseconds(100));
  cc_->on_rto(sim_.now());
  if (config_.sack) {
    sack_retransmit();
  } else {
    retransmit_one(snd_una_);
  }
  arm_rto();
}

void TcpSender::finish() {
  state_ = State::kClosed;
  stats_.end_time = sim_.now();
  if (on_complete_) on_complete_();
}

}  // namespace p4s::tcp
