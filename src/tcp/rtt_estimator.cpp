#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace p4s::tcp {

void RttEstimator::add_sample(SimTime rtt) {
  backoff_shift_ = 0;
  if (!has_sample_) {
    has_sample_ = true;
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    min_rtt_ = rtt;
    return;
  }
  min_rtt_ = std::min(min_rtt_, rtt);
  // RFC 6298 with alpha=1/8, beta=1/4, in integer nanoseconds.
  const SimTime abs_err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
  rttvar_ = (3 * rttvar_ + abs_err) / 4;
  srtt_ = (7 * srtt_ + rtt) / 8;
}

void RttEstimator::backoff() {
  if (backoff_shift_ < 6) ++backoff_shift_;
}

SimTime RttEstimator::rto() const {
  SimTime base = config_.initial_rto;
  if (has_sample_) {
    base = srtt_ + std::max<SimTime>(4 * rttvar_, units::milliseconds(1));
  }
  base = std::clamp(base, config_.min_rto, config_.max_rto);
  const SimTime backed = base << backoff_shift_;
  return std::min(backed, config_.max_rto);
}

}  // namespace p4s::tcp
