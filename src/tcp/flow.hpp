// TcpFlow: a one-directional bulk TCP transfer between two hosts — the
// iPerf3-style workload every experiment in the paper runs. Owns the
// sender and receiver endpoints, wires their port bindings, and exposes
// the per-flow counters that the experiments (and the telemetry's ground
// truth) read.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/host.hpp"
#include "sim/simulation.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"

namespace p4s::tcp {

class TcpFlow {
 public:
  struct Config {
    TcpSender::Config sender;
    TcpReceiver::Config receiver;
    /// Destination port; 0 picks 5201 + flow index (iperf3 convention).
    std::uint16_t dst_port = 0;
    /// Source port; 0 allocates an ephemeral port on the source host.
    std::uint16_t src_port = 0;
  };

  TcpFlow(sim::Simulation& sim, net::Host& src, net::Host& dst,
          Config config);
  TcpFlow(sim::Simulation& sim, net::Host& src, net::Host& dst)
      : TcpFlow(sim, src, dst, Config{}) {}

  /// Schedule connection establishment at absolute time `at`.
  void start_at(SimTime at);
  /// Schedule a graceful stop (FIN) at absolute time `at`.
  void stop_at(SimTime at);

  void set_on_complete(std::function<void()> cb);

  TcpSender& sender() { return *sender_; }
  const TcpSender& sender() const { return *sender_; }
  TcpReceiver& receiver() { return *receiver_; }
  const TcpReceiver& receiver() const { return *receiver_; }

  net::FiveTuple five_tuple() const { return sender_->five_tuple(); }

  /// Receiver goodput averaged over the flow's own active interval, bps.
  double average_goodput_bps(SimTime now) const;

  bool complete() const {
    return sender_->state() == TcpSender::State::kClosed;
  }

 private:
  sim::Simulation& sim_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace p4s::tcp
