// Wrap-safe 32-bit sequence arithmetic (RFC 793 style) and 64-bit
// unwrapping. Science DMZ transfers exceed 4 GiB in seconds, so sequence
// numbers wrap during every experiment; all comparisons must be modular.
#pragma once

#include <cstdint>

namespace p4s::tcp {

/// a < b in sequence space (window < 2^31).
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

/// Recover the 64-bit stream offset whose low 32 bits equal `seq` and
/// which is closest to the 64-bit reference `ref`.
constexpr std::uint64_t seq_unwrap(std::uint64_t ref, std::uint32_t seq) {
  const std::uint64_t base = ref & ~0xFFFFFFFFULL;
  const std::uint64_t candidate = base | seq;
  // Choose among candidate - 2^32, candidate, candidate + 2^32 the one
  // nearest to ref.
  const std::int64_t diff =
      static_cast<std::int64_t>(candidate) - static_cast<std::int64_t>(ref);
  if (diff > static_cast<std::int64_t>(0x80000000LL)) {
    return candidate - 0x100000000ULL;
  }
  if (diff < -static_cast<std::int64_t>(0x80000000LL) &&
      candidate + 0x100000000ULL != 0) {
    return candidate + 0x100000000ULL;
  }
  return candidate;
}

}  // namespace p4s::tcp
