#include "tcp/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace p4s::tcp {

namespace {

class Reno final : public CongestionControl {
 public:
  void init(std::uint32_t mss, std::uint64_t initial_cwnd) override {
    mss_ = mss;
    cwnd_ = initial_cwnd;
    ssthresh_ = std::numeric_limits<std::uint64_t>::max();
  }

  void on_ack(std::uint64_t acked_bytes, SimTime /*now*/, SimTime /*srtt*/,
              SimTime /*min_rtt*/) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += acked_bytes;  // slow start: exponential per RTT
    } else {
      // Congestion avoidance: ~one MSS per RTT (per-ACK fraction).
      cwnd_ += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(mss_) * acked_bytes / cwnd_);
    }
  }

  void on_enter_recovery(std::uint64_t flight_bytes, SimTime) override {
    ssthresh_ = std::max<std::uint64_t>(flight_bytes / 2, 2ULL * mss_);
    cwnd_ = ssthresh_;
  }

  void on_exit_recovery(SimTime) override { cwnd_ = ssthresh_; }

  void on_rto(SimTime) override {
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ULL * mss_);
    cwnd_ = mss_;
  }

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  const char* name() const override { return "reno"; }

 private:
  std::uint32_t mss_ = 1460;
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();
};

// CUBIC per RFC 8312. Window arithmetic is done in MSS units (double) as
// in the RFC; the byte interface converts at the boundary.
class Cubic final : public CongestionControl {
 public:
  void init(std::uint32_t mss, std::uint64_t initial_cwnd) override {
    mss_ = mss;
    cwnd_mss_ = static_cast<double>(initial_cwnd) / mss_;
    ssthresh_mss_ = kInf;
    reset_epoch();
  }

  void on_ack(std::uint64_t acked_bytes, SimTime now, SimTime srtt,
              SimTime min_rtt) override {
    const double acked_mss = static_cast<double>(acked_bytes) / mss_;
    if (cwnd_mss_ < ssthresh_mss_) {
      cwnd_mss_ += acked_mss;  // slow start
      // HyStart-style delay-increase exit (Linux CUBIC default): once the
      // smoothed RTT has risen measurably above the path's minimum, the
      // pipe is full — stop doubling before a mass-drop overshoot.
      if (srtt > 0 && min_rtt > 0) {
        const SimTime budget =
            std::max<SimTime>(min_rtt / 8, units::milliseconds(4));
        if (srtt > min_rtt + budget) {
          ssthresh_mss_ = cwnd_mss_;
          epoch_start_ = 0;
          w_max_ = cwnd_mss_;
        }
      }
      return;
    }
    if (epoch_start_ == 0) {
      epoch_start_ = now;
      if (w_max_ <= 0.0) w_max_ = cwnd_mss_;
      k_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
      w_est_ = cwnd_mss_;
    }
    const double t = units::to_seconds(now - epoch_start_);
    const double rtt_s = std::max(1e-6, units::to_seconds(srtt));
    const double target = kC * std::pow(t - k_, 3.0) + w_max_;

    // TCP-friendly region (RFC 8312 §4.2): track what Reno would achieve.
    w_est_ += kRenoAlpha * acked_mss / cwnd_mss_;

    (void)rtt_s;
    double next = cwnd_mss_;
    if (target > cwnd_mss_) {
      // Concave/convex region, per-ACK form of RFC 8312 §4.1:
      // cwnd += (target - cwnd) / cwnd per acked MSS.
      next = cwnd_mss_ + (target - cwnd_mss_) / cwnd_mss_ * acked_mss;
    } else {
      // In the plateau: minimal growth keeps probing.
      next = cwnd_mss_ + 0.01 * acked_mss;
    }
    cwnd_mss_ = std::max(next, w_est_);
  }

  void on_enter_recovery(std::uint64_t flight_bytes, SimTime) override {
    const double flight_mss = static_cast<double>(flight_bytes) / mss_;
    // Fast convergence (RFC 8312 §4.6).
    if (flight_mss < w_max_) {
      w_max_ = flight_mss * (1.0 + kBeta) / 2.0;
    } else {
      w_max_ = flight_mss;
    }
    ssthresh_mss_ = std::max(flight_mss * kBeta, 2.0);
    cwnd_mss_ = ssthresh_mss_;
    epoch_start_ = 0;
  }

  void on_exit_recovery(SimTime) override { cwnd_mss_ = ssthresh_mss_; }

  void on_rto(SimTime) override {
    ssthresh_mss_ = std::max(cwnd_mss_ * kBeta, 2.0);
    w_max_ = cwnd_mss_;
    cwnd_mss_ = 1.0;
    epoch_start_ = 0;
  }

  std::uint64_t cwnd_bytes() const override {
    return static_cast<std::uint64_t>(cwnd_mss_ * mss_);
  }
  std::uint64_t ssthresh_bytes() const override {
    if (ssthresh_mss_ >= kInf) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return static_cast<std::uint64_t>(ssthresh_mss_ * mss_);
  }
  const char* name() const override { return "cubic"; }

 private:
  void reset_epoch() {
    epoch_start_ = 0;
    w_max_ = 0.0;
    k_ = 0.0;
    w_est_ = 0.0;
  }

  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;
  // Reno-equivalent AIMD increase with CUBIC's beta (RFC 8312 eq. 4).
  static constexpr double kRenoAlpha = 3.0 * (1.0 - kBeta) / (1.0 + kBeta);
  static constexpr double kInf = 1e18;

  std::uint32_t mss_ = 1460;
  double cwnd_mss_ = 10.0;
  double ssthresh_mss_ = kInf;
  double w_max_ = 0.0;
  double k_ = 0.0;
  double w_est_ = 0.0;
  SimTime epoch_start_ = 0;
};

// Simplified BBR (after BBRv1): model the path with two measurements —
// the bottleneck bandwidth (windowed max of per-ACK delivery rate) and
// the round-trip propagation delay (min RTT) — and pace at
// gain * btl_bw with cwnd = 2 * BDP. States: STARTUP (gain 2.89 until
// the bandwidth estimate plateaus) -> DRAIN -> PROBE_BW (8-phase gain
// cycle). PROBE_RTT is omitted (the simulated paths do not grow their
// min-RTT estimate stale within experiment timescales); documented here
// as the one deliberate simplification.
class Bbr final : public CongestionControl {
 public:
  void init(std::uint32_t mss, std::uint64_t initial_cwnd) override {
    mss_ = mss;
    cwnd_ = std::max<std::uint64_t>(initial_cwnd, 4ULL * mss);
  }

  void on_ack(std::uint64_t acked_bytes, SimTime now, SimTime /*srtt*/,
              SimTime min_rtt) override {
    if (min_rtt > 0) rt_prop_ = rt_prop_ ? std::min(rt_prop_, min_rtt)
                                         : min_rtt;
    // Delivery-rate sample over a full-RTT measurement window: per-ACK
    // gaps are dominated by ACK compression, and recovery's cumulative-
    // ACK jumps would read as absurd instantaneous rates; averaging over
    // an RTT approximates real BBR's per-packet delivery-rate sampler.
    if (rate_window_start_ == 0) rate_window_start_ = now;
    window_bytes_ += acked_bytes;
    const SimTime min_window = std::max<SimTime>(
        rt_prop_, units::milliseconds(1));
    if (now - rate_window_start_ >= min_window) {
      const double rate =
          static_cast<double>(window_bytes_) * 8e9 /
          static_cast<double>(now - rate_window_start_);
      update_max_filter(rate, now);
      window_bytes_ = 0;
      rate_window_start_ = now;
    }
    advance_state(now);

    const std::uint64_t bdp = bdp_bytes();
    switch (state_) {
      case State::kStartup:
        // Exponential growth; the pacing rate (2.89 x est. bandwidth)
        // throttles what actually enters the network.
        cwnd_ += acked_bytes;
        break;
      case State::kDrain:
      case State::kProbeBw:
        cwnd_ = std::max<std::uint64_t>(2 * bdp, 4ULL * mss_);
        break;
    }
  }

  void on_enter_recovery(std::uint64_t, SimTime) override {
    // BBRv1 famously ignores loss; that prolongs the 2.89x startup
    // overload when flows compete. Adopt BBRv2's startup refinement:
    // repeated loss episodes during STARTUP mean the pipe is full — move
    // on to DRAIN. Steady-state loss is still not a congestion signal.
    if (state_ == State::kStartup && ++startup_recoveries_ >= 4) {
      state_ = State::kDrain;
      full_bw_ = max_bw_;
    }
  }
  void on_exit_recovery(SimTime) override {}

  void on_rto(SimTime) override {
    // Timeout: restart the window conservatively but KEEP the path model
    // (real BBR's estimates only expire through their windowed filters;
    // discarding them here would re-run the 2.89x startup overshoot
    // after every timeout and loop the loss storm).
    cwnd_ = 4ULL * mss_;
    if (state_ == State::kStartup) return;  // loss-exit will advance it
    state_ = State::kProbeBw;
    cycle_index_ = 1;  // resume in the 0.75 (draining) phase
  }

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override {
    return std::numeric_limits<std::uint64_t>::max();
  }
  bool in_slow_start() const override {
    return state_ == State::kStartup;
  }
  std::uint64_t pacing_rate_bps() const override {
    if (max_bw_ <= 0.0) return 0;  // unpaced until the first estimate
    return static_cast<std::uint64_t>(pacing_gain() * max_bw_);
  }
  bool wants_ack_in_recovery() const override { return true; }
  const char* name() const override { return "bbr"; }

 private:
  enum class State { kStartup, kDrain, kProbeBw };

  static constexpr double kHighGain = 2.885;
  static constexpr double kDrainGain = 1.0 / 2.885;
  static constexpr double kCycle[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};

  double pacing_gain() const {
    switch (state_) {
      case State::kStartup: return kHighGain;
      case State::kDrain: return kDrainGain;
      case State::kProbeBw: return kCycle[cycle_index_];
    }
    return 1.0;
  }

  std::uint64_t bdp_bytes() const {
    if (max_bw_ <= 0.0 || rt_prop_ == 0) return 10ULL * mss_;
    return static_cast<std::uint64_t>(max_bw_ *
                                      units::to_seconds(rt_prop_) / 8.0);
  }

  void update_max_filter(double rate, SimTime now) {
    // Windowed max over ~10 rt_prop.
    const SimTime window = rt_prop_ ? 10 * rt_prop_ : units::seconds(1);
    if (rate >= max_bw_ || now - max_bw_at_ > window) {
      max_bw_ = rate;
      max_bw_at_ = now;
    }
  }

  void advance_state(SimTime now) {
    const SimTime round = rt_prop_ ? rt_prop_ : units::milliseconds(100);
    if (now - round_start_ < round) return;
    round_start_ = now;
    switch (state_) {
      case State::kStartup:
        // Exit when bandwidth stops growing 25% per round for 3 rounds.
        if (max_bw_ < full_bw_ * 1.25) {
          if (++full_bw_rounds_ >= 3) state_ = State::kDrain;
        } else {
          full_bw_ = max_bw_;
          full_bw_rounds_ = 0;
        }
        break;
      case State::kDrain:
        // Hold the drain gain until the startup overshoot has left the
        // queue (three rounds at ~1/3 of the bottleneck rate drain more
        // than any 2.89x startup excess).
        if (++drain_rounds_ >= 3) {
          state_ = State::kProbeBw;
          cycle_index_ = 0;
        }
        break;
      case State::kProbeBw:
        cycle_index_ = (cycle_index_ + 1) % 8;
        break;
    }
  }

  std::uint32_t mss_ = 1460;
  std::uint64_t cwnd_ = 0;
  State state_ = State::kStartup;
  double max_bw_ = 0.0;      // bits per second
  SimTime max_bw_at_ = 0;
  std::uint64_t window_bytes_ = 0;
  SimTime rate_window_start_ = 0;
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  int startup_recoveries_ = 0;
  int drain_rounds_ = 0;
  SimTime rt_prop_ = 0;
  SimTime round_start_ = 0;
  int cycle_index_ = 0;
};

constexpr double Bbr::kCycle[8];

}  // namespace

std::unique_ptr<CongestionControl> make_congestion_control(
    const std::string& name) {
  if (name == "reno") return std::make_unique<Reno>();
  if (name == "cubic") return std::make_unique<Cubic>();
  if (name == "bbr") return std::make_unique<Bbr>();
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace p4s::tcp
