// TCP sender endpoint.
//
// Implements the sender side of a one-directional bulk transfer (the DTN
// workload): three-way-handshake initiation, SACK-based loss recovery
// (RFC 2018/6675-style scoreboard — what real DTN stacks run; NewReno
// partial-ACK recovery is available with sack=false for ablation), RFC
// 6298 RTO with Karn's rule, receive-window limiting, and optional
// application rate limiting via a token bucket (the paper's
// "sender-limited" case, §5.4.2).
//
// Wire sequence numbers are wrap-safe 32-bit; the SACK scoreboard and
// byte totals are kept in 64-bit stream offsets (offset 0 = first data
// byte), converted at the header boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion.hpp"
#include "tcp/rtt_estimator.hpp"

namespace p4s::tcp {

class TcpSender {
 public:
  struct Config {
    std::uint32_t mss = 1460;
    std::string congestion_control = "cubic";
    std::uint64_t initial_cwnd_segments = 10;
    /// SACK-based recovery (default, matches modern stacks). false falls
    /// back to NewReno partial-ACK recovery.
    bool sack = true;
    /// Application rate limit in bits/s; 0 = always backlogged.
    std::uint64_t rate_limit_bps = 0;
    /// Total application bytes to transfer; 0 = unbounded until stop().
    std::uint64_t bytes_to_send = 0;
    /// Window we advertise on our own packets (we receive only ACKs, so
    /// this only matters for wire realism).
    std::uint32_t advertised_window = 1 << 20;
    RttEstimator::Config rtt;
  };

  struct Stats {
    SimTime start_time = 0;
    SimTime established_time = 0;
    SimTime end_time = 0;
    std::uint64_t bytes_sent = 0;  // includes retransmissions
    std::uint64_t new_data_bytes = 0;
    std::uint64_t bytes_acked = 0;
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmitted_segments = 0;
    std::uint64_t retransmitted_bytes = 0;
    std::uint64_t duplicate_acks = 0;
    std::uint64_t fast_recoveries = 0;
    std::uint64_t rto_count = 0;
  };

  enum class State { kIdle, kSynSent, kEstablished, kFinSent, kClosed };

  TcpSender(sim::Simulation& sim, net::Host& host, net::Ipv4Address dst,
            std::uint16_t src_port, std::uint16_t dst_port, Config config);
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Initiate the connection (sends SYN).
  void start();

  /// Stop offering new application data; closes with FIN once all
  /// outstanding data is acknowledged.
  void stop();

  /// Deliver a packet addressed to this connection (the host's demux
  /// calls this).
  void on_packet(const net::Packet& pkt);

  void set_on_complete(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  State state() const { return state_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  std::uint64_t flight_bytes() const {
    return static_cast<std::uint32_t>(snd_nxt_ - snd_una_);
  }
  std::uint64_t rwnd_bytes() const { return rwnd_; }
  bool in_recovery() const { return in_recovery_; }
  const RttEstimator& rtt() const { return rtt_; }
  const CongestionControl& congestion() const { return *cc_; }
  net::FiveTuple five_tuple() const;

 private:
  void send_syn();
  void handle_syn_ack(const net::Packet& pkt);
  void handle_ack(const net::Packet& pkt);
  void on_new_ack(std::uint32_t ack, std::uint64_t acked_bytes,
                  std::uint64_t newly_sacked);
  void on_dup_ack();
  void maybe_enter_recovery();
  void exit_recovery();
  void retransmit_one(std::uint32_t seq);
  void try_send();
  bool window_allows(std::uint32_t seg_bytes) const;
  std::uint32_t next_segment_size() const;
  void send_segment(std::uint32_t seq, std::uint32_t len, bool retransmit);
  void maybe_send_fin();
  void arm_rto();
  void cancel_rto();
  void on_rto_expired();
  void refill_tokens();
  void schedule_token_wakeup(std::uint32_t needed);
  void finish();

  // ---- SACK scoreboard (stream offsets) -------------------------------
  std::uint64_t snd_nxt_off() const { return una_off_ + flight_bytes(); }
  std::uint64_t offset_of(std::uint32_t seq) const;
  std::uint32_t seq_of(std::uint64_t offset) const;
  /// Returns the number of newly SACKed bytes (fresh deliveries).
  std::uint64_t merge_sack(const net::TcpHeader& tcp);
  /// Returns the bytes removed that lay below the new una (the portion
  /// of the cumulative advance that had already been SACKed).
  std::uint64_t prune_sacked_below_una();
  /// In-flight bytes still assumed to occupy the network (RFC 6675 pipe,
  /// simplified): bytes above the highest SACKed offset (presumed
  /// delivered or in transit) plus our outstanding retransmissions.
  /// Unsacked holes below the highest SACK are treated as lost — this is
  /// what lets recovery proceed after a mass-drop episode.
  std::uint64_t pipe_bytes() const {
    const std::uint64_t nxt = snd_nxt_off();
    const std::uint64_t above =
        nxt > highest_sacked_off_ ? nxt - highest_sacked_off_ : 0;
    return above + retx_outstanding_;
  }
  void sack_retransmit();

  sim::Simulation& sim_;
  net::Host& host_;
  net::Ipv4Address dst_ip_;
  std::uint16_t src_port_;
  std::uint16_t dst_port_;
  Config config_;
  Stats stats_;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;

  State state_ = State::kIdle;
  std::uint32_t isn_ = 0;
  // Wire sequence numbers. snd_una_ <= snd_nxt_ in sequence space; the
  // distance (flight) never exceeds the receive window < 2^31.
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t rwnd_ = 0;
  bool stopping_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Loss recovery.
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;              // NewReno recovery point (wire)
  std::uint64_t recover_off_ = 0;          // SACK recovery point (offset)
  std::uint64_t recovery_inflation_ = 0;   // NewReno cwnd inflation

  // SACK scoreboard: disjoint [start, end) intervals in stream offsets,
  // all above una_off_.
  std::uint64_t una_off_ = 0;  // stream offset of snd_una_
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::uint64_t sacked_bytes_ = 0;
  std::uint64_t highest_sacked_off_ = 0;
  std::uint64_t retx_point_ = 0;  // next hole to retransmit this recovery
  std::uint64_t retx_outstanding_ = 0;  // retransmitted, not yet cum-acked
  bool rto_recovery_ = false;  // recovery entered via timeout (slow start)
  SimTime resweep_at_ = 0;     // earliest time for a scoreboard re-sweep

  // RTT sampling (one in flight, Karn-invalidated on any retransmit).
  bool rtt_sample_pending_ = false;
  std::uint32_t rtt_sample_end_ = 0;
  SimTime rtt_sample_sent_at_ = 0;

  // Application token bucket (rate_limit_bps > 0).
  double tokens_ = 0.0;
  SimTime tokens_refilled_at_ = 0;
  bool token_wakeup_armed_ = false;

  // Congestion-control pacing bucket (cc_->pacing_rate_bps() > 0; BBR).
  double cc_tokens_ = 0.0;
  SimTime cc_tokens_refilled_at_ = 0;
  bool cc_wakeup_armed_ = false;

  sim::EventHandle rto_timer_;
  std::function<void()> on_complete_;
};

}  // namespace p4s::tcp
