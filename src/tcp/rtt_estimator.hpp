// RFC 6298 smoothed RTT estimation and retransmission-timeout computation.
#pragma once

#include "util/units.hpp"

namespace p4s::tcp {

class RttEstimator {
 public:
  struct Config {
    SimTime min_rto = units::milliseconds(200);
    SimTime max_rto = units::seconds(60);
    SimTime initial_rto = units::seconds(1);
  };

  explicit RttEstimator(Config config) : config_(config) {}
  RttEstimator() : RttEstimator(Config{}) {}

  /// Feed one RTT sample (from a never-retransmitted segment — Karn's
  /// algorithm is enforced by the caller).
  void add_sample(SimTime rtt);

  /// Exponential backoff after a retransmission timeout.
  void backoff();

  bool has_sample() const { return has_sample_; }
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  SimTime min_rtt() const { return min_rtt_; }
  SimTime rto() const;

 private:
  Config config_;
  bool has_sample_ = false;
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  SimTime min_rtt_ = 0;
  unsigned backoff_shift_ = 0;
};

}  // namespace p4s::tcp
