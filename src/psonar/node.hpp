// PerfSonarNode: one deployed perfSONAR instance (Figure 2) — the
// archiver (OpenSearch), the Logstash pipeline in front of it, the
// pScheduler running active tests from this node's host, and the
// pSConfig layer (with config-P4) that can drive a P4 switch's control
// plane.
#pragma once

#include <memory>
#include <string>

#include "net/host.hpp"
#include "psonar/archiver.hpp"
#include "psonar/logstash.hpp"
#include "psonar/psconfig.hpp"
#include "psonar/pscheduler.hpp"
#include "sim/simulation.hpp"

namespace p4s::ps {

class PerfSonarNode {
 public:
  PerfSonarNode(sim::Simulation& sim, net::Host& host)
      : host_(host),
        logstash_(archiver_),
        scheduler_(sim, logstash_),
        tcp_sink_(logstash_) {}

  PerfSonarNode(const PerfSonarNode&) = delete;
  PerfSonarNode& operator=(const PerfSonarNode&) = delete;

  net::Host& host() { return host_; }
  Archiver& archiver() { return archiver_; }
  Logstash& logstash() { return logstash_; }
  PScheduler& scheduler() { return scheduler_; }
  PsConfig& psconfig() { return psconfig_; }

  /// The ReportSink end of the control-plane -> Logstash TCP connection.
  cp::ReportSink& report_sink() { return tcp_sink_; }

 private:
  net::Host& host_;
  Archiver archiver_;
  Logstash logstash_;
  PScheduler scheduler_;
  PsConfig psconfig_;
  LogstashTcpSink tcp_sink_;
};

}  // namespace p4s::ps
