#include "psonar/store_backend.hpp"

namespace p4s::ps {

void snapshot_for_each(const store::Snapshot& snapshot,
                       const std::string& index_name,
                       const ArchiverQuery& query,
                       const std::function<bool(const util::Json&)>& visit) {
  store::ScanOptions options;
  options.range_field = query.range_field;
  options.range_min = query.range_min;
  options.range_max = query.range_max;
  options.newest_first = query.newest_first;
  for (const auto& [path, value] : query.terms) {
    // Only scalar terms have bloom/posting keys; object/array terms
    // simply don't prune (the predicate below still filters them).
    if (!value.is_object() && !value.is_array()) {
      options.term_keys.push_back(store::term_key(path, value));
    }
  }
  std::size_t matched = 0;
  snapshot.scan(index_name, options, [&](const util::Json& doc) {
    if (!archiver_query_matches(doc, query)) return true;
    ++matched;
    if (!visit(doc)) return false;
    return query.limit == 0 || matched < query.limit;
  });
}

std::optional<ArchiverAggregation> snapshot_aggregate_fast(
    const store::Snapshot& snapshot, const std::string& index_name,
    const std::string& field, const ArchiverQuery& query) {
  // The columnar path can't apply term filters or honor a limit; those
  // queries fall back to the generic scan-based aggregation.
  if (!query.terms.empty() || query.limit != 0) return std::nullopt;
  const auto agg = snapshot.aggregate_column(index_name, field,
                                             query.range_field,
                                             query.range_min, query.range_max);
  if (!agg.has_value()) return std::nullopt;
  ArchiverAggregation out;
  out.count = agg->count;
  out.min = agg->min;
  out.max = agg->max;
  out.sum = agg->sum;
  if (out.count > 0) out.avg = out.sum / static_cast<double>(out.count);
  return out;
}

void StoreBackend::for_each(
    const std::string& index_name, const ArchiverQuery& query,
    const std::function<bool(const util::Json&)>& visit) const {
  snapshot_for_each(store_.snapshot(), index_name, query, visit);
}

std::optional<ArchiverAggregation> StoreBackend::aggregate_fast(
    const std::string& index_name, const std::string& field,
    const ArchiverQuery& query) const {
  return snapshot_aggregate_fast(store_.snapshot(), index_name, field, query);
}

}  // namespace p4s::ps
