// MaDDash emulation — the Monitoring and Debugging Dashboard from the
// perfSONAR suite (Figure 2). MaDDash renders a src x dst grid per
// measurement type, coloring each cell by threshold checks against the
// archived results. This implementation builds those grids straight from
// the archiver's pscheduler indices and renders them as text.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "psonar/archiver.hpp"

namespace p4s::ps {

class MadDash {
 public:
  enum class Status { kOk, kWarn, kCritical, kNoData };

  struct Cell {
    Status status = Status::kNoData;
    double value = 0.0;  // latest archived value for the pair
    std::uint64_t samples = 0;
  };

  struct Grid {
    std::string title;
    std::string unit;
    std::vector<std::string> rows;  // sources
    std::vector<std::string> cols;  // destinations
    std::map<std::pair<std::string, std::string>, Cell> cells;

    const Cell* cell(const std::string& src, const std::string& dst) const {
      auto it = cells.find({src, dst});
      return it == cells.end() ? nullptr : &it->second;
    }
  };

  explicit MadDash(const Archiver& archiver) : archiver_(archiver) {}

  /// Throughput grid from "pscheduler-throughput": ok when the latest
  /// average is >= `warn_below_bps`, warn when >= `crit_below_bps`,
  /// critical below that.
  Grid throughput_grid(double warn_below_bps, double crit_below_bps) const;

  /// Loss grid from "pscheduler-latency" (ping): percentage of lost
  /// echoes; ok below warn, critical above crit.
  Grid loss_grid(double warn_above_pct, double crit_above_pct) const;

  /// One-way-delay grid from "pscheduler-latencybg" (owping): mean OWD in
  /// ms with thresholds above which the pair warns / goes critical.
  Grid owd_grid(double warn_above_ms, double crit_above_ms) const;

  /// Per-site P4 throughput grid from "p4sonar-throughput": one row per
  /// monitored switch (the report's "switch_id"; untagged legacy reports
  /// show as "core"), one column per flow destination. Thresholds as in
  /// throughput_grid().
  Grid site_grid(double warn_below_bps, double crit_below_bps) const;

  /// Render a grid as an aligned ASCII table with status glyphs
  /// (OK / WARN / CRIT / '-').
  static void render(const Grid& grid, std::ostream& out);

  static const char* status_name(Status status);

 private:
  template <typename Classify>
  Grid build(const std::string& index, const std::string& field,
             const std::string& title, const std::string& unit,
             Classify&& classify) const;

  const Archiver& archiver_;
};

}  // namespace p4s::ps
