// StoreServer: a thread-safe, high-QPS query front end for the durable
// store.
//
// Every query pins its own store::Snapshot, so it sees one frozen,
// consistent view for its whole lifetime while the single writer keeps
// appending, sealing, and compacting underneath. Two ways in:
//
//   - Synchronous: search()/aggregate()/latest_value() run on the
//     calling thread. Safe to call from any number of threads at once.
//   - Asynchronous: submit_search()/submit_aggregate()/submit_latest()
//     enqueue the query onto a fixed pool of reader threads
//     (StoreServerConfig::reader_threads, the "serving" config section)
//     and return a std::future.
//
// Results match ps::Archiver over a StoreBackend query for query —
// search is Archiver::search, aggregate is Archiver::aggregate with the
// same columnar fast path, latest_value is the newest-first/size-1
// OpenSearch idiom — because all of them run through the same
// snapshot_for_each/snapshot_aggregate_fast translation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "psonar/store_backend.hpp"
#include "store/store.hpp"

namespace p4s::ps {

struct StoreServerConfig {
  /// Reader threads serving the async API. 0 = no pool; submit_* runs
  /// the query inline on the submitting thread (still snapshot-pinned).
  std::size_t reader_threads = 4;
};

struct StoreServerStats {
  std::uint64_t searches = 0;
  std::uint64_t aggregates = 0;
  std::uint64_t latest_queries = 0;
  /// Queries that went through the reader pool (subset of the above).
  std::uint64_t async_queries = 0;
  std::uint64_t reader_threads = 0;
};

class StoreServer {
 public:
  /// Non-owning: the store must outlive the server (MonitoringSystem
  /// owns both, store first).
  explicit StoreServer(store::Store& store, StoreServerConfig config = {});
  ~StoreServer();

  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  const StoreServerConfig& config() const { return config_; }

  // ---- synchronous API (any thread) -----------------------------------

  std::vector<util::Json> search(const std::string& index_name,
                                 const ArchiverQuery& query = {}) const;

  ArchiverAggregation aggregate(const std::string& index_name,
                                const std::string& field,
                                const ArchiverQuery& query = {}) const;

  /// Newest matching document's `field` (the dashboards' latest-value
  /// idiom: newest_first, size 1). nullopt when nothing matches or the
  /// newest match lacks the field.
  std::optional<util::Json> latest_value(const std::string& index_name,
                                         const std::string& field,
                                         const ArchiverQuery& query = {}) const;

  // ---- asynchronous API (reader pool) ---------------------------------

  std::future<std::vector<util::Json>> submit_search(
      const std::string& index_name, const ArchiverQuery& query = {}) const;

  std::future<ArchiverAggregation> submit_aggregate(
      const std::string& index_name, const std::string& field,
      const ArchiverQuery& query = {}) const;

  std::future<std::optional<util::Json>> submit_latest(
      const std::string& index_name, const std::string& field,
      const ArchiverQuery& query = {}) const;

  StoreServerStats stats() const;

 private:
  void worker_loop();
  void enqueue(std::function<void()> task) const;

  store::Store& store_;
  StoreServerConfig config_;

  mutable std::atomic<std::uint64_t> searches_{0};
  mutable std::atomic<std::uint64_t> aggregates_{0};
  mutable std::atomic<std::uint64_t> latest_queries_{0};
  mutable std::atomic<std::uint64_t> async_queries_{0};

  mutable std::mutex queue_mu_;
  mutable std::condition_variable queue_cv_;
  mutable std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> readers_;
};

}  // namespace p4s::ps
