#include "psonar/pscheduler.hpp"

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

namespace p4s::ps {

void PScheduler::schedule_throughput(net::Host& src, net::Host& dst,
                                     const ThroughputTask& task) {
  sim_.at(task.start,
          [this, &src, &dst, task]() { run_throughput(src, dst, task); });
  if (task.repeat_interval > 0) {
    ThroughputTask next = task;
    next.start = task.start + task.repeat_interval;
    sim_.at(task.start, [this, &src, &dst, next]() {
      schedule_throughput(src, dst, next);
    });
  }
}

void PScheduler::run_throughput(net::Host& src, net::Host& dst,
                                ThroughputTask task) {
  tcp::TcpFlow::Config config;
  config.sender = task.sender;
  auto flow = std::make_unique<tcp::TcpFlow>(sim_, src, dst, config);
  tcp::TcpFlow* raw = flow.get();
  const SimTime begin = sim_.now();
  const std::string src_name = src.name();
  const std::string dst_name = dst.name();

  raw->set_on_complete([this, raw, begin, src_name, dst_name]() {
    ThroughputResult r;
    r.src = src_name;
    r.dst = dst_name;
    r.start = begin;
    r.end = sim_.now();
    r.bytes = raw->receiver().stats().goodput_bytes;
    r.retransmits = raw->sender().stats().retransmitted_segments;
    const double secs = units::to_seconds(r.end - r.start);
    if (secs > 0.0) {
      r.avg_throughput_bps = static_cast<double>(r.bytes) * 8.0 / secs;
    }
    throughput_results_.push_back(r);
    report_throughput(r);
  });
  raw->start_at(sim_.now());
  raw->stop_at(sim_.now() + task.duration);
  active_flows_.push_back(std::move(flow));
}

void PScheduler::report_throughput(const ThroughputResult& r) {
  util::Json doc = util::Json::object();
  doc["report"] = "throughput";
  doc["tool"] = "iperf3";
  doc["source"] = r.src;
  doc["destination"] = r.dst;
  doc["ts_ns"] = static_cast<std::int64_t>(r.end);
  // Default perfSONAR granularity: the average, nothing else (§2.3).
  doc["throughput_bps"] = r.avg_throughput_bps;
  logstash_.event(std::move(doc));
}

void PScheduler::schedule_latency(net::Host& src, net::Host& dst,
                                  const LatencyTask& task) {
  sim_.at(task.start,
          [this, &src, &dst, task]() { run_latency(src, dst, task); });
  if (task.repeat_interval > 0) {
    LatencyTask next = task;
    next.start = task.start + task.repeat_interval;
    sim_.at(task.start, [this, &src, &dst, next]() {
      schedule_latency(src, dst, next);
    });
  }
}

void PScheduler::run_latency(net::Host& src, net::Host& dst,
                             LatencyTask task) {
  struct PingState {
    std::vector<SimTime> sent_at;
    std::vector<SimTime> rtts;
  };
  auto state = std::make_shared<PingState>();
  state->sent_at.resize(static_cast<std::size_t>(task.count), 0);
  const std::uint16_t ident = next_icmp_ident_++;
  const SimTime begin = sim_.now();

  src.bind(net::Protocol::kIcmp, ident,
           [this, state](const net::Packet& pkt) {
             const auto seq = pkt.icmp().seq;
             if (seq < state->sent_at.size() && state->sent_at[seq] != 0) {
               state->rtts.push_back(sim_.now() - state->sent_at[seq]);
               state->sent_at[seq] = 0;  // ignore duplicated replies
             }
           });

  for (int i = 0; i < task.count; ++i) {
    sim_.after(task.spacing * static_cast<std::uint64_t>(i),
               [&src, &dst, ident, i, state, task, this]() {
                 state->sent_at[static_cast<std::size_t>(i)] = sim_.now();
                 src.send(net::make_icmp_packet(
                     src.ip(), dst.ip(), /*type=*/8, ident,
                     static_cast<std::uint16_t>(i), task.payload_bytes));
               });
  }

  const SimTime finish = task.spacing * static_cast<std::uint64_t>(
                                            std::max(0, task.count - 1)) +
                         task.timeout;
  sim_.after(finish, [this, state, task, begin, ident, &src, &dst]() {
    src.unbind(net::Protocol::kIcmp, ident);
    LatencyResult r;
    r.src = src.name();
    r.dst = dst.name();
    r.start = begin;
    r.end = sim_.now();
    r.sent = task.count;
    r.received = static_cast<int>(state->rtts.size());
    if (!state->rtts.empty()) {
      SimTime mn = state->rtts.front(), mx = state->rtts.front();
      double sum = 0.0;
      for (SimTime rtt : state->rtts) {
        mn = std::min(mn, rtt);
        mx = std::max(mx, rtt);
        sum += static_cast<double>(rtt);
      }
      r.min_rtt_ms = units::to_milliseconds(mn);
      r.max_rtt_ms = units::to_milliseconds(mx);
      r.mean_rtt_ms =
          sum / static_cast<double>(state->rtts.size()) / 1e6;
    }
    latency_results_.push_back(r);
    report_latency(r);
  });
}

void PScheduler::schedule_traceroute(net::Host& src, net::Host& dst,
                                     const TracerouteTask& task) {
  sim_.at(task.start,
          [this, &src, &dst, task]() { run_traceroute(src, dst, task); });
  if (task.repeat_interval > 0) {
    TracerouteTask next = task;
    next.start = task.start + task.repeat_interval;
    sim_.at(task.start, [this, &src, &dst, next]() {
      schedule_traceroute(src, dst, next);
    });
  }
}

void PScheduler::run_traceroute(net::Host& src, net::Host& dst,
                                TracerouteTask task) {
  struct State {
    TracerouteResult result;
    int current_ttl = 0;
    bool answered = false;
    SimTime probe_sent = 0;
  };
  auto state = std::make_shared<State>();
  state->result.src = src.name();
  state->result.dst = dst.name();
  const std::uint16_t ident = next_icmp_ident_++;

  // probe() is self-rescheduling; it stores only a WEAK reference to
  // itself (the strong reference lives in the host's handler binding) to
  // avoid a closure cycle. finish() defers the unbind by one event so a
  // handler is never destroyed while it is executing.
  auto probe = std::make_shared<std::function<void()>>();
  auto finish = [this, state, ident, &src]() {
    state->result.end = sim_.now();
    sim_.after(1, [this, state, ident, &src]() {
      src.unbind(net::Protocol::kIcmp, ident);
      traceroute_results_.push_back(state->result);
      report_traceroute(state->result);
    });
  };

  *probe = [this, state, ident, &src, &dst, task, finish,
            wp = std::weak_ptr<std::function<void()>>(probe)]() {
    if (state->result.reached || state->current_ttl >= task.max_hops) {
      finish();
      return;
    }
    ++state->current_ttl;
    state->answered = false;
    state->probe_sent = sim_.now();
    net::Packet p = net::make_icmp_packet(
        src.ip(), dst.ip(), /*type=*/8, ident,
        static_cast<std::uint16_t>(state->current_ttl), 28);
    p.ip.ttl = static_cast<std::uint8_t>(state->current_ttl);
    src.send(std::move(p));
    // Timeout: mark the hop silent and move on.
    sim_.after(task.probe_timeout, [state, wp, ttl = state->current_ttl]() {
      if (state->answered || state->result.reached) return;
      if (state->current_ttl != ttl) return;  // already moved on
      state->result.hops.push_back(TracerouteHop{});
      if (auto p = wp.lock()) (*p)();
    });
  };

  src.bind(net::Protocol::kIcmp, ident,
           [this, state, probe](const net::Packet& pkt) {
             if (state->answered || state->result.reached) return;
             const auto& icmp = pkt.icmp();
             if (icmp.type != 11 && icmp.type != 0) return;
             if (icmp.seq != state->current_ttl) return;  // stale probe
             state->answered = true;
             TracerouteHop hop;
             hop.addr = pkt.ip.src;
             hop.replied = true;
             hop.rtt_ms = units::to_milliseconds(sim_.now() -
                                                 state->probe_sent);
             state->result.hops.push_back(hop);
             if (icmp.type == 0) state->result.reached = true;
             (*probe)();
           });
  (*probe)();
}

void PScheduler::report_traceroute(const TracerouteResult& r) {
  util::Json doc = util::Json::object();
  doc["report"] = "trace";
  doc["tool"] = "traceroute";
  doc["source"] = r.src;
  doc["destination"] = r.dst;
  doc["ts_ns"] = static_cast<std::int64_t>(r.end);
  doc["reached"] = r.reached;
  util::Json hops = util::Json::array();
  for (const auto& hop : r.hops) {
    util::Json h = util::Json::object();
    h["addr"] = hop.replied ? net::to_string(hop.addr) : "*";
    h["rtt_ms"] = hop.rtt_ms;
    hops.as_array().push_back(std::move(h));
  }
  doc["hops"] = std::move(hops);
  logstash_.event(std::move(doc));
}

void PScheduler::schedule_udp_stream(net::Host& src, net::Host& dst,
                                     const UdpStreamTask& task) {
  sim_.at(task.start,
          [this, &src, &dst, task]() { run_udp_stream(src, dst, task); });
  if (task.repeat_interval > 0) {
    UdpStreamTask next = task;
    next.start = task.start + task.repeat_interval;
    sim_.at(task.start, [this, &src, &dst, next]() {
      schedule_udp_stream(src, dst, next);
    });
  }
}

void PScheduler::run_udp_stream(net::Host& src, net::Host& dst,
                                UdpStreamTask task) {
  struct State {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t out_of_order = 0;
    std::uint32_t highest_seq = 0;
    util::RunningStats owd_ms;
    double jitter_ns = 0.0;
    SimTime prev_transit = 0;
    bool have_prev = false;
  };
  auto state = std::make_shared<State>();
  const std::uint16_t dport = next_udp_port_++;
  const std::uint16_t sport = src.allocate_port();
  const SimTime begin = sim_.now();

  dst.bind(net::Protocol::kUdp, dport,
           [this, state](const net::Packet& pkt) {
             ++state->received;
             if (state->received > 1 &&
                 pkt.app.seq < state->highest_seq) {
               ++state->out_of_order;
             }
             state->highest_seq = std::max(state->highest_seq, pkt.app.seq);
             const SimTime transit = sim_.now() - pkt.app.timestamp;
             state->owd_ms.add(units::to_milliseconds(transit));
             if (state->have_prev) {
               const double d = std::abs(
                   static_cast<double>(transit) -
                   static_cast<double>(state->prev_transit));
               // RFC 3550: J += (|D| - J) / 16.
               state->jitter_ns += (d - state->jitter_ns) / 16.0;
             }
             state->prev_transit = transit;
             state->have_prev = true;
           });

  const SimTime gap = std::max<SimTime>(
      1, units::transmission_time(task.payload_bytes,
                                  std::max<std::uint64_t>(1, task.rate_bps)));
  sim_.every(sim_.now(), gap,
             [this, state, &src, &dst, sport, dport, task, gap,
              until = sim_.now() + task.duration]() {
               net::Packet p = net::make_udp_packet(
                   src.ip(), dst.ip(), sport, dport, task.payload_bytes);
               p.app.seq = static_cast<std::uint32_t>(state->sent);
               p.app.timestamp = sim_.now();
               ++state->sent;
               src.send(std::move(p));
               return sim_.now() + gap < until;
             });

  sim_.after(task.duration + task.drain,
             [this, state, &src, &dst, dport, begin]() {
               dst.unbind(net::Protocol::kUdp, dport);
               UdpStreamResult r;
               r.src = src.name();
               r.dst = dst.name();
               r.start = begin;
               r.end = sim_.now();
               r.sent = state->sent;
               r.received = state->received;
               r.out_of_order = state->out_of_order;
               if (state->sent > 0) {
                 r.loss_pct = 100.0 *
                              static_cast<double>(state->sent -
                                                  state->received) /
                              static_cast<double>(state->sent);
               }
               r.min_owd_ms = state->owd_ms.min();
               r.mean_owd_ms = state->owd_ms.mean();
               r.max_owd_ms = state->owd_ms.max();
               r.jitter_ms = state->jitter_ns / 1e6;
               udp_stream_results_.push_back(r);
               report_udp_stream(r);
             });
}

void PScheduler::report_udp_stream(const UdpStreamResult& r) {
  util::Json doc = util::Json::object();
  doc["report"] = "latencybg";
  doc["tool"] = "owping";
  doc["source"] = r.src;
  doc["destination"] = r.dst;
  doc["ts_ns"] = static_cast<std::int64_t>(r.end);
  doc["sent"] = static_cast<std::int64_t>(r.sent);
  doc["received"] = static_cast<std::int64_t>(r.received);
  doc["loss_pct"] = r.loss_pct;
  doc["min_owd_ms"] = r.min_owd_ms;
  doc["mean_owd_ms"] = r.mean_owd_ms;
  doc["max_owd_ms"] = r.max_owd_ms;
  doc["jitter_ms"] = r.jitter_ms;
  logstash_.event(std::move(doc));
}

void PScheduler::report_latency(const LatencyResult& r) {
  util::Json doc = util::Json::object();
  doc["report"] = "latency";
  doc["tool"] = "ping";
  doc["source"] = r.src;
  doc["destination"] = r.dst;
  doc["ts_ns"] = static_cast<std::int64_t>(r.end);
  // Default perfSONAR granularity for RTT: min / mean / max (§2.3).
  doc["min_rtt_ms"] = r.min_rtt_ms;
  doc["mean_rtt_ms"] = r.mean_rtt_ms;
  doc["max_rtt_ms"] = r.max_rtt_ms;
  doc["sent"] = static_cast<std::int64_t>(r.sent);
  doc["received"] = static_cast<std::int64_t>(r.received);
  logstash_.event(std::move(doc));
}

}  // namespace p4s::ps
