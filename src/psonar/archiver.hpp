// The perfSONAR archiver: an OpenSearch-like document store (§3.3.5,
// Figure 7 — "the final version of the reports is shipped to the archive,
// i.e. the OpenSearch database").
//
// Documents are JSON, organized into named indices, queryable by exact
// field match and by time range, with basic metric aggregations — the
// subset of OpenSearch the perfSONAR dashboards actually use.
//
// Storage is pluggable (archiver_backend.hpp): the default MemoryBackend
// keeps everything in process memory, StoreBackend persists to the
// durable segmented store (`src/store`) so an archive survives the
// process and time-range queries prune whole segments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "psonar/archiver_backend.hpp"
#include "util/json.hpp"

namespace p4s::ps {

class Archiver {
 public:
  /// Defaults to the in-memory backend.
  Archiver();
  explicit Archiver(std::unique_ptr<ArchiverBackend> backend);

  /// Swap the storage backend. Only legal while the archive is empty
  /// (documents don't migrate between backends); throws std::logic_error
  /// otherwise.
  void set_backend(std::unique_ptr<ArchiverBackend> backend);
  ArchiverBackend& backend() { return *backend_; }
  const ArchiverBackend& backend() const { return *backend_; }

  /// Store a document. Returns the document's sequence id within the
  /// index.
  std::uint64_t index(const std::string& index_name, util::Json doc);

  using Query = ArchiverQuery;

  /// Matching documents of an index, in the query's order (insertion
  /// order, or newest first), at most `query.limit` of them.
  std::vector<util::Json> search(const std::string& index_name,
                                 const Query& query = {}) const;

  /// Visit matching documents without copying them; the visitor returns
  /// false to stop early. Order and limit follow the query. This is what
  /// dashboard-style consumers should use instead of materializing a
  /// search() result they immediately reduce.
  void for_each(const std::string& index_name, const Query& query,
                const std::function<bool(const util::Json&)>& visit) const;

  using Aggregation = ArchiverAggregation;

  /// Aggregate a numeric field over the query's matches (backends may
  /// satisfy this from column summaries without visiting documents).
  Aggregation aggregate(const std::string& index_name,
                        const std::string& field,
                        const Query& query = {}) const;

  std::uint64_t doc_count(const std::string& index_name) const;
  std::vector<std::string> indices() const;
  std::uint64_t total_docs() const;

  /// Resolve a dotted path ("flow.dst_ip") inside a document.
  static std::optional<util::Json> field_at(const util::Json& doc,
                                            const std::string& path) {
    return archiver_field_at(doc, path);
  }

 private:
  std::unique_ptr<ArchiverBackend> backend_;
};

}  // namespace p4s::ps
