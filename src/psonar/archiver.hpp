// The perfSONAR archiver: an OpenSearch-like document store (§3.3.5,
// Figure 7 — "the final version of the reports is shipped to the archive,
// i.e. the OpenSearch database").
//
// Documents are JSON, organized into named indices, queryable by exact
// field match and by time range, with basic metric aggregations — the
// subset of OpenSearch the perfSONAR dashboards actually use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace p4s::ps {

/// Search parameters. (Namespace-scope so its defaulted members can be
/// used in Archiver's own default arguments.)
struct ArchiverQuery {
  /// Exact-match terms: dotted paths -> required value
  /// (e.g. {"flow.dst_ip": "10.1.0.10"}).
  std::map<std::string, util::Json> terms;
  /// Optional range filter on a numeric field.
  std::string range_field;
  std::optional<double> range_min;
  std::optional<double> range_max;
  /// Stop after this many matches (0 = unlimited). With newest_first,
  /// this is OpenSearch's latest-value idiom: size N, sorted descending.
  std::size_t limit = 0;
  /// Visit documents in reverse insertion order (newest first) instead
  /// of insertion order.
  bool newest_first = false;
};

class Archiver {
 public:
  /// Store a document. Returns the document's sequence id within the
  /// index.
  std::uint64_t index(const std::string& index_name, util::Json doc);

  using Query = ArchiverQuery;

  /// Matching documents of an index, in the query's order (insertion
  /// order, or newest first), at most `query.limit` of them.
  std::vector<util::Json> search(const std::string& index_name,
                                 const Query& query = {}) const;

  /// Visit matching documents without copying them; the visitor returns
  /// false to stop early. Order and limit follow the query. This is what
  /// dashboard-style consumers should use instead of materializing a
  /// search() result they immediately reduce.
  void for_each(const std::string& index_name, const Query& query,
                const std::function<bool(const util::Json&)>& visit) const;

  struct Aggregation {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double avg = 0.0;
    double sum = 0.0;
  };

  /// Aggregate a numeric field over the query's matches.
  Aggregation aggregate(const std::string& index_name,
                        const std::string& field,
                        const Query& query = {}) const;

  std::uint64_t doc_count(const std::string& index_name) const;
  std::vector<std::string> indices() const;
  std::uint64_t total_docs() const { return total_docs_; }

  /// Resolve a dotted path ("flow.dst_ip") inside a document.
  static std::optional<util::Json> field_at(const util::Json& doc,
                                            const std::string& path);

 private:
  static bool matches(const util::Json& doc, const Query& query);

  std::map<std::string, std::vector<util::Json>> indices_;
  std::uint64_t total_docs_ = 0;
};

}  // namespace p4s::ps
