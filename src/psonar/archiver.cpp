#include "psonar/archiver.hpp"

#include <algorithm>

namespace p4s::ps {

std::uint64_t Archiver::index(const std::string& index_name,
                              util::Json doc) {
  auto& docs = indices_[index_name];
  docs.push_back(std::move(doc));
  ++total_docs_;
  return docs.size() - 1;
}

std::optional<util::Json> Archiver::field_at(const util::Json& doc,
                                             const std::string& path) {
  const util::Json* cur = &doc;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (!cur->is_object() || !cur->contains(key)) return std::nullopt;
    cur = &cur->at(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return *cur;
}

bool Archiver::matches(const util::Json& doc, const Query& query) {
  for (const auto& [path, expected] : query.terms) {
    auto value = field_at(doc, path);
    if (!value.has_value() || !(*value == expected)) return false;
  }
  if (!query.range_field.empty()) {
    auto value = field_at(doc, query.range_field);
    if (!value.has_value() || !value->is_number()) return false;
    const double v = value->as_double();
    if (query.range_min.has_value() && v < *query.range_min) return false;
    if (query.range_max.has_value() && v > *query.range_max) return false;
  }
  return true;
}

void Archiver::for_each(
    const std::string& index_name, const Query& query,
    const std::function<bool(const util::Json&)>& visit) const {
  auto it = indices_.find(index_name);
  if (it == indices_.end()) return;
  const auto& docs = it->second;
  std::size_t matched = 0;
  const auto consider = [&](const util::Json& doc) {
    if (!matches(doc, query)) return true;
    ++matched;
    if (!visit(doc)) return false;
    return query.limit == 0 || matched < query.limit;
  };
  if (query.newest_first) {
    for (auto d = docs.rbegin(); d != docs.rend(); ++d) {
      if (!consider(*d)) return;
    }
  } else {
    for (const auto& doc : docs) {
      if (!consider(doc)) return;
    }
  }
}

std::vector<util::Json> Archiver::search(const std::string& index_name,
                                         const Query& query) const {
  std::vector<util::Json> out;
  for_each(index_name, query, [&](const util::Json& doc) {
    out.push_back(doc);
    return true;
  });
  return out;
}

Archiver::Aggregation Archiver::aggregate(const std::string& index_name,
                                          const std::string& field,
                                          const Query& query) const {
  Aggregation agg;
  for_each(index_name, query, [&](const util::Json& doc) {
    auto value = field_at(doc, field);
    if (!value.has_value() || !value->is_number()) return true;
    const double v = value->as_double();
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.sum += v;
    ++agg.count;
    return true;
  });
  if (agg.count > 0) agg.avg = agg.sum / static_cast<double>(agg.count);
  return agg;
}

std::uint64_t Archiver::doc_count(const std::string& index_name) const {
  auto it = indices_.find(index_name);
  return it == indices_.end() ? 0 : it->second.size();
}

std::vector<std::string> Archiver::indices() const {
  std::vector<std::string> names;
  names.reserve(indices_.size());
  for (const auto& [name, docs] : indices_) {
    (void)docs;
    names.push_back(name);
  }
  return names;
}

}  // namespace p4s::ps
