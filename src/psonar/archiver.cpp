#include "psonar/archiver.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4s::ps {

Archiver::Archiver() : backend_(std::make_unique<MemoryBackend>()) {}

Archiver::Archiver(std::unique_ptr<ArchiverBackend> backend)
    : backend_(std::move(backend)) {
  if (!backend_) backend_ = std::make_unique<MemoryBackend>();
}

void Archiver::set_backend(std::unique_ptr<ArchiverBackend> backend) {
  if (!backend) throw std::logic_error("Archiver: null backend");
  if (backend_->total_docs() > 0) {
    throw std::logic_error(
        "Archiver: cannot swap the backend of a non-empty archive");
  }
  backend_ = std::move(backend);
}

std::uint64_t Archiver::index(const std::string& index_name,
                              util::Json doc) {
  return backend_->index(index_name, std::move(doc));
}

void Archiver::for_each(
    const std::string& index_name, const Query& query,
    const std::function<bool(const util::Json&)>& visit) const {
  backend_->for_each(index_name, query, visit);
}

std::vector<util::Json> Archiver::search(const std::string& index_name,
                                         const Query& query) const {
  std::vector<util::Json> out;
  for_each(index_name, query, [&](const util::Json& doc) {
    out.push_back(doc);
    return true;
  });
  return out;
}

Archiver::Aggregation Archiver::aggregate(const std::string& index_name,
                                          const std::string& field,
                                          const Query& query) const {
  if (auto fast = backend_->aggregate_fast(index_name, field, query)) {
    return *fast;
  }
  Aggregation agg;
  for_each(index_name, query, [&](const util::Json& doc) {
    auto value = field_at(doc, field);
    if (!value.has_value() || !value->is_number()) return true;
    const double v = value->as_double();
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.sum += v;
    ++agg.count;
    return true;
  });
  if (agg.count > 0) agg.avg = agg.sum / static_cast<double>(agg.count);
  return agg;
}

std::uint64_t Archiver::doc_count(const std::string& index_name) const {
  return backend_->doc_count(index_name);
}

std::vector<std::string> Archiver::indices() const {
  return backend_->indices();
}

std::uint64_t Archiver::total_docs() const {
  return backend_->total_docs();
}

}  // namespace p4s::ps
