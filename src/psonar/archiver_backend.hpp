// The archiver's storage-backend seam.
//
// ps::Archiver exposes the OpenSearch-subset API the dashboards use
// (index / search / for_each / aggregate); an ArchiverBackend supplies
// the storage underneath it. MemoryBackend (the default) is the original
// in-memory map of indices; StoreBackend (store_backend.hpp) runs the
// same queries on the durable segmented store. Every consumer goes
// through the seam — nothing outside the backends touches document
// storage directly (a grep-enforced test pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace p4s::ps {

/// Search parameters. (Namespace-scope so its defaulted members can be
/// used in Archiver's own default arguments.)
struct ArchiverQuery {
  /// Exact-match terms: dotted paths -> required value
  /// (e.g. {"flow.dst_ip": "10.1.0.10"}).
  std::map<std::string, util::Json> terms;
  /// Optional range filter on a numeric field.
  std::string range_field;
  std::optional<double> range_min;
  std::optional<double> range_max;
  /// Stop after this many matches (0 = unlimited). With newest_first,
  /// this is OpenSearch's latest-value idiom: size N, sorted descending.
  std::size_t limit = 0;
  /// Visit documents in reverse insertion order (newest first) instead
  /// of insertion order.
  bool newest_first = false;
};

struct ArchiverAggregation {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  double sum = 0.0;
};

/// Resolve a dotted path ("flow.dst_ip") inside a document.
std::optional<util::Json> archiver_field_at(const util::Json& doc,
                                            const std::string& path);

/// Full query predicate (terms + range); backends re-check every visited
/// document with this, so pruning can only ever over-approximate.
bool archiver_query_matches(const util::Json& doc,
                            const ArchiverQuery& query);

class ArchiverBackend {
 public:
  virtual ~ArchiverBackend() = default;

  /// Store a document; returns its sequence id within the index.
  virtual std::uint64_t index(const std::string& index_name,
                              util::Json doc) = 0;

  /// Visit matching documents in the query's order, at most query.limit
  /// of them; the visitor returns false to stop early.
  virtual void for_each(
      const std::string& index_name, const ArchiverQuery& query,
      const std::function<bool(const util::Json&)>& visit) const = 0;

  /// Optional aggregation fast path (e.g. columnar); nullopt = caller
  /// falls back to the generic for_each-based aggregation.
  virtual std::optional<ArchiverAggregation> aggregate_fast(
      const std::string& index_name, const std::string& field,
      const ArchiverQuery& query) const {
    (void)index_name;
    (void)field;
    (void)query;
    return std::nullopt;
  }

  virtual std::uint64_t doc_count(const std::string& index_name) const = 0;
  virtual std::vector<std::string> indices() const = 0;
  virtual std::uint64_t total_docs() const = 0;
};

/// The original archiver storage: per-index vectors of documents, full
/// scans for every query. Fast enough for single runs, nothing survives
/// the process.
class MemoryBackend final : public ArchiverBackend {
 public:
  std::uint64_t index(const std::string& index_name,
                      util::Json doc) override;
  void for_each(
      const std::string& index_name, const ArchiverQuery& query,
      const std::function<bool(const util::Json&)>& visit) const override;
  std::uint64_t doc_count(const std::string& index_name) const override;
  std::vector<std::string> indices() const override;
  std::uint64_t total_docs() const override { return total_docs_; }

 private:
  std::map<std::string, std::vector<util::Json>> docs_by_index_;
  std::uint64_t total_docs_ = 0;
};

}  // namespace p4s::ps
