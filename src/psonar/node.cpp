#include "psonar/node.hpp"

// PerfSonarNode is header-only composition; this TU anchors the library.
