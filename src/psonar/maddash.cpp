#include "psonar/maddash.hpp"

#include <algorithm>
#include <set>

namespace p4s::ps {

const char* MadDash::status_name(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kWarn: return "WARN";
    case Status::kCritical: return "CRIT";
    case Status::kNoData: return "-";
  }
  return "?";
}

template <typename Classify>
MadDash::Grid MadDash::build(const std::string& index,
                             const std::string& field,
                             const std::string& title,
                             const std::string& unit,
                             Classify&& classify) const {
  Grid grid;
  grid.title = title;
  grid.unit = unit;
  std::set<std::string> rows, cols;
  // Newest first, without copying the index: the first doc seen for a
  // pair is its latest value; older docs only bump the sample count.
  Archiver::Query newest;
  newest.newest_first = true;
  archiver_.for_each(index, newest, [&](const util::Json& doc) {
    const auto src = Archiver::field_at(doc, "source");
    const auto dst = Archiver::field_at(doc, "destination");
    const auto value = Archiver::field_at(doc, field);
    if (!src || !dst || !value || !value->is_number()) return true;
    const std::string s = src->as_string();
    const std::string d = dst->as_string();
    rows.insert(s);
    cols.insert(d);
    Cell& cell = grid.cells[{s, d}];
    if (cell.samples == 0) {
      cell.value = value->as_double();
      cell.status = classify(cell.value);
    }
    ++cell.samples;
    return true;
  });
  grid.rows.assign(rows.begin(), rows.end());
  grid.cols.assign(cols.begin(), cols.end());
  return grid;
}

MadDash::Grid MadDash::throughput_grid(double warn_below_bps,
                                       double crit_below_bps) const {
  return build("pscheduler-throughput", "throughput_bps",
               "throughput (iperf3)", "Mbps",
               [=](double bps) {
                 if (bps < crit_below_bps) return Status::kCritical;
                 if (bps < warn_below_bps) return Status::kWarn;
                 return Status::kOk;
               });
}

MadDash::Grid MadDash::loss_grid(double warn_above_pct,
                                 double crit_above_pct) const {
  // Loss derives from sent/received of the latest latency doc per pair;
  // compute via a synthetic classify on the received ratio.
  Grid grid;
  grid.title = "echo loss (ping)";
  grid.unit = "%";
  std::set<std::string> rows, cols;
  Archiver::Query newest;
  newest.newest_first = true;
  archiver_.for_each("pscheduler-latency", newest, [&](const util::Json& doc) {
    const auto src = Archiver::field_at(doc, "source");
    const auto dst = Archiver::field_at(doc, "destination");
    const auto sent = Archiver::field_at(doc, "sent");
    const auto received = Archiver::field_at(doc, "received");
    if (!src || !dst || !sent || !received) return true;
    const double total = sent->as_double();
    if (total <= 0) return true;
    const std::string s = src->as_string();
    const std::string d = dst->as_string();
    rows.insert(s);
    cols.insert(d);
    Cell& cell = grid.cells[{s, d}];
    if (cell.samples == 0) {
      const double loss_pct =
          100.0 * (total - received->as_double()) / total;
      cell.value = loss_pct;
      cell.status = loss_pct > crit_above_pct   ? Status::kCritical
                    : loss_pct > warn_above_pct ? Status::kWarn
                                                : Status::kOk;
    }
    ++cell.samples;
    return true;
  });
  grid.rows.assign(rows.begin(), rows.end());
  grid.cols.assign(cols.begin(), cols.end());
  return grid;
}

MadDash::Grid MadDash::owd_grid(double warn_above_ms,
                                double crit_above_ms) const {
  return build("pscheduler-latencybg", "mean_owd_ms",
               "one-way delay (owping)", "ms",
               [=](double ms) {
                 if (ms > crit_above_ms) return Status::kCritical;
                 if (ms > warn_above_ms) return Status::kWarn;
                 return Status::kOk;
               });
}

MadDash::Grid MadDash::site_grid(double warn_below_bps,
                                 double crit_below_bps) const {
  Grid grid;
  grid.title = "P4 throughput by site";
  grid.unit = "Mbps";
  std::set<std::string> rows, cols;
  Archiver::Query newest;
  newest.newest_first = true;
  archiver_.for_each(
      "p4sonar-throughput", newest, [&](const util::Json& doc) {
        const auto site = Archiver::field_at(doc, "switch_id");
        const auto dst = Archiver::field_at(doc, "flow.dst_ip");
        const auto value = Archiver::field_at(doc, "throughput_bps");
        if (!dst || !value || !value->is_number()) return true;
        const std::string s =
            site && site->is_string() && !site->as_string().empty()
                ? site->as_string()
                : "core";
        const std::string d = dst->as_string();
        rows.insert(s);
        cols.insert(d);
        Cell& cell = grid.cells[{s, d}];
        if (cell.samples == 0) {
          cell.value = value->as_double();
          cell.status = cell.value < crit_below_bps   ? Status::kCritical
                        : cell.value < warn_below_bps ? Status::kWarn
                                                      : Status::kOk;
        }
        ++cell.samples;
        return true;
      });
  grid.rows.assign(rows.begin(), rows.end());
  grid.cols.assign(cols.begin(), cols.end());
  return grid;
}

void MadDash::render(const Grid& grid, std::ostream& out) {
  out << "== MaDDash: " << grid.title << " (" << grid.unit << ") ==\n";
  if (grid.cells.empty()) {
    out << "(no data)\n";
    return;
  }
  std::size_t row_width = 8;
  for (const auto& r : grid.rows) row_width = std::max(row_width, r.size());
  out << std::string(row_width, ' ');
  for (const auto& c : grid.cols) {
    out << "  " << c;
  }
  out << "\n";
  for (const auto& r : grid.rows) {
    out << r << std::string(row_width - r.size(), ' ');
    for (const auto& c : grid.cols) {
      const Cell* cell = grid.cell(r, c);
      char buf[48];
      if (cell == nullptr) {
        std::snprintf(buf, sizeof buf, "%*s", static_cast<int>(c.size()),
                      "-");
      } else {
        const double shown = grid.unit == "Mbps" ? cell->value / 1e6
                                                 : cell->value;
        std::snprintf(buf, sizeof buf, "%*s", static_cast<int>(c.size()),
                      (std::string(status_name(cell->status)) + ":" +
                       [&] {
                         char v[16];
                         std::snprintf(v, sizeof v, "%.1f", shown);
                         return std::string(v);
                       }())
                          .c_str());
      }
      out << "  " << buf;
    }
    out << "\n";
  }
}

}  // namespace p4s::ps
