// StoreBackend: the durable archiver backend.
//
// Runs every ArchiverQuery against a store::Store — sealed segments plus
// the memtable — translating the query's range filter and exact-match
// terms into the store's pruning hints (segment min/max column stats,
// term bloom filters). Pruning only skips segments that *cannot* match;
// every visited document is still re-checked with the full predicate, so
// results are identical to MemoryBackend's, just durable and cheaper on
// time-windowed queries. Aggregations over columnar fields are answered
// from per-segment column summaries without parsing document JSON.
#pragma once

#include "psonar/archiver_backend.hpp"
#include "store/store.hpp"

namespace p4s::ps {

// ---- snapshot query execution ------------------------------------------
//
// The archiver-query-over-snapshot translation, shared by StoreBackend
// (below) and StoreServer (store_server.hpp). Taking the Snapshot as a
// parameter keeps one query on one pinned view end to end — a serving
// thread's search never straddles a seal or compaction.

/// Visit matching documents in the query's order, at most query.limit of
/// them; the visitor returns false to stop early.
void snapshot_for_each(const store::Snapshot& snapshot,
                       const std::string& index_name,
                       const ArchiverQuery& query,
                       const std::function<bool(const util::Json&)>& visit);

/// Columnar aggregation fast path over the snapshot; nullopt = the
/// caller falls back to the generic for_each-based aggregation.
std::optional<ArchiverAggregation> snapshot_aggregate_fast(
    const store::Snapshot& snapshot, const std::string& index_name,
    const std::string& field, const ArchiverQuery& query);

class StoreBackend final : public ArchiverBackend {
 public:
  /// Non-owning: the store outlives the archiver (the MonitoringSystem
  /// owns both; the CLI opens a store without any archiver at all).
  explicit StoreBackend(store::Store& store) : store_(store) {}

  std::uint64_t index(const std::string& index_name,
                      util::Json doc) override {
    return store_.append(index_name, doc);
  }

  void for_each(
      const std::string& index_name, const ArchiverQuery& query,
      const std::function<bool(const util::Json&)>& visit) const override;

  std::optional<ArchiverAggregation> aggregate_fast(
      const std::string& index_name, const std::string& field,
      const ArchiverQuery& query) const override;

  std::uint64_t doc_count(const std::string& index_name) const override {
    return store_.doc_count(index_name);
  }
  std::vector<std::string> indices() const override {
    return store_.indices();
  }
  std::uint64_t total_docs() const override { return store_.total_docs(); }

  store::Store& store() { return store_; }
  const store::Store& store() const { return store_; }

 private:
  store::Store& store_;
};

}  // namespace p4s::ps
