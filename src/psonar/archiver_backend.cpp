#include "psonar/archiver_backend.hpp"

#include "store/segment.hpp"

namespace p4s::ps {

std::optional<util::Json> archiver_field_at(const util::Json& doc,
                                            const std::string& path) {
  // The store's resolver is the canonical one: the write path (columns,
  // bloom keys) and the query path must agree on what a dotted path
  // means.
  return store::json_field_at(doc, path);
}

bool archiver_query_matches(const util::Json& doc,
                            const ArchiverQuery& query) {
  for (const auto& [path, expected] : query.terms) {
    auto value = archiver_field_at(doc, path);
    if (!value.has_value() || !(*value == expected)) return false;
  }
  if (!query.range_field.empty()) {
    auto value = archiver_field_at(doc, query.range_field);
    if (!value.has_value() || !value->is_number()) return false;
    const double v = value->as_double();
    if (query.range_min.has_value() && v < *query.range_min) return false;
    if (query.range_max.has_value() && v > *query.range_max) return false;
  }
  return true;
}

std::uint64_t MemoryBackend::index(const std::string& index_name,
                                   util::Json doc) {
  auto& docs = docs_by_index_[index_name];
  docs.push_back(std::move(doc));
  ++total_docs_;
  return docs.size() - 1;
}

void MemoryBackend::for_each(
    const std::string& index_name, const ArchiverQuery& query,
    const std::function<bool(const util::Json&)>& visit) const {
  auto it = docs_by_index_.find(index_name);
  if (it == docs_by_index_.end()) return;
  const auto& docs = it->second;
  std::size_t matched = 0;
  const auto consider = [&](const util::Json& doc) {
    if (!archiver_query_matches(doc, query)) return true;
    ++matched;
    if (!visit(doc)) return false;
    return query.limit == 0 || matched < query.limit;
  };
  if (query.newest_first) {
    for (auto d = docs.rbegin(); d != docs.rend(); ++d) {
      if (!consider(*d)) return;
    }
  } else {
    for (const auto& doc : docs) {
      if (!consider(doc)) return;
    }
  }
}

std::uint64_t MemoryBackend::doc_count(const std::string& index_name) const {
  auto it = docs_by_index_.find(index_name);
  return it == docs_by_index_.end() ? 0 : it->second.size();
}

std::vector<std::string> MemoryBackend::indices() const {
  std::vector<std::string> names;
  names.reserve(docs_by_index_.size());
  for (const auto& [name, docs] : docs_by_index_) {
    (void)docs;
    names.push_back(name);
  }
  return names;
}

}  // namespace p4s::ps
