// Trace analytics over the archiver — the consumers §6 says benefit from
// the P4 system's richer traces:
//
//  * NetSage-style longitudinal analysis: per-destination traffic trends
//    (time-bucketed throughput, top talkers) computed from archived
//    per-flow reports;
//  * OnTimeDetect-style anomaly notification: an EWMA + deviation
//    detector over any archived numeric series, flagging points that
//    depart from the learned baseline (the classic perfSONAR plateau/
//    dip detector shape).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "psonar/archiver.hpp"
#include "util/units.hpp"

namespace p4s::ps {

class Analytics {
 public:
  explicit Analytics(const Archiver& archiver) : archiver_(archiver) {}

  // ---- NetSage-style longitudinal views --------------------------------

  struct TrendBucket {
    SimTime start = 0;
    double mean_throughput_bps = 0.0;
    std::uint64_t samples = 0;
  };

  /// Time-bucketed mean throughput for one destination, from the
  /// "p4sonar-throughput" index.
  std::vector<TrendBucket> throughput_trend(const std::string& dst_ip,
                                            SimTime bucket) const;

  struct Talker {
    std::string dst_ip;
    std::uint64_t bytes = 0;
    std::uint64_t flows = 0;
    double retransmission_pct = 0.0;  // bytes-weighted mean
  };

  /// Destinations ranked by total transferred bytes, from the
  /// terminated-flow reports ("p4sonar-flow_final").
  std::vector<Talker> top_talkers(std::size_t limit = 10) const;

  // ---- OnTimeDetect-style anomaly detection ----------------------------

  struct Anomaly {
    SimTime at = 0;
    double value = 0.0;
    double expected = 0.0;   // EWMA baseline at that point
    double deviation = 0.0;  // |value-expected| / band
  };

  struct AnomalyConfig {
    double alpha = 0.125;        // EWMA weight
    double band_factor = 3.0;    // deviations beyond band_factor * MAD
    std::size_t warmup = 8;      // samples before detection arms
  };

  /// Scan a numeric field of an index (optionally filtered) for points
  /// departing from the EWMA baseline by more than band_factor times the
  /// running mean absolute deviation.
  std::vector<Anomaly> detect_anomalies(const std::string& index,
                                        const std::string& field,
                                        const Archiver::Query& query,
                                        const AnomalyConfig& config) const;
  std::vector<Anomaly> detect_anomalies(const std::string& index,
                                        const std::string& field) const {
    return detect_anomalies(index, field, Archiver::Query{},
                            AnomalyConfig{});
  }
  std::vector<Anomaly> detect_anomalies(const std::string& index,
                                        const std::string& field,
                                        const Archiver::Query& query) const {
    return detect_anomalies(index, field, query, AnomalyConfig{});
  }

 private:
  const Archiver& archiver_;
};

}  // namespace p4s::ps
