// pSConfig with the paper's `config-P4` extension (§3.3.5, Figure 6).
//
// The added command configures the programmable switch's control plane
// from a perfSONAR node at run time:
//
//   psconfig config-P4 --metric throughput --samples_per_second 1
//   psconfig config-P4 --metric RTT --samples_per_second 2
//   psconfig config-P4 --metric queue_occupancy --alert --threshold 30
//                      --samples_per_second 10
//
// Without --alert, --samples_per_second sets the metric's extraction
// rate. With --alert, --threshold sets the alert threshold and
// --samples_per_second sets the boosted rate used while the threshold is
// exceeded. Omitting --metric applies the configuration to all four
// metrics (§3.3.5).
//
// In a monitoring fabric several switch control planes register with one
// pSConfig (one per monitored site); `--switch <id>` targets a specific
// instance by its configured id or zero-based index, and omitting it
// applies the command to every registered switch:
//
//   psconfig config-P4 --switch site-b --metric rtt --samples_per_second 2
//
// Runtime-programmable measurements (src/mpl): --install-program
// compiles a .mpl.json measurement program and installs it on the
// targeted switches' VMs; --remove-program uninstalls by name. An
// installed program's exported metric is configurable by name like any
// builtin:
//
//   psconfig config-P4 --install-program byte_counter.mpl.json
//                      --switch site-b
//   psconfig config-P4 --metric vm_throughput --samples_per_second 4
//   psconfig config-P4 --remove-program byte_counter
//
// pSConfig also carries its original duty: JSON mesh templates that
// define which active tests run between which hosts on what schedule
// (apply_mesh). Template format (a compact pscfg.json analogue):
//
//   {
//     "tasks": [
//       {"type": "throughput", "src": "psonar-internal",
//        "dst": "psonar-ext1", "start_s": 1, "duration_s": 10,
//        "repeat_s": 60},
//       {"type": "latency",   ..., "count": 10},
//       {"type": "trace",     ..., "max_hops": 8},
//       {"type": "udp_stream",..., "rate_mbps": 10, "duration_s": 5}
//     ]
//   }
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "controlplane/control_plane.hpp"
#include "psonar/pscheduler.hpp"
#include "util/json.hpp"

namespace p4s::mpl {
class ProgramVm;
}

namespace p4s::ps {

class PsConfig {
 public:
  PsConfig() = default;
  explicit PsConfig(cp::ControlPlane& control_plane) {
    attach(control_plane);
  }

  /// Point the configuration layer at a single switch control plane
  /// (the legacy single-switch entry point; replaces any registrations).
  void attach(cp::ControlPlane& control_plane) {
    planes_.clear();
    add_control_plane(control_plane, "");
  }

  /// Register one monitored switch's control plane under its id. Fabric
  /// deployments call this once per site; config-P4 then targets one via
  /// --switch <id|index> or all of them when --switch is omitted. `vm`
  /// is the switch's measurement-program VM when it has one —
  /// --install-program / --remove-program target it.
  void add_control_plane(cp::ControlPlane& control_plane, std::string id,
                         mpl::ProgramVm* vm = nullptr) {
    planes_.push_back(Plane{std::move(id), &control_plane, vm});
  }

  std::size_t control_plane_count() const { return planes_.size(); }

  struct Result {
    bool ok = false;
    std::string message;
  };

  /// Execute a full command line ("psconfig config-P4 ...").
  Result execute(const std::string& command_line);

  /// History of executed command lines (successful ones), as pSConfig's
  /// audit trail.
  const std::vector<std::string>& history() const { return history_; }

  /// Apply a JSON mesh template: schedules every task on `scheduler`,
  /// resolving host names through `hosts`. Returns ok with the number of
  /// scheduled tasks in the message, or the first error encountered
  /// (nothing is scheduled on error — templates apply atomically).
  Result apply_mesh(const util::Json& mesh, PScheduler& scheduler,
                    const std::map<std::string, net::Host*>& hosts);

  /// Convenience: parse `text` as JSON, then apply_mesh.
  Result apply_mesh_text(const std::string& text, PScheduler& scheduler,
                         const std::map<std::string, net::Host*>& hosts);

 private:
  struct Plane {
    std::string id;
    cp::ControlPlane* control_plane = nullptr;
    mpl::ProgramVm* vm = nullptr;
  };

  Result run_config_p4(const std::vector<std::string>& args,
                       const std::string& original);

  std::vector<Plane> planes_;
  std::vector<std::string> history_;
};

}  // namespace p4s::ps
