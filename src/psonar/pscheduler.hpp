// pScheduler: perfSONAR's active measurement layer. Runs the classic
// tools over the simulated network and reports their (deliberately
// aggregated) results to Logstash — this is the "regular perfSONAR"
// baseline of Table 1:
//
//  * throughput tests (iperf3): a real TCP bulk transfer between two
//    perfSONAR hosts for a fixed duration; the archived result is the
//    AVERAGE throughput only (§2.3: "For throughput tests, Logstash only
//    reports the average value");
//  * latency tests (ping): ICMP echo trains; the archived result is
//    min / mean / max RTT and the loss count (§2.3);
//  * traceroute: TTL-stepped probes; intermediate switches answer with
//    ICMP time-exceeded;
//  * one-way UDP streams (owamp/powstream-style): paced, timestamped
//    packets; the result is one-way delay min/mean/max, RFC 3550 jitter
//    and loss.
//
// Tests can repeat on an interval, like a pSConfig mesh schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "psonar/logstash.hpp"
#include "sim/simulation.hpp"
#include "tcp/flow.hpp"

namespace p4s::ps {

struct ThroughputResult {
  std::string src;
  std::string dst;
  SimTime start = 0;
  SimTime end = 0;
  double avg_throughput_bps = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t retransmits = 0;
};

struct LatencyResult {
  std::string src;
  std::string dst;
  SimTime start = 0;
  SimTime end = 0;
  int sent = 0;
  int received = 0;
  double min_rtt_ms = 0.0;
  double mean_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
};

struct TracerouteHop {
  net::Ipv4Address addr = 0;
  double rtt_ms = 0.0;
  bool replied = false;
};

struct TracerouteResult {
  std::string src;
  std::string dst;
  SimTime end = 0;
  bool reached = false;
  std::vector<TracerouteHop> hops;
};

struct UdpStreamResult {
  std::string src;
  std::string dst;
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t out_of_order = 0;
  double loss_pct = 0.0;
  double min_owd_ms = 0.0;
  double mean_owd_ms = 0.0;
  double max_owd_ms = 0.0;
  double jitter_ms = 0.0;  // RFC 3550 interarrival jitter
};

class PScheduler {
 public:
  PScheduler(sim::Simulation& sim, Logstash& logstash)
      : sim_(sim), logstash_(logstash) {}

  PScheduler(const PScheduler&) = delete;
  PScheduler& operator=(const PScheduler&) = delete;

  struct ThroughputTask {
    SimTime start = 0;
    SimTime duration = units::seconds(10);
    /// 0 = run once; otherwise repeat with this period.
    SimTime repeat_interval = 0;
    tcp::TcpSender::Config sender;  // tool knobs (CCA, rate limit, ...)
  };

  /// Schedule an iperf3-style throughput test from `src` to `dst`.
  void schedule_throughput(net::Host& src, net::Host& dst,
                           const ThroughputTask& task);

  struct LatencyTask {
    SimTime start = 0;
    int count = 10;
    SimTime spacing = units::milliseconds(200);
    SimTime timeout = units::seconds(2);
    std::uint32_t payload_bytes = 56;
    SimTime repeat_interval = 0;
  };

  /// Schedule a ping-style latency test from `src` to `dst`.
  void schedule_latency(net::Host& src, net::Host& dst,
                        const LatencyTask& task);

  struct TracerouteTask {
    SimTime start = 0;
    int max_hops = 8;
    SimTime probe_timeout = units::seconds(1);
    SimTime repeat_interval = 0;
  };

  /// Schedule a traceroute from `src` to `dst` (one probe per TTL;
  /// switches with router addresses answer time-exceeded).
  void schedule_traceroute(net::Host& src, net::Host& dst,
                           const TracerouteTask& task);

  struct UdpStreamTask {
    SimTime start = 0;
    SimTime duration = units::seconds(5);
    std::uint64_t rate_bps = 10'000'000;
    std::uint32_t payload_bytes = 1000;
    /// Grace period after the last send before results are computed.
    SimTime drain = units::seconds(1);
    SimTime repeat_interval = 0;
  };

  /// Schedule a one-way UDP stream test from `src` to `dst`.
  void schedule_udp_stream(net::Host& src, net::Host& dst,
                           const UdpStreamTask& task);

  const std::vector<ThroughputResult>& throughput_results() const {
    return throughput_results_;
  }
  const std::vector<LatencyResult>& latency_results() const {
    return latency_results_;
  }
  const std::vector<TracerouteResult>& traceroute_results() const {
    return traceroute_results_;
  }
  const std::vector<UdpStreamResult>& udp_stream_results() const {
    return udp_stream_results_;
  }

 private:
  void run_throughput(net::Host& src, net::Host& dst, ThroughputTask task);
  void run_latency(net::Host& src, net::Host& dst, LatencyTask task);
  void run_traceroute(net::Host& src, net::Host& dst, TracerouteTask task);
  void run_udp_stream(net::Host& src, net::Host& dst, UdpStreamTask task);
  void report_throughput(const ThroughputResult& r);
  void report_latency(const LatencyResult& r);
  void report_traceroute(const TracerouteResult& r);
  void report_udp_stream(const UdpStreamResult& r);

  sim::Simulation& sim_;
  Logstash& logstash_;
  std::vector<ThroughputResult> throughput_results_;
  std::vector<LatencyResult> latency_results_;
  std::vector<TracerouteResult> traceroute_results_;
  std::vector<UdpStreamResult> udp_stream_results_;
  std::vector<std::unique_ptr<tcp::TcpFlow>> active_flows_;
  std::uint16_t next_icmp_ident_ = 1;
  std::uint16_t next_udp_port_ = 8760;
};

}  // namespace p4s::ps
