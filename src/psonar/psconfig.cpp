#include "psonar/psconfig.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "mpl/compiler.hpp"
#include "mpl/vm.hpp"

namespace p4s::ps {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::optional<double> parse_number(const std::string& s) {
  double v = 0.0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

PsConfig::Result PsConfig::execute(const std::string& command_line) {
  const auto tokens = tokenize(command_line);
  if (tokens.empty() || tokens[0] != "psconfig") {
    return {false, "usage: psconfig <command> [options]"};
  }
  if (tokens.size() < 2) {
    return {false, "psconfig: missing command"};
  }
  if (tokens[1] == "config-P4") {
    return run_config_p4({tokens.begin() + 2, tokens.end()}, command_line);
  }
  return {false, "psconfig: unknown command '" + tokens[1] + "'"};
}

PsConfig::Result PsConfig::run_config_p4(const std::vector<std::string>& args,
                                         const std::string& original) {
  if (planes_.empty()) {
    return {false, "config-P4: no switch control plane attached"};
  }

  std::optional<std::string> metric;
  std::optional<double> samples_per_second;
  std::optional<double> threshold;
  std::optional<std::string> switch_id;
  std::optional<std::string> install_file;
  std::optional<std::string> remove_name;
  bool alert = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--metric") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --metric needs a value"};
      // Builtins and extension metrics alike: resolution is deferred to
      // the targeted control plane, which knows its registered
      // extractors (a VM program's exported metric counts).
      metric = *v;
    } else if (arg == "--install-program") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --install-program needs a file"};
      install_file = *v;
    } else if (arg == "--remove-program") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --remove-program needs a name"};
      remove_name = *v;
    } else if (arg == "--samples_per_second") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --samples_per_second needs a value"};
      samples_per_second = parse_number(*v);
      // std::from_chars happily parses "nan" and "inf" — both would arm a
      // broken timer downstream, so they are rejected here like any other
      // malformed rate.
      if (!samples_per_second || !std::isfinite(*samples_per_second) ||
          *samples_per_second <= 0.0) {
        return {false, "config-P4: bad samples_per_second '" + *v + "'"};
      }
    } else if (arg == "--threshold") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --threshold needs a value"};
      threshold = parse_number(*v);
      if (!threshold || !std::isfinite(*threshold) || *threshold < 0.0) {
        return {false, "config-P4: bad threshold '" + *v + "'"};
      }
    } else if (arg == "--switch") {
      auto v = next_value();
      if (!v) return {false, "config-P4: --switch needs a value"};
      switch_id = *v;
    } else if (arg == "--alert") {
      alert = true;
    } else {
      return {false, "config-P4: unknown option '" + arg + "'"};
    }
  }

  const bool program_action =
      install_file.has_value() || remove_name.has_value();
  if (program_action &&
      (metric.has_value() || alert || samples_per_second.has_value() ||
       threshold.has_value())) {
    return {false,
            "config-P4: --install-program/--remove-program cannot be "
            "combined with metric options"};
  }
  if (!program_action) {
    if (alert && !threshold.has_value()) {
      return {false, "config-P4: --alert requires --threshold"};
    }
    if (!alert && !samples_per_second.has_value()) {
      return {false,
              "config-P4: nothing to do (need --samples_per_second or "
              "--alert --threshold)"};
    }
  }

  // --switch targets one registered control plane by id or zero-based
  // index; the default is every registered switch.
  std::vector<Plane*> switches;
  if (switch_id.has_value()) {
    for (std::size_t i = 0; i < planes_.size(); ++i) {
      if (planes_[i].id == *switch_id ||
          std::to_string(i) == *switch_id) {
        switches.push_back(&planes_[i]);
        break;
      }
    }
    if (switches.empty()) {
      return {false, "config-P4: unknown switch '" + *switch_id + "'"};
    }
  } else {
    for (Plane& plane : planes_) switches.push_back(&plane);
  }

  if (program_action) {
    for (const Plane* plane : switches) {
      if (plane->vm == nullptr) {
        return {false, "config-P4: switch '" + plane->id +
                           "' has no measurement-program VM"};
      }
    }
    if (install_file.has_value()) {
      std::ifstream in(*install_file);
      if (!in) {
        return {false,
                "config-P4: cannot read program file '" + *install_file +
                    "'"};
      }
      std::ostringstream text;
      text << in.rdbuf();
      mpl::Program program;
      try {
        program = mpl::compile_program_text(text.str(), *install_file);
      } catch (const util::JsonError& e) {
        return {false, "config-P4: " + *install_file + ": " + e.what()};
      } catch (const std::invalid_argument& e) {
        return {false, std::string("config-P4: ") + e.what()};
      }
      const std::string name = program.name;
      try {
        for (Plane* plane : switches) plane->vm->install(program);
      } catch (const std::invalid_argument& e) {
        return {false, std::string("config-P4: ") + e.what()};
      }
      history_.push_back(original);
      return {true, "program '" + name + "' installed on " +
                        std::to_string(switches.size()) + " switch(es)"};
    }
    std::size_t removed = 0;
    for (Plane* plane : switches) {
      if (plane->vm->remove(*remove_name)) ++removed;
    }
    if (removed == 0) {
      return {false,
              "config-P4: no installed program '" + *remove_name + "'"};
    }
    history_.push_back(original);
    return {true, "program '" + *remove_name + "' removed from " +
                      std::to_string(removed) + " switch(es)"};
  }

  // A builtin --metric resolves through metric_from_name (which knows
  // the paper's aliases, "RTT" included); anything else is looked up by
  // extractor name on each targeted control plane, which reaches
  // extension extractors — installed programs' exported metrics.
  std::optional<cp::MetricKind> builtin_kind;
  if (metric.has_value()) {
    try {
      builtin_kind = cp::metric_from_name(*metric);
    } catch (const std::invalid_argument&) {
      builtin_kind = std::nullopt;
    }
  }

  // Figure 6 semantics: no --metric applies to all (builtin) metrics.
  for (Plane* plane : switches) {
    cp::ControlPlane* control_plane = plane->control_plane;
    try {
      if (metric.has_value()) {
        if (builtin_kind.has_value()) {
          if (alert) {
            control_plane->set_alert(*builtin_kind, *threshold,
                                     samples_per_second);
          } else {
            control_plane->set_samples_per_second(*builtin_kind,
                                                  *samples_per_second);
          }
        } else if (alert) {
          control_plane->set_alert(std::string_view(*metric), *threshold,
                                   samples_per_second);
        } else {
          control_plane->set_samples_per_second(std::string_view(*metric),
                                                *samples_per_second);
        }
      } else {
        for (std::size_t i = 0; i < cp::kMetricCount; ++i) {
          const auto kind = static_cast<cp::MetricKind>(i);
          if (alert) {
            control_plane->set_alert(kind, *threshold,
                                     samples_per_second);
          } else {
            control_plane->set_samples_per_second(kind,
                                                  *samples_per_second);
          }
        }
      }
    } catch (const std::invalid_argument& e) {
      return {false, std::string("config-P4: ") + e.what()};
    }
  }

  history_.push_back(original);
  std::string applied = alert ? "alert configured" : "sampling configured";
  return {true, applied};
}

namespace {

/// Typed field access with defaults for mesh task objects.
double number_or(const util::Json& obj, const std::string& key,
                 double fallback) {
  if (auto v = obj.find(key); v.has_value() && v->is_number()) {
    return v->as_double();
  }
  return fallback;
}

}  // namespace

PsConfig::Result PsConfig::apply_mesh(
    const util::Json& mesh, PScheduler& scheduler,
    const std::map<std::string, net::Host*>& hosts) {
  if (!mesh.is_object() || !mesh.contains("tasks") ||
      !mesh.at("tasks").is_array()) {
    return {false, "mesh: expected an object with a 'tasks' array"};
  }

  // Validate everything first: templates apply atomically.
  struct Planned {
    std::string type;
    net::Host* src;
    net::Host* dst;
    util::Json spec;
  };
  std::vector<Planned> plan;
  for (const auto& task : mesh.at("tasks").as_array()) {
    if (!task.is_object()) return {false, "mesh: task must be an object"};
    for (const char* key : {"type", "src", "dst"}) {
      if (!task.contains(key) || !task.at(key).is_string()) {
        return {false, std::string("mesh: task missing '") + key + "'"};
      }
    }
    const std::string type = task.at("type").as_string();
    if (type != "throughput" && type != "latency" && type != "trace" &&
        type != "udp_stream") {
      return {false, "mesh: unknown task type '" + type + "'"};
    }
    auto find_host = [&](const std::string& name) -> net::Host* {
      auto it = hosts.find(name);
      return it == hosts.end() ? nullptr : it->second;
    };
    net::Host* src = find_host(task.at("src").as_string());
    net::Host* dst = find_host(task.at("dst").as_string());
    if (src == nullptr || dst == nullptr) {
      return {false, "mesh: unknown host in task (src='" +
                         task.at("src").as_string() + "', dst='" +
                         task.at("dst").as_string() + "')"};
    }
    plan.push_back(Planned{type, src, dst, task});
  }

  for (const auto& p : plan) {
    const SimTime start = units::seconds_f(number_or(p.spec, "start_s", 1));
    const SimTime repeat =
        units::seconds_f(number_or(p.spec, "repeat_s", 0));
    if (p.type == "throughput") {
      PScheduler::ThroughputTask t;
      t.start = start;
      t.duration = units::seconds_f(number_or(p.spec, "duration_s", 10));
      t.repeat_interval = repeat;
      scheduler.schedule_throughput(*p.src, *p.dst, t);
    } else if (p.type == "latency") {
      PScheduler::LatencyTask t;
      t.start = start;
      t.count = static_cast<int>(number_or(p.spec, "count", 10));
      t.repeat_interval = repeat;
      scheduler.schedule_latency(*p.src, *p.dst, t);
    } else if (p.type == "trace") {
      PScheduler::TracerouteTask t;
      t.start = start;
      t.max_hops = static_cast<int>(number_or(p.spec, "max_hops", 8));
      t.repeat_interval = repeat;
      scheduler.schedule_traceroute(*p.src, *p.dst, t);
    } else {
      PScheduler::UdpStreamTask t;
      t.start = start;
      t.duration = units::seconds_f(number_or(p.spec, "duration_s", 5));
      t.rate_bps = static_cast<std::uint64_t>(
          number_or(p.spec, "rate_mbps", 10) * 1e6);
      t.repeat_interval = repeat;
      scheduler.schedule_udp_stream(*p.src, *p.dst, t);
    }
  }
  history_.push_back("apply_mesh(" + std::to_string(plan.size()) +
                     " tasks)");
  return {true, std::to_string(plan.size()) + " tasks scheduled"};
}

PsConfig::Result PsConfig::apply_mesh_text(
    const std::string& text, PScheduler& scheduler,
    const std::map<std::string, net::Host*>& hosts) {
  try {
    return apply_mesh(util::Json::parse(text), scheduler, hosts);
  } catch (const util::JsonError& e) {
    return {false, std::string("mesh: ") + e.what()};
  }
}

}  // namespace p4s::ps
