// Logstash emulation (Figure 7): the data-processing pipeline perfSONAR
// uses between measurement producers and the OpenSearch archive.
//
//   inputs  — the TCP input plugin receives newline-delimited JSON
//             (Report_v1) from the switch control plane; a direct
//             event() entry point serves the Tools layer (pScheduler);
//   filters — an ordered chain of transformations (mutate/add-field/
//             drop). A filter returns nullopt to drop the event;
//   output  — the OpenSearch output plugin adds the archive metadata
//             (@timestamp, event ordinal, pipeline tag) producing
//             Report_v2 and writes it to the archiver, one index per
//             report kind ("p4sonar-throughput", "pscheduler-...", ...).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "controlplane/report.hpp"
#include "psonar/archiver.hpp"
#include "util/json.hpp"

namespace p4s::ps {

/// A filter stage: transform or drop an event.
using Filter = std::function<std::optional<util::Json>(util::Json)>;

class Logstash {
 public:
  explicit Logstash(Archiver& archiver) : archiver_(archiver) {}

  /// Append a filter to the chain (applied in order).
  void add_filter(std::string name, Filter filter);

  /// Feed one event through filters and the output plugin.
  void event(util::Json doc);

  /// The TCP input plugin: accepts one newline-delimited JSON payload
  /// (possibly several lines). Malformed lines are counted and dropped,
  /// as the real plugin does with a _jsonparsefailure tag.
  void tcp_input(const std::string& payload);

  /// Index name for a document (index_prefix + report kind).
  static std::string index_for(const util::Json& doc);

  std::uint64_t events_in() const { return events_in_; }
  std::uint64_t events_out() const { return events_out_; }
  std::uint64_t events_dropped() const { return events_dropped_; }
  std::uint64_t parse_failures() const { return parse_failures_; }

 private:
  void output(util::Json doc);

  Archiver& archiver_;
  std::vector<std::pair<std::string, Filter>> filters_;
  std::uint64_t events_in_ = 0;
  std::uint64_t events_out_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::uint64_t parse_failures_ = 0;
  std::uint64_t sequence_ = 0;
};

/// Adapter: lets the switch control plane use Logstash's TCP input as a
/// ReportSink — this is the wire between the two systems in Figure 7.
/// Serializes each Report_v1 to a JSON line, exactly what travels the TCP
/// connection in the real deployment.
class LogstashTcpSink : public cp::ReportSink {
 public:
  explicit LogstashTcpSink(Logstash& logstash) : logstash_(logstash) {}

  void on_report(const util::Json& report) override {
    logstash_.tcp_input(report.dump() + "\n");
  }

 private:
  Logstash& logstash_;
};

}  // namespace p4s::ps
