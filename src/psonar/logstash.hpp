// Logstash emulation (Figure 7): the data-processing pipeline perfSONAR
// uses between measurement producers and the OpenSearch archive.
//
//   inputs  — the TCP input plugin receives newline-delimited JSON
//             (Report_v1) from the switch control plane; a direct
//             event() entry point serves the Tools layer (pScheduler);
//   filters — an ordered chain of transformations (mutate/add-field/
//             drop). A filter returns nullopt to drop the event;
//   output  — the OpenSearch output plugin adds the archive metadata
//             (@timestamp, event ordinal, pipeline tag) producing
//             Report_v2 and writes it to the archiver, one index per
//             report kind ("p4sonar-throughput", "pscheduler-...", ...).
//
// The TCP input is a byte-stream consumer: a payload may end mid-line, so
// a trailing partial line is buffered until the next chunk completes it
// (the seed version parsed the fragment and mis-counted it as a
// _jsonparsefailure). When the upstream connection resets, tcp_reset()
// discards the partial buffer — the fragment's remainder will never
// arrive on the new connection; the resilient sink retransmits the whole
// line instead.
//
// Transport integration: events carrying an "@xmit_seq" field (assigned
// by cp::ResilientReportSink) are deduplicated — at-least-once delivery
// upstream plus dedup here yields exactly-once in the archive — and every
// received sequence number is acknowledged through the ack callback.
//
// Counter model (end-to-end conservation, asserted by tests):
//   bytes_in                      raw bytes accepted by tcp_input
//   lines_in                      complete lines extracted from the stream
//   lines_in == parse_failures + tcp_events
//   events_in == tcp_events + direct event() calls
//   events_in == duplicates_dropped + events_dropped + events_out
//   events_out == documents handed to the archiver
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "controlplane/report.hpp"
#include "psonar/archiver.hpp"
#include "util/json.hpp"

namespace p4s::ps {

/// A filter stage: transform or drop an event.
using Filter = std::function<std::optional<util::Json>(util::Json)>;

class Logstash {
 public:
  explicit Logstash(Archiver& archiver) : archiver_(archiver) {}

  /// Append a filter to the chain (applied in order).
  void add_filter(std::string name, Filter filter);

  /// Feed one event through dedup, filters and the output plugin.
  void event(util::Json doc);

  /// The TCP input plugin: accepts one chunk of the newline-delimited
  /// JSON byte stream (any framing — several lines, half a line, one
  /// byte). Complete lines are parsed; a trailing fragment is buffered.
  /// Malformed lines are counted and dropped, as the real plugin does
  /// with a _jsonparsefailure tag.
  void tcp_input(std::string_view payload);

  /// Upstream connection reset: drop the buffered partial line.
  void tcp_reset();

  /// Ack sink for transport sequence numbers ("@xmit_seq"); invoked for
  /// every received occurrence, duplicates included.
  void set_transport_ack(std::function<void(std::uint64_t)> ack) {
    transport_ack_ = std::move(ack);
  }

  /// Index name for a document (index_prefix + report kind).
  static std::string index_for(const util::Json& doc);

  // ---- Counters (see conservation model above) -----------------------
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t lines_in() const { return lines_in_; }
  std::uint64_t events_in() const { return events_in_; }
  std::uint64_t events_out() const { return events_out_; }
  std::uint64_t events_dropped() const { return events_dropped_; }
  std::uint64_t parse_failures() const { return parse_failures_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t tcp_resets() const { return tcp_resets_; }
  std::size_t pending_partial_bytes() const { return partial_.size(); }

 private:
  void output(util::Json doc);

  Archiver& archiver_;
  std::vector<std::pair<std::string, Filter>> filters_;
  std::function<void(std::uint64_t)> transport_ack_;
  std::string partial_;  // trailing unterminated line of the TCP stream
  std::unordered_set<std::uint64_t> seen_xmit_seqs_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t lines_in_ = 0;
  std::uint64_t events_in_ = 0;
  std::uint64_t events_out_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::uint64_t parse_failures_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t tcp_resets_ = 0;
  std::uint64_t sequence_ = 0;
};

/// Adapter: lets the switch control plane use Logstash's TCP input as a
/// ReportSink — this is the wire between the two systems in Figure 7.
/// Serializes each Report_v1 to a JSON line, exactly what travels the TCP
/// connection in the real deployment. This direct adapter models a
/// perfect wire; net::ReportChannel + cp::ResilientReportSink model the
/// same wire with faults.
class LogstashTcpSink : public cp::ReportSink {
 public:
  explicit LogstashTcpSink(Logstash& logstash) : logstash_(logstash) {}

  void on_report(const util::Json& report) override {
    logstash_.tcp_input(report.dump() + "\n");
  }

 private:
  Logstash& logstash_;
};

}  // namespace p4s::ps
