#include "psonar/analytics.hpp"

#include <algorithm>
#include <cmath>

namespace p4s::ps {

std::vector<Analytics::TrendBucket> Analytics::throughput_trend(
    const std::string& dst_ip, SimTime bucket) const {
  std::map<SimTime, TrendBucket> buckets;
  Archiver::Query query;
  query.terms["flow.dst_ip"] = util::Json(dst_ip);
  for (const auto& doc : archiver_.search("p4sonar-throughput", query)) {
    const auto ts = Archiver::field_at(doc, "ts_ns");
    const auto bps = Archiver::field_at(doc, "throughput_bps");
    if (!ts || !bps || !bps->is_number()) continue;
    const SimTime start =
        static_cast<SimTime>(ts->as_int()) / bucket * bucket;
    TrendBucket& b = buckets[start];
    b.start = start;
    // Incremental mean.
    ++b.samples;
    b.mean_throughput_bps +=
        (bps->as_double() - b.mean_throughput_bps) /
        static_cast<double>(b.samples);
  }
  std::vector<TrendBucket> out;
  out.reserve(buckets.size());
  for (const auto& [start, b] : buckets) {
    (void)start;
    out.push_back(b);
  }
  return out;
}

std::vector<Analytics::Talker> Analytics::top_talkers(
    std::size_t limit) const {
  std::map<std::string, Talker> talkers;
  for (const auto& doc : archiver_.search("p4sonar-flow_final")) {
    const auto dst = Archiver::field_at(doc, "flow.dst_ip");
    const auto bytes = Archiver::field_at(doc, "bytes");
    const auto retx = Archiver::field_at(doc, "retransmission_pct");
    if (!dst || !bytes) continue;
    Talker& t = talkers[dst->as_string()];
    t.dst_ip = dst->as_string();
    const auto b = static_cast<std::uint64_t>(bytes->as_int());
    // Bytes-weighted retransmission percentage.
    const double prev_weight = static_cast<double>(t.bytes);
    t.bytes += b;
    ++t.flows;
    if (retx && t.bytes > 0) {
      t.retransmission_pct =
          (t.retransmission_pct * prev_weight +
           retx->as_double() * static_cast<double>(b)) /
          static_cast<double>(t.bytes);
    }
  }
  std::vector<Talker> out;
  out.reserve(talkers.size());
  for (const auto& [dst, t] : talkers) {
    (void)dst;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(), [](const Talker& a, const Talker& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<Analytics::Anomaly> Analytics::detect_anomalies(
    const std::string& index, const std::string& field,
    const Archiver::Query& query, const AnomalyConfig& config) const {
  std::vector<Analytics::Anomaly> anomalies;
  double ewma = 0.0;
  double mad = 0.0;  // running mean absolute deviation
  std::size_t n = 0;
  for (const auto& doc : archiver_.search(index, query)) {
    const auto value = Archiver::field_at(doc, field);
    const auto ts = Archiver::field_at(doc, "ts_ns");
    if (!value || !value->is_number()) continue;
    const double v = value->as_double();
    if (n == 0) {
      ewma = v;
      mad = 0.0;
      ++n;
      continue;
    }
    const double dev = std::abs(v - ewma);
    const bool armed = n >= config.warmup;
    const double band = config.band_factor * std::max(mad, 1e-9);
    if (armed && mad > 0.0 && dev > band) {
      Anomaly a;
      a.at = ts ? static_cast<SimTime>(ts->as_int()) : 0;
      a.value = v;
      a.expected = ewma;
      a.deviation = dev / band;
      anomalies.push_back(a);
      // An anomalous point perturbs the baseline only mildly, so a
      // plateau keeps flagging until it becomes the new normal.
      ewma += config.alpha * 0.25 * (v - ewma);
      mad += config.alpha * 0.25 * (dev - mad);
    } else {
      ewma += config.alpha * (v - ewma);
      mad += config.alpha * (dev - mad);
    }
    ++n;
  }
  return anomalies;
}

}  // namespace p4s::ps
