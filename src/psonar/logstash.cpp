#include "psonar/logstash.hpp"

#include "util/logging.hpp"

namespace p4s::ps {

void Logstash::add_filter(std::string name, Filter filter) {
  filters_.emplace_back(std::move(name), std::move(filter));
}

std::string Logstash::index_for(const util::Json& doc) {
  std::string kind = "event";
  if (doc.is_object() && doc.contains("report") &&
      doc.at("report").is_string()) {
    kind = doc.at("report").as_string();
  }
  std::string prefix = "p4sonar-";
  if (doc.is_object() && doc.contains("tool")) prefix = "pscheduler-";
  return prefix + kind;
}

void Logstash::event(util::Json doc) {
  ++events_in_;
  if (doc.is_object() && doc.contains("@xmit_seq") &&
      doc.at("@xmit_seq").is_int()) {
    const auto seq = static_cast<std::uint64_t>(doc.at("@xmit_seq").as_int());
    // Ack every occurrence (the sender retires the frame on the first);
    // archive only the first — at-least-once + dedup == exactly-once.
    if (transport_ack_) transport_ack_(seq);
    if (!seen_xmit_seqs_.insert(seq).second) {
      ++duplicates_dropped_;
      return;
    }
  }
  for (const auto& [name, filter] : filters_) {
    auto next = filter(std::move(doc));
    if (!next.has_value()) {
      ++events_dropped_;
      return;
    }
    doc = std::move(*next);
  }
  output(std::move(doc));
}

void Logstash::tcp_input(std::string_view payload) {
  bytes_in_ += payload.size();
  partial_.append(payload);
  std::size_t start = 0;
  while (true) {
    const std::size_t end = partial_.find('\n', start);
    if (end == std::string::npos) break;  // no full line yet; keep tail
    if (end > start) {
      ++lines_in_;
      const std::string_view line(partial_.data() + start, end - start);
      try {
        event(util::Json::parse(line));
      } catch (const util::JsonError&) {
        ++parse_failures_;  // real plugin tags _jsonparsefailure
      }
    }
    start = end + 1;
  }
  partial_.erase(0, start);
}

void Logstash::tcp_reset() {
  ++tcp_resets_;
  partial_.clear();
}

void Logstash::output(util::Json doc) {
  // The OpenSearch output plugin decorates the event with archive
  // metadata: this is what turns Report_v1 into Report_v2 (Figure 7).
  if (doc.is_object()) {
    if (doc.contains("ts_ns")) {
      doc["@timestamp"] = doc.at("ts_ns");
    }
    doc["@seq"] = static_cast<std::int64_t>(sequence_++);
    doc["@pipeline"] = "p4sonar";
  }
  const std::string index = index_for(doc);
  archiver_.index(index, std::move(doc));
  ++events_out_;
}

}  // namespace p4s::ps
