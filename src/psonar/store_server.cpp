#include "psonar/store_server.hpp"

#include <algorithm>

namespace p4s::ps {

StoreServer::StoreServer(store::Store& store, StoreServerConfig config)
    : store_(store), config_(config) {
  readers_.reserve(config_.reader_threads);
  for (std::size_t i = 0; i < config_.reader_threads; ++i) {
    readers_.emplace_back([this] { worker_loop(); });
  }
}

StoreServer::~StoreServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& reader : readers_) reader.join();
}

void StoreServer::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void StoreServer::enqueue(std::function<void()> task) const {
  async_queries_.fetch_add(1, std::memory_order_relaxed);
  if (readers_.empty()) {
    // No pool configured: run inline, still snapshot-pinned.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

std::vector<util::Json> StoreServer::search(const std::string& index_name,
                                            const ArchiverQuery& query) const {
  searches_.fetch_add(1, std::memory_order_relaxed);
  const store::Snapshot snapshot = store_.snapshot();
  std::vector<util::Json> out;
  snapshot_for_each(snapshot, index_name, query, [&](const util::Json& doc) {
    out.push_back(doc);
    return true;
  });
  return out;
}

ArchiverAggregation StoreServer::aggregate(const std::string& index_name,
                                           const std::string& field,
                                           const ArchiverQuery& query) const {
  aggregates_.fetch_add(1, std::memory_order_relaxed);
  const store::Snapshot snapshot = store_.snapshot();
  if (auto fast =
          snapshot_aggregate_fast(snapshot, index_name, field, query)) {
    return *fast;
  }
  ArchiverAggregation agg;
  snapshot_for_each(snapshot, index_name, query, [&](const util::Json& doc) {
    const auto value = archiver_field_at(doc, field);
    if (!value.has_value() || !value->is_number()) return true;
    const double v = value->as_double();
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.sum += v;
    ++agg.count;
    return true;
  });
  if (agg.count > 0) agg.avg = agg.sum / static_cast<double>(agg.count);
  return agg;
}

std::optional<util::Json> StoreServer::latest_value(
    const std::string& index_name, const std::string& field,
    const ArchiverQuery& query) const {
  latest_queries_.fetch_add(1, std::memory_order_relaxed);
  const store::Snapshot snapshot = store_.snapshot();
  ArchiverQuery newest = query;
  newest.newest_first = true;
  newest.limit = 1;
  std::optional<util::Json> out;
  snapshot_for_each(snapshot, index_name, newest, [&](const util::Json& doc) {
    out = archiver_field_at(doc, field);
    return false;
  });
  return out;
}

std::future<std::vector<util::Json>> StoreServer::submit_search(
    const std::string& index_name, const ArchiverQuery& query) const {
  auto task = std::make_shared<std::packaged_task<std::vector<util::Json>()>>(
      [this, index_name, query] { return search(index_name, query); });
  auto future = task->get_future();
  enqueue([task] { (*task)(); });
  return future;
}

std::future<ArchiverAggregation> StoreServer::submit_aggregate(
    const std::string& index_name, const std::string& field,
    const ArchiverQuery& query) const {
  auto task = std::make_shared<std::packaged_task<ArchiverAggregation()>>(
      [this, index_name, field, query] {
        return aggregate(index_name, field, query);
      });
  auto future = task->get_future();
  enqueue([task] { (*task)(); });
  return future;
}

std::future<std::optional<util::Json>> StoreServer::submit_latest(
    const std::string& index_name, const std::string& field,
    const ArchiverQuery& query) const {
  auto task = std::make_shared<std::packaged_task<std::optional<util::Json>()>>(
      [this, index_name, field, query] {
        return latest_value(index_name, field, query);
      });
  auto future = task->get_future();
  enqueue([task] { (*task)(); });
  return future;
}

StoreServerStats StoreServer::stats() const {
  StoreServerStats out;
  out.searches = searches_.load(std::memory_order_relaxed);
  out.aggregates = aggregates_.load(std::memory_order_relaxed);
  out.latest_queries = latest_queries_.load(std::memory_order_relaxed);
  out.async_queries = async_queries_.load(std::memory_order_relaxed);
  out.reader_threads = readers_.size();
  return out;
}

}  // namespace p4s::ps
