#include "telemetry/queue_monitor.hpp"

namespace p4s::telemetry {

QueueMonitor::QueueMonitor(Config config)
    : config_(config),
      pkt_ts_(kPacketSigSlots, SigEntry{}),
      flow_delay_(kFlowSlots, 0) {}

void QueueMonitor::on_ingress_copy(std::uint32_t pkt_sig, SimTime now) {
  const std::uint32_t idx = pkt_sig & kPacketSigMask;
  pkt_ts_.execute(idx, [&](SigEntry& e) {
    e.check = pkt_sig;
    e.ts = now;
    return 0;
  });
}

std::optional<SimTime> QueueMonitor::on_egress_copy(
    std::uint32_t pkt_sig, std::optional<std::uint16_t> slot, SimTime now) {
  const std::uint32_t idx = pkt_sig & kPacketSigMask;
  std::optional<SimTime> delay;
  pkt_ts_.execute(idx, [&](SigEntry& e) {
    if (e.ts != 0 && e.check == pkt_sig && now >= e.ts) {
      delay = now - e.ts;
      e = SigEntry{};
    }
    return 0;
  });
  if (!delay.has_value()) {
    ++unmatched_;
    return std::nullopt;
  }
  ++matched_;
  last_delay_ = *delay;
  if (slot.has_value()) flow_delay_.write(*slot, *delay);

  // Microburst state machine (runs on every matched packet).
  if (!burst_active_) {
    if (*delay >= config_.burst_threshold_ns) {
      burst_active_ = true;
      burst_start_ = now - *delay;  // burst began when this packet queued
      burst_peak_delay_ = *delay;
      burst_pkts_ = 1;
    }
  } else {
    ++burst_pkts_;
    if (*delay > burst_peak_delay_) burst_peak_delay_ = *delay;
    if (*delay <= config_.burst_exit_ns) {
      burst_active_ = false;
      digests_.emit(MicroburstDigest{burst_start_, now - burst_start_,
                                     burst_peak_delay_, burst_pkts_});
      burst_peak_delay_ = 0;
      burst_pkts_ = 0;
    }
  }
  return delay;
}

}  // namespace p4s::telemetry
