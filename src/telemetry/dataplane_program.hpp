// The complete data-plane telemetry program — the paper's P4 pipeline —
// composed from the individual engines:
//
//   ingress-TAP copies: flow tracking (CMS promotion), byte/packet
//   counters, Algorithm 1 (RTT + loss), flight-size limitation
//   classification, IAT monitoring, FIN digests, eACK parking for the
//   queue monitor;
//   egress-TAP copies: TAP-pair matching -> per-packet queuing delay ->
//   per-flow queue registers + microburst state machine.
//
// The control plane talks to this object through the register-read,
// digest-drain and slot-release methods — nothing else, mirroring the
// driver API boundary of a real target.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "p4/hash.hpp"
#include "p4/p4_switch.hpp"
#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "telemetry/field_view.hpp"
#include "telemetry/flow_counters.hpp"
#include "telemetry/flow_tracker.hpp"
#include "telemetry/histogram_engines.hpp"
#include "telemetry/iat_monitor.hpp"
#include "telemetry/int_export.hpp"
#include "telemetry/limit_classifier.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/nids_features.hpp"
#include "telemetry/packet_engine.hpp"
#include "telemetry/queue_monitor.hpp"
#include "telemetry/rtt_loss.hpp"
#include "telemetry/spin_rtt.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class DataPlaneProgram : public p4::P4Program {
 public:
  struct Config {
    FlowTracker::Config tracker;
    QueueMonitor::Config queue;
    LimitClassifier::Config limit;
    IatMonitor::Config iat;
    IntExporter::Config int_export;
    /// eACK register size (power of two); ablation knob.
    std::size_t eack_slots = kEackSlots;
    /// Switch-wide histogram engines (empty by default: the histogram
    /// stages exist only when configured, leaving the default pipeline
    /// untouched).
    std::vector<HistogramEngineConfig> histograms;
    /// Spin-bit RTT engine for encrypted QUIC traffic (absent by
    /// default, same gating rule as the histograms).
    std::optional<SpinRttEngineConfig> spin_rtt;
    /// Per-flow NIDS feature engine + threshold classifier (absent by
    /// default).
    std::optional<NidsFeatureEngineConfig> nids;
  };

  explicit DataPlaneProgram(Config config);
  DataPlaneProgram() : DataPlaneProgram(Config{}) {}

  void ingress(p4::PacketContext& ctx) override;

  // ---- Control-plane (driver) API -------------------------------------
  FlowTracker& tracker() { return tracker_; }
  const FlowTracker& tracker() const { return tracker_; }
  RttLossEngine& rtt_loss() { return rtt_loss_; }
  const RttLossEngine& rtt_loss() const { return rtt_loss_; }
  QueueMonitor& queue_monitor() { return queue_; }
  const QueueMonitor& queue_monitor() const { return queue_; }
  LimitClassifier& limit_classifier() { return limit_; }
  const LimitClassifier& limit_classifier() const { return limit_; }
  IatMonitor& iat_monitor() { return iat_; }
  const IatMonitor& iat_monitor() const { return iat_; }
  IntExporter& int_exporter() { return int_; }
  const IntExporter& int_exporter() const { return int_; }
  FlowCounters& counters() { return counters_; }
  const FlowCounters& counters() const { return counters_; }

  std::uint64_t bytes(std::uint16_t slot) const {
    return counters_.bytes(slot);
  }
  std::uint64_t packets(std::uint16_t slot) const {
    return counters_.packets(slot);
  }
  SimTime last_seen(std::uint16_t slot) const {
    return counters_.last_seen(slot);
  }
  SimTime first_seen(std::uint16_t slot) const {
    return counters_.first_seen(slot);
  }

  p4::DigestQueue<FlowFinDigest>& fin_digests() { return fin_digests_; }

  /// Configured switch-wide histogram engines (owning list, in config
  /// order). Empty unless Config::histograms named any.
  const std::vector<std::unique_ptr<HistogramEngine>>& histogram_engines()
      const {
    return hist_engines_;
  }

  /// Configured spin-bit RTT engine, or nullptr when not configured.
  SpinRttEngine* spin_rtt_engine() { return spin_rtt_.get(); }
  const SpinRttEngine* spin_rtt_engine() const { return spin_rtt_.get(); }

  /// Configured NIDS feature engine, or nullptr when not configured.
  NidsFeatureEngine* nids_engine() { return nids_.get(); }
  const NidsFeatureEngine* nids_engine() const { return nids_.get(); }

  // ---- Engine registry ------------------------------------------------
  // The registry is the program's definition of "every engine": the
  // built-in stages register themselves in the constructor (in release
  // order) and slot recycling iterates the list, so an engine added here
  // — or registered externally by an extension — cannot be missed.
  const std::vector<MetricEngine*>& engines() const { return engines_; }

  /// Register an additional engine. The program does not own it; the
  /// caller must keep it alive for the program's lifetime.
  void register_engine(MetricEngine& engine) { engines_.push_back(&engine); }

  /// Register an engine that also observes the per-packet FieldView
  /// stream (the measurement-program VM). Enrolls it in the MetricEngine
  /// registry too; same ownership rules as register_engine().
  void register_packet_engine(PacketEngine& engine) {
    register_engine(engine);
    packet_engines_.push_back(&engine);
  }

  const std::vector<PacketEngine*>& packet_engines() const {
    return packet_engines_;
  }

  /// True when every registered engine reports `slot` cleared — the
  /// invariant release_slot() establishes.
  bool slot_cleared(std::uint16_t slot) const;

  /// Total digest backlog across all registered engines.
  std::size_t pending_digests() const;

  /// Release a slot: every registered engine clears its state for it.
  void release_slot(std::uint16_t slot);

  std::uint64_t ingress_copies() const { return ingress_copies_; }
  std::uint64_t egress_copies() const { return egress_copies_; }

  /// Packets whose 5-tuple hash inputs were served from the one-entry
  /// memo instead of recomputed (the egress-TAP copy of a packet always
  /// follows its ingress copy through the pipeline).
  std::uint64_t flow_key_memo_hits() const { return memo_hits_; }

 private:
  void process_measurement_path(const FieldView& view);

  static net::FiveTuple tuple_from(const p4::ParsedHeaders& hdr);
  static std::uint32_t packet_signature(
      const std::array<std::uint8_t, 13>& tuple_key,
      const p4::ParsedHeaders& hdr);

  /// Hash inputs for the current packet's tuple, memoized across copies:
  /// the ingress-TAP and egress-TAP copies of the same packet arrive
  /// back-to-back, so the second copy reuses the key bytes and both CRCs.
  const p4::FlowKey& flow_key_for(const net::FiveTuple& tuple);

  FlowTracker tracker_;
  RttLossEngine rtt_loss_;
  QueueMonitor queue_;
  LimitClassifier limit_;
  IatMonitor iat_;
  IntExporter int_;
  FlowCounters counters_;

  // Histogram engines by metric, for the per-packet dispatch: raw views
  // into hist_engines_ (all empty in the default configuration).
  std::vector<std::unique_ptr<HistogramEngine>> hist_engines_;
  std::vector<RttHistogramEngine*> rtt_hists_;
  std::vector<IatHistogramEngine*> iat_hists_;
  std::vector<QueueDelayHistogramEngine*> queue_hists_;
  std::unique_ptr<SpinRttEngine> spin_rtt_;
  std::unique_ptr<NidsFeatureEngine> nids_;

  std::vector<MetricEngine*> engines_;
  std::vector<PacketEngine*> packet_engines_;
  p4::DigestQueue<FlowFinDigest> fin_digests_;

  p4::FlowKey memo_{};
  bool memo_valid_ = false;
  std::uint64_t memo_hits_ = 0;

  std::uint64_t ingress_copies_ = 0;
  std::uint64_t egress_copies_ = 0;
};

}  // namespace p4s::telemetry
