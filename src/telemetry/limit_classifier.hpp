// Connection-limitation classification (§3.3.4, §4.4), after Ghasemi et
// al.'s Dapper: the data plane watches each flow's flight size (bytes in
// the air: highest sequence sent minus highest ACK seen) across fixed
// evaluation windows.
//
//  * losses observed in the window, or sustained queuing at the
//    bottleneck                         -> network-limited;
//  * flight size stable and no losses   -> sender/receiver-limited;
//  * flight growing without losses      -> indeterminate (the flow is
//    still probing for bandwidth), reported as unknown.
#pragma once

#include <cstdint>

#include "p4/register.hpp"
#include "tcp/seq.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class LimitClassifier : public MetricEngine {
 public:
  struct Config {
    /// Evaluation window length.
    SimTime window_ns = units::milliseconds(500);
    /// Flight-size swing within a window below which the flow counts as
    /// stable: max - min <= max(stability_abs_bytes,
    /// stability_frac * max).
    std::uint64_t stability_abs_bytes = 3 * 1460;
    double stability_frac = 0.15;
    /// Per-packet queuing delay above this marks the window as
    /// "queuing at the bottleneck" (a network constraint).
    SimTime queueing_delay_ns = units::milliseconds(1);
    /// A network-limited verdict persists for this many subsequent
    /// windows: random loss hits individual windows sporadically, but the
    /// flow as a whole is network-limited (Fig. 12's DTN1 case).
    std::uint32_t network_memory_windows = 6;
  };

  explicit LimitClassifier(Config config);
  LimitClassifier() : LimitClassifier(Config{}) {}

  void on_data(std::uint16_t slot, std::uint32_t seq,
               std::uint32_t payload_bytes, SimTime now);
  void on_ack(std::uint16_t slot, std::uint32_t ack, SimTime now);
  void on_loss(std::uint16_t slot);
  void on_queue_delay(std::uint16_t slot, SimTime delay);

  // ---- Control-plane reads --------------------------------------------
  LimitVerdict verdict(std::uint16_t slot) const {
    return static_cast<LimitVerdict>(verdict_.cp_read(slot));
  }
  std::uint64_t flight_bytes(std::uint16_t slot) const {
    return flight_.cp_read(slot);
  }

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "limit_classifier"; }
  void clear_slot(std::uint16_t slot) override;
  bool slot_cleared(std::uint16_t slot) const override;

 private:
  void update_flight(std::uint16_t slot, SimTime now);
  void maybe_evaluate(std::uint16_t slot, SimTime now);

  Config config_;
  p4::RegisterArray<std::uint32_t> highest_seq_;
  p4::RegisterArray<std::uint8_t> seq_valid_;
  p4::RegisterArray<std::uint32_t> highest_ack_;
  p4::RegisterArray<std::uint8_t> ack_valid_;
  p4::RegisterArray<std::uint64_t> flight_;
  p4::RegisterArray<SimTime> win_start_;
  p4::RegisterArray<std::uint32_t> win_losses_;
  p4::RegisterArray<std::uint64_t> win_flight_min_;
  p4::RegisterArray<std::uint64_t> win_flight_max_;
  p4::RegisterArray<std::uint8_t> win_queueing_;
  p4::RegisterArray<std::uint8_t> verdict_;
  p4::RegisterArray<std::uint32_t> network_memory_;
};

}  // namespace p4s::telemetry
