// Queue-occupancy monitoring and microburst detection (§4.2, §3.3.3).
//
// The TAP pair duplicates every packet twice: once entering the core
// switch, once leaving it. Both copies traverse equal-latency fibers to
// the P4 switch, so the difference between their arrival timestamps IS
// the time the packet spent inside the core switch (queuing + store-and-
// forward serialization). The ingress copy's timestamp is parked in a
// signature-indexed register; the egress copy retrieves it.
//
// The per-packet queuing delay feeds two consumers:
//  * a per-flow queuing-delay register the control plane samples and
//    converts to queue occupancy (delay / buffer drain time), and
//  * the in-data-plane microburst detector: a delay excursion above the
//    burst threshold opens a burst record (nanosecond start); dropping
//    below the exit threshold (hysteresis) closes it and emits a digest
//    with the start time and duration — sampling-free, as the paper
//    requires for bursts of tens of microseconds.
#pragma once

#include <cstdint>
#include <optional>

#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class QueueMonitor : public MetricEngine {
 public:
  struct Config {
    /// Queuing delay that opens a microburst record.
    SimTime burst_threshold_ns = units::microseconds(500);
    /// Delay below which an open burst closes (hysteresis).
    SimTime burst_exit_ns = units::microseconds(250);
  };

  explicit QueueMonitor(Config config);
  QueueMonitor() : QueueMonitor(Config{}) {}

  /// Ingress-TAP copy observed. `pkt_sig` identifies this packet instance
  /// (flow id + IP id + seq, hashed by the caller).
  void on_ingress_copy(std::uint32_t pkt_sig, SimTime now);

  /// Egress-TAP copy observed. Returns the queuing delay when the copy
  /// pair matched. `slot` is the flow's register slot (or nullopt for
  /// untracked flows — delay still feeds the switch-wide burst detector).
  std::optional<SimTime> on_egress_copy(std::uint32_t pkt_sig,
                                        std::optional<std::uint16_t> slot,
                                        SimTime now);

  // ---- Control-plane reads --------------------------------------------
  SimTime last_queue_delay(std::uint16_t slot) const {
    return flow_delay_.cp_read(slot);
  }
  /// Most recent per-packet delay regardless of flow (switch-wide view).
  SimTime last_delay_any() const { return last_delay_; }

  // ---- MetricEngine ---------------------------------------------------
  // (The packet-signature table is per-packet, not per-slot, so only the
  // per-flow delay register participates in the slot invariant.)
  std::string_view name() const override { return "queue_monitor"; }
  void clear_slot(std::uint16_t slot) override {
    flow_delay_.cp_write(slot, 0);
  }
  bool slot_cleared(std::uint16_t slot) const override {
    return flow_delay_.cp_read(slot) == 0;
  }
  std::size_t pending_digests() const override { return digests_.pending(); }

  p4::DigestQueue<MicroburstDigest>& microburst_digests() {
    return digests_;
  }

  bool burst_active() const { return burst_active_; }
  std::uint64_t matched_pairs() const { return matched_; }
  std::uint64_t unmatched_egress() const { return unmatched_; }

 private:
  struct SigEntry {
    std::uint32_t check = 0;
    SimTime ts = 0;
  };

  Config config_;
  p4::RegisterArray<SigEntry> pkt_ts_;
  p4::RegisterArray<SimTime> flow_delay_;
  p4::DigestQueue<MicroburstDigest> digests_;

  SimTime last_delay_ = 0;
  bool burst_active_ = false;
  SimTime burst_start_ = 0;
  SimTime burst_peak_delay_ = 0;
  std::uint64_t burst_pkts_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t unmatched_ = 0;
};

}  // namespace p4s::telemetry
