#include "telemetry/nids_features.hpp"

#include <algorithm>

namespace p4s::telemetry {

namespace {

using net::tcpflags::kAck;
using net::tcpflags::kFin;
using net::tcpflags::kPsh;
using net::tcpflags::kRst;
using net::tcpflags::kSyn;

std::uint64_t canonical_key(std::uint32_t flow_id, std::uint32_t rev_id) {
  const std::uint32_t lo = std::min(flow_id, rev_id);
  const std::uint32_t hi = std::max(flow_id, rev_id);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

NidsFeatureEngine::NidsFeatureEngine(const NidsFeatureEngineConfig& config)
    : config_(config) {}

void NidsFeatureEngine::on_packet(const FieldView& view) {
  if (view.egress_copy()) return;  // one observation per packet
  const SimTime now = view.ingress_ts();

  const std::uint64_t key =
      canonical_key(view.flow_id(), view.rev_flow_id());
  const bool fwd = view.flow_id() <= view.rev_flow_id();

  auto it = flows_.find(key);
  if (it == flows_.end()) {
    if (flows_.size() >= config_.max_flows) {
      ++untracked_flows_;
      it = flows_.end();
    } else {
      FlowRow row;
      row.tuple = view.flow_key().tuple;
      row.fwd_is_lower_hash = fwd;
      row.first_ts = now;
      row.last_ts = now;
      it = flows_.emplace(key, row).first;
    }
  }

  const std::uint8_t flags =
      view.is_tcp() ? view.ctx().hdr.tcp.flags : 0;
  const bool syn = (flags & kSyn) != 0 && (flags & kAck) == 0;
  const bool synack = (flags & kSyn) != 0 && (flags & kAck) != 0;

  if (it != flows_.end()) {
    FlowRow& row = it->second;
    const bool row_fwd = fwd == row.fwd_is_lower_hash;
    if (row_fwd) {
      ++row.fwd_pkts;
      row.fwd_bytes += view.ipv4_total_len();
    } else {
      ++row.rev_pkts;
      row.rev_bytes += view.ipv4_total_len();
    }
    if (syn) ++row.syn;
    if (synack) ++row.synack;
    if ((flags & kFin) != 0) ++row.fin;
    if ((flags & kRst) != 0) ++row.rst;
    if ((flags & kPsh) != 0) ++row.psh;
    if ((flags & kAck) != 0) ++row.ack;
    if (row.last_ts != 0 && now >= row.last_ts &&
        row.fwd_pkts + row.rev_pkts > 1) {
      row.iat_us.add(static_cast<double>(now - row.last_ts) / 1e3);
    }
    row.len.add(static_cast<double>(view.ipv4_total_len()));
    row.last_ts = now;
    ++row.window_pkts;
  }

  // Window classifier inputs (independent of the per-flow cap — a flood
  // of one-packet flows must still be countable).
  if (syn) {
    ++window_syns_;
    ++syn_dst_counts_[view.flow_key().tuple.dst_ip];
    ScanRow& scan = scan_rows_[view.flow_key().tuple.src_ip];
    ++scan.syns;
    scan.last_dst = view.flow_key().tuple.dst_ip;
    const std::uint16_t port = view.flow_key().tuple.dst_port;
    if (scan.ports.size() <= config_.port_scan_ports &&
        std::find(scan.ports.begin(), scan.ports.end(), port) ==
            scan.ports.end()) {
      scan.ports.push_back(port);
    }
  }
  if (synack) ++window_synacks_;
}

std::vector<util::Json> NidsFeatureEngine::drain_digests(SimTime now) {
  std::vector<util::Json> docs;

  // The digest poll fires far more often than one classifier window; a
  // drain before the window has elapsed is a no-op so the thresholds
  // apply to the full aggregation interval, not a poll period.
  if (now < window_start_ + config_.window) return docs;
  window_start_ = now;

  // Deterministic document order (the archive goldens and the parallel
  // byte-identity pin both hash report lines): sort active rows by their
  // forward tuple instead of leaking unordered_map iteration order.
  std::vector<FlowRow*> active;
  for (auto& [key, row] : flows_) {
    if (row.window_pkts >= config_.min_window_packets)
      active.push_back(&row);
  }
  std::sort(active.begin(), active.end(),
            [](const FlowRow* a, const FlowRow* b) {
              return a->tuple.to_string() < b->tuple.to_string();
            });
  for (FlowRow* rp : active) {
    FlowRow& row = *rp;
    util::Json j = util::Json::object();
    j["report"] = "nids_features";
    j["ts_ns"] = now;
    j["flow"] = row.tuple.to_string();
    j["fwd_pkts"] = row.fwd_pkts;
    j["fwd_bytes"] = row.fwd_bytes;
    j["rev_pkts"] = row.rev_pkts;
    j["rev_bytes"] = row.rev_bytes;
    j["syn"] = row.syn;
    j["synack"] = row.synack;
    j["fin"] = row.fin;
    j["rst"] = row.rst;
    j["psh"] = row.psh;
    j["ack"] = row.ack;
    j["iat_mean_us"] = row.iat_us.mean;
    j["iat_var_us2"] = row.iat_us.variance();
    j["len_mean_bytes"] = row.len.mean;
    j["len_var_bytes2"] = row.len.variance();
    j["duration_ns"] = row.last_ts - row.first_ts;
    docs.push_back(std::move(j));
    row.window_pkts = 0;
  }

  // SYN flood: many SYNs, almost no SYN-ACKs coming back.
  if (window_syns_ >= config_.syn_flood_syns &&
      (window_synacks_ == 0 ||
       static_cast<double>(window_syns_) >=
           config_.syn_flood_ratio *
               static_cast<double>(window_synacks_))) {
    net::Ipv4Address victim = 0;
    std::uint64_t victim_syns = 0;
    for (const auto& [dst, count] : syn_dst_counts_) {
      // Lowest address breaks count ties: the pick must not depend on
      // unordered_map iteration order.
      if (count > victim_syns ||
          (count == victim_syns && (victim_syns == 0 || dst < victim))) {
        victim = dst;
        victim_syns = count;
      }
    }
    util::Json j = util::Json::object();
    j["report"] = "nids_alert";
    j["ts_ns"] = now;
    j["alert"] = "syn_flood";
    j["victim"] = net::to_string(victim);
    j["syns"] = window_syns_;
    j["synacks"] = window_synacks_;
    docs.push_back(std::move(j));
    ++alerts_emitted_;
  }

  // Port scan: one source fanning SYNs across many destination ports.
  std::vector<net::Ipv4Address> scanners;
  for (const auto& [src, scan] : scan_rows_) {
    if (scan.ports.size() >= config_.port_scan_ports)
      scanners.push_back(src);
  }
  std::sort(scanners.begin(), scanners.end());
  for (const net::Ipv4Address src : scanners) {
    const ScanRow& scan = scan_rows_[src];
    util::Json j = util::Json::object();
    j["report"] = "nids_alert";
    j["ts_ns"] = now;
    j["alert"] = "port_scan";
    j["attacker"] = net::to_string(src);
    j["victim"] = net::to_string(scan.last_dst);
    j["distinct_ports"] = scan.ports.size();
    j["syns"] = scan.syns;
    docs.push_back(std::move(j));
    ++alerts_emitted_;
  }

  window_syns_ = 0;
  window_synacks_ = 0;
  syn_dst_counts_.clear();
  scan_rows_.clear();
  return docs;
}

}  // namespace p4s::telemetry
