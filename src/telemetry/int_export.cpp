#include "telemetry/int_export.hpp"

namespace p4s::telemetry {

IntExporter::IntExporter(Config config)
    : config_(config), counters_(kFlowSlots, 0), postcards_(16384) {}

void IntExporter::on_egress(std::uint16_t slot, std::uint32_t flow_id,
                            std::uint32_t seq, SimTime queue_delay,
                            SimTime now) {
  if (!config_.enabled) return;
  ++packets_seen_;
  const std::uint32_t count =
      counters_.execute(slot, [](std::uint32_t& v) { return ++v; });
  if (count % config_.sample_every != 0) return;
  ++emitted_;
  postcards_.emit(IntPostcard{flow_id, slot, now, queue_delay, seq});
}

}  // namespace p4s::telemetry
