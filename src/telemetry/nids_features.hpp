// NidsFeatureEngine — P4-NIDS-style per-flow feature extraction with a
// threshold classifier for volumetric attacks.
//
// Computes, per bidirectional flow (canonical key: the smaller of the
// two direction hashes first), the classic NIDS feature vector:
// packet/byte counts in both directions, running mean/variance of
// inter-arrival time and packet length (Welford, single pass — the
// register-friendly formulation), TCP flag counts, and flow duration.
// Features leave the switch as periodic digests ("nids_features"
// documents) drained by the control plane's digest poll.
//
// On top of the per-window aggregates a threshold classifier tags the
// adversarial workloads src/workload generates:
//   * SYN flood — window SYN count over threshold while the SYN-ACK
//     response ratio collapses (spoofed sources never complete);
//   * port scan — one source touching many distinct destination ports
//     with SYNs inside the window.
// Verdicts are emitted as "nids_alert" documents, which ride the same
// report path into the archive (query: report=nids_alert).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "telemetry/packet_engine.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace p4s::telemetry {

struct NidsFeatureEngineConfig {
  /// Maximum tracked bidirectional flows; beyond it new flows are
  /// counted but not tracked (bounded state, like the cuckoo table).
  std::size_t max_flows = 4096;
  /// SYN-flood verdict: at least this many SYNs in one digest window...
  std::uint64_t syn_flood_syns = 200;
  /// ...with SYNs outnumbering SYN-ACKs by at least this factor.
  double syn_flood_ratio = 3.0;
  /// Port-scan verdict: one source SYNing at least this many distinct
  /// destination ports within the window.
  std::size_t port_scan_ports = 20;
  /// Emit a feature digest only for flows with at least this many
  /// packets in the window (keeps idle-flow noise out of the archive).
  std::uint64_t min_window_packets = 1;
  /// Classifier window length. The control plane polls digests every
  /// few milliseconds; drains before the window has elapsed return
  /// nothing so thresholds apply to a meaningful aggregation interval.
  /// Zero means every drain closes a window (unit-test mode).
  SimTime window = units::seconds(1);
};

class NidsFeatureEngine final : public PacketEngine {
 public:
  explicit NidsFeatureEngine(const NidsFeatureEngineConfig& config);

  void on_packet(const FieldView& view) override;

  /// Drain one digest window: per-flow feature documents for flows that
  /// saw traffic since the previous drain, then classifier alerts.
  /// Resets the window counters (flow rows persist for duration/totals).
  std::vector<util::Json> drain_digests(SimTime now);

  std::size_t tracked_flows() const { return flows_.size(); }
  std::uint64_t untracked_flows() const { return untracked_flows_; }
  std::uint64_t alerts_emitted() const { return alerts_emitted_; }

  // ---- MetricEngine ---------------------------------------------------
  // Keyed by its own canonical flow hash, not by tracker slots.
  std::string_view name() const override { return "nids_features"; }
  void clear_slot(std::uint16_t) override {}
  bool slot_cleared(std::uint16_t) const override { return true; }

 private:
  /// Single-pass mean/variance accumulator (Welford).
  struct Welford {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void add(double x) {
      ++count;
      const double d = x - mean;
      mean += d / static_cast<double>(count);
      m2 += d * (x - mean);
    }
    double variance() const {
      return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
    }
  };

  struct FlowRow {
    net::FiveTuple tuple;  // forward-direction 5-tuple (first seen wins)
    bool fwd_is_lower_hash = false;  // which direction `tuple` is
    std::uint64_t fwd_pkts = 0, fwd_bytes = 0;
    std::uint64_t rev_pkts = 0, rev_bytes = 0;
    std::uint64_t syn = 0, synack = 0, fin = 0, rst = 0, psh = 0, ack = 0;
    Welford iat_us;  // inter-arrival time, microseconds
    Welford len;     // IPv4 total length, bytes
    SimTime first_ts = 0;
    SimTime last_ts = 0;
    std::uint64_t window_pkts = 0;  // reset every drain
  };

  /// Per-source SYN fan-out inside the current window (port scans).
  struct ScanRow {
    std::vector<std::uint16_t> ports;  // distinct, capped
    net::Ipv4Address last_dst = 0;
    std::uint64_t syns = 0;
  };

  NidsFeatureEngineConfig config_;
  std::unordered_map<std::uint64_t, FlowRow> flows_;
  std::uint64_t untracked_flows_ = 0;

  // Window state for the classifier, reset on every drain.
  std::uint64_t window_syns_ = 0;
  std::uint64_t window_synacks_ = 0;
  std::unordered_map<net::Ipv4Address, std::uint64_t> syn_dst_counts_;
  std::unordered_map<net::Ipv4Address, ScanRow> scan_rows_;
  std::uint64_t alerts_emitted_ = 0;
  SimTime window_start_ = 0;
};

}  // namespace p4s::telemetry
