#include "telemetry/dataplane_program.hpp"

#include <array>

#include "p4/hash.hpp"

namespace p4s::telemetry {

DataPlaneProgram::DataPlaneProgram(Config config)
    : tracker_(config.tracker),
      rtt_loss_(config.eack_slots),
      queue_(config.queue),
      limit_(config.limit),
      iat_(config.iat),
      int_(config.int_export) {
  // Registration order matches the historical release order; release_slot
  // and the invariant checks iterate this list.
  register_engine(tracker_);
  register_engine(rtt_loss_);
  register_engine(queue_);
  register_engine(limit_);
  register_engine(iat_);
  register_engine(int_);
  register_engine(counters_);

  for (const HistogramEngineConfig& hc : config.histograms) {
    hist_engines_.push_back(make_histogram_engine(hc));
    HistogramEngine* engine = hist_engines_.back().get();
    register_engine(*engine);
    switch (engine->metric()) {
      case HistogramEngineConfig::Metric::kRtt:
        rtt_hists_.push_back(static_cast<RttHistogramEngine*>(engine));
        break;
      case HistogramEngineConfig::Metric::kIat:
        iat_hists_.push_back(static_cast<IatHistogramEngine*>(engine));
        break;
      case HistogramEngineConfig::Metric::kQueueDelay:
        queue_hists_.push_back(
            static_cast<QueueDelayHistogramEngine*>(engine));
        break;
    }
  }

  // Optional engines observing the per-packet stream (absent in the
  // default pipeline, so the golden traces never see them).
  if (config.spin_rtt.has_value()) {
    spin_rtt_ = std::make_unique<SpinRttEngine>(*config.spin_rtt);
    register_packet_engine(*spin_rtt_);
  }
  if (config.nids.has_value()) {
    nids_ = std::make_unique<NidsFeatureEngine>(*config.nids);
    register_packet_engine(*nids_);
  }
}

net::FiveTuple DataPlaneProgram::tuple_from(const p4::ParsedHeaders& hdr) {
  net::FiveTuple t;
  t.src_ip = hdr.ipv4.src;
  t.dst_ip = hdr.ipv4.dst;
  t.protocol = hdr.ipv4.protocol;
  if (hdr.tcp_valid) {
    t.src_port = hdr.tcp.src_port;
    t.dst_port = hdr.tcp.dst_port;
  } else if (hdr.udp_valid) {
    t.src_port = hdr.udp.src_port;
    t.dst_port = hdr.udp.dst_port;
  } else if (hdr.icmp_valid) {
    t.src_port = hdr.icmp.ident;
    t.dst_port = hdr.icmp.ident;
  }
  return t;
}

std::uint32_t DataPlaneProgram::packet_signature(
    const std::array<std::uint8_t, 13>& tuple_key,
    const p4::ParsedHeaders& hdr) {
  // Identify a packet *instance* so the two TAP copies can be matched:
  // 5-tuple + IPv4 identification + (for TCP) sequence number. The IP id
  // alone cycles every 64k packets per host; adding the sequence number
  // pushes collisions out beyond any realistic in-switch dwell time.
  std::array<std::uint8_t, 19> key{};
  std::copy(tuple_key.begin(), tuple_key.end(), key.begin());
  key[13] = static_cast<std::uint8_t>(hdr.ipv4.id >> 8);
  key[14] = static_cast<std::uint8_t>(hdr.ipv4.id);
  std::uint32_t seq = 0;
  if (hdr.tcp_valid) seq = hdr.tcp.seq;
  key[15] = static_cast<std::uint8_t>(seq >> 24);
  key[16] = static_cast<std::uint8_t>(seq >> 16);
  key[17] = static_cast<std::uint8_t>(seq >> 8);
  key[18] = static_cast<std::uint8_t>(seq);
  return p4::Crc32{0x04C11DB7u}(key);
}

const p4::FlowKey& DataPlaneProgram::flow_key_for(
    const net::FiveTuple& tuple) {
  if (memo_valid_ && memo_.tuple == tuple) {
    ++memo_hits_;
    return memo_;
  }
  memo_ = p4::FlowKey::from(tuple);
  memo_valid_ = true;
  return memo_;
}

void DataPlaneProgram::ingress(p4::PacketContext& ctx) {
  if (!ctx.hdr.ipv4_valid) return;
  const p4::FlowKey& fk = flow_key_for(tuple_from(ctx.hdr));
  const std::uint32_t pkt_sig = packet_signature(fk.key, ctx.hdr);
  const SimTime now = ctx.meta.ingress_ts;
  const bool egress_copy =
      ctx.meta.ingress_port != p4::P4Switch::kIngressTapPort;

  // One field derivation per copy, shared by the hand-written engines
  // below and every registered packet engine (the VM): the accessor
  // table is THE definition of each field's arithmetic.
  FieldView view(ctx, fk, egress_copy);

  if (!egress_copy) {
    ++ingress_copies_;
    queue_.on_ingress_copy(pkt_sig, now);
    process_measurement_path(view);
    for (PacketEngine* engine : packet_engines_) engine->on_packet(view);
    return;
  }

  // Egress-TAP copy: close the TAP pair, attribute the delay to the flow
  // if it is tracked, and feed the classifier's queuing signal. The IAT
  // monitor also runs here: departures on the monitored link are the
  // signal that collapses instantly under an LOS blockage (§5.4.3),
  // whereas arrivals keep flowing until TCP itself stalls.
  ++egress_copies_;
  const std::uint32_t payload = view.payload_bytes();
  const std::uint32_t flow_id = fk.flow_id;
  std::optional<std::uint16_t> slot = tracker_.dp_slot_of(flow_id);
  const std::optional<SimTime> delay =
      queue_.on_egress_copy(pkt_sig, slot, now);
  if (delay.has_value()) view.set_queue_delay(*delay);
  // The switch-wide histograms observe every packet on the link, tracked
  // or not — that is their whole point.
  if (delay.has_value()) {
    for (QueueDelayHistogramEngine* h : queue_hists_) h->on_delay(*delay);
  }
  if (payload > 0) {
    for (IatHistogramEngine* h : iat_hists_) h->on_data(flow_id, now);
  }
  if (slot.has_value()) {
    if (delay.has_value()) limit_.on_queue_delay(*slot, *delay);
    if (payload > 0) {
      iat_.on_data(*slot, now);
      int_.on_egress(*slot, flow_id, view.tcp_seq(), delay.value_or(0),
                     now);
    }
  }
  for (PacketEngine* engine : packet_engines_) engine->on_packet(view);
}

void DataPlaneProgram::process_measurement_path(const FieldView& view) {
  const p4::PacketContext& ctx = view.ctx();
  const p4::FlowKey& fk = view.flow_key();
  const SimTime now = view.ingress_ts();
  const bool is_tcp = view.is_tcp();
  const std::uint32_t payload = view.payload_bytes();
  const bool fin = view.fin();

  if (view.pure_ack()) {
    // ACK branch of Algorithm 1: this packet travels the reverse
    // direction; hash of its reversed tuple is the data flow's ID.
    const std::uint32_t ack_flow_id = fk.flow_id;
    const std::uint32_t data_flow_id = fk.rev_flow_id;
    // Switch-wide RTT histograms match every ACK, tracked flow or not.
    for (RttHistogramEngine* h : rtt_hists_) {
      h->on_ack(ack_flow_id, ctx.hdr.tcp.ack, now);
    }
    if (auto slot = tracker_.dp_slot_of(data_flow_id)) {
      rtt_loss_.on_ack_packet(
          RttLossEngine::AckPacketView{ack_flow_id, *slot,
                                       ctx.hdr.tcp.ack},
          now);
      limit_.on_ack(*slot, ctx.hdr.tcp.ack, now);
    }
    return;
  }

  if (payload == 0 && !fin) return;  // SYN/SYN-ACK/etc: no measurements

  // Park the expected-ACK signature before the slot gate so untracked
  // flows still contribute RTT samples.
  if (is_tcp && payload > 0) {
    for (RttHistogramEngine* h : rtt_hists_) {
      h->on_data(fk.rev_flow_id, ctx.hdr.tcp.seq, payload, now);
    }
  }

  const auto slot = tracker_.on_data_packet(fk, payload, now);
  if (!slot.has_value()) return;

  counters_.on_data(*slot, ctx.hdr.ipv4.total_len, now);
  for (PacketEngine* engine : packet_engines_) {
    engine->on_tracked_data(*slot, view);
  }

  if (is_tcp) {
    const std::uint32_t rev_flow_id = fk.rev_flow_id;
    const bool loss = rtt_loss_.on_data_packet(
        RttLossEngine::DataPacketView{*slot, rev_flow_id, ctx.hdr.tcp.seq,
                                      payload, false},
        now);
    if (loss) limit_.on_loss(*slot);
    limit_.on_data(*slot, ctx.hdr.tcp.seq, payload, now);
    if (fin) fin_digests_.emit(FlowFinDigest{*slot, now});
  }
}

void DataPlaneProgram::release_slot(std::uint16_t slot) {
  for (MetricEngine* engine : engines_) engine->clear_slot(slot);
}

bool DataPlaneProgram::slot_cleared(std::uint16_t slot) const {
  for (const MetricEngine* engine : engines_) {
    if (!engine->slot_cleared(slot)) return false;
  }
  return true;
}

std::size_t DataPlaneProgram::pending_digests() const {
  std::size_t total = fin_digests_.pending();
  for (const MetricEngine* engine : engines_) {
    total += engine->pending_digests();
  }
  return total;
}

}  // namespace p4s::telemetry
