#include "telemetry/iat_monitor.hpp"

namespace p4s::telemetry {

IatMonitor::IatMonitor(Config config)
    : config_(config),
      last_ts_(kFlowSlots, 0),
      last_iat_(kFlowSlots, 0),
      ewma_(kFlowSlots, 0),
      samples_(kFlowSlots, 0),
      gap_streak_(kFlowSlots, 0),
      blocked_(kFlowSlots, 0),
      digests_() {}

std::optional<SimTime> IatMonitor::on_data(std::uint16_t slot, SimTime now) {
  const SimTime last = last_ts_.read(slot);
  last_ts_.write(slot, now);
  if (last == 0 || now < last) return std::nullopt;

  const SimTime iat = now - last;
  last_iat_.write(slot, iat);

  const SimTime ewma = ewma_.read(slot);
  const std::uint32_t n =
      samples_.execute(slot, [](std::uint32_t& v) { return ++v; });
  const bool warm = n >= config_.warmup_samples && ewma > 0;
  const bool excessive =
      warm && iat >= config_.min_gap_ns &&
      static_cast<double>(iat) >
          config_.blockage_factor * static_cast<double>(ewma);

  if (excessive) {
    const std::uint32_t streak =
        gap_streak_.execute(slot, [](std::uint32_t& v) { return ++v; });
    if (streak >= config_.consecutive_gaps && blocked_.read(slot) == 0) {
      blocked_.write(slot, 1);
      digests_.emit(BlockageDigest{slot, now, iat, ewma});
    }
    // Freeze the EWMA while the gap streak runs: the baseline must
    // describe the healthy link.
    return iat;
  }

  gap_streak_.write(slot, 0);
  if (blocked_.read(slot) != 0) blocked_.write(slot, 0);
  if (ewma == 0) {
    ewma_.write(slot, iat);
  } else {
    ewma_.write(slot, (7 * ewma + iat) / 8);
  }
  return iat;
}

void IatMonitor::clear_slot(std::uint16_t slot) {
  last_ts_.cp_write(slot, 0);
  last_iat_.cp_write(slot, 0);
  ewma_.cp_write(slot, 0);
  samples_.cp_write(slot, 0);
  gap_streak_.cp_write(slot, 0);
  blocked_.cp_write(slot, 0);
}

}  // namespace p4s::telemetry
