// Shared types of the data-plane telemetry program: register sizing,
// digest message formats, and the per-flow identity record.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace p4s::telemetry {

/// Number of per-flow register slots (§3.3.2: "the data plane can track
/// 2048 active flows simultaneously"). Power of two so slot = id & mask.
inline constexpr std::size_t kFlowSlots = 2048;
inline constexpr std::uint32_t kFlowSlotMask = kFlowSlots - 1;

/// eACK signature register size (Chen et al.'s design uses a large
/// hash-indexed table; 2^16 entries keeps the collision rate low at the
/// BDPs of the experiments).
inline constexpr std::size_t kEackSlots = 1 << 16;
inline constexpr std::uint32_t kEackSlotMask = kEackSlots - 1;

/// Packet-signature register for matching ingress/egress TAP copies.
inline constexpr std::size_t kPacketSigSlots = 1 << 16;
inline constexpr std::uint32_t kPacketSigMask = kPacketSigSlots - 1;

/// Flow identity as reported by the long-flow detector (§4: "the data
/// plane reports the ID of the flow (i.e., the hash of the 5-tuple), its
/// source and destination IP, and its reversed ID").
struct FlowIdentity {
  std::uint32_t flow_id = 0;      // hash(5-tuple)
  std::uint32_t rev_flow_id = 0;  // hash(reversed 5-tuple)
  net::FiveTuple tuple;
};

/// Digest: a new long flow was promoted to a register slot.
struct NewFlowDigest {
  FlowIdentity flow;
  std::uint16_t slot = 0;
  SimTime detected_at = 0;
};

/// Digest: a flow signalled FIN in the data direction.
struct FlowFinDigest {
  std::uint16_t slot = 0;
  SimTime at = 0;
};

/// Digest (cuckoo flow table only): a tracked flow's table entry was
/// evicted by idle aging under insert pressure. The slot's registers
/// still hold the flow's final values; the control plane finalizes the
/// flow and releases the slot exactly as it does for a FIN.
struct FlowEvictDigest {
  std::uint16_t slot = 0;
  SimTime at = 0;       // eviction time (the colliding insert)
  SimTime idle_ns = 0;  // how long the victim had been idle
};

/// Digest: microburst detected in the data plane with nanosecond
/// granularity (§3.3.3).
struct MicroburstDigest {
  SimTime start_ns = 0;
  SimTime duration_ns = 0;
  SimTime peak_queue_delay_ns = 0;
  std::uint64_t packets_in_burst = 0;
};

/// Digest: a monitored flow's packet inter-arrival time jumped by orders
/// of magnitude — the LOS-blockage signature (§5.4.3).
struct BlockageDigest {
  std::uint16_t slot = 0;
  SimTime at = 0;
  SimTime iat_ns = 0;
  SimTime baseline_iat_ns = 0;
};

/// Connection-limitation verdict (§4.4, Dapper heuristic).
enum class LimitVerdict : std::uint8_t {
  kUnknown = 0,
  kNetworkLimited = 1,
  kEndpointLimited = 2,
};

const char* to_string(LimitVerdict verdict);

}  // namespace p4s::telemetry
