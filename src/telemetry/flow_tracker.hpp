// Long-flow detection and per-flow slot allocation (§4).
//
// Every data packet updates a count-min sketch keyed by the 5-tuple.
// Once a flow's byte estimate crosses the promotion threshold it is
// assigned one of the 2048 register slots and a NewFlowDigest is emitted
// carrying the flow ID, the reversed ID and the addresses — the record
// the control plane needs to label reports.
//
// Two flow-table modes select how flow_id maps to a slot:
//
//  * kRegisters (default, the paper's design): slot = flow_id & mask.
//    Collisions (two long flows hashing to the same slot) keep the
//    incumbent and count the rejection, matching how a register-indexed
//    design behaves on hardware. Bit-for-bit the historical path.
//
//  * kCuckoo: a multi-stage cuckoo table maps flow_id -> slot, with
//    slots drawn from a free list. Every slot is usable regardless of
//    hash bits (>90% utilization at 100k+ offered flows), relocations
//    never move a flow's slot (registers stay put), and when the table
//    is saturated, idle-aged entries are evicted with a FlowEvictDigest
//    so the control plane finalizes the flow and recycles the slot.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "p4/cms.hpp"
#include "p4/hash.hpp"
#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "sketch/cuckoo_table.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

enum class FlowTableKind : std::uint8_t {
  kRegisters = 0,  // slot = flow_id & mask (the paper's direct index)
  kCuckoo = 1,     // exact cuckoo match table + slot free list
};

const char* to_string(FlowTableKind kind);
/// Inverse of to_string ("registers" / "cuckoo"); throws
/// std::invalid_argument on unknown names.
FlowTableKind flow_table_from_name(const std::string& name);

class FlowTracker : public MetricEngine {
 public:
  struct Config {
    /// Bytes a flow must accumulate (CMS estimate) before promotion.
    std::uint64_t promotion_bytes = 100 * 1024;
    std::size_t cms_depth = 3;
    std::size_t cms_width = 4096;
    FlowTableKind flow_table = FlowTableKind::kRegisters;
    /// Cuckoo-mode parameters; `capacity` is pinned to kFlowSlots (the
    /// slot space the per-flow registers provide).
    sketch::CuckooConfig cuckoo{};
  };

  explicit FlowTracker(Config config);
  FlowTracker() : FlowTracker(Config{}) {}

  /// Process a data-direction packet. Returns the flow's slot if it is
  /// (or just became) tracked, nullopt while still below the threshold.
  std::optional<std::uint16_t> on_data_packet(const net::FiveTuple& tuple,
                                              std::uint32_t payload_bytes,
                                              SimTime now);

  /// Same, with the hash inputs already computed (hot path: the pipeline
  /// builds one FlowKey per packet and every engine shares it).
  std::optional<std::uint16_t> on_data_packet(const p4::FlowKey& fk,
                                              std::uint32_t payload_bytes,
                                              SimTime now);

  /// Control-plane slot lookup: returns the slot if this exact flow
  /// occupies it.
  std::optional<std::uint16_t> slot_of(std::uint32_t flow_id) const;

  /// Data-plane slot lookup (ACK path): same semantics, accounted as a
  /// data-plane register read.
  std::optional<std::uint16_t> dp_slot_of(std::uint32_t flow_id);

  /// The identity stored in a slot (valid only for occupied slots).
  const FlowIdentity& identity(std::uint16_t slot) const {
    return identities_[slot];
  }
  bool occupied(std::uint16_t slot) const { return occupied_[slot]; }

  /// Control plane: release a slot (flow terminated) so it can be
  /// recycled.
  void release(std::uint16_t slot);

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "flow_tracker"; }
  void clear_slot(std::uint16_t slot) override { release(slot); }
  bool slot_cleared(std::uint16_t slot) const override {
    return !occupied_[slot] && slot_flow_id_.cp_read(slot) == 0 &&
           identities_[slot].flow_id == 0;
  }
  std::size_t pending_digests() const override {
    return digests_.pending() + evict_digests_.pending();
  }

  p4::DigestQueue<NewFlowDigest>& new_flow_digests() { return digests_; }
  p4::DigestQueue<FlowEvictDigest>& evict_digests() {
    return evict_digests_;
  }

  FlowTableKind flow_table() const { return config_.flow_table; }
  /// Cuckoo-mode table (nullptr in register mode) — stats for tests and
  /// benches.
  const sketch::CuckooFlowTable* cuckoo_table() const {
    return cuckoo_.get();
  }

  std::uint64_t slot_collisions() const { return slot_collisions_; }
  /// Cuckoo mode: promotions rejected because the kick chain bounded out
  /// with no aged victim.
  std::uint64_t insert_failures() const { return insert_failures_; }
  /// Cuckoo mode: promotions rejected because every slot was allocated.
  std::uint64_t slot_exhausted() const { return slot_exhausted_; }
  /// Cuckoo mode: idle-aged table evictions (digests emitted).
  std::uint64_t evictions() const { return evictions_; }
  std::size_t active_flows() const { return active_; }

 private:
  std::optional<std::uint16_t> on_data_packet_cuckoo(const p4::FlowKey& fk,
                                                     std::uint32_t payload,
                                                     SimTime now);
  void promote(const p4::FlowKey& fk, std::uint16_t slot, SimTime now);

  Config config_;
  p4::CountMinSketch cms_;
  // flow_id occupying each slot; the occupied_ bit distinguishes an empty
  // slot from flow_id 0.
  p4::RegisterArray<std::uint32_t> slot_flow_id_;
  std::array<bool, kFlowSlots> occupied_{};
  std::array<FlowIdentity, kFlowSlots> identities_{};
  p4::DigestQueue<NewFlowDigest> digests_;
  p4::DigestQueue<FlowEvictDigest> evict_digests_;
  // Cuckoo mode only: the exact-match table and the slot free list
  // (slots allocated low-first for determinism).
  std::unique_ptr<sketch::CuckooFlowTable> cuckoo_;
  std::vector<std::uint16_t> free_slots_;
  std::uint64_t slot_collisions_ = 0;
  std::uint64_t insert_failures_ = 0;
  std::uint64_t slot_exhausted_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t active_ = 0;
};

}  // namespace p4s::telemetry
