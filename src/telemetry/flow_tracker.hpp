// Long-flow detection and per-flow slot allocation (§4).
//
// Every data packet updates a count-min sketch keyed by the 5-tuple.
// Once a flow's byte estimate crosses the promotion threshold it is
// assigned one of the 2048 register slots (slot = flow_id & mask) and a
// NewFlowDigest is emitted carrying the flow ID, the reversed ID and the
// addresses — the record the control plane needs to label reports.
//
// Slot collisions (two long flows hashing to the same slot) are resolved
// by keeping the incumbent and counting the rejection, matching how a
// register-indexed design behaves on hardware; the counter is exposed so
// experiments can verify it stays at zero for their workloads.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "p4/cms.hpp"
#include "p4/hash.hpp"
#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class FlowTracker : public MetricEngine {
 public:
  struct Config {
    /// Bytes a flow must accumulate (CMS estimate) before promotion.
    std::uint64_t promotion_bytes = 100 * 1024;
    std::size_t cms_depth = 3;
    std::size_t cms_width = 4096;
  };

  explicit FlowTracker(Config config);
  FlowTracker() : FlowTracker(Config{}) {}

  /// Process a data-direction packet. Returns the flow's slot if it is
  /// (or just became) tracked, nullopt while still below the threshold.
  std::optional<std::uint16_t> on_data_packet(const net::FiveTuple& tuple,
                                              std::uint32_t payload_bytes,
                                              SimTime now);

  /// Same, with the hash inputs already computed (hot path: the pipeline
  /// builds one FlowKey per packet and every engine shares it).
  std::optional<std::uint16_t> on_data_packet(const p4::FlowKey& fk,
                                              std::uint32_t payload_bytes,
                                              SimTime now);

  /// Control-plane slot lookup: returns the slot if this exact flow
  /// occupies it.
  std::optional<std::uint16_t> slot_of(std::uint32_t flow_id) const;

  /// Data-plane slot lookup (ACK path): same semantics, accounted as a
  /// data-plane register read.
  std::optional<std::uint16_t> dp_slot_of(std::uint32_t flow_id);

  /// The identity stored in a slot (valid only for occupied slots).
  const FlowIdentity& identity(std::uint16_t slot) const {
    return identities_[slot];
  }
  bool occupied(std::uint16_t slot) const { return occupied_[slot]; }

  /// Control plane: release a slot (flow terminated) so it can be
  /// recycled.
  void release(std::uint16_t slot);

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "flow_tracker"; }
  void clear_slot(std::uint16_t slot) override { release(slot); }
  bool slot_cleared(std::uint16_t slot) const override {
    return !occupied_[slot] && slot_flow_id_.cp_read(slot) == 0 &&
           identities_[slot].flow_id == 0;
  }
  std::size_t pending_digests() const override { return digests_.pending(); }

  p4::DigestQueue<NewFlowDigest>& new_flow_digests() { return digests_; }

  std::uint64_t slot_collisions() const { return slot_collisions_; }
  std::size_t active_flows() const { return active_; }

 private:
  Config config_;
  p4::CountMinSketch cms_;
  // flow_id occupying each slot; the occupied_ bit distinguishes an empty
  // slot from flow_id 0.
  p4::RegisterArray<std::uint32_t> slot_flow_id_;
  std::array<bool, kFlowSlots> occupied_{};
  std::array<FlowIdentity, kFlowSlots> identities_{};
  p4::DigestQueue<NewFlowDigest> digests_;
  std::uint64_t slot_collisions_ = 0;
  std::size_t active_ = 0;
};

}  // namespace p4s::telemetry
