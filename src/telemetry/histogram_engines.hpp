// Histogram metric engines: switch-wide RTT / IAT / queue-delay
// distributions in fixed register space, following "Enhancements to
// P4TG: Histogram-Based RTT Monitoring in the Data Plane".
//
// The per-flow slot design summarizes at most kFlowSlots flows; these
// engines summarize *every* flow on the monitored link — 100k or 1M
// concurrent — because their state is a fixed-bin histogram plus a
// DDSketch quantile sketch, updated per packet, plus (for RTT and IAT)
// a small signature-indexed table holding one in-flight timestamp per
// hash index. They are deliberately slot-free: registered through the
// MetricEngine registry for digest/invariant accounting, but
// clear_slot() is a no-op because there is no per-slot state to clear.
//
// Each engine instance covers one configured bin range, so several
// engines over the same metric give per-range histograms (the P4TG
// design's multiple range profiles).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "p4/register.hpp"
#include "sketch/ddsketch.hpp"
#include "sketch/histogram.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

struct HistogramEngineConfig {
  enum class Metric : std::uint8_t { kRtt = 0, kIat = 1, kQueueDelay = 2 };
  Metric metric = Metric::kRtt;
  /// Optional suffix distinguishing several engines over one metric
  /// (per-range histograms): engine name = "<metric>_histogram[_<id>]".
  std::string id;
  /// Bin edges in nanoseconds.
  sketch::HistogramConfig histogram{};
  /// DDSketch relative-accuracy target for the exported quantiles.
  double sketch_alpha = 0.01;
  std::size_t sketch_max_bins = 2048;
  /// Signature table size for the slot-free RTT/IAT state (power of
  /// two); ignored by the queue-delay engine.
  std::size_t signature_slots = kEackSlots;
};

const char* to_string(HistogramEngineConfig::Metric metric);
/// Inverse of to_string ("rtt" / "iat" / "queue_delay"); throws
/// std::invalid_argument on unknown names.
HistogramEngineConfig::Metric histogram_metric_from_name(
    const std::string& name);

class HistogramEngine : public MetricEngine {
 public:
  explicit HistogramEngine(const HistogramEngineConfig& config);

  HistogramEngineConfig::Metric metric() const { return config_.metric; }
  const HistogramEngineConfig& config() const { return config_; }

  /// Record one observed sample (nanoseconds) into histogram + sketch.
  void observe(SimTime value_ns);

  const sketch::Histogram& histogram() const { return hist_; }
  const sketch::DdSketch& quantile_sketch() const { return sketch_; }
  double quantile_ns(double q) const { return sketch_.quantile(q); }
  std::uint64_t samples() const { return samples_; }

  // ---- MetricEngine ---------------------------------------------------
  // Slot-free by design: the summary covers all flows, so releasing a
  // flow's slot has nothing to clear here.
  std::string_view name() const override { return name_; }
  void clear_slot(std::uint16_t) override {}
  bool slot_cleared(std::uint16_t) const override { return true; }

 private:
  HistogramEngineConfig config_;
  std::string name_;
  sketch::Histogram hist_;
  sketch::DdSketch sketch_;
  std::uint64_t samples_ = 0;
};

/// Slot-free RTT histogram: the eACK idiom of Algorithm 1 applied to
/// every TCP flow. Data packets park (signature(rev_flow_id, seq +
/// payload) -> timestamp) in a hash-indexed table; a pure ACK whose
/// (flow_id, ack) signature matches yields one RTT sample. Collisions
/// overwrite (latest wins) and are counted, like the per-flow eACK
/// table — but here no slot lookup gates the measurement.
class RttHistogramEngine final : public HistogramEngine {
 public:
  explicit RttHistogramEngine(const HistogramEngineConfig& config);

  /// Data-direction TCP packet with payload (any flow, tracked or not).
  void on_data(std::uint32_t rev_flow_id, std::uint32_t seq,
               std::uint32_t payload_bytes, SimTime now);
  /// Pure ACK (reverse direction).
  void on_ack(std::uint32_t flow_id, std::uint32_t ack, SimTime now);

  std::uint64_t matches() const { return matches_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::uint32_t check = 0;
    SimTime ts = 0;
  };

  p4::RegisterArray<Entry> table_;
  std::uint32_t mask_;
  std::uint64_t matches_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Slot-free IAT histogram: one last-departure timestamp per hash index,
/// keyed by flow ID with a check word (a colliding flow resets the cell
/// rather than producing a bogus cross-flow gap).
class IatHistogramEngine final : public HistogramEngine {
 public:
  explicit IatHistogramEngine(const HistogramEngineConfig& config);

  /// Data-direction packet with payload departing the monitored link.
  void on_data(std::uint32_t flow_id, SimTime now);

  std::uint64_t collisions() const { return collisions_; }

 private:
  struct Entry {
    std::uint32_t check = 0;
    SimTime last = 0;
  };

  p4::RegisterArray<Entry> table_;
  std::uint32_t mask_;
  std::uint64_t collisions_ = 0;
};

/// Queue-delay histogram: the TAP-pair match already yields a per-packet
/// queuing delay for *every* packet; this engine just bins it.
class QueueDelayHistogramEngine final : public HistogramEngine {
 public:
  explicit QueueDelayHistogramEngine(const HistogramEngineConfig& config)
      : HistogramEngine(config) {}

  void on_delay(SimTime delay_ns) { observe(delay_ns); }
};

/// Factory keyed on config.metric.
std::unique_ptr<HistogramEngine> make_histogram_engine(
    const HistogramEngineConfig& config);

}  // namespace p4s::telemetry
