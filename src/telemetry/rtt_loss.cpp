#include "telemetry/rtt_loss.hpp"

#include <array>

#include "p4/hash.hpp"

namespace p4s::telemetry {

RttLossEngine::RttLossEngine(std::size_t eack_slots)
    : prev_seq_(kFlowSlots, 0),
      prev_seq_valid_(kFlowSlots, 0),
      pkt_loss_(kFlowSlots, 0),
      rtt_(kFlowSlots, 0),
      eack_(eack_slots, EackEntry{}),
      eack_mask_(static_cast<std::uint32_t>(eack_slots - 1)) {
  assert(eack_slots > 0 && (eack_slots & (eack_slots - 1)) == 0);
}

std::uint32_t RttLossEngine::signature(std::uint32_t flow_id,
                                       std::uint32_t ackno) {
  // CRC32 over the 8-byte (flow_id, ackno) pair, as a P4 hash extern
  // would compute it.
  std::array<std::uint8_t, 8> key{
      static_cast<std::uint8_t>(flow_id >> 24),
      static_cast<std::uint8_t>(flow_id >> 16),
      static_cast<std::uint8_t>(flow_id >> 8),
      static_cast<std::uint8_t>(flow_id),
      static_cast<std::uint8_t>(ackno >> 24),
      static_cast<std::uint8_t>(ackno >> 16),
      static_cast<std::uint8_t>(ackno >> 8),
      static_cast<std::uint8_t>(ackno),
  };
  return p4::Crc32{0x1EDC6F41u}(key);
}

bool RttLossEngine::on_data_packet(const DataPacketView& view, SimTime now) {
  const std::uint16_t slot = view.slot;

  // -- Packet-loss branch (sequence regression) -------------------------
  // The paper's pseudocode compares raw sequence numbers; we use wrap-safe
  // modular comparison so multi-GiB transfers (which wrap seq space) do
  // not produce spurious "loss" at each wrap.
  bool loss_counted = false;
  const bool valid = prev_seq_valid_.read(slot) != 0;
  const std::uint32_t prev = prev_seq_.read(slot);
  if (valid && tcp::seq_lt(view.seq, prev)) {
    pkt_loss_.execute(slot, [](std::uint64_t& v) { return ++v; });
    loss_counted = true;
  } else {
    prev_seq_.write(slot, view.seq);
    prev_seq_valid_.write(slot, 1);
  }

  // -- eACK store -------------------------------------------------------
  if (view.payload_bytes == 0) return loss_counted;
  const std::uint32_t eack = view.seq + view.payload_bytes;
  const std::uint32_t sig = signature(view.rev_flow_id, eack);
  const std::uint32_t idx = sig & eack_mask_;
  const std::uint32_t check = view.rev_flow_id ^ (eack << 1) ^ (eack >> 31);
  eack_.execute(idx, [&](EackEntry& e) {
    if (e.ts != 0 && e.check != check) ++eack_evictions_;
    e.check = check;
    e.ts = now;
    return 0;
  });
  return loss_counted;
}

std::optional<SimTime> RttLossEngine::on_ack_packet(const AckPacketView& view,
                                                    SimTime now) {
  const std::uint32_t sig = signature(view.ack_flow_id, view.ack);
  const std::uint32_t idx = sig & eack_mask_;
  const std::uint32_t check =
      view.ack_flow_id ^ (view.ack << 1) ^ (view.ack >> 31);
  std::optional<SimTime> rtt;
  eack_.execute(idx, [&](EackEntry& e) {
    if (e.ts != 0 && e.check == check) {
      rtt = now - e.ts;
      e = EackEntry{};  // consume the sample
    }
    return 0;
  });
  if (!rtt.has_value()) {
    ++eack_misses_;
    return std::nullopt;
  }
  ++eack_matches_;
  rtt_.write(view.data_slot, *rtt);
  return rtt;
}

void RttLossEngine::clear_slot(std::uint16_t slot) {
  prev_seq_.cp_write(slot, 0);
  prev_seq_valid_.cp_write(slot, 0);
  pkt_loss_.cp_write(slot, 0);
  rtt_.cp_write(slot, 0);
}

}  // namespace p4s::telemetry
