// FieldView — the per-packet field accessor table shared by the
// hand-written engines and the measurement-program VM (src/mpl).
//
// DataPlaneProgram::ingress used to derive the same handful of values
// (payload bytes, TCP flag classification, flow ids) inline and pass
// scalars into each engine; any new consumer — the VM above all — would
// have had to re-derive them, inviting drift in exactly the arithmetic
// the golden traces pin. FieldView computes them ONCE per parsed copy
// and exposes two faces over the same data:
//
//   * typed accessors (payload_bytes, pure_ack, ...) for the
//     hand-written pipeline — zero-cost, used by DataPlaneProgram;
//   * a named table (FieldId + get() + field_from_name()) for the VM's
//     match predicates and register ops, so a measurement program's
//     "field": "ipv4_total_len" resolves to the very value the builtin
//     engines consume.
//
// The derivations are byte-for-byte the historical ones: payload =
// total_len - header bytes (clamped), pure-ACK = TCP, no payload, no
// SYN/FIN, ACK set.
#pragma once

#include <cstdint>
#include <string_view>

#include "p4/hash.hpp"
#include "p4/parser.hpp"
#include "util/units.hpp"

namespace p4s::telemetry {

/// Fields a measurement program can read. Every entry resolves through
/// FieldView::get() to a uint64 (booleans as 0/1, addresses/ports as
/// host-order integers, times in nanoseconds).
enum class FieldId : std::uint8_t {
  kFlowId = 0,       // hash(5-tuple)
  kRevFlowId,        // hash(reversed 5-tuple)
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProtocol,         // IPv4 protocol number
  kIpv4TotalLen,     // the byte-counter's input (§4.1)
  kHeaderBytes,      // IPv4 + L4 header bytes
  kPayloadBytes,     // total_len - header bytes, clamped at 0
  kTcpSeq,           // 0 unless TCP
  kTcpAck,
  kTcpFlags,
  kIsTcp,            // header validity bits
  kIsUdp,
  kIsSyn,            // flag classification (TCP only, else 0)
  kIsFin,
  kIsPureAck,        // payload == 0, no SYN/FIN, ACK set
  kIngressTsNs,      // intrinsic metadata timestamp
  kTapPoint,         // 0 = ingress-TAP copy, 1 = egress-TAP copy
  kQueueDelayNs,     // egress copies with a matched TAP pair; else 0
  kQueueDelayValid,  // whether kQueueDelayNs carries a measurement
  // QUIC header fields (appended — earlier indices are pinned by
  // installed programs and the golden traces). All 0 unless the parser
  // extracted a QUIC header.
  kIsQuic,           // quic_valid bit
  kQuicSpin,         // latency spin bit (short headers; long -> 0)
  kQuicDcid,         // destination connection ID (64-bit)
  kQuicPn,           // packet number
  kQuicLongHeader,   // 1 = long (handshake) header, 0 = short
};

inline constexpr std::size_t kFieldCount =
    static_cast<std::size_t>(FieldId::kQuicLongHeader) + 1;

/// Stable field name ("flow_id", "ipv4_total_len", ...).
const char* field_name(FieldId field);
/// Inverse of field_name; throws std::invalid_argument on unknown names.
FieldId field_from_name(std::string_view name);

class FieldView {
 public:
  /// Build the view for one parsed copy. `ctx.hdr.ipv4_valid` must hold
  /// (the pipeline rejects everything else before any engine runs);
  /// `fk` must be the key of ctx's 5-tuple. `egress_copy` selects the
  /// TAP point. The context and key are referenced, not copied — the
  /// view is valid for the duration of the pipeline pass only.
  FieldView(const p4::PacketContext& ctx, const p4::FlowKey& fk,
            bool egress_copy);

  // ---- Typed accessors (the hand-written engines' face) ---------------
  const p4::PacketContext& ctx() const { return *ctx_; }
  const p4::FlowKey& flow_key() const { return *fk_; }
  std::uint32_t flow_id() const { return fk_->flow_id; }
  std::uint32_t rev_flow_id() const { return fk_->rev_flow_id; }
  std::uint32_t ipv4_total_len() const { return ctx_->hdr.ipv4.total_len; }
  std::uint32_t header_bytes() const { return header_bytes_; }
  std::uint32_t payload_bytes() const { return payload_; }
  bool is_tcp() const { return ctx_->hdr.tcp_valid; }
  bool syn() const { return syn_; }
  bool fin() const { return fin_; }
  bool pure_ack() const { return pure_ack_; }
  std::uint32_t tcp_seq() const {
    return ctx_->hdr.tcp_valid ? ctx_->hdr.tcp.seq : 0;
  }
  std::uint32_t tcp_ack() const {
    return ctx_->hdr.tcp_valid ? ctx_->hdr.tcp.ack : 0;
  }
  SimTime ingress_ts() const { return ctx_->meta.ingress_ts; }
  bool egress_copy() const { return egress_copy_; }
  bool is_quic() const { return ctx_->hdr.quic_valid; }
  /// Valid only when is_quic().
  const net::QuicHeader& quic() const { return ctx_->hdr.quic; }

  /// Attach the measured queuing delay once the egress branch resolved
  /// the TAP pair (before the packet-engine hooks run).
  void set_queue_delay(SimTime delay_ns) {
    queue_delay_ns_ = delay_ns;
    queue_delay_valid_ = true;
  }
  bool queue_delay_valid() const { return queue_delay_valid_; }
  SimTime queue_delay_ns() const { return queue_delay_ns_; }

  // ---- Named table (the VM's face) ------------------------------------
  std::uint64_t get(FieldId field) const;

 private:
  const p4::PacketContext* ctx_;
  const p4::FlowKey* fk_;
  std::uint32_t header_bytes_ = 0;
  std::uint32_t payload_ = 0;
  bool syn_ = false;
  bool fin_ = false;
  bool pure_ack_ = false;
  bool egress_copy_ = false;
  bool queue_delay_valid_ = false;
  SimTime queue_delay_ns_ = 0;
};

}  // namespace p4s::telemetry
