#include "telemetry/flow_tracker.hpp"

#include <stdexcept>

#include "p4/hash.hpp"

namespace p4s::telemetry {

const char* to_string(LimitVerdict verdict) {
  switch (verdict) {
    case LimitVerdict::kUnknown: return "unknown";
    case LimitVerdict::kNetworkLimited: return "network";
    case LimitVerdict::kEndpointLimited: return "endpoint";
  }
  return "?";
}

const char* to_string(FlowTableKind kind) {
  switch (kind) {
    case FlowTableKind::kRegisters: return "registers";
    case FlowTableKind::kCuckoo: return "cuckoo";
  }
  return "?";
}

FlowTableKind flow_table_from_name(const std::string& name) {
  if (name == "registers") return FlowTableKind::kRegisters;
  if (name == "cuckoo") return FlowTableKind::kCuckoo;
  throw std::invalid_argument("unknown flow_table kind: " + name);
}

FlowTracker::FlowTracker(Config config)
    : config_(config),
      cms_(config_.cms_depth, config_.cms_width),
      slot_flow_id_(kFlowSlots, 0) {
  if (config_.flow_table == FlowTableKind::kCuckoo) {
    // The register slot space is the capacity: the table exists to hand
    // out those slots, never to track more flows than registers exist.
    config_.cuckoo.capacity = kFlowSlots;
    cuckoo_ = std::make_unique<sketch::CuckooFlowTable>(config_.cuckoo);
    free_slots_.reserve(kFlowSlots);
    // back() is popped first; fill descending so slot 0 allocates first.
    for (std::size_t s = kFlowSlots; s-- > 0;) {
      free_slots_.push_back(static_cast<std::uint16_t>(s));
    }
  }
}

std::optional<std::uint16_t> FlowTracker::on_data_packet(
    const net::FiveTuple& tuple, std::uint32_t payload_bytes, SimTime now) {
  return on_data_packet(p4::FlowKey::from(tuple), payload_bytes, now);
}

std::optional<std::uint16_t> FlowTracker::on_data_packet(
    const p4::FlowKey& fk, std::uint32_t payload_bytes, SimTime now) {
  if (cuckoo_) return on_data_packet_cuckoo(fk, payload_bytes, now);

  const auto slot = static_cast<std::uint16_t>(fk.flow_id & kFlowSlotMask);

  if (occupied_[slot]) {
    if (slot_flow_id_.read(slot) == fk.flow_id) return slot;
    ++slot_collisions_;
    return std::nullopt;
  }

  const std::uint64_t estimate = cms_.update(fk.key, payload_bytes);
  if (estimate < config_.promotion_bytes) return std::nullopt;

  // Promote: claim the slot and report the flow to the control plane.
  promote(fk, slot, now);
  return slot;
}

std::optional<std::uint16_t> FlowTracker::on_data_packet_cuckoo(
    const p4::FlowKey& fk, std::uint32_t payload_bytes, SimTime now) {
  if (const auto slot = cuckoo_->touch(fk.flow_id, now)) return *slot;

  const std::uint64_t estimate = cms_.update(fk.key, payload_bytes);
  if (estimate < config_.promotion_bytes) return std::nullopt;

  if (free_slots_.empty()) {
    // Every register slot is handed out and awaiting control-plane
    // release; eviction cannot help (the victim's slot stays occupied
    // until finalized), so the promotion is rejected.
    ++slot_exhausted_;
    return std::nullopt;
  }

  const std::uint16_t slot = free_slots_.back();
  std::optional<sketch::CuckooFlowTable::Victim> victim;
  const auto result = cuckoo_->insert(fk.flow_id, slot, now, victim);
  if (victim.has_value()) {
    // An idle flow lost its table entry to make room. Its registers
    // still hold the final values; the digest tells the control plane
    // to finalize it (like a FIN) and release the slot.
    ++evictions_;
    evict_digests_.emit(FlowEvictDigest{
        static_cast<std::uint16_t>(victim->value), now,
        now - victim->last_seen});
  }
  if (result != sketch::CuckooFlowTable::InsertResult::kInserted) {
    // Kick chain bounded out with no aged victim: table unchanged, the
    // slot stays on the free list for the next promotion attempt.
    ++insert_failures_;
    return std::nullopt;
  }
  free_slots_.pop_back();
  promote(fk, slot, now);
  return slot;
}

void FlowTracker::promote(const p4::FlowKey& fk, std::uint16_t slot,
                          SimTime now) {
  occupied_[slot] = true;
  ++active_;
  slot_flow_id_.write(slot, fk.flow_id);
  FlowIdentity ident;
  ident.flow_id = fk.flow_id;
  ident.rev_flow_id = fk.rev_flow_id;
  ident.tuple = fk.tuple;
  identities_[slot] = ident;
  digests_.emit(NewFlowDigest{ident, slot, now});
}

std::optional<std::uint16_t> FlowTracker::slot_of(
    std::uint32_t flow_id) const {
  if (cuckoo_) return cuckoo_->find(flow_id);
  const auto slot = static_cast<std::uint16_t>(flow_id & kFlowSlotMask);
  if (!occupied_[slot]) return std::nullopt;
  if (slot_flow_id_.cp_read(slot) != flow_id) return std::nullopt;
  return slot;
}

std::optional<std::uint16_t> FlowTracker::dp_slot_of(std::uint32_t flow_id) {
  // Cuckoo lookups on the ACK path do not refresh the age: aging is
  // driven by the data direction only, so a flow whose sender stopped
  // is evictable even while the receiver keeps ACKing.
  if (cuckoo_) return cuckoo_->find(flow_id);
  const auto slot = static_cast<std::uint16_t>(flow_id & kFlowSlotMask);
  if (!occupied_[slot]) return std::nullopt;
  if (slot_flow_id_.read(slot) != flow_id) return std::nullopt;
  return slot;
}

void FlowTracker::release(std::uint16_t slot) {
  if (!occupied_[slot]) return;
  if (cuckoo_) {
    // Drop the table entry only if this slot's flow still owns one. An
    // evicted flow has no entry — and may even have been re-promoted
    // into a *different* slot, whose entry must survive this release.
    const std::uint32_t key = identities_[slot].flow_id;
    if (const auto cur = cuckoo_->find(key); cur && *cur == slot) {
      cuckoo_->erase(key);
    }
    free_slots_.push_back(slot);
  }
  occupied_[slot] = false;
  --active_;
  slot_flow_id_.cp_write(slot, 0);
  identities_[slot] = FlowIdentity{};
}

}  // namespace p4s::telemetry
