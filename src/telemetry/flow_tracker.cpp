#include "telemetry/flow_tracker.hpp"

#include "p4/hash.hpp"

namespace p4s::telemetry {

const char* to_string(LimitVerdict verdict) {
  switch (verdict) {
    case LimitVerdict::kUnknown: return "unknown";
    case LimitVerdict::kNetworkLimited: return "network";
    case LimitVerdict::kEndpointLimited: return "endpoint";
  }
  return "?";
}

FlowTracker::FlowTracker(Config config)
    : config_(config),
      cms_(config_.cms_depth, config_.cms_width),
      slot_flow_id_(kFlowSlots, 0) {}

std::optional<std::uint16_t> FlowTracker::on_data_packet(
    const net::FiveTuple& tuple, std::uint32_t payload_bytes, SimTime now) {
  return on_data_packet(p4::FlowKey::from(tuple), payload_bytes, now);
}

std::optional<std::uint16_t> FlowTracker::on_data_packet(
    const p4::FlowKey& fk, std::uint32_t payload_bytes, SimTime now) {
  const auto slot = static_cast<std::uint16_t>(fk.flow_id & kFlowSlotMask);

  if (occupied_[slot]) {
    if (slot_flow_id_.read(slot) == fk.flow_id) return slot;
    ++slot_collisions_;
    return std::nullopt;
  }

  const std::uint64_t estimate = cms_.update(fk.key, payload_bytes);
  if (estimate < config_.promotion_bytes) return std::nullopt;

  // Promote: claim the slot and report the flow to the control plane.
  occupied_[slot] = true;
  ++active_;
  slot_flow_id_.write(slot, fk.flow_id);
  FlowIdentity ident;
  ident.flow_id = fk.flow_id;
  ident.rev_flow_id = fk.rev_flow_id;
  ident.tuple = fk.tuple;
  identities_[slot] = ident;
  digests_.emit(NewFlowDigest{ident, slot, now});
  return slot;
}

std::optional<std::uint16_t> FlowTracker::slot_of(
    std::uint32_t flow_id) const {
  const auto slot = static_cast<std::uint16_t>(flow_id & kFlowSlotMask);
  if (!occupied_[slot]) return std::nullopt;
  if (slot_flow_id_.cp_read(slot) != flow_id) return std::nullopt;
  return slot;
}

std::optional<std::uint16_t> FlowTracker::dp_slot_of(std::uint32_t flow_id) {
  const auto slot = static_cast<std::uint16_t>(flow_id & kFlowSlotMask);
  if (!occupied_[slot]) return std::nullopt;
  if (slot_flow_id_.read(slot) != flow_id) return std::nullopt;
  return slot;
}

void FlowTracker::release(std::uint16_t slot) {
  if (!occupied_[slot]) return;
  occupied_[slot] = false;
  --active_;
  slot_flow_id_.cp_write(slot, 0);
  identities_[slot] = FlowIdentity{};
}

}  // namespace p4s::telemetry
