#include "telemetry/field_view.hpp"

#include <stdexcept>
#include <string>

namespace p4s::telemetry {

namespace {

// Index-aligned with FieldId; field_from_name walks it linearly (the
// compiler front end resolves names once at install time, never on the
// packet path).
constexpr const char* kFieldNames[kFieldCount] = {
    "flow_id",        "rev_flow_id",    "src_ip",
    "dst_ip",         "src_port",       "dst_port",
    "protocol",       "ipv4_total_len", "header_bytes",
    "payload_bytes",  "tcp_seq",        "tcp_ack",
    "tcp_flags",      "is_tcp",         "is_udp",
    "is_syn",         "is_fin",         "is_pure_ack",
    "ingress_ts_ns",  "tap_point",      "queue_delay_ns",
    "queue_delay_valid", "is_quic",     "quic_spin",
    "quic_dcid",      "quic_pn",        "quic_long_header",
};

}  // namespace

const char* field_name(FieldId field) {
  return kFieldNames[static_cast<std::size_t>(field)];
}

FieldId field_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (name == kFieldNames[i]) return static_cast<FieldId>(i);
  }
  throw std::invalid_argument("unknown field: " + std::string(name));
}

FieldView::FieldView(const p4::PacketContext& ctx, const p4::FlowKey& fk,
                     bool egress_copy)
    : ctx_(&ctx), fk_(&fk), egress_copy_(egress_copy) {
  // The historical derivation from DataPlaneProgram::ingress, verbatim:
  // L4 header bytes by validity bit, payload clamped at zero (captures
  // can carry total_len values smaller than the parsed headers).
  header_bytes_ = ctx.hdr.ipv4.header_bytes() +
                  (ctx.hdr.tcp_valid    ? ctx.hdr.tcp.header_bytes()
                   : ctx.hdr.udp_valid  ? ctx.hdr.udp.header_bytes()
                   : ctx.hdr.icmp_valid ? ctx.hdr.icmp.header_bytes()
                                        : 0);
  payload_ = ctx.hdr.ipv4.total_len > header_bytes_
                 ? ctx.hdr.ipv4.total_len - header_bytes_
                 : 0;
  const bool is_tcp = ctx.hdr.tcp_valid;
  const std::uint8_t flags = is_tcp ? ctx.hdr.tcp.flags : 0;
  syn_ = is_tcp && (flags & net::tcpflags::kSyn) != 0;
  fin_ = is_tcp && (flags & net::tcpflags::kFin) != 0;
  pure_ack_ = is_tcp && payload_ == 0 && !syn_ && !fin_ &&
              (flags & net::tcpflags::kAck) != 0;
}

std::uint64_t FieldView::get(FieldId field) const {
  switch (field) {
    case FieldId::kFlowId: return fk_->flow_id;
    case FieldId::kRevFlowId: return fk_->rev_flow_id;
    case FieldId::kSrcIp: return ctx_->hdr.ipv4.src;
    case FieldId::kDstIp: return ctx_->hdr.ipv4.dst;
    case FieldId::kSrcPort: return fk_->tuple.src_port;
    case FieldId::kDstPort: return fk_->tuple.dst_port;
    case FieldId::kProtocol: return ctx_->hdr.ipv4.protocol;
    case FieldId::kIpv4TotalLen: return ctx_->hdr.ipv4.total_len;
    case FieldId::kHeaderBytes: return header_bytes_;
    case FieldId::kPayloadBytes: return payload_;
    case FieldId::kTcpSeq: return tcp_seq();
    case FieldId::kTcpAck: return tcp_ack();
    case FieldId::kTcpFlags:
      return ctx_->hdr.tcp_valid ? ctx_->hdr.tcp.flags : 0;
    case FieldId::kIsTcp: return ctx_->hdr.tcp_valid ? 1 : 0;
    case FieldId::kIsUdp: return ctx_->hdr.udp_valid ? 1 : 0;
    case FieldId::kIsSyn: return syn_ ? 1 : 0;
    case FieldId::kIsFin: return fin_ ? 1 : 0;
    case FieldId::kIsPureAck: return pure_ack_ ? 1 : 0;
    case FieldId::kIngressTsNs:
      return static_cast<std::uint64_t>(ctx_->meta.ingress_ts);
    case FieldId::kTapPoint: return egress_copy_ ? 1 : 0;
    case FieldId::kQueueDelayNs:
      return static_cast<std::uint64_t>(queue_delay_ns_);
    case FieldId::kQueueDelayValid: return queue_delay_valid_ ? 1 : 0;
    case FieldId::kIsQuic: return ctx_->hdr.quic_valid ? 1 : 0;
    case FieldId::kQuicSpin:
      return ctx_->hdr.quic_valid && ctx_->hdr.quic.spin ? 1 : 0;
    case FieldId::kQuicDcid:
      return ctx_->hdr.quic_valid ? ctx_->hdr.quic.dcid : 0;
    case FieldId::kQuicPn:
      return ctx_->hdr.quic_valid ? ctx_->hdr.quic.packet_number : 0;
    case FieldId::kQuicLongHeader:
      return ctx_->hdr.quic_valid && ctx_->hdr.quic.long_form ? 1 : 0;
  }
  return 0;
}

}  // namespace p4s::telemetry
