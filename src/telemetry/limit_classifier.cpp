#include "telemetry/limit_classifier.hpp"

#include <algorithm>
#include <limits>

namespace p4s::telemetry {

LimitClassifier::LimitClassifier(Config config)
    : config_(config),
      highest_seq_(kFlowSlots, 0),
      seq_valid_(kFlowSlots, 0),
      highest_ack_(kFlowSlots, 0),
      ack_valid_(kFlowSlots, 0),
      flight_(kFlowSlots, 0),
      win_start_(kFlowSlots, 0),
      win_losses_(kFlowSlots, 0),
      win_flight_min_(kFlowSlots,
                      std::numeric_limits<std::uint64_t>::max()),
      win_flight_max_(kFlowSlots, 0),
      win_queueing_(kFlowSlots, 0),
      verdict_(kFlowSlots, 0),
      network_memory_(kFlowSlots, 0) {}

void LimitClassifier::on_data(std::uint16_t slot, std::uint32_t seq,
                              std::uint32_t payload_bytes, SimTime now) {
  const std::uint32_t end = seq + payload_bytes;
  if (seq_valid_.read(slot) == 0 ||
      tcp::seq_gt(end, highest_seq_.read(slot))) {
    highest_seq_.write(slot, end);
    seq_valid_.write(slot, 1);
  }
  update_flight(slot, now);
  maybe_evaluate(slot, now);
}

void LimitClassifier::on_ack(std::uint16_t slot, std::uint32_t ack,
                             SimTime now) {
  if (ack_valid_.read(slot) == 0 ||
      tcp::seq_gt(ack, highest_ack_.read(slot))) {
    highest_ack_.write(slot, ack);
    ack_valid_.write(slot, 1);
  }
  update_flight(slot, now);
  maybe_evaluate(slot, now);
}

void LimitClassifier::on_loss(std::uint16_t slot) {
  win_losses_.execute(slot, [](std::uint32_t& v) { return ++v; });
}

void LimitClassifier::on_queue_delay(std::uint16_t slot, SimTime delay) {
  if (delay >= config_.queueing_delay_ns) win_queueing_.write(slot, 1);
}

void LimitClassifier::update_flight(std::uint16_t slot, SimTime now) {
  (void)now;
  if (seq_valid_.read(slot) == 0 || ack_valid_.read(slot) == 0) return;
  const std::uint32_t hs = highest_seq_.read(slot);
  const std::uint32_t ha = highest_ack_.read(slot);
  // Flight can transiently look "negative" right after a retransmission's
  // ACK races ahead; clamp to zero.
  const std::uint64_t flight =
      tcp::seq_ge(hs, ha) ? static_cast<std::uint32_t>(hs - ha) : 0;
  flight_.write(slot, flight);
  win_flight_min_.execute(slot, [&](std::uint64_t& v) {
    v = std::min(v, flight);
    return 0;
  });
  win_flight_max_.execute(slot, [&](std::uint64_t& v) {
    v = std::max(v, flight);
    return 0;
  });
}

void LimitClassifier::maybe_evaluate(std::uint16_t slot, SimTime now) {
  const SimTime start = win_start_.read(slot);
  if (start == 0) {
    win_start_.write(slot, now);
    return;
  }
  if (now - start < config_.window_ns) return;

  const std::uint64_t fmin = win_flight_min_.read(slot);
  const std::uint64_t fmax = win_flight_max_.read(slot);
  const std::uint32_t losses = win_losses_.read(slot);
  const bool queueing = win_queueing_.read(slot) != 0;

  LimitVerdict verdict = LimitVerdict::kUnknown;
  if (fmax > 0 && fmin != std::numeric_limits<std::uint64_t>::max()) {
    if (losses > 0 || queueing) {
      verdict = LimitVerdict::kNetworkLimited;
      network_memory_.write(slot, config_.network_memory_windows);
    } else {
      // Loss is sporadic even on a lossy path: keep the network verdict
      // alive for a few loss-free windows before reconsidering.
      const std::uint32_t memory = network_memory_.read(slot);
      if (memory > 0) {
        network_memory_.write(slot, memory - 1);
        verdict = LimitVerdict::kNetworkLimited;
      } else {
        const std::uint64_t swing = fmax - fmin;
        const auto tolerance = std::max<std::uint64_t>(
            config_.stability_abs_bytes,
            static_cast<std::uint64_t>(config_.stability_frac *
                                       static_cast<double>(fmax)));
        verdict = swing <= tolerance ? LimitVerdict::kEndpointLimited
                                     : LimitVerdict::kUnknown;
      }
    }
  }
  verdict_.write(slot, static_cast<std::uint8_t>(verdict));

  // Reset the window.
  win_start_.write(slot, now);
  win_losses_.write(slot, 0);
  win_flight_min_.write(slot, std::numeric_limits<std::uint64_t>::max());
  win_flight_max_.write(slot, 0);
  win_queueing_.write(slot, 0);
}

void LimitClassifier::clear_slot(std::uint16_t slot) {
  highest_seq_.cp_write(slot, 0);
  seq_valid_.cp_write(slot, 0);
  highest_ack_.cp_write(slot, 0);
  ack_valid_.cp_write(slot, 0);
  flight_.cp_write(slot, 0);
  win_start_.cp_write(slot, 0);
  win_losses_.cp_write(slot, 0);
  win_flight_min_.cp_write(slot, std::numeric_limits<std::uint64_t>::max());
  win_flight_max_.cp_write(slot, 0);
  win_queueing_.cp_write(slot, 0);
  verdict_.cp_write(slot, 0);
  network_memory_.cp_write(slot, 0);
}

bool LimitClassifier::slot_cleared(std::uint16_t slot) const {
  return highest_seq_.cp_read(slot) == 0 && seq_valid_.cp_read(slot) == 0 &&
         highest_ack_.cp_read(slot) == 0 && ack_valid_.cp_read(slot) == 0 &&
         flight_.cp_read(slot) == 0 && win_start_.cp_read(slot) == 0 &&
         win_losses_.cp_read(slot) == 0 &&
         win_flight_min_.cp_read(slot) ==
             std::numeric_limits<std::uint64_t>::max() &&
         win_flight_max_.cp_read(slot) == 0 &&
         win_queueing_.cp_read(slot) == 0 && verdict_.cp_read(slot) == 0 &&
         network_memory_.cp_read(slot) == 0;
}

}  // namespace p4s::telemetry
