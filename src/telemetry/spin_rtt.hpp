// SpinRttEngine — passive RTT measurement for encrypted QUIC traffic
// from the latency spin bit (RFC 9000 §17.4).
//
// TCP RTT monitoring (Algorithm 1, the eACK table) matches sequence
// numbers against cleartext ACKs; QUIC encrypts its ACK frames, so the
// only RTT signal a mid-path observer has is the spin bit: the client
// inverts it once per RTT and the server reflects it, so in EACH
// direction the observable bit flips once per round trip. The engine
// keys a direct-mapped table by DCID (the only connection identifier a
// short header exposes), timestamps spin-edge transitions and reports
// the edge-to-edge gap as an RTT sample.
//
// The spin signal is fragile in exactly two ways the RFC warns about,
// and the engine carries a rejection heuristic for each:
//   * reordering — a packet from before the edge arriving after it
//     would look like an immediate second edge; edges are accepted only
//     from packets advancing the per-DCID largest packet number;
//   * loss of the toggling packet — the edge then appears one RTT late
//     and the gap doubles; samples beyond `outlier_factor` times the
//     running EWMA (and below `rtt_floor_ns`) are rejected, and the
//     EWMA is updated only by accepted samples.
//
// Accepted samples feed a DDSketch for quantile export (the quic_rtt
// Report_v1 metric). Slot-free like the histogram engines: state is
// per-DCID, not per-flow-slot, and a colliding DCID evicts (counted).
#pragma once

#include <cstdint>

#include "p4/register.hpp"
#include "sketch/ddsketch.hpp"
#include "telemetry/packet_engine.hpp"
#include "util/units.hpp"

namespace p4s::telemetry {

struct SpinRttEngineConfig {
  /// Direct-mapped DCID table size (power of two).
  std::size_t slots = 1024;
  /// Reject samples below this (an edge pair closer than any plausible
  /// path RTT is reordering the pn-monotonic gate missed).
  SimTime rtt_floor_ns = units::microseconds(50);
  /// Reject samples above `outlier_factor` x the per-DCID EWMA (a lost
  /// toggling packet stretches the gap to ~2 RTT).
  double outlier_factor = 3.0;
  /// DDSketch parameters for the exported quantiles.
  double sketch_alpha = 0.01;
  std::size_t sketch_max_bins = 2048;
};

class SpinRttEngine final : public PacketEngine {
 public:
  explicit SpinRttEngine(const SpinRttEngineConfig& config);

  void on_packet(const FieldView& view) override;

  double quantile_ns(double q) const { return sketch_.quantile(q); }
  const sketch::DdSketch& sketch() const { return sketch_; }

  std::uint64_t samples() const { return samples_; }
  std::uint64_t edges() const { return edges_; }
  std::uint64_t rejected_reordered() const { return rejected_reordered_; }
  std::uint64_t rejected_outlier() const { return rejected_outlier_; }
  std::uint64_t rejected_floor() const { return rejected_floor_; }
  std::uint64_t collisions() const { return collisions_; }

  // ---- MetricEngine ---------------------------------------------------
  // Slot-free: per-DCID state, nothing keyed by flow slots.
  std::string_view name() const override { return "quic_rtt"; }
  void clear_slot(std::uint16_t) override {}
  bool slot_cleared(std::uint16_t) const override { return true; }

 private:
  struct Entry {
    std::uint64_t dcid = 0;
    bool valid = false;
    bool spin = false;
    bool have_edge = false;
    std::uint32_t largest_pn = 0;
    SimTime last_edge_ts = 0;
    double ewma_rtt_ns = 0.0;
  };

  SpinRttEngineConfig config_;
  p4::RegisterArray<Entry> table_;
  std::uint64_t mask_;
  sketch::DdSketch sketch_;
  std::uint64_t samples_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t rejected_reordered_ = 0;
  std::uint64_t rejected_outlier_ = 0;
  std::uint64_t rejected_floor_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace p4s::telemetry
