// Algorithm 1 of the paper: RTT and packet-loss calculation in the data
// plane (adopted from Chen et al., "Measuring TCP round-trip time in the
// data plane").
//
// Data packets:
//  * sequence-number regression against prev_seq_register -> loss count
//    (a retransmission implies a lost packet);
//  * the expected future ACK number (eACK = seq + payload) is combined
//    with the reversed flow ID into a signature; the packet's arrival
//    timestamp is stored in eack_register at that signature.
// ACK packets:
//  * signature = (flow ID of the ACK packet, ack number); a hit in
//    eack_register yields RTT = now - stored timestamp.
//
// Deviation from the paper's pseudocode, documented here: the paper
// stores the measured RTT at rtt_register[flow_ID-of-the-ACK-packet]
// (the reversed flow), leaving the control plane to join IDs. We store
// it directly at the *data* flow's slot — the data plane already computes
// hash(reversed ACK tuple) == data-flow ID, so this is one extra hash and
// removes the join. Loss and RTT values are bitwise identical.
#pragma once

#include <cstdint>
#include <optional>

#include "p4/register.hpp"
#include "tcp/seq.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class RttLossEngine : public MetricEngine {
 public:
  /// `eack_slots` must be a power of two (asserted); defaults to the
  /// paper-scale kEackSlots. Exposed for the register-sizing ablation
  /// bench.
  explicit RttLossEngine(std::size_t eack_slots = kEackSlots);

  struct DataPacketView {
    std::uint16_t slot;          // data flow's register slot
    std::uint32_t rev_flow_id;   // hash of the reversed 5-tuple
    std::uint32_t seq;
    std::uint32_t payload_bytes;
    bool is_retransmission_hint = false;  // unused by the algorithm;
                                          // reserved for tests
  };

  /// Process a data packet (Seq branch of Algorithm 1). Returns true if a
  /// packet loss (sequence regression) was counted.
  bool on_data_packet(const DataPacketView& view, SimTime now);

  struct AckPacketView {
    std::uint32_t ack_flow_id;  // hash of the ACK packet's 5-tuple
    std::uint16_t data_slot;    // slot of the data flow being acked
    std::uint32_t ack;
  };

  /// Process an ACK packet (ACK branch). Returns the RTT sample if the
  /// signature matched.
  std::optional<SimTime> on_ack_packet(const AckPacketView& view,
                                       SimTime now);

  // ---- Control-plane reads --------------------------------------------
  std::uint64_t losses(std::uint16_t slot) const {
    return pkt_loss_.cp_read(slot);
  }
  SimTime last_rtt(std::uint16_t slot) const { return rtt_.cp_read(slot); }

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "rtt_loss"; }
  /// Reset a slot's state when a flow is released. (The eACK table is
  /// signature-indexed, not slot-indexed; stale entries age out by
  /// eviction and are excluded from the per-slot invariant.)
  void clear_slot(std::uint16_t slot) override;
  bool slot_cleared(std::uint16_t slot) const override {
    return prev_seq_.cp_read(slot) == 0 && prev_seq_valid_.cp_read(slot) == 0 &&
           pkt_loss_.cp_read(slot) == 0 && rtt_.cp_read(slot) == 0;
  }

  std::uint64_t eack_matches() const { return eack_matches_; }
  std::uint64_t eack_misses() const { return eack_misses_; }
  std::uint64_t eack_evictions() const { return eack_evictions_; }

 private:
  struct EackEntry {
    std::uint32_t check = 0;  // signature check word (detects collisions)
    SimTime ts = 0;
  };

  static std::uint32_t signature(std::uint32_t flow_id, std::uint32_t ackno);

  p4::RegisterArray<std::uint32_t> prev_seq_;
  p4::RegisterArray<std::uint8_t> prev_seq_valid_;
  p4::RegisterArray<std::uint64_t> pkt_loss_;
  p4::RegisterArray<SimTime> rtt_;
  p4::RegisterArray<EackEntry> eack_;
  std::uint32_t eack_mask_;
  std::uint64_t eack_matches_ = 0;
  std::uint64_t eack_misses_ = 0;
  std::uint64_t eack_evictions_ = 0;
};

}  // namespace p4s::telemetry
