// Packet inter-arrival-time monitoring (§5.4.3, Figs. 13-14).
//
// During a mmWave LOS blockage the IAT of a flow's packets jumps by
// orders of magnitude before throughput metrics can react. The data
// plane keeps an EWMA of each flow's IAT; a single IAT exceeding
// `blockage_factor x EWMA` (after warm-up) raises the blockage flag and
// emits a digest; an IAT back under the factor clears it. The EWMA is
// frozen while the flag is up so the baseline is not polluted by the
// blockage itself.
#pragma once

#include <cstdint>
#include <optional>

#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class IatMonitor : public MetricEngine {
 public:
  struct Config {
    double blockage_factor = 8.0;
    /// Samples required before detection arms.
    std::uint32_t warmup_samples = 32;
    /// Absolute floor: an IAT must also exceed this to count as a
    /// blockage. Keeps ordinary TCP recovery stalls (sub-millisecond to
    /// a few ms at DTN rates) from flagging; a real LOS blockage inflates
    /// IATs to tens of milliseconds (Fig. 13).
    SimTime min_gap_ns = units::milliseconds(10);
    /// Excessive gaps must occur on this many CONSECUTIVE packets before
    /// the flag raises. A congestion stall produces one big gap followed
    /// by a resumed burst; a blocked link trickles packets with big gap
    /// after big gap — this is what separates the two.
    std::uint32_t consecutive_gaps = 2;
  };

  explicit IatMonitor(Config config);
  IatMonitor() : IatMonitor(Config{}) {}

  /// Feed a data-packet arrival for a tracked flow. Returns the IAT if
  /// this was not the first packet.
  std::optional<SimTime> on_data(std::uint16_t slot, SimTime now);

  // ---- Control-plane reads --------------------------------------------
  SimTime last_iat(std::uint16_t slot) const { return last_iat_.cp_read(slot); }
  SimTime ewma_iat(std::uint16_t slot) const { return ewma_.cp_read(slot); }
  bool blocked(std::uint16_t slot) const {
    return blocked_.cp_read(slot) != 0;
  }

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "iat_monitor"; }
  void clear_slot(std::uint16_t slot) override;
  bool slot_cleared(std::uint16_t slot) const override {
    return last_ts_.cp_read(slot) == 0 && last_iat_.cp_read(slot) == 0 &&
           ewma_.cp_read(slot) == 0 && samples_.cp_read(slot) == 0 &&
           gap_streak_.cp_read(slot) == 0 && blocked_.cp_read(slot) == 0;
  }
  std::size_t pending_digests() const override { return digests_.pending(); }

  p4::DigestQueue<BlockageDigest>& blockage_digests() { return digests_; }

 private:
  Config config_;
  p4::RegisterArray<SimTime> last_ts_;
  p4::RegisterArray<SimTime> last_iat_;
  p4::RegisterArray<SimTime> ewma_;
  p4::RegisterArray<std::uint32_t> samples_;
  p4::RegisterArray<std::uint32_t> gap_streak_;
  p4::RegisterArray<std::uint8_t> blocked_;
  p4::DigestQueue<BlockageDigest> digests_;
};

}  // namespace p4s::telemetry
