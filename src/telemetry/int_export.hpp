// INT-style postcard export (after Bezerra et al.'s AmLight deployment,
// the paper's §6): the data plane emits a sampled per-packet telemetry
// record ("postcard") on the egress path — flow ID, egress timestamp,
// queuing delay, sequence number — giving collectors packet-granular
// visibility without mirroring every byte. Sampling is 1-in-N per flow
// (N configurable), the standard way INT deployments bound collector
// load.
#pragma once

#include <cstdint>

#include "p4/pipeline.hpp"
#include "p4/register.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

struct IntPostcard {
  std::uint32_t flow_id = 0;
  std::uint16_t slot = 0;
  SimTime egress_ts = 0;
  SimTime queue_delay_ns = 0;
  std::uint32_t seq = 0;
};

class IntExporter : public MetricEngine {
 public:
  struct Config {
    bool enabled = false;
    /// Emit one postcard per this many egress packets per flow.
    std::uint32_t sample_every = 128;
  };

  explicit IntExporter(Config config);
  IntExporter() : IntExporter(Config{}) {}

  /// Egress-path hook: count the packet and possibly emit a postcard.
  void on_egress(std::uint16_t slot, std::uint32_t flow_id,
                 std::uint32_t seq, SimTime queue_delay, SimTime now);

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "int_export"; }
  void clear_slot(std::uint16_t slot) override { counters_.cp_write(slot, 0); }
  bool slot_cleared(std::uint16_t slot) const override {
    return counters_.cp_read(slot) == 0;
  }
  std::size_t pending_digests() const override { return postcards_.pending(); }

  p4::DigestQueue<IntPostcard>& postcards() { return postcards_; }
  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t postcards_emitted() const { return emitted_; }
  bool enabled() const { return config_.enabled; }

 private:
  Config config_;
  p4::RegisterArray<std::uint32_t> counters_;
  p4::DigestQueue<IntPostcard> postcards_;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace p4s::telemetry
