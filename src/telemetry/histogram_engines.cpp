#include "telemetry/histogram_engines.hpp"

#include <array>
#include <cassert>
#include <optional>
#include <stdexcept>

#include "p4/hash.hpp"

namespace p4s::telemetry {

namespace {

std::uint32_t signature32(std::uint32_t flow_id, std::uint32_t word) {
  std::array<std::uint8_t, 8> key{
      static_cast<std::uint8_t>(flow_id >> 24),
      static_cast<std::uint8_t>(flow_id >> 16),
      static_cast<std::uint8_t>(flow_id >> 8),
      static_cast<std::uint8_t>(flow_id),
      static_cast<std::uint8_t>(word >> 24),
      static_cast<std::uint8_t>(word >> 16),
      static_cast<std::uint8_t>(word >> 8),
      static_cast<std::uint8_t>(word),
  };
  return p4::Crc32{0x741B8CD7u}(key);
}

std::uint32_t check_word(std::uint32_t flow_id, std::uint32_t word) {
  return flow_id ^ (word << 1) ^ (word >> 31);
}

}  // namespace

const char* to_string(HistogramEngineConfig::Metric metric) {
  switch (metric) {
    case HistogramEngineConfig::Metric::kRtt: return "rtt";
    case HistogramEngineConfig::Metric::kIat: return "iat";
    case HistogramEngineConfig::Metric::kQueueDelay: return "queue_delay";
  }
  return "?";
}

HistogramEngineConfig::Metric histogram_metric_from_name(
    const std::string& name) {
  if (name == "rtt") return HistogramEngineConfig::Metric::kRtt;
  if (name == "iat") return HistogramEngineConfig::Metric::kIat;
  if (name == "queue_delay") {
    return HistogramEngineConfig::Metric::kQueueDelay;
  }
  throw std::invalid_argument("unknown histogram metric: " + name);
}

HistogramEngine::HistogramEngine(const HistogramEngineConfig& config)
    : config_(config),
      name_(std::string(to_string(config.metric)) + "_histogram" +
            (config.id.empty() ? "" : "_" + config.id)),
      hist_(config.histogram),
      sketch_(sketch::DdSketchConfig{config.sketch_alpha,
                                     config.sketch_max_bins, 1.0}) {}

void HistogramEngine::observe(SimTime value_ns) {
  const auto v = static_cast<double>(value_ns);
  hist_.add(v);
  sketch_.add(v);
  ++samples_;
}

RttHistogramEngine::RttHistogramEngine(const HistogramEngineConfig& config)
    : HistogramEngine(config),
      table_(config.signature_slots, Entry{}),
      mask_(static_cast<std::uint32_t>(config.signature_slots - 1)) {
  assert(config.signature_slots > 0 &&
         (config.signature_slots & (config.signature_slots - 1)) == 0);
}

void RttHistogramEngine::on_data(std::uint32_t rev_flow_id,
                                 std::uint32_t seq,
                                 std::uint32_t payload_bytes, SimTime now) {
  const std::uint32_t eack = seq + payload_bytes;
  const std::uint32_t idx = signature32(rev_flow_id, eack) & mask_;
  const std::uint32_t check = check_word(rev_flow_id, eack);
  table_.execute(idx, [&](Entry& e) {
    if (e.ts != 0 && e.check != check) ++evictions_;
    e.check = check;
    e.ts = now;
    return 0;
  });
}

void RttHistogramEngine::on_ack(std::uint32_t flow_id, std::uint32_t ack,
                                SimTime now) {
  const std::uint32_t idx = signature32(flow_id, ack) & mask_;
  const std::uint32_t check = check_word(flow_id, ack);
  std::optional<SimTime> rtt;
  table_.execute(idx, [&](Entry& e) {
    if (e.ts != 0 && e.check == check) {
      rtt = now - e.ts;
      e = Entry{};  // consume the sample
    }
    return 0;
  });
  if (rtt.has_value()) {
    ++matches_;
    observe(*rtt);
  } else {
    ++misses_;
  }
}

IatHistogramEngine::IatHistogramEngine(const HistogramEngineConfig& config)
    : HistogramEngine(config),
      table_(config.signature_slots, Entry{}),
      mask_(static_cast<std::uint32_t>(config.signature_slots - 1)) {
  assert(config.signature_slots > 0 &&
         (config.signature_slots & (config.signature_slots - 1)) == 0);
}

void IatHistogramEngine::on_data(std::uint32_t flow_id, SimTime now) {
  const std::uint32_t idx = flow_id & mask_;
  std::optional<SimTime> gap;
  table_.execute(idx, [&](Entry& e) {
    if (e.last != 0 && e.check == flow_id) {
      if (now >= e.last) gap = now - e.last;
    } else if (e.last != 0) {
      ++collisions_;
    }
    e.check = flow_id;
    e.last = now;
    return 0;
  });
  if (gap.has_value()) observe(*gap);
}

std::unique_ptr<HistogramEngine> make_histogram_engine(
    const HistogramEngineConfig& config) {
  switch (config.metric) {
    case HistogramEngineConfig::Metric::kRtt:
      return std::make_unique<RttHistogramEngine>(config);
    case HistogramEngineConfig::Metric::kIat:
      return std::make_unique<IatHistogramEngine>(config);
    case HistogramEngineConfig::Metric::kQueueDelay:
      return std::make_unique<QueueDelayHistogramEngine>(config);
  }
  throw std::invalid_argument("unknown histogram metric");
}

}  // namespace p4s::telemetry
