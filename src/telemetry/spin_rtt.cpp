#include "telemetry/spin_rtt.hpp"

namespace p4s::telemetry {

namespace {

// splitmix64 finalizer: table index from the 64-bit DCID.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SpinRttEngine::SpinRttEngine(const SpinRttEngineConfig& config)
    : config_(config),
      table_(pow2_at_least(config.slots == 0 ? 1 : config.slots)),
      mask_(table_.size() - 1),
      sketch_(sketch::DdSketchConfig{config.sketch_alpha,
                                     config.sketch_max_bins,
                                     /*min_value=*/1.0}) {}

void SpinRttEngine::on_packet(const FieldView& view) {
  // One observation per packet: the ingress-TAP copy only (the egress
  // copy of the same packet would double every edge).
  if (view.egress_copy() || !view.is_quic()) return;
  const net::QuicHeader& q = view.quic();
  if (q.long_form) return;  // no spin bit on long headers

  const std::size_t index = mix(q.dcid) & mask_;
  const SimTime now = view.ingress_ts();
  table_.execute(index, [&](Entry& e) {
    if (!e.valid || e.dcid != q.dcid) {
      if (e.valid) ++collisions_;
      e = Entry{};
      e.dcid = q.dcid;
      e.valid = true;
      e.spin = q.spin;
      e.largest_pn = q.packet_number;
      return 0;
    }
    if (q.packet_number <= e.largest_pn) {
      // Not advancing the pn: a reordered packet. If its spin differs
      // it would have faked an edge — count the save.
      if (q.spin != e.spin) ++rejected_reordered_;
      return 0;
    }
    e.largest_pn = q.packet_number;
    if (q.spin == e.spin) return 0;

    // A genuine spin edge on this direction's timeline.
    ++edges_;
    e.spin = q.spin;
    if (e.have_edge) {
      const SimTime gap = now - e.last_edge_ts;
      if (gap < config_.rtt_floor_ns) {
        ++rejected_floor_;
      } else if (e.ewma_rtt_ns > 0.0 &&
                 static_cast<double>(gap) >
                     config_.outlier_factor * e.ewma_rtt_ns) {
        // Likely a lost toggling packet: the edge arrived a full extra
        // round trip late. Keep the EWMA untouched.
        ++rejected_outlier_;
      } else {
        sketch_.add(static_cast<double>(gap));
        ++samples_;
        e.ewma_rtt_ns = e.ewma_rtt_ns == 0.0
                            ? static_cast<double>(gap)
                            : 0.875 * e.ewma_rtt_ns +
                                  0.125 * static_cast<double>(gap);
      }
    }
    e.have_edge = true;
    e.last_edge_ts = now;
    return 0;
  });
}

}  // namespace p4s::telemetry
