// MetricEngine — the common control-plane-facing surface of every
// in-switch measurement stage (flow tracking, RTT/loss, queue monitor,
// limitation classifier, IAT monitor, INT export, byte/packet counters).
//
// The data-plane program composes *registered* engines instead of
// hard-calling each one: releasing a flow's register slot, checking the
// released-slot invariant, and counting pending digest backlog all
// iterate the registry, so a newly added engine cannot be silently
// missed by the slot-recycling path (the registry IS the definition of
// "every engine"). This mirrors how P4-NIDS composes pluggable
// per-metric stages and is the seam that lets a metric be added without
// touching DataPlaneProgram or the control-plane timer logic.
#pragma once

#include <cstdint>
#include <string_view>

namespace p4s::telemetry {

class MetricEngine {
 public:
  virtual ~MetricEngine() = default;

  /// Stable engine name (used in diagnostics and invariant failures).
  virtual std::string_view name() const = 0;

  /// The control plane released `slot`: drop every per-slot register this
  /// engine keeps for it. Must be idempotent; must leave the slot
  /// indistinguishable from a never-used one.
  virtual void clear_slot(std::uint16_t slot) = 0;

  /// True when no per-slot state remains for `slot` — the postcondition
  /// of clear_slot(), and the registry-wide invariant
  /// DataPlaneProgram::release_slot() establishes (asserted by tests).
  virtual bool slot_cleared(std::uint16_t slot) const = 0;

  /// Digest backlog awaiting the control plane's poll loop (0 for engines
  /// that emit no digests).
  virtual std::size_t pending_digests() const { return 0; }
};

}  // namespace p4s::telemetry
