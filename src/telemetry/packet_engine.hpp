// PacketEngine — a MetricEngine that additionally observes the per-packet
// stream through the shared FieldView accessor table.
//
// The built-in engines are hard-wired into DataPlaneProgram::ingress
// with typed calls; an engine loaded at run time (the measurement-program
// VM) cannot be. This interface is the seam: DataPlaneProgram builds one
// FieldView per parsed copy and hands it to every registered packet
// engine — once for the copy itself (on_packet) and, on the measurement
// path, once more with the tracked flow's slot (on_tracked_data), the
// exact point where the byte/packet counters update. Registration also
// enrolls the engine in the MetricEngine registry, so slot release and
// digest accounting cover it like any built-in stage.
#pragma once

#include <cstdint>

#include "telemetry/field_view.hpp"
#include "telemetry/metric_engine.hpp"

namespace p4s::telemetry {

class PacketEngine : public MetricEngine {
 public:
  /// Every parsed IPv4 copy, ingress-TAP and egress-TAP alike (the view's
  /// tap_point field tells them apart; egress copies carry the measured
  /// queue delay when the TAP pair matched). Runs after the built-in
  /// stages of the copy, so register state the built-ins exposed for this
  /// packet is already current.
  virtual void on_packet(const FieldView& view) { (void)view; }

  /// Measurement-path hook: a tracked flow's data packet passed the slot
  /// gate (same packets, same order as FlowCounters::on_data).
  virtual void on_tracked_data(std::uint16_t slot, const FieldView& view) {
    (void)slot;
    (void)view;
  }
};

}  // namespace p4s::telemetry
