// Per-flow byte/packet counters and first/last-seen timestamps (§4.1:
// "the data plane uses the IPv4 total length field"). Previously raw
// registers inside DataPlaneProgram; extracted into a MetricEngine so
// the slot-release registry covers them like every other measurement
// stage.
#pragma once

#include <cstdint>

#include "p4/register.hpp"
#include "telemetry/metric_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::telemetry {

class FlowCounters : public MetricEngine {
 public:
  FlowCounters()
      : bytes_(kFlowSlots, 0),
        pkts_(kFlowSlots, 0),
        first_seen_(kFlowSlots, 0),
        last_seen_(kFlowSlots, 0) {}

  /// Data-path update for a tracked flow's data packet.
  void on_data(std::uint16_t slot, std::uint32_t ipv4_total_len,
               SimTime now) {
    bytes_.execute(slot, [&](std::uint64_t& v) {
      v += ipv4_total_len;
      return 0;
    });
    pkts_.execute(slot, [](std::uint64_t& v) { return ++v; });
    if (first_seen_.read(slot) == 0) first_seen_.write(slot, now);
    last_seen_.write(slot, now);
  }

  // ---- Control-plane reads --------------------------------------------
  std::uint64_t bytes(std::uint16_t slot) const { return bytes_.cp_read(slot); }
  std::uint64_t packets(std::uint16_t slot) const {
    return pkts_.cp_read(slot);
  }
  SimTime first_seen(std::uint16_t slot) const {
    return first_seen_.cp_read(slot);
  }
  SimTime last_seen(std::uint16_t slot) const {
    return last_seen_.cp_read(slot);
  }

  // ---- MetricEngine ---------------------------------------------------
  std::string_view name() const override { return "counters"; }
  void clear_slot(std::uint16_t slot) override {
    bytes_.cp_write(slot, 0);
    pkts_.cp_write(slot, 0);
    first_seen_.cp_write(slot, 0);
    last_seen_.cp_write(slot, 0);
  }
  bool slot_cleared(std::uint16_t slot) const override {
    return bytes_.cp_read(slot) == 0 && pkts_.cp_read(slot) == 0 &&
           first_seen_.cp_read(slot) == 0 && last_seen_.cp_read(slot) == 0;
  }

 private:
  p4::RegisterArray<std::uint64_t> bytes_;
  p4::RegisterArray<std::uint64_t> pkts_;
  p4::RegisterArray<SimTime> first_seen_;
  p4::RegisterArray<SimTime> last_seen_;
};

}  // namespace p4s::telemetry
