// p4s_store — a crash-safe, segmented time-series document store.
//
// One Store owns a directory:
//
//   <dir>/MANIFEST.json   — authoritative segment list, sealed-doc counts
//                           per index, and materialized rollups; replaced
//                           atomically (tmp + rename)
//   <dir>/wal.log         — write-ahead log of not-yet-sealed documents
//   <dir>/seg/<index>-<base_seq>.seg
//                         — immutable sealed segments (segment.hpp)
//
// Write path: append() buffers the document in the index's memtable and
// the WAL's pending batch; every `wal_batch_docs` appends (or an explicit
// flush()) commits a length+CRC framed batch. seal() turns a memtable
// into a sealed segment, folds the sealed documents into the rollup
// series, rewrites the manifest, and rotates the WAL down to what is
// still unsealed.
//
// Recovery invariant: reopening a directory yields exactly the sealed
// segments named by the manifest plus the longest committed-batch prefix
// of the WAL, minus documents the manifest already counts as sealed
// (sequence numbers make the WAL-vs-segment overlap after a mid-seal
// crash harmless). No partial document is ever visible.
//
// Read path: scan() walks sealed segments in sequence order, then the
// memtable (reversed for newest_first), pruning whole segments by
// time/column range and by term bloom filters before parsing any
// document. stats() counts the pruning so tests and benches can assert
// it actually happens.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/segment.hpp"
#include "store/wal.hpp"
#include "util/json.hpp"

namespace p4s::store {

struct StoreConfig {
  /// Dotted path of the timestamp field (always encoded columnar).
  std::string time_field = "ts_ns";
  /// Extra dotted numeric paths encoded columnar in every segment.
  std::vector<std::string> hot_fields = {"throughput_bps", "bytes"};
  /// Commit the WAL batch automatically every this many appends.
  std::size_t wal_batch_docs = 64;
  /// maintain() seals an index's memtable once it holds at least this
  /// many documents.
  std::size_t seal_min_docs = 256;
  /// maintain() compacts an index once it has at least this many sealed
  /// segments (0 disables compaction).
  std::size_t compact_fanin = 8;
  /// Downsampling bucket for the rollup series.
  std::uint64_t rollup_bucket_ns = 1'000'000'000;
  /// Dotted numeric paths whose per-bucket min/max/mean/count are
  /// materialized at seal time (empty = no rollups).
  std::vector<std::string> rollup_fields;
};

/// One downsampled bucket of a rollup series.
struct RollupBucket {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// bucket start time (ns) -> aggregate.
using RollupSeries = std::map<std::int64_t, RollupBucket>;

struct StoreStats {
  std::uint64_t wal_batches_replayed = 0;
  std::uint64_t wal_tail_bytes_dropped = 0;
  std::uint64_t wal_records_skipped_sealed = 0;
  std::uint64_t seals = 0;
  std::uint64_t compactions = 0;
  // Scan-side pruning counters (cumulative over the Store's lifetime).
  std::uint64_t scans = 0;
  std::uint64_t segments_considered = 0;
  std::uint64_t segments_scanned = 0;
  std::uint64_t segments_pruned_range = 0;
  std::uint64_t segments_pruned_terms = 0;
};

class Store {
 public:
  /// Open (or create) the store at `dir`, replaying any WAL tail.
  explicit Store(std::string dir, StoreConfig config = {});

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& dir() const { return dir_; }
  const StoreConfig& config() const { return config_; }

  // ---- write path -----------------------------------------------------

  /// Append one document; returns its index-local sequence number. The
  /// document becomes durable at the next WAL batch commit (automatic
  /// every wal_batch_docs appends, or via flush()).
  std::uint64_t append(const std::string& index, const util::Json& doc);

  /// Commit the pending WAL batch.
  void flush();

  /// Seal `index`'s memtable into an immutable segment (no-op when the
  /// memtable is empty). Folds rollups, rewrites the manifest, rotates
  /// the WAL.
  void seal(const std::string& index);
  void seal_all();

  /// Merge all of `index`'s sealed segments into one.
  void compact(const std::string& index);

  /// One background-maintenance step (drive it from the simulation
  /// clock): flush the WAL, seal memtables at/above seal_min_docs, and
  /// compact indices at/above compact_fanin segments.
  void maintain();

  // ---- read path ------------------------------------------------------

  struct ScanOptions {
    /// Range filter used for segment pruning (and nothing else — the
    /// caller re-checks every visited document). Pruning applies when the
    /// field is the time field or a hot column.
    std::string range_field;
    std::optional<double> range_min;
    std::optional<double> range_max;
    /// Term keys (term_key()) that matching documents must all contain;
    /// segments whose bloom filter rules one out are skipped.
    std::vector<std::string> term_keys;
    bool newest_first = false;
  };

  /// Visit documents in sequence order (or reversed); the visitor
  /// returns false to stop. Pruning is only ever an over-approximation:
  /// every document that could match the options is visited.
  void scan(const std::string& index, const ScanOptions& options,
            const std::function<bool(const util::Json&)>& visit) const;

  struct ColumnAggregate {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  /// Columnar aggregation fast path: aggregate `field` over documents
  /// whose `range_field` (when set) lies in [min, max]. Returns nullopt
  /// when the fields aren't columnar — the caller falls back to a scan.
  /// Sealed segments are aggregated from column summaries (full overlap)
  /// or decoded columns (partial overlap) without parsing any document
  /// JSON; memtable documents are walked directly.
  std::optional<ColumnAggregate> aggregate_column(
      const std::string& index, const std::string& field,
      const std::string& range_field, std::optional<double> range_min,
      std::optional<double> range_max) const;

  std::uint64_t doc_count(const std::string& index) const;
  std::vector<std::string> indices() const;
  std::uint64_t total_docs() const;
  std::uint64_t memtable_docs(const std::string& index) const;
  std::uint64_t segment_count(const std::string& index) const;

  /// Materialized rollup series (sealed documents only), or nullptr.
  const RollupSeries* rollup(const std::string& index,
                             const std::string& field) const;

  const StoreStats& stats() const { return stats_; }

  /// True when `field` is encoded columnar (time field or hot field).
  bool is_columnar(const std::string& field) const;

  // ---- offline verification (CLI `verify`, CI artifact check) ---------

  struct VerifyResult {
    bool ok = true;
    std::vector<std::string> errors;
    std::uint64_t segments = 0;
    std::uint64_t sealed_docs = 0;
    std::uint64_t wal_docs = 0;
    std::uint64_t wal_tail_bytes_dropped = 0;
  };

  /// Structurally verify a store directory without opening it as a live
  /// Store: manifest parses, every segment loads (CRC), doc counts match
  /// the manifest, every document parses as JSON, WAL replays.
  static VerifyResult verify(const std::string& dir);

 private:
  struct SegmentHandle {
    std::string file;  // relative to dir_
    SegmentInfo info;
    std::map<std::string, ColumnSummary> summaries;
    // The full segment (documents, columns, bloom) is read from disk on
    // first use, then cached; range pruning works off the manifest
    // metadata above without touching the file.
    mutable std::unique_ptr<Segment> loaded;
    const Segment& get(const std::string& dir) const;
  };

  struct IndexState {
    std::uint64_t sealed_docs = 0;  // == next memtable base sequence
    std::vector<SegmentHandle> segments;
    std::vector<util::Json> memtable;
  };

  void load_manifest();
  void write_manifest() const;
  void rotate_wal();
  std::string segment_path(const std::string& index) const;
  void fold_rollups(const std::string& index,
                    const std::vector<util::Json>& docs);
  /// nullopt = cannot decide from metadata (must scan); true = the
  /// segment cannot contain a match (prune).
  bool prune_by_range(const SegmentHandle& handle,
                      const ScanOptions& options) const;

  std::string dir_;
  StoreConfig config_;
  std::map<std::string, IndexState> indices_;
  std::map<std::string, std::map<std::string, RollupSeries>> rollups_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_segment_id_ = 0;
  mutable StoreStats stats_;
};

}  // namespace p4s::store
