// p4s_store — a crash-safe, segmented time-series document store.
//
// One Store owns a directory:
//
//   <dir>/MANIFEST.json   — authoritative segment list, sealed-doc counts
//                           per index, and materialized rollups; replaced
//                           atomically (tmp + rename)
//   <dir>/wal.log         — write-ahead log of not-yet-sealed documents
//   <dir>/seg/<index>-<base_seq>.seg
//                         — immutable sealed segments (segment.hpp)
//
// Write path: append() buffers the document in the index's memtable and
// the WAL's pending batch; every `wal_batch_docs` appends (or an explicit
// flush()) commits a length+CRC framed batch. seal() turns a memtable
// into a sealed segment, folds the sealed documents into the rollup
// series, rewrites the manifest, and rotates the WAL down to what is
// still unsealed. maintain() seals memtables at/above seal_min_docs and
// runs tiered compaction: segments are bucketed by size tier
// (floor(log_fanin(docs / seal_min_docs))) and any run of `compact_fanin`
// adjacent same-tier segments merges into one, which bounds the segment
// count logarithmically in total docs without rewriting the whole index
// on every pass.
//
// Recovery invariant: reopening a directory yields exactly the sealed
// segments named by the manifest plus the longest committed-batch prefix
// of the WAL, minus documents the manifest already counts as sealed
// (sequence numbers make the WAL-vs-segment overlap after a mid-seal
// crash harmless). No partial document is ever visible. Segment files
// not named by the manifest (a crash between segment write and manifest
// rename, or between manifest rename and GC) are swept at open.
//
// Read path and concurrency: the store publishes its state as immutable
// refcounted views (snapshot.hpp). snapshot() pins the current view in
// O(1); any number of reader threads then scan/aggregate a frozen,
// consistent store while the single writer keeps appending, sealing, and
// compacting. Compaction retires superseded segments instead of deleting
// them — the file is unlinked only when the last snapshot referencing it
// is released. Decoded segments are shared through a sharded LRU block
// cache (StoreConfig::cache_bytes); stats() counts cache traffic and
// scan pruning so tests and benches can assert both actually happen.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/segment.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/json.hpp"

namespace p4s::store {

struct StoreConfig {
  /// Dotted path of the timestamp field (always encoded columnar).
  std::string time_field = "ts_ns";
  /// Extra dotted numeric paths encoded columnar in every segment.
  std::vector<std::string> hot_fields = {"throughput_bps", "bytes"};
  /// Commit the WAL batch automatically every this many appends.
  std::size_t wal_batch_docs = 64;
  /// maintain() seals an index's memtable once it holds at least this
  /// many documents.
  std::size_t seal_min_docs = 256;
  /// maintain() merges any run of this many adjacent same-tier segments
  /// (0 disables compaction).
  std::size_t compact_fanin = 8;
  /// Downsampling bucket for the rollup series.
  std::uint64_t rollup_bucket_ns = 1'000'000'000;
  /// Dotted numeric paths whose per-bucket min/max/mean/count are
  /// materialized at seal time (empty = no rollups).
  std::vector<std::string> rollup_fields;
  /// Block-cache capacity for decoded segments, in (approximate) bytes.
  /// 0 = unbounded — every loaded segment stays resident, the pre-cache
  /// behavior.
  std::size_t cache_bytes = 0;
  /// Lock shards for the block cache.
  std::size_t cache_shards = 8;
};

/// One downsampled bucket of a rollup series.
struct RollupBucket {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// bucket start time (ns) -> aggregate.
using RollupSeries = std::map<std::int64_t, RollupBucket>;

struct StoreStats {
  std::uint64_t wal_batches_replayed = 0;
  std::uint64_t wal_tail_bytes_dropped = 0;
  std::uint64_t wal_records_skipped_sealed = 0;
  std::uint64_t orphan_segments_removed = 0;
  std::uint64_t seals = 0;
  std::uint64_t compactions = 0;
  // Scan-side pruning counters (cumulative over the Store's lifetime).
  std::uint64_t scans = 0;
  std::uint64_t segments_considered = 0;
  std::uint64_t segments_scanned = 0;
  std::uint64_t segments_pruned_range = 0;
  std::uint64_t segments_pruned_terms = 0;
  std::uint64_t segments_pruned_postings = 0;
  std::uint64_t postings_rows_seeked = 0;
  // Serving-side counters.
  std::uint64_t snapshots = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t segments_retired = 0;
  std::uint64_t segments_gc_deleted = 0;
  /// Retired segments still pinned by live snapshots.
  std::uint64_t gc_pending() const {
    return segments_retired - segments_gc_deleted;
  }
};

enum class OpenMode {
  read_write,
  /// Open for reads only: no directory/WAL creation side effects, and
  /// every mutating method throws. An empty or missing directory reads
  /// as an empty store. Used by CLI read commands (info/verify/dump,
  /// serve-stats) so inspecting a store never alters it.
  read_only,
};

/// Crash-injection hook for tests: called with a named boundary
/// ("seal.segment_written", "compact.manifest_written", ...) at each
/// point where a crash would leave a distinct on-disk state. Production
/// builds never set it. Not thread-safe — set it before touching the
/// store and clear it (nullptr) after.
void set_store_failpoint_hook(std::function<void(std::string_view)> hook);

class Store {
 public:
  /// Open (or create) the store at `dir`, replaying any WAL tail.
  explicit Store(std::string dir, StoreConfig config = {},
                 OpenMode mode = OpenMode::read_write);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& dir() const { return dir_; }
  const StoreConfig& config() const { return config_; }
  bool read_only() const { return read_only_; }

  // ---- write path (single writer thread) ------------------------------

  /// Append one document; returns its index-local sequence number. The
  /// document becomes durable at the next WAL batch commit (automatic
  /// every wal_batch_docs appends, or via flush()) and visible to new
  /// snapshots immediately.
  std::uint64_t append(const std::string& index, const util::Json& doc);

  /// Commit the pending WAL batch.
  void flush();

  /// Seal `index`'s memtable into an immutable segment (no-op when the
  /// memtable is empty). Folds rollups, rewrites the manifest, rotates
  /// the WAL.
  void seal(const std::string& index);
  void seal_all();

  /// Merge all of `index`'s sealed segments into one.
  void compact(const std::string& index);

  /// One background-maintenance step (drive it from the simulation
  /// clock): flush the WAL, seal memtables at/above seal_min_docs, and
  /// run tiered compaction.
  void maintain();

  // ---- read path (any thread) -----------------------------------------

  /// Pin the current view. O(1); safe from any thread.
  Snapshot snapshot() const;

  // Compatibility aliases — these types moved to namespace scope when
  // the read path became Snapshot-based.
  using ScanOptions = store::ScanOptions;
  using ColumnAggregate = store::ColumnAggregate;

  /// Visit documents in sequence order (or reversed); the visitor
  /// returns false to stop. Equivalent to snapshot().scan(...).
  void scan(const std::string& index, const ScanOptions& options,
            const std::function<bool(const util::Json&)>& visit) const;

  /// Columnar aggregation fast path: aggregate `field` over documents
  /// whose `range_field` (when set) lies in [min, max]. Returns nullopt
  /// when the fields aren't columnar — the caller falls back to a scan.
  /// Sealed segments are aggregated from column summaries (full overlap)
  /// or decoded columns (partial overlap) without parsing any document
  /// JSON; memtable documents are walked directly.
  std::optional<ColumnAggregate> aggregate_column(
      const std::string& index, const std::string& field,
      const std::string& range_field, std::optional<double> range_min,
      std::optional<double> range_max) const;

  std::uint64_t doc_count(const std::string& index) const;
  std::vector<std::string> indices() const;
  std::uint64_t total_docs() const;
  std::uint64_t memtable_docs(const std::string& index) const;
  std::uint64_t segment_count(const std::string& index) const;

  /// Materialized rollup series (sealed documents only), or nullptr.
  /// Writer-thread only (rollups fold at seal time).
  const RollupSeries* rollup(const std::string& index,
                             const std::string& field) const;

  /// Point-in-time statistics snapshot; safe from any thread.
  StoreStats stats() const;

  /// True when `field` is encoded columnar (time field or hot field).
  bool is_columnar(const std::string& field) const;

  // ---- offline verification (CLI `verify`, CI artifact check) ---------

  struct VerifyResult {
    bool ok = true;
    std::vector<std::string> errors;
    std::uint64_t segments = 0;
    std::uint64_t sealed_docs = 0;
    std::uint64_t wal_docs = 0;
    std::uint64_t wal_tail_bytes_dropped = 0;
  };

  /// Structurally verify a store directory without opening it as a live
  /// Store: manifest parses, every segment loads (CRC), doc counts match
  /// the manifest, every document parses as JSON, WAL replays. An empty
  /// or missing directory verifies clean (zero of everything).
  static VerifyResult verify(const std::string& dir);

 private:
  using IndexViewPtr = std::shared_ptr<const detail::IndexView>;

  /// Current view under the publish lock (readers), and the writer's
  /// working copy helpers.
  std::shared_ptr<const detail::StoreView> current_view() const;
  void publish_index(const std::string& index, IndexViewPtr next);
  void publish_view(std::shared_ptr<detail::StoreView> next);
  IndexViewPtr find_index(const std::string& index) const;

  void require_writable(const char* op) const;
  void seal_locked(const std::string& index);
  void compact_locked(const std::string& index);
  void tiered_compact_locked(const std::string& index);
  /// Merge segments [first, first+count) of `index` into one (they must
  /// be adjacent, preserving base_seq continuity).
  void merge_segments_locked(const std::string& index, std::size_t first,
                             std::size_t count);

  /// Mutable per-index views during construction, frozen at publish.
  using BuildMap = std::map<std::string, std::shared_ptr<detail::IndexView>>;
  void load_manifest(BuildMap& indices);
  void write_manifest(const detail::StoreView& view) const;
  void sweep_orphan_segments(const detail::StoreView& view);
  void rotate_wal(const detail::StoreView& view);
  std::string segment_path(const std::string& index);
  void fold_rollups(const std::string& index,
                    const std::vector<const util::Json*>& docs);

  std::string dir_;
  StoreConfig config_;
  bool read_only_ = false;

  std::shared_ptr<detail::ReadContext> ctx_;

  /// Guards view_ swaps/reads; held for pointer copies only.
  mutable std::mutex publish_mu_;
  std::shared_ptr<const detail::StoreView> view_;

  /// Serializes all mutating methods (single logical writer).
  std::mutex writer_mu_;
  std::map<std::string, std::map<std::string, RollupSeries>> rollups_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_segment_id_ = 0;

  // Set once during construction, immutable afterwards.
  std::uint64_t wal_batches_replayed_ = 0;
  std::uint64_t wal_tail_bytes_dropped_ = 0;
  std::uint64_t wal_records_skipped_sealed_ = 0;
  std::uint64_t orphan_segments_removed_ = 0;
};

}  // namespace p4s::store
