#include "store/store_cli.hpp"

#include <string>
#include <vector>

#include "store/store.hpp"

namespace p4s::store {

namespace {

int usage(std::ostream& err) {
  err << "usage: p4s-store info        <dir>\n"
         "       p4s-store verify      <dir>\n"
         "       p4s-store compact     <dir> [<index>]\n"
         "       p4s-store dump        <dir> <index> [--limit N] [--newest]\n"
         "       p4s-store serve-stats <dir>\n";
  return 2;
}

int cmd_info(const std::string& dir, std::ostream& out, std::ostream& err) {
  try {
    // Read-only: inspecting a store must not create directories or WAL
    // files as a side effect.
    const Store store(dir, {}, OpenMode::read_only);
    out << "store: " << dir << "\n";
    out << "  total docs:   " << store.total_docs() << "\n";
    const auto stats = store.stats();
    out << "  wal batches:  " << stats.wal_batches_replayed
        << " (tail bytes dropped: " << stats.wal_tail_bytes_dropped
        << ", sealed records skipped: " << stats.wal_records_skipped_sealed
        << ")\n";
    for (const auto& index : store.indices()) {
      out << "  index " << index << ": " << store.doc_count(index)
          << " docs (" << store.memtable_docs(index) << " unsealed), "
          << store.segment_count(index) << " segment(s)\n";
      for (const auto& field : store.config().rollup_fields) {
        const RollupSeries* series = store.rollup(index, field);
        if (series == nullptr || series->empty()) continue;
        out << "    rollup " << field << ": " << series->size()
            << " bucket(s) of " << store.config().rollup_bucket_ns
            << " ns\n";
      }
    }
    return 0;
  } catch (const StoreError& e) {
    err << "p4s-store: " << e.what() << "\n";
    return 2;
  }
}

int cmd_verify(const std::string& dir, std::ostream& out,
               std::ostream& err) {
  const auto result = Store::verify(dir);
  out << "verify: " << dir << "\n";
  out << "  segments:     " << result.segments << "\n";
  out << "  sealed docs:  " << result.sealed_docs << "\n";
  out << "  wal docs:     " << result.wal_docs << "\n";
  out << "  wal tail dropped bytes: " << result.wal_tail_bytes_dropped
      << "\n";
  if (!result.ok) {
    for (const auto& error : result.errors) {
      err << "p4s-store: " << error << "\n";
    }
    out << "  result:       CORRUPT\n";
    return 2;
  }
  out << "  result:       OK\n";
  return 0;
}

int cmd_compact(const std::string& dir, const std::string& index,
                std::ostream& out, std::ostream& err) {
  try {
    Store store(dir);
    const auto indices =
        index.empty() ? store.indices() : std::vector<std::string>{index};
    for (const auto& name : indices) {
      const auto before = store.segment_count(name);
      store.compact(name);
      out << "compact " << name << ": " << before << " -> "
          << store.segment_count(name) << " segment(s)\n";
    }
    return 0;
  } catch (const StoreError& e) {
    err << "p4s-store: " << e.what() << "\n";
    return 2;
  }
}

int cmd_dump(const std::string& dir, const std::string& index,
             std::size_t limit, bool newest, std::ostream& out,
             std::ostream& err) {
  try {
    const Store store(dir, {}, OpenMode::read_only);
    std::size_t printed = 0;
    Store::ScanOptions options;
    options.newest_first = newest;
    store.scan(index, options, [&](const util::Json& doc) {
      out << doc.dump() << "\n";
      ++printed;
      return limit == 0 || printed < limit;
    });
    return 0;
  } catch (const StoreError& e) {
    err << "p4s-store: " << e.what() << "\n";
    return 2;
  }
}

int cmd_serve_stats(const std::string& dir, std::ostream& out,
                    std::ostream& err) {
  try {
    const Store store(dir, {}, OpenMode::read_only);
    // Exercise the serving read path once per index so the pruning/cache
    // counters below describe this store's data, not just zeros: one
    // full scan warms the cache, a second shows the hits.
    for (int round = 0; round < 2; ++round) {
      for (const auto& index : store.indices()) {
        const Snapshot snapshot = store.snapshot();
        snapshot.scan(index, ScanOptions{},
                      [](const util::Json&) { return true; });
      }
    }
    const auto stats = store.stats();
    out << "serve-stats: " << dir << "\n";
    out << "  snapshots:        " << stats.snapshots << "\n";
    out << "  scans:            " << stats.scans << "\n";
    out << "  segments scanned: " << stats.segments_scanned << " of "
        << stats.segments_considered << " considered\n";
    out << "  pruned:           range " << stats.segments_pruned_range
        << ", terms " << stats.segments_pruned_terms << ", postings "
        << stats.segments_pruned_postings << "\n";
    out << "  postings rows:    " << stats.postings_rows_seeked << "\n";
    out << "  cache:            " << stats.cache_hits << " hit(s), "
        << stats.cache_misses << " miss(es), " << stats.cache_evictions
        << " eviction(s)\n";
    out << "  cache resident:   " << stats.cache_entries << " segment(s), "
        << stats.cache_bytes << " byte(s)\n";
    out << "  gc:               " << stats.segments_retired << " retired, "
        << stats.segments_gc_deleted << " deleted, " << stats.gc_pending()
        << " pending\n";
    return 0;
  } catch (const StoreError& e) {
    err << "p4s-store: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int store_cli(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(err);
  const std::string& cmd = args[0];

  if (cmd == "info" && args.size() == 2) {
    return cmd_info(args[1], out, err);
  }
  if (cmd == "verify" && args.size() == 2) {
    return cmd_verify(args[1], out, err);
  }
  if (cmd == "compact" && (args.size() == 2 || args.size() == 3)) {
    return cmd_compact(args[1], args.size() == 3 ? args[2] : "", out, err);
  }
  if (cmd == "serve-stats" && args.size() == 2) {
    return cmd_serve_stats(args[1], out, err);
  }
  if (cmd == "dump" && args.size() >= 3) {
    std::size_t limit = 0;
    bool newest = false;
    for (std::size_t i = 3; i < args.size(); ++i) {
      if (args[i] == "--newest") {
        newest = true;
      } else if (args[i] == "--limit" && i + 1 < args.size()) {
        try {
          limit = static_cast<std::size_t>(std::stoull(args[++i]));
        } catch (const std::exception&) {
          return usage(err);
        }
      } else {
        return usage(err);
      }
    }
    return cmd_dump(args[1], args[2], limit, newest, out, err);
  }
  return usage(err);
}

}  // namespace p4s::store
