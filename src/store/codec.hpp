// Little-endian fixed-width and LEB128 varint primitives shared by the
// store's WAL and segment codecs. Everything here is pure byte-shuffling
// on std::string buffers / string_view cursors — the file formats built
// on top (wal.hpp, segment.hpp) define the framing and checksums.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace p4s::store {

/// Thrown on malformed store files (bad magic, CRC mismatch, impossible
/// lengths). WAL *tail* truncation is NOT an error — see wal.hpp.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// LEB128 (7 bits per byte, high bit = continuation).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// ZigZag signed -> unsigned so small negative deltas stay small.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Read cursor over an in-memory buffer. All getters return nullopt on
/// exhausted input instead of throwing, so callers decide whether a short
/// read is corruption (segments) or a tolerated truncated tail (WAL).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  std::optional<std::uint32_t> u32() {
    if (remaining() < 4) return std::nullopt;
    const auto* p = reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_;
    pos_ += 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::optional<std::uint64_t> u64() {
    auto lo = u32();
    if (!lo) return std::nullopt;
    auto hi = u32();
    if (!hi) return std::nullopt;
    return static_cast<std::uint64_t>(*lo) |
           (static_cast<std::uint64_t>(*hi) << 32);
  }

  std::optional<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size()) {
      const auto b = static_cast<std::uint8_t>(data_[pos_++]);
      if (shift >= 63 && b > 1) return std::nullopt;  // > 64 bits: corrupt
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
    return std::nullopt;
  }

  std::optional<std::int64_t> svarint() {
    auto v = varint();
    if (!v) return std::nullopt;
    return unzigzag(*v);
  }

  std::optional<std::string_view> bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed (varint) byte string.
  std::optional<std::string_view> blob() {
    auto n = varint();
    if (!n || *n > remaining()) return std::nullopt;
    return bytes(static_cast<std::size_t>(*n));
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

inline void put_blob(std::string& out, std::string_view bytes) {
  put_varint(out, bytes.size());
  out.append(bytes);
}

}  // namespace p4s::store
