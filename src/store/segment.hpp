// Immutable sealed segments: the store's on-disk read path.
//
// A segment holds one index's documents for a contiguous sequence range
// [base_seq, base_seq + docs). Layout:
//
//   u32 magic "P4SG"  u32 version
//   blob header_json        — index, docs, base_seq, time stats,
//                             per-column summaries, bloom parameters,
//                             posting-indexed fields
//   blob docs_block         — per doc: blob of its JSON text
//   blob columns_block      — per column: blob of tagged values
//                             (0 = missing, 1 = svarint int — the time
//                             column delta-encodes against the previous
//                             present value, 2 = raw 8-byte LE double)
//   blob bloom_block        — bit array over "path=value" term keys
//   blob postings_block     — (v2) per-term sorted row-id lists for
//                             low-cardinality fields: varint n_terms,
//                             then per term blob key, varint n_rows,
//                             delta-varint row ids
//   u32 crc32               — over everything after magic+version
//
// The header carries everything query planning needs (min/max time,
// per-column min/max/sum/count, term bloom, posting coverage) so
// ArchiverQuery time ranges and exact-match terms can prune a segment
// without touching its documents, and no-filter aggregations can combine
// column summaries without parsing a single JSON byte. Posting lists go
// one step further than the bloom filter: for a covered field, a term
// query seeks directly to the matching rows instead of parsing every
// document of a surviving segment. Fields are posting-indexed only when
// their distinct-value count is at most half the doc count (identity
// fields like switch_id — never timestamps or measurement values, whose
// posting lists would be as large as the data). Version-1 files (no
// postings block) still load; they simply cover no fields. Any
// structural damage — bad magic, short file, CRC mismatch, out-of-range
// or unsorted posting rows — raises StoreError; segments have no
// "truncated tail" tolerance (that's the WAL's job).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/codec.hpp"
#include "util/json.hpp"

namespace p4s::store {

inline constexpr std::uint32_t kSegmentMagic = 0x47533450;  // "P4SG" LE
/// v2 added the postings block; v1 files are still readable.
inline constexpr std::uint32_t kSegmentVersion = 2;

/// Numeric statistics for one hot column, over the documents that carry
/// the field as a number (count says how many did).
struct ColumnSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

struct SegmentInfo {
  std::string index;
  std::uint64_t docs = 0;
  std::uint64_t base_seq = 0;
  /// Time stats over documents carrying a numeric time field. has_time is
  /// false when no document did — a time-range query prunes the whole
  /// segment then.
  bool has_time = false;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
};

/// Build the bloom/term key for an exact-match term (dotted path and the
/// JSON value it must equal). Only scalar values get keys; object/array
/// terms are never pruned.
std::string term_key(const std::string& path, const util::Json& value);

/// Resolve a dotted path ("flow.dst_ip") inside a document — the store's
/// canonical field resolver (ps::Archiver::field_at forwards here so the
/// write path, the bloom keys, and the query path agree byte for byte).
std::optional<util::Json> json_field_at(const util::Json& doc,
                                        const std::string& path);

/// What write_segment() hands back for the store's manifest: enough
/// metadata to plan queries without reopening the file.
struct SegmentBuildResult {
  SegmentInfo info;
  std::map<std::string, ColumnSummary> summaries;
};

/// Write a sealed segment. `docs` are the documents in sequence order
/// (seq = base_seq + position). `time_field` and `hot_fields` name the
/// dotted numeric paths to encode columnar (the time field is always a
/// column). Throws StoreError on I/O failure.
SegmentBuildResult write_segment(const std::string& path,
                                 const std::string& index,
                                 std::uint64_t base_seq,
                                 const std::vector<util::Json>& docs,
                                 const std::string& time_field,
                                 const std::vector<std::string>& hot_fields);

/// Same, over borrowed documents (the store's memtable chunks hand out
/// shared documents; sealing must not deep-copy them first).
SegmentBuildResult write_segment(const std::string& path,
                                 const std::string& index,
                                 std::uint64_t base_seq,
                                 const std::vector<const util::Json*>& docs,
                                 const std::string& time_field,
                                 const std::vector<std::string>& hot_fields);

/// A loaded, validated segment. Load reads and checksums the whole file
/// up front; document JSON is parsed lazily per visit.
class Segment {
 public:
  static Segment load(const std::string& path);

  const SegmentInfo& info() const { return info_; }

  /// True if the segment *may* contain a document matching the term key;
  /// false is definitive (the bloom filter has no false negatives).
  bool maybe_contains_term(const std::string& key) const;

  /// True when the dotted path was posting-indexed in this segment (its
  /// term keys have exact row lists).
  bool postings_cover_field(const std::string& path) const;

  /// Exact ascending row ids matching a term key. nullopt = the key's
  /// field is not posting-indexed here (fall back to bloom + scan); an
  /// empty vector is definitive (field covered, term absent).
  std::optional<std::vector<std::uint32_t>> postings(
      const std::string& key) const;

  /// Raw JSON text of one document row (0 <= row < info().docs).
  std::string_view doc_text(std::size_t row) const {
    return doc_texts_[row];
  }

  /// Approximate decoded footprint, the block cache's charge unit.
  std::size_t approx_bytes() const;

  /// Column summary for `field`, or nullptr when the field was not
  /// encoded columnar in this segment.
  const ColumnSummary* column_summary(const std::string& field) const;

  /// Decode a column to per-document values (nullopt = the document had
  /// no numeric value at that path). Returns an empty vector for
  /// non-columnar fields.
  std::vector<std::optional<double>> decode_column(
      const std::string& field) const;

  /// Visit documents (raw JSON text) in sequence order, or reversed.
  /// The visitor returns false to stop.
  void for_each_doc(
      bool reverse,
      const std::function<bool(std::uint64_t seq, std::string_view doc)>&
          visit) const;

 private:
  Segment() = default;

  SegmentInfo info_;
  std::string time_field_;
  std::vector<std::string> doc_texts_;
  std::map<std::string, ColumnSummary> summaries_;
  std::map<std::string, std::string> column_bytes_;
  std::string bloom_bits_;
  std::uint32_t bloom_hashes_ = 0;
  std::vector<std::string> posting_fields_;  // sorted dotted paths
  std::map<std::string, std::vector<std::uint32_t>> postings_;
};

}  // namespace p4s::store
