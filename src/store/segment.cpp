#include "store/segment.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "p4/hash.hpp"

namespace p4s::store {

namespace {

std::uint32_t bytes_crc(std::string_view data, std::uint32_t seed = 0) {
  return p4::Crc32(seed)(
      {reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
}

constexpr std::uint32_t kBloomHashes = 4;
constexpr std::size_t kBloomBitsPerKey = 10;
constexpr std::size_t kBloomMinBits = 512;
// Independent-ish hash seeds per bloom probe (golden-ratio stride).
constexpr std::uint32_t kBloomSeedStride = 0x9e3779b9u;

void bloom_set(std::string& bits, const std::string& key) {
  const std::size_t nbits = bits.size() * 8;
  for (std::uint32_t i = 0; i < kBloomHashes; ++i) {
    const std::uint32_t h = bytes_crc(key, i * kBloomSeedStride);
    const std::size_t bit = h % nbits;
    bits[bit / 8] |= static_cast<char>(1u << (bit % 8));
  }
}

bool bloom_test(std::string_view bits, std::uint32_t hashes,
                const std::string& key) {
  const std::size_t nbits = bits.size() * 8;
  if (nbits == 0) return true;  // degenerate: cannot prune
  for (std::uint32_t i = 0; i < hashes; ++i) {
    const std::uint32_t h = bytes_crc(key, i * kBloomSeedStride);
    const std::size_t bit = h % nbits;
    if (!(static_cast<std::uint8_t>(bits[bit / 8]) & (1u << (bit % 8)))) {
      return false;
    }
  }
  return true;
}

/// One leaf-scalar term occurrence: the dotted path, its bloom/posting
/// key, and the row that carries it.
struct TermOccurrence {
  std::string path;
  std::string key;
  std::uint32_t row;
};

/// Collect every leaf-scalar "path=value" term of a document (recursing
/// through objects; arrays and the objects themselves get no key,
/// matching the pruning contract in term_key()).
void collect_terms(const util::Json& value, const std::string& path,
                   std::uint32_t row, std::vector<TermOccurrence>& out) {
  if (value.is_object()) {
    for (const auto& [k, v] : value.as_object()) {
      collect_terms(v, path.empty() ? k : path + "." + k, row, out);
    }
    return;
  }
  if (value.is_array()) return;
  if (!path.empty()) out.push_back({path, term_key(path, value), row});
}

enum : std::uint8_t { kTagMissing = 0, kTagInt = 1, kTagDouble = 2 };

}  // namespace

std::optional<util::Json> json_field_at(const util::Json& doc,
                                        const std::string& path) {
  const util::Json* cur = &doc;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (!cur->is_object() || !cur->contains(key)) return std::nullopt;
    cur = &cur->at(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return *cur;
}

std::string term_key(const std::string& path, const util::Json& value) {
  return path + "=" + value.dump();
}

SegmentBuildResult write_segment(const std::string& path,
                                 const std::string& index,
                                 std::uint64_t base_seq,
                                 const std::vector<util::Json>& docs,
                                 const std::string& time_field,
                                 const std::vector<std::string>& hot_fields) {
  std::vector<const util::Json*> borrowed;
  borrowed.reserve(docs.size());
  for (const auto& doc : docs) borrowed.push_back(&doc);
  return write_segment(path, index, base_seq, borrowed, time_field,
                       hot_fields);
}

SegmentBuildResult write_segment(const std::string& path,
                                 const std::string& index,
                                 std::uint64_t base_seq,
                                 const std::vector<const util::Json*>& docs,
                                 const std::string& time_field,
                                 const std::vector<std::string>& hot_fields) {
  // Column order: time field first, then the hot fields (deduplicated).
  std::vector<std::string> columns{time_field};
  for (const auto& f : hot_fields) {
    if (std::find(columns.begin(), columns.end(), f) == columns.end()) {
      columns.push_back(f);
    }
  }

  std::string docs_block;
  std::vector<TermOccurrence> terms;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    put_blob(docs_block, docs[i]->dump());
    collect_terms(*docs[i], "", static_cast<std::uint32_t>(i), terms);
  }

  SegmentInfo info;
  info.index = index;
  info.docs = docs.size();
  info.base_seq = base_seq;
  std::map<std::string, ColumnSummary> summaries;
  std::string columns_block;
  for (const auto& field : columns) {
    ColumnSummary summary;
    std::string encoded;
    std::int64_t prev_int = 0;  // delta base for the time column
    const bool is_time = field == time_field;
    for (const util::Json* doc_ptr : docs) {
      const auto value = json_field_at(*doc_ptr, field);
      if (!value.has_value() || !value->is_number()) {
        encoded.push_back(static_cast<char>(kTagMissing));
        continue;
      }
      const double v = value->as_double();
      if (summary.count == 0) {
        summary.min = summary.max = v;
      } else {
        summary.min = std::min(summary.min, v);
        summary.max = std::max(summary.max, v);
      }
      summary.sum += v;
      ++summary.count;
      if (value->is_int()) {
        const std::int64_t i = value->as_int();
        encoded.push_back(static_cast<char>(kTagInt));
        put_svarint(encoded, is_time ? i - prev_int : i);
        if (is_time) prev_int = i;
      } else {
        encoded.push_back(static_cast<char>(kTagDouble));
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        put_u64(encoded, bits);
      }
    }
    if (is_time && summary.count > 0) {
      info.has_time = true;
      info.min_ts = static_cast<std::int64_t>(summary.min);
      info.max_ts = static_cast<std::int64_t>(summary.max);
    }
    summaries[field] = summary;
    put_blob(columns_block, encoded);
  }

  std::string bloom((std::max(kBloomMinBits,
                              terms.size() * kBloomBitsPerKey) +
                     7) /
                        8,
                    '\0');
  for (const auto& term : terms) bloom_set(bloom, term.key);

  // Posting lists: per-field term -> sorted rows, kept only for
  // low-cardinality fields (distinct values <= half the docs). Identity
  // fields (site, report type, destination) qualify; timestamps and
  // measurement values — distinct per row — do not, and the bloom filter
  // still covers them.
  std::map<std::string, std::map<std::string, std::vector<std::uint32_t>>>
      by_field;
  for (const auto& term : terms) {
    auto& rows = by_field[term.path][term.key];
    if (rows.empty() || rows.back() != term.row) rows.push_back(term.row);
  }
  std::vector<std::string> posting_fields;
  std::map<std::string, std::vector<std::uint32_t>> postings;
  for (const auto& [field, keyed] : by_field) {
    if (docs.size() < 2 || keyed.size() * 2 > docs.size()) continue;
    posting_fields.push_back(field);
    for (const auto& [key, rows] : keyed) postings[key] = rows;
  }
  std::string postings_block;
  put_varint(postings_block, postings.size());
  for (const auto& [key, rows] : postings) {
    put_blob(postings_block, key);
    put_varint(postings_block, rows.size());
    std::uint32_t prev = 0;
    for (const std::uint32_t row : rows) {
      put_varint(postings_block, row - prev);
      prev = row;
    }
  }

  util::Json header = util::Json::object();
  header["index"] = index;
  header["docs"] = docs.size();
  header["base_seq"] = base_seq;
  header["time_field"] = time_field;
  header["has_time"] = info.has_time;
  header["min_ts"] = info.min_ts;
  header["max_ts"] = info.max_ts;
  header["bloom_hashes"] = kBloomHashes;
  util::JsonArray posting_meta;
  for (const auto& field : posting_fields) {
    posting_meta.push_back(util::Json(field));
  }
  header["posting_fields"] = util::Json(std::move(posting_meta));
  util::JsonArray column_meta;
  for (const auto& field : columns) {
    const auto& s = summaries[field];
    util::Json entry = util::Json::object();
    entry["field"] = field;
    entry["count"] = s.count;
    entry["min"] = s.min;
    entry["max"] = s.max;
    entry["sum"] = s.sum;
    column_meta.push_back(std::move(entry));
  }
  header["columns"] = util::Json(std::move(column_meta));

  std::string body;
  put_blob(body, header.dump());
  put_blob(body, docs_block);
  put_blob(body, columns_block);
  put_blob(body, bloom);
  put_blob(body, postings_block);

  std::string file;
  put_u32(file, kSegmentMagic);
  put_u32(file, kSegmentVersion);
  file += body;
  put_u32(file, bytes_crc(body));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw StoreError("segment: cannot open " + path);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out) throw StoreError("segment: write failed on " + path);
  return {info, std::move(summaries)};
}

Segment Segment::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError("segment: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < 12) throw StoreError("segment: short file " + path);

  ByteReader head(data);
  if (head.u32() != kSegmentMagic) {
    throw StoreError("segment: bad magic in " + path);
  }
  const auto version = head.u32();
  if (version != 1 && version != kSegmentVersion) {
    throw StoreError("segment: unsupported version in " + path);
  }
  const std::string_view body =
      std::string_view(data).substr(8, data.size() - 12);
  ByteReader tail(std::string_view(data).substr(data.size() - 4));
  if (bytes_crc(body) != tail.u32()) {
    throw StoreError("segment: CRC mismatch in " + path);
  }

  ByteReader r(body);
  const auto header_text = r.blob();
  const auto docs_block = r.blob();
  const auto columns_block = r.blob();
  const auto bloom_block = r.blob();
  if (!header_text || !docs_block || !columns_block || !bloom_block) {
    throw StoreError("segment: malformed sections in " + path);
  }
  std::optional<std::string_view> postings_block;
  if (*version == kSegmentVersion) {
    postings_block = r.blob();
    if (!postings_block) {
      throw StoreError("segment: malformed postings in " + path);
    }
  }

  Segment seg;
  std::vector<std::string> column_order;
  try {
    const util::Json header = util::Json::parse(*header_text);
    seg.info_.index = header.at("index").as_string();
    seg.info_.docs = static_cast<std::uint64_t>(header.at("docs").as_int());
    seg.info_.base_seq =
        static_cast<std::uint64_t>(header.at("base_seq").as_int());
    seg.info_.has_time = header.at("has_time").as_bool();
    seg.info_.min_ts = header.at("min_ts").as_int();
    seg.info_.max_ts = header.at("max_ts").as_int();
    seg.time_field_ = header.at("time_field").as_string();
    seg.bloom_hashes_ =
        static_cast<std::uint32_t>(header.at("bloom_hashes").as_int());
    for (const auto& entry : header.at("columns").as_array()) {
      ColumnSummary s;
      s.count = static_cast<std::uint64_t>(entry.at("count").as_int());
      s.min = entry.at("min").as_double();
      s.max = entry.at("max").as_double();
      s.sum = entry.at("sum").as_double();
      const std::string& field = entry.at("field").as_string();
      seg.summaries_[field] = s;
      column_order.push_back(field);
    }
    if (header.contains("posting_fields")) {
      for (const auto& field : header.at("posting_fields").as_array()) {
        seg.posting_fields_.push_back(field.as_string());
      }
      std::sort(seg.posting_fields_.begin(), seg.posting_fields_.end());
    }
  } catch (const util::JsonError& e) {
    throw StoreError("segment: bad header in " + path + ": " + e.what());
  }

  ByteReader docs(*docs_block);
  for (std::uint64_t i = 0; i < seg.info_.docs; ++i) {
    const auto text = docs.blob();
    if (!text) throw StoreError("segment: doc count mismatch in " + path);
    seg.doc_texts_.emplace_back(*text);
  }
  ByteReader cols(*columns_block);
  for (const auto& field : column_order) {
    const auto bytes = cols.blob();
    if (!bytes) throw StoreError("segment: column mismatch in " + path);
    seg.column_bytes_[field] = std::string(*bytes);
  }
  seg.bloom_bits_ = std::string(*bloom_block);
  if (postings_block) {
    ByteReader posts(*postings_block);
    const auto n_terms = posts.varint();
    if (!n_terms) throw StoreError("segment: bad postings in " + path);
    for (std::uint64_t t = 0; t < *n_terms; ++t) {
      const auto key = posts.blob();
      const auto n_rows = posts.varint();
      if (!key || !n_rows || *n_rows > seg.info_.docs) {
        throw StoreError("segment: bad postings in " + path);
      }
      std::vector<std::uint32_t> rows;
      rows.reserve(static_cast<std::size_t>(*n_rows));
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < *n_rows; ++i) {
        const auto delta = posts.varint();
        if (!delta) throw StoreError("segment: bad postings in " + path);
        const std::uint64_t row = prev + *delta;
        // Rows must stay strictly ascending and inside the segment.
        if (row >= seg.info_.docs || (i > 0 && row <= prev)) {
          throw StoreError("segment: posting row out of range in " + path);
        }
        rows.push_back(static_cast<std::uint32_t>(row));
        prev = row;
      }
      seg.postings_[std::string(*key)] = std::move(rows);
    }
  }
  return seg;
}

bool Segment::maybe_contains_term(const std::string& key) const {
  return bloom_test(bloom_bits_, bloom_hashes_, key);
}

bool Segment::postings_cover_field(const std::string& path) const {
  return std::binary_search(posting_fields_.begin(), posting_fields_.end(),
                            path);
}

std::optional<std::vector<std::uint32_t>> Segment::postings(
    const std::string& key) const {
  // The key's field is everything before the '=' term_key() appended.
  const std::size_t eq = key.find('=');
  if (eq == std::string::npos ||
      !postings_cover_field(key.substr(0, eq))) {
    return std::nullopt;
  }
  const auto it = postings_.find(key);
  if (it == postings_.end()) return std::vector<std::uint32_t>{};
  return it->second;
}

std::size_t Segment::approx_bytes() const {
  std::size_t bytes = sizeof(Segment);
  for (const auto& text : doc_texts_) bytes += text.size() + 48;
  for (const auto& [field, col] : column_bytes_) {
    bytes += field.size() + col.size() + 64;
  }
  bytes += bloom_bits_.size();
  for (const auto& [key, rows] : postings_) {
    bytes += key.size() + rows.size() * sizeof(std::uint32_t) + 64;
  }
  return bytes;
}

const ColumnSummary* Segment::column_summary(const std::string& field) const {
  const auto it = summaries_.find(field);
  return it == summaries_.end() ? nullptr : &it->second;
}

std::vector<std::optional<double>> Segment::decode_column(
    const std::string& field) const {
  const auto it = column_bytes_.find(field);
  if (it == column_bytes_.end()) return {};
  std::vector<std::optional<double>> values;
  values.reserve(info_.docs);
  ByteReader r(it->second);
  const bool is_time = field == time_field_;
  std::int64_t prev_int = 0;
  for (std::uint64_t i = 0; i < info_.docs; ++i) {
    const auto tag = r.bytes(1);
    if (!tag) throw StoreError("segment: truncated column " + field);
    switch (static_cast<std::uint8_t>((*tag)[0])) {
      case kTagMissing:
        values.emplace_back(std::nullopt);
        break;
      case kTagInt: {
        const auto delta = r.svarint();
        if (!delta) throw StoreError("segment: truncated column " + field);
        const std::int64_t v = is_time ? prev_int + *delta : *delta;
        if (is_time) prev_int = v;
        values.emplace_back(static_cast<double>(v));
        break;
      }
      case kTagDouble: {
        const auto bits = r.u64();
        if (!bits) throw StoreError("segment: truncated column " + field);
        double v = 0;
        std::memcpy(&v, &*bits, sizeof(v));
        values.emplace_back(v);
        break;
      }
      default:
        throw StoreError("segment: bad column tag in " + field);
    }
  }
  return values;
}

void Segment::for_each_doc(
    bool reverse,
    const std::function<bool(std::uint64_t, std::string_view)>& visit) const {
  if (reverse) {
    for (std::size_t i = doc_texts_.size(); i-- > 0;) {
      if (!visit(info_.base_seq + i, doc_texts_[i])) return;
    }
  } else {
    for (std::size_t i = 0; i < doc_texts_.size(); ++i) {
      if (!visit(info_.base_seq + i, doc_texts_[i])) return;
    }
  }
}

}  // namespace p4s::store
