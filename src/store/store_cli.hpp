// p4s-store — command-line front end for the durable archive store.
//
//   p4s-store info    <dir>
//   p4s-store verify  <dir>
//   p4s-store compact <dir> [<index>]
//   p4s-store dump    <dir> <index> [--limit N] [--newest]
//
// `info` prints the manifest view (indices, segments, doc counts, rollup
// series, WAL state), `verify` structurally checks every segment and the
// WAL (exit 0 clean / 2 corrupt — the golden-trace CI job gates on it),
// `compact` merges an index's sealed segments, `dump` prints documents
// as JSON lines. The entry point is separated from main() so tests can
// drive it in-process.
#pragma once

#include <ostream>

namespace p4s::store {

/// Runs the tool; returns the process exit code (0 ok, 2 usage, bad
/// input, or failed verification). Store corruption produces a one-line
/// error on `err`, never a crash.
int store_cli(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace p4s::store
